package distlouvain

import (
	"distlouvain/internal/gen"
	"distlouvain/internal/gio"
)

// The workload constructors expose the paper's synthetic benchmark
// generators through the public API. All are deterministic in their seed.

// GenerateRMAT produces a power-law R-MAT graph with 2^scale vertices and
// about edgeFactor·2^scale edges using the classic social-network quadrant
// probabilities (0.57, 0.19, 0.19, 0.05). It stands in for the paper's
// social and web datasets (com-orkut, soc-friendster, twitter-2010, …).
func GenerateRMAT(scale int, edgeFactor int64, seed uint64) (int64, []Edge, error) {
	return gen.RMAT(scale, edgeFactor, 0.57, 0.19, 0.19, 0.05, seed)
}

// GenerateBandedMesh produces a banded, locally connected graph (vertex v
// links to v+1…v+band), the analogue of the paper's channel and nlpkkt240
// PDE meshes.
func GenerateBandedMesh(n, band int64) (int64, []Edge) {
	return gen.BandedMesh(n, band)
}

// GenerateSmallWorld produces a Watts–Strogatz small-world graph (ring
// lattice of even degree k, rewiring probability beta), the analogue of the
// paper's CNR web crawl.
func GenerateSmallWorld(n, k int64, beta float64, seed uint64) (int64, []Edge, error) {
	return gen.WattsStrogatz(n, k, beta, seed)
}

// GenerateSSCA2 produces a DARPA SSCA#2 clique-based graph (the GTgraph
// model used in the paper's weak-scaling study) and its clique ground
// truth.
func GenerateSSCA2(n, maxCliqueSize int64, interProb float64, seed uint64) (int64, []Edge, []int64, error) {
	return gen.SSCA2(gen.SSCA2Options{N: n, MaxCliqueSize: maxCliqueSize, InterProb: interProb, Seed: seed})
}

// GenerateLFR produces an LFR-style benchmark graph with mixing parameter
// mu and its ground-truth communities (the paper's Table VII workload).
func GenerateLFR(n int64, mu float64, seed uint64) (int64, []Edge, []int64, error) {
	return gen.LFR(gen.DefaultLFR(n, mu, seed))
}

// GenerateRandom produces an Erdős–Rényi G(n, m) graph.
func GenerateRandom(n, m int64, seed uint64) (int64, []Edge) {
	return gen.ErdosRenyi(n, m, seed)
}

// File I/O: the binary edge-list format the paper's implementation reads
// through MPI I/O, plus plain-text edge lists.

// WriteGraph writes an undirected edge list to the binary format.
func WriteGraph(path string, n int64, edges []Edge) error {
	return gio.WriteBinary(path, n, edges)
}

// ReadGraph reads a binary edge-list file.
func ReadGraph(path string) (int64, []Edge, error) {
	return gio.ReadBinary(path)
}

// ReadGraphText parses a whitespace-separated "u v [w]" edge list with '#'
// or '%' comments (SNAP convention).
func ReadGraphText(path string) (int64, []Edge, error) {
	return gio.ReadEdgeListText(path)
}

// ReadGraphMETIS parses a graph in the METIS/Chaco adjacency format.
func ReadGraphMETIS(path string) (int64, []Edge, error) {
	return gio.ReadMETIS(path)
}
