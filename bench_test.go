// Benchmarks regenerating the paper's tables and figures at reduced size —
// one target per table/figure; cmd/paperbench runs the full-size versions
// and prints the complete rows. Run with:
//
//	go test -bench=. -benchmem
package distlouvain

import (
	"fmt"
	"testing"

	"distlouvain/internal/core"
	"distlouvain/internal/experiments"
	"distlouvain/internal/gen"
	"distlouvain/internal/quality"
	"distlouvain/internal/seq"
	"distlouvain/internal/shared"
)

// benchGraph caches one modest input per structural family.
var benchInputs = struct {
	meshN, socialN, cliqueN int64
	mesh, social, clique    []Edge
	cliqueTruth             []int64
}{}

func initBenchInputs() {
	if benchInputs.mesh != nil {
		return
	}
	benchInputs.meshN, benchInputs.mesh = gen.Grid2D(60, 60, true)
	var err error
	benchInputs.socialN, benchInputs.social, _, err = gen.LFR(gen.DefaultLFR(4000, 0.35, 17))
	if err != nil {
		panic(err)
	}
	benchInputs.cliqueN, benchInputs.clique, benchInputs.cliqueTruth, err =
		gen.SSCA2(gen.SSCA2Options{N: 4000, MaxCliqueSize: 24, InterProb: 0.02, Seed: 18})
	if err != nil {
		panic(err)
	}
}

// BenchmarkTable1_ET_Alpha measures the shared-memory ET sweep endpoints
// (α = 0 baseline vs α = 1 most aggressive) on the banded input, where the
// paper reports the largest savings.
func BenchmarkTable1_ET_Alpha(b *testing.B) {
	initBenchInputs()
	g := gen.Build(benchInputs.meshN, benchInputs.mesh)
	for _, alpha := range []float64{0, 1} {
		b.Run(fmt.Sprintf("alpha=%.0f", alpha), func(b *testing.B) {
			var iters int
			for i := 0; i < b.N; i++ {
				res := shared.Run(g, shared.Options{Threads: 1, Alpha: alpha, Seed: 42})
				iters = res.TotalIterations
			}
			b.ReportMetric(float64(iters), "louvain-iters")
		})
	}
}

// BenchmarkTable2_Graphs measures the serial reference on one graph per
// structural family (the Table II modularity column).
func BenchmarkTable2_Graphs(b *testing.B) {
	initBenchInputs()
	cases := []struct {
		name  string
		n     int64
		edges []Edge
	}{
		{"banded", benchInputs.meshN, benchInputs.mesh},
		{"social", benchInputs.socialN, benchInputs.social},
		{"cliques", benchInputs.cliqueN, benchInputs.clique},
	}
	for _, c := range cases {
		g := gen.Build(c.n, c.edges)
		b.Run(c.name, func(b *testing.B) {
			var q float64
			for i := 0; i < b.N; i++ {
				q = seq.Run(g, seq.Options{}).Modularity
			}
			b.ReportMetric(q, "modularity")
		})
	}
}

// BenchmarkTable3_DistVsShared measures the distributed engine against the
// shared-memory comparator at equal concurrency (the Table III overhead).
func BenchmarkTable3_DistVsShared(b *testing.B) {
	initBenchInputs()
	g := gen.Build(benchInputs.socialN, benchInputs.social)
	b.Run("distributed-4ranks", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.RunOnEdges(4, benchInputs.socialN, benchInputs.social, core.Baseline()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("shared-4threads", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			shared.Run(g, shared.Options{Threads: 4})
		}
	})
}

// BenchmarkTable4_BestVariant measures Baseline against the variant the
// paper most often crowns (ETC(0.25)).
func BenchmarkTable4_BestVariant(b *testing.B) {
	initBenchInputs()
	for _, cfg := range []core.Config{core.Baseline(), core.ETC(0.25)} {
		b.Run(cfg.VariantName(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.RunOnEdges(2, benchInputs.meshN, benchInputs.mesh, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable5_WeakScaling measures SSCA#2 configurations with fixed
// work per rank (Table V / Fig. 4).
func BenchmarkTable5_WeakScaling(b *testing.B) {
	for _, p := range []int{1, 2, 4} {
		opt := gen.SSCA2ForScale(int64(p), 1500, 500)
		n, edges, _, err := gen.SSCA2(opt)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("ranks=%d", p), func(b *testing.B) {
			var q float64
			for i := 0; i < b.N; i++ {
				res, err := core.RunOnEdges(p, n, edges, core.Baseline())
				if err != nil {
					b.Fatal(err)
				}
				q = res.Modularity
			}
			b.ReportMetric(q, "modularity")
		})
	}
}

// BenchmarkTable6_ETplusTC measures ET(0.25) with and without Threshold
// Cycling (Table VI's ~10% combination gain).
func BenchmarkTable6_ETplusTC(b *testing.B) {
	initBenchInputs()
	for _, cfg := range []core.Config{core.ET(0.25), core.ETWithTC(0.25)} {
		b.Run(cfg.VariantName(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.RunOnEdges(2, benchInputs.socialN, benchInputs.social, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable7_LFRQuality measures the full quality-assessment path:
// distributed detection plus the root gather and the F-score computation.
func BenchmarkTable7_LFRQuality(b *testing.B) {
	n, edges, truth, err := gen.LFR(gen.DefaultLFR(4000, 0.2, 700))
	if err != nil {
		b.Fatal(err)
	}
	var f float64
	for i := 0; i < b.N; i++ {
		res, err := core.RunOnEdges(2, n, edges, core.Baseline())
		if err != nil {
			b.Fatal(err)
		}
		score, err := quality.Compare(res.GlobalComm, truth)
		if err != nil {
			b.Fatal(err)
		}
		f = score.FScore
	}
	b.ReportMetric(f, "f-score")
}

// BenchmarkFig3_StrongScaling measures the Baseline across rank counts on
// the social analogue (the Fig. 3 curves; on one core the rank axis
// exposes communication overhead rather than speedup).
func BenchmarkFig3_StrongScaling(b *testing.B) {
	initBenchInputs()
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("ranks=%d", p), func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				res, err := core.RunOnEdges(p, benchInputs.socialN, benchInputs.social, core.Baseline())
				if err != nil {
					b.Fatal(err)
				}
				bytes = res.Traffic.TotalBytes()
			}
			b.ReportMetric(float64(bytes)/1e6, "MB-sent")
		})
	}
}

// BenchmarkFig5_ConvergenceMesh measures ET(0.25) vs ET(0.75) on the banded
// input (Fig. 5: the 0.25 setting should need fewer total iterations).
func BenchmarkFig5_ConvergenceMesh(b *testing.B) {
	initBenchInputs()
	for _, cfg := range []core.Config{core.ET(0.25), core.ET(0.75)} {
		b.Run(cfg.VariantName(), func(b *testing.B) {
			var iters int
			for i := 0; i < b.N; i++ {
				res, err := core.RunOnEdges(2, benchInputs.meshN, benchInputs.mesh, cfg)
				if err != nil {
					b.Fatal(err)
				}
				iters = res.TotalIterations
			}
			b.ReportMetric(float64(iters), "louvain-iters")
		})
	}
}

// BenchmarkFig6_ConvergenceWeb mirrors Fig. 6 on a power-law web analogue,
// where the paper observes the converse ET ordering.
func BenchmarkFig6_ConvergenceWeb(b *testing.B) {
	n, edges, err := gen.RMAT(11, 8, 0.65, 0.15, 0.15, 0.05, 105)
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []core.Config{core.ET(0.25), core.ET(0.75)} {
		b.Run(cfg.VariantName(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.RunOnEdges(2, n, edges, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkProfile_Section5A measures one full Baseline run with the step
// timers the §V-A breakdown reports.
func BenchmarkProfile_Section5A(b *testing.B) {
	initBenchInputs()
	var commFrac float64
	for i := 0; i < b.N; i++ {
		res, err := core.RunOnEdges(4, benchInputs.socialN, benchInputs.social, core.Baseline())
		if err != nil {
			b.Fatal(err)
		}
		total := res.Steps.Total.Seconds()
		if total > 0 {
			commFrac = (res.Steps.GhostComm.Seconds() + res.Steps.CommunityComm.Seconds() +
				res.Steps.Allreduce.Seconds()) / total
		}
	}
	b.ReportMetric(100*commFrac, "comm-%")
}

// BenchmarkQuickstartAPI measures the public entry point end to end (small
// input; dominated by fixed per-run costs).
func BenchmarkQuickstartAPI(b *testing.B) {
	n, edges := gen.Grid2D(20, 20, true)
	for i := 0; i < b.N; i++ {
		if _, err := Detect(n, edges, Options{Ranks: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExperimentHarness exercises one full experiment runner (kept the
// smallest: Fig. 2's schedule rendering plus a single Fig. 3 cell).
func BenchmarkExperimentHarness(b *testing.B) {
	ws := experiments.TestGraphs(experiments.Small)
	w, err := experiments.FindGraph(ws, "mesh-channel")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(experiments.Small, []experiments.Workload{w}, []int{1}); err != nil {
			b.Fatal(err)
		}
	}
}
