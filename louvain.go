// Package distlouvain is a Go implementation of the distributed-memory
// parallel Louvain method for graph community detection of Ghosh et al.
// (IPDPS 2018), together with the serial and shared-memory (Grappolo-style)
// implementations it is evaluated against, the synthetic workload
// generators used in the paper's experiments, and ground-truth quality
// metrics.
//
// The top-level API runs the distributed algorithm on in-process ranks —
// goroutines exchanging serialized messages through the package's
// message-passing runtime, the single-binary analogue of "mpirun -np R".
// For genuinely multi-process execution over TCP, see cmd/dlouvain.
//
// Quick start:
//
//	edges := []distlouvain.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}}
//	res, err := distlouvain.Detect(3, edges, distlouvain.Options{Ranks: 2})
//	if err != nil { ... }
//	fmt.Println(res.NumCommunities, res.Modularity)
package distlouvain

import (
	"fmt"
	"time"

	"distlouvain/internal/core"
	"distlouvain/internal/graph"
	"distlouvain/internal/quality"
	"distlouvain/internal/seq"
	"distlouvain/internal/shared"
)

// Edge is one undirected input edge with endpoints U, V and weight W.
type Edge = graph.RawEdge

// Variant selects the distributed algorithm configuration, matching the
// paper's experiment legend.
type Variant int

// Algorithm variants (§IV-B / §V of the paper).
const (
	// Baseline is Algorithm 2 without heuristics.
	Baseline Variant = iota
	// ThresholdCycling cycles the convergence threshold τ across phases
	// (Fig. 2 schedule).
	ThresholdCycling
	// EarlyTermination probabilistically deactivates vertices that have
	// stopped moving (requires Alpha).
	EarlyTermination
	// EarlyTerminationC adds the global inactive-count exit at 90%
	// (requires Alpha).
	EarlyTerminationC
	// EarlyTerminationTC combines EarlyTermination with ThresholdCycling.
	EarlyTerminationTC
)

// String renders the variant in the paper's legend style.
func (v Variant) String() string {
	switch v {
	case Baseline:
		return "Baseline"
	case ThresholdCycling:
		return "Threshold Cycling"
	case EarlyTermination:
		return "ET"
	case EarlyTerminationC:
		return "ETC"
	case EarlyTerminationTC:
		return "ET+TC"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Options configures Detect.
type Options struct {
	// Ranks is the number of simulated distributed-memory processes
	// (goroutine ranks); ≤0 selects 1.
	Ranks int
	// Threads is the worker-team size inside each rank (the OpenMP
	// threads of the paper's MPI+OpenMP runs); ≤0 selects 1.
	Threads int
	// Variant picks the heuristic configuration.
	Variant Variant
	// Alpha is the early-termination decay in [0,1]; required (>0) for
	// the EarlyTermination* variants. The paper evaluates 0.25 and 0.75.
	Alpha float64
	// Tau is the convergence threshold τ (≤0 selects 1e-6).
	Tau float64
	// Seed drives the early-termination coin flips; runs with equal
	// seeds and options are deterministic.
	Seed uint64
	// MaxPhases and MaxIterations cap work (0 = defaults).
	MaxPhases     int
	MaxIterations int
	// SendChangedOnly prunes per-iteration ghost updates to changed
	// entries (a pure traffic optimization; results are identical).
	SendChangedOnly bool
	// UseNeighborCollectives routes ghost exchanges through sparse
	// neighborhood collectives (MPI-3 style; the paper's §VI plan) —
	// O(neighbours) messages per rank instead of O(Ranks). Results are
	// identical.
	UseNeighborCollectives bool
	// UseColoring sweeps vertices one distance-1 color class at a time
	// using a distributed Jones–Plassmann coloring (the paper's §VI
	// faster-convergence extension).
	UseColoring bool
}

// Phase describes one Louvain phase of a run.
type Phase struct {
	// Vertices is the (coarsened) graph size the phase ran on.
	Vertices int64
	// Iterations is the number of Louvain iterations executed.
	Iterations int
	// Modularity is the phase-final modularity.
	Modularity float64
	// QTrajectory records modularity after every iteration.
	QTrajectory []float64
	// MovesTrajectory records how many vertices changed community in each
	// iteration (the decaying migration rate that motivates ET).
	MovesTrajectory []int64
	// Tau is the threshold the phase ran with (varies under cycling).
	Tau float64
	// InactiveFrac is the global fraction of inactive vertices at phase
	// end (early-termination variants).
	InactiveFrac float64
	// Exit tells why the phase ended: "tau", "etc" or "maxiter".
	Exit string
}

// Result is the outcome of a community detection run.
type Result struct {
	// Communities assigns a dense label in [0, NumCommunities) to every
	// vertex.
	Communities []int64
	// NumCommunities is the number of detected communities.
	NumCommunities int64
	// Modularity is the exact Newman modularity of the assignment.
	Modularity float64
	// Phases describes each executed phase.
	Phases []Phase
	// TotalIterations sums Louvain iterations across phases.
	TotalIterations int
	// Runtime is the end-to-end wall time.
	Runtime time.Duration
	// BytesCommunicated counts payload bytes rank 0 sent during a
	// distributed run (0 for serial/shared runs).
	BytesCommunicated int64
}

func (o Options) toConfig() (core.Config, error) {
	var cfg core.Config
	switch o.Variant {
	case Baseline:
		cfg = core.Baseline()
	case ThresholdCycling:
		cfg = core.ThresholdCycling()
	case EarlyTermination:
		if o.Alpha <= 0 {
			return cfg, fmt.Errorf("distlouvain: EarlyTermination requires Alpha > 0")
		}
		cfg = core.ET(o.Alpha)
	case EarlyTerminationC:
		if o.Alpha <= 0 {
			return cfg, fmt.Errorf("distlouvain: EarlyTerminationC requires Alpha > 0")
		}
		cfg = core.ETC(o.Alpha)
	case EarlyTerminationTC:
		if o.Alpha <= 0 {
			return cfg, fmt.Errorf("distlouvain: EarlyTerminationTC requires Alpha > 0")
		}
		cfg = core.ETWithTC(o.Alpha)
	default:
		return cfg, fmt.Errorf("distlouvain: unknown variant %d", int(o.Variant))
	}
	cfg.Tau = o.Tau
	cfg.Threads = o.Threads
	cfg.Seed = o.Seed
	cfg.MaxPhases = o.MaxPhases
	cfg.MaxIterations = o.MaxIterations
	cfg.SendChangedOnly = o.SendChangedOnly
	cfg.UseNeighborCollectives = o.UseNeighborCollectives
	cfg.UseColoring = o.UseColoring
	return cfg, nil
}

// Detect runs the distributed Louvain method over n vertices and the given
// undirected edges. Duplicate edges merge by weight; self loops are
// allowed. Vertex IDs must lie in [0, n).
func Detect(n int64, edges []Edge, opt Options) (*Result, error) {
	if n < 0 {
		return nil, fmt.Errorf("distlouvain: negative vertex count")
	}
	ranks := opt.Ranks
	if ranks <= 0 {
		ranks = 1
	}
	cfg, err := opt.toConfig()
	if err != nil {
		return nil, err
	}
	res, err := core.RunOnEdges(ranks, n, edges, cfg)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Communities:       res.GlobalComm,
		NumCommunities:    res.Communities,
		Modularity:        res.Modularity,
		TotalIterations:   res.TotalIterations,
		Runtime:           res.Runtime,
		BytesCommunicated: res.Traffic.TotalBytes(),
	}
	for _, ph := range res.Phases {
		out.Phases = append(out.Phases, Phase{
			Vertices:        ph.Vertices,
			Iterations:      ph.Iterations,
			Modularity:      ph.Modularity,
			QTrajectory:     ph.QTrajectory,
			MovesTrajectory: ph.MovesTrajectory,
			Tau:             ph.Tau,
			InactiveFrac:    ph.InactiveFrac,
			Exit:            string(ph.Exit),
		})
	}
	return out, nil
}

// DetectSerial runs the reference serial Louvain method (Algorithm 1).
func DetectSerial(n int64, edges []Edge, tau float64) (*Result, error) {
	if n < 0 {
		return nil, fmt.Errorf("distlouvain: negative vertex count")
	}
	start := time.Now()
	g := graph.FromRawEdges(n, edges)
	r := seq.Run(g, seq.Options{Tau: tau})
	out := &Result{
		Communities:     r.Comm,
		NumCommunities:  r.Communities,
		Modularity:      r.Modularity,
		TotalIterations: r.TotalIterations,
		Runtime:         time.Since(start),
	}
	for _, ph := range r.Phases {
		out.Phases = append(out.Phases, Phase{Vertices: ph.Vertices, Iterations: ph.Iterations, Modularity: ph.Modularity})
	}
	return out, nil
}

// SharedOptions configures DetectShared, the Grappolo-style shared-memory
// comparator.
type SharedOptions struct {
	Threads         int
	Tau             float64
	Alpha           float64 // early-termination decay; 0 disables
	UseColoring     bool    // distance-1 coloring sweep
	VertexFollowing bool    // pre-merge degree-1 vertices
	Seed            uint64
	MaxPhases       int
	MaxIterations   int
}

// DetectShared runs the shared-memory multithreaded Louvain method.
func DetectShared(n int64, edges []Edge, opt SharedOptions) (*Result, error) {
	if n < 0 {
		return nil, fmt.Errorf("distlouvain: negative vertex count")
	}
	g := graph.FromRawEdges(n, edges)
	r := shared.Run(g, shared.Options{
		Threads: opt.Threads, Tau: opt.Tau, Alpha: opt.Alpha,
		UseColoring: opt.UseColoring, VertexFollowing: opt.VertexFollowing,
		Seed: opt.Seed, MaxPhases: opt.MaxPhases, MaxIterations: opt.MaxIterations,
	})
	out := &Result{
		Communities:     r.Comm,
		NumCommunities:  r.Communities,
		Modularity:      r.Modularity,
		TotalIterations: r.TotalIterations,
		Runtime:         r.Runtime,
	}
	for _, ph := range r.Phases {
		out.Phases = append(out.Phases, Phase{Vertices: ph.Vertices, Iterations: ph.Iterations, Modularity: ph.Modularity})
	}
	return out, nil
}

// Modularity computes the Newman modularity of an assignment over the
// given graph (Equation 2 of the paper).
func Modularity(n int64, edges []Edge, comm []int64) float64 {
	return seq.Modularity(graph.FromRawEdges(n, edges), comm)
}

// Score is the ground-truth comparison result: precision, recall, F-score
// (HPEC'17 methodology) and normalized mutual information.
type Score = quality.Score

// CompareToGroundTruth scores a detected assignment against ground truth.
func CompareToGroundTruth(detected, truth []int64) (Score, error) {
	return quality.Compare(detected, truth)
}
