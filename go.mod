module distlouvain

go 1.22
