// Command paperbench regenerates every table and figure of the paper's
// evaluation section on synthetic analogues of its datasets.
//
// Usage:
//
//	paperbench -exp all                 # run the full suite (text output)
//	paperbench -exp table1              # one experiment
//	paperbench -exp fig3 -graphs mesh-channel,rmat-orkut -ranks 1,2,4
//	paperbench -exp all -markdown       # GitHub-markdown output
//	paperbench -scale medium            # 4x larger inputs
//	paperbench -exp bench -json        # machine-readable benchmark baseline
//	paperbench -exp bench -json -kernels=false -check BENCH_paperbench.json
//
// Experiments: table1 table2 table3 table4 table5 table6 table7 fig2 fig3
// fig4 fig5 fig6 profile bench all. ("all" covers the paper tables and
// figures; "bench" is the separate baseline recorder.)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"distlouvain/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (table1..table7, fig2..fig6, profile, all)")
		scale    = flag.String("scale", "small", "input scale: small or medium")
		ranks    = flag.String("ranks", "1,2,4,8", "rank counts for scaling experiments")
		graphs   = flag.String("graphs", "", "comma-separated workload subset for fig3 (default: all)")
		threads  = flag.Int("threads", 1, "worker threads per rank / shared-memory team size")
		p        = flag.Int("p", 4, "rank count for fixed-p experiments (table4, table7, fig5/6, profile, bench)")
		markdown = flag.Bool("markdown", false, "emit GitHub markdown instead of aligned text")
		jsonOut  = flag.Bool("json", false, "bench: emit the report as JSON on stdout")
		checkF   = flag.String("check", "", "bench: compare against a recorded baseline file; non-zero exit on deviation")
		tol      = flag.Float64("tol", 0.005, "bench: allowed absolute modularity deviation for -check")
		byteTol  = flag.Float64("byte-tol", 0.05, "bench: allowed relative p2p/collective payload growth for -check")
		kernels  = flag.Bool("kernels", true, "bench: include isolated kernel measurements (slow; disable for CI smoke)")
	)
	flag.Parse()

	var s experiments.Scale
	switch *scale {
	case "small":
		s = experiments.Small
	case "medium":
		s = experiments.Medium
	default:
		fatalf("unknown scale %q (want small or medium)", *scale)
	}

	rankList, err := parseInts(*ranks)
	if err != nil {
		fatalf("bad -ranks: %v", err)
	}

	emit := func(t *experiments.Table) {
		if *markdown {
			fmt.Print(t.Markdown())
		} else {
			fmt.Println(t.Text())
		}
	}

	run := func(id string) {
		start := time.Now()
		switch id {
		case "table1":
			emit(experiments.Table1(s, *threads))
		case "table2":
			t, err := experiments.Table2(s)
			check(err)
			emit(t)
		case "table3":
			t, err := experiments.Table3(s)
			check(err)
			emit(t)
		case "table4":
			t, err := experiments.Table4(s, *p)
			check(err)
			emit(t)
		case "table5":
			t, _, err := experiments.Table5(s)
			check(err)
			emit(t)
		case "table6":
			t, err := experiments.Table6(s)
			check(err)
			emit(t)
		case "table7":
			t, err := experiments.Table7(s, *p)
			check(err)
			emit(t)
		case "fig2":
			emit(experiments.Fig2())
		case "fig3":
			ws := experiments.TestGraphs(s)
			if *graphs != "" {
				var subset []experiments.Workload
				for _, name := range strings.Split(*graphs, ",") {
					w, err := experiments.FindGraph(ws, strings.TrimSpace(name))
					check(err)
					subset = append(subset, w)
				}
				ws = subset
			}
			t, err := experiments.Fig3(s, ws, rankList)
			check(err)
			emit(t)
		case "fig4":
			_, points, err := experiments.Table5(s)
			check(err)
			emit(experiments.Fig4(points))
		case "fig5", "fig6":
			t5, t6, err := experiments.Fig5and6(s, *p)
			check(err)
			if id == "fig5" {
				emit(t5)
			} else {
				emit(t6)
			}
		case "profile":
			t, err := experiments.Profile(s, *p)
			check(err)
			emit(t)
		case "bench":
			ws := experiments.TestGraphs(s)
			if *graphs != "" {
				var subset []experiments.Workload
				for _, name := range strings.Split(*graphs, ",") {
					w, err := experiments.FindGraph(ws, strings.TrimSpace(name))
					check(err)
					subset = append(subset, w)
				}
				ws = subset
			}
			rep, err := experiments.Bench(s, *p, *threads, ws, *kernels)
			check(err)
			if *checkF != "" {
				base, err := experiments.LoadBenchReport(*checkF)
				check(err)
				check(experiments.CompareBench(rep, base, *tol, *byteTol))
				fmt.Fprintf(os.Stderr, "[bench check OK against %s, tol %g, byte-tol %g]\n", *checkF, *tol, *byteTol)
			}
			if *jsonOut {
				enc := json.NewEncoder(os.Stdout)
				enc.SetIndent("", "  ")
				check(enc.Encode(rep))
			} else {
				emit(experiments.BenchTable(rep))
			}
		default:
			fatalf("unknown experiment %q", id)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %.1fs]\n", id, time.Since(start).Seconds())
	}

	if *exp == "all" {
		for _, id := range []string{"table1", "table2", "table3", "table4", "table5", "table6", "table7",
			"fig2", "fig3", "fig4", "fig5", "fig6", "profile"} {
			run(id)
		}
		return
	}
	run(*exp)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if v <= 0 {
			return nil, fmt.Errorf("rank count %d must be positive", v)
		}
		out = append(out, v)
	}
	return out, nil
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "paperbench: "+format+"\n", args...)
	os.Exit(1)
}
