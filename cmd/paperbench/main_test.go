package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"distlouvain/internal/experiments"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 2,8")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 8 {
		t.Fatalf("got %v", got)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := parseInts("0"); err == nil {
		t.Fatal("expected positivity error")
	}
	if _, err := parseInts("-3"); err == nil {
		t.Fatal("expected positivity error")
	}
}

// TestBenchReportRoundTrip runs the bench experiment on one small workload
// and pushes the report through the same write/load/compare cycle that
// `make bench-record` and the CI smoke gate use.
func TestBenchReportRoundTrip(t *testing.T) {
	ws := experiments.TestGraphs(experiments.Small)
	w, err := experiments.FindGraph(ws, "smallworld-cnr")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := experiments.Bench(experiments.Small, 2, 1, []experiments.Workload{w}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Workloads) != 1 || rep.Workloads[0].Graph != "smallworld-cnr" {
		t.Fatalf("unexpected workloads: %+v", rep.Workloads)
	}
	bw := rep.Workloads[0]
	if bw.Modularity <= 0 || bw.Phases == 0 || bw.Iterations == 0 || len(bw.Breakdown) == 0 {
		t.Fatalf("degenerate bench row: %+v", bw)
	}

	path := filepath.Join(t.TempDir(), "bench.json")
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := experiments.LoadBenchReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := experiments.CompareBench(rep, base, 0, 0); err != nil {
		t.Fatalf("self-comparison at zero tolerance: %v", err)
	}

	// A modularity deviation beyond tolerance must fail the gate.
	drifted := *rep
	drifted.Workloads = append([]experiments.BenchWorkload(nil), rep.Workloads...)
	drifted.Workloads[0].Modularity += 0.01
	if err := experiments.CompareBench(&drifted, base, 0.005, 0.05); err == nil {
		t.Fatal("CompareBench accepted a 0.01 modularity drift at tol 0.005")
	} else if !strings.Contains(err.Error(), "modularity") {
		t.Fatalf("unexpected gate error: %v", err)
	}

	// A payload regression beyond byte-tol must fail the gate too. The bench
	// row must actually carry byte columns for the gate to bite.
	if p2p, _ := experiments.SumWorkloadBytes(rep.Workloads[0]); p2p == 0 {
		t.Fatal("bench row recorded zero p2p bytes; byte accounting broken")
	}
	bloated := *rep
	bloated.Workloads = append([]experiments.BenchWorkload(nil), rep.Workloads...)
	bloated.Workloads[0].Breakdown = append([]experiments.BenchPhase(nil), rep.Workloads[0].Breakdown...)
	bloated.Workloads[0].Breakdown[0].P2PBytes *= 2
	if err := experiments.CompareBench(&bloated, base, 0.005, 0.05); err == nil {
		t.Fatal("CompareBench accepted a doubled p2p payload at byte-tol 0.05")
	} else if !strings.Contains(err.Error(), "payload") {
		t.Fatalf("unexpected gate error: %v", err)
	}

	// Schema drift (unknown field) must fail the strict loader.
	bad := strings.Replace(string(data), "\"schema_version\"", "\"bogus_field\": 1, \"schema_version\"", 1)
	badPath := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(badPath, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := experiments.LoadBenchReport(badPath); err == nil {
		t.Fatal("LoadBenchReport accepted an unknown field")
	}
}

// TestCommittedBaselineLoads guards the recorded BENCH_paperbench.json at
// the repository root: it must stay schema-valid and non-degenerate.
func TestCommittedBaselineLoads(t *testing.T) {
	rep, err := experiments.LoadBenchReport(filepath.Join("..", "..", "BENCH_paperbench.json"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != experiments.BenchSchemaVersion {
		t.Fatalf("baseline schema %d, code expects %d", rep.SchemaVersion, experiments.BenchSchemaVersion)
	}
	if len(rep.Workloads) == 0 {
		t.Fatal("baseline has no workloads")
	}
	for _, w := range rep.Workloads {
		if w.Phases == 0 || w.Iterations == 0 {
			t.Fatalf("degenerate baseline row %s: %+v", w.Graph, w)
		}
	}
	if len(rep.Kernels) == 0 {
		t.Fatal("baseline has no kernel measurements")
	}
	for _, k := range rep.Kernels {
		if k.NsPerOp <= 0 {
			t.Fatalf("degenerate kernel row: %+v", k)
		}
	}
}
