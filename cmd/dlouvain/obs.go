// Observability wiring for dlouvain: -trace-dir exports per-rank NDJSON span
// traces, -report prints the paper-§V-A per-phase timing breakdown, and
// -pprof-addr serves net/http/pprof plus the metrics registry over expvar.
package main

import (
	"expvar"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"sync"

	"distlouvain/internal/core"
	"distlouvain/internal/obsv"
)

// obsOptions carries the observability flag values from main.
type obsOptions struct {
	traceDir  string // NDJSON span export directory ("" disables)
	report    bool   // print the per-phase timing breakdown after the run
	pprofAddr string // pprof/expvar listen address ("" disables)
	traceCap  int    // span ring capacity per rank tracer
}

// tracingOn reports whether any feature needs spans recorded.
func (o obsOptions) tracingOn() bool { return o.traceDir != "" || o.report }

// newTracer returns an enabled tracer for the rank, or nil (the zero-cost
// off switch) when no observability feature needs spans.
func (o obsOptions) newTracer(rank int) *obsv.Tracer {
	if !o.tracingOn() {
		return nil
	}
	return obsv.NewTracer(rank, o.traceCap)
}

// flushTraces writes each tracer's span ring under -trace-dir. Export
// failures are reported but never fail the run: traces are diagnostics.
func (o obsOptions) flushTraces(tracers ...*obsv.Tracer) {
	if o.traceDir == "" {
		return
	}
	for _, tr := range tracers {
		if err := obsv.WriteTraceFile(o.traceDir, tr); err != nil {
			fmt.Fprintf(os.Stderr, "dlouvain: trace export: %v\n", err)
		}
	}
}

// printReport renders the rank's §V-A-style breakdown table on stdout.
func (o obsOptions) printReport(tr *obsv.Tracer) {
	if !o.report || tr == nil {
		return
	}
	obsv.BuildReport(tr.Snapshot()).Format(os.Stdout)
	if d := tr.Dropped(); d > 0 {
		fmt.Printf("note: %d spans overwritten (ring full; raise -trace-cap)\n", d)
	}
}

// pprofOnce guards the singleton debug server: expvar.Publish panics on a
// duplicate name, and one process serves one address.
var pprofOnce sync.Once

// startPprof serves net/http/pprof and, when a registry is given, its
// expvar snapshot under /debug/vars, on addr. Empty addr disables.
func startPprof(addr string, reg *obsv.Registry) {
	if addr == "" {
		return
	}
	pprofOnce.Do(func() {
		if reg != nil {
			expvar.Publish("dlouvain", expvar.Func(func() any { return reg.ExpvarSnapshot() }))
		}
		go func() {
			if err := http.ListenAndServe(addr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "dlouvain: pprof server: %v\n", err)
			}
		}()
	})
}

// recordRunMetrics freezes a completed run's headline results into the
// registry timeline, one record per phase plus a run summary.
func recordRunMetrics(reg *obsv.Registry, res *core.Result) {
	if reg == nil || res == nil {
		return
	}
	for i, ph := range res.Phases {
		reg.RecordEvent("phase", fmt.Sprintf("phase[%d]", i), map[string]float64{
			"vertices":   float64(ph.Vertices),
			"iterations": float64(ph.Iterations),
			"modularity": ph.Modularity,
		})
	}
	reg.RecordEvent("run", "done", map[string]float64{
		"communities": float64(res.Communities),
		"modularity":  res.Modularity,
		"phases":      float64(len(res.Phases)),
		"iterations":  float64(res.TotalIterations),
		"seconds":     res.Runtime.Seconds(),
	})
}
