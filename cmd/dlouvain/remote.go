// Multi-host supervision: -transport tcp-remote runs the supervising driver
// of a coordinator-placed world. Each attempt places one rank process per
// slot across the hosts currently registered with the coordinator, spawns
// them through the coordinator's control channel, and watches their progress
// beacons over the WAN control channel exactly like the tcp-local supervisor
// watches local children. Rank death reaches the driver as an exit event;
// host death reaches it when the coordinator's lease reaper condemns the
// silent host and synthesizes exits for its orphaned spawns. Either way the
// attempt fails retryably and the next attempt — at the NEXT epoch, so the
// old world is fenced — re-places every rank on the hosts that survive.
//
// The graph and -ckpt-dir must live on storage every host shares; the driver
// does not ship files.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"syscall"
	"time"

	"distlouvain/internal/coord"
	"distlouvain/internal/core"
	"distlouvain/internal/obsv"
	"distlouvain/internal/supervisor"
)

// remoteOptions carries the tcp-remote flag values from main.
type remoteOptions struct {
	coord         string // coordinator address
	job           string // job id shared with the host agents
	bin           string // dlouvain binary path on the agent hosts
	controlListen string // beacon listen address (must be host-reachable)
}

// remoteLauncher implements supervisor.Launcher over the coordinator's
// control channel.
type remoteLauncher struct {
	opts        remoteOptions
	graph       string
	dir         string // working directory sent with spawns
	passthrough []string
	faultArgs   []string
	chaos       chaosSpec
	logf        func(format string, args ...any)

	mu     sync.Mutex
	ctrl   *coord.Controller
	hosts  map[string]int // live host -> slots
	synced chan struct{}  // closed once the membership snapshot is in
	cur    *remoteAttempt
}

// ensureController dials the coordinator's control channel if the previous
// connection is gone, waiting until the host-membership snapshot arrives.
func (l *remoteLauncher) ensureController() error {
	l.mu.Lock()
	if l.ctrl != nil {
		l.mu.Unlock()
		return nil
	}
	l.mu.Unlock()
	ctrl, err := coord.DialController(l.opts.coord, l.opts.job, 0)
	if err != nil {
		return fmt.Errorf("attach to coordinator %s: %w", l.opts.coord, err)
	}
	synced := make(chan struct{})
	l.mu.Lock()
	l.ctrl = ctrl
	l.hosts = make(map[string]int)
	l.synced = synced
	l.mu.Unlock()
	go l.route(ctrl, synced)
	select {
	case <-synced:
		return nil
	case <-time.After(30 * time.Second):
		ctrl.Close()
		return fmt.Errorf("coordinator %s sent no membership snapshot", l.opts.coord)
	}
}

// route consumes one controller connection's event stream: membership
// updates mutate the host map, exits go to the current attempt, and the
// stream's death fails the attempt retryably (the next launch re-dials).
func (l *remoteLauncher) route(ctrl *coord.Controller, synced chan struct{}) {
	for ev := range ctrl.Events {
		switch ev.Kind {
		case coord.EventHost:
			l.mu.Lock()
			l.hosts[ev.Host] = ev.Slots
			l.mu.Unlock()
			l.logf("host %q joined (%d slots)", ev.Host, ev.Slots)
		case coord.EventHostLost:
			l.mu.Lock()
			delete(l.hosts, ev.Host)
			l.mu.Unlock()
			l.logf("coordinator condemned host %q: %s", ev.Host, ev.Err)
		case coord.EventSync:
			select {
			case <-synced:
			default:
				close(synced)
			}
		case coord.EventExit:
			// A synthetic host-lost exit precedes its EventHostLost on the
			// wire; drop the host now so a relaunch that races the next
			// event cannot place ranks on the corpse.
			if ev.Code == -1 && ev.Host != "" && ev.Err != "" &&
				len(ev.Err) >= 9 && ev.Err[:9] == "host lost" {
				l.mu.Lock()
				delete(l.hosts, ev.Host)
				l.mu.Unlock()
			}
			l.mu.Lock()
			cur := l.cur
			l.mu.Unlock()
			if cur != nil {
				cur.exit(ev)
			}
		}
	}
	l.mu.Lock()
	dead := l.ctrl == ctrl
	if dead {
		l.ctrl = nil
	}
	cur := l.cur
	l.mu.Unlock()
	if dead && cur != nil {
		cur.fail("coordinator control channel lost")
	}
}

// placement assigns each rank a host, round-robin across the live hosts'
// slots (sorted by name for determinism), oversubscribing when a relaunch
// must fit the world onto fewer survivors.
func (l *remoteLauncher) placement(ranks int, deadline time.Duration) ([]string, error) {
	limit := time.Now().Add(deadline)
	for {
		l.mu.Lock()
		names := make([]string, 0, len(l.hosts))
		for h := range l.hosts {
			names = append(names, h)
		}
		sort.Strings(names)
		var slots []string
		for _, h := range names {
			for i := 0; i < l.hosts[h]; i++ {
				slots = append(slots, h)
			}
		}
		l.mu.Unlock()
		if len(slots) > 0 {
			if len(slots) < ranks {
				l.logf("oversubscribing: %d ranks on %d slot(s) across %d host(s)", ranks, len(slots), len(names))
			}
			placed := make([]string, ranks)
			for r := range placed {
				placed[r] = slots[r%len(slots)]
			}
			return placed, nil
		}
		if time.Now().After(limit) {
			return nil, fmt.Errorf("no registered hosts for job %q after %v", l.opts.job, deadline)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func (l *remoteLauncher) Launch(spec supervisor.LaunchSpec, beacons func(supervisor.Beacon)) (supervisor.Attempt, error) {
	if err := l.ensureController(); err != nil {
		return nil, err
	}
	placed, err := l.placement(spec.Ranks, 30*time.Second)
	if err != nil {
		return nil, err
	}
	// Epoch = attempt + 1: every relaunch seals a fresh generation, so the
	// previous attempt's stragglers are fenced instead of joining the mesh.
	epoch := spec.Attempt + 1
	a := &remoteAttempt{
		l:         l,
		live:      make(map[string]int, spec.Ranks),
		rankID:    make(map[int]string, spec.Ranks),
		retryable: true,
		done:      make(chan struct{}),
	}
	for r := 0; r < spec.Ranks; r++ {
		id := fmt.Sprintf("e%d-r%d", epoch, r)
		a.live[id] = r
		a.rankID[r] = id
	}
	sink := beacons
	if l.chaos.active() && l.chaos.armed(spec.Attempt) {
		var killOnce, stopOnce sync.Once
		sink = func(b supervisor.Beacon) {
			a.maybeChaos(&killOnce, &stopOnce, b)
			beacons(b)
		}
	}
	srv, err := supervisor.ListenBeacons(l.opts.controlListen, sink)
	if err != nil {
		return nil, err
	}
	a.srv = srv
	l.mu.Lock()
	l.cur = a
	ctrl := l.ctrl
	l.mu.Unlock()
	env := []string{supervisor.EnvBeaconAddr + "=" + srv.Addr()}
	for r := 0; r < spec.Ranks; r++ {
		args := []string{l.opts.bin, "-transport", "tcp",
			"-coord", l.opts.coord, "-coord-job", l.opts.job,
			"-coord-epoch", fmt.Sprint(epoch),
			"-rank", fmt.Sprint(r), "-np", fmt.Sprint(spec.Ranks)}
		args = append(args, l.passthrough...)
		if l.chaos.armed(spec.Attempt) {
			args = append(args, l.faultArgs...)
		}
		if spec.Resume {
			args = append(args, "-resume")
		}
		args = append(args, l.graph)
		l.logf("attempt %d: rank %d -> host %s (spawn %s)", spec.Attempt, r, placed[r], a.rankID[r])
		if err := ctrl.Spawn(placed[r], a.rankID[r], args, l.dir, env); err != nil {
			a.fail(fmt.Sprintf("spawn rank %d on %s: %v", r, placed[r], err))
			return a, nil
		}
	}
	return a, nil
}

// maybeChaos mirrors procLauncher's beacon-driven fault injection, but the
// signal travels through the coordinator to whichever host runs the rank.
func (a *remoteAttempt) maybeChaos(killOnce, stopOnce *sync.Once, b supervisor.Beacon) {
	if b.Kind != supervisor.KindPhaseStart && b.Kind != supervisor.KindIteration {
		return
	}
	l := a.l
	if b.Rank == l.chaos.killRank && b.Phase >= l.chaos.killPhase {
		killOnce.Do(func() {
			l.logf("chaos: SIGKILL rank %d (spawn %s) at phase %d", b.Rank, a.rankID[b.Rank], b.Phase)
			a.signalRank(b.Rank, syscall.SIGKILL)
		})
	}
	if b.Rank == l.chaos.stopRank && b.Phase >= l.chaos.stopPhase {
		stopOnce.Do(func() {
			l.logf("chaos: SIGSTOP rank %d (spawn %s) at phase %d", b.Rank, a.rankID[b.Rank], b.Phase)
			a.signalRank(b.Rank, syscall.SIGSTOP)
		})
	}
}

// remoteAttempt is one placed world. Exits arrive via the launcher's event
// router; Kill/Interrupt travel back through the coordinator as signals. A
// wedged host cannot block Wait forever: its lease expires, the coordinator
// synthesizes exits for its spawns, and the attempt completes.
type remoteAttempt struct {
	l   *remoteLauncher
	srv *supervisor.BeaconServer

	mu        sync.Mutex
	live      map[string]int // spawn id -> rank, pending only
	rankID    map[int]string // rank -> spawn id (stable for the attempt)
	fails     []string
	retryable bool
	err       error
	finished  bool
	done      chan struct{}

	killOnce, intOnce sync.Once
}

func (a *remoteAttempt) exit(ev coord.Event) {
	a.mu.Lock()
	r, ok := a.live[ev.ID]
	if !ok {
		a.mu.Unlock()
		return // another attempt's spawn, or a duplicate report
	}
	delete(a.live, ev.ID)
	if ev.Code != 0 {
		where := ev.Host
		if where == "" {
			where = "?"
		}
		msg := fmt.Sprintf("rank %d on %s: exit %d", r, where, ev.Code)
		if ev.Err != "" {
			msg += " (" + ev.Err + ")"
		}
		a.fails = append(a.fails, msg)
		// Exit 3 is the retryable protocol code; -1 is a signal death or a
		// condemned host's synthetic exit — a lost peer, also retryable.
		if ev.Code != exitRetryable && ev.Code != -1 {
			a.retryable = false
		}
	}
	remaining := len(a.live)
	a.mu.Unlock()
	if remaining == 0 {
		a.finish()
	}
}

// fail terminates the attempt early (controller lost, spawn write failed):
// whatever ranks are still out there will be fenced by the next epoch.
func (a *remoteAttempt) fail(why string) {
	a.mu.Lock()
	if a.finished {
		a.mu.Unlock()
		return
	}
	a.fails = append(a.fails, why)
	a.live = map[string]int{}
	a.mu.Unlock()
	a.finish()
}

func (a *remoteAttempt) finish() {
	a.mu.Lock()
	if a.finished {
		a.mu.Unlock()
		return
	}
	a.finished = true
	if len(a.fails) > 0 {
		msg := a.fails[0]
		for _, f := range a.fails[1:] {
			msg += "; " + f
		}
		a.err = &childrenError{msg: msg, retryable: a.retryable}
	}
	a.mu.Unlock()
	a.l.mu.Lock()
	if a.l.cur == a {
		a.l.cur = nil
	}
	a.l.mu.Unlock()
	a.srv.Close()
	close(a.done)
}

func (a *remoteAttempt) Wait() error { <-a.done; return a.err }

func (a *remoteAttempt) signalRank(rank int, sig syscall.Signal) {
	a.l.mu.Lock()
	ctrl := a.l.ctrl
	a.l.mu.Unlock()
	if ctrl == nil {
		return
	}
	a.mu.Lock()
	id, ok := a.rankID[rank]
	_, pending := a.live[id]
	a.mu.Unlock()
	if ok && pending {
		ctrl.Signal(id, int(sig))
	}
}

func (a *remoteAttempt) signalAll(sig syscall.Signal) {
	a.l.mu.Lock()
	ctrl := a.l.ctrl
	a.l.mu.Unlock()
	if ctrl == nil {
		return
	}
	a.mu.Lock()
	ids := make([]string, 0, len(a.live))
	for id := range a.live {
		ids = append(ids, id)
	}
	a.mu.Unlock()
	for _, id := range ids {
		ctrl.Signal(id, int(sig))
	}
}

func (a *remoteAttempt) Kill()      { a.killOnce.Do(func() { a.signalAll(syscall.SIGKILL) }) }
func (a *remoteAttempt) Interrupt() { a.intOnce.Do(func() { a.signalAll(syscall.SIGTERM) }) }

// superviseRemoteTCP supervises a coordinator-placed multi-host world.
func superviseRemoteTCP(np int, graph string, cfg core.Config, resume bool, opts supOptions, oopts obsOptions, ropts remoteOptions) {
	if ropts.bin == "" {
		exe, err := os.Executable()
		if err != nil {
			fatalf("%v", err)
		}
		ropts.bin = exe
	}
	dir, err := os.Getwd()
	if err != nil {
		fatalf("%v", err)
	}
	reg := obsv.NewRegistry(0)
	startPprof(oopts.pprofAddr, reg)
	var passthrough, faultArgs []string
	flagVisitChildArgs(func(name, val string) { passthrough = append(passthrough, "-"+name+"="+val) },
		func(name, val string) { faultArgs = append(faultArgs, "-"+name+"="+val) })
	sopts := opts.supervisorOptions(cfg)
	sopts.OnRestart = func(restarts, ranks int, resume bool, cause error) {
		reg.BeginGeneration()
		var res float64
		if resume {
			res = 1
		}
		reg.RecordEvent("restart", "relaunch", map[string]float64{
			"restarts": float64(restarts), "ranks": float64(ranks), "resume": res,
		})
	}
	verbose := opts.verbose
	sopts.OnBeacon = func(b supervisor.Beacon) {
		reg.RecordEvent("beacon", string(b.Kind), map[string]float64{
			"rank": float64(b.Rank), "phase": float64(b.Phase),
			"iter": float64(b.Iteration), "q": b.Modularity,
		})
		if verbose {
			fmt.Fprintf(os.Stderr, "dlouvain: beacon %+v\n", b)
		}
	}
	l := &remoteLauncher{
		opts: ropts, graph: graph, dir: dir,
		passthrough: passthrough, faultArgs: faultArgs,
		chaos: opts.chaos, logf: sopts.Logf,
	}
	sup := supervisor.New(l, sopts)
	trapInterrupt(func(os.Signal) {
		fmt.Fprintln(os.Stderr, "dlouvain: interrupt: checkpointing at the next phase boundary")
		sup.Interrupt()
	})
	if err := sup.Run(np, resume); err != nil {
		runFailf(err, "%v", err)
	}
	os.Exit(0)
}

// flagVisitChildArgs walks the set flags and splits them into child
// passthrough args and fault-injection args (forwarded on armed attempts
// only), excluding everything that belongs to the driver itself.
func flagVisitChildArgs(pass func(name, val string), fault func(name, val string)) {
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "transport", "np", "rank", "hosts", "supervise", "resume",
			"max-restarts", "backoff", "min-ranks", "hang-min", "hang-max", "poll",
			"chaos-kill-rank", "chaos-kill-phase", "chaos-stop-rank", "chaos-stop-phase",
			"chaos-all-attempts", "pprof-addr",
			"coord", "coord-job", "coord-epoch", "listen", "advertise",
			"host-agent", "agent-host", "slots", "agent-advertise",
			"remote-bin", "control-listen":
			// Driver-side flags: topology and supervision stay with the
			// parent; -coord/-coord-job/-coord-epoch are re-issued per
			// attempt with that attempt's epoch; -listen/-advertise are
			// per-host decisions the agents make (-agent-advertise).
		case "fault-seed", "fault-drop", "fault-dup", "fault-delay", "fault-kill-after":
			fault(f.Name, f.Value.String())
		default:
			pass(f.Name, f.Value.String())
		}
	})
}
