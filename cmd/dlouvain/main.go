// Command dlouvain runs the distributed Louvain community detection on a
// binary edge-list graph, either with in-process ranks (goroutines, the
// default — the single-binary analogue of mpirun) or as one OS process per
// rank communicating over TCP.
//
// In-process:
//
//	dlouvain -np 8 -variant etc -alpha 0.25 g.bin
//
// TCP (launch one process per rank, same flags everywhere):
//
//	dlouvain -transport tcp -rank 0 -hosts 127.0.0.1:7000,127.0.0.1:7001 g.bin &
//	dlouvain -transport tcp -rank 1 -hosts 127.0.0.1:7000,127.0.0.1:7001 g.bin
//
// Or let the binary spawn one local OS process per rank itself:
//
//	dlouvain -transport tcp-local -np 4 g.bin
//
// Multi-host: instead of hand-writing -hosts lists, ranks can rendezvous
// through a coordinator (cmd/dcoord). Each rank binds its own listener,
// registers under a job id, and receives the sealed membership plus a
// generation fencing token that keeps stale ranks from healed partitions out
// of live worlds:
//
//	dcoord -listen 10.0.0.1:9470 &
//	dlouvain -transport tcp -coord 10.0.0.1:9470 -coord-job j1 -np 2 -rank 0 g.bin &
//	dlouvain -transport tcp -coord 10.0.0.1:9470 -coord-job j1 -np 2 -rank 1 g.bin
//
// Or run a host agent per machine and let a supervising driver place the
// ranks, watch their beacons over the WAN control channel, and re-place the
// ranks of hosts the coordinator condemns:
//
//	dlouvain -host-agent -coord 10.0.0.1:9470 -coord-job j1 -slots 4 \
//	    -agent-advertise 10.0.0.2 &            # on every worker machine
//	dlouvain -transport tcp-remote -coord 10.0.0.1:9470 -coord-job j1 \
//	    -np 8 -ckpt-dir /shared/ck g.bin       # the driver, anywhere
//
// Variants: baseline, tc (threshold cycling), et, etc, ettc (ET+TC); et,
// etc and ettc require -alpha. Use -truth to score against a ground-truth
// community file and -o to write the detected assignment.
//
// Checkpoint/restart: -ckpt-dir enables phase-boundary snapshots, -resume
// continues from the latest committed checkpoint (the rank count may
// differ), and a run that ends in a retryable failure (lost peer, expired
// deadline) exits with code 3:
//
//	until dlouvain -np 8 -ckpt-dir ck -resume g.bin; do
//	    [ $? -eq 3 ] || break
//	done
//
// Or let the built-in supervisor own that loop: -supervise watches rank
// progress beacons, kills hung worlds, and relaunches crashed or killed
// worlds from the latest committed checkpoint with exponential backoff —
// degrading to fewer ranks when a size repeatedly fails:
//
//	dlouvain -transport tcp-local -np 8 -supervise -ckpt-dir ck \
//	    -max-restarts 5 -min-ranks 2 g.bin
//
// SIGTERM/SIGINT checkpoints at the next phase boundary and exits with the
// retryable code 3; a second signal aborts immediately.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"distlouvain/internal/coord"
	"distlouvain/internal/core"
	"distlouvain/internal/dgraph"
	"distlouvain/internal/gio"
	"distlouvain/internal/mpi"
	"distlouvain/internal/obsv"
	"distlouvain/internal/partition"
	"distlouvain/internal/quality"
	"distlouvain/internal/supervisor"
)

func main() {
	var (
		np         = flag.Int("np", 4, "in-process rank count")
		transport  = flag.String("transport", "inproc", "inproc, tcp, or tcp-local (self-spawning local processes)")
		rank       = flag.Int("rank", 0, "tcp: this process's rank")
		hosts      = flag.String("hosts", "", "tcp: comma-separated host:port per rank")
		variant    = flag.String("variant", "baseline", "baseline, tc, et, etc, ettc")

		// Multi-host rendezvous and placement: -coord replaces -hosts (ranks
		// discover each other through the coordinator under a job id and a
		// fencing generation), -host-agent turns this process into a machine
		// agent executing placed ranks, and -transport tcp-remote runs the
		// supervising driver that places ranks across registered hosts.
		coordAddr      = flag.String("coord", "", "coordinator address (host:port); replaces -hosts for tcp, required for tcp-remote")
		coordJob       = flag.String("coord-job", "dlouvain", "coordinator job id; every rank and agent of one world shares it")
		coordEpoch     = flag.Int("coord-epoch", 1, "world incarnation under -coord; each relaunch must use a higher epoch")
		listenAddr     = flag.String("listen", "", "coord rendezvous: mesh listen address (default 127.0.0.1:0; multi-host ranks need a routable interface)")
		advertiseSpec  = flag.String("advertise", "", "coord rendezvous: address peers dial for this rank (host or host:port; default the bound listener)")
		hostAgent      = flag.Bool("host-agent", false, "run as a host agent: register -slots with -coord and execute ranks placed here (no graph argument)")
		agentHost      = flag.String("agent-host", "", "host-agent: unique host name within the job (default the OS hostname)")
		agentSlots     = flag.Int("slots", 1, "host-agent: how many ranks this host offers")
		agentAdvertise = flag.String("agent-advertise", "", "host-agent: address ranks spawned here advertise to peers (host or host:port)")
		remoteBin      = flag.String("remote-bin", "", "tcp-remote: dlouvain binary path on the agent hosts (default this executable's path)")
		controlListen  = flag.String("control-listen", "", "tcp-remote: beacon control-channel listen address (default 127.0.0.1:0; must be reachable from agent hosts)")

		alpha      = flag.Float64("alpha", 0.25, "early-termination decay (et, etc, ettc)")
		tau        = flag.Float64("tau", 0, "convergence threshold (default 1e-6)")
		threads    = flag.Int("threads", 1, "worker threads per rank")
		seed       = flag.Uint64("seed", 1, "early-termination seed")
		pruned     = flag.Bool("pruned-ghosts", false, "legacy fixed-width changed-only ghost updates (superseded by -ghost-delta)")
		ghostDelta = flag.Bool("ghost-delta", true, "delta-encoded ghost refresh with dense/sparse switching (false forces full snapshots)")
		sparseThr  = flag.Float64("ghost-sparse-threshold", 0.25, "changed fraction above which a ghost delta frame falls back to a dense snapshot")
		frontier   = flag.String("frontier", "auto", "frontier-driven sweeps: auto (dense/sparse switching), dense, sparse, or off (full scan every iteration)")
		frontThr   = flag.Float64("frontier-sparse-threshold", 0.25, "frontier fraction of the partition below which auto uses the sorted id list instead of the bitmap")
		wireFmt    = flag.Int("wire-format", 0, "wire format to propose (0 = newest; 1 = fixed-width; world negotiates the minimum)")
		edgeBal    = flag.Bool("edgebalance", false, "edge-balanced input partition instead of even vertex split")
		neighbor   = flag.Bool("neighbor-coll", false, "use sparse neighborhood collectives for ghost exchange")
		coloring   = flag.Bool("coloring", false, "sweep by distance-1 color classes (distributed Jones-Plassmann)")
		outPath    = flag.String("o", "", "write detected communities (one label per line)")
		truthPath  = flag.String("truth", "", "ground-truth file for quality scoring")
		verbose    = flag.Bool("v", false, "per-phase progress output")

		// Checkpoint/restart: with -ckpt-dir, every rank snapshots its
		// state at phase boundaries; -resume continues from the latest
		// committed checkpoint (possibly at a different -np). A run that
		// ends in a retryable failure exits with code 3, so a wrapper can
		// loop `dlouvain -resume` until success.
		ckptDir   = flag.String("ckpt-dir", "", "checkpoint directory (enables phase-boundary snapshots)")
		ckptEvery = flag.Int("ckpt-every", 1, "snapshot after every k-th completed phase")
		ckptKeep  = flag.Int("ckpt-keep", 2, "committed phase snapshots to retain per rank")
		resume    = flag.Bool("resume", false, "resume from the checkpoint in -ckpt-dir")

		// Self-healing supervision (inproc and tcp-local): watch rank
		// progress beacons, kill hung worlds, relaunch retryable failures
		// from the latest checkpoint with backoff, degrade the rank count
		// when a size keeps failing.
		supervise   = flag.Bool("supervise", false, "supervise the run: auto-restart from checkpoints on failure")
		maxRestarts = flag.Int("max-restarts", 5, "supervise: relaunch budget before giving up")
		backoff     = flag.Duration("backoff", 500*time.Millisecond, "supervise: base restart delay (doubles per consecutive failure)")
		minRanks    = flag.Int("min-ranks", 1, "supervise: smallest world size degradation may reach")
		hangMin     = flag.Duration("hang-min", 5*time.Second, "supervise: floor of the adaptive hang-detection window")
		hangMax     = flag.Duration("hang-max", 2*time.Minute, "supervise: cap (and bootstrap value) of the hang-detection window")
		pollEvery   = flag.Duration("poll", 250*time.Millisecond, "supervise: failure-detector poll cadence")

		// Chaos injection for supervised tcp-local runs (first attempt
		// only): SIGKILL or SIGSTOP a rank once its beacons reach a phase.
		chaosKillRank  = flag.Int("chaos-kill-rank", -1, "chaos: SIGKILL this rank (supervised tcp-local; -1 disables)")
		chaosKillPhase = flag.Int("chaos-kill-phase", 0, "chaos: phase at which -chaos-kill-rank fires")
		chaosStopRank  = flag.Int("chaos-stop-rank", -1, "chaos: SIGSTOP this rank (supervised tcp-local; -1 disables)")
		chaosStopPhase = flag.Int("chaos-stop-phase", 0, "chaos: phase at which -chaos-stop-rank fires")
		chaosAll       = flag.Bool("chaos-all-attempts", false, "chaos: re-arm chaos and fault injection on every attempt (exercises budget exhaustion)")

		// Rank-level observability: span tracing with NDJSON export, the
		// paper-§V-A per-phase timing breakdown, and a pprof/expvar debug
		// server. Tracing is off (and free) unless -trace-dir or -report
		// asks for it.
		traceDir  = flag.String("trace-dir", "", "write per-rank span traces (NDJSON) into this directory")
		reportOn  = flag.Bool("report", false, "print the per-phase timing breakdown (%p2p/%coll/%coarsen) after the run")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof and expvar metrics on this address")
		traceCap  = flag.Int("trace-cap", obsv.DefaultCapacity, "per-rank span ring capacity (oldest spans overwritten beyond it)")

		// Failure-semantics knobs: deadlines turn a dead or partitioned
		// peer into an error instead of a hang; the fault-* flags inject
		// transport faults for chaos testing (tcp transport only).
		recvTimeout = flag.Duration("recv-timeout", 0, "per-Recv deadline; 0 waits forever")
		collTimeout = flag.Duration("coll-timeout", 0, "per-collective receive deadline; 0 waits forever")
		faultSeed   = flag.Uint64("fault-seed", 0, "fault-injection RNG seed (with the other fault flags)")
		faultDrop   = flag.Float64("fault-drop", 0, "probability an outgoing message is dropped")
		faultDup    = flag.Float64("fault-dup", 0, "probability an outgoing message is duplicated")
		faultDelay  = flag.Float64("fault-delay", 0, "probability an outgoing message is delayed")
		faultKill   = flag.Int64("fault-kill-after", 0, "kill this rank's transport after N sends (tcp)")
	)
	flag.Parse()
	if err := validateFlags(flagValues{
		np: *np, threads: *threads, alpha: *alpha, tau: *tau,
		frontier: *frontier, frontThr: *frontThr,
		wireFmt: *wireFmt, ckptEvery: *ckptEvery, ckptKeep: *ckptKeep,
		supervise: *supervise, minRanks: *minRanks, maxRestarts: *maxRestarts,
		transport: *transport, hosts: *hosts, rank: *rank,
		coord: *coordAddr, coordEpoch: *coordEpoch,
		hostAgent: *hostAgent, agentSlots: *agentSlots,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "dlouvain: %v\n", err)
		fmt.Fprintln(os.Stderr, "usage: dlouvain [flags] <graph.bin>  (run with -h for the flag list)")
		os.Exit(2)
	}
	if *hostAgent {
		if flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "usage: dlouvain -host-agent -coord host:port [flags]  (no graph argument: the driver supplies it)")
			os.Exit(2)
		}
		runHostAgent(*coordAddr, *coordJob, *agentHost, *agentSlots, *agentAdvertise)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dlouvain [flags] <graph.bin>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *resume && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "dlouvain: -resume requires -ckpt-dir")
		os.Exit(2)
	}
	path := flag.Arg(0)

	cfg, err := buildConfig(*variant, *alpha)
	if err != nil {
		fatalf("%v", err)
	}
	cfg.Tau = *tau
	cfg.Threads = *threads
	cfg.Seed = *seed
	cfg.SendChangedOnly = *pruned
	if !*ghostDelta {
		cfg.GhostRefresh = core.GhostDense
	}
	cfg.GhostSparseThreshold = *sparseThr
	cfg.Frontier, _ = core.ParseFrontier(*frontier) // spelling validated by validateFlags
	cfg.FrontierSparseThreshold = *frontThr
	cfg.WireFormat = *wireFmt
	cfg.UseNeighborCollectives = *neighbor
	cfg.UseColoring = *coloring
	cfg.GatherOutput = true
	cfg.CheckpointDir = *ckptDir
	cfg.CheckpointEvery = *ckptEvery
	cfg.CheckpointKeep = *ckptKeep

	hdr, err := gio.ReadHeader(path)
	if err != nil {
		fatalf("%v", err)
	}

	commOpts := []mpi.CommOption{
		mpi.WithRecvTimeout(*recvTimeout),
		mpi.WithCollectiveTimeout(*collTimeout),
	}
	fault := mpi.FaultPlan{
		Seed:           *faultSeed,
		Drop:           *faultDrop,
		Duplicate:      *faultDup,
		Delay:          *faultDelay,
		KillAfterSends: *faultKill,
	}

	sopts := supOptions{
		maxRestarts: *maxRestarts,
		backoff:     *backoff,
		minRanks:    *minRanks,
		hangMin:     *hangMin,
		hangMax:     *hangMax,
		poll:        *pollEvery,
		chaos: chaosSpec{
			killRank: *chaosKillRank, killPhase: *chaosKillPhase,
			stopRank: *chaosStopRank, stopPhase: *chaosStopPhase,
			everyAttempt: *chaosAll,
		},
		verbose: *verbose,
	}

	oopts := obsOptions{
		traceDir:  *traceDir,
		report:    *reportOn,
		pprofAddr: *pprofAddr,
		traceCap:  *traceCap,
	}

	switch *transport {
	case "inproc":
		if *supervise {
			superviseInproc(path, hdr, *np, cfg, *edgeBal, *resume, *outPath, *truthPath, commOpts, fault, sopts, oopts)
			return
		}
		runInproc(path, hdr, *np, cfg, *edgeBal, *resume, *outPath, *truthPath, *verbose, commOpts, oopts)
	case "tcp":
		var size int
		var dial func() (mpi.Transport, error)
		if *coordAddr != "" {
			size = *np
			adv := meshAdvertise(*advertiseSpec)
			listen := meshListen(*listenAddr, adv)
			dial = func() (mpi.Transport, error) {
				return mpi.DialCoordWorld(mpi.CoordWorldConfig{
					Coord: *coordAddr, Job: *coordJob, Epoch: *coordEpoch,
					Rank: *rank, Size: size,
					Listen: listen, Advertise: adv,
				})
			}
		} else {
			addrs := strings.Split(*hosts, ",")
			size = len(addrs)
			dial = func() (mpi.Transport, error) {
				return mpi.DialTCPWorld(mpi.TCPWorldConfig{Rank: *rank, Addrs: addrs})
			}
		}
		runTCP(path, hdr, *rank, size, dial, cfg, *edgeBal, *resume, *outPath, *truthPath, *verbose, commOpts, fault, oopts)
	case "tcp-remote":
		superviseRemoteTCP(*np, path, cfg, *resume, sopts, oopts, remoteOptions{
			coord: *coordAddr, job: *coordJob,
			bin: *remoteBin, controlListen: *controlListen,
		})
	case "tcp-local":
		if *supervise {
			superviseLocalTCP(*np, path, cfg, *resume, sopts, oopts)
			return
		}
		launchLocalTCP(*np, oopts)
	default:
		fatalf("unknown transport %q", *transport)
	}
}

// faultActive reports whether any fault-injection knob is set.
func faultActive(p mpi.FaultPlan) bool {
	return p.Drop > 0 || p.Duplicate > 0 || p.Delay > 0 || p.KillAfterSends > 0 || len(p.Partition) > 0
}

// launchLocalTCP re-executes this binary once per rank with -transport tcp
// over freshly reserved loopback ports — a miniature single-host mpirun.
func launchLocalTCP(np int, oopts obsOptions) {
	if np <= 0 {
		fatalf("tcp-local needs -np >= 1")
	}
	// The parent serves the debug endpoint; children can't share one address.
	startPprof(oopts.pprofAddr, nil)
	addrs := make([]string, np)
	for r := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatalf("reserve port: %v", err)
		}
		addrs[r] = ln.Addr().String()
		ln.Close()
	}
	hostList := strings.Join(addrs, ",")

	// Rebuild the child argument vector: original flags minus the
	// transport/np settings, plus per-rank tcp settings.
	var passthrough []string
	flag.Visit(func(f *flag.Flag) {
		// -trace-dir and -report pass through (each rank writes its own
		// trace file; rank 0's stdout carries the report); -pprof-addr must
		// not — every child would race to bind the same address.
		if f.Name == "transport" || f.Name == "np" || f.Name == "rank" ||
			f.Name == "hosts" || f.Name == "pprof-addr" {
			return
		}
		passthrough = append(passthrough, "-"+f.Name+"="+f.Value.String())
	})
	exe, err := os.Executable()
	if err != nil {
		fatalf("%v", err)
	}
	var (
		mu   sync.Mutex
		cmds = make([]*exec.Cmd, 0, np)
	)
	// Children run in their own process group, so this parent is the only
	// signal distributor: SIGTERM/SIGINT forwards as one SIGTERM per rank
	// (checkpoint and exit retryable); a second signal kills the world.
	trapInterrupt(func(os.Signal) {
		mu.Lock()
		defer mu.Unlock()
		for _, cmd := range cmds {
			if cmd.Process != nil {
				cmd.Process.Signal(syscall.SIGTERM)
			}
		}
	})
	for r := 0; r < np; r++ {
		args := append([]string{"-transport", "tcp", "-rank", fmt.Sprint(r), "-hosts", hostList}, passthrough...)
		args = append(args, flag.Args()...)
		cmd := exec.Command(exe, args...)
		cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
		if r == 0 {
			cmd.Stdout = os.Stdout
			cmd.Stderr = os.Stderr
		}
		if err := cmd.Start(); err != nil {
			fatalf("spawn rank %d: %v", r, err)
		}
		mu.Lock()
		cmds = append(cmds, cmd)
		mu.Unlock()
	}
	// Aggregate child statuses: when every failure is retryable (code 3),
	// the whole world's failure is retryable — a wrapper may relaunch with
	// -resume; any other failure is fatal.
	failed, retryable := 0, 0
	for r, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			fmt.Fprintf(os.Stderr, "dlouvain: rank %d: %v\n", r, err)
			failed++
			var ee *exec.ExitError
			if errors.As(err, &ee) && ee.ExitCode() == exitRetryable {
				retryable++
			}
		}
	}
	os.Exit(aggregateExitCode(failed, retryable))
}

// aggregateExitCode folds per-rank child exit statuses into the parent's:
// success only when every rank succeeded, retryable only when every failure
// was retryable (so a wrapper may relaunch with -resume), fatal otherwise —
// one deterministic bug among crash collateral must surface as fatal.
func aggregateExitCode(failed, retryable int) int {
	switch {
	case failed == 0:
		return 0
	case retryable == failed:
		return exitRetryable
	default:
		return 1
	}
}

func buildConfig(variant string, alpha float64) (core.Config, error) {
	switch variant {
	case "baseline":
		return core.Baseline(), nil
	case "tc":
		return core.ThresholdCycling(), nil
	case "et":
		return core.ET(alpha), nil
	case "etc":
		return core.ETC(alpha), nil
	case "ettc":
		return core.ETWithTC(alpha), nil
	default:
		return core.Config{}, fmt.Errorf("unknown variant %q", variant)
	}
}

func rankBody(path string, hdr gio.Header, cfg core.Config, edgeBal, resume, verbose bool) func(c *mpi.Comm) (*core.Result, error) {
	return func(c *mpi.Comm) (*core.Result, error) {
		var res *core.Result
		if resume {
			var err error
			res, err = core.Resume(c, cfg.CheckpointDir, cfg)
			if err != nil {
				return nil, err
			}
		} else {
			ioStart := time.Now()
			chunk, err := gio.ReadSegment(path, c.Rank(), c.Size())
			if err != nil {
				return nil, err
			}
			ioDur := time.Since(ioStart)
			var part *partition.Partition
			if edgeBal {
				part, err = dgraph.EdgeBalancedPartition(c, hdr.Vertices, chunk)
				if err != nil {
					return nil, err
				}
			}
			dg, err := dgraph.Build(c, hdr.Vertices, chunk, part)
			if err != nil {
				return nil, err
			}
			if c.Rank() == 0 && verbose {
				fmt.Fprintf(os.Stderr, "rank 0: read %d edges in %v\n", len(chunk), ioDur)
			}
			res, err = core.Run(dg, cfg)
			if err != nil {
				return nil, err
			}
		}
		if c.Rank() == 0 && verbose {
			for i, ph := range res.Phases {
				fmt.Fprintf(os.Stderr, "phase %d: |V|=%d iters=%d Q=%.6f tau=%.0e exit=%s\n",
					i, ph.Vertices, ph.Iterations, ph.Modularity, ph.Tau, ph.Exit)
			}
		}
		return res, nil
	}
}

func runInproc(path string, hdr gio.Header, np int, cfg core.Config, edgeBal, resume bool, outPath, truthPath string, verbose bool, commOpts []mpi.CommOption, oopts obsOptions) {
	var interrupted atomic.Bool
	cfg.Interrupted = interrupted.Load
	trapInterrupt(func(os.Signal) {
		fmt.Fprintln(os.Stderr, "dlouvain: interrupt: checkpointing at the next phase boundary")
		interrupted.Store(true)
	})
	reg := obsv.NewRegistry(0)
	startPprof(oopts.pprofAddr, reg)
	tracers := make([]*obsv.Tracer, np)
	for r := range tracers {
		tracers[r] = oopts.newTracer(r)
	}
	var root *core.Result
	err := mpi.Run(np, func(c *mpi.Comm) error {
		tr := tracers[c.Rank()]
		c.SetTracer(tr)
		rcfg := cfg
		rcfg.Tracer = tr
		if c.Rank() == 0 {
			reg.AttachCounters("mpi.rank0", func() map[string]int64 {
				return c.Stats().Snapshot().Counters()
			})
		}
		res, err := rankBody(path, hdr, rcfg, edgeBal, resume, verbose)(c)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			root = res
		}
		return nil
	}, commOpts...)
	// Flush traces even on failure: the ring tail of a failed rank is the
	// post-mortem evidence the traces exist for.
	oopts.flushTraces(tracers...)
	if err != nil {
		runFailf(err, "%v", err)
	}
	recordRunMetrics(reg, root)
	report(root, hdr, cfg, np, outPath, truthPath)
	oopts.printReport(tracers[0])
}

// envAdvertise is the advertise-address default a host agent installs for
// the ranks it spawns: the agent — not the driver — knows which interface
// peers can reach its machine on.
const envAdvertise = "DLOUVAIN_ADVERTISE"

// meshAdvertise resolves the address this rank publishes to its peers: the
// -advertise flag, else the host agent's environment default, else empty
// (publish the bound listener verbatim).
func meshAdvertise(flagVal string) string {
	if flagVal != "" {
		return flagVal
	}
	return os.Getenv(envAdvertise)
}

// meshListen resolves the mesh listen address: the -listen flag wins; a rank
// with an advertised identity listens on every interface (peers dial the
// advertised one); otherwise the loopback default keeps single-machine worlds
// off external interfaces.
func meshListen(flagVal, advertise string) string {
	if flagVal != "" {
		return flagVal
	}
	if advertise != "" {
		return ":0"
	}
	return ""
}

func runTCP(path string, hdr gio.Header, rank, size int, dial func() (mpi.Transport, error), cfg core.Config, edgeBal, resume bool, outPath, truthPath string, verbose bool, commOpts []mpi.CommOption, fault mpi.FaultPlan, oopts obsOptions) {
	var interrupted atomic.Bool
	cfg.Interrupted = interrupted.Load
	trapInterrupt(func(os.Signal) {
		if rank == 0 {
			fmt.Fprintln(os.Stderr, "dlouvain: interrupt: checkpointing at the next phase boundary")
		}
		interrupted.Store(true)
	})
	tr := oopts.newTracer(rank)
	cfg.Tracer = tr
	reg := obsv.NewRegistry(rank)
	startPprof(oopts.pprofAddr, reg)

	// Under a supervising parent, report progress beacons over the control
	// channel, and treat a failed rendezvous as retryable: a sibling rank
	// dying during startup must not burn the supervisor's fatal path.
	supervised := supervisor.BeaconAddrFromEnv() != ""
	if supervised {
		if em, err := supervisor.DialBeacons(supervisor.BeaconAddrFromEnv()); err == nil {
			defer em.Close()
			cfg.Progress = supervisor.CoreProgressTraced(rank, 0, tr, em.Emit)
			em.Emit(supervisor.Beacon{Rank: rank, Kind: supervisor.KindHello})
		}
	}

	tp, err := dial()
	if err != nil {
		// Fencing is terminal even under supervision: this epoch's world no
		// longer exists, so retrying the same incarnation can never succeed
		// — and must not, or a stale rank from a healed partition would claw
		// its way back into the world that replaced it.
		var cfe *coord.FencedError
		var mfe *mpi.ErrFenced
		if errors.As(err, &cfe) || errors.As(err, &mfe) {
			fatalf("rank %d: %v", rank, err)
		}
		if supervised {
			fmt.Fprintf(os.Stderr, "dlouvain: rank %d: rendezvous: %v\n", rank, err)
			os.Exit(exitRetryable)
		}
		fatalf("%v", err)
	}
	if faultActive(fault) {
		fault.Seed ^= uint64(rank) * 0x9e3779b97f4a7c15 // per-rank schedule
		tp = mpi.NewFaultTransport(tp, fault)
	}
	defer tp.Close()
	c := mpi.NewComm(tp, commOpts...)
	c.SetTracer(tr)
	reg.AttachCounters("mpi", func() map[string]int64 {
		return c.Stats().Snapshot().Counters()
	})
	res, err := rankBody(path, hdr, cfg, edgeBal, resume, verbose)(c)
	oopts.flushTraces(tr)
	if err != nil {
		runFailf(err, "rank %d: %v", rank, err)
	}
	recordRunMetrics(reg, res)
	if rank == 0 {
		report(res, hdr, cfg, size, outPath, truthPath)
		oopts.printReport(tr)
	}
}

func report(res *core.Result, hdr gio.Header, cfg core.Config, np int, outPath, truthPath string) {
	fmt.Printf("variant=%s ranks=%d threads=%d\n", cfg.VariantName(), np, cfg.Threads)
	fmt.Printf("graph: %d vertices, %d edges\n", hdr.Vertices, hdr.Edges)
	fmt.Printf("communities=%d modularity=%.6f phases=%d iterations=%d time=%.3fs\n",
		res.Communities, res.Modularity, len(res.Phases), res.TotalIterations, res.Runtime.Seconds())
	fmt.Printf("time split: ghost=%.3fs community=%.3fs compute=%.3fs allreduce=%.3fs rebuild=%.3fs\n",
		res.Steps.GhostComm.Seconds(), res.Steps.CommunityComm.Seconds(),
		res.Steps.Compute.Seconds(), res.Steps.Allreduce.Seconds(), res.Steps.Rebuild.Seconds())
	fmt.Printf("rank-0 traffic: %.2f MB p2p, %.2f MB collective\n",
		float64(res.Traffic.SentBytes)/1e6, float64(res.Traffic.CollBytes)/1e6)

	if outPath != "" {
		if err := gio.WriteGroundTruth(outPath, res.GlobalComm); err != nil {
			fatalf("write %s: %v", outPath, err)
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	if truthPath != "" {
		truth, err := gio.ReadGroundTruth(truthPath, hdr.Vertices)
		if err != nil {
			fatalf("read %s: %v", truthPath, err)
		}
		score, err := quality.Compare(res.GlobalComm, truth)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("quality vs ground truth: precision=%.4f recall=%.4f f-score=%.4f nmi=%.4f ari=%.4f\n",
			score.Precision, score.Recall, score.FScore, score.NMI, score.ARI)
	}
}

// Exit codes: 0 success, 1 fatal error, 2 usage, 3 retryable run failure
// (lost peer, expired collective deadline, injected kill) — a restart
// wrapper can loop `dlouvain -resume` while the code is 3.
const exitRetryable = 3

// exitCodeFor classifies a run error for the process exit status. The
// supervisor's give-up diagnoses (restart budget exhausted, rank floor hit)
// are fatal even though the failures they wrap were retryable: the whole
// point of the supervisor is that when IT gives up, an operator must look.
func exitCodeFor(err error) int {
	if err == nil {
		return 0
	}
	var ex *supervisor.ExhaustedError
	var mr *supervisor.MinRanksError
	if errors.As(err, &ex) || errors.As(err, &mr) {
		return 1
	}
	if retryableRunErr(err) {
		return exitRetryable
	}
	return 1
}

// runFailf reports a failed run and exits with its classified code.
func runFailf(err error, format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dlouvain: "+format+"\n", args...)
	os.Exit(exitCodeFor(err))
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dlouvain: "+format+"\n", args...)
	os.Exit(1)
}
