// Flag validation for dlouvain: catch contradictory or out-of-range flag
// combinations before any world is launched, so misuse fails fast with exit
// code 2 and a usage hint instead of a confusing mid-run error.
package main

import (
	"errors"
	"fmt"
	"net"
	"strings"

	"distlouvain/internal/core"
	"distlouvain/internal/mpi"
)

// flagValues carries the parsed flags validateFlags inspects. A struct (not
// the flag pointers) keeps the rules independently testable.
type flagValues struct {
	np          int
	threads     int
	alpha       float64
	tau         float64
	frontier    string
	frontThr    float64
	wireFmt     int
	ckptEvery   int
	ckptKeep    int
	supervise   bool
	minRanks    int
	maxRestarts int
	transport   string
	hosts       string
	rank        int
	coord       string
	coordEpoch  int
	hostAgent   bool
	agentSlots  int
}

// validateFlags rejects flag combinations that cannot describe a valid run.
// It reports the FIRST violation: one clear complaint beats a wall of them.
func validateFlags(v flagValues) error {
	if v.hostAgent {
		// Host-agent mode executes ranks on a driver's behalf; none of the
		// run-shaping flags below apply to it.
		if v.coord == "" {
			return errors.New("-host-agent requires -coord: the agent registers with the coordinator")
		}
		if v.agentSlots < 1 {
			return fmt.Errorf("-slots must be >= 1 (got %d)", v.agentSlots)
		}
		return nil
	}
	switch v.transport {
	case "inproc", "tcp", "tcp-local", "tcp-remote":
	default:
		return fmt.Errorf("unknown -transport %q (want inproc, tcp, tcp-local, or tcp-remote)", v.transport)
	}
	if v.np < 1 {
		return fmt.Errorf("-np must be >= 1 (got %d)", v.np)
	}
	if v.threads < 1 {
		return fmt.Errorf("-threads must be >= 1 (got %d)", v.threads)
	}
	if v.alpha < 0 || v.alpha > 1 {
		return fmt.Errorf("-alpha must be in [0, 1] (got %g)", v.alpha)
	}
	if v.tau < 0 {
		return fmt.Errorf("-tau must be non-negative (got %g)", v.tau)
	}
	if _, err := core.ParseFrontier(v.frontier); err != nil {
		return fmt.Errorf("-frontier: %v", err)
	}
	if v.frontThr <= 0 || v.frontThr > 1 {
		return fmt.Errorf("-frontier-sparse-threshold must be in (0, 1] (got %g)", v.frontThr)
	}
	switch v.wireFmt {
	case 0, mpi.WireV1, mpi.WireV2:
	default:
		return fmt.Errorf("-wire-format must be 0 (newest), %d or %d (got %d)", mpi.WireV1, mpi.WireV2, v.wireFmt)
	}
	if v.ckptEvery < 1 {
		return fmt.Errorf("-ckpt-every must be >= 1 (got %d)", v.ckptEvery)
	}
	if v.ckptKeep < 1 {
		return fmt.Errorf("-ckpt-keep must be >= 1 (got %d)", v.ckptKeep)
	}
	if v.coord != "" && v.hosts != "" {
		return errors.New("-coord and -hosts are mutually exclusive: the coordinator discovers membership, a host list pins it")
	}
	switch v.transport {
	case "tcp":
		switch {
		case v.coord != "":
			if v.coordEpoch < 1 {
				return fmt.Errorf("-coord-epoch must be >= 1 (got %d)", v.coordEpoch)
			}
			if v.rank < 0 || v.rank >= v.np {
				return fmt.Errorf("-rank %d out of range [0,%d) of the -np world", v.rank, v.np)
			}
		case v.hosts != "":
			addrs := strings.Split(v.hosts, ",")
			if err := validateHostList(addrs); err != nil {
				return err
			}
			if v.rank < 0 || v.rank >= len(addrs) {
				return fmt.Errorf("-rank %d out of range [0,%d) of the -hosts list", v.rank, len(addrs))
			}
		default:
			return errors.New("-transport tcp needs -hosts or -coord")
		}
	case "tcp-remote":
		if v.coord == "" {
			return errors.New("-transport tcp-remote requires -coord: ranks are placed on coordinator-registered hosts")
		}
	}
	if v.supervise || v.transport == "tcp-remote" {
		if v.minRanks < 1 {
			return fmt.Errorf("-min-ranks must be >= 1 (got %d)", v.minRanks)
		}
		if v.minRanks > v.np {
			return fmt.Errorf("-min-ranks %d exceeds -np %d: degradation can only shrink the world", v.minRanks, v.np)
		}
		if v.maxRestarts < 0 {
			return errors.New("-max-restarts must be non-negative")
		}
	}
	return nil
}

// validateHostList rejects -hosts entries that are not host:port or that
// repeat an address: two ranks cannot share one listener, and a duplicate is
// almost always a copy-paste error that would otherwise surface as a
// baffling rendezvous hang.
func validateHostList(addrs []string) error {
	seen := make(map[string]struct{}, len(addrs))
	for i, a := range addrs {
		host, port, err := net.SplitHostPort(a)
		if err != nil || host == "" || port == "" {
			return fmt.Errorf("-hosts entry %d (%q) is not host:port", i, a)
		}
		if _, dup := seen[a]; dup {
			return fmt.Errorf("-hosts entry %d (%q) duplicates an earlier entry: every rank needs its own listener", i, a)
		}
		seen[a] = struct{}{}
	}
	return nil
}
