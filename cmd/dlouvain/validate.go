// Flag validation for dlouvain: catch contradictory or out-of-range flag
// combinations before any world is launched, so misuse fails fast with exit
// code 2 and a usage hint instead of a confusing mid-run error.
package main

import (
	"errors"
	"fmt"

	"distlouvain/internal/mpi"
)

// flagValues carries the parsed flags validateFlags inspects. A struct (not
// the flag pointers) keeps the rules independently testable.
type flagValues struct {
	np          int
	threads     int
	alpha       float64
	tau         float64
	wireFmt     int
	ckptEvery   int
	ckptKeep    int
	supervise   bool
	minRanks    int
	maxRestarts int
	transport   string
}

// validateFlags rejects flag combinations that cannot describe a valid run.
// It reports the FIRST violation: one clear complaint beats a wall of them.
func validateFlags(v flagValues) error {
	if v.transport != "inproc" && v.transport != "tcp" && v.transport != "tcp-local" {
		return fmt.Errorf("unknown -transport %q (want inproc, tcp, or tcp-local)", v.transport)
	}
	if v.np < 1 {
		return fmt.Errorf("-np must be >= 1 (got %d)", v.np)
	}
	if v.threads < 1 {
		return fmt.Errorf("-threads must be >= 1 (got %d)", v.threads)
	}
	if v.alpha < 0 || v.alpha > 1 {
		return fmt.Errorf("-alpha must be in [0, 1] (got %g)", v.alpha)
	}
	if v.tau < 0 {
		return fmt.Errorf("-tau must be non-negative (got %g)", v.tau)
	}
	switch v.wireFmt {
	case 0, mpi.WireV1, mpi.WireV2:
	default:
		return fmt.Errorf("-wire-format must be 0 (newest), %d or %d (got %d)", mpi.WireV1, mpi.WireV2, v.wireFmt)
	}
	if v.ckptEvery < 1 {
		return fmt.Errorf("-ckpt-every must be >= 1 (got %d)", v.ckptEvery)
	}
	if v.ckptKeep < 1 {
		return fmt.Errorf("-ckpt-keep must be >= 1 (got %d)", v.ckptKeep)
	}
	if v.supervise {
		if v.minRanks < 1 {
			return fmt.Errorf("-min-ranks must be >= 1 (got %d)", v.minRanks)
		}
		if v.minRanks > v.np {
			return fmt.Errorf("-min-ranks %d exceeds -np %d: degradation can only shrink the world", v.minRanks, v.np)
		}
		if v.maxRestarts < 0 {
			return errors.New("-max-restarts must be non-negative")
		}
	}
	return nil
}
