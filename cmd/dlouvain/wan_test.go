package main

// The WAN chaos suite: multi-process, multi-listener worlds rendezvousing
// through a real coordinator, disturbed by real-socket faults — host SIGKILL,
// asymmetric partition, absent coordinator, stale-epoch ranks, slow links —
// and required to finish bit-identical to an undisturbed run. Everything here
// runs over genuine kernel TCP sockets; nothing is faked in-process.
//
// Run with `make test-wan` (wired into `make check`).

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"distlouvain/internal/chaosnet"
	"distlouvain/internal/coord"
)

// syncBuf is a concurrency-safe writer capturing a subprocess's output while
// the test polls it for progress markers.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// waitForLine polls the buffer until some single line contains every
// substring, or fails the test at the deadline.
func waitForLine(t *testing.T, sb *syncBuf, timeout time.Duration, subs ...string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		for _, line := range strings.Split(sb.String(), "\n") {
			ok := true
			for _, sub := range subs {
				if !strings.Contains(line, sub) {
					ok = false
					break
				}
			}
			if ok {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no line with %q within %v; output so far:\n%s", subs, timeout, sb.String())
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// reserveLoopbackAddr grabs a free loopback port and releases it for the
// caller to bind shortly after.
func reserveLoopbackAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// referenceOutput runs the undisturbed in-process world at the given size and
// returns its output file: the bit-identity baseline for that rank count.
func referenceOutput(t *testing.T, bin, graph string, np int) string {
	t.Helper()
	out := filepath.Join(t.TempDir(), fmt.Sprintf("ref-np%d.out", np))
	cmd := exec.Command(bin, "-np", fmt.Sprint(np), "-o", out, graph)
	if outp, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("np-%d reference run: %v\n%s", np, err, outp)
	}
	return out
}

// startHostAgent launches a dlouvain host agent in its own process group, so
// SIGKILLing the group is a whole-host crash (the agent's rank processes
// share its group by design). The group is killed at test cleanup.
func startHostAgent(t *testing.T, bin, coordAddr, job, host string, slots int) (*exec.Cmd, *syncBuf) {
	t.Helper()
	var log syncBuf
	cmd := exec.Command(bin, "-host-agent", "-coord", coordAddr, "-coord-job", job,
		"-agent-host", host, "-slots", fmt.Sprint(slots))
	cmd.Stdout = &log
	cmd.Stderr = &log
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start agent %s: %v", host, err)
	}
	t.Cleanup(func() {
		syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL)
		cmd.Wait()
	})
	return cmd, &log
}

// waitForHosts blocks until the coordinator's membership snapshot for the job
// lists want hosts.
func waitForHosts(t *testing.T, coordAddr, job string, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ctrl, err := coord.DialController(coordAddr, job, 0)
		if err == nil {
			n := 0
			for ev := range ctrl.Events {
				if ev.Kind == coord.EventHost {
					n++
				}
				if ev.Kind == coord.EventSync {
					break
				}
			}
			ctrl.Close()
			if n >= want {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never saw %d hosts for job %q", want, job)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// coordRank builds the exec.Cmd for one coordinator-rendezvous rank process.
func coordRank(bin, coordAddr, job string, epoch, rank, np int, extra []string, graph string) *exec.Cmd {
	args := []string{"-transport", "tcp", "-coord", coordAddr, "-coord-job", job,
		"-coord-epoch", fmt.Sprint(epoch), "-rank", fmt.Sprint(rank), "-np", fmt.Sprint(np)}
	args = append(args, extra...)
	args = append(args, graph)
	return exec.Command(bin, args...)
}

// wantExit asserts a finished subprocess exited with the given code.
func wantExit(t *testing.T, label string, err error, log *syncBuf, code int) {
	t.Helper()
	if code == 0 {
		if err != nil {
			t.Fatalf("%s: %v\n%s", label, err, log.String())
		}
		return
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != code {
		t.Fatalf("%s: err = %v, want exit %d\n%s", label, err, code, log.String())
	}
}

// TestWANHostKillReplacement kills an entire "host" — the agent process group
// including the rank it runs — mid-iteration. The coordinator's lease reaper
// must condemn the silent host, the tcp-remote driver must re-place the dead
// host's rank on the survivor (oversubscribing its slots), and the healed
// world must finish bit-identical to the undisturbed run.
func TestWANHostKillReplacement(t *testing.T) {
	if testing.Short() {
		t.Skip("WAN chaos is not -short friendly")
	}
	bin, graph, refOut := buildBinaryAndGraph(t)
	srv, err := coord.Serve("127.0.0.1:0", coord.ServerConfig{
		LeaseTTL: 500 * time.Millisecond, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const job = "wan-kill"
	startHostAgent(t, bin, srv.Addr(), job, "h1", 2)
	agent2, _ := startHostAgent(t, bin, srv.Addr(), job, "h2", 1)
	waitForHosts(t, srv.Addr(), job, 2)

	dir := t.TempDir()
	out := filepath.Join(dir, "out")
	var log syncBuf
	drv := exec.Command(bin, "-transport", "tcp-remote",
		"-coord", srv.Addr(), "-coord-job", job, "-np", "3",
		"-ckpt-dir", filepath.Join(dir, "ck"), "-backoff", "20ms", "-v",
		"-o", out, graph)
	drv.Stdout = &log
	drv.Stderr = &log
	if err := drv.Start(); err != nil {
		t.Fatal(err)
	}

	// Hosts sort as [h1 h2] and slots expand to [h1 h1 h2], so rank 2 lands
	// on h2 deterministically. Wait until it is actually iterating, then
	// SIGKILL the whole host group: agent and rank die together, silently.
	waitForLine(t, &log, 60*time.Second, "rank 2 -> host h2")
	waitForLine(t, &log, 60*time.Second, "{Rank:2", "Kind:iteration")
	syscall.Kill(-agent2.Process.Pid, syscall.SIGKILL)

	err = drv.Wait()
	wantExit(t, "driver", err, &log, 0)
	if !strings.Contains(log.String(), `condemned host "h2"`) {
		t.Fatalf("the coordinator never condemned the killed host:\n%s", log.String())
	}
	sameFile(t, "host kill", out, refOut)
}

// TestWANAsymmetricPartitionHeal breaks exactly one direction of the (0,1)
// link — rank 0 goes deaf to rank 1 but keeps talking — through a real-socket
// chaos proxy. Both ranks must classify the stall as retryable (exit 3), and
// a post-heal relaunch at the next epoch must finish bit-identical.
func TestWANAsymmetricPartitionHeal(t *testing.T) {
	if testing.Short() {
		t.Skip("WAN chaos is not -short friendly")
	}
	bin, graph, _ := buildBinaryAndGraph(t)
	ref2 := referenceOutput(t, bin, graph, 2)
	srv, err := coord.Serve("127.0.0.1:0", coord.ServerConfig{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Rank 1 dials rank 0 (rank i dials every j < i), so fronting rank 0's
	// listener puts both directions of the only mesh link behind the proxy.
	backend := reserveLoopbackAddr(t)
	px, err := chaosnet.New("127.0.0.1:0", backend, chaosnet.Options{Fenced: true, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	px.Partition(chaosnet.AnyPeer, chaosnet.DirIn, true)

	const job = "wan-part"
	dir := t.TempDir()
	out := filepath.Join(dir, "out")
	common := []string{"-ckpt-dir", filepath.Join(dir, "ck"),
		"-recv-timeout", "1s", "-coll-timeout", "1s", "-o", out}
	rank0Extra := append(append([]string{}, common...), "-listen", backend, "-advertise", px.Addr())

	launch := func(epoch int) (r0, r1 *exec.Cmd, log0, log1 *syncBuf) {
		log0, log1 = &syncBuf{}, &syncBuf{}
		r0 = coordRank(bin, srv.Addr(), job, epoch, 0, 2, rank0Extra, graph)
		r1 = coordRank(bin, srv.Addr(), job, epoch, 1, 2, common, graph)
		r0.Stdout, r0.Stderr = log0, log0
		r1.Stdout, r1.Stderr = log1, log1
		if err := r0.Start(); err != nil {
			t.Fatal(err)
		}
		if err := r1.Start(); err != nil {
			t.Fatal(err)
		}
		return
	}

	// Epoch 1: the handshake passes (the proxy forwards it verbatim), the
	// mesh forms, and then every frame toward rank 0 vanishes. Rank 0's
	// deadline expires; rank 1 sees the peer die. Both must exit retryable.
	r0, r1, log0, log1 := launch(1)
	wantExit(t, "rank 0 under partition", r0.Wait(), log0, exitRetryable)
	wantExit(t, "rank 1 under partition", r1.Wait(), log1, exitRetryable)

	// Heal and relaunch at epoch 2: same proxy, same address, clean finish.
	px.Partition(chaosnet.AnyPeer, chaosnet.DirIn, false)
	r0, r1, log0, log1 = launch(2)
	wantExit(t, "rank 0 after heal", r0.Wait(), log0, 0)
	wantExit(t, "rank 1 after heal", r1.Wait(), log1, 0)
	sameFile(t, "asymmetric partition", out, ref2)
}

// TestWANLateCoordinatorRendezvous starts the ranks before any coordinator
// exists: the join loop must retry with backoff over real refused connections
// and seal the world once the coordinator appears, with no rank restarted.
func TestWANLateCoordinatorRendezvous(t *testing.T) {
	if testing.Short() {
		t.Skip("WAN chaos is not -short friendly")
	}
	bin, graph, _ := buildBinaryAndGraph(t)
	ref2 := referenceOutput(t, bin, graph, 2)

	const job = "wan-late"
	coordAddr := reserveLoopbackAddr(t)
	dir := t.TempDir()
	out := filepath.Join(dir, "out")
	common := []string{"-o", out}
	log0, log1 := &syncBuf{}, &syncBuf{}
	r0 := coordRank(bin, coordAddr, job, 1, 0, 2, common, graph)
	r1 := coordRank(bin, coordAddr, job, 1, 1, 2, common, graph)
	r0.Stdout, r0.Stderr = log0, log0
	r1.Stdout, r1.Stderr = log1, log1
	if err := r0.Start(); err != nil {
		t.Fatal(err)
	}
	if err := r1.Start(); err != nil {
		t.Fatal(err)
	}

	// Let both ranks burn a few refused dials, then bring the coordinator up
	// on the address they were promised.
	time.Sleep(1 * time.Second)
	srv, err := coord.Serve(coordAddr, coord.ServerConfig{Logf: t.Logf})
	if err != nil {
		t.Fatalf("late coordinator bind: %v", err)
	}
	defer srv.Close()

	wantExit(t, "rank 0 with late coordinator", r0.Wait(), log0, 0)
	wantExit(t, "rank 1 with late coordinator", r1.Wait(), log1, 0)
	sameFile(t, "late coordinator", out, ref2)
}

// TestWANStaleEpochFencedFast seals a world at epoch 2, then launches a rank
// claiming epoch 1 — the shape of a process crawling back from a healed
// partition. It must be rejected with a typed fencing error, quickly and
// terminally (exit 1, not the retryable 3, and no join-deadline hang).
func TestWANStaleEpochFencedFast(t *testing.T) {
	if testing.Short() {
		t.Skip("WAN chaos is not -short friendly")
	}
	bin, graph, _ := buildBinaryAndGraph(t)
	srv, err := coord.Serve("127.0.0.1:0", coord.ServerConfig{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const job = "wan-fence"
	log0, log1 := &syncBuf{}, &syncBuf{}
	r0 := coordRank(bin, srv.Addr(), job, 2, 0, 2, nil, graph)
	r1 := coordRank(bin, srv.Addr(), job, 2, 1, 2, nil, graph)
	r0.Stdout, r0.Stderr = log0, log0
	r1.Stdout, r1.Stderr = log1, log1
	if err := r0.Start(); err != nil {
		t.Fatal(err)
	}
	if err := r1.Start(); err != nil {
		t.Fatal(err)
	}
	wantExit(t, "epoch-2 rank 0", r0.Wait(), log0, 0)
	wantExit(t, "epoch-2 rank 1", r1.Wait(), log1, 0)

	stale := coordRank(bin, srv.Addr(), job, 1, 0, 2, nil, graph)
	staleLog := &syncBuf{}
	stale.Stdout, stale.Stderr = staleLog, staleLog
	start := time.Now()
	if err := stale.Start(); err != nil {
		t.Fatal(err)
	}
	werr := stale.Wait()
	elapsed := time.Since(start)
	wantExit(t, "stale epoch-1 rank", werr, staleLog, 1)
	if !strings.Contains(staleLog.String(), "fenced") {
		t.Fatalf("stale rank died without a fencing diagnostic:\n%s", staleLog.String())
	}
	if elapsed > 20*time.Second {
		t.Fatalf("fencing took %v; a stale rank must be rejected fast, not time out", elapsed)
	}
}

// TestWANSlowLink paces the whole (0,1) link at WAN-modem speed through the
// chaos proxy. The run must simply take longer and still finish bit-identical
// — congestion is not failure.
func TestWANSlowLink(t *testing.T) {
	if testing.Short() {
		t.Skip("WAN chaos is not -short friendly")
	}
	bin, graph, _ := buildBinaryAndGraph(t)
	ref2 := referenceOutput(t, bin, graph, 2)
	srv, err := coord.Serve("127.0.0.1:0", coord.ServerConfig{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	backend := reserveLoopbackAddr(t)
	px, err := chaosnet.New("127.0.0.1:0", backend, chaosnet.Options{Fenced: true})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	px.SlowLink(1, chaosnet.DirIn, 256*1024)
	px.SlowLink(1, chaosnet.DirOut, 256*1024)

	const job = "wan-slow"
	dir := t.TempDir()
	out := filepath.Join(dir, "out")
	common := []string{"-o", out}
	rank0Extra := append(append([]string{}, common...), "-listen", backend, "-advertise", px.Addr())
	log0, log1 := &syncBuf{}, &syncBuf{}
	r0 := coordRank(bin, srv.Addr(), job, 1, 0, 2, rank0Extra, graph)
	r1 := coordRank(bin, srv.Addr(), job, 1, 1, 2, common, graph)
	r0.Stdout, r0.Stderr = log0, log0
	r1.Stdout, r1.Stderr = log1, log1
	if err := r0.Start(); err != nil {
		t.Fatal(err)
	}
	if err := r1.Start(); err != nil {
		t.Fatal(err)
	}
	wantExit(t, "rank 0 on slow link", r0.Wait(), log0, 0)
	wantExit(t, "rank 1 on slow link", r1.Wait(), log1, 0)
	sameFile(t, "slow link", out, ref2)
}
