package main

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"distlouvain/internal/core"
	"distlouvain/internal/gen"
	"distlouvain/internal/gio"
	"distlouvain/internal/mpi"
	"distlouvain/internal/supervisor"
)

func TestAggregateExitCode(t *testing.T) {
	cases := []struct {
		name              string
		failed, retryable int
		want              int
	}{
		{"all ranks succeeded", 0, 0, 0},
		{"all failures retryable", 3, 3, exitRetryable},
		{"single retryable failure", 1, 1, exitRetryable},
		{"mixed retryable and fatal", 3, 2, 1},
		{"all fatal", 2, 0, 1},
	}
	for _, c := range cases {
		if got := aggregateExitCode(c.failed, c.retryable); got != c.want {
			t.Errorf("%s: aggregateExitCode(%d, %d) = %d, want %d",
				c.name, c.failed, c.retryable, got, c.want)
		}
	}
}

func TestExitCodeForSupervisorErrors(t *testing.T) {
	retryCause := &mpi.ErrPeerLost{Peer: 1, Cause: errors.New("eof")}
	cases := []struct {
		name string
		err  error
		want int
	}{
		// The supervisor's give-up errors are fatal even when the failure
		// they wrap was retryable: the budget IS the retry mechanism.
		{"budget exhausted", &supervisor.ExhaustedError{Restarts: 5, Last: retryCause}, 1},
		{"rank floor hit", &supervisor.MinRanksError{Ranks: 2, MinRanks: 2, Last: retryCause}, 1},
		{"graceful interrupt", fmt.Errorf("rank 0: %w", core.ErrInterrupted), exitRetryable},
		{"hang diagnosis", &supervisor.HangError{Suspects: []supervisor.Suspect{{Rank: 1}}}, exitRetryable},
		{"children all retryable", &childrenError{msg: "rank 1: exit status 3", retryable: true}, exitRetryable},
		{"children mixed fatal", &childrenError{msg: "rank 1: exit status 1", retryable: false}, 1},
	}
	for _, c := range cases {
		if got := exitCodeFor(c.err); got != c.want {
			t.Errorf("%s: exitCodeFor = %d, want %d", c.name, got, c.want)
		}
	}
}

// buildBinaryAndGraph compiles dlouvain and writes a multi-phase test graph,
// returning their paths plus the undisturbed reference output.
func buildBinaryAndGraph(t *testing.T) (bin, graphPath, refOut string) {
	t.Helper()
	dir := t.TempDir()
	bin = filepath.Join(dir, "dlouvain")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	n, edges := gen.ErdosRenyi(300, 1500, 5)
	graphPath = filepath.Join(dir, "g.bin")
	if err := gio.WriteBinary(graphPath, n, edges); err != nil {
		t.Fatal(err)
	}

	refOut = filepath.Join(dir, "ref.out")
	ref := exec.Command(bin, "-np", "3", "-o", refOut, graphPath)
	if out, err := ref.CombinedOutput(); err != nil {
		t.Fatalf("reference run: %v\n%s", err, out)
	}
	return bin, graphPath, refOut
}

func sameFile(t *testing.T, label, got, want string) {
	t.Helper()
	g, err := os.ReadFile(got)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	w, err := os.ReadFile(want)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if !bytes.Equal(g, w) {
		t.Fatalf("%s: supervised output differs from the undisturbed run", label)
	}
}

// TestSuperviseTCPLocalChaos is the process-level end of the chaos suite:
// child rank processes are SIGKILLed and SIGSTOPped mid-run and the
// supervised world must converge to the undisturbed run's exact assignment
// with no operator input.
func TestSuperviseTCPLocalChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level chaos is not -short friendly")
	}
	bin, graphPath, refOut := buildBinaryAndGraph(t)

	t.Run("sigkill mid-phase", func(t *testing.T) {
		dir := t.TempDir()
		out := filepath.Join(dir, "out")
		cmd := exec.Command(bin,
			"-transport", "tcp-local", "-np", "3", "-supervise",
			"-ckpt-dir", filepath.Join(dir, "ck"), "-backoff", "20ms",
			"-chaos-kill-rank", "1", "-chaos-kill-phase", "1",
			"-o", out, graphPath)
		outp, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("supervised run failed: %v\n%s", err, outp)
		}
		if !strings.Contains(string(outp), "chaos: SIGKILL rank 1") {
			t.Fatalf("chaos injection never fired:\n%s", outp)
		}
		sameFile(t, "sigkill", out, refOut)
	})

	t.Run("sigstop hang", func(t *testing.T) {
		dir := t.TempDir()
		out := filepath.Join(dir, "out")
		cmd := exec.Command(bin,
			"-transport", "tcp-local", "-np", "3", "-supervise",
			"-ckpt-dir", filepath.Join(dir, "ck"), "-backoff", "20ms",
			"-hang-min", "300ms", "-hang-max", "3s", "-poll", "50ms",
			"-chaos-stop-rank", "2", "-chaos-stop-phase", "1",
			"-o", out, graphPath)
		outp, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("supervised run failed: %v\n%s", err, outp)
		}
		if !strings.Contains(string(outp), "world hung") {
			t.Fatalf("hang was never diagnosed:\n%s", outp)
		}
		sameFile(t, "sigstop", out, refOut)
	})

	t.Run("budget exhaustion is fatal and distinct", func(t *testing.T) {
		dir := t.TempDir()
		cmd := exec.Command(bin,
			"-transport", "tcp-local", "-np", "3", "-supervise",
			"-ckpt-dir", filepath.Join(dir, "ck"), "-backoff", "20ms",
			"-max-restarts", "1",
			"-chaos-kill-rank", "0", "-chaos-kill-phase", "0", "-chaos-all-attempts",
			graphPath)
		outp, err := cmd.CombinedOutput()
		var ee *exec.ExitError
		if !errors.As(err, &ee) || ee.ExitCode() != 1 {
			t.Fatalf("err = %v (output %s), want fatal exit 1", err, outp)
		}
		if !strings.Contains(string(outp), "restart budget exhausted") {
			t.Fatalf("missing exhaustion diagnostic:\n%s", outp)
		}
	})

	t.Run("min-ranks violation is fatal and distinct", func(t *testing.T) {
		dir := t.TempDir()
		cmd := exec.Command(bin,
			"-transport", "tcp-local", "-np", "3", "-supervise",
			"-ckpt-dir", filepath.Join(dir, "ck"), "-backoff", "20ms",
			"-min-ranks", "3",
			"-chaos-kill-rank", "0", "-chaos-kill-phase", "0", "-chaos-all-attempts",
			graphPath)
		outp, err := cmd.CombinedOutput()
		var ee *exec.ExitError
		if !errors.As(err, &ee) || ee.ExitCode() != 1 {
			t.Fatalf("err = %v (output %s), want fatal exit 1", err, outp)
		}
		if !strings.Contains(string(outp), "rank floor") {
			t.Fatalf("missing rank-floor diagnostic:\n%s", outp)
		}
	})
}

// TestSuperviseInprocChaos drives the supervised in-process path end to end
// with transport-level fault injection on the first attempt.
func TestSuperviseInprocChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	bin, graphPath, refOut := buildBinaryAndGraph(t)
	dir := t.TempDir()
	out := filepath.Join(dir, "out")
	cmd := exec.Command(bin,
		"-np", "3", "-supervise",
		"-ckpt-dir", filepath.Join(dir, "ck"), "-backoff", "20ms",
		"-fault-kill-after", "50", "-fault-seed", "5",
		"-o", out, graphPath)
	outp, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("supervised run failed: %v\n%s", err, outp)
	}
	if !strings.Contains(string(outp), "restart 1/") {
		t.Fatalf("fault injection never forced a restart:\n%s", outp)
	}
	sameFile(t, "inproc fault kill", out, refOut)
}
