// Host-agent mode: `dlouvain -host-agent -coord host:port` turns this
// process into a machine agent. It registers the machine's rank slots with
// the coordinator, holds the lease with background pings, and executes the
// rank processes a tcp-remote driver places here, reporting their exits back
// over the control channel.
//
// The agent deliberately does NOT kill its children when the coordinator
// connection drops: a coordinator restart is survivable for running worlds
// (rank heartbeat sessions retry), and a genuinely superseded world is kept
// out by generation fencing, not by the agent. It simply re-registers with
// backoff and keeps going.
package main

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"time"

	"distlouvain/internal/backoff"
	"distlouvain/internal/coord"
)

// hostAgentState tracks the live spawns and the current coordinator
// registration so exit reports always go to the newest connection.
type hostAgentState struct {
	mu       sync.Mutex
	agent    *coord.Agent // current registration; nil between connections
	procs    map[string]*exec.Cmd
	draining bool
}

func runHostAgent(coordAddr, job, host string, slots int, advertise string) {
	if host == "" {
		h, err := os.Hostname()
		if err != nil {
			fatalf("-agent-host not set and hostname unavailable: %v", err)
		}
		host = h
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "dlouvain-agent: "+format+"\n", args...)
	}
	st := &hostAgentState{procs: make(map[string]*exec.Cmd)}

	// SIGTERM drains: forward it to every rank (they checkpoint at the next
	// phase boundary and exit retryable), then leave once the last exit has
	// been reported. A second signal aborts immediately via trapInterrupt.
	trapInterrupt(func(os.Signal) {
		st.mu.Lock()
		st.draining = true
		n := len(st.procs)
		for _, p := range st.procs {
			if p.Process != nil {
				p.Process.Signal(syscall.SIGTERM)
			}
		}
		st.mu.Unlock()
		logf("SIGTERM: draining %d rank(s) via forced checkpoint", n)
		go func() {
			for {
				st.mu.Lock()
				n := len(st.procs)
				st.mu.Unlock()
				if n == 0 {
					os.Exit(0)
				}
				time.Sleep(50 * time.Millisecond)
			}
		}()
	})

	// Registration loop: every connection loss (coordinator restart, WAN
	// flap) falls back here and re-registers with jittered backoff.
	seed := uint64(1)
	for _, c := range host {
		seed = seed*0x9e3779b97f4a7c15 + uint64(c)
	}
	pol := backoff.Policy{Base: 200 * time.Millisecond, Max: 5 * time.Second, Seed: seed}
	attempt := 0
	for {
		st.mu.Lock()
		draining := st.draining
		st.mu.Unlock()
		if draining {
			select {} // the drain goroutine owns the exit
		}
		a, err := coord.DialAgent(coord.AgentConfig{
			Coord: coordAddr, Job: job, Host: host, Slots: slots,
		})
		if err != nil {
			attempt++
			logf("register with %s: %v (retrying)", coordAddr, err)
			time.Sleep(pol.Delay(attempt))
			continue
		}
		attempt = 0
		logf("registered host %q (%d slots) with %s", host, slots, coordAddr)
		st.mu.Lock()
		st.agent = a
		st.mu.Unlock()
		serveAgentCommands(st, a, advertise, logf)
		st.mu.Lock()
		st.agent = nil
		st.mu.Unlock()
		a.Close()
		logf("coordinator connection lost; re-registering")
	}
}

// serveAgentCommands executes commands from one coordinator connection until
// it dies (Commands closes).
func serveAgentCommands(st *hostAgentState, a *coord.Agent, advertise string, logf func(string, ...any)) {
	for cmd := range a.Commands {
		switch cmd.Kind {
		case coord.CmdSpawn:
			spawnRank(st, cmd, advertise, logf)
		case coord.CmdSignal:
			st.mu.Lock()
			p := st.procs[cmd.ID]
			st.mu.Unlock()
			if p != nil && p.Process != nil {
				logf("signal %d -> %s (pid %d)", cmd.Sig, cmd.ID, p.Process.Pid)
				p.Process.Signal(syscall.Signal(cmd.Sig))
			}
		}
	}
}

func spawnRank(st *hostAgentState, cmd coord.Command, advertise string, logf func(string, ...any)) {
	if len(cmd.Argv) == 0 {
		st.reportExit(cmd.ID, -1, "spawn with empty argv")
		return
	}
	c := exec.Command(cmd.Argv[0], cmd.Argv[1:]...)
	c.Dir = cmd.Dir
	c.Env = append(os.Environ(), cmd.Env...)
	if advertise != "" {
		c.Env = append(c.Env, envAdvertise+"="+advertise)
	}
	// Children share the agent's process group on purpose: one SIGKILL of
	// the group is a whole-host crash, which is exactly the failure the WAN
	// chaos tests inject. Their output lands in the host's agent log.
	c.Stdout = os.Stdout
	c.Stderr = os.Stderr
	if err := c.Start(); err != nil {
		logf("spawn %s: %v", cmd.ID, err)
		st.reportExit(cmd.ID, -1, err.Error())
		return
	}
	st.mu.Lock()
	st.procs[cmd.ID] = c
	st.mu.Unlock()
	logf("spawned %s (pid %d)", cmd.ID, c.Process.Pid)
	go func() {
		err := c.Wait()
		code, msg := 0, ""
		if err != nil {
			msg = err.Error()
			var ee *exec.ExitError
			if errors.As(err, &ee) {
				code = ee.ExitCode() // -1 for signal deaths, as the wire expects
			} else {
				code = -1
			}
		}
		st.mu.Lock()
		delete(st.procs, cmd.ID)
		st.mu.Unlock()
		st.reportExit(cmd.ID, code, msg)
	}()
}

// reportExit delivers an exit event over the current registration; if the
// connection is down the report is dropped — the coordinator has already
// synthesized exits for this host's spawns when it condemned the old lease.
func (st *hostAgentState) reportExit(id string, code int, msg string) {
	st.mu.Lock()
	a := st.agent
	st.mu.Unlock()
	if a != nil {
		a.ReportExit(id, code, msg)
	}
}
