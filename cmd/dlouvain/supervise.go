// Self-healing supervision for dlouvain: -supervise wraps the run in the
// internal/supervisor loop, so crashed, hung or interrupted worlds relaunch
// from the latest committed checkpoint without operator intervention.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"distlouvain/internal/ckpt"
	"distlouvain/internal/core"
	"distlouvain/internal/gio"
	"distlouvain/internal/mpi"
	"distlouvain/internal/obsv"
	"distlouvain/internal/supervisor"
)

// supOptions carries the supervision flag values from main.
type supOptions struct {
	maxRestarts int
	backoff     time.Duration
	minRanks    int
	hangMin     time.Duration
	hangMax     time.Duration
	poll        time.Duration
	chaos       chaosSpec
	verbose     bool
}

// chaosSpec configures first-attempt process-level fault injection in
// supervised tcp-local runs: when the target rank's beacons reach the target
// phase it is SIGKILLed (crash) or SIGSTOPped (hang without connection
// loss). Rank -1 disables.
type chaosSpec struct {
	killRank, killPhase int
	stopRank, stopPhase int
	everyAttempt        bool // re-arm on every attempt (budget-exhaustion tests)
}

func (c chaosSpec) active() bool { return c.killRank >= 0 || c.stopRank >= 0 }

// armed reports whether chaos (and fault-injection flags) fire on the given
// attempt: normally the first one only, so the run self-heals; with
// everyAttempt the failure recurs until the supervisor gives up.
func (c chaosSpec) armed(attempt int) bool {
	return attempt == 0 || c.everyAttempt
}

func (o supOptions) supervisorOptions(cfg core.Config) supervisor.Options {
	return supervisor.Options{
		Policy: supervisor.Policy{
			MaxRestarts: o.maxRestarts,
			BaseBackoff: o.backoff,
			MinRanks:    o.minRanks,
			Seed:        cfg.Seed,
		},
		Detector: supervisor.DetectorConfig{
			MinWindow: o.hangMin,
			MaxWindow: o.hangMax,
		},
		Poll:          o.poll,
		Retryable:     retryableRunErr,
		HasCheckpoint: func() bool { return hasCheckpoint(cfg.CheckpointDir) },
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "dlouvain: "+format+"\n", args...)
		},
	}
}

// hasCheckpoint reports whether dir holds a committed checkpoint manifest.
func hasCheckpoint(dir string) bool {
	if dir == "" {
		return false
	}
	_, err := ckpt.ReadManifest(dir)
	return err == nil
}

// retryableRunErr classifies a world failure: true means transient (lost
// peer, expired deadline, injected kill, graceful interrupt, or an
// aggregated child failure that was itself retryable) and worth a relaunch
// from the latest checkpoint.
func retryableRunErr(err error) bool {
	var pl *mpi.ErrPeerLost
	var ce *childrenError
	var he *supervisor.HangError
	switch {
	case errors.As(err, &ce):
		return ce.retryable
	case errors.As(err, &he):
		return true
	default:
		return errors.As(err, &pl) ||
			errors.Is(err, mpi.ErrKilled) ||
			errors.Is(err, os.ErrDeadlineExceeded) ||
			errors.Is(err, core.ErrInterrupted)
	}
}

// trapInterrupt installs the two-stage SIGTERM/SIGINT handler: the first
// signal invokes onFirst (request a phase-boundary checkpoint and retryable
// exit), a second signal aborts the process immediately.
func trapInterrupt(onFirst func(sig os.Signal)) {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, syscall.SIGTERM, os.Interrupt)
	go func() {
		sig := <-ch
		onFirst(sig)
		<-ch
		fmt.Fprintln(os.Stderr, "dlouvain: second signal, aborting")
		os.Exit(1)
	}()
}

// ---------------------------------------------------------------------------
// In-process supervised worlds: one goroutine per rank, beacons delivered by
// direct function call, kill = closing the inproc world.

type inprocLauncher struct {
	path     string
	hdr      gio.Header
	cfg      core.Config
	edgeBal  bool
	verbose  bool
	commOpts []mpi.CommOption
	fault    mpi.FaultPlan // transport fault injection (see faultAll)
	faultAll bool          // inject on every attempt, not just the first
	obs      obsOptions
	reg      *obsv.Registry // generation-scoped metrics timeline (may be nil)

	mu      sync.Mutex
	result  *core.Result   // rank-0 result of the completed attempt
	ranks   int            // world size of the completed attempt
	tracers []*obsv.Tracer // current attempt's per-rank tracers (post-mortem source)
}

type inprocAttempt struct {
	world     *mpi.InprocWorld
	interrupt atomic.Bool
	done      chan struct{}
	err       error
}

func (a *inprocAttempt) Wait() error { <-a.done; return a.err }
func (a *inprocAttempt) Kill()       { a.world.Close() }
func (a *inprocAttempt) Interrupt()  { a.interrupt.Store(true) }

func (l *inprocLauncher) Launch(spec supervisor.LaunchSpec, beacons func(supervisor.Beacon)) (supervisor.Attempt, error) {
	world, err := mpi.NewInprocWorld(spec.Ranks)
	if err != nil {
		return nil, err
	}
	a := &inprocAttempt{world: world, done: make(chan struct{})}
	go l.run(a, spec, beacons)
	return a, nil
}

func (l *inprocLauncher) run(a *inprocAttempt, spec supervisor.LaunchSpec, beacons func(supervisor.Beacon)) {
	defer close(a.done)
	defer a.world.Close()
	// Fresh tracers per attempt: a relaunched world's trace must not carry
	// its predecessor's spans. The previous attempt's tracers stay readable
	// (PostMortem races the swap harmlessly — tracers are concurrency-safe).
	tracers := make([]*obsv.Tracer, spec.Ranks)
	for r := range tracers {
		tracers[r] = l.obs.newTracer(r)
	}
	l.mu.Lock()
	l.tracers = tracers
	l.mu.Unlock()
	errs := make([]error, spec.Ranks)
	var wg sync.WaitGroup
	for r := 0; r < spec.Ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[r] = fmt.Errorf("rank %d panicked: %v", r, p)
					a.world.Close()
				}
			}()
			cfg := l.cfg
			cfg.Tracer = tracers[r]
			cfg.Progress = supervisor.CoreProgressTraced(r, 0, tracers[r], beacons)
			cfg.Interrupted = a.interrupt.Load
			beacons(supervisor.Beacon{Rank: r, Kind: supervisor.KindHello})
			tp := a.world.Endpoint(r)
			if (spec.Attempt == 0 || l.faultAll) && faultActive(l.fault) {
				fp := l.fault
				fp.Seed ^= uint64(r) * 0x9e3779b97f4a7c15
				tp = mpi.NewFaultTransport(tp, fp)
			}
			c := mpi.NewComm(tp, l.commOpts...)
			c.SetTracer(tracers[r])
			if r == 0 {
				// Each attempt gets a fresh Comm, so re-attaching replaces
				// the dead generation's counter source with the live one.
				l.reg.AttachCounters("mpi.rank0", func() map[string]int64 {
					return c.Stats().Snapshot().Counters()
				})
			}
			res, err := rankBody(l.path, l.hdr, cfg, l.edgeBal, spec.Resume, l.verbose)(c)
			if err != nil {
				errs[r] = err
				a.world.Close()
				return
			}
			if r == 0 {
				l.mu.Lock()
				l.result, l.ranks = res, spec.Ranks
				l.mu.Unlock()
			}
		}(r)
	}
	wg.Wait()
	l.reg.RecordGenerationCounters()
	a.err = pickWorldError(errs)
}

// rankTracers returns the most recent attempt's per-rank tracers.
func (l *inprocLauncher) rankTracers() []*obsv.Tracer {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tracers
}

// postMortem renders what a condemned rank's tracer last saw: the still-open
// span chain (where it is stuck) and the most recently completed spans (what
// it finished on the way there). Wired into supervisor.Options.PostMortem.
func (l *inprocLauncher) postMortem(rank int) []string {
	var tr *obsv.Tracer
	l.mu.Lock()
	if rank >= 0 && rank < len(l.tracers) {
		tr = l.tracers[rank]
	}
	l.mu.Unlock()
	if tr == nil {
		return nil
	}
	var lines []string
	if p := tr.Path(); p != "" {
		lines = append(lines, "open: "+p)
	}
	for _, s := range tr.Tail(8) {
		lines = append(lines, "recent: "+s.Label())
	}
	return lines
}

// pickWorldError selects the most meaningful failure from a world's per-rank
// errors: a fatal error wins over a retryable one, which wins over the
// ErrClosed collateral that peers report after the world is torn down. This
// keeps a deterministic bug from masquerading as retryable and looping away
// the restart budget.
func pickWorldError(errs []error) error {
	var retry, collateral error
	for r, e := range errs {
		if e == nil {
			continue
		}
		wrapped := fmt.Errorf("rank %d: %w", r, e)
		switch {
		case retryableRunErr(e):
			if retry == nil {
				retry = wrapped
			}
		case errors.Is(e, mpi.ErrClosed):
			if collateral == nil {
				collateral = wrapped
			}
		default:
			return wrapped
		}
	}
	if retry != nil {
		return retry
	}
	return collateral
}

// superviseInproc runs the supervised in-process world and reports the
// surviving attempt's result.
func superviseInproc(path string, hdr gio.Header, np int, cfg core.Config, edgeBal, resume bool, outPath, truthPath string, commOpts []mpi.CommOption, fault mpi.FaultPlan, opts supOptions, oopts obsOptions) {
	reg := obsv.NewRegistry(0)
	startPprof(oopts.pprofAddr, reg)
	l := &inprocLauncher{
		path: path, hdr: hdr, cfg: cfg,
		edgeBal: edgeBal, verbose: opts.verbose,
		commOpts: commOpts, fault: fault, faultAll: opts.chaos.everyAttempt,
		obs: oopts, reg: reg,
	}
	sopts := opts.supervisorOptions(cfg)
	sopts.PostMortem = l.postMortem
	sopts.OnRestart = func(restarts, ranks int, resume bool, cause error) {
		reg.BeginGeneration()
		var res float64
		if resume {
			res = 1
		}
		reg.RecordEvent("restart", "relaunch", map[string]float64{
			"restarts": float64(restarts), "ranks": float64(ranks), "resume": res,
		})
	}
	sup := supervisor.New(l, sopts)
	trapInterrupt(func(os.Signal) {
		fmt.Fprintln(os.Stderr, "dlouvain: interrupt: checkpointing at the next phase boundary")
		sup.Interrupt()
	})
	err := sup.Run(np, resume)
	// Traces flush even when the supervisor gives up: the surviving files
	// describe the last attempt, which is the one worth examining.
	oopts.flushTraces(l.rankTracers()...)
	if err != nil {
		runFailf(err, "%v", err)
	}
	l.mu.Lock()
	res, ranks := l.result, l.ranks
	l.mu.Unlock()
	recordRunMetrics(reg, res)
	report(res, hdr, cfg, ranks, outPath, truthPath)
	if trs := l.rankTracers(); len(trs) > 0 {
		oopts.printReport(trs[0])
	}
}

// ---------------------------------------------------------------------------
// Child-process supervised worlds (tcp-local): each attempt spawns one OS
// process per rank in its own process group, beacons arrive over the TCP
// control channel, kill = SIGKILL.

type procLauncher struct {
	exe         string
	graph       string
	passthrough []string // shared child flags (variant, ckpt-dir, timeouts, ...)
	faultArgs   []string // fault-* flags, forwarded on armed attempts only
	chaos       chaosSpec
	logf        func(format string, args ...any)
}

type procAttempt struct {
	cmds []*exec.Cmd
	srv  *supervisor.BeaconServer
	done chan struct{}
	err  error

	killOnce sync.Once
	intOnce  sync.Once
}

func (a *procAttempt) Wait() error { <-a.done; return a.err }

func (a *procAttempt) Kill() {
	a.killOnce.Do(func() {
		for _, cmd := range a.cmds {
			if cmd.Process != nil {
				cmd.Process.Kill() // SIGKILL also fells SIGSTOPped children
			}
		}
	})
}

func (a *procAttempt) Interrupt() {
	a.intOnce.Do(func() {
		for _, cmd := range a.cmds {
			if cmd.Process != nil {
				cmd.Process.Signal(syscall.SIGTERM)
			}
		}
	})
}

func (l *procLauncher) Launch(spec supervisor.LaunchSpec, beacons func(supervisor.Beacon)) (supervisor.Attempt, error) {
	np := spec.Ranks
	addrs := make([]string, np)
	for r := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("reserve port: %w", err)
		}
		addrs[r] = ln.Addr().String()
		ln.Close()
	}
	hostList := strings.Join(addrs, ",")

	a := &procAttempt{done: make(chan struct{})}
	sink := beacons
	if l.chaos.active() && l.chaos.armed(spec.Attempt) {
		var killOnce, stopOnce sync.Once
		sink = func(b supervisor.Beacon) {
			l.maybeChaos(&killOnce, &stopOnce, b)
			beacons(b)
		}
	}
	srv, err := supervisor.ListenBeacons("", sink)
	if err != nil {
		return nil, err
	}
	a.srv = srv

	cmds := make([]*exec.Cmd, np)
	for r := 0; r < np; r++ {
		args := []string{"-transport", "tcp", "-rank", fmt.Sprint(r), "-hosts", hostList}
		args = append(args, l.passthrough...)
		if l.chaos.armed(spec.Attempt) {
			args = append(args, l.faultArgs...)
		}
		if spec.Resume {
			args = append(args, "-resume")
		}
		args = append(args, l.graph)
		cmd := exec.Command(l.exe, args...)
		cmd.Env = append(os.Environ(), supervisor.EnvBeaconAddr+"="+srv.Addr())
		// A fresh process group: the supervising parent is the only signal
		// distributor, so a terminal Ctrl-C can't double-deliver to ranks.
		cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
		if r == 0 {
			cmd.Stdout = os.Stdout
			cmd.Stderr = os.Stderr
		}
		if err := cmd.Start(); err != nil {
			a.cmds = cmds[:r]
			a.Kill()
			srv.Close()
			return nil, fmt.Errorf("spawn rank %d: %w", r, err)
		}
		cmds[r] = cmd
	}
	a.cmds = cmds
	go a.reap()
	return a, nil
}

// maybeChaos fires the configured process-level fault when the target rank's
// beacons reach the target phase. It runs on the beacon path, so injection
// is deterministic in terms of run progress, not wall-clock.
func (l *procLauncher) maybeChaos(killOnce, stopOnce *sync.Once, b supervisor.Beacon) {
	if b.PID == 0 || (b.Kind != supervisor.KindPhaseStart && b.Kind != supervisor.KindIteration) {
		return
	}
	if b.Rank == l.chaos.killRank && b.Phase >= l.chaos.killPhase {
		killOnce.Do(func() {
			l.logf("chaos: SIGKILL rank %d (pid %d) at phase %d", b.Rank, b.PID, b.Phase)
			syscall.Kill(b.PID, syscall.SIGKILL)
		})
	}
	if b.Rank == l.chaos.stopRank && b.Phase >= l.chaos.stopPhase {
		stopOnce.Do(func() {
			l.logf("chaos: SIGSTOP rank %d (pid %d) at phase %d", b.Rank, b.PID, b.Phase)
			syscall.Kill(b.PID, syscall.SIGSTOP)
		})
	}
}

// reap waits for every child and aggregates their exit statuses into one
// world error: nil when all succeed, retryable when every failure is
// retryable (exit 3) or signal-induced (crash/kill), fatal otherwise.
func (a *procAttempt) reap() {
	defer close(a.done)
	defer a.srv.Close()
	var fails []string
	retryable := true
	for r, cmd := range a.cmds {
		err := cmd.Wait()
		if err == nil {
			continue
		}
		fails = append(fails, fmt.Sprintf("rank %d: %v", r, err))
		var ee *exec.ExitError
		if errors.As(err, &ee) {
			// Exit 3 is the retryable protocol code; a signal death
			// (ExitCode -1: SIGKILL, crash) is a lost peer, also retryable.
			if code := ee.ExitCode(); code != exitRetryable && code != -1 {
				retryable = false
			}
		} else {
			retryable = false
		}
	}
	if len(fails) > 0 {
		a.err = &childrenError{msg: strings.Join(fails, "; "), retryable: retryable}
	}
}

// childrenError aggregates child-process failures with an explicit
// retryability verdict derived from their exit codes.
type childrenError struct {
	msg       string
	retryable bool
}

func (e *childrenError) Error() string { return "world failed: " + e.msg }

// superviseLocalTCP supervises a tcp-local world of child rank processes.
func superviseLocalTCP(np int, graph string, cfg core.Config, resume bool, opts supOptions, oopts obsOptions) {
	exe, err := os.Executable()
	if err != nil {
		fatalf("%v", err)
	}
	reg := obsv.NewRegistry(0)
	startPprof(oopts.pprofAddr, reg)
	var passthrough, faultArgs []string
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "transport", "np", "rank", "hosts", "supervise", "resume",
			"max-restarts", "backoff", "min-ranks", "hang-min", "hang-max", "poll",
			"chaos-kill-rank", "chaos-kill-phase", "chaos-stop-rank", "chaos-stop-phase",
			"chaos-all-attempts", "pprof-addr":
			// supervision and topology flags stay with the parent; so does
			// -pprof-addr, which children cannot share. -trace-dir and
			// -report pass through: each rank owns its trace file and rank
			// 0's stdout carries the report.
		case "fault-seed", "fault-drop", "fault-dup", "fault-delay", "fault-kill-after":
			faultArgs = append(faultArgs, "-"+f.Name+"="+f.Value.String())
		default:
			passthrough = append(passthrough, "-"+f.Name+"="+f.Value.String())
		}
	})
	sopts := opts.supervisorOptions(cfg)
	sopts.OnRestart = func(restarts, ranks int, resume bool, cause error) {
		reg.BeginGeneration()
		var res float64
		if resume {
			res = 1
		}
		reg.RecordEvent("restart", "relaunch", map[string]float64{
			"restarts": float64(restarts), "ranks": float64(ranks), "resume": res,
		})
	}
	l := &procLauncher{
		exe: exe, graph: graph,
		passthrough: passthrough, faultArgs: faultArgs,
		chaos: opts.chaos, logf: sopts.Logf,
	}
	verbose := opts.verbose
	sopts.OnBeacon = func(b supervisor.Beacon) {
		reg.RecordEvent("beacon", string(b.Kind), map[string]float64{
			"rank": float64(b.Rank), "phase": float64(b.Phase),
			"iter": float64(b.Iteration), "q": b.Modularity,
		})
		if verbose {
			fmt.Fprintf(os.Stderr, "dlouvain: beacon %+v\n", b)
		}
	}
	sup := supervisor.New(l, sopts)
	trapInterrupt(func(os.Signal) {
		fmt.Fprintln(os.Stderr, "dlouvain: interrupt: checkpointing at the next phase boundary")
		sup.Interrupt()
	})
	if err := sup.Run(np, resume); err != nil {
		runFailf(err, "%v", err)
	}
	os.Exit(0)
}
