package main

import (
	"strings"
	"testing"
)

// valid returns a flagValues that passes validation; tests mutate one field.
func valid() flagValues {
	return flagValues{
		np: 4, threads: 1, alpha: 0.25, tau: 0,
		wireFmt: 0, ckptEvery: 1, ckptKeep: 2,
		supervise: false, minRanks: 1, maxRestarts: 5,
		transport: "inproc",
	}
}

func TestValidateFlagsAcceptsDefaults(t *testing.T) {
	if err := validateFlags(valid()); err != nil {
		t.Fatalf("default flags rejected: %v", err)
	}
	sup := valid()
	sup.supervise = true
	if err := validateFlags(sup); err != nil {
		t.Fatalf("default supervised flags rejected: %v", err)
	}
}

func TestValidateFlagsRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*flagValues)
		want string // substring of the complaint
	}{
		{"negative ckpt-every", func(v *flagValues) { v.ckptEvery = -1 }, "-ckpt-every"},
		{"zero ckpt-every", func(v *flagValues) { v.ckptEvery = 0 }, "-ckpt-every"},
		{"zero ckpt-keep", func(v *flagValues) { v.ckptKeep = 0 }, "-ckpt-keep"},
		{"bad wire-format", func(v *flagValues) { v.wireFmt = 7 }, "-wire-format"},
		{"negative wire-format", func(v *flagValues) { v.wireFmt = -1 }, "-wire-format"},
		{"min-ranks over np", func(v *flagValues) { v.supervise = true; v.minRanks = 9; v.np = 4 }, "-min-ranks"},
		{"zero min-ranks", func(v *flagValues) { v.supervise = true; v.minRanks = 0 }, "-min-ranks"},
		{"zero np", func(v *flagValues) { v.np = 0 }, "-np"},
		{"zero threads", func(v *flagValues) { v.threads = 0 }, "-threads"},
		{"alpha above one", func(v *flagValues) { v.alpha = 1.5 }, "-alpha"},
		{"negative tau", func(v *flagValues) { v.tau = -1e-6 }, "-tau"},
		{"unknown transport", func(v *flagValues) { v.transport = "carrier-pigeon" }, "-transport"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := valid()
			tc.mut(&v)
			err := validateFlags(v)
			if err == nil {
				t.Fatalf("expected rejection, got nil")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("complaint %q does not name %q", err, tc.want)
			}
		})
	}
}

// Unsupervised runs ignore -min-ranks entirely: a value bigger than -np is
// only a contradiction when supervision can degrade the world.
func TestValidateFlagsMinRanksIgnoredWithoutSupervise(t *testing.T) {
	v := valid()
	v.minRanks = 100
	if err := validateFlags(v); err != nil {
		t.Fatalf("min-ranks should be ignored unsupervised: %v", err)
	}
}
