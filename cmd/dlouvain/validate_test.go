package main

import (
	"strings"
	"testing"
)

// valid returns a flagValues that passes validation; tests mutate one field.
func valid() flagValues {
	return flagValues{
		np: 4, threads: 1, alpha: 0.25, tau: 0,
		frontier: "auto", frontThr: 0.25,
		wireFmt: 0, ckptEvery: 1, ckptKeep: 2,
		supervise: false, minRanks: 1, maxRestarts: 5,
		transport: "inproc", coordEpoch: 1, agentSlots: 1,
	}
}

func TestValidateFlagsAcceptsDefaults(t *testing.T) {
	if err := validateFlags(valid()); err != nil {
		t.Fatalf("default flags rejected: %v", err)
	}
	sup := valid()
	sup.supervise = true
	if err := validateFlags(sup); err != nil {
		t.Fatalf("default supervised flags rejected: %v", err)
	}
}

func TestValidateFlagsRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*flagValues)
		want string // substring of the complaint
	}{
		{"negative ckpt-every", func(v *flagValues) { v.ckptEvery = -1 }, "-ckpt-every"},
		{"zero ckpt-every", func(v *flagValues) { v.ckptEvery = 0 }, "-ckpt-every"},
		{"zero ckpt-keep", func(v *flagValues) { v.ckptKeep = 0 }, "-ckpt-keep"},
		{"bad wire-format", func(v *flagValues) { v.wireFmt = 7 }, "-wire-format"},
		{"negative wire-format", func(v *flagValues) { v.wireFmt = -1 }, "-wire-format"},
		{"min-ranks over np", func(v *flagValues) { v.supervise = true; v.minRanks = 9; v.np = 4 }, "-min-ranks"},
		{"zero min-ranks", func(v *flagValues) { v.supervise = true; v.minRanks = 0 }, "-min-ranks"},
		{"zero np", func(v *flagValues) { v.np = 0 }, "-np"},
		{"zero threads", func(v *flagValues) { v.threads = 0 }, "-threads"},
		{"alpha above one", func(v *flagValues) { v.alpha = 1.5 }, "-alpha"},
		{"negative tau", func(v *flagValues) { v.tau = -1e-6 }, "-tau"},
		{"unknown frontier mode", func(v *flagValues) { v.frontier = "bitmapish" }, "-frontier"},
		{"zero frontier threshold", func(v *flagValues) { v.frontThr = 0 }, "-frontier-sparse-threshold"},
		{"frontier threshold above one", func(v *flagValues) { v.frontThr = 1.5 }, "-frontier-sparse-threshold"},
		{"unknown transport", func(v *flagValues) { v.transport = "carrier-pigeon" }, "-transport"},

		// Topology flags: -hosts hygiene, -rank bounds, -coord exclusivity.
		{"tcp without hosts or coord", func(v *flagValues) { v.transport = "tcp" }, "-hosts or -coord"},
		{"coord with hosts", func(v *flagValues) {
			v.transport = "tcp"
			v.coord = "127.0.0.1:9470"
			v.hosts = "127.0.0.1:7000,127.0.0.1:7001"
		}, "mutually exclusive"},
		{"hosts entry without port", func(v *flagValues) {
			v.transport = "tcp"
			v.hosts = "127.0.0.1:7000,127.0.0.1"
		}, "not host:port"},
		{"empty hosts entry", func(v *flagValues) {
			v.transport = "tcp"
			v.hosts = "127.0.0.1:7000,,127.0.0.1:7001"
		}, "not host:port"},
		{"duplicate hosts entry", func(v *flagValues) {
			v.transport = "tcp"
			v.hosts = "127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7000"
		}, "duplicates"},
		{"rank beyond hosts list", func(v *flagValues) {
			v.transport = "tcp"
			v.hosts = "127.0.0.1:7000,127.0.0.1:7001"
			v.rank = 2
		}, "-rank"},
		{"negative rank", func(v *flagValues) {
			v.transport = "tcp"
			v.hosts = "127.0.0.1:7000,127.0.0.1:7001"
			v.rank = -1
		}, "-rank"},
		{"rank beyond np under coord", func(v *flagValues) {
			v.transport = "tcp"
			v.coord = "127.0.0.1:9470"
			v.rank = 4
			v.np = 4
		}, "-rank"},
		{"zero coord-epoch", func(v *flagValues) {
			v.transport = "tcp"
			v.coord = "127.0.0.1:9470"
			v.coordEpoch = 0
		}, "-coord-epoch"},
		{"tcp-remote without coord", func(v *flagValues) { v.transport = "tcp-remote" }, "-coord"},
		{"tcp-remote min-ranks over np", func(v *flagValues) {
			v.transport = "tcp-remote"
			v.coord = "127.0.0.1:9470"
			v.minRanks = 9
		}, "-min-ranks"},
		{"host-agent without coord", func(v *flagValues) { v.hostAgent = true }, "-coord"},
		{"host-agent zero slots", func(v *flagValues) {
			v.hostAgent = true
			v.coord = "127.0.0.1:9470"
			v.agentSlots = 0
		}, "-slots"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := valid()
			tc.mut(&v)
			err := validateFlags(v)
			if err == nil {
				t.Fatalf("expected rejection, got nil")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("complaint %q does not name %q", err, tc.want)
			}
		})
	}
}

// The topology combinations that must pass: a clean host list, a coord
// rendezvous rank, a coord-placed driver, and a host agent.
func TestValidateFlagsAcceptsTopologies(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*flagValues)
	}{
		{"tcp with hosts", func(v *flagValues) {
			v.transport = "tcp"
			v.hosts = "127.0.0.1:7000,127.0.0.1:7001,10.0.0.2:7000"
			v.rank = 2
		}},
		{"tcp with coord", func(v *flagValues) {
			v.transport = "tcp"
			v.coord = "127.0.0.1:9470"
			v.rank = 3
		}},
		{"tcp-remote driver", func(v *flagValues) {
			v.transport = "tcp-remote"
			v.coord = "127.0.0.1:9470"
		}},
		{"host agent", func(v *flagValues) {
			v.hostAgent = true
			v.coord = "127.0.0.1:9470"
			v.agentSlots = 4
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := valid()
			tc.mut(&v)
			if err := validateFlags(v); err != nil {
				t.Fatalf("valid topology rejected: %v", err)
			}
		})
	}
}

// Unsupervised runs ignore -min-ranks entirely: a value bigger than -np is
// only a contradiction when supervision can degrade the world.
func TestValidateFlagsMinRanksIgnoredWithoutSupervise(t *testing.T) {
	v := valid()
	v.minRanks = 100
	if err := validateFlags(v); err != nil {
		t.Fatalf("min-ranks should be ignored unsupervised: %v", err)
	}
}
