package main

import "testing"

func TestBuildConfig(t *testing.T) {
	cases := []struct {
		variant string
		alpha   float64
		want    string
		wantErr bool
	}{
		{"baseline", 0, "Baseline", false},
		{"tc", 0, "Threshold Cycling", false},
		{"et", 0.25, "ET(0.25)", false},
		{"etc", 0.75, "ETC(0.75)", false},
		{"ettc", 0.25, "ET(0.25)+TC", false},
		{"bogus", 0, "", true},
	}
	for _, c := range cases {
		cfg, err := buildConfig(c.variant, c.alpha)
		if c.wantErr {
			if err == nil {
				t.Fatalf("%s: expected error", c.variant)
			}
			continue
		}
		if err != nil {
			t.Fatalf("%s: %v", c.variant, err)
		}
		if got := cfg.VariantName(); got != c.want {
			t.Fatalf("%s: VariantName = %q, want %q", c.variant, got, c.want)
		}
	}
}
