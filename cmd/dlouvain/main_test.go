package main

import (
	"errors"
	"fmt"
	"os"
	"testing"

	"distlouvain/internal/mpi"
)

func TestExitCodeFor(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, 0},
		{"plain", errors.New("boom"), 1},
		{"peer lost", &mpi.ErrPeerLost{Peer: 2, Cause: errors.New("eof")}, 3},
		{"wrapped peer lost", fmt.Errorf("rank 1: %w", &mpi.ErrPeerLost{Peer: 0, Cause: errors.New("eof")}), 3},
		{"killed", fmt.Errorf("send: %w", mpi.ErrKilled), 3},
		{"deadline", fmt.Errorf("collective: %w", os.ErrDeadlineExceeded), 3},
		{"usage-ish fatal", fmt.Errorf("bad graph header"), 1},
	}
	for _, c := range cases {
		if got := exitCodeFor(c.err); got != c.want {
			t.Errorf("%s: exitCodeFor = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestBuildConfig(t *testing.T) {
	cases := []struct {
		variant string
		alpha   float64
		want    string
		wantErr bool
	}{
		{"baseline", 0, "Baseline", false},
		{"tc", 0, "Threshold Cycling", false},
		{"et", 0.25, "ET(0.25)", false},
		{"etc", 0.75, "ETC(0.75)", false},
		{"ettc", 0.25, "ET(0.25)+TC", false},
		{"bogus", 0, "", true},
	}
	for _, c := range cases {
		cfg, err := buildConfig(c.variant, c.alpha)
		if c.wantErr {
			if err == nil {
				t.Fatalf("%s: expected error", c.variant)
			}
			continue
		}
		if err != nil {
			t.Fatalf("%s: %v", c.variant, err)
		}
		if got := cfg.VariantName(); got != c.want {
			t.Fatalf("%s: VariantName = %q, want %q", c.variant, got, c.want)
		}
	}
}
