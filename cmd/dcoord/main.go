// dcoord is the rendezvous coordinator for multi-host dlouvain worlds.
//
// One dcoord fronts any number of jobs: ranks join under a job id and
// receive full membership plus a fencing generation, host agents register
// their slots and hold leases, and tcp-remote drivers attach as controllers
// to place ranks and watch exits. All state is in-memory and soft: every
// client re-registers or re-joins with backoff after a coordinator restart,
// and the clock-seeded generation base guarantees a reborn coordinator never
// re-issues a fencing token an old world might still hold.
//
//	dcoord -listen 0.0.0.0:9470
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"distlouvain/internal/coord"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9470", "address to listen on (use 0.0.0.0:PORT for multi-host)")
	lease := flag.Duration("lease", 5*time.Second, "host lease TTL; silent hosts are condemned after this")
	joinTimeout := flag.Duration("join-timeout", 30*time.Second, "how long an incomplete join barrier may wait for stragglers")
	quiet := flag.Bool("q", false, "suppress membership log lines")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "dcoord: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}

	cfg := coord.ServerConfig{
		LeaseTTL:    *lease,
		JoinTimeout: *joinTimeout,
		// Seconds-resolution clock shifted 20 bits: a restarted coordinator
		// starts above every token it could have issued before, with 2^20
		// generations per second of headroom under the old base.
		GenBase: uint64(time.Now().Unix()) << 20,
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	srv, err := coord.Serve(*listen, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcoord: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("dcoord: listening on %s (lease %s)\n", srv.Addr(), *lease)

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGTERM, os.Interrupt)
	<-ch
	fmt.Fprintln(os.Stderr, "dcoord: shutting down")
	srv.Close()
}
