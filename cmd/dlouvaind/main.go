// Command dlouvaind is the community-detection daemon: it serves the
// internal/service HTTP API — job submission, status, results, abort and
// SSE progress streams — over a persistent data directory, admitting
// supervised Louvain worlds against a shared rank budget.
//
// Endpoints (see internal/service/api.go):
//
//	POST   /v1/jobs             submit
//	GET    /v1/jobs             list
//	GET    /v1/jobs/{id}        status
//	GET    /v1/jobs/{id}/result result
//	DELETE /v1/jobs/{id}        abort
//	GET    /v1/jobs/{id}/events SSE progress
//	GET    /v1/stats            counters
//
// SIGINT/SIGTERM drain gracefully: running worlds checkpoint at their next
// phase boundary and re-queue, so the next daemon start resumes them.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"syscall"
	"time"

	"distlouvain/internal/obsv"
	"distlouvain/internal/service"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("dlouvaind", flag.ExitOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:7310", "HTTP listen address")
		dataDir     = fs.String("data-dir", "", "persistent job/data directory (required)")
		rankBudget  = fs.Int("rank-budget", 0, "total concurrent ranks across all jobs (0 = GOMAXPROCS)")
		maxQueue    = fs.Int("max-queue", 256, "maximum queued jobs before submissions are rejected")
		cacheCap    = fs.Int("cache-cap", 128, "result cache capacity (entries)")
		keepJobs    = fs.Int("keep-jobs", 64, "terminal job directories retained before GC")
		maxRestarts = fs.Int("max-restarts", 5, "per-job supervision restart budget")
		backoff     = fs.Duration("backoff", 200*time.Millisecond, "base restart backoff")
		hangMin     = fs.Duration("hang-min", 5*time.Second, "hang detector window floor")
		hangMax     = fs.Duration("hang-max", 2*time.Minute, "hang detector window cap")
		drainWait   = fs.Duration("drain-wait", time.Minute, "graceful shutdown budget before forcing exit")
		quiet       = fs.Bool("q", false, "suppress progress logging")
	)
	fs.Parse(os.Args[1:]) //nolint:errcheck // ExitOnError
	if *dataDir == "" {
		fmt.Fprintln(os.Stderr, "dlouvaind: -data-dir is required")
		fs.Usage()
		return 2
	}
	if *rankBudget < 0 || *maxQueue < 1 || *cacheCap < 1 || *keepJobs < 1 {
		fmt.Fprintln(os.Stderr, "dlouvaind: -rank-budget must be >= 0; -max-queue, -cache-cap and -keep-jobs must be >= 1")
		fs.Usage()
		return 2
	}

	logf := log.New(os.Stderr, "dlouvaind: ", log.LstdFlags).Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	reg := obsv.NewRegistry(0)
	expvar.Publish("dlouvaind", expvar.Func(func() any { return reg.ExpvarSnapshot() }))

	svc, err := service.New(service.Options{
		DataDir:     *dataDir,
		RankBudget:  *rankBudget,
		MaxQueue:    *maxQueue,
		CacheCap:    *cacheCap,
		KeepJobs:    *keepJobs,
		MaxRestarts: *maxRestarts,
		Backoff:     *backoff,
		HangMin:     *hangMin,
		HangMax:     *hangMax,
		Logf:        logf,
		Registry:    reg,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dlouvaind: %v\n", err)
		return 1
	}

	// The service API and the stdlib debug handlers (/debug/pprof,
	// /debug/vars via expvar) share one listener.
	mux := http.NewServeMux()
	mux.Handle("/v1/", svc.Handler())
	mux.Handle("/debug/", http.DefaultServeMux)
	srv := &http.Server{Handler: mux}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dlouvaind: listen: %v\n", err)
		return 1
	}
	logf("serving on http://%s (data dir %s)", ln.Addr(), *dataDir)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		logf("caught %v; draining (running jobs checkpoint and re-queue)", got)
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "dlouvaind: serve: %v\n", err)
		return 1
	}

	// Stop accepting connections, then drain the service: Close interrupts
	// every running world, which checkpoints at its next phase boundary.
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logf("http shutdown: %v", err)
	}
	done := make(chan struct{})
	go func() { svc.Close(); close(done) }()
	select {
	case <-done:
		logf("drained cleanly")
		return 0
	case <-time.After(*drainWait):
		fmt.Fprintln(os.Stderr, "dlouvaind: drain budget exceeded; exiting with jobs unfinished")
		return 1
	}
}
