// Process-level smoke test for the dlouvaind daemon: build the real binary,
// start it, submit jobs over HTTP, stream SSE progress, verify the answer
// against a CLI dlouvain run of the same graph, and drain it with SIGTERM.
// This is what `make service-smoke` runs in CI.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"distlouvain/internal/gen"
	"distlouvain/internal/gio"
)

// buildDaemonAndCLI compiles both binaries and writes the test graph plus
// the CLI reference assignment.
func buildDaemonAndCLI(t *testing.T) (daemon, graphPath, refOut string, refQ float64) {
	t.Helper()
	dir := t.TempDir()
	daemon = filepath.Join(dir, "dlouvaind")
	if out, err := exec.Command("go", "build", "-o", daemon, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build dlouvaind: %v\n%s", err, out)
	}
	cli := filepath.Join(dir, "dlouvain")
	if out, err := exec.Command("go", "build", "-o", cli, "../dlouvain").CombinedOutput(); err != nil {
		t.Fatalf("go build dlouvain: %v\n%s", err, out)
	}

	n, edges := gen.ErdosRenyi(300, 1500, 5)
	graphPath = filepath.Join(dir, "g.bin")
	if err := gio.WriteBinary(graphPath, n, edges); err != nil {
		t.Fatal(err)
	}

	refOut = filepath.Join(dir, "ref.out")
	out, err := exec.Command(cli, "-np", "3", "-o", refOut, graphPath).CombinedOutput()
	if err != nil {
		t.Fatalf("reference CLI run: %v\n%s", err, out)
	}
	refQ = parseModularity(t, string(out))
	return daemon, graphPath, refOut, refQ
}

// parseModularity extracts "modularity: <q>" (or "Q = <q>") from CLI output.
func parseModularity(t *testing.T, out string) float64 {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		lower := strings.ToLower(line)
		if i := strings.Index(lower, "modularity"); i >= 0 {
			fields := strings.Fields(strings.ReplaceAll(line[i:], "=", " "))
			for _, f := range fields[1:] {
				if q, err := strconv.ParseFloat(strings.TrimRight(f, ","), 64); err == nil {
					return q
				}
			}
		}
	}
	t.Fatalf("no modularity in CLI output:\n%s", out)
	return 0
}

// startDaemon launches dlouvaind and waits for its API to come up.
func startDaemon(t *testing.T, bin, dataDir, addr string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, "-addr", addr, "-data-dir", dataDir, "-rank-budget", "4")
	var logs bytes.Buffer
	cmd.Stdout, cmd.Stderr = &logs, &logs
	if err := cmd.Start(); err != nil {
		t.Fatalf("start daemon: %v", err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill() //nolint:errcheck
			cmd.Wait()         //nolint:errcheck
		}
	})
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/v1/stats")
		if err == nil {
			resp.Body.Close()
			return cmd
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("daemon never came up on %s; logs:\n%s", addr, logs.String())
	return nil
}

func TestDaemonSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	daemon, graphPath, refOut, refQ := buildDaemonAndCLI(t)
	dataDir := t.TempDir()
	addr := "127.0.0.1:7399"
	cmd := startDaemon(t, daemon, dataDir, addr)
	base := "http://" + addr

	// Submit the first job.
	spec, _ := json.Marshal(map[string]any{"graph_path": graphPath, "ranks": 3})
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var v1 struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	dec := json.NewDecoder(resp.Body)
	dec.Decode(&v1) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || v1.ID == "" {
		t.Fatalf("submit: status %d view %+v", resp.StatusCode, v1)
	}

	// Stream its SSE events to completion; count phase starts.
	esResp, err := http.Get(base + "/v1/jobs/" + v1.ID + "/events")
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	defer esResp.Body.Close()
	phaseStarts, sawDone := 0, false
	sc := bufio.NewScanner(esResp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: phase-start") {
			phaseStarts++
		}
		if strings.HasPrefix(line, "event: done") {
			sawDone = true
			break
		}
		if strings.HasPrefix(line, "event: failed") || strings.HasPrefix(line, "event: aborted") {
			t.Fatalf("job settled badly: %s", line)
		}
	}
	if !sawDone || phaseStarts < 1 {
		t.Fatalf("stream ended without done (%v) or phase starts (%d)", sawDone, phaseStarts)
	}

	// The daemon's result must match the CLI run: same modularity, same
	// assignment.
	var res struct {
		Modularity float64 `json:"modularity"`
		Phases     int     `json:"phases"`
		Assignment []int64 `json:"assignment"`
	}
	resp, err = http.Get(base + "/v1/jobs/" + v1.ID + "/result")
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	json.NewDecoder(resp.Body).Decode(&res) //nolint:errcheck
	resp.Body.Close()
	// The CLI prints Q with 6 decimals; the assignment check below is the
	// exact bit-identity assertion.
	if diff := res.Modularity - refQ; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("daemon modularity %v != CLI %v", res.Modularity, refQ)
	}
	if phaseStarts != res.Phases {
		t.Errorf("streamed %d phase-start events for %d phases", phaseStarts, res.Phases)
	}
	refLabels, err := gio.ReadGroundTruth(refOut, int64(len(res.Assignment)))
	if err != nil {
		t.Fatalf("read CLI labels: %v", err)
	}
	for i := range refLabels {
		if refLabels[i] != res.Assignment[i] {
			t.Fatalf("assignment diverges from the CLI run at vertex %d", i)
		}
	}

	// An identical second submission must be a cache hit, already done.
	resp, err = http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatalf("dup submit: %v", err)
	}
	var v2 struct {
		State    string `json:"state"`
		CacheHit bool   `json:"cache_hit"`
	}
	json.NewDecoder(resp.Body).Decode(&v2) //nolint:errcheck
	resp.Body.Close()
	if v2.State != "done" || !v2.CacheHit {
		t.Fatalf("duplicate not served from cache: %+v", v2)
	}
	var st struct {
		CacheHits      int64 `json:"cache_hits"`
		WorldsLaunched int64 `json:"worlds_launched"`
	}
	resp, err = http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	json.NewDecoder(resp.Body).Decode(&st) //nolint:errcheck
	resp.Body.Close()
	if st.CacheHits != 1 || st.WorldsLaunched != 1 {
		t.Fatalf("stats after duplicate: %+v", st)
	}

	// SIGTERM drains the daemon cleanly.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("daemon exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not drain within 30s of SIGTERM")
	}

	// The job directory and its persisted state survive the daemon.
	if _, err := os.Stat(filepath.Join(dataDir, "jobs", v1.ID, "job.json")); err != nil {
		t.Fatalf("job record gone after shutdown: %v", err)
	}
	fmt.Println("daemon smoke: OK")
}
