// Command graphgen generates synthetic benchmark graphs in the binary
// edge-list format consumed by cmd/dlouvain, optionally emitting ground
// truth community files.
//
// Usage:
//
//	graphgen -kind rmat -scale 16 -ef 16 -o g.bin
//	graphgen -kind lfr -n 100000 -mu 0.2 -o g.bin -truth g.gt
//	graphgen -kind ssca2 -n 1000000 -clique 100 -o g.bin -truth g.gt
//	graphgen -kind grid -rows 1000 -cols 1000 -o g.bin
//	graphgen -kind smallworld -n 100000 -k 10 -beta 0.1 -o g.bin
//	graphgen -kind random -n 100000 -m 1000000 -o g.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"distlouvain/internal/gen"
	"distlouvain/internal/gio"
	"distlouvain/internal/graph"
)

func main() {
	var (
		kind   = flag.String("kind", "rmat", "graph family: rmat, lfr, ssca2, grid, smallworld, random, band")
		out    = flag.String("o", "graph.bin", "output path")
		format = flag.String("format", "binary", "output format: binary, text, or metis")
		truth  = flag.String("truth", "", "optional ground-truth output path (lfr, ssca2)")
		seed   = flag.Uint64("seed", 1, "generator seed")
		n      = flag.Int64("n", 100000, "vertex count (lfr, ssca2, smallworld, random, band)")
		m      = flag.Int64("m", 0, "edge count (random; default 10n)")
		scale  = flag.Int("scale", 16, "rmat: log2 of vertex count")
		ef     = flag.Int64("ef", 16, "rmat: edges per vertex")
		mu     = flag.Float64("mu", 0.2, "lfr: mixing parameter")
		clique = flag.Int64("clique", 100, "ssca2: max clique size")
		inter  = flag.Float64("inter", 0.02, "ssca2: inter-clique edge probability")
		rows   = flag.Int64("rows", 1000, "grid: rows")
		cols   = flag.Int64("cols", 1000, "grid: columns")
		diag   = flag.Bool("diag", true, "grid: include diagonal links")
		k      = flag.Int64("k", 10, "smallworld: ring degree (even)")
		beta   = flag.Float64("beta", 0.1, "smallworld: rewiring probability")
		band   = flag.Int64("band", 4, "band: bandwidth")
	)
	flag.Parse()

	var (
		nv    int64
		edges []graph.RawEdge
		gt    []int64
		err   error
	)
	switch *kind {
	case "rmat":
		nv, edges, err = gen.RMAT(*scale, *ef, 0.57, 0.19, 0.19, 0.05, *seed)
	case "lfr":
		nv, edges, gt, err = gen.LFR(gen.DefaultLFR(*n, *mu, *seed))
	case "ssca2":
		nv, edges, gt, err = gen.SSCA2(gen.SSCA2Options{N: *n, MaxCliqueSize: *clique, InterProb: *inter, Seed: *seed})
	case "grid":
		nv, edges = gen.Grid2D(*rows, *cols, *diag)
	case "smallworld":
		nv, edges, err = gen.WattsStrogatz(*n, *k, *beta, *seed)
	case "random":
		mm := *m
		if mm <= 0 {
			mm = 10 * *n
		}
		nv, edges = gen.ErdosRenyi(*n, mm, *seed)
	case "band":
		nv, edges = gen.BandedMesh(*n, *band)
	default:
		fatalf("unknown kind %q", *kind)
	}
	if err != nil {
		fatalf("%v", err)
	}

	switch *format {
	case "binary":
		err = gio.WriteBinary(*out, nv, edges)
	case "text":
		err = gio.WriteEdgeListText(*out, edges)
	case "metis":
		err = gio.WriteMETIS(*out, nv, edges)
	default:
		fatalf("unknown format %q", *format)
	}
	if err != nil {
		fatalf("write %s: %v", *out, err)
	}
	fmt.Printf("wrote %s: %d vertices, %d edges\n", *out, nv, len(edges))
	if *truth != "" {
		if gt == nil {
			fatalf("kind %q has no ground truth", *kind)
		}
		if err := gio.WriteGroundTruth(*truth, gt); err != nil {
			fatalf("write %s: %v", *truth, err)
		}
		fmt.Printf("wrote %s: ground truth for %d vertices\n", *truth, len(gt))
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "graphgen: "+format+"\n", args...)
	os.Exit(1)
}
