// Command graphinfo prints summary statistics of a graph file: vertex and
// edge counts, degree distribution, weight totals, and optionally the
// log2-bucketed degree histogram.
//
// Usage:
//
//	graphinfo g.bin
//	graphinfo -hist -text g.txt
//	graphinfo -metis g.graph
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"distlouvain/internal/gio"
	"distlouvain/internal/graph"
)

func main() {
	var (
		text  = flag.Bool("text", false, "input is a text edge list instead of binary")
		metis = flag.Bool("metis", false, "input is in METIS/Chaco format")
		hist  = flag.Bool("hist", false, "print degree histogram")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: graphinfo [-text] [-hist] <graph file>")
		os.Exit(2)
	}
	path := flag.Arg(0)

	var (
		n     int64
		edges []graph.RawEdge
		err   error
	)
	switch {
	case *text:
		n, edges, err = gio.ReadEdgeListText(path)
	case *metis:
		n, edges, err = gio.ReadMETIS(path)
	default:
		n, edges, err = gio.ReadBinary(path)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphinfo: %v\n", err)
		os.Exit(1)
	}
	g := graph.FromRawEdges(n, edges)
	st := graph.ComputeStats(g)
	fmt.Printf("%s\n%s\n", path, st)
	if *hist {
		fmt.Println("degree histogram (log2 buckets):")
		for i, c := range graph.DegreeHistogram(g) {
			if c == 0 {
				continue
			}
			label := bucketLabel(i)
			bar := strings.Repeat("#", barLen(c, st.Vertices))
			fmt.Printf("  %-12s %10d %s\n", label, c, bar)
		}
	}
}

func bucketLabel(i int) string {
	switch i {
	case 0:
		return "0"
	case 1:
		return "1"
	default:
		lo := int64(1) << (i - 1)
		return fmt.Sprintf("[%d,%d)", lo, lo*2)
	}
}

func barLen(count, total int64) int {
	if total == 0 {
		return 0
	}
	l := int(60 * count / total)
	if l == 0 && count > 0 {
		l = 1
	}
	return l
}
