package main

import "testing"

func TestBucketLabel(t *testing.T) {
	cases := map[int]string{
		0: "0",
		1: "1",
		2: "[2,4)",
		3: "[4,8)",
		4: "[8,16)",
	}
	for i, want := range cases {
		if got := bucketLabel(i); got != want {
			t.Fatalf("bucketLabel(%d) = %q, want %q", i, got, want)
		}
	}
}

func TestBarLen(t *testing.T) {
	if barLen(0, 100) != 0 {
		t.Fatal("zero count should have no bar")
	}
	if barLen(1, 1000000) != 1 {
		t.Fatal("nonzero count should have at least one mark")
	}
	if barLen(100, 100) != 60 {
		t.Fatalf("full bucket should fill the bar, got %d", barLen(100, 100))
	}
	if barLen(5, 0) != 0 {
		t.Fatal("empty graph should have no bar")
	}
}
