package ckpt

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleSections() []Section {
	return []Section{
		{Name: "meta", Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		{Name: "csr", Data: []byte("edges-and-index")},
		{Name: "empty", Data: nil},
		{Name: "origcomm", Data: make([]byte, 1024)},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.ckpt")
	want := sampleSections()
	if err := WriteSnapshot(path, want); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	got := snap.Sections()
	if len(got) != len(want) {
		t.Fatalf("got %d sections, want %d", len(got), len(want))
	}
	for i, s := range want {
		if got[i].Name != s.Name || string(got[i].Data) != string(s.Data) {
			t.Fatalf("section %d differs: %q vs %q", i, got[i].Name, s.Name)
		}
		data, err := snap.Section(s.Name)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != string(s.Data) {
			t.Fatalf("Section(%q) payload differs", s.Name)
		}
	}
	if _, err := snap.Section("nope"); err == nil || !strings.Contains(err.Error(), `"nope"`) {
		t.Fatalf("missing section error = %v", err)
	}
}

// TestSnapshotEveryBitFlipDetected flips each byte of an encoded snapshot in
// turn; every mutant must be rejected (CRC, structural, or header check) —
// a corrupt snapshot must never load.
func TestSnapshotEveryBitFlipDetected(t *testing.T) {
	data, err := EncodeSnapshot(sampleSections())
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		mut := make([]byte, len(data))
		copy(mut, data)
		mut[i] ^= 0x40
		if _, err := DecodeSnapshot("mutant", mut); err == nil {
			t.Fatalf("byte flip at offset %d was not detected", i)
		}
	}
}

func TestSnapshotTruncationDetected(t *testing.T) {
	data, err := EncodeSnapshot(sampleSections())
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut += 7 {
		if _, err := DecodeSnapshot("trunc", data[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes was not detected", cut)
		}
	}
}

func TestSnapshotErrorsCarryContext(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ctx.ckpt")
	if err := WriteSnapshot(path, sampleSections()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the last section's payload: the error must name
	// both the file and the section.
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = ReadSnapshot(path)
	if err == nil {
		t.Fatal("corrupt payload loaded")
	}
	if !strings.Contains(err.Error(), path) || !strings.Contains(err.Error(), `"origcomm"`) {
		t.Fatalf("error lacks file/section context: %v", err)
	}
}

func TestSnapshotBadNameLength(t *testing.T) {
	long := strings.Repeat("x", MaxNameLen+1)
	if _, err := EncodeSnapshot([]Section{{Name: long}}); err == nil {
		t.Fatal("overlong section name accepted")
	}
	if _, err := EncodeSnapshot([]Section{{Name: ""}}); err == nil {
		t.Fatal("empty section name accepted")
	}
}

func TestWriteSnapshotLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.ckpt")
	if err := WriteSnapshot(path, sampleSections()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temporary file left behind: %v", err)
	}
}

func validManifest() *Manifest {
	return &Manifest{
		Version:    ManifestVersion,
		WorldSize:  3,
		ConfigHash: "cafebabe",
		Phase:      2,
		OrigN:      100,
		CoarseN:    17,
		Files: []string{
			RankFileName(2, 0), RankFileName(2, 1), RankFileName(2, 2),
		},
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := validManifest()
	if err := WriteManifest(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Phase != want.Phase || got.WorldSize != want.WorldSize ||
		got.ConfigHash != want.ConfigHash || got.OrigN != want.OrigN ||
		got.CoarseN != want.CoarseN || len(got.Files) != len(want.Files) {
		t.Fatalf("manifest round trip differs: %+v vs %+v", got, want)
	}
}

func TestManifestMissing(t *testing.T) {
	_, err := ReadManifest(t.TempDir())
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
}

func TestManifestCorruptRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte(`{"version":`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(dir); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("truncated manifest: err = %v", err)
	}
}

func TestManifestValidation(t *testing.T) {
	dir := t.TempDir()
	bad := validManifest()
	bad.Files = bad.Files[:1]
	if err := WriteManifest(dir, bad); err == nil {
		t.Fatal("file-count mismatch accepted")
	}
	bad = validManifest()
	bad.Files[0] = "../escape.ckpt"
	if err := WriteManifest(dir, bad); err == nil {
		t.Fatal("path-escaping file name accepted")
	}
	bad = validManifest()
	bad.Version = 99
	if err := WriteManifest(dir, bad); err == nil {
		t.Fatal("wrong version accepted")
	}
}

// TestInterruptedCommitKeepsOldManifest simulates a crash mid-commit: a
// half-written temporary next to a valid manifest must not shadow it.
func TestInterruptedCommitKeepsOldManifest(t *testing.T) {
	dir := t.TempDir()
	old := validManifest()
	if err := WriteManifest(dir, old); err != nil {
		t.Fatal(err)
	}
	// Crash artifact: partial bytes in the temporary the next commit would
	// have renamed into place.
	tmp := filepath.Join(dir, ManifestName+".tmp")
	if err := os.WriteFile(tmp, []byte(`{"version":1,"phase":9`), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Phase != old.Phase {
		t.Fatalf("interrupted commit shadowed the valid manifest: phase %d, want %d", got.Phase, old.Phase)
	}
}

func TestPruneRank(t *testing.T) {
	dir := t.TempDir()
	mk := func(name string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mk(RankFileName(1, 0))
	mk(RankFileName(2, 0))
	mk(RankFileName(2, 0) + ".tmp")
	mk(RankFileName(2, 1)) // other rank: untouched
	PruneRank(dir, 0, 2, 1)
	for name, want := range map[string]bool{
		RankFileName(1, 0):          false,
		RankFileName(2, 0):          true,
		RankFileName(2, 0) + ".tmp": false,
		RankFileName(2, 1):          true,
	} {
		_, err := os.Stat(filepath.Join(dir, name))
		if got := err == nil; got != want {
			t.Fatalf("%s: exists=%v, want %v", name, got, want)
		}
	}
}

// TestPruneRankRetention covers the keep-K window: the K most recent phases
// survive, everything older goes, and the manifest-referenced phase is
// retained even when it is not among the K newest.
func TestPruneRankRetention(t *testing.T) {
	mkAll := func(t *testing.T, dir string, phases ...int) {
		t.Helper()
		for _, ph := range phases {
			if err := os.WriteFile(filepath.Join(dir, RankFileName(ph, 0)), []byte("x"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	check := func(t *testing.T, dir string, want map[int]bool) {
		t.Helper()
		for ph, keep := range want {
			_, err := os.Stat(filepath.Join(dir, RankFileName(ph, 0)))
			if got := err == nil; got != keep {
				t.Fatalf("phase %d: exists=%v, want %v", ph, got, keep)
			}
		}
	}

	t.Run("keep2", func(t *testing.T) {
		dir := t.TempDir()
		mkAll(t, dir, 1, 2, 3, 4)
		PruneRank(dir, 0, 4, 2)
		check(t, dir, map[int]bool{1: false, 2: false, 3: true, 4: true})
	})
	t.Run("manifest phase outside window", func(t *testing.T) {
		// A stale manifest phase (e.g. the newest snapshots landed but the
		// commit died before the rename) must survive any quota.
		dir := t.TempDir()
		mkAll(t, dir, 2, 5, 6, 7)
		PruneRank(dir, 0, 2, 2)
		check(t, dir, map[int]bool{2: true, 5: false, 6: true, 7: true})
	})
	t.Run("keep below one clamps", func(t *testing.T) {
		dir := t.TempDir()
		mkAll(t, dir, 3, 4)
		PruneRank(dir, 0, 4, 0)
		check(t, dir, map[int]bool{3: false, 4: true})
	})
	t.Run("fewer phases than quota", func(t *testing.T) {
		dir := t.TempDir()
		mkAll(t, dir, 7)
		PruneRank(dir, 0, 7, 3)
		check(t, dir, map[int]bool{7: true})
	})
}
