package ckpt

import (
	"bytes"
	"testing"
)

// FuzzReadSnapshot drives the snapshot decoder with arbitrary bytes. The
// decoder must never panic, and anything it accepts must re-encode to a
// byte-identical image (so a "successful" read can never smuggle corrupted
// state into a resumed run).
func FuzzReadSnapshot(f *testing.F) {
	empty, _ := EncodeSnapshot(nil)
	f.Add(empty)
	one, _ := EncodeSnapshot([]Section{{Name: "meta", Data: []byte{1, 2, 3}}})
	f.Add(one)
	many, _ := EncodeSnapshot([]Section{
		{Name: "meta", Data: bytes.Repeat([]byte{7}, 64)},
		{Name: "csr", Data: []byte("index+edges")},
		{Name: "origcomm", Data: nil},
	})
	f.Add(many)
	// Corrupt variants seed the interesting rejection paths.
	trunc := make([]byte, len(many)-5)
	copy(trunc, many)
	f.Add(trunc)
	flip := bytes.Clone(many)
	flip[len(flip)/2] ^= 0x10
	f.Add(flip)

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeSnapshot("fuzz", data)
		if err != nil {
			return // rejected is always acceptable
		}
		re, err := EncodeSnapshot(snap.Sections())
		if err != nil {
			t.Fatalf("accepted snapshot failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted snapshot is not canonical: %d bytes in, %d bytes re-encoded", len(data), len(re))
		}
	})
}
