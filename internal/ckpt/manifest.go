package ckpt

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// ManifestName is the manifest file inside a checkpoint directory. It is
// only ever replaced by an atomic rename, so it always points at a phase
// whose per-rank snapshots all landed (the commit protocol barriers before
// rank 0 writes it).
const ManifestName = "MANIFEST.json"

// ManifestVersion is the current manifest schema version.
const ManifestVersion = 1

// ErrNoCheckpoint reports that a directory holds no committed checkpoint.
var ErrNoCheckpoint = errors.New("ckpt: no checkpoint manifest")

// Manifest records the latest complete checkpoint of a run: which phase the
// per-rank snapshot files capture, the world that wrote them, and the
// fingerprint of the algorithm configuration (a resume must match it — the
// snapshot is only valid for the trajectory those parameters produce).
type Manifest struct {
	Version    int      `json:"version"`
	WorldSize  int      `json:"world_size"`
	ConfigHash string   `json:"config_hash"`
	Phase      int      `json:"phase"` // completed phases; resume continues at this index
	OrigN      int64    `json:"orig_vertices"`
	CoarseN    int64    `json:"coarse_vertices"`
	Files      []string `json:"files"` // per writing rank, relative to the directory
}

// RankFileName names the snapshot file of one rank at one phase boundary.
func RankFileName(phase, rank int) string {
	return fmt.Sprintf("phase-%05d-rank-%05d.ckpt", phase, rank)
}

func (m *Manifest) validate(path string) error {
	switch {
	case m.Version != ManifestVersion:
		return fmt.Errorf("ckpt: %s: unsupported manifest version %d (this build reads %d)", path, m.Version, ManifestVersion)
	case m.WorldSize <= 0:
		return fmt.Errorf("ckpt: %s: invalid world size %d", path, m.WorldSize)
	case m.Phase <= 0:
		return fmt.Errorf("ckpt: %s: invalid phase %d", path, m.Phase)
	case m.OrigN <= 0 || m.CoarseN <= 0:
		return fmt.Errorf("ckpt: %s: invalid vertex counts (orig %d, coarse %d)", path, m.OrigN, m.CoarseN)
	case len(m.Files) != m.WorldSize:
		return fmt.Errorf("ckpt: %s: %d snapshot files for world size %d", path, len(m.Files), m.WorldSize)
	}
	for _, f := range m.Files {
		if f == "" || filepath.Base(f) != f {
			return fmt.Errorf("ckpt: %s: snapshot file name %q must be a bare file name", path, f)
		}
	}
	return nil
}

// WriteManifest atomically commits m as the directory's manifest. The
// previous manifest (if any) stays intact until the new one is completely
// on disk.
func WriteManifest(dir string, m *Manifest) error {
	if err := m.validate(filepath.Join(dir, ManifestName)); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("ckpt: encode manifest: %w", err)
	}
	return writeAtomic(filepath.Join(dir, ManifestName), append(data, '\n'))
}

// ReadManifest loads and validates the directory's manifest. A missing
// manifest is reported as ErrNoCheckpoint.
func ReadManifest(dir string) (*Manifest, error) {
	path := filepath.Join(dir, ManifestName)
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w in %s", ErrNoCheckpoint, dir)
	}
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("ckpt: %s: corrupt manifest: %w", path, err)
	}
	if err := m.validate(path); err != nil {
		return nil, err
	}
	return &m, nil
}

// PruneRank garbage-collects this rank's snapshot files down to the `keep`
// most recent phases (keep < 1 is treated as 1), plus any abandoned
// temporaries. keepPhase — the phase the committed manifest references — is
// always retained regardless of its position in the ordering, so a resume
// can never lose its source files. It is called only after the keepPhase
// manifest has been committed, so everything it removes is unreferenced.
// Best-effort: removal errors are ignored (a leftover file is garbage, not a
// hazard).
func PruneRank(dir string, rank, keepPhase, keep int) {
	if keep < 1 {
		keep = 1
	}
	pattern := fmt.Sprintf("phase-*-rank-%05d.ckpt", rank)
	matches, _ := filepath.Glob(filepath.Join(dir, pattern))
	type phaseFile struct {
		phase int
		path  string
	}
	files := make([]phaseFile, 0, len(matches))
	for _, p := range matches {
		var ph, rk int
		if _, err := fmt.Sscanf(filepath.Base(p), "phase-%d-rank-%d.ckpt", &ph, &rk); err != nil || rk != rank {
			continue // foreign file caught by the glob; leave it alone
		}
		files = append(files, phaseFile{phase: ph, path: p})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].phase > files[j].phase })
	kept := 0
	for _, f := range files {
		inQuota := kept < keep
		if inQuota {
			kept++
		}
		// The manifest-referenced phase survives even outside the quota —
		// it is what a resume would read.
		if inQuota || f.phase == keepPhase {
			continue
		}
		os.Remove(f.path)
	}
	tmps, _ := filepath.Glob(filepath.Join(dir, pattern+".tmp"))
	for _, p := range tmps {
		os.Remove(p)
	}
}
