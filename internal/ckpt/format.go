// Package ckpt implements the distributed checkpoint/restart subsystem:
// a versioned, CRC32-protected, atomically-written binary container for
// per-rank phase-boundary snapshots, plus the rank-0 manifest that names
// the latest complete phase.
//
// The container is deliberately generic — named sections of opaque bytes —
// so the algorithm layer (internal/core) owns the meaning of each section
// while this package owns durability and corruption detection. A snapshot
// file is laid out as:
//
//	offset 0:  magic "DLCK" (4 bytes)
//	offset 4:  format version (uint32, currently 1)
//	offset 8:  section count  (uint32)
//	offset 12: file CRC32     (uint32, IEEE, over everything after it)
//	offset 16: sections, each:
//	             name length (uint32) + name bytes
//	             payload CRC32 (uint32, IEEE)
//	             payload length (uint64) + payload bytes
//
// Every length is validated against the remaining file before use, every
// payload against its CRC, and the whole body against the file CRC, so a
// truncated or bit-flipped snapshot is always rejected with file + section
// context — never loaded silently and never a panic (FuzzReadSnapshot
// enforces this).
//
// Durability protocol: snapshots and the manifest are written to a
// temporary sibling, fsynced, then renamed into place, so an interrupted
// write can never shadow a previous valid file.
package ckpt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Magic identifies a snapshot file.
const Magic = "DLCK"

// FormatVersion is the current container format version.
const FormatVersion = 1

// MaxNameLen bounds section names; longer names indicate corruption.
const MaxNameLen = 255

const headerSize = 16

// Section is one named payload of a snapshot.
type Section struct {
	Name string
	Data []byte
}

// Snapshot is a decoded, checksum-verified snapshot file.
type Snapshot struct {
	path     string
	sections []Section
	index    map[string]int
}

// Path returns the file (or synthetic name) the snapshot was decoded from.
func (s *Snapshot) Path() string { return s.path }

// Sections returns the sections in file order.
func (s *Snapshot) Sections() []Section { return s.sections }

// Section returns the payload of the named section.
func (s *Snapshot) Section(name string) ([]byte, error) {
	i, ok := s.index[name]
	if !ok {
		return nil, fmt.Errorf("ckpt: %s: missing section %q", s.path, name)
	}
	return s.sections[i].Data, nil
}

// EncodeSnapshot serializes sections into the container format.
func EncodeSnapshot(sections []Section) ([]byte, error) {
	var body []byte
	for _, s := range sections {
		if len(s.Name) == 0 || len(s.Name) > MaxNameLen {
			return nil, fmt.Errorf("ckpt: section name %q out of bounds (1..%d bytes)", s.Name, MaxNameLen)
		}
		body = binary.LittleEndian.AppendUint32(body, uint32(len(s.Name)))
		body = append(body, s.Name...)
		body = binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(s.Data))
		body = binary.LittleEndian.AppendUint64(body, uint64(len(s.Data)))
		body = append(body, s.Data...)
	}
	hdr := make([]byte, 0, headerSize+len(body))
	hdr = append(hdr, Magic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, FormatVersion)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(sections)))
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.ChecksumIEEE(body))
	return append(hdr, body...), nil
}

// DecodeSnapshot parses and fully verifies a snapshot image. path is used
// for error context only.
func DecodeSnapshot(path string, buf []byte) (*Snapshot, error) {
	fail := func(format string, args ...interface{}) error {
		return fmt.Errorf("ckpt: %s: "+format, append([]interface{}{path}, args...)...)
	}
	if len(buf) < headerSize {
		return nil, fail("truncated: %d bytes, need at least %d for the header", len(buf), headerSize)
	}
	if string(buf[0:4]) != Magic {
		return nil, fail("bad magic %q", buf[0:4])
	}
	if v := binary.LittleEndian.Uint32(buf[4:8]); v != FormatVersion {
		return nil, fail("unsupported format version %d (this build reads %d)", v, FormatVersion)
	}
	count := binary.LittleEndian.Uint32(buf[8:12])
	fileCRC := binary.LittleEndian.Uint32(buf[12:16])
	body := buf[headerSize:]

	snap := &Snapshot{path: path, index: make(map[string]int)}
	off := 0
	for i := uint32(0); i < count; i++ {
		ctx := fmt.Sprintf("section %d", i)
		if len(body)-off < 4 {
			return nil, fail("%s: truncated name length", ctx)
		}
		nameLen := binary.LittleEndian.Uint32(body[off:])
		off += 4
		if nameLen == 0 || nameLen > MaxNameLen {
			return nil, fail("%s: name length %d out of bounds (1..%d)", ctx, nameLen, MaxNameLen)
		}
		if uint32(len(body)-off) < nameLen {
			return nil, fail("%s: truncated name", ctx)
		}
		name := string(body[off : off+int(nameLen)])
		off += int(nameLen)
		ctx = fmt.Sprintf("section %q", name)
		if len(body)-off < 12 {
			return nil, fail("%s: truncated payload header", ctx)
		}
		dataCRC := binary.LittleEndian.Uint32(body[off:])
		dataLen := binary.LittleEndian.Uint64(body[off+4:])
		off += 12
		if dataLen > uint64(len(body)-off) {
			return nil, fail("%s: declares %d payload bytes, only %d remain", ctx, dataLen, len(body)-off)
		}
		data := body[off : off+int(dataLen)]
		off += int(dataLen)
		if got := crc32.ChecksumIEEE(data); got != dataCRC {
			return nil, fail("%s: payload checksum mismatch (stored %08x, computed %08x)", ctx, dataCRC, got)
		}
		if _, dup := snap.index[name]; dup {
			return nil, fail("%s: duplicate section", ctx)
		}
		snap.index[name] = len(snap.sections)
		snap.sections = append(snap.sections, Section{Name: name, Data: data})
	}
	if off != len(body) {
		return nil, fail("%d trailing bytes after %d sections", len(body)-off, count)
	}
	if got := crc32.ChecksumIEEE(body); got != fileCRC {
		return nil, fail("file checksum mismatch (stored %08x, computed %08x): section table corrupted", fileCRC, got)
	}
	return snap, nil
}

// WriteSnapshot atomically writes sections to path (temp + fsync + rename).
func WriteSnapshot(path string, sections []Section) error {
	data, err := EncodeSnapshot(sections)
	if err != nil {
		return err
	}
	return writeAtomic(path, data)
}

// ReadSnapshot reads and fully verifies the snapshot at path.
func ReadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	return DecodeSnapshot(path, data)
}

// writeAtomic writes data to path via a fsynced temporary sibling and an
// atomic rename, so readers only ever observe the previous complete file or
// the new complete file.
func writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("ckpt: %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("ckpt: %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ckpt: %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ckpt: %w", err)
	}
	// Persist the rename itself; best-effort (not all filesystems allow
	// directory fsync).
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
