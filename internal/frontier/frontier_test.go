package frontier

import (
	"slices"
	"testing"
)

func TestSetBasics(t *testing.T) {
	s := New(100, RepAuto, 0.25) // limit 25
	if s.Len() != 0 || s.Dense() {
		t.Fatalf("empty set: len=%d dense=%v", s.Len(), s.Dense())
	}
	s.Mark(7)
	s.Mark(3)
	s.Mark(7) // duplicate
	if s.Len() != 2 {
		t.Fatalf("len=%d want 2", s.Len())
	}
	if !s.Has(7) || !s.Has(3) || s.Has(4) {
		t.Fatal("membership wrong")
	}
	if got := s.Sorted(); !slices.Equal(got, []int64{3, 7}) {
		t.Fatalf("sorted=%v", got)
	}
	s.Clear()
	if s.Len() != 0 || s.Has(7) || s.Dense() {
		t.Fatal("clear did not reset")
	}
}

func TestSetAutoSwitch(t *testing.T) {
	s := New(100, RepAuto, 0.25)
	for v := int64(0); v < 25; v++ {
		s.Mark(v * 2)
	}
	if s.Dense() {
		t.Fatal("switched before crossing limit")
	}
	s.Mark(51)
	if !s.Dense() {
		t.Fatal("did not switch past limit")
	}
	if s.Len() != 26 || !s.Has(51) || !s.Has(48) {
		t.Fatal("membership lost across switch")
	}
	want := make([]int64, 0, 26)
	for v := int64(0); v < 25; v++ {
		want = append(want, v*2)
	}
	want = append(want, 51)
	slices.Sort(want)
	if got := s.AppendAscending(nil); !slices.Equal(got, want) {
		t.Fatalf("dense enumeration=%v want %v", got, want)
	}
	s.Clear()
	if s.Dense() {
		t.Fatal("clear must restore the sparse list")
	}
}

func TestSetForcedReps(t *testing.T) {
	d := New(64, RepDense, 0.25)
	if !d.Dense() {
		t.Fatal("RepDense must never keep a list")
	}
	d.Mark(63)
	if !d.Has(63) || d.Len() != 1 {
		t.Fatal("dense mark failed")
	}

	sp := New(64, RepSparse, 0.01)
	for v := int64(0); v < 64; v++ {
		sp.Mark(v)
	}
	if sp.Dense() {
		t.Fatal("RepSparse must keep the list at any population")
	}
	if got := sp.Sorted(); int64(len(got)) != 64 {
		t.Fatalf("sparse full population len=%d", len(got))
	}
}

func TestSetFill(t *testing.T) {
	for _, n := range []int64{0, 1, 63, 64, 65, 200} {
		for _, rep := range []Rep{RepAuto, RepDense, RepSparse} {
			s := New(n, rep, 0.25)
			s.Fill()
			if s.Len() != n {
				t.Fatalf("n=%d rep=%d: fill len=%d", n, rep, s.Len())
			}
			for v := int64(0); v < n; v++ {
				if !s.Has(v) {
					t.Fatalf("n=%d rep=%d: missing %d after fill", n, rep, v)
				}
			}
			got := s.AppendAscending(nil)
			if int64(len(got)) != n {
				t.Fatalf("n=%d rep=%d: enumeration len=%d", n, rep, len(got))
			}
			for i, v := range got {
				if v != int64(i) {
					t.Fatalf("n=%d rep=%d: enumeration[%d]=%d", n, rep, i, v)
				}
			}
			// Fill then re-mark must not double count.
			if n > 0 {
				s.Mark(0)
				if s.Len() != n {
					t.Fatalf("n=%d rep=%d: re-mark changed len to %d", n, rep, s.Len())
				}
			}
		}
	}
}

func TestSetTailWordMasked(t *testing.T) {
	s := New(70, RepDense, 0)
	s.Fill()
	if s.Len() != 70 {
		t.Fatalf("len=%d", s.Len())
	}
	got := s.AppendAscending(nil)
	if len(got) != 70 || got[69] != 69 {
		t.Fatalf("tail bits leaked: %v", got[64:])
	}
}

// FuzzFrontierSet drives a Set through an op stream and checks every
// observable (membership, population, ascending enumeration, representation
// monotonicity between clears) against a map oracle.
func FuzzFrontierSet(f *testing.F) {
	f.Add(int64(100), uint8(0), []byte{0, 1, 0, 2, 0, 3, 2, 0})
	f.Add(int64(64), uint8(1), []byte{1, 0, 50, 0, 51})
	f.Add(int64(17), uint8(2), []byte{0, 200, 0, 201, 2, 1})
	f.Fuzz(func(t *testing.T, n int64, rep uint8, ops []byte) {
		if n < 0 || n > 4096 {
			t.Skip()
		}
		r := Rep(rep % 3)
		s := New(n, r, 0.25)
		oracle := make(map[int64]bool)
		wasDense := s.Dense()
		for i := 0; i+1 < len(ops); i += 2 {
			switch ops[i] % 4 {
			case 0: // mark
				if n == 0 {
					continue
				}
				v := int64(ops[i+1]) * 17 % n
				s.Mark(v)
				oracle[v] = true
			case 1: // fill
				s.Fill()
				for v := int64(0); v < n; v++ {
					oracle[v] = true
				}
				wasDense = s.Dense()
			case 2: // clear
				s.Clear()
				clear(oracle)
				wasDense = s.Dense()
			case 3: // probe
				if n == 0 {
					continue
				}
				v := int64(ops[i+1]) * 13 % n
				if s.Has(v) != oracle[v] {
					t.Fatalf("Has(%d)=%v oracle=%v", v, s.Has(v), oracle[v])
				}
			}
			if s.Len() != int64(len(oracle)) {
				t.Fatalf("len=%d oracle=%d", s.Len(), len(oracle))
			}
			// Representation can only move sparse→dense between clears/fills.
			if wasDense && !s.Dense() {
				t.Fatal("set returned to sparse without Clear/Fill")
			}
			wasDense = s.Dense()
			switch r {
			case RepDense:
				if !s.Dense() {
					t.Fatal("RepDense kept a list")
				}
			case RepSparse:
				if n > 0 && s.Dense() {
					t.Fatal("RepSparse abandoned the list")
				}
			}
			got := s.AppendAscending(nil)
			if len(got) != len(oracle) {
				t.Fatalf("enumeration len=%d oracle=%d", len(got), len(oracle))
			}
			for j, v := range got {
				if j > 0 && got[j-1] >= v {
					t.Fatalf("enumeration not ascending at %d: %v", j, got)
				}
				if !oracle[v] {
					t.Fatalf("enumeration has non-member %d", v)
				}
			}
		}
	})
}
