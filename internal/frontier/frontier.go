// Package frontier implements the ligra-style active-vertex set driving the
// core sweep kernels: a set of local vertex indices with automatic
// dense/sparse representation switching. While the set is small it keeps an
// explicit id list (sparse direction: the sweep iterates exactly the marked
// vertices, sorted ascending); once the population crosses a configurable
// fraction of the universe the list is abandoned and the set degrades to its
// bitmap (dense direction: the sweep scans every vertex and tests
// membership). Membership is always tracked in the bitmap, so Mark is O(1)
// and duplicate marks are free under both representations.
//
// The zero direction choice never affects WHAT is in the set — only how it
// is iterated — which is what lets the core package prove frontier-driven
// sweeps bit-identical to full scans regardless of representation.
package frontier

import (
	"math/bits"
	"slices"
)

// Rep forces a representation, or lets the set switch automatically.
type Rep int

const (
	// RepAuto switches from the sparse id list to the dense bitmap when the
	// population exceeds the sparse fraction of the universe.
	RepAuto Rep = iota
	// RepDense never keeps an id list; iteration always scans the bitmap.
	RepDense
	// RepSparse always keeps the id list, whatever the population.
	RepSparse
)

// DefaultSparseFraction is the population fraction (of the universe) above
// which RepAuto abandons the id list: past this density a bitmap scan is
// cheaper than sorting and chasing an id list.
const DefaultSparseFraction = 0.25

// Set is a set of vertex ids in [0, n). Not safe for concurrent mutation;
// Has is safe to call from parallel readers while no writer runs.
type Set struct {
	n      int64
	limit  int64 // max ids the sparse list may hold; 0 forces dense
	words  []uint64
	ids    []int64 // complete population while listOK (unsorted)
	count  int64
	listOK bool
	sorted bool
}

// New returns an empty set over the universe [0, n). sparseFrac is the
// RepAuto switch point as a fraction of n (≤0 selects
// DefaultSparseFraction); RepDense and RepSparse ignore it.
func New(n int64, rep Rep, sparseFrac float64) *Set {
	if n < 0 {
		n = 0
	}
	if sparseFrac <= 0 {
		sparseFrac = DefaultSparseFraction
	}
	s := &Set{n: n, words: make([]uint64, (n+63)/64)}
	switch rep {
	case RepDense:
		s.limit = 0
	case RepSparse:
		s.limit = n
	default:
		s.limit = int64(sparseFrac * float64(n))
	}
	s.Clear()
	return s
}

// N returns the universe size.
func (s *Set) N() int64 { return s.n }

// Len returns the population.
func (s *Set) Len() int64 { return s.count }

// Has reports membership of v.
func (s *Set) Has(v int64) bool {
	return s.words[v>>6]&(1<<uint(v&63)) != 0
}

// Dense reports whether iteration must scan the bitmap (the id list is
// unavailable: abandoned past the switch point, or never kept).
func (s *Set) Dense() bool { return !s.listOK }

// Mark adds v to the set. Marking a member again is a no-op.
func (s *Set) Mark(v int64) {
	w, bit := v>>6, uint64(1)<<uint(v&63)
	if s.words[w]&bit != 0 {
		return
	}
	s.words[w] |= bit
	s.count++
	if s.listOK {
		if s.count <= s.limit {
			s.ids = append(s.ids, v)
			s.sorted = false
		} else {
			// Crossed the switch point: drop to the dense direction. The
			// bitmap already holds the full population.
			s.listOK = false
			s.ids = s.ids[:0]
		}
	}
}

// Clear empties the set.
func (s *Set) Clear() {
	clear(s.words)
	s.ids = s.ids[:0]
	s.count = 0
	s.listOK = s.limit > 0
	s.sorted = true
}

// Fill populates the set with the entire universe (the phase-start seed).
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	if tail := s.n & 63; tail != 0 {
		s.words[len(s.words)-1] = (1 << uint(tail)) - 1
	}
	s.count = s.n
	s.ids = s.ids[:0]
	s.sorted = true
	s.listOK = s.limit >= s.n && s.n > 0
	if s.listOK {
		for v := int64(0); v < s.n; v++ {
			s.ids = append(s.ids, v)
		}
	}
}

// Sorted returns the population in ascending order. Valid only while the
// sparse list is live (!Dense()); the slice aliases internal storage and is
// invalidated by the next mutation.
func (s *Set) Sorted() []int64 {
	if !s.sorted {
		slices.Sort(s.ids)
		s.sorted = true
	}
	return s.ids
}

// AppendAscending appends the population in ascending order to dst and
// returns it. Unlike Sorted it works under both representations (bitmap
// scan when dense), so oracles and diagnostics can enumerate any set.
func (s *Set) AppendAscending(dst []int64) []int64 {
	if s.listOK {
		return append(dst, s.Sorted()...)
	}
	for wi, w := range s.words {
		base := int64(wi) << 6
		for w != 0 {
			dst = append(dst, base+int64(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}
