// Package partition implements the 1-D decomposition of the vertex (and
// community) ID space across ranks. The paper distributes vertices and
// their edge lists so that "each process receives roughly the same number
// of edges; no clever graph partitioning is performed" — both the
// vertex-balanced and the edge-balanced variants are provided (the latter is
// what the paper uses for input loading, the former for rebuilt graphs,
// whose step 6 redistributes "so that every process owns an equal number of
// vertices").
package partition

import (
	"fmt"
	"sort"
)

// Partition maps the contiguous vertex range [0, N) onto p ranks. Rank r
// owns [Bounds[r], Bounds[r+1]).
type Partition struct {
	Bounds []int64 // length p+1, Bounds[0]=0, Bounds[p]=N
}

// Size returns the number of ranks.
func (pt *Partition) Size() int { return len(pt.Bounds) - 1 }

// N returns the number of vertices.
func (pt *Partition) N() int64 { return pt.Bounds[pt.Size()] }

// Range returns rank's owned interval [lo, hi).
func (pt *Partition) Range(rank int) (lo, hi int64) {
	return pt.Bounds[rank], pt.Bounds[rank+1]
}

// Count returns the number of vertices rank owns.
func (pt *Partition) Count(rank int) int64 {
	return pt.Bounds[rank+1] - pt.Bounds[rank]
}

// Owner returns the rank owning global vertex v.
func (pt *Partition) Owner(v int64) int {
	if v < 0 || v >= pt.N() {
		panic(fmt.Sprintf("partition: vertex %d out of range [0,%d)", v, pt.N()))
	}
	// Binary search for the last bound <= v.
	r := sort.Search(pt.Size(), func(i int) bool { return pt.Bounds[i+1] > v })
	return r
}

// Owns reports whether rank owns v.
func (pt *Partition) Owns(rank int, v int64) bool {
	return v >= pt.Bounds[rank] && v < pt.Bounds[rank+1]
}

// ToLocal converts a global vertex owned by rank to its local index.
func (pt *Partition) ToLocal(rank int, v int64) int64 {
	return v - pt.Bounds[rank]
}

// ToGlobal converts rank's local index to the global vertex ID.
func (pt *Partition) ToGlobal(rank int, lv int64) int64 {
	return pt.Bounds[rank] + lv
}

// Validate checks structural sanity.
func (pt *Partition) Validate() error {
	if len(pt.Bounds) < 2 {
		return fmt.Errorf("partition: need at least 2 bounds, have %d", len(pt.Bounds))
	}
	if pt.Bounds[0] != 0 {
		return fmt.Errorf("partition: bounds[0] = %d, want 0", pt.Bounds[0])
	}
	for i := 1; i < len(pt.Bounds); i++ {
		if pt.Bounds[i] < pt.Bounds[i-1] {
			return fmt.Errorf("partition: bounds not monotone at %d", i)
		}
	}
	return nil
}

// ByVertexCount splits [0, n) into p near-equal ranges; the first n%p ranks
// receive one extra vertex.
func ByVertexCount(n int64, p int) *Partition {
	if p <= 0 {
		panic("partition: non-positive rank count")
	}
	bounds := make([]int64, p+1)
	per := n / int64(p)
	rem := n % int64(p)
	for r := 0; r < p; r++ {
		extra := int64(0)
		if int64(r) < rem {
			extra = 1
		}
		bounds[r+1] = bounds[r] + per + extra
	}
	return &Partition{Bounds: bounds}
}

// ByEdgeCount splits [0, n) so each rank holds roughly the same number of
// adjacency slots, given per-vertex degrees. Contiguity is preserved (1-D),
// so ranks sweep dense ID ranges; a vertex is never split.
func ByEdgeCount(degrees []int64, p int) *Partition {
	n := int64(len(degrees))
	if p <= 0 {
		panic("partition: non-positive rank count")
	}
	var total int64
	for _, d := range degrees {
		total += d
	}
	bounds := make([]int64, p+1)
	target := func(r int) int64 {
		// Ideal cumulative slot count after rank r's range.
		return (total * int64(r+1)) / int64(p)
	}
	var cum int64
	v := int64(0)
	for r := 0; r < p; r++ {
		want := target(r)
		for v < n && (cum < want || r == p-1) {
			cum += degrees[v]
			v++
		}
		bounds[r+1] = v
	}
	bounds[p] = n
	return &Partition{Bounds: bounds}
}
