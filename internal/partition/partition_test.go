package partition

import (
	"testing"
	"testing/quick"
)

func TestByVertexCountEven(t *testing.T) {
	pt := ByVertexCount(10, 3)
	if err := pt.Validate(); err != nil {
		t.Fatal(err)
	}
	if pt.Size() != 3 || pt.N() != 10 {
		t.Fatalf("size=%d n=%d", pt.Size(), pt.N())
	}
	counts := []int64{pt.Count(0), pt.Count(1), pt.Count(2)}
	if counts[0] != 4 || counts[1] != 3 || counts[2] != 3 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestByVertexCountMoreRanksThanVertices(t *testing.T) {
	pt := ByVertexCount(2, 5)
	if err := pt.Validate(); err != nil {
		t.Fatal(err)
	}
	var total int64
	for r := 0; r < 5; r++ {
		total += pt.Count(r)
	}
	if total != 2 {
		t.Fatalf("total = %d", total)
	}
}

func TestOwnerAndLocality(t *testing.T) {
	pt := ByVertexCount(100, 7)
	for v := int64(0); v < 100; v++ {
		r := pt.Owner(v)
		if !pt.Owns(r, v) {
			t.Fatalf("owner(%d)=%d but Owns is false", v, r)
		}
		lv := pt.ToLocal(r, v)
		if got := pt.ToGlobal(r, lv); got != v {
			t.Fatalf("round trip %d -> %d -> %d", v, lv, got)
		}
		lo, hi := pt.Range(r)
		if v < lo || v >= hi {
			t.Fatalf("v=%d outside range [%d,%d) of owner %d", v, lo, hi, r)
		}
	}
}

func TestOwnerPanicsOutOfRange(t *testing.T) {
	pt := ByVertexCount(10, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	pt.Owner(10)
}

func TestByEdgeCountBalances(t *testing.T) {
	// One heavy vertex at the front: it should get its own range.
	degrees := make([]int64, 10)
	degrees[0] = 90
	for i := 1; i < 10; i++ {
		degrees[i] = 10
	}
	pt := ByEdgeCount(degrees, 2)
	if err := pt.Validate(); err != nil {
		t.Fatal(err)
	}
	if pt.N() != 10 {
		t.Fatalf("N = %d", pt.N())
	}
	// Rank 0 should own just vertex 0 (90 slots ≈ half of 180).
	if pt.Count(0) != 1 {
		t.Fatalf("rank 0 owns %d vertices, want 1 (bounds %v)", pt.Count(0), pt.Bounds)
	}
}

func TestByEdgeCountZeroDegrees(t *testing.T) {
	pt := ByEdgeCount(make([]int64, 12), 4)
	if err := pt.Validate(); err != nil {
		t.Fatal(err)
	}
	if pt.N() != 12 {
		t.Fatalf("N = %d", pt.N())
	}
	var total int64
	for r := 0; r < 4; r++ {
		total += pt.Count(r)
	}
	if total != 12 {
		t.Fatalf("total = %d", total)
	}
}

func TestValidateCatchesBrokenBounds(t *testing.T) {
	bad := &Partition{Bounds: []int64{0, 5, 3, 10}}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected monotonicity error")
	}
	bad = &Partition{Bounds: []int64{1, 5}}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected bounds[0] error")
	}
	bad = &Partition{Bounds: []int64{0}}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected too-few-bounds error")
	}
}

// Property: both partitioners cover [0,n) exactly once, and Owner agrees
// with the ranges, for arbitrary sizes.
func TestQuickPartitionCoverage(t *testing.T) {
	f := func(nRaw uint16, pRaw uint8, degSeed int64) bool {
		n := int64(nRaw % 500)
		p := int(pRaw%16) + 1
		degrees := make([]int64, n)
		s := degSeed
		for i := range degrees {
			s = s*6364136223846793005 + 1442695040888963407
			degrees[i] = (s >> 33) % 20
			if degrees[i] < 0 {
				degrees[i] = -degrees[i]
			}
		}
		for _, pt := range []*Partition{ByVertexCount(n, p), ByEdgeCount(degrees, p)} {
			if pt.Validate() != nil {
				return false
			}
			if pt.N() != n || pt.Size() != p {
				return false
			}
			var total int64
			for r := 0; r < p; r++ {
				total += pt.Count(r)
			}
			if total != n {
				return false
			}
			step := n/97 + 1
			for v := int64(0); v < n; v += step {
				if !pt.Owns(pt.Owner(v), v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: edge-balanced partitioning is never worse than 2x the ideal
// per-rank load plus the heaviest single vertex (contiguity bound).
func TestQuickEdgeBalanceQuality(t *testing.T) {
	f := func(pRaw uint8, seed int64) bool {
		p := int(pRaw%8) + 1
		n := int64(200)
		degrees := make([]int64, n)
		var total, maxDeg int64
		s := seed
		for i := range degrees {
			s = s*2862933555777941757 + 3037000493
			degrees[i] = (s >> 40) & 63
			total += degrees[i]
			if degrees[i] > maxDeg {
				maxDeg = degrees[i]
			}
		}
		pt := ByEdgeCount(degrees, p)
		ideal := total / int64(p)
		for r := 0; r < p; r++ {
			lo, hi := pt.Range(r)
			var load int64
			for v := lo; v < hi; v++ {
				load += degrees[v]
			}
			if load > ideal+maxDeg+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
