// Package quality implements the ground-truth comparison metrics of the
// paper's §V-D: precision, recall and F-score computed from community
// assignment overlaps following the methodology of Halappanavar et al.
// (HPEC'17), plus normalized mutual information as an additional standard
// measure.
package quality

import (
	"fmt"
	"math"
)

// Score is the outcome of a ground-truth comparison.
type Score struct {
	Precision float64
	Recall    float64
	FScore    float64
	NMI       float64
	// ARI is the adjusted Rand index: pair-counting agreement corrected
	// for chance (1 = identical partitions, ~0 = random).
	ARI float64
	// DetectedCommunities and TruthCommunities count distinct labels.
	DetectedCommunities int64
	TruthCommunities    int64
}

// Compare evaluates a detected assignment against ground truth. Both slices
// assign a community label to each vertex (labels need not be dense).
//
// Following the HPEC'17 methodology: each detected community is matched to
// the ground-truth community it overlaps most; precision is the
// vertex-weighted fraction of each detected community lying inside its
// match. Recall mirrors this from the ground-truth side (each true
// community matched to its best detected community). F-score is their
// harmonic mean.
func Compare(detected, truth []int64) (Score, error) {
	if len(detected) != len(truth) {
		return Score{}, fmt.Errorf("quality: assignment lengths differ: %d vs %d", len(detected), len(truth))
	}
	n := len(detected)
	if n == 0 {
		return Score{}, fmt.Errorf("quality: empty assignments")
	}

	overlap := make(map[pair]int64)
	dSize := make(map[int64]int64)
	tSize := make(map[int64]int64)
	for v := 0; v < n; v++ {
		overlap[pair{detected[v], truth[v]}]++
		dSize[detected[v]]++
		tSize[truth[v]]++
	}

	// Best overlap per detected community and per truth community.
	bestD := make(map[int64]int64)
	bestT := make(map[int64]int64)
	for p, c := range overlap {
		if c > bestD[p.d] {
			bestD[p.d] = c
		}
		if c > bestT[p.t] {
			bestT[p.t] = c
		}
	}
	var precNum, recNum int64
	for _, best := range bestD {
		precNum += best
	}
	for _, best := range bestT {
		recNum += best
	}
	s := Score{
		Precision:           float64(precNum) / float64(n),
		Recall:              float64(recNum) / float64(n),
		DetectedCommunities: int64(len(dSize)),
		TruthCommunities:    int64(len(tSize)),
	}
	if s.Precision+s.Recall > 0 {
		s.FScore = 2 * s.Precision * s.Recall / (s.Precision + s.Recall)
	}
	s.NMI = nmi(overlap, dSize, tSize, int64(n))
	s.ARI = ari(overlap, dSize, tSize, int64(n))
	return s, nil
}

// pair keys the detected×truth contingency table.
type pair struct{ d, t int64 }

// nmi computes normalized mutual information between the two labelings,
// normalized by the arithmetic mean of the entropies (the convention of
// Lancichinetti & Fortunato's benchmark comparisons).
func nmi(overlap map[pair]int64, dSize, tSize map[int64]int64, n int64) float64 {
	fn := float64(n)
	var mi float64
	for p, c := range overlap {
		pxy := float64(c) / fn
		px := float64(dSize[p.d]) / fn
		py := float64(tSize[p.t]) / fn
		if pxy > 0 {
			mi += pxy * math.Log(pxy/(px*py))
		}
	}
	var hd, ht float64
	for _, c := range dSize {
		p := float64(c) / fn
		hd -= p * math.Log(p)
	}
	for _, c := range tSize {
		p := float64(c) / fn
		ht -= p * math.Log(p)
	}
	if hd+ht == 0 {
		// Both partitions are single communities: identical labelings.
		return 1
	}
	return 2 * mi / (hd + ht)
}

// ari computes the adjusted Rand index from the contingency table:
// (Σ_ij C(n_ij,2) − E) / (max − E) with E the chance-expected pair
// agreement. Uses float arithmetic throughout; the binomials of counts up
// to 2^31 stay well within float64 precision for the comparison's purpose.
func ari(overlap map[pair]int64, dSize, tSize map[int64]int64, n int64) float64 {
	choose2 := func(x int64) float64 { return float64(x) * float64(x-1) / 2 }
	var sumIJ, sumD, sumT float64
	for _, c := range overlap {
		sumIJ += choose2(c)
	}
	for _, c := range dSize {
		sumD += choose2(c)
	}
	for _, c := range tSize {
		sumT += choose2(c)
	}
	total := choose2(n)
	if total == 0 {
		return 1
	}
	expected := sumD * sumT / total
	maxIndex := (sumD + sumT) / 2
	if maxIndex == expected {
		// Degenerate partitions (e.g. both all-singletons or both
		// one-community): identical by construction of the overlap.
		return 1
	}
	return (sumIJ - expected) / (maxIndex - expected)
}

// SizeDistribution summarizes community sizes of an assignment.
type SizeDistribution struct {
	Communities int64
	Min, Max    int64
	Mean        float64
	Median      int64
	Singletons  int64
}

// Sizes computes the distribution of community sizes.
func Sizes(comm []int64) SizeDistribution {
	counts := make(map[int64]int64)
	for _, c := range comm {
		counts[c]++
	}
	d := SizeDistribution{Communities: int64(len(counts))}
	if len(counts) == 0 {
		return d
	}
	all := make([]int64, 0, len(counts))
	var sum int64
	d.Min = math.MaxInt64
	for _, s := range counts {
		all = append(all, s)
		sum += s
		if s < d.Min {
			d.Min = s
		}
		if s > d.Max {
			d.Max = s
		}
		if s == 1 {
			d.Singletons++
		}
	}
	d.Mean = float64(sum) / float64(len(counts))
	// Median via counting (sizes are small ints); simple insertion sort
	// domain is fine for the expected community counts.
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && all[j-1] > all[j]; j-- {
			all[j-1], all[j] = all[j], all[j-1]
		}
	}
	d.Median = all[len(all)/2]
	return d
}
