package quality

import (
	"math"
	"testing"
	"testing/quick"
)

func TestComparePerfectMatch(t *testing.T) {
	truth := []int64{0, 0, 1, 1, 2, 2}
	detected := []int64{5, 5, 9, 9, 7, 7} // same partition, different labels
	s, err := Compare(detected, truth)
	if err != nil {
		t.Fatal(err)
	}
	if s.Precision != 1 || s.Recall != 1 || s.FScore != 1 {
		t.Fatalf("perfect match scored %+v", s)
	}
	if math.Abs(s.NMI-1) > 1e-12 {
		t.Fatalf("NMI = %g", s.NMI)
	}
	if s.DetectedCommunities != 3 || s.TruthCommunities != 3 {
		t.Fatalf("counts: %+v", s)
	}
}

func TestCompareMergedCommunities(t *testing.T) {
	// Detection merged the two truth communities: recall stays 1 (each
	// truth community is fully inside a detected one), precision drops.
	truth := []int64{0, 0, 1, 1}
	detected := []int64{0, 0, 0, 0}
	s, err := Compare(detected, truth)
	if err != nil {
		t.Fatal(err)
	}
	if s.Recall != 1 {
		t.Fatalf("recall = %g, want 1", s.Recall)
	}
	if s.Precision != 0.5 {
		t.Fatalf("precision = %g, want 0.5", s.Precision)
	}
	wantF := 2 * 0.5 * 1 / 1.5
	if math.Abs(s.FScore-wantF) > 1e-12 {
		t.Fatalf("F = %g, want %g", s.FScore, wantF)
	}
}

func TestCompareSplitCommunities(t *testing.T) {
	// Detection split one truth community: precision 1, recall drops.
	truth := []int64{0, 0, 0, 0}
	detected := []int64{0, 0, 1, 1}
	s, err := Compare(detected, truth)
	if err != nil {
		t.Fatal(err)
	}
	if s.Precision != 1 {
		t.Fatalf("precision = %g, want 1", s.Precision)
	}
	if s.Recall != 0.5 {
		t.Fatalf("recall = %g, want 0.5", s.Recall)
	}
}

func TestCompareErrors(t *testing.T) {
	if _, err := Compare([]int64{1}, []int64{1, 2}); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := Compare(nil, nil); err == nil {
		t.Fatal("expected empty error")
	}
}

func TestCompareSingleCommunityBoth(t *testing.T) {
	s, err := Compare([]int64{3, 3, 3}, []int64{8, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if s.Precision != 1 || s.Recall != 1 || s.NMI != 1 {
		t.Fatalf("%+v", s)
	}
}

func TestNMISymmetricRange(t *testing.T) {
	truth := []int64{0, 0, 1, 1, 2, 2, 0, 1}
	detected := []int64{0, 1, 1, 0, 2, 2, 0, 1}
	a, err := Compare(detected, truth)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compare(truth, detected)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.NMI-b.NMI) > 1e-12 {
		t.Fatalf("NMI not symmetric: %g vs %g", a.NMI, b.NMI)
	}
	if a.NMI < 0 || a.NMI > 1 {
		t.Fatalf("NMI out of range: %g", a.NMI)
	}
}

func TestSizes(t *testing.T) {
	d := Sizes([]int64{0, 0, 0, 1, 1, 2})
	if d.Communities != 3 || d.Min != 1 || d.Max != 3 || d.Singletons != 1 {
		t.Fatalf("%+v", d)
	}
	if math.Abs(d.Mean-2) > 1e-12 {
		t.Fatalf("mean = %g", d.Mean)
	}
	if d.Median != 2 {
		t.Fatalf("median = %d", d.Median)
	}
}

func TestSizesEmpty(t *testing.T) {
	d := Sizes(nil)
	if d.Communities != 0 {
		t.Fatalf("%+v", d)
	}
}

// Property: scores are within [0,1], F is the harmonic mean, and comparing
// an assignment to itself is perfect.
func TestQuickCompareBounds(t *testing.T) {
	f := func(labels []uint8) bool {
		if len(labels) == 0 {
			return true
		}
		detected := make([]int64, len(labels))
		truth := make([]int64, len(labels))
		for i, l := range labels {
			detected[i] = int64(l % 7)
			truth[i] = int64((l / 7) % 5)
		}
		s, err := Compare(detected, truth)
		if err != nil {
			return false
		}
		if s.Precision < 0 || s.Precision > 1 || s.Recall < 0 || s.Recall > 1 {
			return false
		}
		if s.FScore > 0 {
			want := 2 * s.Precision * s.Recall / (s.Precision + s.Recall)
			if math.Abs(s.FScore-want) > 1e-12 {
				return false
			}
		}
		if s.NMI < -1e-12 || s.NMI > 1+1e-12 {
			return false
		}
		self, err := Compare(detected, detected)
		if err != nil {
			return false
		}
		return self.Precision == 1 && self.Recall == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestARI(t *testing.T) {
	// Identical partitions → ARI 1.
	a := []int64{0, 0, 1, 1, 2, 2}
	s, err := Compare(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.ARI-1) > 1e-12 {
		t.Fatalf("self-ARI = %g", s.ARI)
	}
	// Label permutation → still 1.
	b := []int64{9, 9, 7, 7, 5, 5}
	s, err = Compare(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.ARI-1) > 1e-12 {
		t.Fatalf("permuted ARI = %g", s.ARI)
	}
	// Completely split detection vs one truth community: ARI 0 (chance).
	split := []int64{0, 1, 2, 3}
	one := []int64{5, 5, 5, 5}
	s, err = Compare(split, one)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.ARI) > 1e-12 {
		t.Fatalf("split-vs-one ARI = %g", s.ARI)
	}
	// Bounded above by 1 and symmetric for a partial match.
	x := []int64{0, 0, 1, 1, 2, 2, 0, 1}
	y := []int64{0, 1, 1, 0, 2, 2, 0, 1}
	sxy, _ := Compare(x, y)
	syx, _ := Compare(y, x)
	if math.Abs(sxy.ARI-syx.ARI) > 1e-12 {
		t.Fatalf("ARI not symmetric: %g vs %g", sxy.ARI, syx.ARI)
	}
	if sxy.ARI > 1 || sxy.ARI < -1 {
		t.Fatalf("ARI out of range: %g", sxy.ARI)
	}
}
