package mpi

import "testing"

func TestArenaReuse(t *testing.T) {
	var a Arena
	bp := a.Grab()
	*bp = AppendInt64(*bp, 1)
	*bp = AppendInt64(*bp, 2)
	first := *bp
	if len(first) != 16 {
		t.Fatalf("len = %d, want 16", len(first))
	}
	a.Reset()
	bp2 := a.Grab()
	if len(*bp2) != 0 {
		t.Fatalf("regrabbed buffer has len %d, want 0", len(*bp2))
	}
	if cap(*bp2) < 16 {
		t.Fatalf("regrabbed buffer lost its capacity: cap = %d", cap(*bp2))
	}
	if &first[0] != &(*bp2)[:1][0] {
		t.Fatal("regrabbed buffer does not reuse prior storage")
	}
}

func TestArenaDistinctBuffers(t *testing.T) {
	var a Arena
	b1 := a.Grab()
	b2 := a.Grab()
	*b1 = AppendInt64(*b1, 7)
	*b2 = AppendInt64(*b2, 9)
	v1, err := DecodeInt64s(*b1)
	if err != nil || v1[0] != 7 {
		t.Fatalf("b1 = %v, %v", v1, err)
	}
	v2, err := DecodeInt64s(*b2)
	if err != nil || v2[0] != 9 {
		t.Fatalf("b2 = %v, %v", v2, err)
	}
}

// TestArenaSteadyStateNoAlloc proves the arena-backed encode cycle stops
// allocating once buffer capacities stabilize.
func TestArenaSteadyStateNoAlloc(t *testing.T) {
	var a Arena
	cycle := func() {
		a.Reset()
		for q := 0; q < 4; q++ {
			bp := a.Grab()
			for i := 0; i < 100; i++ {
				*bp = AppendInt64(*bp, int64(i))
			}
		}
	}
	cycle() // warm up capacities
	allocs := testing.AllocsPerRun(100, cycle)
	if allocs > 0 {
		t.Fatalf("steady-state arena cycle allocates %.1f times per run", allocs)
	}
}
