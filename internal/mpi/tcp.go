package mpi

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// tcpFrameHeader is [tag int32][length uint32]; the sender's rank is
// established once per connection by a handshake frame, so it is not
// repeated per message.
const tcpHeaderSize = 8

// maxTCPFrame bounds a single message to guard against corrupt length
// prefixes; 1 GiB is far above anything the Louvain exchanges produce.
const maxTCPFrame = 1 << 30

// TCPWorldConfig describes a TCP world. Addrs[i] is the listen address of
// rank i ("host:port"); every rank must use the same list in the same order.
type TCPWorldConfig struct {
	Rank  int
	Addrs []string
	// DialTimeout bounds each connection attempt; rendezvous retries until
	// ConnectDeadline. Zero values select 2s and 30s respectively.
	DialTimeout     time.Duration
	ConnectDeadline time.Duration
}

// tcpEndpoint implements Transport over a full mesh of TCP connections.
// Rank i accepts connections from ranks j > i and dials ranks j < i, so each
// unordered pair owns exactly one connection.
type tcpEndpoint struct {
	rank, size int
	queue      *matchQueue
	listener   net.Listener

	mu      sync.Mutex
	writers []*tcpWriter // indexed by peer rank; nil at self
	closed  bool
	wg      sync.WaitGroup
}

// tcpWriter serializes frames onto one connection from a queue drained by a
// dedicated goroutine, keeping Send non-blocking as the Transport contract
// requires.
type tcpWriter struct {
	conn net.Conn
	ch   chan []byte // fully framed messages
	done chan struct{}
	errs chan error
}

func newTCPWriter(conn net.Conn) *tcpWriter {
	w := &tcpWriter{conn: conn, ch: make(chan []byte, 1024), done: make(chan struct{}), errs: make(chan error, 1)}
	go func() {
		bw := bufio.NewWriterSize(conn, 1<<16)
		for frame := range w.ch {
			if _, err := bw.Write(frame); err != nil {
				select {
				case w.errs <- err:
				default:
				}
				break
			}
			// Flush when no more frames are immediately pending so that
			// small control messages are not delayed behind the buffer.
			if len(w.ch) == 0 {
				if err := bw.Flush(); err != nil {
					select {
					case w.errs <- err:
					default:
					}
					break
				}
			}
		}
		close(w.done)
	}()
	return w
}

func (w *tcpWriter) enqueue(frame []byte) error {
	select {
	case err := <-w.errs:
		return fmt.Errorf("mpi: tcp write: %w", err)
	default:
	}
	w.ch <- frame
	return nil
}

func (w *tcpWriter) close() {
	close(w.ch)
	<-w.done
	w.conn.Close()
}

// DialTCPWorld performs the full-mesh rendezvous described by cfg and
// returns this rank's transport. It blocks until all 2-way connections are
// established or the deadline expires.
func DialTCPWorld(cfg TCPWorldConfig) (Transport, error) {
	size := len(cfg.Addrs)
	if size <= 0 {
		return nil, fmt.Errorf("mpi: empty address list")
	}
	if err := checkPeer(cfg.Rank, size, "DialTCPWorld"); err != nil {
		return nil, err
	}
	dialTimeout := cfg.DialTimeout
	if dialTimeout <= 0 {
		dialTimeout = 2 * time.Second
	}
	deadline := cfg.ConnectDeadline
	if deadline <= 0 {
		deadline = 30 * time.Second
	}

	ep := &tcpEndpoint{
		rank:    cfg.Rank,
		size:    size,
		queue:   newMatchQueue(),
		writers: make([]*tcpWriter, size),
	}
	if size == 1 {
		return ep, nil
	}

	ln, err := net.Listen("tcp", cfg.Addrs[cfg.Rank])
	if err != nil {
		return nil, fmt.Errorf("mpi: rank %d listen %s: %w", cfg.Rank, cfg.Addrs[cfg.Rank], err)
	}
	ep.listener = ln

	type dialed struct {
		peer int
		conn net.Conn
		err  error
	}
	results := make(chan dialed, size)

	// Accept from higher-ranked peers.
	nAccept := size - 1 - cfg.Rank
	go func() {
		for i := 0; i < nAccept; i++ {
			conn, err := ln.Accept()
			if err != nil {
				results <- dialed{err: fmt.Errorf("mpi: rank %d accept: %w", cfg.Rank, err)}
				return
			}
			// Handshake: the dialer announces its rank.
			var hs [4]byte
			if _, err := io.ReadFull(conn, hs[:]); err != nil {
				results <- dialed{err: fmt.Errorf("mpi: rank %d handshake read: %w", cfg.Rank, err)}
				return
			}
			peer := int(int32(binary.LittleEndian.Uint32(hs[:])))
			if peer <= cfg.Rank || peer >= size {
				results <- dialed{err: fmt.Errorf("mpi: rank %d unexpected handshake from rank %d", cfg.Rank, peer)}
				return
			}
			results <- dialed{peer: peer, conn: conn}
		}
	}()

	// Dial lower-ranked peers, retrying until the deadline to tolerate
	// ranks that start listening at slightly different times.
	for peer := 0; peer < cfg.Rank; peer++ {
		go func(peer int) {
			var lastErr error
			end := time.Now().Add(deadline)
			for time.Now().Before(end) {
				conn, err := net.DialTimeout("tcp", cfg.Addrs[peer], dialTimeout)
				if err == nil {
					var hs [4]byte
					binary.LittleEndian.PutUint32(hs[:], uint32(int32(cfg.Rank)))
					if _, err = conn.Write(hs[:]); err == nil {
						results <- dialed{peer: peer, conn: conn}
						return
					}
					conn.Close()
				}
				lastErr = err
				time.Sleep(50 * time.Millisecond)
			}
			results <- dialed{err: fmt.Errorf("mpi: rank %d dial rank %d (%s): %w", cfg.Rank, peer, cfg.Addrs[peer], lastErr)}
		}(peer)
	}

	need := size - 1
	for i := 0; i < need; i++ {
		d := <-results
		if d.err != nil {
			ep.Close()
			return nil, d.err
		}
		if tc, ok := d.conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		ep.writers[d.peer] = newTCPWriter(d.conn)
		ep.wg.Add(1)
		go ep.readLoop(d.peer, d.conn)
	}
	return ep, nil
}

// readLoop parses frames from one peer connection into the match queue.
func (e *tcpEndpoint) readLoop(peer int, conn net.Conn) {
	defer e.wg.Done()
	br := bufio.NewReaderSize(conn, 1<<16)
	var hdr [tcpHeaderSize]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		tag := int(int32(binary.LittleEndian.Uint32(hdr[0:4])))
		n := binary.LittleEndian.Uint32(hdr[4:8])
		if n > maxTCPFrame {
			return
		}
		var data []byte
		if n > 0 {
			data = make([]byte, n)
			if _, err := io.ReadFull(br, data); err != nil {
				return
			}
		}
		if e.queue.push(Message{From: peer, Tag: tag, Data: data}) != nil {
			return
		}
	}
}

func (e *tcpEndpoint) Rank() int { return e.rank }
func (e *tcpEndpoint) Size() int { return e.size }

func (e *tcpEndpoint) Send(to, tag int, data []byte) error {
	if err := checkPeer(to, e.size, "Send"); err != nil {
		return err
	}
	if to == e.rank {
		cp := make([]byte, len(data))
		copy(cp, data)
		return e.queue.push(Message{From: e.rank, Tag: tag, Data: cp})
	}
	e.mu.Lock()
	w := e.writers[to]
	closed := e.closed
	e.mu.Unlock()
	if closed || w == nil {
		return ErrClosed
	}
	frame := make([]byte, tcpHeaderSize+len(data))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(int32(tag)))
	binary.LittleEndian.PutUint32(frame[4:8], uint32(len(data)))
	copy(frame[tcpHeaderSize:], data)
	return w.enqueue(frame)
}

func (e *tcpEndpoint) Recv(from, tag int) (Message, error) {
	if from != AnySource {
		if err := checkPeer(from, e.size, "Recv"); err != nil {
			return Message{}, err
		}
	}
	return e.queue.pop(from, tag)
}

func (e *tcpEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	writers := e.writers
	e.mu.Unlock()
	for _, w := range writers {
		if w != nil {
			w.close()
		}
	}
	if e.listener != nil {
		e.listener.Close()
	}
	e.queue.close()
	e.wg.Wait()
	return nil
}
