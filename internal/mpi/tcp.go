package mpi

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"distlouvain/internal/backoff"
)

// tcpFrameHeader is [tag int32][length uint32]; the sender's rank is
// established once per connection by a handshake frame, so it is not
// repeated per message.
const tcpHeaderSize = 8

// maxTCPFrame bounds a single message to guard against corrupt length
// prefixes; 1 GiB is far above anything the Louvain exchanges produce.
const maxTCPFrame = 1 << 30

// goodbyeTag marks the control frame an orderly Close sends as its last
// word on every connection. Application tags are non-negative and the
// collective tags are positive, so the value cannot collide with data. A
// peer whose stream ends after a goodbye departed gracefully (all of its
// messages were delivered first — TCP ordering); a stream that ends without
// one belongs to a crashed or killed peer and poisons the endpoint with
// ErrPeerLost.
const goodbyeTag = -2

// TCPWorldConfig describes a TCP world. Addrs[i] is the listen address of
// rank i ("host:port"); every rank must use the same list in the same order.
type TCPWorldConfig struct {
	Rank  int
	Addrs []string
	// DialTimeout bounds each connection attempt; rendezvous retries until
	// ConnectDeadline. Zero values select 2s and 30s respectively.
	DialTimeout     time.Duration
	ConnectDeadline time.Duration
	// Fence, when non-zero, selects the fenced handshake: the dialer
	// announces [rank int32][fence uint64] and the acceptor answers with one
	// accept/reject byte. Both sides must present the same token — the
	// coordinator's generation for this incarnation of the world — or the
	// connection is refused: the acceptor drops it without consuming a
	// rendezvous slot, and the dialer fails typed with *ErrFenced instead of
	// joining (or hanging on) a world it no longer belongs to. Zero keeps
	// the legacy 4-byte handshake for hand-written -hosts worlds.
	Fence uint64
}

// tcpEndpoint implements Transport over a full mesh of TCP connections.
// Rank i accepts connections from ranks j > i and dials ranks j < i, so each
// unordered pair owns exactly one connection.
type tcpEndpoint struct {
	rank, size int
	queue      *matchQueue
	listener   net.Listener

	mu      sync.Mutex
	writers []*tcpWriter // indexed by peer rank; nil at self
	closed  bool
	wg      sync.WaitGroup
}

// tcpWriter serializes frames onto one connection from a queue drained by a
// dedicated goroutine, keeping Send non-blocking as the Transport contract
// requires. When the goroutine dies on a write error it records the cause
// and closes done, so enqueue fails fast instead of filling the channel and
// blocking the sender forever.
type tcpWriter struct {
	conn net.Conn
	ch   chan []byte   // fully framed messages; never closed (see below)
	stop chan struct{} // closed by close(): drain buffered frames and exit
	done chan struct{} // closed after err is set (or on clean drain)
	err  error         // write failure; read only after <-done
}

// newTCPWriter starts the drain goroutine. onError, if non-nil, is invoked
// once with the write error so the endpoint can mark the peer lost.
//
// The frame channel is deliberately never closed: concurrent senders (the
// Transport contract allows point-to-point calls from multiple goroutines,
// and fault-injected delayed deliveries arrive from timers) would race a
// close with a send. Shutdown is signalled through stop instead, and the
// goroutine drains whatever is already buffered before exiting so a
// goodbye frame enqueued just before close() still reaches the wire.
func newTCPWriter(conn net.Conn, onError func(error)) *tcpWriter {
	w := &tcpWriter{
		conn: conn,
		ch:   make(chan []byte, 1024),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go func() {
		bw := bufio.NewWriterSize(conn, 1<<16)
		write := func(frame []byte) bool {
			if _, err := bw.Write(frame); err != nil {
				w.fail(err, onError)
				return false
			}
			return true
		}
		for {
			select {
			case frame := <-w.ch:
				if !write(frame) {
					return
				}
				// Flush when no more frames are immediately pending so
				// that small control messages are not delayed behind the
				// buffer.
				if len(w.ch) == 0 {
					if err := bw.Flush(); err != nil {
						w.fail(err, onError)
						return
					}
				}
			case <-w.stop:
				for {
					select {
					case frame := <-w.ch:
						if !write(frame) {
							return
						}
					default:
						if err := bw.Flush(); err != nil {
							w.fail(err, onError)
							return
						}
						close(w.done)
						return
					}
				}
			}
		}
	}()
	return w
}

func (w *tcpWriter) fail(err error, onError func(error)) {
	w.err = err
	close(w.done)
	if onError != nil {
		onError(err)
	}
}

// failure reports why the writer stopped; call only after done is closed.
func (w *tcpWriter) failure() error {
	if w.err != nil {
		return fmt.Errorf("mpi: tcp write: %w", w.err)
	}
	return ErrClosed
}

// enqueue hands a frame to the drain goroutine. It never blocks on a dead
// writer: once the goroutine has exited, every call — including ones that
// would previously have parked on a full channel — returns the write error.
func (w *tcpWriter) enqueue(frame []byte) error {
	select {
	case <-w.done:
		return w.failure()
	default:
	}
	select {
	case w.ch <- frame:
		return nil
	case <-w.done:
		return w.failure()
	}
}

func (w *tcpWriter) close() {
	close(w.stop)
	<-w.done
	w.conn.Close()
}

// DialTCPWorld performs the full-mesh rendezvous described by cfg and
// returns this rank's transport. It blocks until all 2-way connections are
// established or the deadline expires.
func DialTCPWorld(cfg TCPWorldConfig) (Transport, error) {
	size := len(cfg.Addrs)
	if size <= 0 {
		return nil, fmt.Errorf("mpi: empty address list")
	}
	if err := checkPeer(cfg.Rank, size, "DialTCPWorld"); err != nil {
		return nil, err
	}
	var ln net.Listener
	if size > 1 {
		var err error
		ln, err = net.Listen("tcp", cfg.Addrs[cfg.Rank])
		if err != nil {
			return nil, fmt.Errorf("mpi: rank %d listen %s: %w", cfg.Rank, cfg.Addrs[cfg.Rank], err)
		}
	}
	return dialMesh(cfg, ln)
}

// acceptHandshake validates one inbound connection. A rejected dialer — a
// stale rank presenting a superseded fence, a rank id out of range, garbage
// bytes, or a connection that never completes the handshake — is closed and
// reported as !ok WITHOUT failing the rendezvous: the caller keeps accepting,
// so a stray connection cannot corrupt a live world's formation.
func acceptHandshake(conn net.Conn, cfg TCPWorldConfig, hsTimeout time.Duration) (peer int, ok bool) {
	conn.SetDeadline(time.Now().Add(hsTimeout))
	n := 4
	if cfg.Fence != 0 {
		n = 12
	}
	hs := make([]byte, n)
	if _, err := io.ReadFull(conn, hs); err != nil {
		conn.Close()
		return 0, false
	}
	peer = int(int32(binary.LittleEndian.Uint32(hs[:4])))
	ok = peer > cfg.Rank && peer < len(cfg.Addrs)
	if cfg.Fence != 0 {
		if binary.LittleEndian.Uint64(hs[4:12]) != cfg.Fence {
			ok = false
		}
		ack := byte(0)
		if ok {
			ack = 1
		}
		if _, err := conn.Write([]byte{ack}); err != nil {
			ok = false
		}
	}
	if !ok {
		conn.Close()
		return 0, false
	}
	conn.SetDeadline(time.Time{})
	return peer, true
}

// dialHandshake announces this rank on an outbound connection. fenced
// reports a definitive rejection (the acceptor answered the fenced handshake
// with a reject byte): terminal, no point retrying.
func dialHandshake(conn net.Conn, cfg TCPWorldConfig, end time.Time) (err error, fenced bool) {
	conn.SetDeadline(end)
	if cfg.Fence == 0 {
		var hs [4]byte
		binary.LittleEndian.PutUint32(hs[:], uint32(int32(cfg.Rank)))
		if _, err := conn.Write(hs[:]); err != nil {
			return err, false
		}
		conn.SetDeadline(time.Time{})
		return nil, false
	}
	var hs [12]byte
	binary.LittleEndian.PutUint32(hs[:4], uint32(int32(cfg.Rank)))
	binary.LittleEndian.PutUint64(hs[4:12], cfg.Fence)
	if _, err := conn.Write(hs[:]); err != nil {
		return err, false
	}
	var ack [1]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		return err, false
	}
	if ack[0] != 1 {
		return nil, true
	}
	conn.SetDeadline(time.Time{})
	return nil, false
}

// dialMesh performs the full-mesh rendezvous over an already-bound listener
// (owned by the returned endpoint from here on, including on error).
// DialTCPWorld binds the listener from the address list; DialCoordWorld
// binds it before registering so it can advertise the kernel-chosen port.
func dialMesh(cfg TCPWorldConfig, ln net.Listener) (*tcpEndpoint, error) {
	size := len(cfg.Addrs)
	dialTimeout := cfg.DialTimeout
	if dialTimeout <= 0 {
		dialTimeout = 2 * time.Second
	}
	deadline := cfg.ConnectDeadline
	if deadline <= 0 {
		deadline = 30 * time.Second
	}

	ep := &tcpEndpoint{
		rank:     cfg.Rank,
		size:     size,
		queue:    newMatchQueue(),
		writers:  make([]*tcpWriter, size),
		listener: ln,
	}
	if size == 1 {
		return ep, nil
	}

	type dialed struct {
		peer int
		conn net.Conn
		err  error
	}
	// Exactly size-1 results are always delivered: the accept goroutine
	// reports one slot per successful handshake (rejected connections are
	// closed and NOT counted) and fills every remaining slot when the
	// listener dies, and each dial goroutine reports its own. That fixed
	// count is what lets the error path below drain and close stragglers
	// instead of leaking connections delivered after an early return.
	results := make(chan dialed, size)

	// Accept from higher-ranked peers. The listener deadline makes a rank
	// that never starts a rendezvous error instead of an eternal Accept.
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(time.Now().Add(deadline))
	}
	nAccept := size - 1 - cfg.Rank
	go func() {
		accepted := 0
		for accepted < nAccept {
			conn, err := ln.Accept()
			if err != nil {
				// Listener broken (or closed by the error path); no more
				// connections are coming — report every remaining slot.
				for ; accepted < nAccept; accepted++ {
					results <- dialed{err: fmt.Errorf("mpi: rank %d accept: %w", cfg.Rank, err)}
				}
				return
			}
			peer, ok := acceptHandshake(conn, cfg, dialTimeout)
			if !ok {
				continue
			}
			results <- dialed{peer: peer, conn: conn}
			accepted++
		}
	}()

	// Dial lower-ranked peers, retrying until the deadline to tolerate
	// ranks that start listening at slightly different times. Retries back
	// off exponentially with jitter: a supervised world relaunching after a
	// failure has every rank redialing at once, and a fixed-interval spin
	// would hammer a listener that is slow to come back in lockstep. The
	// jitter stream is seeded per (rank, peer) so the world's retry
	// schedules decorrelate without global RNG state.
	for peer := 0; peer < cfg.Rank; peer++ {
		go func(peer int) {
			var lastErr error
			end := time.Now().Add(deadline)
			sl := backoff.NewSleeper(backoff.Policy{
				Base: 10 * time.Millisecond,
				Max:  2 * time.Second,
				Seed: (uint64(cfg.Rank)<<32|uint64(peer))*0x9e3779b97f4a7c15 | 1,
			})
			for {
				conn, err := net.DialTimeout("tcp", cfg.Addrs[peer], dialTimeout)
				if err == nil {
					var fenced bool
					err, fenced = dialHandshake(conn, cfg, end)
					if err == nil && !fenced {
						results <- dialed{peer: peer, conn: conn}
						return
					}
					conn.Close()
					if fenced {
						results <- dialed{err: fmt.Errorf("mpi: rank %d dial rank %d (%s): %w",
							cfg.Rank, peer, cfg.Addrs[peer], &ErrFenced{Rank: cfg.Rank, Fence: cfg.Fence})}
						return
					}
				}
				lastErr = err
				if !sl.Sleep(end) {
					break
				}
			}
			results <- dialed{err: fmt.Errorf("mpi: rank %d dial rank %d (%s): %w", cfg.Rank, peer, cfg.Addrs[peer], lastErr)}
		}(peer)
	}

	need := size - 1
	for i := 0; i < need; i++ {
		d := <-results
		if d.err != nil {
			ep.Close() // also closes the listener, unblocking the acceptor
			go func(remaining int) {
				for j := 0; j < remaining; j++ {
					if r := <-results; r.conn != nil {
						r.conn.Close()
					}
				}
			}(need - 1 - i)
			return nil, d.err
		}
		if d.conn == nil || ep.writers[d.peer] != nil {
			// Duplicate or bogus slot — treat as a protocol failure rather
			// than silently overwriting an established connection.
			if d.conn != nil {
				d.conn.Close()
			}
			ep.Close()
			go func(remaining int) {
				for j := 0; j < remaining; j++ {
					if r := <-results; r.conn != nil {
						r.conn.Close()
					}
				}
			}(need - 1 - i)
			return nil, fmt.Errorf("mpi: rank %d duplicate rendezvous with rank %d", cfg.Rank, d.peer)
		}
		if tc, ok := d.conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		peer := d.peer
		ep.writers[peer] = newTCPWriter(d.conn, func(err error) {
			ep.peerLost(peer, err)
		})
		ep.wg.Add(1)
		go ep.readLoop(peer, d.conn)
	}
	return ep, nil
}

// peerLost records a terminal peer failure: every pending and future Recv on
// this endpoint that cannot be satisfied from already-delivered messages
// fails with *ErrPeerLost. During an orderly Close the peer's disconnect is
// expected, so it is not recorded.
func (e *tcpEndpoint) peerLost(peer int, cause error) {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return
	}
	e.queue.fail(&ErrPeerLost{Peer: peer, Cause: cause})
}

// readLoop parses frames from one peer connection into the match queue.
// An exit without a preceding goodbye frame while the endpoint is still
// live — connection reset, short read, corrupt or oversized frame — is a
// peer loss and poisons the queue with the recorded cause instead of being
// silently dropped.
func (e *tcpEndpoint) readLoop(peer int, conn net.Conn) {
	defer e.wg.Done()
	br := bufio.NewReaderSize(conn, 1<<16)
	var hdr [tcpHeaderSize]byte
	departed := false
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if departed {
				return // orderly shutdown already recorded
			}
			if err == io.EOF {
				err = fmt.Errorf("connection closed without shutdown handshake: %w", err)
			}
			e.peerLost(peer, err)
			return
		}
		tag := int(int32(binary.LittleEndian.Uint32(hdr[0:4])))
		n := binary.LittleEndian.Uint32(hdr[4:8])
		if tag == goodbyeTag && n == 0 {
			departed = true
			e.queue.depart(peer, &ErrPeerLost{Peer: peer, Cause: errDeparted})
			continue
		}
		if n > maxTCPFrame {
			e.peerLost(peer, fmt.Errorf("frame length %d exceeds limit %d (corrupt stream?)", n, maxTCPFrame))
			return
		}
		if departed {
			e.peerLost(peer, fmt.Errorf("data frame (tag %d) after shutdown handshake", tag))
			return
		}
		var data []byte
		if n > 0 {
			data = make([]byte, n)
			if got, err := io.ReadFull(br, data); err != nil {
				e.peerLost(peer, fmt.Errorf("truncated frame (%d of %d payload bytes): %w", got, n, err))
				return
			}
		}
		if e.queue.push(Message{From: peer, Tag: tag, Data: data}) != nil {
			return
		}
	}
}

// errDeparted is the cause recorded for peers that shut down gracefully.
var errDeparted = fmt.Errorf("peer endpoint closed (finished or shut down)")

func (e *tcpEndpoint) Rank() int { return e.rank }
func (e *tcpEndpoint) Size() int { return e.size }

func (e *tcpEndpoint) Send(to, tag int, data []byte) error {
	if err := checkPeer(to, e.size, "Send"); err != nil {
		return err
	}
	if to == e.rank {
		cp := make([]byte, len(data))
		copy(cp, data)
		return e.queue.push(Message{From: e.rank, Tag: tag, Data: cp})
	}
	e.mu.Lock()
	w := e.writers[to]
	closed := e.closed
	e.mu.Unlock()
	if closed || w == nil {
		return ErrClosed
	}
	frame := make([]byte, tcpHeaderSize+len(data))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(int32(tag)))
	binary.LittleEndian.PutUint32(frame[4:8], uint32(len(data)))
	copy(frame[tcpHeaderSize:], data)
	return w.enqueue(frame)
}

func (e *tcpEndpoint) Recv(from, tag int) (Message, error) {
	return e.RecvTimeout(from, tag, 0)
}

func (e *tcpEndpoint) RecvTimeout(from, tag int, timeout time.Duration) (Message, error) {
	if from != AnySource {
		if err := checkPeer(from, e.size, "Recv"); err != nil {
			return Message{}, err
		}
	}
	return e.queue.pop(from, tag, timeout)
}

// Close shuts the endpoint down in an orderly fashion: a goodbye frame is
// flushed to every peer before the connections close, so surviving ranks
// can tell this departure from a crash.
func (e *tcpEndpoint) Close() error { return e.shutdown(true) }

// Abort closes the endpoint without the goodbye handshake, so peers observe
// an unexplained stream end and fail with ErrPeerLost — the behaviour of a
// crashed process. Fault injection (FaultTransport.Kill) uses it.
func (e *tcpEndpoint) Abort() { e.shutdown(false) }

func (e *tcpEndpoint) shutdown(goodbye bool) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	writers := e.writers
	e.mu.Unlock()
	if goodbye {
		var frame [tcpHeaderSize]byte
		tag := int32(goodbyeTag)
		binary.LittleEndian.PutUint32(frame[0:4], uint32(tag))
		for _, w := range writers {
			if w != nil {
				w.enqueue(frame[:]) // best-effort; dead writers just error
			}
		}
	}
	for _, w := range writers {
		if w != nil {
			w.close()
		}
	}
	if e.listener != nil {
		e.listener.Close()
	}
	e.queue.close()
	e.wg.Wait()
	return nil
}
