// Package mpi implements the message-passing runtime this repository uses in
// place of MPI. It provides the subset of MPI-1 semantics the distributed
// Louvain algorithm needs: tagged point-to-point messages, barriers,
// broadcasts, reductions, exclusive prefix scans, gathers and personalized
// all-to-all exchanges, plus traffic accounting.
//
// Two transports are provided:
//
//   - the in-process transport (NewInprocWorld), where each rank is a
//     goroutine and messages are deep-copied byte slices. Copying is
//     deliberate: it enforces the distributed-memory discipline — ranks can
//     never observe each other's mutations except through messages — so the
//     algorithm code is honest about what would cross a network.
//
//   - the TCP transport (DialTCPWorld), where each rank is an OS process and
//     messages travel over a full mesh of TCP connections with
//     length-prefixed frames. This is the "custom RPC messaging layer" that
//     stands in for cray-mpich in the paper's experiments.
//
// All collectives are built on the point-to-point layer, exactly as a small
// MPI implementation would do, using binomial trees and dissemination
// patterns with O(log p) rounds.
package mpi

import (
	"errors"
	"fmt"
	"os"
	"time"
)

// AnySource can be passed as the source rank of Recv to match a message from
// any sender, mirroring MPI_ANY_SOURCE.
const AnySource = -1

// AnyTag can be passed as the tag of Recv to match any tag, mirroring
// MPI_ANY_TAG.
const AnyTag = -1

// MaxUserTag is the largest tag value available to applications. Tags above
// it are reserved for the collective implementations.
const MaxUserTag = 1<<20 - 1

// ErrClosed is returned by operations on a communicator whose transport has
// been shut down.
var ErrClosed = errors.New("mpi: transport closed")

// ErrPeerLost is the terminal error of a communicator that has lost contact
// with a peer: the connection reset, the stream ended while messages were
// still expected, or the peer sent a malformed frame. Once a transport
// records a peer loss, every pending and future Recv (and therefore every
// collective) on that endpoint fails with it rather than blocking forever —
// messages that had already arrived are still delivered first. Use
// errors.As to recover the peer rank and cause.
type ErrPeerLost struct {
	Peer  int   // rank of the lost peer
	Cause error // underlying I/O or protocol error
}

func (e *ErrPeerLost) Error() string {
	return fmt.Sprintf("mpi: peer rank %d lost: %v", e.Peer, e.Cause)
}

func (e *ErrPeerLost) Unwrap() error { return e.Cause }

// ErrFenced is the terminal error of a rank whose generation token has been
// superseded: a newer incarnation of its world sealed while it was
// partitioned away or stalled. It surfaces in two places — a mesh dial whose
// fenced handshake the acceptor rejected, and (on coordinator-rendezvous
// worlds) every pending and future Recv after the heartbeat session learns
// the token is stale. Either way the rank must exit, not retry: the world it
// belonged to no longer exists, and the fencing is precisely what keeps it
// from corrupting the one that replaced it. Use errors.As to detect it.
type ErrFenced struct {
	Rank  int    // the fenced (stale) rank — this endpoint
	Fence uint64 // the superseded generation token it presented
	Cause error  // coordinator-side detail when fenced via heartbeat; may be nil
}

func (e *ErrFenced) Error() string {
	msg := fmt.Sprintf("mpi: rank %d fenced: generation %d superseded", e.Rank, e.Fence)
	if e.Cause != nil {
		msg += ": " + e.Cause.Error()
	}
	return msg
}

func (e *ErrFenced) Unwrap() error { return e.Cause }

// errTimeout builds the error of a receive that exceeded its deadline. It
// wraps os.ErrDeadlineExceeded so callers can test with errors.Is.
func errTimeout(op string, from, tag int, d time.Duration) error {
	return fmt.Errorf("mpi: %s(from=%d, tag=%d): no matching message within %v: %w",
		op, from, tag, d, os.ErrDeadlineExceeded)
}

// Message is a received point-to-point message.
type Message struct {
	From int    // sending rank
	Tag  int    // application tag
	Data []byte // payload; owned by the receiver
}

// Transport is the byte-level rank-to-rank messaging substrate. Send must be
// asynchronous (never block waiting for the receiver) so that collectives
// built from symmetric send/recv exchanges cannot deadlock. Recv blocks
// until a matching message arrives.
type Transport interface {
	// Rank returns this endpoint's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks in the world.
	Size() int
	// Send enqueues data for delivery to rank `to` with the given tag.
	// The transport takes its own copy; the caller may reuse data.
	Send(to, tag int, data []byte) error
	// Recv blocks until a message matching (from, tag) is available and
	// returns it. from may be AnySource and tag may be AnyTag. Messages
	// from the same sender with the same tag are delivered in send order.
	Recv(from, tag int) (Message, error)
	// RecvTimeout is Recv with a per-call deadline: when no matching
	// message arrives within timeout it returns an error wrapping
	// os.ErrDeadlineExceeded. timeout <= 0 means no deadline (plain Recv).
	RecvTimeout(from, tag int, timeout time.Duration) (Message, error)
	// Close shuts the endpoint down. Blocked and future calls fail with
	// ErrClosed.
	Close() error
}

func checkPeer(rank, size int, op string) error {
	if rank < 0 || rank >= size {
		return fmt.Errorf("mpi: %s: rank %d out of range [0,%d)", op, rank, size)
	}
	return nil
}
