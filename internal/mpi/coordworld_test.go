package mpi

import (
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"distlouvain/internal/coord"
)

func startCoord(t *testing.T, cfg coord.ServerConfig) *coord.Server {
	t.Helper()
	s, err := coord.Serve("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatalf("coord serve: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// dialCoordAll joins size ranks of one epoch concurrently.
func dialCoordAll(t *testing.T, coordAddr, job string, epoch, size int) []Transport {
	t.Helper()
	tps := make([]Transport, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tps[r], errs[r] = DialCoordWorld(CoordWorldConfig{
				Coord: coordAddr, Job: job, Epoch: epoch, Rank: r, Size: size,
				ConnectDeadline: 10 * time.Second, HeartbeatInterval: 25 * time.Millisecond,
			})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d DialCoordWorld: %v", r, err)
		}
	}
	return tps
}

func TestCoordWorldCollectives(t *testing.T) {
	s := startCoord(t, coord.ServerConfig{})
	const size = 4
	tps := dialCoordAll(t, s.Addr(), "j", 1, size)
	defer func() {
		for _, tp := range tps {
			tp.Close()
		}
	}()

	// Every rank bound its own listener on a distinct kernel-chosen port and
	// learned the others' through the coordinator — no -hosts list anywhere.
	var wg sync.WaitGroup
	sums := make([]int64, size)
	errs := make([]error, size)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := NewComm(tps[r])
			sums[r], errs[r] = c.AllreduceInt64(int64(r+1), OpSum)
		}(r)
	}
	wg.Wait()
	for r := 0; r < size; r++ {
		if errs[r] != nil {
			t.Fatalf("rank %d allreduce: %v", r, errs[r])
		}
		if sums[r] != 10 {
			t.Fatalf("rank %d sum = %d, want 10", r, sums[r])
		}
	}
	if g, ok := tps[0].(interface{ Gen() uint64 }); !ok || g.Gen() == 0 {
		t.Fatalf("coord world exposes no generation token (%v)", tps[0])
	}
}

func TestStaleRankFencedTypedNotHung(t *testing.T) {
	// The acceptance scenario: a rank cut off by a partition keeps its old
	// transport while the supervisor relaunches the world at the next epoch.
	// When the healed stale rank next touches the world, it must get a typed
	// *ErrFenced — from a blocked Recv, without any peer traffic — instead
	// of hanging.
	s := startCoord(t, coord.ServerConfig{})
	old := dialCoordAll(t, s.Addr(), "j", 1, 2)
	defer func() {
		for _, tp := range old {
			tp.Close()
		}
	}()

	recvErr := make(chan error, 1)
	go func() {
		_, err := old[0].Recv(1, 7) // nothing will ever send this
		recvErr <- err
	}()
	select {
	case err := <-recvErr:
		t.Fatalf("recv failed before fencing: %v", err)
	case <-time.After(100 * time.Millisecond):
	}

	// Supervisor relaunches: epoch 2 seals a new generation. The stale
	// generation's next heartbeat is fenced and poisons the old transport.
	fresh := dialCoordAll(t, s.Addr(), "j", 2, 2)
	defer func() {
		for _, tp := range fresh {
			tp.Close()
		}
	}()

	select {
	case err := <-recvErr:
		var fe *ErrFenced
		if !errors.As(err, &fe) {
			t.Fatalf("stale rank recv error = %v, want *ErrFenced", err)
		}
		if fe.Rank != 0 {
			t.Fatalf("fenced rank = %d, want 0", fe.Rank)
		}
		var cfe *coord.FencedError
		if !errors.As(err, &cfe) {
			t.Fatalf("fenced error carries no coordinator cause: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stale rank still blocked in Recv after fencing — the hang this PR exists to prevent")
	}

	// The new world is untouched by the stale rank's demise.
	var wg sync.WaitGroup
	for r, tp := range fresh {
		wg.Add(1)
		go func(r int, tp Transport) {
			defer wg.Done()
			if _, err := NewComm(tp).AllreduceInt64(1, OpSum); err != nil {
				t.Errorf("fresh rank %d: %v", r, err)
			}
		}(r, tp)
	}
	wg.Wait()

	// A full re-join attempt at the dead epoch is fenced typed, too.
	_, err := DialCoordWorld(CoordWorldConfig{
		Coord: s.Addr(), Job: "j", Epoch: 1, Rank: 0, Size: 2,
		ConnectDeadline: 5 * time.Second,
	})
	var cfe *coord.FencedError
	if !errors.As(err, &cfe) {
		t.Fatalf("stale-epoch rejoin error = %v, want *coord.FencedError", err)
	}
}

func TestMeshRejectsStaleFenceDialer(t *testing.T) {
	// Data-plane fencing: an acceptor mid-rendezvous refuses a dialer whose
	// token is stale — typed for the dialer, slot-neutral for the acceptor,
	// so the real peer can still complete the world afterwards.
	addrs := freeAddrs(t, 2)
	const gen = 5

	type result struct {
		tp  Transport
		err error
	}
	r0 := make(chan result, 1)
	go func() {
		tp, err := DialTCPWorld(TCPWorldConfig{Rank: 0, Addrs: addrs, Fence: gen, ConnectDeadline: 10 * time.Second})
		r0 <- result{tp, err}
	}()

	// The stale dialer presents generation 4 and must fail fast and typed.
	staleAddrs := []string{addrs[0], freeAddrs(t, 1)[0]}
	_, err := DialTCPWorld(TCPWorldConfig{Rank: 1, Addrs: staleAddrs, Fence: gen - 1, ConnectDeadline: 10 * time.Second})
	var fe *ErrFenced
	if !errors.As(err, &fe) {
		t.Fatalf("stale dialer error = %v, want *ErrFenced", err)
	}
	if fe.Fence != gen-1 {
		t.Fatalf("fenced token = %d, want %d", fe.Fence, gen-1)
	}

	// The live world still forms: the rejection consumed no accept slot.
	tp1, err := DialTCPWorld(TCPWorldConfig{Rank: 1, Addrs: addrs, Fence: gen, ConnectDeadline: 10 * time.Second})
	if err != nil {
		t.Fatalf("real rank 1 after stale rejection: %v", err)
	}
	res := <-r0
	if res.err != nil {
		t.Fatalf("rank 0: %v", res.err)
	}
	if err := res.tp.Send(1, 3, []byte("ok")); err != nil {
		t.Fatalf("send: %v", err)
	}
	if msg, err := tp1.Recv(0, 3); err != nil || string(msg.Data) != "ok" {
		t.Fatalf("recv: %v %q", err, msg.Data)
	}
	res.tp.Close()
	tp1.Close()
}

func TestGarbageDialerDoesNotCorruptRendezvous(t *testing.T) {
	// Legacy (unfenced) worlds get the same accept-loop hardening: a stray
	// connection with a bogus handshake used to consume an accept slot and
	// poison the whole rendezvous; now it is dropped and the world forms.
	addrs := freeAddrs(t, 2)
	type result struct {
		tp  Transport
		err error
	}
	r0 := make(chan result, 1)
	go func() {
		tp, err := DialTCPWorld(TCPWorldConfig{Rank: 0, Addrs: addrs, ConnectDeadline: 10 * time.Second})
		r0 <- result{tp, err}
	}()

	// Garbage: claims to be rank 9 of a 2-world, then hangs up.
	deadline := time.Now().Add(5 * time.Second)
	var garbage net.Conn
	for {
		var err error
		garbage, err = net.DialTimeout("tcp", addrs[0], time.Second)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rank 0 listener never came up: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	var hs [4]byte
	binary.LittleEndian.PutUint32(hs[:], 9)
	garbage.Write(hs[:])
	garbage.Close()

	tp1, err := DialTCPWorld(TCPWorldConfig{Rank: 1, Addrs: addrs, ConnectDeadline: 10 * time.Second})
	if err != nil {
		t.Fatalf("rank 1: %v", err)
	}
	res := <-r0
	if res.err != nil {
		t.Fatalf("rank 0 corrupted by garbage dialer: %v", res.err)
	}
	if err := res.tp.Send(1, 1, []byte("x")); err != nil {
		t.Fatalf("send: %v", err)
	}
	if _, err := tp1.Recv(0, 1); err != nil {
		t.Fatalf("recv: %v", err)
	}
	res.tp.Close()
	tp1.Close()
}

func TestCoordRendezvousFailureNoConnLeak(t *testing.T) {
	// Companion to TestRendezvousFailureNoConnLeak for the coordinator path:
	// when the world never fills, the joiner must give up at its deadline
	// and release its mesh listener — nothing may stay accepting.
	s := startCoord(t, coord.ServerConfig{JoinTimeout: 200 * time.Millisecond})
	var advertised string
	_, err := DialCoordWorld(CoordWorldConfig{
		Coord: s.Addr(), Job: "j", Epoch: 1, Rank: 0, Size: 2,
		Advertise:       "", // default loopback listen; record via Listen below
		ConnectDeadline: 700 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("lone rank of a 2-world built a transport")
	}
	var fe *coord.FencedError
	if errors.As(err, &fe) {
		t.Fatalf("barrier starvation surfaced as fencing: %v", err)
	}

	// Bind-then-leak check: run again on a reserved port so the listener
	// address is known, and verify it is released after the failure.
	advertised = freeAddrs(t, 1)[0]
	_, err = DialCoordWorld(CoordWorldConfig{
		Coord: s.Addr(), Job: "j2", Epoch: 1, Rank: 0, Size: 2,
		Listen:          advertised,
		ConnectDeadline: 700 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("lone rank of a 2-world built a transport")
	}
	leakDeadline := time.Now().Add(3 * time.Second)
	for {
		if _, err := net.DialTimeout("tcp", advertised, 50*time.Millisecond); err != nil {
			return // listener gone
		}
		if time.Now().After(leakDeadline) {
			t.Fatal("mesh listener still accepting after failed coord rendezvous")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestAdvertiseAddr(t *testing.T) {
	bound := &net.TCPAddr{IP: net.ParseIP("127.0.0.1"), Port: 4321}
	cases := []struct {
		spec, want string
		wantErr    bool
	}{
		{"", "127.0.0.1:4321", false},
		{"10.1.2.3", "10.1.2.3:4321", false},
		{"10.1.2.3:0", "10.1.2.3:4321", false},
		{"10.1.2.3:9999", "10.1.2.3:9999", false},
		{"example.test:0", "example.test:4321", false},
		{":0", "", true},
	}
	for _, c := range cases {
		got, err := advertiseAddr(c.spec, bound)
		if c.wantErr {
			if err == nil {
				t.Fatalf("spec %q: no error (got %q)", c.spec, got)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Fatalf("spec %q: got %q err %v, want %q", c.spec, got, err, c.want)
		}
	}
	wild := &net.TCPAddr{IP: net.IPv4zero, Port: 9}
	if _, err := advertiseAddr("", wild); err == nil {
		t.Fatal("wildcard bound address with no advertise spec must error")
	}
}
