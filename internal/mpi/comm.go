package mpi

import (
	"fmt"
	"time"

	"distlouvain/internal/obsv"
)

// Comm is a communicator: a transport endpoint plus collective operations
// and traffic accounting. It corresponds to MPI_COMM_WORLD in the paper's
// code. A Comm is used by a single rank; the point-to-point operations may
// be called concurrently (e.g. from a communication thread), but the
// collectives follow the MPI rule that all ranks invoke them in the same
// order.
type Comm struct {
	t     Transport
	rank  int
	size  int
	stats Stats

	// recvTimeout / collTimeout bound each blocking receive of user Recv
	// calls and of collective internals respectively. Zero (the default)
	// means wait forever, matching MPI semantics; setting them makes a
	// world whose transport cannot detect peer death (e.g. the in-process
	// one, or a network partition that keeps connections open) fail fast
	// instead of hanging.
	recvTimeout time.Duration
	collTimeout time.Duration

	// collSeq numbers collective operations. Because every rank executes
	// the same collective sequence (SPMD), equal sequence numbers identify
	// the same logical operation, which keeps back-to-back collectives of
	// the same kind from stealing each other's messages.
	collSeq uint64

	// tracer receives one span per collective operation. nil (the default)
	// disables tracing at zero cost; obsv methods no-op on a nil receiver.
	tracer *obsv.Tracer
}

// CommOption configures a communicator at construction.
type CommOption func(*Comm)

// WithRecvTimeout bounds every application Recv: if no matching message
// arrives within d, Recv fails with an error wrapping
// os.ErrDeadlineExceeded. d <= 0 disables the bound (the default).
func WithRecvTimeout(d time.Duration) CommOption {
	return func(c *Comm) { c.recvTimeout = d }
}

// WithCollectiveTimeout bounds each internal receive of the collective
// operations (Barrier, Bcast, Allreduce, …): a peer that never sends its
// round message makes the collective fail within d instead of deadlocking
// the world. d <= 0 disables the bound (the default).
func WithCollectiveTimeout(d time.Duration) CommOption {
	return func(c *Comm) { c.collTimeout = d }
}

// WithTracer attaches a span tracer; every collective operation then
// records one obsv span (nested under whatever driver span is open).
func WithTracer(t *obsv.Tracer) CommOption {
	return func(c *Comm) { c.tracer = t }
}

// SetTracer attaches a span tracer after construction — needed when the
// same options build every rank's communicator (mpi.Run) but tracers are
// per rank. Call before the communicator is used, not concurrently with
// operations.
func (c *Comm) SetTracer(t *obsv.Tracer) { c.tracer = t }

// Tracer returns the attached tracer (nil when tracing is off).
func (c *Comm) Tracer() *obsv.Tracer { return c.tracer }

// NewComm wraps a transport endpoint.
func NewComm(t Transport, opts ...CommOption) *Comm {
	c := &Comm{t: t, rank: t.Rank(), size: t.Size()}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Rank returns this communicator's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.size }

// Stats exposes the traffic counters.
func (c *Comm) Stats() *Stats { return &c.stats }

// Close shuts down the underlying transport.
func (c *Comm) Close() error { return c.t.Close() }

// Send transmits data to rank `to` with an application tag in
// [0, MaxUserTag].
func (c *Comm) Send(to, tag int, data []byte) error {
	if tag < 0 || tag > MaxUserTag {
		return fmt.Errorf("mpi: user tag %d out of range [0,%d]", tag, MaxUserTag)
	}
	c.stats.SentMsgs.Add(1)
	c.stats.SentBytes.Add(int64(len(data)))
	return c.t.Send(to, tag, data)
}

// Recv blocks for a message matching (from, tag); from may be AnySource,
// tag may be AnyTag (application tags only). With WithRecvTimeout set, the
// wait is bounded.
func (c *Comm) Recv(from, tag int) (Message, error) {
	msg, err := c.t.RecvTimeout(from, tag, c.recvTimeout)
	if err != nil {
		return msg, err
	}
	c.stats.RecvMsgs.Add(1)
	c.stats.RecvBytes.Add(int64(len(msg.Data)))
	return msg, nil
}

// SendInt64s is a typed convenience around Send.
func (c *Comm) SendInt64s(to, tag int, vs []int64) error {
	return c.Send(to, tag, EncodeInt64s(vs))
}

// RecvInt64s is a typed convenience around Recv.
func (c *Comm) RecvInt64s(from, tag int) ([]int64, error) {
	msg, err := c.Recv(from, tag)
	if err != nil {
		return nil, err
	}
	return DecodeInt64s(msg.Data)
}

// SendFloat64s is a typed convenience around Send.
func (c *Comm) SendFloat64s(to, tag int, vs []float64) error {
	return c.Send(to, tag, EncodeFloat64s(vs))
}

// RecvFloat64s is a typed convenience around Recv.
func (c *Comm) RecvFloat64s(from, tag int) ([]float64, error) {
	msg, err := c.Recv(from, tag)
	if err != nil {
		return nil, err
	}
	return DecodeFloat64s(msg.Data)
}

// collTag derives the reserved tag for the current collective operation.
// The sequence wraps far before colliding with in-flight operations.
func (c *Comm) collTag() int {
	c.collSeq++
	c.stats.CollectiveOps.Add(1)
	return MaxUserTag + 1 + int(c.collSeq%(1<<20))
}

// collSend is Send without user-tag validation, for collective internals.
func (c *Comm) collSend(to, tag int, data []byte) error {
	c.stats.CollMsgs.Add(1)
	c.stats.CollBytes.Add(int64(len(data)))
	return c.t.Send(to, tag, data)
}

func (c *Comm) collRecv(from, tag int) (Message, error) {
	return c.t.RecvTimeout(from, tag, c.collTimeout)
}
