package mpi

import "sync/atomic"

// Stats accumulates traffic counters for one communicator. The paper's §V-A
// profile (34% community communication, 40% allreduce, …) is reproduced from
// these counters, so they are split between point-to-point and collective
// traffic.
type Stats struct {
	SentMsgs      atomic.Int64 // point-to-point messages sent
	SentBytes     atomic.Int64 // point-to-point payload bytes sent
	RecvMsgs      atomic.Int64
	RecvBytes     atomic.Int64
	CollectiveOps atomic.Int64 // collective operations entered
	CollMsgs      atomic.Int64 // messages sent on behalf of collectives
	CollBytes     atomic.Int64
}

// Snapshot is an immutable copy of the counters.
type Snapshot struct {
	SentMsgs, SentBytes int64
	RecvMsgs, RecvBytes int64
	CollectiveOps       int64
	CollMsgs, CollBytes int64
}

// Snapshot returns the current counter values.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		SentMsgs:      s.SentMsgs.Load(),
		SentBytes:     s.SentBytes.Load(),
		RecvMsgs:      s.RecvMsgs.Load(),
		RecvBytes:     s.RecvBytes.Load(),
		CollectiveOps: s.CollectiveOps.Load(),
		CollMsgs:      s.CollMsgs.Load(),
		CollBytes:     s.CollBytes.Load(),
	}
}

// Reset zeroes all counters.
func (s *Stats) Reset() {
	s.SentMsgs.Store(0)
	s.SentBytes.Store(0)
	s.RecvMsgs.Store(0)
	s.RecvBytes.Store(0)
	s.CollectiveOps.Store(0)
	s.CollMsgs.Store(0)
	s.CollBytes.Store(0)
}

// Sub returns the counter deltas a-b, for measuring a region of execution.
func (a Snapshot) Sub(b Snapshot) Snapshot {
	return Snapshot{
		SentMsgs:      a.SentMsgs - b.SentMsgs,
		SentBytes:     a.SentBytes - b.SentBytes,
		RecvMsgs:      a.RecvMsgs - b.RecvMsgs,
		RecvBytes:     a.RecvBytes - b.RecvBytes,
		CollectiveOps: a.CollectiveOps - b.CollectiveOps,
		CollMsgs:      a.CollMsgs - b.CollMsgs,
		CollBytes:     a.CollBytes - b.CollBytes,
	}
}

// Add returns element-wise a+b.
func (a Snapshot) Add(b Snapshot) Snapshot {
	return Snapshot{
		SentMsgs:      a.SentMsgs + b.SentMsgs,
		SentBytes:     a.SentBytes + b.SentBytes,
		RecvMsgs:      a.RecvMsgs + b.RecvMsgs,
		RecvBytes:     a.RecvBytes + b.RecvBytes,
		CollectiveOps: a.CollectiveOps + b.CollectiveOps,
		CollMsgs:      a.CollMsgs + b.CollMsgs,
		CollBytes:     a.CollBytes + b.CollBytes,
	}
}

// TotalBytes returns all payload bytes sent (point-to-point + collective).
func (a Snapshot) TotalBytes() int64 { return a.SentBytes + a.CollBytes }

// Counters flattens the snapshot into named counters, the shape the
// observability registry consumes (obsv.Registry.AttachCounters).
func (a Snapshot) Counters() map[string]int64 {
	return map[string]int64{
		"sent_msgs":      a.SentMsgs,
		"sent_bytes":     a.SentBytes,
		"recv_msgs":      a.RecvMsgs,
		"recv_bytes":     a.RecvBytes,
		"collective_ops": a.CollectiveOps,
		"coll_msgs":      a.CollMsgs,
		"coll_bytes":     a.CollBytes,
	}
}
