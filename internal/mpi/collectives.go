package mpi

import (
	"fmt"

	"distlouvain/internal/obsv"
)

// span opens a collective span on the attached tracer (no-op when tracing
// is off). Spans live on the non-delegating entry points only, so a scalar
// allreduce or AllOK still records exactly one span.
func (c *Comm) span(name string) obsv.SpanScope {
	return c.tracer.Begin(obsv.KindCollective, name)
}

// Op selects the combining operator of a reduction.
type Op int

// Reduction operators.
const (
	OpSum Op = iota
	OpMin
	OpMax
)

func combineFloat64(op Op, a, b float64) float64 {
	switch op {
	case OpSum:
		return a + b
	case OpMin:
		if b < a {
			return b
		}
		return a
	default: // OpMax
		if b > a {
			return b
		}
		return a
	}
}

func combineInt64(op Op, a, b int64) int64 {
	switch op {
	case OpSum:
		return a + b
	case OpMin:
		if b < a {
			return b
		}
		return a
	default: // OpMax
		if b > a {
			return b
		}
		return a
	}
}

// Barrier blocks until every rank has entered it. It uses the dissemination
// algorithm: ceil(log2 p) rounds of one send and one receive each.
func (c *Comm) Barrier() error {
	sp := c.span("barrier")
	defer sp.End()
	tag := c.collTag()
	for k := 1; k < c.size; k <<= 1 {
		to := (c.rank + k) % c.size
		from := (c.rank - k%c.size + c.size) % c.size
		if err := c.collSend(to, tag, nil); err != nil {
			return err
		}
		if _, err := c.collRecv(from, tag); err != nil {
			return err
		}
	}
	return nil
}

// Bcast distributes root's buffer to all ranks along a binomial tree and
// returns it. Non-root ranks pass nil (or anything; it is ignored).
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	if err := checkPeer(root, c.size, "Bcast"); err != nil {
		return nil, err
	}
	sp := c.span("bcast")
	sp.SetBytes(int64(len(data)))
	defer sp.End()
	tag := c.collTag()
	return c.bcast(root, tag, data)
}

func (c *Comm) bcast(root, tag int, data []byte) ([]byte, error) {
	vr := (c.rank - root + c.size) % c.size
	mask := 1
	for mask < c.size {
		if vr&mask != 0 {
			src := (c.rank - mask + c.size) % c.size
			msg, err := c.collRecv(src, tag)
			if err != nil {
				return nil, err
			}
			data = msg.Data
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vr+mask < c.size {
			dst := (c.rank + mask) % c.size
			if err := c.collSend(dst, tag, data); err != nil {
				return nil, err
			}
		}
		mask >>= 1
	}
	return data, nil
}

// reduceBytes runs a binomial-tree reduction of fixed-size vectors to root.
// combine folds the incoming child buffer into acc in place.
func (c *Comm) reduceBytes(root, tag int, acc []byte, combine func(acc, in []byte) error) ([]byte, error) {
	vr := (c.rank - root + c.size) % c.size
	mask := 1
	for mask < c.size {
		if vr&mask == 0 {
			srcVR := vr | mask
			if srcVR < c.size {
				src := (srcVR + root) % c.size
				msg, err := c.collRecv(src, tag)
				if err != nil {
					return nil, err
				}
				if err := combine(acc, msg.Data); err != nil {
					return nil, err
				}
			}
		} else {
			dst := ((vr &^ mask) + root) % c.size
			if err := c.collSend(dst, tag, acc); err != nil {
				return nil, err
			}
			break
		}
		mask <<= 1
	}
	return acc, nil
}

// AllreduceFloat64s reduces vs element-wise across all ranks and returns the
// combined vector at every rank. All ranks must pass vectors of equal
// length. The input is not modified.
func (c *Comm) AllreduceFloat64s(vs []float64, op Op) ([]float64, error) {
	sp := c.span("allreduce")
	sp.SetBytes(int64(8 * len(vs)))
	defer sp.End()
	tag := c.collTag()
	acc := EncodeFloat64s(vs)
	combine := func(acc, in []byte) error {
		inVals, err := DecodeFloat64s(in)
		if err != nil {
			return err
		}
		return foldFloat64s(acc, inVals, op)
	}
	acc, err := c.reduceBytes(0, tag, acc, combine)
	if err != nil {
		return nil, err
	}
	out, err := c.bcast(0, tag, acc)
	if err != nil {
		return nil, err
	}
	return DecodeFloat64s(out)
}

func foldFloat64s(acc []byte, in []float64, op Op) error {
	cur, err := DecodeFloat64s(acc)
	if err != nil {
		return err
	}
	if len(cur) != len(in) {
		return errLenMismatch("AllreduceFloat64s", len(cur), len(in))
	}
	for i := range cur {
		cur[i] = combineFloat64(op, cur[i], in[i])
	}
	copy(acc, EncodeFloat64s(cur))
	return nil
}

// AllreduceInt64s is AllreduceFloat64s for int64 vectors.
func (c *Comm) AllreduceInt64s(vs []int64, op Op) ([]int64, error) {
	sp := c.span("allreduce")
	sp.SetBytes(int64(8 * len(vs)))
	defer sp.End()
	tag := c.collTag()
	acc := EncodeInt64s(vs)
	combine := func(acc, in []byte) error {
		inVals, err := DecodeInt64s(in)
		if err != nil {
			return err
		}
		cur, err := DecodeInt64s(acc)
		if err != nil {
			return err
		}
		if len(cur) != len(inVals) {
			return errLenMismatch("AllreduceInt64s", len(cur), len(inVals))
		}
		for i := range cur {
			cur[i] = combineInt64(op, cur[i], inVals[i])
		}
		copy(acc, EncodeInt64s(cur))
		return nil
	}
	acc, err := c.reduceBytes(0, tag, acc, combine)
	if err != nil {
		return nil, err
	}
	out, err := c.bcast(0, tag, acc)
	if err != nil {
		return nil, err
	}
	return DecodeInt64s(out)
}

// AllreduceFloat64 reduces one scalar.
func (c *Comm) AllreduceFloat64(v float64, op Op) (float64, error) {
	out, err := c.AllreduceFloat64s([]float64{v}, op)
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// AllreduceInt64 reduces one scalar.
func (c *Comm) AllreduceInt64(v int64, op Op) (int64, error) {
	out, err := c.AllreduceInt64s([]int64{v}, op)
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// AllOK is a world-wide error agreement: every rank passes its local error
// (nil for success) and AllOK returns nil only when every rank succeeded. A
// failed rank gets its own error back; the others get an error naming one
// failed rank. Because it is built on an allreduce it is also a barrier —
// no rank returns before every rank has entered — which is exactly the
// fence the checkpoint commit protocol needs: a manifest may only be
// written once all ranks' snapshots have durably landed.
func (c *Comm) AllOK(local error) error {
	flag := int64(-1)
	if local != nil {
		flag = int64(c.rank)
	}
	worst, err := c.AllreduceInt64(flag, OpMax)
	if err != nil {
		return err
	}
	if worst < 0 {
		return nil
	}
	if local != nil {
		return local
	}
	return fmt.Errorf("mpi: rank %d reported failure", worst)
}

// ExscanInt64 returns the exclusive prefix sum of v over ranks: rank r
// receives v_0+…+v_{r-1}; rank 0 receives 0. This is the parallel prefix the
// coarsening step uses to renumber communities globally (Fig. 1, step 3).
func (c *Comm) ExscanInt64(v int64) (int64, error) {
	sp := c.span("exscan")
	sp.SetBytes(8)
	defer sp.End()
	tag := c.collTag()
	acc := v
	var result int64
	for k := 1; k < c.size; k <<= 1 {
		if c.rank+k < c.size {
			if err := c.collSend(c.rank+k, tag, EncodeInt64s([]int64{acc})); err != nil {
				return 0, err
			}
		}
		if c.rank >= k {
			msg, err := c.collRecv(c.rank-k, tag)
			if err != nil {
				return 0, err
			}
			vals, err := DecodeInt64s(msg.Data)
			if err != nil {
				return 0, err
			}
			result += vals[0]
			acc += vals[0]
		}
	}
	return result, nil
}

// AllgatherInt64 collects one int64 from each rank into a vector indexed by
// rank, available at every rank.
func (c *Comm) AllgatherInt64(v int64) ([]int64, error) {
	blocks, err := c.Allgather(EncodeInt64s([]int64{v}))
	if err != nil {
		return nil, err
	}
	out := make([]int64, c.size)
	for r, b := range blocks {
		vals, err := DecodeInt64s(b)
		if err != nil {
			return nil, err
		}
		out[r] = vals[0]
	}
	return out, nil
}

// Allgather collects each rank's buffer at every rank, indexed by rank.
func (c *Comm) Allgather(data []byte) ([][]byte, error) {
	sp := c.span("allgather")
	sp.SetBytes(int64(len(data) * (c.size - 1)))
	defer sp.End()
	tag := c.collTag()
	out := make([][]byte, c.size)
	cp := make([]byte, len(data))
	copy(cp, data)
	out[c.rank] = cp
	for r := 0; r < c.size; r++ {
		if r == c.rank {
			continue
		}
		if err := c.collSend(r, tag, data); err != nil {
			return nil, err
		}
	}
	for i := 0; i < c.size-1; i++ {
		msg, err := c.collRecv(AnySource, tag)
		if err != nil {
			return nil, err
		}
		out[msg.From] = msg.Data
	}
	return out, nil
}

// Gatherv collects every rank's buffer at root. Root receives a per-rank
// slice; other ranks receive nil.
func (c *Comm) Gatherv(root int, data []byte) ([][]byte, error) {
	if err := checkPeer(root, c.size, "Gatherv"); err != nil {
		return nil, err
	}
	sp := c.span("gatherv")
	sp.SetBytes(int64(len(data)))
	defer sp.End()
	tag := c.collTag()
	if c.rank != root {
		return nil, c.collSend(root, tag, data)
	}
	out := make([][]byte, c.size)
	cp := make([]byte, len(data))
	copy(cp, data)
	out[root] = cp
	for i := 0; i < c.size-1; i++ {
		msg, err := c.collRecv(AnySource, tag)
		if err != nil {
			return nil, err
		}
		out[msg.From] = msg.Data
	}
	return out, nil
}

// Alltoall performs a personalized exchange: rank r sends send[q] to rank q
// and returns recv where recv[q] is the buffer rank q addressed to r. Empty
// (including nil) buffers are exchanged too, so every rank always knows the
// exchange completed. This is the workhorse of the ghost-vertex and
// community-update protocols (MPI_Alltoallv in the paper's implementation).
func (c *Comm) Alltoall(send [][]byte) ([][]byte, error) {
	op, err := c.IalltoallStart(send)
	if err != nil {
		return nil, err
	}
	return op.Wait()
}

// AlltoallOp is a started personalized exchange whose receives are still
// pending. Start issues every send (the transports' Send enqueues without
// blocking on the peer, Isend-style); Wait drains the replies. Between the
// two the caller is free to compute — that window is the communication/
// computation overlap of the per-iteration delta push.
type AlltoallOp struct {
	c    *Comm
	sp   obsv.SpanScope
	tag  int
	recv [][]byte
	done bool
}

// IalltoallStart begins an Alltoall: all p−1 outgoing buffers are handed to
// the transport (which copies them before returning, so the caller may reuse
// the storage) and the self-addressed buffer is copied locally. The exchange
// is not complete until Wait returns. Collectives on the same communicator
// must not be issued between Start and Wait — the SPMD collective order
// includes this operation at its Start point.
func (c *Comm) IalltoallStart(send [][]byte) (*AlltoallOp, error) {
	if len(send) != c.size {
		return nil, errLenMismatch("IalltoallStart", c.size, len(send))
	}
	sp := c.span("alltoall")
	for r, b := range send {
		if r != c.rank {
			sp.SetBytes(int64(len(b)))
		}
	}
	op := &AlltoallOp{c: c, sp: sp, tag: c.collTag(), recv: make([][]byte, c.size)}
	cp := make([]byte, len(send[c.rank]))
	copy(cp, send[c.rank])
	op.recv[c.rank] = cp
	for r := 0; r < c.size; r++ {
		if r == c.rank {
			continue
		}
		if err := c.collSend(r, op.tag, send[r]); err != nil {
			op.sp.End()
			op.done = true
			return nil, err
		}
	}
	return op, nil
}

// Wait blocks until every peer's buffer has arrived and returns the per-rank
// receive slice (recv[q] is what rank q sent here). Call exactly once.
func (op *AlltoallOp) Wait() ([][]byte, error) {
	if op.done {
		return nil, fmt.Errorf("mpi: AlltoallOp.Wait called twice")
	}
	op.done = true
	defer op.sp.End()
	for i := 0; i < op.c.size-1; i++ {
		msg, err := op.c.collRecv(AnySource, op.tag)
		if err != nil {
			return nil, err
		}
		op.recv[msg.From] = msg.Data
	}
	return op.recv, nil
}

// NeighborAlltoall is the sparse counterpart of Alltoall, modelled on the
// MPI-3 neighborhood collectives the paper's §VI proposes adopting: each
// rank exchanges buffers only with a fixed peer set instead of all p ranks.
// peers must be symmetric across the world (if q lists r, r lists q) and
// every rank must call the operation (possibly with an empty peer list) —
// the usual SPMD rule. send[i] goes to peers[i]; recv[i] arrives from
// peers[i].
//
// With g ghost-sharing neighbours per rank this costs O(g) messages per
// rank instead of O(p), which is the entire point on large worlds where
// the 1-D decomposition keeps most rank pairs unrelated.
func (c *Comm) NeighborAlltoall(peers []int, send [][]byte) ([][]byte, error) {
	if len(send) != len(peers) {
		return nil, errLenMismatch("NeighborAlltoall", len(peers), len(send))
	}
	sp := c.span("neighbor-alltoall")
	for _, b := range send {
		sp.SetBytes(int64(len(b)))
	}
	defer sp.End()
	tag := c.collTag()
	recv := make([][]byte, len(peers))
	index := make(map[int]int, len(peers))
	for i, q := range peers {
		if err := checkPeer(q, c.size, "NeighborAlltoall"); err != nil {
			return nil, err
		}
		if q == c.rank {
			return nil, fmt.Errorf("mpi: NeighborAlltoall: rank %d listed itself as a peer", q)
		}
		if _, dup := index[q]; dup {
			return nil, fmt.Errorf("mpi: NeighborAlltoall: duplicate peer %d", q)
		}
		index[q] = i
	}
	for i, q := range peers {
		if err := c.collSend(q, tag, send[i]); err != nil {
			return nil, err
		}
	}
	for range peers {
		msg, err := c.collRecv(AnySource, tag)
		if err != nil {
			return nil, err
		}
		i, ok := index[msg.From]
		if !ok {
			return nil, fmt.Errorf("mpi: NeighborAlltoall: message from non-peer rank %d (asymmetric peer lists?)", msg.From)
		}
		recv[i] = msg.Data
	}
	return recv, nil
}

type lenMismatchError struct {
	op         string
	want, have int
}

func (e *lenMismatchError) Error() string {
	return "mpi: " + e.op + ": length mismatch"
}

func errLenMismatch(op string, want, have int) error {
	return &lenMismatchError{op: op, want: want, have: have}
}
