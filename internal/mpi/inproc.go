package mpi

import (
	"fmt"
	"time"
)

// InprocWorld is a set of in-process transport endpoints, one per rank.
// Ranks are expected to run on separate goroutines; the endpoints are safe
// for that use.
type InprocWorld struct {
	size   int
	queues []*matchQueue
	eps    []*inprocEndpoint
}

// NewInprocWorld creates a world with size ranks.
func NewInprocWorld(size int) (*InprocWorld, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mpi: world size %d must be positive", size)
	}
	w := &InprocWorld{size: size}
	w.queues = make([]*matchQueue, size)
	w.eps = make([]*inprocEndpoint, size)
	for i := 0; i < size; i++ {
		w.queues[i] = newMatchQueue()
	}
	for i := 0; i < size; i++ {
		w.eps[i] = &inprocEndpoint{world: w, rank: i}
	}
	return w, nil
}

// Endpoint returns the transport for the given rank.
func (w *InprocWorld) Endpoint(rank int) Transport { return w.eps[rank] }

// Close shuts down every endpoint.
func (w *InprocWorld) Close() {
	for _, q := range w.queues {
		q.close()
	}
}

type inprocEndpoint struct {
	world *InprocWorld
	rank  int
}

func (e *inprocEndpoint) Rank() int { return e.rank }
func (e *inprocEndpoint) Size() int { return e.world.size }

func (e *inprocEndpoint) Send(to, tag int, data []byte) error {
	if err := checkPeer(to, e.world.size, "Send"); err != nil {
		return err
	}
	// Deep copy: the receiving rank must never alias the sender's memory.
	// This is what makes the in-process world an honest stand-in for a
	// distributed-memory machine.
	var cp []byte
	if len(data) > 0 {
		cp = make([]byte, len(data))
		copy(cp, data)
	}
	return e.world.queues[to].push(Message{From: e.rank, Tag: tag, Data: cp})
}

func (e *inprocEndpoint) Recv(from, tag int) (Message, error) {
	return e.RecvTimeout(from, tag, 0)
}

func (e *inprocEndpoint) RecvTimeout(from, tag int, timeout time.Duration) (Message, error) {
	if from != AnySource {
		if err := checkPeer(from, e.world.size, "Recv"); err != nil {
			return Message{}, err
		}
	}
	return e.world.queues[e.rank].pop(from, tag, timeout)
}

func (e *inprocEndpoint) Close() error {
	e.world.queues[e.rank].close()
	return nil
}
