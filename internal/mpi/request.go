package mpi

import "sync"

// Request is the handle of a nonblocking operation, mirroring MPI_Request.
// The paper's implementation posts nonblocking sends/receives around its
// computation; the same overlap structure is expressible here, although on
// this runtime Send is already asynchronous and the main value of Irecv is
// posting a receive before the matching send exists.
type Request struct {
	once sync.Once
	done chan struct{}
	msg  Message
	err  error
}

func newRequest() *Request {
	return &Request{done: make(chan struct{})}
}

// Wait blocks until the operation completes and returns its message (zero
// Message for sends) and error, mirroring MPI_Wait.
func (r *Request) Wait() (Message, error) {
	<-r.done
	return r.msg, r.err
}

// Test reports whether the operation has completed without blocking,
// mirroring MPI_Test. When it returns true, the message and error carry the
// result.
func (r *Request) Test() (Message, error, bool) {
	select {
	case <-r.done:
		return r.msg, r.err, true
	default:
		return Message{}, nil, false
	}
}

func (r *Request) complete(msg Message, err error) {
	r.once.Do(func() {
		r.msg = msg
		r.err = err
		close(r.done)
	})
}

// Isend starts a nonblocking send and returns its request. On this runtime
// the underlying Send never blocks on the receiver, so the request
// completes immediately; the call exists so ported MPI code keeps its
// shape (and so the TCP transport's enqueue errors surface through Wait).
func (c *Comm) Isend(to, tag int, data []byte) *Request {
	r := newRequest()
	err := c.Send(to, tag, data)
	r.complete(Message{}, err)
	return r
}

// Irecv posts a nonblocking receive for (from, tag) and returns its
// request. The matching message is claimed by a dedicated goroutine, so a
// later blocking Recv on a different (source, tag) pair cannot steal it.
// As with MPI, posting several Irecvs for overlapping patterns makes the
// match order between them unspecified.
func (c *Comm) Irecv(from, tag int) *Request {
	r := newRequest()
	go func() {
		msg, err := c.Recv(from, tag)
		r.complete(msg, err)
	}()
	return r
}

// Waitall waits for every request and returns the first error encountered,
// mirroring MPI_Waitall.
func Waitall(reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
