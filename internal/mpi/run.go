package mpi

import (
	"fmt"
	"sync"
)

// Run executes body as an SPMD program on size in-process ranks, one
// goroutine per rank, each with its own communicator. It returns the first
// non-nil error from any rank (closing the world so the remaining ranks
// unblock) or nil when every rank succeeds.
//
// This is the single-binary analogue of "mpirun -np size": tests, examples
// and benchmarks drive the distributed algorithm through it. opts (e.g.
// WithRecvTimeout, WithCollectiveTimeout) apply to every rank's
// communicator.
func Run(size int, body func(c *Comm) error, opts ...CommOption) error {
	world, err := NewInprocWorld(size)
	if err != nil {
		return err
	}
	defer world.Close()

	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[r] = fmt.Errorf("mpi: rank %d panicked: %v", r, p)
					world.Close() // unblock peers stuck in Recv
				}
			}()
			c := NewComm(world.Endpoint(r), opts...)
			if err := body(c); err != nil {
				errs[r] = err
				world.Close()
			}
		}(r)
	}
	wg.Wait()

	for r, e := range errs {
		if e != nil {
			return fmt.Errorf("rank %d: %w", r, e)
		}
	}
	return nil
}

// RunCollect is Run for programs that produce a per-rank result. results[r]
// holds rank r's value when the error is nil.
func RunCollect[T any](size int, body func(c *Comm) (T, error), opts ...CommOption) ([]T, error) {
	results := make([]T, size)
	err := Run(size, func(c *Comm) error {
		v, err := body(c)
		if err != nil {
			return err
		}
		results[c.Rank()] = v
		return nil
	}, opts...)
	if err != nil {
		return nil, err
	}
	return results, nil
}
