package mpi

import (
	"fmt"
	"net"
	"time"

	"distlouvain/internal/coord"
)

// CoordWorldConfig describes a rank of a coordinator-rendezvous world: no
// hand-written address list — the rank binds a listener, advertises it to
// the coordinator under (Job, Epoch), and receives the sealed membership
// plus the generation fencing token.
type CoordWorldConfig struct {
	Coord string // coordinator address
	Job   string // job id shared by every rank of the world
	Epoch int    // incarnation number; the supervisor bumps it per relaunch
	Rank  int
	Size  int
	// Listen is the mesh listen address ("host:port", port usually 0).
	// Empty selects "127.0.0.1:0" — fine for single-machine worlds;
	// multi-host ranks must listen on a routable interface.
	Listen string
	// Advertise overrides the address published to peers: empty publishes
	// the bound listener address; "host" or "host:0" publishes that host
	// with the kernel-chosen port (for ranks behind NAT or a chaos proxy);
	// "host:port" is published verbatim.
	Advertise string
	// DialTimeout bounds each connection attempt (coordinator and mesh);
	// ConnectDeadline bounds the whole rendezvous. Zero selects 2s / 30s.
	DialTimeout     time.Duration
	ConnectDeadline time.Duration
	// HeartbeatInterval paces the lease heartbeats; zero selects a third of
	// the coordinator's lease TTL.
	HeartbeatInterval time.Duration
}

// coordWorld is a tcpEndpoint plus the heartbeat session holding its lease.
// When the coordinator fences the generation, the session poisons the match
// queue with *ErrFenced: every rank goroutine blocked in a Recv — and hence
// every collective — fails typed instead of hanging, which is what lets a
// stale rank returning from a healed partition die loudly and promptly.
type coordWorld struct {
	*tcpEndpoint
	session *coord.Session
	gen     uint64
}

// Gen returns the generation token this world was sealed with.
func (w *coordWorld) Gen() uint64 { return w.gen }

func (w *coordWorld) Close() error {
	w.session.Close()
	return w.tcpEndpoint.Close()
}

// Abort closes without the goodbye handshake (crash semantics), still
// releasing the heartbeat session.
func (w *coordWorld) Abort() {
	w.session.Close()
	w.tcpEndpoint.Abort()
}

// DialCoordWorld joins a coordinator-rendezvous world and establishes the
// fenced full mesh. The returned Transport fails every blocked operation
// with *ErrFenced if the coordinator later supersedes this generation. A
// rank joining with an already-superseded epoch gets *coord.FencedError
// immediately instead of a transport.
func DialCoordWorld(cfg CoordWorldConfig) (Transport, error) {
	if err := checkPeer(cfg.Rank, cfg.Size, "DialCoordWorld"); err != nil {
		return nil, err
	}
	listen := cfg.Listen
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("mpi: rank %d listen %s: %w", cfg.Rank, listen, err)
	}
	adv, err := advertiseAddr(cfg.Advertise, ln.Addr().(*net.TCPAddr))
	if err != nil {
		ln.Close()
		return nil, err
	}
	deadline := cfg.ConnectDeadline
	if deadline <= 0 {
		deadline = 30 * time.Second
	}
	world, err := coord.Join(coord.JoinConfig{
		Coord: cfg.Coord, Job: cfg.Job, Epoch: cfg.Epoch,
		Rank: cfg.Rank, Size: cfg.Size, Addr: adv,
		DialTimeout: cfg.DialTimeout, Deadline: deadline,
	})
	if err != nil {
		ln.Close()
		return nil, err
	}
	ep, err := dialMesh(TCPWorldConfig{
		Rank:            cfg.Rank,
		Addrs:           world.Addrs,
		DialTimeout:     cfg.DialTimeout,
		ConnectDeadline: deadline,
		Fence:           world.Gen,
	}, ln)
	if err != nil {
		return nil, err
	}
	hb := cfg.HeartbeatInterval
	if hb <= 0 {
		hb = world.LeaseTTL / 3
		if hb <= 0 {
			hb = time.Second
		}
	}
	sess := coord.StartSession(coord.SessionConfig{
		Coord: cfg.Coord, Job: cfg.Job, Gen: world.Gen, Rank: cfg.Rank,
		Interval:    hb,
		DialTimeout: cfg.DialTimeout,
		OnFenced: func(cause error) {
			ep.queue.fail(&ErrFenced{Rank: cfg.Rank, Fence: world.Gen, Cause: cause})
		},
	})
	return &coordWorld{tcpEndpoint: ep, session: sess, gen: world.Gen}, nil
}

// advertiseAddr resolves the address published to the coordinator from the
// Advertise spec and the bound listener address.
func advertiseAddr(spec string, bound *net.TCPAddr) (string, error) {
	if spec == "" {
		if bound.IP.IsUnspecified() {
			return "", fmt.Errorf("mpi: wildcard listen address %s is not advertisable; set Advertise", bound)
		}
		return bound.String(), nil
	}
	host := spec
	if h, p, err := net.SplitHostPort(spec); err == nil {
		if p != "" && p != "0" {
			return spec, nil // fully specified
		}
		host = h
	}
	if host == "" {
		return "", fmt.Errorf("mpi: advertise spec %q has no host", spec)
	}
	return net.JoinHostPort(host, fmt.Sprint(bound.Port)), nil
}
