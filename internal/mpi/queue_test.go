package mpi

import (
	"encoding/binary"
	"errors"
	"net"
	"os"
	"strings"
	"testing"
	"time"
)

func TestQueueFailWakesBlockedPop(t *testing.T) {
	q := newMatchQueue()
	errc := make(chan error, 1)
	go func() {
		_, err := q.pop(0, 1, 0)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the pop park
	want := &ErrPeerLost{Peer: 0, Cause: errors.New("boom")}
	q.fail(want)
	select {
	case err := <-errc:
		var pl *ErrPeerLost
		if !errors.As(err, &pl) || pl.Peer != 0 {
			t.Fatalf("pop returned %v, want %v", err, want)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pop still blocked after fail")
	}
}

func TestQueuePendingDeliveredBeforeError(t *testing.T) {
	q := newMatchQueue()
	if err := q.push(Message{From: 2, Tag: 7, Data: []byte("survivor")}); err != nil {
		t.Fatal(err)
	}
	q.fail(&ErrPeerLost{Peer: 2, Cause: errors.New("died after sending")})
	// The message that made it in before the failure is still delivered...
	msg, err := q.pop(2, 7, 0)
	if err != nil {
		t.Fatalf("pending message lost to failure: %v", err)
	}
	if string(msg.Data) != "survivor" {
		t.Fatalf("payload = %q", msg.Data)
	}
	// ...and only then does the terminal error surface.
	if _, err := q.pop(2, 7, 10*time.Millisecond); err == nil {
		t.Fatal("expected terminal error after drain")
	} else {
		var pl *ErrPeerLost
		if !errors.As(err, &pl) {
			t.Fatalf("expected ErrPeerLost, got %v", err)
		}
	}
}

func TestQueueFirstFailureWins(t *testing.T) {
	q := newMatchQueue()
	q.fail(&ErrPeerLost{Peer: 1, Cause: errors.New("first")})
	q.fail(&ErrPeerLost{Peer: 2, Cause: errors.New("second")})
	_, err := q.pop(AnySource, AnyTag, 0)
	var pl *ErrPeerLost
	if !errors.As(err, &pl) || pl.Peer != 1 {
		t.Fatalf("err = %v, want first failure (peer 1)", err)
	}
}

func TestQueuePopTimeout(t *testing.T) {
	q := newMatchQueue()
	start := time.Now()
	_, err := q.pop(0, 1, 50*time.Millisecond)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want deadline", err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond || elapsed > 2*time.Second {
		t.Fatalf("timeout fired after %v", elapsed)
	}
}

func TestQueueDepartFailsOnlyThatPeer(t *testing.T) {
	q := newMatchQueue()
	q.depart(3, &ErrPeerLost{Peer: 3, Cause: errDeparted})
	// Receives targeting the departed peer fail...
	var pl *ErrPeerLost
	if _, err := q.pop(3, 0, 0); !errors.As(err, &pl) || pl.Peer != 3 {
		t.Fatalf("pop(departed) = %v, want ErrPeerLost{3}", err)
	}
	// ...but traffic from the living keeps flowing.
	if err := q.push(Message{From: 1, Tag: 0, Data: nil}); err != nil {
		t.Fatal(err)
	}
	if msg, err := q.pop(1, 0, 0); err != nil || msg.From != 1 {
		t.Fatalf("pop(live peer) = %v, %v", msg, err)
	}
}

// fakeWireEndpoint builds a tcpEndpoint whose single peer connection is one
// end of a net.Pipe, so tests can speak the raw frame protocol to it.
func fakeWireEndpoint() (*tcpEndpoint, net.Conn) {
	client, server := net.Pipe()
	ep := &tcpEndpoint{rank: 1, size: 2, queue: newMatchQueue(), writers: make([]*tcpWriter, 2)}
	ep.wg.Add(1)
	go ep.readLoop(0, server)
	return ep, client
}

func wireFrame(tag int32, payload []byte) []byte {
	frame := make([]byte, tcpHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(tag))
	binary.LittleEndian.PutUint32(frame[4:8], uint32(len(payload)))
	copy(frame[tcpHeaderSize:], payload)
	return frame
}

func TestTCPOversizedFramePoisons(t *testing.T) {
	ep, wire := fakeWireEndpoint()
	defer ep.Close()
	defer wire.Close()
	bad := make([]byte, tcpHeaderSize)
	binary.LittleEndian.PutUint32(bad[0:4], 0)
	binary.LittleEndian.PutUint32(bad[4:8], uint32(maxTCPFrame+1))
	go wire.Write(bad)
	_, err := ep.RecvTimeout(0, 0, 2*time.Second)
	var pl *ErrPeerLost
	if !errors.As(err, &pl) || pl.Peer != 0 {
		t.Fatalf("err = %v, want ErrPeerLost{0}", err)
	}
	if msg := err.Error(); !strings.Contains(msg, "exceeds limit") {
		t.Fatalf("cause dropped from error: %v", msg)
	}
}

func TestTCPTruncatedFramePoisons(t *testing.T) {
	ep, wire := fakeWireEndpoint()
	defer ep.Close()
	go func() {
		frame := wireFrame(5, []byte("full payload"))
		wire.Write(frame[:len(frame)-4]) // cut the payload short
		wire.Close()
	}()
	_, err := ep.RecvTimeout(0, 5, 2*time.Second)
	var pl *ErrPeerLost
	if !errors.As(err, &pl) || pl.Peer != 0 {
		t.Fatalf("err = %v, want ErrPeerLost{0}", err)
	}
	if msg := err.Error(); !strings.Contains(msg, "truncated frame") {
		t.Fatalf("cause dropped from error: %v", msg)
	}
}

func TestTCPEOFWithoutGoodbyePoisons(t *testing.T) {
	ep, wire := fakeWireEndpoint()
	defer ep.Close()
	go func() {
		wire.Write(wireFrame(1, []byte("last words")))
		wire.Close() // crash: no goodbye frame
	}()
	// The message sent before the crash is still delivered...
	msg, err := ep.RecvTimeout(0, 1, 2*time.Second)
	if err != nil || string(msg.Data) != "last words" {
		t.Fatalf("pre-crash message lost: %v, %v", msg, err)
	}
	// ...then the unexplained EOF is a peer loss.
	_, err = ep.RecvTimeout(0, 1, 2*time.Second)
	var pl *ErrPeerLost
	if !errors.As(err, &pl) || pl.Peer != 0 {
		t.Fatalf("err = %v, want ErrPeerLost{0}", err)
	}
}

func TestTCPGoodbyeIsGracefulDeparture(t *testing.T) {
	ep, wire := fakeWireEndpoint()
	defer ep.Close()
	go func() {
		wire.Write(wireFrame(1, []byte("final message")))
		wire.Write(wireFrame(goodbyeTag, nil))
		wire.Close()
	}()
	msg, err := ep.RecvTimeout(0, 1, 2*time.Second)
	if err != nil || string(msg.Data) != "final message" {
		t.Fatalf("final message lost: %v, %v", msg, err)
	}
	// A further receive from the departed peer fails with ErrPeerLost...
	_, err = ep.RecvTimeout(0, 1, 2*time.Second)
	var pl *ErrPeerLost
	if !errors.As(err, &pl) || pl.Peer != 0 {
		t.Fatalf("err = %v, want departed ErrPeerLost{0}", err)
	}
	// ...but the endpoint is not poisoned: a self-send still flows.
	if err := ep.Send(1, 9, []byte("alive")); err != nil {
		t.Fatalf("endpoint poisoned by graceful departure: %v", err)
	}
	if msg, err := ep.RecvTimeout(1, 9, 2*time.Second); err != nil || string(msg.Data) != "alive" {
		t.Fatalf("self traffic broken after departure: %v, %v", msg, err)
	}
}

// TestWriterEnqueueFailsFastAfterDeath floods a writer whose connection is
// already dead with more frames than its channel holds: every enqueue must
// return the write error instead of blocking once the buffer fills (the
// original tcp.go:92 hang).
func TestWriterEnqueueFailsFastAfterDeath(t *testing.T) {
	client, server := net.Pipe()
	server.Close() // writes fail immediately
	w := newTCPWriter(client, nil)
	defer client.Close()

	frame := wireFrame(0, []byte("doomed"))
	done := make(chan struct{})
	go func() {
		defer close(done)
		sawError := false
		for i := 0; i < 4096; i++ { // 4x the channel capacity
			if err := w.enqueue(frame); err != nil {
				sawError = true
			}
		}
		if !sawError {
			t.Error("no enqueue returned an error on a dead connection")
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("enqueue blocked on dead writer")
	}
}
