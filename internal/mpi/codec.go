package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The codec helpers serialize the numeric slices the Louvain protocol
// exchanges. Everything is little-endian and fixed-width, like the binary
// graph format, so a TCP world can mix machines without byte-order trouble.

// AppendUint64 appends v to buf.
func AppendUint64(buf []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(buf, v)
}

// AppendInt64 appends v to buf.
func AppendInt64(buf []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(buf, uint64(v))
}

// AppendFloat64 appends v to buf.
func AppendFloat64(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

// AppendInt64s appends a bare (no length prefix) int64 vector to buf.
func AppendInt64s(buf []byte, vs []int64) []byte {
	for _, v := range vs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	return buf
}

// AppendFloat64s appends a bare float64 vector to buf.
func AppendFloat64s(buf []byte, vs []float64) []byte {
	for _, v := range vs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// Decoder reads fixed-width values from a byte slice produced by the Append
// helpers.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder wraps buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Remaining reports the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) need(n int) error {
	if d.off+n > len(d.buf) {
		return fmt.Errorf("mpi: decode past end of %d-byte buffer (offset %d, need %d)", len(d.buf), d.off, n)
	}
	return nil
}

// Uint64 decodes the next value.
func (d *Decoder) Uint64() (uint64, error) {
	if err := d.need(8); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

// Int64 decodes the next value.
func (d *Decoder) Int64() (int64, error) {
	v, err := d.Uint64()
	return int64(v), err
}

// Float64 decodes the next value.
func (d *Decoder) Float64() (float64, error) {
	v, err := d.Uint64()
	return math.Float64frombits(v), err
}

// Int64s decodes n values.
func (d *Decoder) Int64s(n int) ([]int64, error) {
	if err := d.need(8 * n); err != nil {
		return nil, err
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(d.buf[d.off:]))
		d.off += 8
	}
	return out, nil
}

// Float64s decodes n values.
func (d *Decoder) Float64s(n int) ([]float64, error) {
	if err := d.need(8 * n); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
		d.off += 8
	}
	return out, nil
}

// Arena is a pool of reusable encode buffers for the per-iteration message
// paths (ghost exchange, community deltas, info requests). Grab hands out a
// zero-length buffer backed by previously grown storage; Reset recycles
// every buffer at once. After a few iterations the buffers reach their
// steady-state capacities and the encode paths stop allocating entirely.
//
// Reusing a buffer that was passed to a collective is safe once the call
// has returned: Transport.Send contractually takes its own copy of the
// payload (both the in-process and the TCP transport copy into their frame
// before returning), so the arena's buffers never escape into the
// transport. That contract is what lets the encode path go "zero-copy" —
// the only copy left is the transport's own framing copy.
//
// An Arena is not safe for concurrent use; keep one per rank (the encode
// loops are single-threaded driver code).
type Arena struct {
	bufs [][]byte
	next int
}

// Reset makes every grabbed buffer available again. Buffers handed out
// before Reset must not be written afterwards — their storage will be
// reissued.
func (a *Arena) Reset() { a.next = 0 }

// Grab returns a pointer to a zero-length buffer slot. Append through the
// pointer (*bp = AppendInt64(*bp, v)) so capacity growth is retained for
// the next cycle.
func (a *Arena) Grab() *[]byte {
	if a.next == len(a.bufs) {
		a.bufs = append(a.bufs, nil)
	}
	bp := &a.bufs[a.next]
	a.next++
	*bp = (*bp)[:0]
	return bp
}

// EncodeInt64s serializes vs into a fresh buffer.
func EncodeInt64s(vs []int64) []byte {
	return AppendInt64s(make([]byte, 0, 8*len(vs)), vs)
}

// DecodeInt64s deserializes a buffer holding only int64s.
func DecodeInt64s(buf []byte) ([]int64, error) {
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("mpi: int64 buffer length %d not a multiple of 8", len(buf))
	}
	return NewDecoder(buf).Int64s(len(buf) / 8)
}

// EncodeFloat64s serializes vs into a fresh buffer.
func EncodeFloat64s(vs []float64) []byte {
	return AppendFloat64s(make([]byte, 0, 8*len(vs)), vs)
}

// DecodeFloat64s deserializes a buffer holding only float64s.
func DecodeFloat64s(buf []byte) ([]float64, error) {
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("mpi: float64 buffer length %d not a multiple of 8", len(buf))
	}
	return NewDecoder(buf).Float64s(len(buf) / 8)
}
