package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The codec helpers serialize the numeric slices the Louvain protocol
// exchanges. The v1 helpers are little-endian and fixed-width, like the
// binary graph format, so a TCP world can mix machines without byte-order
// trouble. The v2 helpers add LEB128 varints with zigzag signing for IDs and
// counts — vertex and community IDs are small relative to 8 bytes, and the
// protocols' canonically sorted ID streams delta-encode into 1–2 byte gaps.
// Float weights stay fixed64 under both versions: varints cannot shorten
// them and bit-exactness is non-negotiable.

// Wire format versions a world can negotiate. Every frame-producing protocol
// step encodes according to the version all ranks agreed on, so a mixed
// deployment degrades to the highest version every rank supports.
const (
	// WireV1 is the original fixed-width little-endian layout.
	WireV1 = 1
	// WireV2 packs IDs and counts as zigzag+LEB128 varints and sorted ID
	// streams as delta-encoded varint gaps; floats remain fixed64.
	WireV2 = 2
)

// AppendUint64 appends v to buf.
func AppendUint64(buf []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(buf, v)
}

// AppendInt64 appends v to buf.
func AppendInt64(buf []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(buf, uint64(v))
}

// AppendFloat64 appends v to buf.
func AppendFloat64(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

// AppendInt64s appends a bare (no length prefix) int64 vector to buf.
func AppendInt64s(buf []byte, vs []int64) []byte {
	for _, v := range vs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	return buf
}

// AppendFloat64s appends a bare float64 vector to buf.
func AppendFloat64s(buf []byte, vs []float64) []byte {
	for _, v := range vs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// AppendUvarint appends v in LEB128: 7 value bits per byte, high bit set on
// every byte but the last.
func AppendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

// AppendVarint appends v zigzag-mapped to a uvarint, so small negative
// values stay short (−1 → 1 byte, not 10).
func AppendVarint(buf []byte, v int64) []byte {
	return binary.AppendUvarint(buf, zigzag(v))
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// AppendDeltaInt64s appends vs as a self-delimiting varint stream: a uvarint
// count, the first value as a zigzag varint, then each successive value as
// the zigzag varint of its gap to the predecessor. Sorted ID streams (ghost
// lists, community-info requests) collapse to ~1 byte per entry; unsorted
// input round-trips too, just less compactly.
func AppendDeltaInt64s(buf []byte, vs []int64) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(vs)))
	prev := int64(0)
	for _, v := range vs {
		buf = binary.AppendUvarint(buf, zigzag(v-prev))
		prev = v
	}
	return buf
}

// Decoder reads fixed-width values from a byte slice produced by the Append
// helpers.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder wraps buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Remaining reports the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) need(n int) error {
	if d.off+n > len(d.buf) {
		return fmt.Errorf("mpi: decode past end of %d-byte buffer (offset %d, need %d)", len(d.buf), d.off, n)
	}
	return nil
}

// Uint64 decodes the next value.
func (d *Decoder) Uint64() (uint64, error) {
	if err := d.need(8); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

// Int64 decodes the next value.
func (d *Decoder) Int64() (int64, error) {
	v, err := d.Uint64()
	return int64(v), err
}

// Float64 decodes the next value.
func (d *Decoder) Float64() (float64, error) {
	v, err := d.Uint64()
	return math.Float64frombits(v), err
}

// Uvarint decodes one LEB128 value.
func (d *Decoder) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("mpi: truncated or overlong uvarint at offset %d of %d-byte buffer", d.off, len(d.buf))
	}
	d.off += n
	return v, nil
}

// Varint decodes one zigzag varint.
func (d *Decoder) Varint() (int64, error) {
	v, err := d.Uvarint()
	return unzigzag(v), err
}

// DeltaInt64s decodes a stream written by AppendDeltaInt64s.
func (d *Decoder) DeltaInt64s() ([]int64, error) {
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	// Every entry costs at least one byte, so a count beyond the remaining
	// bytes is corrupt; reject it before allocating (fuzz robustness).
	if n > uint64(d.Remaining()) {
		return nil, fmt.Errorf("mpi: delta stream claims %d entries with %d bytes left", n, d.Remaining())
	}
	out := make([]int64, n)
	prev := int64(0)
	for i := range out {
		gap, err := d.Varint()
		if err != nil {
			return nil, err
		}
		prev += gap
		out[i] = prev
	}
	return out, nil
}

// Int64s decodes n values.
func (d *Decoder) Int64s(n int) ([]int64, error) {
	if err := d.need(8 * n); err != nil {
		return nil, err
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(d.buf[d.off:]))
		d.off += 8
	}
	return out, nil
}

// Float64s decodes n values.
func (d *Decoder) Float64s(n int) ([]float64, error) {
	if err := d.need(8 * n); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
		d.off += 8
	}
	return out, nil
}

// Arena is a pool of reusable encode buffers for the per-iteration message
// paths (ghost exchange, community deltas, info requests). Grab hands out a
// zero-length buffer backed by previously grown storage; Reset recycles
// every buffer at once. After a few iterations the buffers reach their
// steady-state capacities and the encode paths stop allocating entirely.
//
// Reusing a buffer that was passed to a collective is safe once the call
// has returned: Transport.Send contractually takes its own copy of the
// payload (both the in-process and the TCP transport copy into their frame
// before returning), so the arena's buffers never escape into the
// transport. That contract is what lets the encode path go "zero-copy" —
// the only copy left is the transport's own framing copy.
//
// An Arena is not safe for concurrent use; keep one per rank (the encode
// loops are single-threaded driver code).
type Arena struct {
	bufs   [][]byte
	next   int
	pinned int
}

// Reset makes every grabbed buffer above the pin watermark available again.
// Buffers handed out before Reset must not be written afterwards — their
// storage will be reissued.
func (a *Arena) Reset() { a.next = a.pinned }

// Pin marks every currently grabbed buffer as in flight: Reset will not
// recycle them until Unpin. The split-phase collectives use this so encode
// buffers handed to a started-but-unwaited exchange survive any arena use in
// the compute that overlaps it.
func (a *Arena) Pin() { a.pinned = a.next }

// Unpin releases the in-flight buffers; the next Reset recycles everything.
func (a *Arena) Unpin() { a.pinned = 0 }

// Grab returns a pointer to a zero-length buffer slot. Append through the
// pointer (*bp = AppendInt64(*bp, v)) so capacity growth is retained for
// the next cycle.
func (a *Arena) Grab() *[]byte {
	if a.next == len(a.bufs) {
		a.bufs = append(a.bufs, nil)
	}
	bp := &a.bufs[a.next]
	a.next++
	*bp = (*bp)[:0]
	return bp
}

// EncodeInt64s serializes vs into a fresh buffer.
func EncodeInt64s(vs []int64) []byte {
	return AppendInt64s(make([]byte, 0, 8*len(vs)), vs)
}

// DecodeInt64s deserializes a buffer holding only int64s.
func DecodeInt64s(buf []byte) ([]int64, error) {
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("mpi: int64 buffer length %d not a multiple of 8", len(buf))
	}
	return NewDecoder(buf).Int64s(len(buf) / 8)
}

// EncodeDeltaInt64s serializes vs as a delta varint stream into a fresh
// buffer.
func EncodeDeltaInt64s(vs []int64) []byte {
	return AppendDeltaInt64s(make([]byte, 0, 1+2*len(vs)), vs)
}

// DecodeDeltaInt64s deserializes a buffer holding exactly one delta stream.
func DecodeDeltaInt64s(buf []byte) ([]int64, error) {
	d := NewDecoder(buf)
	vs, err := d.DeltaInt64s()
	if err != nil {
		return nil, err
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("mpi: %d trailing bytes after delta stream", d.Remaining())
	}
	return vs, nil
}

// EncodeFloat64s serializes vs into a fresh buffer.
func EncodeFloat64s(vs []float64) []byte {
	return AppendFloat64s(make([]byte, 0, 8*len(vs)), vs)
}

// DecodeFloat64s deserializes a buffer holding only float64s.
func DecodeFloat64s(buf []byte) ([]float64, error) {
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("mpi: float64 buffer length %d not a multiple of 8", len(buf))
	}
	return NewDecoder(buf).Float64s(len(buf) / 8)
}
