package mpi

import (
	"testing"
)

// FuzzVarintCodec drives the wire-v2 varint decoders with arbitrary bytes.
// The decoders must never panic or over-allocate on corrupt input, and any
// value stream they accept must re-encode and decode back to itself (the
// codec is canonical in the value direction — every int64 has exactly one
// round-trip image).
func FuzzVarintCodec(f *testing.F) {
	f.Add(EncodeDeltaInt64s(nil))
	f.Add(EncodeDeltaInt64s([]int64{0}))
	f.Add(EncodeDeltaInt64s([]int64{3, 5, 6, 100, 1 << 40}))
	f.Add(EncodeDeltaInt64s([]int64{-9, -2, 7, 7, 3})) // unsorted and negative
	// Corrupt variants seed the rejection paths: truncated tail, an entry
	// count far beyond the payload, an overlong varint.
	big := EncodeDeltaInt64s([]int64{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(big[:len(big)-2])
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		vs, err := DecodeDeltaInt64s(data)
		if err != nil {
			// Rejected is always acceptable; the guards above must have
			// kept the decoder from allocating past the input size.
			return
		}
		re := EncodeDeltaInt64s(vs)
		back, err := DecodeDeltaInt64s(re)
		if err != nil {
			t.Fatalf("re-encoded stream rejected: %v", err)
		}
		if len(back) != len(vs) {
			t.Fatalf("round trip changed length: %d -> %d", len(vs), len(back))
		}
		for i := range vs {
			if back[i] != vs[i] {
				t.Fatalf("round trip changed value %d: %d -> %d", i, vs[i], back[i])
			}
		}

		// The scalar varint path must agree with itself too: decode every
		// remaining byte as zigzag varints and round-trip each.
		d := NewDecoder(data)
		for d.Remaining() > 0 {
			v, err := d.Varint()
			if err != nil {
				break
			}
			buf := AppendVarint(nil, v)
			v2, err := NewDecoder(buf).Varint()
			if err != nil || v2 != v {
				t.Fatalf("varint round trip: %d -> %d (err %v)", v, v2, err)
			}
		}
	})
}
