package mpi

import (
	"errors"
	"fmt"
	"net"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// runTCPWorldFaulty runs body over a TCP world where every rank's transport
// is wrapped in a FaultTransport (zero plan unless rank == doomed). Unlike
// runTCPWorld it returns the per-rank errors instead of failing the test,
// so chaos tests can assert on who failed and how.
func runTCPWorldFaulty(t *testing.T, size, doomed int, plan FaultPlan, body func(c *Comm, ft *FaultTransport) error, opts ...CommOption) []error {
	t.Helper()
	addrs := freeAddrs(t, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tp, err := DialTCPWorld(TCPWorldConfig{Rank: r, Addrs: addrs})
			if err != nil {
				errs[r] = err
				return
			}
			p := FaultPlan{}
			if r == doomed {
				p = plan
			}
			ft := NewFaultTransport(tp, p)
			defer ft.Close()
			errs[r] = body(NewComm(ft, opts...), ft)
		}(r)
	}
	wg.Wait()
	return errs
}

// expectPeerLost asserts err is an *ErrPeerLost naming the given peer.
func expectPeerLost(t *testing.T, err error, peer int, ctx string) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: expected peer-lost error, got nil", ctx)
	}
	var pl *ErrPeerLost
	if !errors.As(err, &pl) {
		t.Fatalf("%s: expected *ErrPeerLost, got %v", ctx, err)
	}
	if pl.Peer != peer {
		t.Fatalf("%s: lost peer %d, want %d (err: %v)", ctx, pl.Peer, peer, err)
	}
	if !strings.Contains(err.Error(), fmt.Sprint(peer)) {
		t.Fatalf("%s: error does not mention peer %d: %v", ctx, peer, err)
	}
}

// TestFaultKillMidBarrier kills one rank between two barriers: every
// survivor's second Barrier must return ErrPeerLost promptly instead of
// blocking forever.
func TestFaultKillMidBarrier(t *testing.T) {
	const p, doomed = 4, 2
	start := time.Now()
	errs := runTCPWorldFaulty(t, p, doomed, FaultPlan{}, func(c *Comm, ft *FaultTransport) error {
		if err := c.Barrier(); err != nil {
			return fmt.Errorf("first barrier: %w", err)
		}
		if c.Rank() == doomed {
			ft.Kill()
			return nil
		}
		return c.Barrier()
	})
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("world took %v to fail; fail-fast broken", elapsed)
	}
	for r, err := range errs {
		if r == doomed {
			if err != nil {
				t.Fatalf("doomed rank: unexpected error %v", err)
			}
			continue
		}
		expectPeerLost(t, err, doomed, fmt.Sprintf("survivor rank %d", r))
	}
}

// TestFaultKillMidAllreduce kills one rank before it contributes to an
// allreduce; survivors must error rather than wait for the contribution.
func TestFaultKillMidAllreduce(t *testing.T) {
	const p, doomed = 3, 1
	errs := runTCPWorldFaulty(t, p, doomed, FaultPlan{}, func(c *Comm, ft *FaultTransport) error {
		if _, err := c.AllreduceInt64(int64(c.Rank()), OpSum); err != nil {
			return fmt.Errorf("first allreduce: %w", err)
		}
		if c.Rank() == doomed {
			ft.Kill()
			return nil
		}
		_, err := c.AllreduceInt64(int64(c.Rank()), OpSum)
		return err
	})
	for r, err := range errs {
		if r == doomed {
			continue
		}
		expectPeerLost(t, err, doomed, fmt.Sprintf("survivor rank %d", r))
	}
}

// TestFaultKillMidBcast kills the broadcast root; the tree below it must
// observe the loss.
func TestFaultKillMidBcast(t *testing.T) {
	const p, doomed = 3, 0
	errs := runTCPWorldFaulty(t, p, doomed, FaultPlan{}, func(c *Comm, ft *FaultTransport) error {
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == doomed {
			ft.Kill()
			return nil
		}
		_, err := c.Bcast(doomed, []byte("payload"))
		return err
	})
	for r, err := range errs {
		if r == doomed {
			continue
		}
		expectPeerLost(t, err, doomed, fmt.Sprintf("survivor rank %d", r))
	}
}

// TestFaultScheduledKill exercises the KillAfterSends schedule: the doomed
// rank dies on its own after a fixed number of sends and every survivor
// still unblocks with ErrPeerLost.
func TestFaultScheduledKill(t *testing.T) {
	const p, doomed = 3, 1
	errs := runTCPWorldFaulty(t, p, doomed, FaultPlan{KillAfterSends: 3}, func(c *Comm, ft *FaultTransport) error {
		for i := 0; i < 50; i++ {
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if errs[doomed] == nil {
		t.Fatal("doomed rank survived its own kill schedule")
	}
	if !errors.Is(errs[doomed], ErrKilled) {
		t.Fatalf("doomed rank error = %v, want ErrKilled", errs[doomed])
	}
	for r, err := range errs {
		if r == doomed {
			continue
		}
		expectPeerLost(t, err, doomed, fmt.Sprintf("survivor rank %d", r))
	}
}

// TestFaultPartitionDeadline models an asymmetric partition that keeps
// connections open: only the collective deadline can surface it.
func TestFaultPartitionDeadline(t *testing.T) {
	const p, doomed = 3, 2
	plan := FaultPlan{Partition: []int{0, 1}} // doomed blackholes everyone
	start := time.Now()
	errs := runTCPWorldFaulty(t, p, doomed, plan, func(c *Comm, ft *FaultTransport) error {
		return c.Barrier()
	}, WithCollectiveTimeout(300*time.Millisecond))
	elapsed := time.Since(start)
	failures := 0
	for _, err := range errs {
		if err != nil {
			if !errors.Is(err, os.ErrDeadlineExceeded) {
				t.Fatalf("expected deadline error, got %v", err)
			}
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("partitioned barrier succeeded")
	}
	if elapsed > 10*time.Second {
		t.Fatalf("partition took %v to surface", elapsed)
	}
}

// TestFaultDropDeadline: dropped messages leave the receiver waiting; the
// per-Recv deadline converts the silence into an error.
func TestFaultDropDeadline(t *testing.T) {
	const p, doomed = 2, 0
	errs := runTCPWorldFaulty(t, p, doomed, FaultPlan{Seed: 7, Drop: 1.0}, func(c *Comm, ft *FaultTransport) error {
		if c.Rank() == doomed {
			err := c.Send(1, 5, []byte("lost"))
			// Outlive the receiver's deadline so the graceful-shutdown
			// notice cannot race the timeout under test.
			time.Sleep(time.Second)
			return err
		}
		_, err := c.Recv(0, 5)
		return err
	}, WithRecvTimeout(200*time.Millisecond))
	if errs[doomed] != nil {
		t.Fatalf("sender: %v", errs[doomed])
	}
	if !errors.Is(errs[1], os.ErrDeadlineExceeded) {
		t.Fatalf("receiver error = %v, want deadline", errs[1])
	}
}

// TestFaultDuplicate: a duplicated message is observable as two deliveries.
func TestFaultDuplicate(t *testing.T) {
	const p, doomed = 2, 0
	errs := runTCPWorldFaulty(t, p, doomed, FaultPlan{Seed: 3, Duplicate: 1.0}, func(c *Comm, ft *FaultTransport) error {
		if c.Rank() == doomed {
			if err := c.Send(1, 9, []byte("twice")); err != nil {
				return err
			}
			return c.Barrier()
		}
		for i := 0; i < 2; i++ {
			msg, err := c.Recv(0, 9)
			if err != nil {
				return fmt.Errorf("delivery %d: %w", i, err)
			}
			if string(msg.Data) != "twice" {
				return fmt.Errorf("delivery %d corrupted: %q", i, msg.Data)
			}
		}
		return c.Barrier()
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// TestFaultDelay: delayed messages still arrive; nothing errors, nothing
// hangs.
func TestFaultDelay(t *testing.T) {
	const p, doomed = 2, 0
	plan := FaultPlan{Seed: 11, Delay: 1.0, MaxDelay: 20 * time.Millisecond}
	errs := runTCPWorldFaulty(t, p, doomed, plan, func(c *Comm, ft *FaultTransport) error {
		if c.Rank() == doomed {
			err := c.Send(1, 2, []byte("late"))
			// Keep the transport open past MaxDelay so the deferred
			// delivery timer still has a live endpoint to send on.
			time.Sleep(200 * time.Millisecond)
			return err
		}
		msg, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		if string(msg.Data) != "late" {
			return fmt.Errorf("corrupted: %q", msg.Data)
		}
		return nil
	}, WithRecvTimeout(5*time.Second))
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// TestFaultDeterminism: two FaultTransports with the same plan drop the
// same messages.
func TestFaultDeterminism(t *testing.T) {
	plan := FaultPlan{Seed: 42, Drop: 0.5}
	outcome := func() []bool {
		w, err := NewInprocWorld(2)
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		ft := NewFaultTransport(w.Endpoint(0), plan)
		var got []bool
		for i := 0; i < 64; i++ {
			if err := ft.Send(1, i, []byte{1}); err != nil {
				t.Fatal(err)
			}
			_, err := w.Endpoint(1).RecvTimeout(0, i, 20*time.Millisecond)
			got = append(got, err == nil)
		}
		return got
	}
	a, b := outcome(), outcome()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("drop schedule diverged at message %d", i)
		}
	}
	dropped := 0
	for _, ok := range a {
		if !ok {
			dropped++
		}
	}
	if dropped == 0 || dropped == len(a) {
		t.Fatalf("Drop=0.5 dropped %d of %d; RNG suspect", dropped, len(a))
	}
}

// TestInprocDeadline: the in-process transport cannot detect peer death at
// all, so the deadline is the only defence; a rank that stops participating
// must not hang the world.
func TestInprocDeadline(t *testing.T) {
	// p=2 keeps the assertion deterministic: exactly one survivor, so the
	// first error Run reports is necessarily the deadline expiry.
	const p, doomed = 2, 1
	err := Run(p, func(c *Comm) error {
		if c.Rank() == doomed {
			return nil // silently stops participating
		}
		return c.Barrier()
	}, WithCollectiveTimeout(200*time.Millisecond))
	if err == nil {
		t.Fatal("barrier with absent rank succeeded")
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("error = %v, want deadline", err)
	}
}

// TestNoGoroutineLeakAfterKill runs a chaos scenario and then verifies no
// goroutine remains parked in matchQueue.pop — the signature of the old
// hang.
func TestNoGoroutineLeakAfterKill(t *testing.T) {
	const p, doomed = 3, 1
	runTCPWorldFaulty(t, p, doomed, FaultPlan{}, func(c *Comm, ft *FaultTransport) error {
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == doomed {
			ft.Kill()
			return nil
		}
		c.Barrier()
		_, err := c.AllreduceInt64(1, OpSum)
		return err
	})
	deadline := time.Now().Add(5 * time.Second)
	for {
		buf := make([]byte, 1<<20)
		stacks := string(buf[:runtime.Stack(buf, true)])
		if !strings.Contains(stacks, "matchQueue).pop") {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine still blocked in matchQueue.pop:\n%s", stacks)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRendezvousFailureNoConnLeak: when one rank never shows up, the ranks
// that did connect must fail and release every established connection —
// afterwards nothing should be listening or half-open on the reserved
// ports.
func TestRendezvousFailureNoConnLeak(t *testing.T) {
	addrs := freeAddrs(t, 3)
	// Ranks 0 and 1 start; rank 2 never does. Rank 0 accepts 1's dial,
	// then both block on rank 2 until the short deadline expires.
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tp, err := DialTCPWorld(TCPWorldConfig{
				Rank:            r,
				Addrs:           addrs,
				DialTimeout:     100 * time.Millisecond,
				ConnectDeadline: 500 * time.Millisecond,
			})
			if err == nil {
				tp.Close()
				errs[r] = fmt.Errorf("rendezvous unexpectedly succeeded")
				return
			}
			errs[r] = nil
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	// The straggler-drain goroutines close leftover conns within the
	// connect deadline; afterwards the listeners must be gone too.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if _, err := net.DialTimeout("tcp", addrs[0], 50*time.Millisecond); err != nil {
			return // listener closed; nothing accepting
		}
		if time.Now().After(deadline) {
			t.Fatal("rank 0's listener still accepting after failed rendezvous")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
