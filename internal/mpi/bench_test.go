package mpi

import (
	"fmt"
	"testing"
)

// Ablation: collective costs versus world size (DESIGN.md §6). The
// binomial-tree/dissemination implementations should grow ~log p per rank;
// the Alltoall fan-out grows linearly in p.
func BenchmarkAblation_Collectives(b *testing.B) {
	for _, p := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("allreduce/p=%d", p), func(b *testing.B) {
			vec := make([]float64, 64)
			for i := 0; i < b.N; i++ {
				err := Run(p, func(c *Comm) error {
					_, err := c.AllreduceFloat64s(vec, OpSum)
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("alltoall/p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				err := Run(p, func(c *Comm) error {
					send := make([][]byte, p)
					for q := range send {
						send[q] = make([]byte, 512)
					}
					_, err := c.Alltoall(send)
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBarrier tracks the dissemination barrier.
func BenchmarkBarrier(b *testing.B) {
	for _, p := range []int{4, 16} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := Run(p, func(c *Comm) error { return c.Barrier() }); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSendRecvThroughput tracks point-to-point payload throughput
// through the in-process transport (including the enforced deep copy).
func BenchmarkSendRecvThroughput(b *testing.B) {
	payload := make([]byte, 1<<16)
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		err := Run(2, func(c *Comm) error {
			if c.Rank() == 0 {
				return c.Send(1, 0, payload)
			}
			_, err := c.Recv(0, 0)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodec tracks the int64 vector codec.
func BenchmarkCodec(b *testing.B) {
	vals := make([]int64, 4096)
	for i := range vals {
		vals[i] = int64(i) * 31
	}
	b.SetBytes(int64(8 * len(vals)))
	for i := 0; i < b.N; i++ {
		buf := EncodeInt64s(vals)
		if _, err := DecodeInt64s(buf); err != nil {
			b.Fatal(err)
		}
	}
}
