package mpi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrKilled is returned by operations on a FaultTransport whose simulated
// process death has been triggered (Kill or KillAfterSends).
var ErrKilled = errors.New("mpi: fault injection: endpoint killed")

// FaultPlan describes the deterministic fault schedule of one
// FaultTransport. All probabilities are evaluated against a splitmix64
// stream seeded with Seed, so runs with equal plans and message sequences
// inject identical faults. The zero plan injects nothing.
type FaultPlan struct {
	// Seed initialises the fault RNG; ranks typically mix their rank in so
	// schedules differ across the world but stay reproducible.
	Seed uint64

	// Drop is the probability an outgoing message is silently discarded —
	// the receiver simply never sees it, as with a lost datagram or a peer
	// whose NIC died mid-stream.
	Drop float64

	// Duplicate is the probability an outgoing message is delivered twice,
	// modelling retransmission bugs.
	Duplicate float64

	// Delay is the probability an outgoing message is held back for a
	// random duration in (0, MaxDelay] before delivery. Delayed delivery
	// happens on a timer goroutine, so same-(source, tag) ordering is NOT
	// preserved for delayed messages — exactly the reordering a real
	// network exhibits. MaxDelay defaults to 10ms when Delay > 0.
	Delay    float64
	MaxDelay time.Duration

	// Partition lists peer ranks to which traffic is blackholed in both
	// directions: sends are discarded and received messages from them are
	// dropped before matching. Connections stay "up", so only deadlines can
	// detect this — the classic asymmetric-partition hang.
	Partition []int

	// KillAfterSends, when > 0, kills the endpoint after that many Send
	// calls have been accepted: the underlying transport is closed abruptly
	// and every later operation fails with ErrKilled. This is the
	// "process dies mid-collective" schedule used by the chaos tests.
	KillAfterSends int64
}

// FaultTransport wraps a Transport with deterministic fault injection for
// chaos testing: message drop, duplication, delay, peer partitions, and
// scheduled or explicit process death. It implements Transport, so a Comm
// built on it exercises the full collective stack under faults.
type FaultTransport struct {
	inner Transport
	plan  FaultPlan

	mu          sync.Mutex
	rng         uint64
	partitioned map[int]bool

	sends  atomic.Int64
	killed atomic.Bool
}

// NewFaultTransport wraps t with the given fault plan.
func NewFaultTransport(t Transport, plan FaultPlan) *FaultTransport {
	f := &FaultTransport{
		inner:       t,
		plan:        plan,
		rng:         plan.Seed ^ 0x9e3779b97f4a7c15,
		partitioned: make(map[int]bool, len(plan.Partition)),
	}
	if f.plan.Delay > 0 && f.plan.MaxDelay <= 0 {
		f.plan.MaxDelay = 10 * time.Millisecond
	}
	for _, p := range plan.Partition {
		f.partitioned[p] = true
	}
	return f
}

// next draws one uniform value in [0, 1) from the seeded splitmix64 stream.
func (f *FaultTransport) next() float64 {
	f.mu.Lock()
	f.rng += 0x9e3779b97f4a7c15
	z := f.rng
	f.mu.Unlock()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// Kill simulates abrupt process death: the underlying transport is torn
// down without any shutdown handshake (for TCP, peers observe an
// unexplained stream end and fail with ErrPeerLost) and all subsequent
// operations on this endpoint fail with ErrKilled.
func (f *FaultTransport) Kill() {
	if f.killed.CompareAndSwap(false, true) {
		if a, ok := f.inner.(interface{ Abort() }); ok {
			a.Abort()
		} else {
			f.inner.Close()
		}
	}
}

// Killed reports whether the endpoint's simulated death has triggered.
func (f *FaultTransport) Killed() bool { return f.killed.Load() }

// Sends returns how many Send calls this endpoint has accepted. Chaos tests
// use it to calibrate KillAfterSends schedules against a healthy run.
func (f *FaultTransport) Sends() int64 { return f.sends.Load() }

func (f *FaultTransport) Rank() int { return f.inner.Rank() }
func (f *FaultTransport) Size() int { return f.inner.Size() }

func (f *FaultTransport) Send(to, tag int, data []byte) error {
	if f.killed.Load() {
		return ErrKilled
	}
	if n := f.sends.Add(1); f.plan.KillAfterSends > 0 && n >= f.plan.KillAfterSends {
		f.Kill()
		return ErrKilled
	}
	if f.partitioned[to] {
		return nil // blackholed: reported as sent, never delivered
	}
	if f.plan.Drop > 0 && f.next() < f.plan.Drop {
		return nil
	}
	if f.plan.Delay > 0 && f.next() < f.plan.Delay {
		d := time.Duration(f.next() * float64(f.plan.MaxDelay))
		cp := make([]byte, len(data))
		copy(cp, data)
		time.AfterFunc(d, func() {
			if !f.killed.Load() {
				f.inner.Send(to, tag, cp)
			}
		})
		return nil
	}
	if err := f.inner.Send(to, tag, data); err != nil {
		return err
	}
	if f.plan.Duplicate > 0 && f.next() < f.plan.Duplicate {
		return f.inner.Send(to, tag, data)
	}
	return nil
}

func (f *FaultTransport) Recv(from, tag int) (Message, error) {
	return f.RecvTimeout(from, tag, 0)
}

func (f *FaultTransport) RecvTimeout(from, tag int, timeout time.Duration) (Message, error) {
	for {
		if f.killed.Load() {
			return Message{}, ErrKilled
		}
		msg, err := f.inner.RecvTimeout(from, tag, timeout)
		if err != nil {
			if f.killed.Load() {
				return Message{}, fmt.Errorf("%w (%v)", ErrKilled, err)
			}
			return msg, err
		}
		// Inbound half of the partition: discard and wait for the next
		// match, keeping the remaining timeout budget unmodelled — the
		// simpler behaviour is fine for a fault injector.
		if f.partitioned[msg.From] {
			continue
		}
		return msg, nil
	}
}

func (f *FaultTransport) Close() error {
	if f.killed.Load() {
		return nil
	}
	return f.inner.Close()
}
