package mpi

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestInprocSendRecvBasic(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 7, []byte("hello"))
		}
		msg, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		if string(msg.Data) != "hello" || msg.From != 0 || msg.Tag != 7 {
			return fmt.Errorf("bad message %+v", msg)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInprocSendCopiesData(t *testing.T) {
	// Mutating the buffer after Send must not be observable at the
	// receiver: the world simulates distributed memory.
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []byte{1, 2, 3}
			if err := c.Send(1, 0, buf); err != nil {
				return err
			}
			buf[0] = 99
			return nil
		}
		msg, err := c.Recv(0, 0)
		if err != nil {
			return err
		}
		if msg.Data[0] != 1 {
			return fmt.Errorf("receiver observed sender mutation: %v", msg.Data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTagMatching(t *testing.T) {
	// A receive for tag B must skip an earlier pending message with tag A
	// and deliver both in the right order.
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, []byte("first")); err != nil {
				return err
			}
			return c.Send(1, 2, []byte("second"))
		}
		m2, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		m1, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if string(m2.Data) != "second" || string(m1.Data) != "first" {
			return fmt.Errorf("tag matching broke: %q %q", m1.Data, m2.Data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvOrderingSameTag(t *testing.T) {
	const n = 100
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := c.SendInt64s(1, 3, []int64{int64(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			vals, err := c.RecvInt64s(0, 3)
			if err != nil {
				return err
			}
			if vals[0] != int64(i) {
				return fmt.Errorf("out-of-order delivery: got %d want %d", vals[0], i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvAnySource(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		if c.Rank() != 0 {
			return c.SendInt64s(0, 5, []int64{int64(c.Rank())})
		}
		seen := map[int64]bool{}
		for i := 0; i < 3; i++ {
			msg, err := c.Recv(AnySource, 5)
			if err != nil {
				return err
			}
			vals, err := DecodeInt64s(msg.Data)
			if err != nil {
				return err
			}
			seen[vals[0]] = true
		}
		if len(seen) != 3 {
			return fmt.Errorf("expected 3 distinct sources, got %v", seen)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendInvalidPeer(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		if err := c.Send(5, 0, nil); err == nil {
			return fmt.Errorf("expected error for out-of-range peer")
		}
		if err := c.Send(-1, 0, nil); err == nil {
			return fmt.Errorf("expected error for negative peer")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendInvalidTag(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		if err := c.Send(1, MaxUserTag+1, nil); err == nil {
			return fmt.Errorf("expected error for reserved tag")
		}
		if err := c.Send(1, -5, nil); err == nil {
			return fmt.Errorf("expected error for negative tag")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesError(t *testing.T) {
	sentinel := fmt.Errorf("rank failure")
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 1 {
			return sentinel
		}
		// The other ranks block; Run must unblock them by closing the
		// world when rank 1 fails.
		_, err := c.Recv(AnySource, AnyTag)
		if err != ErrClosed {
			return fmt.Errorf("expected ErrClosed, got %v", err)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestRunRecoversPanic(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			panic("boom")
		}
		_, _ = c.Recv(AnySource, AnyTag)
		return nil
	})
	if err == nil {
		t.Fatal("expected panic to surface as error")
	}
}

func TestBarrierAllSizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 8, 13, 16} {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			var mu sync.Mutex
			phase := make([]int, p)
			err := Run(p, func(c *Comm) error {
				for step := 0; step < 3; step++ {
					mu.Lock()
					phase[c.Rank()] = step
					mu.Unlock()
					if err := c.Barrier(); err != nil {
						return err
					}
					// After the barrier every rank must have recorded at
					// least this step.
					mu.Lock()
					for r, ph := range phase {
						if ph < step {
							mu.Unlock()
							return fmt.Errorf("rank %d at phase %d, expected >= %d", r, ph, step)
						}
					}
					mu.Unlock()
					if err := c.Barrier(); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBcastAllRootsAndSizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 8} {
		for root := 0; root < p; root++ {
			p, root := p, root
			t.Run(fmt.Sprintf("p=%d root=%d", p, root), func(t *testing.T) {
				payload := []byte(fmt.Sprintf("payload-from-%d", root))
				err := Run(p, func(c *Comm) error {
					var in []byte
					if c.Rank() == root {
						in = payload
					}
					out, err := c.Bcast(root, in)
					if err != nil {
						return err
					}
					if !bytes.Equal(out, payload) {
						return fmt.Errorf("rank %d got %q", c.Rank(), out)
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestAllreduceSumMinMax(t *testing.T) {
	const p = 5
	results, err := RunCollect(p, func(c *Comm) ([3]float64, error) {
		v := float64(c.Rank() + 1)
		sum, err := c.AllreduceFloat64(v, OpSum)
		if err != nil {
			return [3]float64{}, err
		}
		mn, err := c.AllreduceFloat64(v, OpMin)
		if err != nil {
			return [3]float64{}, err
		}
		mx, err := c.AllreduceFloat64(v, OpMax)
		if err != nil {
			return [3]float64{}, err
		}
		return [3]float64{sum, mn, mx}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, got := range results {
		if got[0] != 15 || got[1] != 1 || got[2] != 5 {
			t.Fatalf("rank %d: got %v want [15 1 5]", r, got)
		}
	}
}

func TestAllreduceVector(t *testing.T) {
	const p = 4
	results, err := RunCollect(p, func(c *Comm) ([]int64, error) {
		vec := []int64{int64(c.Rank()), 10, -int64(c.Rank())}
		return c.AllreduceInt64s(vec, OpSum)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{6, 40, -6}
	for r, got := range results {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rank %d: got %v want %v", r, got, want)
			}
		}
	}
}

func TestExscanInt64(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 8, 11, 16} {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			results, err := RunCollect(p, func(c *Comm) (int64, error) {
				return c.ExscanInt64(int64(c.Rank() + 1))
			})
			if err != nil {
				t.Fatal(err)
			}
			want := int64(0)
			for r := 0; r < p; r++ {
				if results[r] != want {
					t.Fatalf("rank %d: exscan got %d want %d", r, results[r], want)
				}
				want += int64(r + 1)
			}
		})
	}
}

func TestAllOK(t *testing.T) {
	const p = 4
	// All clean: nil everywhere.
	err := Run(p, func(c *Comm) error {
		return c.AllOK(nil)
	})
	if err != nil {
		t.Fatalf("all-nil AllOK: %v", err)
	}
	// One failed rank: every rank must see a non-nil outcome, the failed
	// rank its own error, the others one naming the failed rank.
	boom := fmt.Errorf("disk full")
	results, err := RunCollect(p, func(c *Comm) (string, error) {
		var local error
		if c.Rank() == 2 {
			local = boom
		}
		got := c.AllOK(local)
		if got == nil {
			return "", fmt.Errorf("rank %d: AllOK returned nil despite rank 2's failure", c.Rank())
		}
		if c.Rank() == 2 && got != boom {
			return "", fmt.Errorf("failed rank did not get its own error back: %v", got)
		}
		return got.Error(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, msg := range results {
		if r != 2 && msg != "mpi: rank 2 reported failure" {
			t.Fatalf("rank %d saw %q", r, msg)
		}
	}
}

func TestAllgatherInt64(t *testing.T) {
	const p = 6
	results, err := RunCollect(p, func(c *Comm) ([]int64, error) {
		return c.AllgatherInt64(int64(c.Rank() * c.Rank()))
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, got := range results {
		for q := 0; q < p; q++ {
			if got[q] != int64(q*q) {
				t.Fatalf("rank %d: allgather[%d]=%d want %d", r, q, got[q], q*q)
			}
		}
	}
}

func TestGatherv(t *testing.T) {
	const p, root = 5, 2
	err := Run(p, func(c *Comm) error {
		data := bytes.Repeat([]byte{byte(c.Rank())}, c.Rank()+1)
		out, err := c.Gatherv(root, data)
		if err != nil {
			return err
		}
		if c.Rank() != root {
			if out != nil {
				return fmt.Errorf("non-root got data")
			}
			return nil
		}
		for q := 0; q < p; q++ {
			want := bytes.Repeat([]byte{byte(q)}, q+1)
			if !bytes.Equal(out[q], want) {
				return fmt.Errorf("root: block %d = %v want %v", q, out[q], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoall(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 8} {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			err := Run(p, func(c *Comm) error {
				send := make([][]byte, p)
				for q := 0; q < p; q++ {
					send[q] = []byte(fmt.Sprintf("%d->%d", c.Rank(), q))
				}
				recv, err := c.Alltoall(send)
				if err != nil {
					return err
				}
				for q := 0; q < p; q++ {
					want := fmt.Sprintf("%d->%d", q, c.Rank())
					if string(recv[q]) != want {
						return fmt.Errorf("rank %d: recv[%d]=%q want %q", c.Rank(), q, recv[q], want)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAlltoallEmptyBuffers(t *testing.T) {
	const p = 4
	err := Run(p, func(c *Comm) error {
		send := make([][]byte, p) // all nil
		recv, err := c.Alltoall(send)
		if err != nil {
			return err
		}
		for q := 0; q < p; q++ {
			if len(recv[q]) != 0 {
				return fmt.Errorf("expected empty buffer from %d", q)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallWrongLength(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		_, err := c.Alltoall(make([][]byte, 3))
		if err == nil {
			return fmt.Errorf("expected length-mismatch error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBackToBackCollectivesDoNotInterfere(t *testing.T) {
	// Two consecutive collectives of the same kind must not steal each
	// other's messages even when ranks race ahead.
	const p = 4
	err := Run(p, func(c *Comm) error {
		for i := 0; i < 50; i++ {
			got, err := c.AllreduceInt64(int64(i), OpSum)
			if err != nil {
				return err
			}
			if got != int64(i*p) {
				return fmt.Errorf("iteration %d: got %d want %d", i, got, i*p)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectivesInterleavedWithP2P(t *testing.T) {
	const p = 3
	err := Run(p, func(c *Comm) error {
		next := (c.Rank() + 1) % p
		prev := (c.Rank() + p - 1) % p
		for i := 0; i < 10; i++ {
			if err := c.SendInt64s(next, 9, []int64{int64(i)}); err != nil {
				return err
			}
			if _, err := c.AllreduceInt64(1, OpSum); err != nil {
				return err
			}
			vals, err := c.RecvInt64s(prev, 9)
			if err != nil {
				return err
			}
			if vals[0] != int64(i) {
				return fmt.Errorf("p2p corrupted by collective: got %d want %d", vals[0], i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsCounters(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		before := c.Stats().Snapshot()
		if c.Rank() == 0 {
			if err := c.Send(1, 0, make([]byte, 100)); err != nil {
				return err
			}
		} else {
			if _, err := c.Recv(0, 0); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		d := c.Stats().Snapshot().Sub(before)
		if c.Rank() == 0 && (d.SentMsgs != 1 || d.SentBytes != 100) {
			return fmt.Errorf("rank 0 stats %+v", d)
		}
		if c.Rank() == 1 && (d.RecvMsgs != 1 || d.RecvBytes != 100) {
			return fmt.Errorf("rank 1 stats %+v", d)
		}
		if d.CollectiveOps != 1 {
			return fmt.Errorf("expected 1 collective op, got %+v", d)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: for any vector of int64 values distributed over p ranks,
// allreduce(sum) equals the serial sum and exscan produces serial prefix
// sums. This exercises arbitrary values through the tree algorithms.
func TestQuickAllreduceExscanMatchSerial(t *testing.T) {
	f := func(vals []int64, psize uint8) bool {
		p := int(psize%7) + 1
		if len(vals) < p {
			return true // not enough values to distribute; trivially pass
		}
		vals = vals[:p]
		var total int64
		prefix := make([]int64, p)
		var run int64
		for i, v := range vals {
			prefix[i] = run
			run += v
			total += v
		}
		type res struct {
			sum, pre int64
		}
		results, err := RunCollect(p, func(c *Comm) (res, error) {
			s, err := c.AllreduceInt64(vals[c.Rank()], OpSum)
			if err != nil {
				return res{}, err
			}
			e, err := c.ExscanInt64(vals[c.Rank()])
			if err != nil {
				return res{}, err
			}
			return res{s, e}, nil
		})
		if err != nil {
			return false
		}
		for r, got := range results {
			if got.sum != total || got.pre != prefix[r] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: alltoall is its own inverse pattern — the matrix of payloads is
// transposed exactly.
func TestQuickAlltoallTransposes(t *testing.T) {
	f := func(seed int64, psize uint8) bool {
		p := int(psize%5) + 1
		matrix := make([][][]byte, p)
		for i := range matrix {
			matrix[i] = make([][]byte, p)
			for j := range matrix[i] {
				n := int((seed+int64(i*7+j*13))%17+17) % 17
				buf := make([]byte, n)
				for k := range buf {
					buf[k] = byte(seed + int64(i+j+k))
				}
				matrix[i][j] = buf
			}
		}
		results, err := RunCollect(p, func(c *Comm) ([][]byte, error) {
			return c.Alltoall(matrix[c.Rank()])
		})
		if err != nil {
			return false
		}
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				if !bytes.Equal(results[i][j], matrix[j][i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	ints := []int64{0, 1, -1, math.MaxInt64, math.MinInt64, 42}
	got, err := DecodeInt64s(EncodeInt64s(ints))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ints {
		if got[i] != ints[i] {
			t.Fatalf("int64 round trip: %v != %v", got, ints)
		}
	}
	floats := []float64{0, 1.5, -2.25, math.Inf(1), math.SmallestNonzeroFloat64}
	gf, err := DecodeFloat64s(EncodeFloat64s(floats))
	if err != nil {
		t.Fatal(err)
	}
	for i := range floats {
		if gf[i] != floats[i] {
			t.Fatalf("float64 round trip: %v != %v", gf, floats)
		}
	}
}

func TestCodecNaNRoundTrip(t *testing.T) {
	gf, err := DecodeFloat64s(EncodeFloat64s([]float64{math.NaN()}))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(gf[0]) {
		t.Fatalf("NaN did not survive round trip: %v", gf[0])
	}
}

func TestDecoderErrors(t *testing.T) {
	d := NewDecoder([]byte{1, 2, 3})
	if _, err := d.Uint64(); err == nil {
		t.Fatal("expected short-buffer error")
	}
	if _, err := DecodeInt64s([]byte{1, 2, 3}); err == nil {
		t.Fatal("expected misaligned-buffer error")
	}
	if _, err := DecodeFloat64s(make([]byte, 12)); err == nil {
		t.Fatal("expected misaligned-buffer error")
	}
}

func TestDecoderSequential(t *testing.T) {
	var buf []byte
	buf = AppendInt64(buf, -7)
	buf = AppendFloat64(buf, 3.5)
	buf = AppendUint64(buf, 99)
	d := NewDecoder(buf)
	if v, err := d.Int64(); err != nil || v != -7 {
		t.Fatalf("Int64 = %d, %v", v, err)
	}
	if v, err := d.Float64(); err != nil || v != 3.5 {
		t.Fatalf("Float64 = %g, %v", v, err)
	}
	if v, err := d.Uint64(); err != nil || v != 99 {
		t.Fatalf("Uint64 = %d, %v", v, err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("Remaining = %d", d.Remaining())
	}
}

func TestSnapshotArithmetic(t *testing.T) {
	a := Snapshot{SentMsgs: 5, SentBytes: 100, CollBytes: 7}
	b := Snapshot{SentMsgs: 2, SentBytes: 40, CollBytes: 3}
	d := a.Sub(b)
	if d.SentMsgs != 3 || d.SentBytes != 60 || d.CollBytes != 4 {
		t.Fatalf("Sub: %+v", d)
	}
	s := a.Add(b)
	if s.SentMsgs != 7 || s.SentBytes != 140 {
		t.Fatalf("Add: %+v", s)
	}
	if a.TotalBytes() != 107 {
		t.Fatalf("TotalBytes: %d", a.TotalBytes())
	}
}

func TestNeighborAlltoallRing(t *testing.T) {
	// Ring topology: each rank exchanges with its two neighbours.
	const p = 5
	err := Run(p, func(c *Comm) error {
		left := (c.Rank() + p - 1) % p
		right := (c.Rank() + 1) % p
		peers := []int{left, right}
		send := [][]byte{
			[]byte(fmt.Sprintf("%d->%d", c.Rank(), left)),
			[]byte(fmt.Sprintf("%d->%d", c.Rank(), right)),
		}
		recv, err := c.NeighborAlltoall(peers, send)
		if err != nil {
			return err
		}
		if string(recv[0]) != fmt.Sprintf("%d->%d", left, c.Rank()) {
			return fmt.Errorf("bad frame from left: %q", recv[0])
		}
		if string(recv[1]) != fmt.Sprintf("%d->%d", right, c.Rank()) {
			return fmt.Errorf("bad frame from right: %q", recv[1])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNeighborAlltoallEmptyPeers(t *testing.T) {
	// A rank with no neighbours still participates legally.
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 2 {
			_, err := c.NeighborAlltoall(nil, nil)
			return err
		}
		other := 1 - c.Rank()
		recv, err := c.NeighborAlltoall([]int{other}, [][]byte{{byte(c.Rank())}})
		if err != nil {
			return err
		}
		if recv[0][0] != byte(other) {
			return fmt.Errorf("wrong payload")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNeighborAlltoallValidation(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if _, err := c.NeighborAlltoall([]int{c.Rank()}, [][]byte{nil}); err == nil {
			return fmt.Errorf("expected self-peer error")
		}
		if _, err := c.NeighborAlltoall([]int{0}, nil); err == nil {
			return fmt.Errorf("expected length-mismatch error")
		}
		other := 1 - c.Rank()
		if _, err := c.NeighborAlltoall([]int{other, other}, [][]byte{nil, nil}); err == nil {
			return fmt.Errorf("expected duplicate-peer error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNeighborAlltoallInterleavedWithDense(t *testing.T) {
	// Sparse and dense collectives must not steal each other's frames.
	const p = 4
	err := Run(p, func(c *Comm) error {
		right := (c.Rank() + 1) % p
		left := (c.Rank() + p - 1) % p
		for i := 0; i < 10; i++ {
			if _, err := c.NeighborAlltoall([]int{left, right}, [][]byte{{1}, {2}}); err != nil {
				return err
			}
			sum, err := c.AllreduceInt64(1, OpSum)
			if err != nil {
				return err
			}
			if sum != p {
				return fmt.Errorf("allreduce corrupted: %d", sum)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendIrecvBasic(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			req := c.Isend(1, 5, []byte("nonblocking"))
			_, err := req.Wait()
			return err
		}
		req := c.Irecv(0, 5)
		msg, err := req.Wait()
		if err != nil {
			return err
		}
		if string(msg.Data) != "nonblocking" {
			return fmt.Errorf("got %q", msg.Data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIrecvPostedBeforeSend(t *testing.T) {
	// The MPI shape: post the receive first, compute, then the send
	// arrives and Wait completes.
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 1 {
			req := c.Irecv(0, 9)
			if _, _, done := req.Test(); done {
				return fmt.Errorf("request complete before any send")
			}
			if err := c.SendInt64s(0, 1, []int64{1}); err != nil { // signal readiness
				return err
			}
			msg, err := req.Wait()
			if err != nil {
				return err
			}
			if msg.Data[0] != 42 {
				return fmt.Errorf("bad payload")
			}
			return nil
		}
		if _, err := c.Recv(1, 1); err != nil { // wait for the posted Irecv
			return err
		}
		return c.Send(1, 9, []byte{42})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitall(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			reqs := make([]*Request, 5)
			for i := range reqs {
				reqs[i] = c.Isend(1, i, []byte{byte(i)})
			}
			return Waitall(reqs...)
		}
		reqs := make([]*Request, 5)
		for i := range reqs {
			reqs[i] = c.Irecv(0, i)
		}
		if err := Waitall(reqs...); err != nil {
			return err
		}
		for i, r := range reqs {
			msg, _, done := r.Test()
			if !done || msg.Data[0] != byte(i) {
				return fmt.Errorf("request %d: done=%v data=%v", i, done, msg.Data)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendErrorSurfacesThroughWait(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		req := c.Isend(9, 0, nil) // invalid peer
		if _, err := req.Wait(); err == nil {
			return fmt.Errorf("expected error from invalid peer")
		}
		if err := Waitall(c.Isend(9, 0, nil)); err == nil {
			return fmt.Errorf("Waitall swallowed the error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
