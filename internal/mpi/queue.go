package mpi

import "sync"

// matchQueue is an unbounded mailbox with MPI-style (source, tag) matching.
// Both the in-process and TCP transports deliver into one matchQueue per
// receiving rank.
type matchQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	msgs   []Message // pending messages in arrival order
	closed bool
}

func newMatchQueue() *matchQueue {
	q := &matchQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push delivers a message. The queue takes ownership of msg.Data.
func (q *matchQueue) push(msg Message) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	q.msgs = append(q.msgs, msg)
	q.cond.Broadcast()
	return nil
}

// pop blocks until a message matching (from, tag) is pending, removes the
// earliest such message, and returns it. Matching respects MPI ordering:
// messages from one sender with one tag are matched in arrival order.
func (q *matchQueue) pop(from, tag int) (Message, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		for i, m := range q.msgs {
			if (from == AnySource || m.From == from) && (tag == AnyTag || m.Tag == tag) {
				q.msgs = append(q.msgs[:i], q.msgs[i+1:]...)
				return m, nil
			}
		}
		if q.closed {
			return Message{}, ErrClosed
		}
		q.cond.Wait()
	}
}

// close wakes all waiters with ErrClosed and rejects future pushes.
func (q *matchQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// pending returns the number of undelivered messages (for tests/stats).
func (q *matchQueue) pending() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.msgs)
}
