package mpi

import (
	"sync"
	"time"
)

// matchQueue is an unbounded mailbox with MPI-style (source, tag) matching.
// Both the in-process and TCP transports deliver into one matchQueue per
// receiving rank.
//
// A queue can be shut down two ways: close() is the orderly path (pop fails
// with ErrClosed once drained of matches), and fail() records a terminal
// error — typically an *ErrPeerLost — that every pending and future pop
// without a matching message returns. Messages that arrived before the
// failure are still delivered: TCP ordering guarantees everything a peer
// sent before dying was pushed before the failure was observed, so completed
// communication is never retroactively invalidated.
// A third, softer state tracks graceful departures: a peer that announced
// shutdown (goodbye frame) has, by TCP ordering, already delivered all of
// its messages, so only receives that target that peer specifically — which
// can never be satisfied again — fail; receives from other sources proceed.
type matchQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	msgs   []Message     // pending messages in arrival order
	err    error         // terminal failure; nil while healthy
	gone   map[int]error // peers that departed gracefully
	closed bool
}

func newMatchQueue() *matchQueue {
	q := &matchQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push delivers a message. The queue takes ownership of msg.Data.
func (q *matchQueue) push(msg Message) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if q.err != nil {
		return q.err
	}
	q.msgs = append(q.msgs, msg)
	q.cond.Broadcast()
	return nil
}

// pop blocks until a message matching (from, tag) is pending, removes the
// earliest such message, and returns it. Matching respects MPI ordering:
// messages from one sender with one tag are matched in arrival order.
//
// timeout > 0 bounds the wait; expiry returns an error wrapping
// os.ErrDeadlineExceeded. A recorded failure takes effect as soon as no
// matching message is pending.
func (q *matchQueue) pop(from, tag int, timeout time.Duration) (Message, error) {
	var deadline time.Time
	var timer *time.Timer
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
		// The timer only wakes the waiters; the loop below re-checks the
		// clock itself, so a spurious broadcast is harmless.
		timer = time.AfterFunc(timeout, func() {
			q.mu.Lock()
			q.cond.Broadcast()
			q.mu.Unlock()
		})
		defer timer.Stop()
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		for i, m := range q.msgs {
			if (from == AnySource || m.From == from) && (tag == AnyTag || m.Tag == tag) {
				q.msgs = append(q.msgs[:i], q.msgs[i+1:]...)
				return m, nil
			}
		}
		if q.err != nil {
			return Message{}, q.err
		}
		if from != AnySource {
			if derr, gone := q.gone[from]; gone {
				return Message{}, derr
			}
		}
		if q.closed {
			return Message{}, ErrClosed
		}
		if timeout > 0 && !time.Now().Before(deadline) {
			return Message{}, errTimeout("Recv", from, tag, timeout)
		}
		q.cond.Wait()
	}
}

// fail records a terminal error and wakes all waiters. The first failure
// wins; later calls (and calls after close) are no-ops, so shutdown races
// between multiple read loops are benign.
func (q *matchQueue) fail(err error) {
	if err == nil {
		return
	}
	q.mu.Lock()
	if q.err == nil && !q.closed {
		q.err = err
		q.cond.Broadcast()
	}
	q.mu.Unlock()
}

// depart records a peer's graceful shutdown and wakes waiters so blocked
// pops targeting that peer can fail. Unlike fail, it does not poison the
// queue: messages from other peers keep flowing.
func (q *matchQueue) depart(peer int, err error) {
	q.mu.Lock()
	if q.gone == nil {
		q.gone = make(map[int]error)
	}
	if _, dup := q.gone[peer]; !dup {
		q.gone[peer] = err
		q.cond.Broadcast()
	}
	q.mu.Unlock()
}

// close wakes all waiters with ErrClosed and rejects future pushes.
func (q *matchQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// pending returns the number of undelivered messages (for tests/stats).
func (q *matchQueue) pending() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.msgs)
}
