package mpi

import (
	"fmt"
	"net"
	"sync"
	"testing"
)

// freeAddrs reserves n distinct loopback ports by briefly listening on
// port 0, so concurrent TCP-world tests do not collide.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return addrs
}

// runTCPWorld runs body as an SPMD program over a TCP world whose ranks live
// on goroutines of this test process — each rank still gets its own socket
// mesh, exercising the real wire protocol.
func runTCPWorld(t *testing.T, size int, body func(c *Comm) error) {
	t.Helper()
	addrs := freeAddrs(t, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tp, err := DialTCPWorld(TCPWorldConfig{Rank: r, Addrs: addrs})
			if err != nil {
				errs[r] = err
				return
			}
			defer tp.Close()
			errs[r] = body(NewComm(tp))
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestTCPSendRecv(t *testing.T) {
	runTCPWorld(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 4, []byte("over the wire"))
		}
		msg, err := c.Recv(0, 4)
		if err != nil {
			return err
		}
		if string(msg.Data) != "over the wire" {
			return fmt.Errorf("got %q", msg.Data)
		}
		return nil
	})
}

func TestTCPSelfSend(t *testing.T) {
	runTCPWorld(t, 2, func(c *Comm) error {
		if err := c.Send(c.Rank(), 1, []byte{byte(c.Rank())}); err != nil {
			return err
		}
		msg, err := c.Recv(c.Rank(), 1)
		if err != nil {
			return err
		}
		if msg.Data[0] != byte(c.Rank()) {
			return fmt.Errorf("self-send corrupted")
		}
		return nil
	})
}

func TestTCPCollectives(t *testing.T) {
	const p = 4
	runTCPWorld(t, p, func(c *Comm) error {
		sum, err := c.AllreduceInt64(int64(c.Rank()+1), OpSum)
		if err != nil {
			return err
		}
		if sum != 10 {
			return fmt.Errorf("allreduce sum = %d", sum)
		}
		pre, err := c.ExscanInt64(1)
		if err != nil {
			return err
		}
		if pre != int64(c.Rank()) {
			return fmt.Errorf("exscan = %d want %d", pre, c.Rank())
		}
		send := make([][]byte, p)
		for q := range send {
			send[q] = []byte{byte(c.Rank()), byte(q)}
		}
		recv, err := c.Alltoall(send)
		if err != nil {
			return err
		}
		for q := range recv {
			if recv[q][0] != byte(q) || recv[q][1] != byte(c.Rank()) {
				return fmt.Errorf("alltoall block from %d = %v", q, recv[q])
			}
		}
		return c.Barrier()
	})
}

func TestTCPLargeMessage(t *testing.T) {
	const n = 1 << 20 // 1 MiB, crosses many bufio flushes
	runTCPWorld(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := make([]byte, n)
			for i := range buf {
				buf[i] = byte(i * 31)
			}
			return c.Send(1, 0, buf)
		}
		msg, err := c.Recv(0, 0)
		if err != nil {
			return err
		}
		if len(msg.Data) != n {
			return fmt.Errorf("len = %d", len(msg.Data))
		}
		for i, b := range msg.Data {
			if b != byte(i*31) {
				return fmt.Errorf("corruption at byte %d", i)
			}
		}
		return nil
	})
}

func TestTCPSingleRankWorld(t *testing.T) {
	tp, err := DialTCPWorld(TCPWorldConfig{Rank: 0, Addrs: []string{"127.0.0.1:0"}})
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()
	c := NewComm(tp)
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	v, err := c.AllreduceInt64(7, OpSum)
	if err != nil || v != 7 {
		t.Fatalf("allreduce on single rank: %d, %v", v, err)
	}
}

func TestTCPWorldConfigValidation(t *testing.T) {
	if _, err := DialTCPWorld(TCPWorldConfig{Rank: 0, Addrs: nil}); err == nil {
		t.Fatal("expected error for empty address list")
	}
	if _, err := DialTCPWorld(TCPWorldConfig{Rank: 3, Addrs: []string{"a", "b"}}); err == nil {
		t.Fatal("expected error for out-of-range rank")
	}
}
