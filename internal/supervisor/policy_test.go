package supervisor

import (
	"testing"
	"time"
)

func TestBackoffGrowthAndJitterBounds(t *testing.T) {
	p := Policy{BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second, Seed: 7}
	prevCeil := time.Duration(0)
	for restart := 1; restart <= 8; restart++ {
		d := p.Backoff(restart)
		// Un-jittered ceiling for this restart: base·2^(restart-1), capped.
		ceil := 100 * time.Millisecond
		for i := 1; i < restart && ceil < time.Second; i++ {
			ceil *= 2
		}
		if ceil > time.Second {
			ceil = time.Second
		}
		if d < ceil/2 || d >= ceil {
			t.Fatalf("restart %d: backoff %v outside [%v, %v)", restart, d, ceil/2, ceil)
		}
		if ceil < prevCeil {
			t.Fatalf("ceiling shrank: %v -> %v", prevCeil, ceil)
		}
		prevCeil = ceil
	}
}

func TestBackoffDeterministic(t *testing.T) {
	a := Policy{BaseBackoff: 50 * time.Millisecond, Seed: 3}
	b := Policy{BaseBackoff: 50 * time.Millisecond, Seed: 3}
	c := Policy{BaseBackoff: 50 * time.Millisecond, Seed: 4}
	differ := false
	for r := 1; r <= 5; r++ {
		if a.Backoff(r) != b.Backoff(r) {
			t.Fatalf("restart %d: same seed, different backoff", r)
		}
		if a.Backoff(r) != c.Backoff(r) {
			differ = true
		}
	}
	if !differ {
		t.Fatal("different seeds never produced different jitter")
	}
}

func TestBackoffClampsBadInput(t *testing.T) {
	var p Policy // all defaults
	if d := p.Backoff(0); d < 250*time.Millisecond || d >= 500*time.Millisecond {
		t.Fatalf("restart 0 backoff %v outside default first-restart range", d)
	}
	if d := p.Backoff(100); d >= 30*time.Second {
		t.Fatalf("huge restart count escaped MaxBackoff: %v", d)
	}
}

func TestPolicyFillDefaults(t *testing.T) {
	var p Policy
	p.fill()
	if p.MaxRestarts != 5 || p.BaseBackoff != 500*time.Millisecond ||
		p.MaxBackoff != 30*time.Second || p.DegradeAfter != 2 || p.MinRanks != 1 || p.Seed != 1 {
		t.Fatalf("unexpected defaults: %+v", p)
	}
	q := Policy{BaseBackoff: time.Minute}
	q.fill()
	if q.MaxBackoff != time.Minute {
		t.Fatalf("MaxBackoff %v not lifted to BaseBackoff", q.MaxBackoff)
	}
}
