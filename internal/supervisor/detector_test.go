package supervisor

import (
	"testing"
	"time"
)

func TestDetectorBootstrapWindow(t *testing.T) {
	d := NewDetector(DetectorConfig{MinWindow: 10 * time.Millisecond, MaxWindow: time.Second})
	t0 := time.Unix(1000, 0)
	d.Observe(0, t0)

	// With no cadence model the rank gets the full bootstrap window.
	if w := d.Window(0); w != time.Second {
		t.Fatalf("bootstrap window = %v, want MaxWindow", w)
	}
	if st := d.State(0, t0.Add(900*time.Millisecond)); st != StateSlow {
		t.Fatalf("state inside bootstrap window = %v, want slow", st)
	}
	if st := d.State(0, t0.Add(1100*time.Millisecond)); st != StateSuspect {
		t.Fatalf("state past bootstrap window = %v, want suspect", st)
	}
	// A rank never observed at all stays in bootstrap grace.
	if st := d.State(9, t0.Add(time.Hour)); st != StateAlive {
		t.Fatalf("unobserved rank state = %v, want alive", st)
	}
}

func TestDetectorAdaptiveWindow(t *testing.T) {
	d := NewDetector(DetectorConfig{MinWindow: time.Millisecond, MaxWindow: time.Hour, Phi: 8})
	t0 := time.Unix(1000, 0)
	// A steady 100ms beacon cadence.
	now := t0
	for i := 0; i < 20; i++ {
		d.Observe(0, now)
		now = now.Add(100 * time.Millisecond)
	}
	w := d.Window(0)
	// Zero-variance cadence: σ floors at mean/4, so w = mean + 8·mean/4 = 3·mean.
	if want := 300 * time.Millisecond; w != want {
		t.Fatalf("adaptive window = %v, want %v", w, want)
	}
	last := now.Add(-100 * time.Millisecond) // time of the final Observe
	if st := d.State(0, last.Add(200*time.Millisecond)); st != StateSlow {
		t.Fatalf("state at 200ms silence = %v, want slow", st)
	}
	if st := d.State(0, last.Add(301*time.Millisecond)); st != StateSuspect {
		t.Fatalf("state at 301ms silence = %v, want suspect", st)
	}

	// The window clamps to MinWindow from below...
	fast := NewDetector(DetectorConfig{MinWindow: time.Second, MaxWindow: time.Hour})
	now = t0
	for i := 0; i < 20; i++ {
		fast.Observe(0, now)
		now = now.Add(time.Millisecond)
	}
	if w := fast.Window(0); w != time.Second {
		t.Fatalf("fast cadence window = %v, want MinWindow clamp", w)
	}
	// ...and to MaxWindow from above.
	slow := NewDetector(DetectorConfig{MinWindow: time.Millisecond, MaxWindow: 2 * time.Second})
	now = t0
	for i := 0; i < 20; i++ {
		slow.Observe(0, now)
		now = now.Add(10 * time.Second)
	}
	if w := slow.Window(0); w != 2*time.Second {
		t.Fatalf("slow cadence window = %v, want MaxWindow clamp", w)
	}
}

func TestDetectorDoneExemption(t *testing.T) {
	d := NewDetector(DetectorConfig{MinWindow: time.Millisecond, MaxWindow: 50 * time.Millisecond})
	t0 := time.Unix(1000, 0)
	d.Observe(0, t0)
	d.Done(1, t0)

	late := t0.Add(time.Hour)
	if st := d.State(1, late); st != StateDone {
		t.Fatalf("done rank state = %v, want done", st)
	}
	sus := d.Suspects(late)
	if len(sus) != 1 || sus[0].Rank != 0 {
		t.Fatalf("suspects = %v, want only rank 0", sus)
	}
}

func TestDetectorSuspectsSortedAndReset(t *testing.T) {
	d := NewDetector(DetectorConfig{MinWindow: time.Millisecond, MaxWindow: 10 * time.Millisecond})
	t0 := time.Unix(1000, 0)
	for _, r := range []int{5, 1, 3} {
		d.Observe(r, t0)
	}
	sus := d.Suspects(t0.Add(time.Minute))
	if len(sus) != 3 {
		t.Fatalf("suspects = %v, want 3", sus)
	}
	for i, want := range []int{1, 3, 5} {
		if sus[i].Rank != want {
			t.Fatalf("suspects order = %v, want ranks 1,3,5", sus)
		}
		if sus[i].Silent < time.Minute || sus[i].Window <= 0 {
			t.Fatalf("suspect diagnostics incomplete: %+v", sus[i])
		}
	}

	d.Reset()
	if sus := d.Suspects(t0.Add(time.Hour)); len(sus) != 0 {
		t.Fatalf("suspects after reset = %v, want none", sus)
	}
}

func TestDetectorCondemnedIncludesEarlierSilentHanger(t *testing.T) {
	// Regression for the post-mortem mis-attribution flake: rank 0 hangs
	// while still in bootstrap (wide MaxWindow), so its blocked victim —
	// rank 1, with a tight learned cadence — crosses into Suspect first.
	// Suspects alone blames only the victim; Condemned must lead with the
	// earlier-silent hanger.
	d := NewDetector(DetectorConfig{MinWindow: time.Millisecond, MaxWindow: 10 * time.Second, Phi: 8})
	t0 := time.Unix(1000, 0)

	// Rank 0: two beacons only — no cadence model, bootstrap window 10s.
	d.Observe(0, t0)
	d.Observe(0, t0.Add(100*time.Millisecond)) // last heard 100ms in

	// Rank 1: steady 100ms cadence → adaptive window 300ms (3·mean).
	now := t0
	for i := 0; i < 20; i++ {
		d.Observe(1, now)
		now = now.Add(100 * time.Millisecond)
	}
	last1 := now.Add(-100 * time.Millisecond) // t0 + 1.9s

	// Rank 2: same cadence but still beaconing — must never be condemned.
	now = t0
	for i := 0; i < 30; i++ {
		d.Observe(2, now)
		now = now.Add(100 * time.Millisecond)
	}
	last2 := now.Add(-100 * time.Millisecond) // t0 + 2.9s

	// No suspect yet: Condemned stays empty even though rank 0 has been
	// silent for ages relative to the others.
	if c := d.Condemned(last1.Add(100 * time.Millisecond)); len(c) != 0 {
		t.Fatalf("condemned before any suspect = %v, want none", c)
	}

	probe := t0.Add(3 * time.Second)
	// Sanity: at probe, rank 1 (silent 1.1s > 300ms) is Suspect, rank 0
	// (silent 2.9s < 10s bootstrap) is not.
	sus := d.Suspects(probe)
	if len(sus) != 1 || sus[0].Rank != 1 {
		t.Fatalf("suspects = %v, want only the victim rank 1", sus)
	}
	if st := d.State(0, probe); st == StateSuspect {
		t.Fatalf("hanger unexpectedly crossed its own window; scenario broken")
	}

	con := d.Condemned(probe)
	if len(con) != 2 || con[0].Rank != 0 || con[1].Rank != 1 {
		t.Fatalf("condemned = %v, want hanger rank 0 first then victim rank 1", con)
	}
	if con[0].Silent <= con[1].Silent {
		t.Fatalf("hanger silence %v not longer than victim's %v", con[0].Silent, con[1].Silent)
	}
	for _, s := range con {
		if s.Rank == 2 {
			t.Fatalf("live, recently-beaconing rank 2 condemned: %v (silent since %v)", con, probe.Sub(last2))
		}
	}

	// A done rank silent since forever is still exempt.
	d.Done(3, t0)
	for _, s := range d.Condemned(probe) {
		if s.Rank == 3 {
			t.Fatalf("done rank condemned: %v", d.Condemned(probe))
		}
	}
}

func TestDetectorCondemnedIncludesMidGapHanger(t *testing.T) {
	// Regression for the residual mis-attribution case: the hanger beacons
	// right before freezing while its victim sits mid-gap, so the victim's
	// silence is a hair *longer* — a silent >= maxSilent cut would omit the
	// actual death site. The hanger's irregular cadence gives it a wide
	// adaptive window, so it is not Suspect on its own when the victim
	// crosses.
	d := NewDetector(DetectorConfig{MinWindow: time.Millisecond, MaxWindow: 30 * time.Second, Phi: 8})
	t0 := time.Unix(1000, 0)

	// Rank 0 (hanger): alternating 100ms / 1s gaps — mean 550ms, high
	// variance, adaptive window ~4s. Last beacon at freeze onset.
	now := t0
	for i := 0; i < 20; i++ {
		d.Observe(0, now)
		if i%2 == 0 {
			now = now.Add(100 * time.Millisecond)
		} else {
			now = now.Add(time.Second)
		}
	}
	last0 := now.Add(-time.Second) // the hanger's final beacon

	// Rank 1 (victim): steady 100ms cadence → window 300ms. Its last beacon
	// lands 50ms before the hanger's — it was mid-gap, blocked in the
	// collective the hanger never reached.
	now = last0.Add(-1950 * time.Millisecond)
	for i := 0; i < 20; i++ {
		d.Observe(1, now)
		now = now.Add(100 * time.Millisecond)
	}
	last1 := now.Add(-100 * time.Millisecond)
	if got := last0.Sub(last1); got != 50*time.Millisecond {
		t.Fatalf("scenario arithmetic: hanger last %v after victim last, want 50ms", got)
	}

	probe := last0.Add(1200 * time.Millisecond)

	// Rank 2 (healthy): steady 100ms cadence right up to the probe.
	now = t0
	for !now.After(probe.Add(-50 * time.Millisecond)) {
		d.Observe(2, now)
		now = now.Add(100 * time.Millisecond)
	}

	// Sanity: only the victim has crossed its own window; the hanger is the
	// *less* silent of the two dead ranks.
	sus := d.Suspects(probe)
	if len(sus) != 1 || sus[0].Rank != 1 {
		t.Fatalf("suspects = %v, want only the victim rank 1", sus)
	}
	if st := d.State(0, probe); st == StateSuspect {
		t.Fatalf("hanger crossed its own window; scenario broken")
	}

	con := d.Condemned(probe)
	if len(con) != 2 || con[0].Rank != 1 || con[1].Rank != 0 {
		t.Fatalf("condemned = %v, want victim rank 1 then mid-gap hanger rank 0", con)
	}
	for _, s := range con {
		if s.Rank == 2 {
			t.Fatalf("healthy beaconing rank 2 condemned: %v", con)
		}
	}
}

func TestDetectorWindowReadaptsAfterRegimeChange(t *testing.T) {
	// A cadence that abruptly becomes 10x cheaper (coarsened graph) must
	// shrink the window once the sliding window rolls over.
	d := NewDetector(DetectorConfig{MinWindow: time.Millisecond, MaxWindow: time.Hour, Samples: 8})
	now := time.Unix(1000, 0)
	for i := 0; i < 10; i++ {
		d.Observe(0, now)
		now = now.Add(time.Second)
	}
	wide := d.Window(0)
	for i := 0; i < 10; i++ {
		d.Observe(0, now)
		now = now.Add(100 * time.Millisecond)
	}
	narrow := d.Window(0)
	if narrow >= wide {
		t.Fatalf("window did not re-adapt: %v -> %v", wide, narrow)
	}
}
