package supervisor

import (
	"time"

	"distlouvain/internal/backoff"
)

// Policy governs how the supervisor restarts a failed world: how many times,
// how long to wait between attempts, and when to give up on the current rank
// count and degrade to a smaller world.
type Policy struct {
	// MaxRestarts is the relaunch budget for the whole run; exceeding it
	// fails the run with an ExhaustedError. ≤0 selects 5.
	MaxRestarts int
	// BaseBackoff is the first restart delay; each further consecutive
	// failure doubles it up to MaxBackoff, with uniform jitter in
	// [d/2, d) so relaunching ranks don't stampede shared infrastructure.
	// ≤0 selects 500ms (and 30s for MaxBackoff).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// DegradeAfter is the number of consecutive failures at one rank count
	// after which the supervisor concludes the world cannot come back at
	// that size and shrinks it by one rank (elastic resume re-splits the
	// checkpoint). ≤0 selects 2.
	DegradeAfter int
	// MinRanks floors the degradation; needing to shrink below it fails
	// the run with a MinRanksError. ≤0 selects 1.
	MinRanks int
	// Seed drives the jitter stream; runs with equal seeds back off
	// identically (0 selects 1).
	Seed uint64
}

func (p *Policy) fill() {
	if p.MaxRestarts <= 0 {
		p.MaxRestarts = 5
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 500 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 30 * time.Second
	}
	if p.MaxBackoff < p.BaseBackoff {
		p.MaxBackoff = p.BaseBackoff
	}
	if p.DegradeAfter <= 0 {
		p.DegradeAfter = 2
	}
	if p.MinRanks <= 0 {
		p.MinRanks = 1
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
}

// Backoff returns the jittered delay before restart number `restart`
// (1-based), counted over consecutive failures: BaseBackoff doubling per
// restart, capped at MaxBackoff, jittered uniformly into [d/2, d). The
// value is deterministic in (Seed, restart); the schedule itself lives in
// the shared internal/backoff package.
func (p Policy) Backoff(restart int) time.Duration {
	p.fill()
	return backoff.Policy{Base: p.BaseBackoff, Max: p.MaxBackoff, Seed: p.Seed}.Delay(restart)
}
