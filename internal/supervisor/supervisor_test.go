package supervisor

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// errTransient marks scripted failures the test classifier calls retryable.
var errTransient = errors.New("transient world failure")

// fakeAttempt is a scripted Attempt for supervision-loop tests.
type fakeAttempt struct {
	err         error
	release     chan struct{} // Wait blocks until closed; nil returns at once
	killed      atomic.Bool
	interrupted atomic.Bool
	killErr     error // error to report when killed mid-wait
}

func (a *fakeAttempt) Wait() error {
	if a.release != nil {
		<-a.release
	}
	if a.killed.Load() && a.killErr != nil {
		return a.killErr
	}
	return a.err
}

func (a *fakeAttempt) Kill() {
	a.killed.Store(true)
	if a.release != nil {
		select {
		case <-a.release:
		default:
			close(a.release)
		}
	}
}

func (a *fakeAttempt) Interrupt() {
	a.interrupted.Store(true)
	if a.release != nil {
		select {
		case <-a.release:
		default:
			close(a.release)
		}
	}
}

// fakeLauncher hands out scripted attempts in order and records the specs it
// was launched with.
type fakeLauncher struct {
	mu       sync.Mutex
	attempts []*fakeAttempt
	specs    []LaunchSpec
	sinks    []func(Beacon)
}

func (l *fakeLauncher) Launch(spec LaunchSpec, beacons func(Beacon)) (Attempt, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.specs) >= len(l.attempts) {
		return nil, fmt.Errorf("unscripted launch %d", len(l.specs))
	}
	a := l.attempts[len(l.specs)]
	l.specs = append(l.specs, spec)
	l.sinks = append(l.sinks, beacons)
	return a, nil
}

func (l *fakeLauncher) launched() []LaunchSpec {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]LaunchSpec(nil), l.specs...)
}

func fastOptions() Options {
	return Options{
		Policy: Policy{
			MaxRestarts:  3,
			BaseBackoff:  time.Millisecond,
			MaxBackoff:   2 * time.Millisecond,
			DegradeAfter: 2,
			MinRanks:     1,
		},
		Detector:  DetectorConfig{MinWindow: time.Hour, MaxWindow: time.Hour},
		Poll:      time.Millisecond,
		Retryable: func(err error) bool { return errors.Is(err, errTransient) },
	}
}

func TestSupervisorFirstAttemptSucceeds(t *testing.T) {
	l := &fakeLauncher{attempts: []*fakeAttempt{{}}}
	if err := New(l, fastOptions()).Run(4, false); err != nil {
		t.Fatal(err)
	}
	specs := l.launched()
	if len(specs) != 1 || specs[0].Ranks != 4 || specs[0].Resume || specs[0].Attempt != 0 {
		t.Fatalf("specs = %+v", specs)
	}
}

func TestSupervisorRetriesThenResumes(t *testing.T) {
	l := &fakeLauncher{attempts: []*fakeAttempt{{err: errTransient}, {}}}
	opt := fastOptions()
	opt.HasCheckpoint = func() bool { return true }
	if err := New(l, opt).Run(4, false); err != nil {
		t.Fatal(err)
	}
	specs := l.launched()
	if len(specs) != 2 {
		t.Fatalf("launches = %d, want 2", len(specs))
	}
	if specs[0].Resume {
		t.Fatal("first attempt should not resume")
	}
	if !specs[1].Resume {
		t.Fatal("relaunch after failure must resume from the checkpoint")
	}
	if specs[1].Ranks != 4 {
		t.Fatalf("one failure must not degrade: ranks = %d", specs[1].Ranks)
	}
	if specs[1].Attempt != 1 {
		t.Fatalf("attempt counter = %d, want 1", specs[1].Attempt)
	}
}

func TestSupervisorFatalErrorStops(t *testing.T) {
	bug := errors.New("deterministic bug")
	l := &fakeLauncher{attempts: []*fakeAttempt{{err: bug}}}
	err := New(l, fastOptions()).Run(4, false)
	if !errors.Is(err, bug) {
		t.Fatalf("err = %v, want the fatal cause", err)
	}
	if n := len(l.launched()); n != 1 {
		t.Fatalf("fatal error relaunched %d times", n)
	}
}

func TestSupervisorBudgetExhaustion(t *testing.T) {
	// MaxRestarts 3 and DegradeAfter large: 4 attempts total, all failing.
	l := &fakeLauncher{attempts: []*fakeAttempt{
		{err: errTransient}, {err: errTransient}, {err: errTransient}, {err: errTransient},
	}}
	opt := fastOptions()
	opt.Policy.DegradeAfter = 100
	err := New(l, opt).Run(4, false)
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want *ExhaustedError", err)
	}
	if ex.Restarts != 3 || !errors.Is(ex, errTransient) {
		t.Fatalf("exhausted = %+v", ex)
	}
	if n := len(l.launched()); n != 4 {
		t.Fatalf("launches = %d, want 4", n)
	}
}

func TestSupervisorDegradesThenHitsFloor(t *testing.T) {
	fails := make([]*fakeAttempt, 6)
	for i := range fails {
		fails[i] = &fakeAttempt{err: errTransient}
	}
	l := &fakeLauncher{attempts: fails}
	opt := fastOptions()
	opt.Policy.MaxRestarts = 100
	opt.Policy.DegradeAfter = 2
	opt.Policy.MinRanks = 3
	err := New(l, opt).Run(4, false)
	var mr *MinRanksError
	if !errors.As(err, &mr) {
		t.Fatalf("err = %v, want *MinRanksError", err)
	}
	if mr.Ranks != 3 || mr.MinRanks != 3 {
		t.Fatalf("floor diagnostics = %+v", mr)
	}
	specs := l.launched()
	// 2 failures at 4 ranks, degrade, 2 failures at 3 ranks, floor hit.
	if len(specs) != 4 {
		t.Fatalf("launches = %d, want 4 (%+v)", len(specs), specs)
	}
	if specs[2].Ranks != 3 || specs[3].Ranks != 3 {
		t.Fatalf("degraded specs = %+v", specs)
	}
}

func TestSupervisorKillsHungWorldAndRetries(t *testing.T) {
	collateral := errors.New("torn down") // NOT retryable by the classifier
	hung := &fakeAttempt{release: make(chan struct{}), killErr: collateral}
	l := &fakeLauncher{attempts: []*fakeAttempt{hung, {}}}
	opt := fastOptions()
	// Tiny bootstrap window: the hung attempt never beacons, so the seed
	// observations age out and the detector condemns every rank.
	opt.Detector = DetectorConfig{MinWindow: time.Millisecond, MaxWindow: 20 * time.Millisecond}
	if err := New(l, opt).Run(2, false); err != nil {
		t.Fatal(err)
	}
	if !hung.killed.Load() {
		t.Fatal("hung attempt was never killed")
	}
	if n := len(l.launched()); n != 2 {
		t.Fatalf("launches = %d, want 2 (hang must be retryable despite the classifier)", n)
	}
}

func TestSupervisorBeaconsKeepSlowWorldAlive(t *testing.T) {
	slow := &fakeAttempt{release: make(chan struct{})}
	l := &fakeLauncher{attempts: []*fakeAttempt{slow}}
	opt := fastOptions()
	opt.Detector = DetectorConfig{MinWindow: time.Millisecond, MaxWindow: 30 * time.Millisecond}
	sup := New(l, opt)

	done := make(chan error, 1)
	go func() { done <- sup.Run(1, false) }()
	// Beacon steadily for 10 windows, then finish cleanly.
	for i := 0; i < 60; i++ {
		time.Sleep(5 * time.Millisecond)
		l.mu.Lock()
		if len(l.sinks) > 0 {
			l.sinks[0](Beacon{Rank: 0, Kind: KindIteration, Iteration: i})
		}
		l.mu.Unlock()
	}
	close(slow.release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if slow.killed.Load() {
		t.Fatal("beaconing world was killed as hung")
	}
	if n := len(l.launched()); n != 1 {
		t.Fatalf("launches = %d, want 1", n)
	}
}

func TestSupervisorInterruptStopsRestarting(t *testing.T) {
	// The attempt fails retryably when interrupted; without the interrupt
	// the supervisor would relaunch.
	att := &fakeAttempt{release: make(chan struct{}), err: errTransient}
	l := &fakeLauncher{attempts: []*fakeAttempt{att}}
	opt := fastOptions()
	opt.HasCheckpoint = func() bool { return true }
	sup := New(l, opt)

	done := make(chan error, 1)
	go func() { done <- sup.Run(2, false) }()
	for {
		l.mu.Lock()
		n := len(l.specs)
		l.mu.Unlock()
		if n > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	sup.Interrupt()
	err := <-done
	if !errors.Is(err, errTransient) {
		t.Fatalf("err = %v, want the attempt's retryable error surfaced", err)
	}
	if !att.interrupted.Load() {
		t.Fatal("attempt never received the interrupt")
	}
	if n := len(l.launched()); n != 1 {
		t.Fatalf("interrupted run relaunched %d times", n)
	}
}

func TestSupervisorAbortKillsAndStopsRestarting(t *testing.T) {
	// The attempt would fail retryably when killed; without the abort the
	// supervisor would relaunch it from the checkpoint.
	att := &fakeAttempt{release: make(chan struct{}), killErr: errTransient}
	l := &fakeLauncher{attempts: []*fakeAttempt{att}}
	opt := fastOptions()
	opt.HasCheckpoint = func() bool { return true }
	sup := New(l, opt)

	done := make(chan error, 1)
	go func() { done <- sup.Run(2, false) }()
	for {
		l.mu.Lock()
		n := len(l.specs)
		l.mu.Unlock()
		if n > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	sup.Abort()
	err := <-done
	if !errors.Is(err, errTransient) {
		t.Fatalf("err = %v, want the killed attempt's error surfaced", err)
	}
	if !att.killed.Load() {
		t.Fatal("abort never killed the attempt")
	}
	if att.interrupted.Load() {
		t.Fatal("abort must kill, not gracefully interrupt")
	}
	if n := len(l.launched()); n != 1 {
		t.Fatalf("aborted run relaunched %d times", n)
	}
}

func TestSupervisorAbortBeforeLaunchKillsOnArrival(t *testing.T) {
	// Abort lands before the (slow) launch completes: the supervisor must
	// re-deliver the kill to the attempt it was handed.
	att := &fakeAttempt{release: make(chan struct{}), killErr: errTransient}
	launchStarted := make(chan struct{})
	launchGate := make(chan struct{})
	l := &gatedLauncher{att: att, started: launchStarted, gate: launchGate}
	sup := New(l, fastOptions())

	done := make(chan error, 1)
	go func() { done <- sup.Run(2, false) }()
	<-launchStarted
	sup.Abort() // current attempt is still nil; only the flag is set
	close(launchGate)
	if err := <-done; !errors.Is(err, errTransient) {
		t.Fatalf("err = %v, want the killed attempt's error", err)
	}
	if !att.killed.Load() {
		t.Fatal("abort flag set before launch was not re-delivered as a kill")
	}
}

// gatedLauncher blocks Launch until its gate opens, to race supervisor
// signals against an in-flight launch.
type gatedLauncher struct {
	att     *fakeAttempt
	started chan struct{}
	gate    chan struct{}
	once    sync.Once
}

func (l *gatedLauncher) Launch(spec LaunchSpec, beacons func(Beacon)) (Attempt, error) {
	l.once.Do(func() { close(l.started) })
	<-l.gate
	return l.att, nil
}

func TestSupervisorOnAttemptObservesEveryLaunch(t *testing.T) {
	l := &fakeLauncher{attempts: []*fakeAttempt{{err: errTransient}, {err: errTransient}, {}}}
	opt := fastOptions()
	opt.Policy.DegradeAfter = 2
	opt.Policy.MinRanks = 1
	opt.HasCheckpoint = func() bool { return true }
	var mu sync.Mutex
	var seen []LaunchSpec
	opt.OnAttempt = func(spec LaunchSpec) {
		mu.Lock()
		seen = append(seen, spec)
		mu.Unlock()
	}
	if err := New(l, opt).Run(3, false); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 3 {
		t.Fatalf("OnAttempt saw %d launches, want 3 (%+v)", len(seen), seen)
	}
	if seen[0].Ranks != 3 || seen[1].Ranks != 3 {
		t.Fatalf("first two attempts should run at the admitted size: %+v", seen)
	}
	// Two consecutive failures at 3 ranks degrade the third attempt — the
	// budget observer must see the shrunken world.
	if seen[2].Ranks != 2 || !seen[2].Resume {
		t.Fatalf("degraded attempt not observed: %+v", seen[2])
	}
}
