package supervisor

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sync"
	"time"
)

// maxBeaconLine bounds one wire beacon; anything longer is a corrupt or
// hostile stream and drops the connection.
const maxBeaconLine = 4096

// BeaconServer accepts control-channel connections from rank processes and
// feeds their decoded beacons to a sink. One server serves a whole world;
// ranks connect independently and their streams are multiplexed by the Rank
// field each beacon carries.
type BeaconServer struct {
	ln   net.Listener
	sink func(Beacon)

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// ListenBeacons starts a beacon server on addr ("" selects an ephemeral
// loopback port) delivering decoded beacons to sink. sink is called from
// connection-reader goroutines and must be safe for concurrent use.
func ListenBeacons(addr string, sink func(Beacon)) (*BeaconServer, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("supervisor: beacon listen %s: %w", addr, err)
	}
	s := &BeaconServer{ln: ln, sink: sink, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the address rank processes should dial (the EnvBeaconAddr
// value a supervising parent exports).
func (s *BeaconServer) Addr() string { return s.ln.Addr().String() }

func (s *BeaconServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.readLoop(conn)
	}
}

// readLoop decodes newline-delimited JSON beacons from one rank connection.
// Malformed lines are skipped rather than fatal: a beacon stream is advisory
// — losing it must never be able to take down a healthy computation.
func (s *BeaconServer) readLoop(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 512), maxBeaconLine)
	for sc.Scan() {
		var b Beacon
		if err := json.Unmarshal(sc.Bytes(), &b); err != nil {
			continue
		}
		s.sink(b)
	}
}

// Close stops accepting and tears down every rank connection.
func (s *BeaconServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

// Emitter is the rank-side end of the control channel: it writes one JSON
// line per beacon. All methods are best-effort — a broken control channel
// silences the rank's beacons (the supervisor will eventually treat it as
// hung) but never fails the computation itself.
type Emitter struct {
	mu   sync.Mutex
	conn net.Conn
	bw   *bufio.Writer
	dead bool
}

// DialBeacons connects to a supervising parent's beacon server.
func DialBeacons(addr string) (*Emitter, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("supervisor: dial beacon server %s: %w", addr, err)
	}
	return &Emitter{conn: conn, bw: bufio.NewWriterSize(conn, 1024)}, nil
}

// Emit sends one beacon, stamping this process's PID. Safe for concurrent
// use; errors permanently silence the emitter instead of propagating.
func (e *Emitter) Emit(b Beacon) {
	if b.PID == 0 {
		b.PID = os.Getpid()
	}
	data, err := json.Marshal(b)
	if err != nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dead {
		return
	}
	if _, err := e.bw.Write(append(data, '\n')); err != nil {
		e.dead = true
		return
	}
	if err := e.bw.Flush(); err != nil {
		e.dead = true
	}
}

// Close flushes and closes the control channel.
func (e *Emitter) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.dead {
		e.bw.Flush()
	}
	e.dead = true
	e.conn.Close()
}
