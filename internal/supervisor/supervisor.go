package supervisor

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// LaunchSpec describes one attempt the supervisor asks a Launcher to start.
type LaunchSpec struct {
	Ranks  int  // world size of this attempt (may shrink across attempts)
	Resume bool // continue from the latest committed checkpoint
	// Attempt counts attempts from 0. Launchers use it to scope
	// first-attempt-only behaviour (fault injection, chaos triggers).
	Attempt int
}

// Attempt is one running world under supervision.
type Attempt interface {
	// Wait blocks until every rank has terminated and returns nil on
	// success or the most meaningful failure (root cause preferred over
	// teardown collateral).
	Wait() error
	// Kill hard-stops every rank (SIGKILL for processes, closing the
	// world for goroutine ranks). Wait returns afterwards. Idempotent.
	Kill()
	// Interrupt requests a graceful stop: ranks checkpoint at the next
	// phase boundary and exit retryable. Idempotent.
	Interrupt()
}

// Launcher starts attempts of a world. Implementations exist for in-process
// goroutine worlds and tcp-local child-process worlds; tests substitute
// scripted fakes. The beacons sink must receive every rank beacon the
// attempt produces and is safe for concurrent use; the launcher must not
// call it after Wait has returned.
type Launcher interface {
	Launch(spec LaunchSpec, beacons func(Beacon)) (Attempt, error)
}

// Options tunes a Supervisor beyond its restart Policy.
type Options struct {
	Policy   Policy
	Detector DetectorConfig
	// Poll is the cadence at which the supervision loop consults the
	// failure detector while an attempt runs. ≤0 selects 250ms.
	Poll time.Duration
	// Retryable classifies attempt errors: true means the failure is
	// transient (crashed peer, expired deadline, interrupt) and the world
	// should relaunch from the latest checkpoint. nil treats every error
	// as fatal. Supervisor-ordered kills are always retryable regardless.
	Retryable func(error) bool
	// HasCheckpoint reports whether a committed checkpoint exists; it
	// decides whether a relaunch resumes or restarts from scratch. nil
	// means restart from scratch.
	HasCheckpoint func() bool
	// Logf receives supervision progress lines; nil discards them.
	Logf func(format string, args ...any)
	// OnBeacon observes every beacon after the detector has (verbose
	// progress displays); nil disables.
	OnBeacon func(Beacon)
	// PostMortem, when set, is asked for a condemned rank's last recorded
	// activity (e.g. its tracer's span tail) right after a hang kill; each
	// returned line is logged. In-process launchers that hold the ranks'
	// tracers wire this up; nil disables.
	PostMortem func(rank int) []string
	// OnRestart observes every relaunch decision before its backoff sleep:
	// restarts consumed so far, the next attempt's rank count, whether it
	// will resume from a checkpoint, and the failure that caused it. nil
	// disables. Metrics registries use it to mark generation boundaries.
	OnRestart func(restarts, ranks int, resume bool, cause error)
	// OnAttempt observes every attempt right before its launch, including
	// the first. Schedulers that admit supervised worlds against a shared
	// rank budget use it to track the ACTUAL world size of each attempt —
	// degradation shrinks it below the admitted size, and the freed ranks
	// can be re-granted elsewhere. nil disables.
	OnAttempt func(spec LaunchSpec)
}

// HangError reports a world the supervisor killed because its beacons went
// silent: the detector's condemned ranks plus whatever error the teardown
// surfaced. It is always retryable.
type HangError struct {
	Suspects []Suspect
	Cause    error // world error observed after the kill, if any
}

func (e *HangError) Error() string {
	parts := make([]string, len(e.Suspects))
	for i, s := range e.Suspects {
		parts[i] = s.String()
	}
	msg := "supervisor: world hung: " + strings.Join(parts, "; ")
	if e.Cause != nil {
		msg += fmt.Sprintf(" (world reported after kill: %v)", e.Cause)
	}
	return msg
}

func (e *HangError) Unwrap() error { return e.Cause }

// ExhaustedError reports a run that failed more times than the restart
// budget allows. It is fatal: an operator must look at the recurring cause.
type ExhaustedError struct {
	Restarts int   // restarts consumed (== Policy.MaxRestarts)
	Last     error // the failure that broke the budget
}

func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("supervisor: restart budget exhausted (%d restarts used); last failure: %v", e.Restarts, e.Last)
}

func (e *ExhaustedError) Unwrap() error { return e.Last }

// MinRanksError reports a world that kept failing until degrading further
// would violate the configured rank floor. It is fatal.
type MinRanksError struct {
	Ranks    int   // rank count that kept failing
	MinRanks int   // the floor that blocked further degradation
	Last     error // the failure that forced the decision
}

func (e *MinRanksError) Error() string {
	return fmt.Sprintf("supervisor: world keeps failing at %d ranks and degrading further would violate the %d-rank floor; last failure: %v", e.Ranks, e.MinRanks, e.Last)
}

func (e *MinRanksError) Unwrap() error { return e.Last }

// Supervisor drives a world of ranks to completion without operator
// intervention: launch, watch beacons, kill hung worlds, relaunch retryable
// failures from the latest checkpoint with backoff, degrade the rank count
// when a size repeatedly fails, and give up with a precise diagnosis when
// the budget runs out.
type Supervisor struct {
	launcher Launcher
	opt      Options
	det      *Detector

	mu       sync.Mutex
	cur      Attempt
	gen      int // attempt generation; stale beacon sinks are ignored
	stopping bool
	aborting bool // hard abort: kill, don't wait for a checkpoint
	last     map[int]Beacon // latest beacon per rank, current attempt only
}

// New builds a supervisor over the given launcher.
func New(l Launcher, opt Options) *Supervisor {
	opt.Policy.fill()
	opt.Detector.fill()
	if opt.Poll <= 0 {
		opt.Poll = 250 * time.Millisecond
	}
	return &Supervisor{launcher: l, opt: opt, det: NewDetector(opt.Detector)}
}

// Interrupt requests a graceful shutdown of the supervised run: the current
// attempt is asked to checkpoint and exit, and no further restarts happen.
// Run then returns the attempt's (retryable) error so the caller can report
// a resumable exit.
func (s *Supervisor) Interrupt() {
	s.mu.Lock()
	s.stopping = true
	att := s.cur
	s.mu.Unlock()
	s.logf("supervisor: interrupt requested; stopping after the current attempt")
	if att != nil {
		att.Interrupt()
	}
}

// Abort hard-stops the supervised run: the current attempt is killed without
// waiting for a phase boundary and no further restarts happen. Run returns
// the killed attempt's error. Unlike Interrupt, Abort does not leave a fresh
// checkpoint — whatever the run last committed is what a later resume gets.
// Job schedulers use it to reclaim a world's ranks immediately (a queued job
// is waiting for them); operators cancelling a run they still want to finish
// later should prefer Interrupt.
func (s *Supervisor) Abort() {
	s.mu.Lock()
	s.stopping = true
	s.aborting = true
	att := s.cur
	s.mu.Unlock()
	s.logf("supervisor: abort requested; killing the current attempt")
	if att != nil {
		att.Kill()
	}
}

func (s *Supervisor) logf(format string, args ...any) {
	if s.opt.Logf != nil {
		s.opt.Logf(format, args...)
	}
}

// Run supervises the world to completion, starting at `ranks` ranks, with
// the first attempt resuming iff resume is set. It returns nil once an
// attempt completes, the attempt's error when it is fatal or an interrupt
// stopped the run, an *ExhaustedError when the restart budget runs out, or
// a *MinRanksError when degradation hits the rank floor.
func (s *Supervisor) Run(ranks int, resume bool) error {
	pol := s.opt.Policy
	restarts := 0 // total relaunches consumed (budget)
	consec := 0   // consecutive failures at the current rank count
	for {
		s.det.Reset()
		spec := LaunchSpec{Ranks: ranks, Resume: resume, Attempt: restarts + 0}
		s.mu.Lock()
		s.gen++
		gen := s.gen
		s.last = make(map[int]Beacon, ranks)
		s.mu.Unlock()
		now := time.Now()
		for r := 0; r < ranks; r++ {
			// Bootstrap observation: a world that never beacons at all is
			// condemned once the bootstrap window expires.
			s.det.Observe(r, now)
		}
		s.logf("supervisor: attempt %d: launching %d ranks (resume=%v)", spec.Attempt, ranks, resume)
		if s.opt.OnAttempt != nil {
			s.opt.OnAttempt(spec)
		}
		att, err := s.launcher.Launch(spec, func(b Beacon) { s.observe(gen, b) })
		var aerr error
		var hung bool
		if err != nil {
			aerr = fmt.Errorf("supervisor: launch: %w", err)
		} else {
			s.mu.Lock()
			s.cur = att
			stopping, aborting := s.stopping, s.aborting
			s.mu.Unlock()
			if aborting {
				att.Kill() // abort raced the launch; re-deliver
			} else if stopping {
				att.Interrupt() // interrupt raced the launch; re-deliver
			}
			aerr, hung = s.monitor(att)
			s.mu.Lock()
			s.cur = nil
			s.mu.Unlock()
		}
		if aerr == nil {
			s.logf("supervisor: world completed after %d restart(s)", restarts)
			return nil
		}
		s.mu.Lock()
		stopping := s.stopping
		s.mu.Unlock()
		if stopping {
			s.logf("supervisor: stopped by interrupt: %v", aerr)
			return aerr
		}
		if !hung && (s.opt.Retryable == nil || !s.opt.Retryable(aerr)) {
			s.logf("supervisor: fatal failure, not restarting: %v", aerr)
			return aerr
		}
		if restarts >= pol.MaxRestarts {
			return &ExhaustedError{Restarts: restarts, Last: aerr}
		}
		restarts++
		consec++
		if consec >= pol.DegradeAfter {
			if ranks-1 < pol.MinRanks {
				return &MinRanksError{Ranks: ranks, MinRanks: pol.MinRanks, Last: aerr}
			}
			ranks--
			consec = 0
			s.logf("supervisor: world failed %d times in a row at this size; degrading to %d ranks", pol.DegradeAfter, ranks)
		}
		d := pol.Backoff(consec + 1)
		s.logf("supervisor: restart %d/%d in %v (cause: %v)", restarts, pol.MaxRestarts, d.Round(time.Millisecond), aerr)
		resume = s.opt.HasCheckpoint != nil && s.opt.HasCheckpoint()
		if s.opt.OnRestart != nil {
			s.opt.OnRestart(restarts, ranks, resume, aerr)
		}
		time.Sleep(d)
	}
}

// observe feeds one beacon into the failure detector, dropping beacons from
// a previous attempt's world that arrive after its teardown.
func (s *Supervisor) observe(gen int, b Beacon) {
	s.mu.Lock()
	stale := gen != s.gen
	if !stale {
		s.last[b.Rank] = b
	}
	s.mu.Unlock()
	if stale {
		return
	}
	now := time.Now()
	if b.Kind == KindDone {
		s.det.Done(b.Rank, now)
	} else {
		s.det.Observe(b.Rank, now)
	}
	if s.opt.OnBeacon != nil {
		s.opt.OnBeacon(b)
	}
}

// monitor waits for the attempt while polling the failure detector; a
// condemned rank gets the whole world killed and the failure reported as a
// (retryable) HangError.
func (s *Supervisor) monitor(att Attempt) (error, bool) {
	done := make(chan error, 1)
	go func() { done <- att.Wait() }()
	tick := time.NewTicker(s.opt.Poll)
	defer tick.Stop()
	// pendingSince is when the current uninterrupted run of hang verdicts
	// began; zero while the detector is happy.
	var pendingSince time.Time
	for {
		select {
		case err := <-done:
			return err, false
		case <-tick.C:
			// Condemned, not Suspects: the hang diagnosis must lead with the
			// earliest-silent rank (the likely root cause) even when its
			// adaptive window is wider than its blocked victims' and it has
			// therefore not technically crossed into Suspect yet.
			now := time.Now()
			sus := s.det.Condemned(now)
			if len(sus) == 0 {
				pendingSince = time.Time{}
				continue
			}
			// Confirmation grace: a hang verdict must survive continued
			// polling for half the narrowest condemned window before the
			// kill. A world that stalls past a window and then recovers (a
			// slow checkpoint fence, an I/O hiccup, scheduler pressure on a
			// loaded machine) beacons during the grace, the verdict clears,
			// and nothing is killed — a real hang only gets its kill ~1.5
			// windows after the last beacon instead of 1.
			if pendingSince.IsZero() {
				pendingSince = now
				continue
			}
			grace := sus[0].Window
			for _, u := range sus[1:] {
				if u.Window < grace {
					grace = u.Window
				}
			}
			if now.Sub(pendingSince) < grace/2 {
				continue
			}
			for i := range sus {
				if b, ok := s.lastBeacon(sus[i].Rank); ok {
					sus[i].LastSpan = b.Span
				}
			}
			he := &HangError{Suspects: sus}
			s.logf("%v; killing the world", he)
			// The kill takes the whole world, so the post-mortem covers
			// every live rank, not just the condemned ones: the rank that
			// caused the hang may have a wider adaptive window than the
			// peers it left blocked in a collective, and then it is the
			// victims — not the hanger — that cross into Suspect first.
			//
			// Dump BEFORE Kill: the kill unblocks hung ranks (their blocking
			// points watch the kill channel), and an unblocked rank mutates
			// its tracer on the way out — dumping first reads each rank's
			// activity record while it is still frozen at the death site.
			live := s.det.Live(time.Now())
			for i := range live {
				if b, ok := s.lastBeacon(live[i].Rank); ok {
					live[i].LastSpan = b.Span
				}
			}
			s.postMortem(live)
			att.Kill()
			if err := <-done; err != nil {
				he.Cause = err
			} else {
				// The world completed in the kill race; its result stands.
				return nil, false
			}
			return he, true
		}
	}
}

// lastBeacon returns the latest beacon the current attempt's rank emitted.
func (s *Supervisor) lastBeacon(rank int) (Beacon, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.last[rank]
	return b, ok
}

// postMortem logs what each condemned rank was last known to be doing: its
// final beacon, plus whatever activity record the launcher can produce (for
// in-process worlds, the rank tracer's span tail).
func (s *Supervisor) postMortem(sus []Suspect) {
	for _, u := range sus {
		if b, ok := s.lastBeacon(u.Rank); ok {
			s.logf("supervisor: post-mortem rank %d: last beacon kind=%s phase=%d iter=%d span=%q",
				u.Rank, b.Kind, b.Phase, b.Iteration, b.Span)
		}
		if s.opt.PostMortem != nil {
			for _, line := range s.opt.PostMortem(u.Rank) {
				s.logf("supervisor: post-mortem rank %d: %s", u.Rank, line)
			}
		}
	}
}
