package supervisor

import (
	"net"
	"sync"
	"testing"
	"time"
)

func TestBeaconWireRoundTrip(t *testing.T) {
	var mu sync.Mutex
	var got []Beacon
	srv, err := ListenBeacons("", func(b Beacon) {
		mu.Lock()
		got = append(got, b)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	em, err := DialBeacons(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	sent := []Beacon{
		{Rank: 0, Kind: KindHello},
		{Rank: 1, Kind: KindIteration, Phase: 2, Iteration: 7, Modularity: 0.5},
		{Rank: 0, Kind: KindDone, Phase: 3, Modularity: 0.75},
	}
	for _, b := range sent {
		em.Emit(b)
	}
	em.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= len(sent) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d beacons, want %d", n, len(sent))
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, want := range sent {
		b := got[i]
		if b.PID == 0 {
			t.Fatalf("beacon %d: emitter did not stamp a PID", i)
		}
		b.PID = 0
		if b != want {
			t.Fatalf("beacon %d = %+v, want %+v", i, b, want)
		}
	}
}

func TestBeaconServerSkipsMalformedLines(t *testing.T) {
	var mu sync.Mutex
	var got []Beacon
	srv, err := ListenBeacons("", func(b Beacon) {
		mu.Lock()
		got = append(got, b)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("this is not json\n{\"rank\":4,\"kind\":\"iteration\",\"phase\":1,\"q\":0.25}\n")); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("valid beacon after a malformed line never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if got[0].Rank != 4 || got[0].Kind != KindIteration || got[0].Modularity != 0.25 {
		t.Fatalf("beacon = %+v", got[0])
	}
}

func TestEmitterSurvivesDeadServer(t *testing.T) {
	srv, err := ListenBeacons("", func(Beacon) {})
	if err != nil {
		t.Fatal(err)
	}
	em, err := DialBeacons(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	// Emission into a torn-down control channel must be silent no-ops: the
	// beacon stream is advisory and can never fail the computation.
	for i := 0; i < 100; i++ {
		em.Emit(Beacon{Rank: 0, Kind: KindIteration, Iteration: i})
	}
	em.Close()
}
