package supervisor

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// DetectorConfig tunes the accrual failure detector. The zero value selects
// production defaults suitable for multi-second phases; tests shrink the
// windows to keep chaos scenarios fast.
type DetectorConfig struct {
	// MinWindow floors the hang window: however fast the observed beacon
	// cadence, a rank is never suspected before this much silence. It
	// absorbs legitimate beacon-free stretches (graph rebuild, checkpoint
	// I/O) that the iteration cadence underestimates. Default 5s.
	MinWindow time.Duration
	// MaxWindow caps the hang window and doubles as the bootstrap window
	// while a rank has too few observations to model (a rank that emits
	// nothing at all for MaxWindow is declared hung). Default 2m.
	MaxWindow time.Duration
	// Phi is the suspicion threshold in standard deviations of the
	// observed inter-beacon gap: silence beyond mean + Phi·σ is a hang.
	// Default 8 — the conventional phi-accrual "virtually no false
	// positives" operating point.
	Phi float64
	// Samples is the sliding-window size of the per-rank gap model.
	// Default 64: long enough to smooth one phase's cadence, short enough
	// to re-adapt when coarsening makes iterations abruptly cheaper.
	Samples int
}

func (c *DetectorConfig) fill() {
	if c.MinWindow <= 0 {
		c.MinWindow = 5 * time.Second
	}
	if c.MaxWindow <= 0 {
		c.MaxWindow = 2 * time.Minute
	}
	if c.MaxWindow < c.MinWindow {
		c.MaxWindow = c.MinWindow
	}
	if c.Phi <= 0 {
		c.Phi = 8
	}
	if c.Samples <= 0 {
		c.Samples = 64
	}
}

// State is the detector's verdict on one rank.
type State int

// Rank states, ordered by increasing suspicion.
const (
	StateAlive   State = iota // beacons arriving within the expected cadence
	StateSlow    State = iota // silent past half the hang window: lagging, not yet condemned
	StateSuspect State = iota // silent past the hang window: presumed hung
	StateDone    State = iota // emitted KindDone; exempt from suspicion forever
)

func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSlow:
		return "slow"
	case StateSuspect:
		return "suspect"
	case StateDone:
		return "done"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Suspect describes one rank the detector has condemned.
type Suspect struct {
	Rank   int
	Silent time.Duration // how long the rank has been beacon-silent
	Window time.Duration // the adaptive window it exceeded
	// LastSpan is the open span path the rank's last beacon carried, when
	// the world runs traced (filled in by the supervisor, not the
	// detector): the phase/collective the rank was last seen inside.
	LastSpan string
}

func (s Suspect) String() string {
	msg := fmt.Sprintf("rank %d silent %v (window %v)", s.Rank, s.Silent.Round(time.Millisecond), s.Window.Round(time.Millisecond))
	if s.LastSpan != "" {
		msg += ", last seen in " + s.LastSpan
	}
	return msg
}

// rankTrack models one rank's inter-beacon gaps with a sliding window,
// maintained incrementally so Suspects stays O(ranks).
type rankTrack struct {
	last       time.Time
	done       bool
	gaps       []float64 // seconds; ring buffer
	idx, n     int
	sum, sumSq float64
}

func (r *rankTrack) push(gap float64, cap int) {
	if r.n == cap {
		old := r.gaps[r.idx]
		r.sum -= old
		r.sumSq -= old * old
	} else {
		r.n++
	}
	r.gaps[r.idx] = gap
	r.idx = (r.idx + 1) % cap
	r.sum += gap
	r.sumSq += gap * gap
}

// Detector is a phi-style accrual failure detector over beacon arrivals: it
// learns each rank's beacon cadence and condemns a rank whose silence is
// statistically incompatible with it. Unlike a fixed timeout flag, the
// window derives from the run's own observed iteration times, so the same
// detector works for millisecond toy graphs and minute-long phases at scale.
//
// All methods are safe for concurrent use; Observe is called from beacon
// readers while Suspects is polled by the supervision loop.
type Detector struct {
	cfg DetectorConfig

	mu    sync.Mutex
	ranks map[int]*rankTrack
}

// NewDetector builds a detector with the given tuning.
func NewDetector(cfg DetectorConfig) *Detector {
	cfg.fill()
	return &Detector{cfg: cfg, ranks: make(map[int]*rankTrack)}
}

// Observe records a beacon arrival from rank at time now.
func (d *Detector) Observe(rank int, now time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	t := d.ranks[rank]
	if t == nil {
		t = &rankTrack{gaps: make([]float64, d.cfg.Samples)}
		d.ranks[rank] = t
	} else if gap := now.Sub(t.last).Seconds(); gap > 0 {
		t.push(gap, d.cfg.Samples)
	}
	if now.After(t.last) {
		t.last = now
	}
}

// Done marks a rank as finished: it will never be suspected again, however
// long it stays silent (a finished rank legitimately falls quiet while its
// peers drain).
func (d *Detector) Done(rank int, now time.Time) {
	d.Observe(rank, now)
	d.mu.Lock()
	d.ranks[rank].done = true
	d.mu.Unlock()
}

// window computes the rank's adaptive hang window; callers hold d.mu.
func (d *Detector) window(t *rankTrack) time.Duration {
	if t.n < 3 {
		return d.cfg.MaxWindow // bootstrap: no cadence model yet
	}
	n := float64(t.n)
	mean := t.sum / n
	variance := t.sumSq/n - mean*mean
	std := math.Sqrt(math.Max(variance, 0))
	// Floor σ at a fraction of the mean (and an absolute millisecond):
	// a perfectly regular cadence would otherwise produce a hair-trigger
	// zero-variance window.
	std = math.Max(std, math.Max(mean/4, 1e-3))
	w := time.Duration((mean + d.cfg.Phi*std) * float64(time.Second))
	return min(max(w, d.cfg.MinWindow), d.cfg.MaxWindow)
}

// Window exposes the current adaptive hang window of one rank (MaxWindow
// until the rank has been observed enough to model).
func (d *Detector) Window(rank int) time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	t := d.ranks[rank]
	if t == nil {
		return d.cfg.MaxWindow
	}
	return d.window(t)
}

// State classifies one rank at time now.
func (d *Detector) State(rank int, now time.Time) State {
	d.mu.Lock()
	defer d.mu.Unlock()
	t := d.ranks[rank]
	if t == nil {
		return StateAlive // never observed: bootstrap grace
	}
	return d.state(t, now)
}

func (d *Detector) state(t *rankTrack, now time.Time) State {
	if t.done {
		return StateDone
	}
	silent := now.Sub(t.last)
	w := d.window(t)
	switch {
	case silent > w:
		return StateSuspect
	case silent > w/2:
		return StateSlow
	default:
		return StateAlive
	}
}

// Suspects returns every rank condemned as hung at time now, longest-silent
// first (the map iteration is sorted for deterministic diagnostics).
func (d *Detector) Suspects(now time.Time) []Suspect {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []Suspect
	for rank, t := range d.ranks {
		if d.state(t, now) == StateSuspect {
			out = append(out, Suspect{Rank: rank, Silent: now.Sub(t.last), Window: d.window(t)})
		}
	}
	sortSuspects(out)
	return out
}

// Condemned returns the set of ranks to blame for a hang at time now, or
// nil when no rank has crossed its window yet. It is Suspects plus every
// live rank whose silence both (a) reaches back to within one
// suspect-window of the longest-silent suspect's last beacon and (b) is
// anomalous against the rank's own cadence — it has no cadence model yet,
// or it has been silent for more than twice its own mean beacon gap.
// Ordered by silence descending.
//
// The extra ranks are the fix for the post-mortem mis-attribution PR 5
// observed: the rank that actually hangs often has a *wider* adaptive
// window than its victims (its beacon cadence was irregular, or it was
// still in bootstrap), so the peers it leaves blocked in a collective cross
// into Suspect first. A pure silent >= maxSilent cut still missed one case:
// a hanger that beaconed right before freezing while a victim sat mid-gap
// is a hair *less* silent than that victim, yet it is the death site. The
// victims starve within one beacon window of the freeze, so reaching back
// one suspect-window from the longest silence covers the hanger; condition
// (b) keeps ranks that were beaconing healthily until the freeze out of the
// diagnosis.
func (d *Detector) Condemned(now time.Time) []Suspect {
	d.mu.Lock()
	defer d.mu.Unlock()
	var maxSilent, reach time.Duration
	hung := false
	for _, t := range d.ranks {
		if d.state(t, now) == StateSuspect {
			hung = true
			if s := now.Sub(t.last); s > maxSilent {
				maxSilent = s
				reach = d.window(t)
			}
		}
	}
	if !hung {
		return nil
	}
	bar := maxSilent - reach
	var out []Suspect
	for rank, t := range d.ranks {
		if t.done {
			continue
		}
		silent := now.Sub(t.last)
		anomalous := t.n < 3 || silent.Seconds() > 2*t.sum/float64(t.n)
		if d.state(t, now) == StateSuspect || (silent >= bar && anomalous) {
			out = append(out, Suspect{Rank: rank, Silent: silent, Window: d.window(t)})
		}
	}
	sortSuspects(out)
	return out
}

// Live returns every rank not yet marked Done, with its current silence and
// window, longest-silent first. A hang kills the whole world, so the
// post-mortem wants every rank that died with it — including the original
// hanger, whose adaptive window may be wider than its blocked victims' and
// so may not have crossed into Suspect yet when the world is condemned.
// The silence ordering puts that original hanger (earliest last beacon)
// ahead of the victims it starved, whatever their windows decided.
func (d *Detector) Live(now time.Time) []Suspect {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []Suspect
	for rank, t := range d.ranks {
		if t.done {
			continue
		}
		out = append(out, Suspect{Rank: rank, Silent: now.Sub(t.last), Window: d.window(t)})
	}
	sortSuspects(out)
	return out
}

// sortSuspects orders by silence descending — the longest-silent rank is
// the likeliest root cause (it stopped beaconing first; the others starved
// waiting on it in a collective) — with rank ascending as the tie-break for
// deterministic diagnostics.
func sortSuspects(s []Suspect) {
	less := func(a, b Suspect) bool {
		if a.Silent != b.Silent {
			return a.Silent > b.Silent
		}
		return a.Rank < b.Rank
	}
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Reset discards every rank model. The supervisor calls it between attempts
// so a relaunched world starts from the bootstrap window instead of being
// judged by its predecessor's cadence.
func (d *Detector) Reset() {
	d.mu.Lock()
	d.ranks = make(map[int]*rankTrack)
	d.mu.Unlock()
}
