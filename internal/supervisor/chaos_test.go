package supervisor_test

// Chaos suite: drive the real distributed Louvain pipeline under a
// Supervisor while injecting crashes and hangs at deterministic points in
// the run (progress milestones, not wall-clock), and assert the supervised
// run converges to the bit-identical result of an undisturbed one.

import (
	"errors"
	"fmt"
	"math"
	"os"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"distlouvain/internal/ckpt"
	"distlouvain/internal/core"
	"distlouvain/internal/dgraph"
	"distlouvain/internal/gen"
	"distlouvain/internal/gio"
	"distlouvain/internal/graph"
	"distlouvain/internal/mpi"
	"distlouvain/internal/obsv"
	"distlouvain/internal/supervisor"
)

// chaosAction is what the injection hook tells a rank to do at a milestone.
type chaosAction int

const (
	chaosNone chaosAction = iota
	chaosKill             // FaultTransport.Kill: abrupt simulated crash
	chaosHang             // block inside the progress hook until the world dies
)

// chaosLauncher runs real core ranks on an in-process world, with an inject
// hook consulted at every progress milestone. Injection is deterministic in
// (attempt, rank, event) — no wall-clock calibration anywhere.
type chaosLauncher struct {
	n      int64
	edges  []graph.RawEdge
	cfg    core.Config
	inject func(attempt, rank int, ev core.ProgressEvent) chaosAction
	traced bool           // wire a span tracer per rank (post-mortem tests)
	reg    *obsv.Registry // generation-scoped traffic registry (may be nil)

	mu      sync.Mutex
	result  *core.Result
	specs   []supervisor.LaunchSpec
	tracers []*obsv.Tracer // current attempt's tracers when traced
}

// rankTracer returns the most recent attempt's tracer for one rank.
func (l *chaosLauncher) rankTracer(rank int) *obsv.Tracer {
	l.mu.Lock()
	defer l.mu.Unlock()
	if rank < 0 || rank >= len(l.tracers) {
		return nil
	}
	return l.tracers[rank]
}

// postMortem mirrors the cmd/dlouvain in-process launcher: the condemned
// rank's open span chain plus its most recently completed spans.
func (l *chaosLauncher) postMortem(rank int) []string {
	tr := l.rankTracer(rank)
	if tr == nil {
		return nil
	}
	var lines []string
	if p := tr.Path(); p != "" {
		lines = append(lines, "open: "+p)
	}
	for _, s := range tr.Tail(8) {
		lines = append(lines, "recent: "+s.Label())
	}
	return lines
}

type chaosAttempt struct {
	world     *mpi.InprocWorld
	killCh    chan struct{} // closed on Kill: unblocks chaosHang hooks
	interrupt atomic.Bool
	done      chan struct{}
	err       error
	killOnce  sync.Once
}

func (a *chaosAttempt) Wait() error { <-a.done; return a.err }
func (a *chaosAttempt) Kill() {
	a.killOnce.Do(func() {
		close(a.killCh)
		a.world.Close()
	})
}
func (a *chaosAttempt) Interrupt() { a.interrupt.Store(true) }

func (l *chaosLauncher) Launch(spec supervisor.LaunchSpec, beacons func(supervisor.Beacon)) (supervisor.Attempt, error) {
	world, err := mpi.NewInprocWorld(spec.Ranks)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.specs = append(l.specs, spec)
	l.mu.Unlock()
	a := &chaosAttempt{world: world, killCh: make(chan struct{}), done: make(chan struct{})}
	go l.run(a, spec, beacons)
	return a, nil
}

func (l *chaosLauncher) run(a *chaosAttempt, spec supervisor.LaunchSpec, beacons func(supervisor.Beacon)) {
	defer close(a.done)
	defer a.world.Close()
	p := spec.Ranks
	var tracers []*obsv.Tracer
	if l.traced {
		tracers = make([]*obsv.Tracer, p)
		for r := range tracers {
			tracers[r] = obsv.NewTracer(r, obsv.DefaultCapacity)
		}
		l.mu.Lock()
		l.tracers = tracers
		l.mu.Unlock()
	}
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ft := mpi.NewFaultTransport(a.world.Endpoint(r), mpi.FaultPlan{})
			var tr *obsv.Tracer
			if l.traced {
				tr = tracers[r]
			}
			emit := supervisor.CoreProgressTraced(r, 0, tr, beacons)
			cfg := l.cfg
			cfg.GatherOutput = true
			cfg.Interrupted = a.interrupt.Load
			cfg.Tracer = tr
			cfg.Progress = func(ev core.ProgressEvent) {
				switch l.inject(spec.Attempt, r, ev) {
				case chaosKill:
					ft.Kill()
				case chaosHang:
					<-a.killCh // beacon-silent until the supervisor kills us
				}
				emit(ev)
			}
			c := mpi.NewComm(ft)
			c.SetTracer(tr)
			if r == 0 {
				l.reg.AttachCounters("mpi.rank0", func() map[string]int64 {
					return c.Stats().Snapshot().Counters()
				})
			}
			var res *core.Result
			var err error
			if spec.Resume {
				res, err = core.Resume(c, cfg.CheckpointDir, cfg)
			} else {
				lo, hi := gio.SegmentRange(int64(len(l.edges)), r, p)
				var dg *dgraph.DistGraph
				dg, err = dgraph.Build(c, l.n, l.edges[lo:hi], nil)
				if err == nil {
					res, err = core.Run(dg, cfg)
				}
			}
			if err != nil {
				errs[r] = err
				a.world.Close()
				return
			}
			if r == 0 {
				l.mu.Lock()
				l.result = res
				l.mu.Unlock()
			}
		}(r)
	}
	wg.Wait()
	l.reg.RecordGenerationCounters()
	a.err = chaosWorldError(errs)
}

// chaosWorldError mirrors the launcher error selection in cmd/dlouvain:
// fatal beats retryable beats ErrClosed teardown collateral.
func chaosWorldError(errs []error) error {
	var retry, collateral error
	for r, e := range errs {
		if e == nil {
			continue
		}
		wrapped := fmt.Errorf("rank %d: %w", r, e)
		switch {
		case chaosRetryable(e):
			if retry == nil {
				retry = wrapped
			}
		case errors.Is(e, mpi.ErrClosed):
			if collateral == nil {
				collateral = wrapped
			}
		default:
			return wrapped
		}
	}
	if retry != nil {
		return retry
	}
	return collateral
}

func chaosRetryable(err error) bool {
	var pl *mpi.ErrPeerLost
	return errors.As(err, &pl) ||
		errors.Is(err, mpi.ErrKilled) ||
		errors.Is(err, os.ErrDeadlineExceeded) ||
		errors.Is(err, core.ErrInterrupted)
}

// superviseChaos runs the supervised world and returns rank 0's result from
// the surviving attempt plus the launch specs the supervisor issued.
func superviseChaos(t *testing.T, p int, cfg core.Config, n int64, edges []graph.RawEdge,
	inject func(attempt, rank int, ev core.ProgressEvent) chaosAction) (*core.Result, []supervisor.LaunchSpec) {
	t.Helper()
	l := &chaosLauncher{n: n, edges: edges, cfg: cfg, inject: inject}
	sup := supervisor.New(l, supervisor.Options{
		Policy: supervisor.Policy{
			MaxRestarts: 5,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  5 * time.Millisecond,
			MinRanks:    1,
		},
		// The graphs here iterate in well under a millisecond, so even the
		// clamped 60ms window is dozens of missed beacons. Keep the floor
		// comfortably above a loaded machine's checkpoint-write stall: a
		// false-positive condemnation inserts a spurious generation and
		// breaks the per-generation assertions below.
		Detector:      supervisor.DetectorConfig{MinWindow: 60 * time.Millisecond, MaxWindow: 200 * time.Millisecond},
		Poll:          5 * time.Millisecond,
		Retryable:     chaosRetryable,
		HasCheckpoint: func() bool { _, err := ckpt.ReadManifest(cfg.CheckpointDir); return err == nil },
		Logf:          t.Logf,
	})
	if err := sup.Run(p, false); err != nil {
		t.Fatalf("supervised run failed: %v", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.result == nil {
		t.Fatal("supervisor reported success but no rank-0 result was recorded")
	}
	return l.result, append([]supervisor.LaunchSpec(nil), l.specs...)
}

// identicalOutcome asserts the supervised run retraced the undisturbed run
// bit-for-bit.
func identicalOutcome(t *testing.T, label string, got, want *core.Result) {
	t.Helper()
	if !slices.Equal(got.GlobalComm, want.GlobalComm) {
		t.Fatalf("%s: assignment differs from undisturbed run", label)
	}
	if math.Float64bits(got.Modularity) != math.Float64bits(want.Modularity) {
		t.Fatalf("%s: modularity %v != undisturbed %v", label, got.Modularity, want.Modularity)
	}
	if got.Communities != want.Communities {
		t.Fatalf("%s: %d communities, undisturbed found %d", label, got.Communities, want.Communities)
	}
}

// chaosGraph returns a graph whose baseline run has at least 2 phases, so a
// phase-boundary checkpoint exists for mid-run chaos to resume from.
func chaosGraph(t *testing.T) (int64, []graph.RawEdge, *core.Result) {
	t.Helper()
	n, edges := gen.ErdosRenyi(300, 1500, 5)
	want, err := core.RunOnEdges(3, n, edges, core.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Phases) < 2 {
		t.Fatalf("baseline converged in %d phase(s); chaos needs a phase boundary", len(want.Phases))
	}
	return n, edges, want
}

// TestChaosKillMidPhase SIGKILL-equivalent: rank 1's transport dies at the
// third iteration of phase 1 (after the phase-0 checkpoint committed). The
// supervisor must resume from that checkpoint and converge identically.
func TestChaosKillMidPhase(t *testing.T) {
	n, edges, want := chaosGraph(t)
	cfg := core.Baseline()
	cfg.CheckpointDir = t.TempDir()

	got, specs := superviseChaos(t, 3, cfg, n, edges, func(attempt, rank int, ev core.ProgressEvent) chaosAction {
		if attempt == 0 && rank == 1 && ev.Kind == core.ProgressIteration && ev.Phase == 1 && ev.Iteration == 1 {
			return chaosKill
		}
		return chaosNone
	})
	identicalOutcome(t, "kill mid-phase", got, want)
	if len(specs) != 2 {
		t.Fatalf("attempts = %d, want 2", len(specs))
	}
	if !specs[1].Resume {
		t.Fatal("relaunch after the phase-0 checkpoint must resume, not restart")
	}
}

// TestChaosHangAtCollective: rank 2 freezes at the start of phase 1 — its
// peers block inside the phase's collectives, so no rank can make progress
// and no error ever surfaces. Only the beacon-silence detector can notice;
// it must kill the world and resume from the checkpoint.
func TestChaosHangAtCollective(t *testing.T) {
	n, edges, want := chaosGraph(t)
	cfg := core.Baseline()
	cfg.CheckpointDir = t.TempDir()

	var hung atomic.Bool
	got, specs := superviseChaos(t, 3, cfg, n, edges, func(attempt, rank int, ev core.ProgressEvent) chaosAction {
		if attempt == 0 && rank == 2 && ev.Kind == core.ProgressPhaseStart && ev.Phase == 1 {
			hung.Store(true)
			return chaosHang
		}
		return chaosNone
	})
	identicalOutcome(t, "hang at collective", got, want)
	if !hung.Load() {
		t.Fatal("hang injection never fired")
	}
	if len(specs) != 2 || !specs[1].Resume {
		t.Fatalf("specs = %+v, want a single resuming relaunch", specs)
	}
}

// TestChaosFlapping kill→restart→kill: the world dies on attempt 0 (phase 1)
// and again on attempt 1 (phase 1, different rank), and must still converge
// identically on attempt 2 with no operator input.
func TestChaosFlapping(t *testing.T) {
	n, edges, want := chaosGraph(t)
	cfg := core.Baseline()
	cfg.CheckpointDir = t.TempDir()

	got, specs := superviseChaos(t, 3, cfg, n, edges, func(attempt, rank int, ev core.ProgressEvent) chaosAction {
		if ev.Kind != core.ProgressIteration || ev.Phase != 1 {
			return chaosNone
		}
		switch {
		case attempt == 0 && rank == 0 && ev.Iteration == 1:
			return chaosKill
		case attempt == 1 && rank == 2 && ev.Iteration == 1:
			return chaosKill
		}
		return chaosNone
	})
	identicalOutcome(t, "flapping", got, want)
	if len(specs) != 3 {
		t.Fatalf("attempts = %d, want 3 (kill, kill again, converge)", len(specs))
	}
	if !specs[1].Resume || !specs[2].Resume {
		t.Fatalf("specs = %+v, want both relaunches to resume", specs)
	}
}

// TestChaosKillBeforeFirstCheckpoint: a crash in phase 0 leaves nothing to
// resume; the supervisor must relaunch from scratch and still converge
// identically.
func TestChaosKillBeforeFirstCheckpoint(t *testing.T) {
	n, edges, want := chaosGraph(t)
	cfg := core.Baseline()
	cfg.CheckpointDir = t.TempDir()

	got, specs := superviseChaos(t, 3, cfg, n, edges, func(attempt, rank int, ev core.ProgressEvent) chaosAction {
		if attempt == 0 && rank == 0 && ev.Kind == core.ProgressIteration && ev.Phase == 0 && ev.Iteration == 1 {
			return chaosKill
		}
		return chaosNone
	})
	identicalOutcome(t, "kill before first checkpoint", got, want)
	if len(specs) != 2 {
		t.Fatalf("attempts = %d, want 2", len(specs))
	}
	if specs[1].Resume {
		t.Fatal("no checkpoint existed; the relaunch must restart from scratch")
	}
}

// TestChaosPostMortemNamesDeathSite: when a traced rank hangs, the
// supervisor's post-mortem dump must name the phase the rank died in (its
// open span chain), the relaunch must resume from the checkpoint, and the
// surviving attempt's tracer must still yield a usable §V-A report — the
// trace pipeline has to survive the kill/resume cycle, not just clean runs.
// It also pins per-generation traffic accounting end to end: each
// generation's frozen counters reflect only that generation's traffic.
func TestChaosPostMortemNamesDeathSite(t *testing.T) {
	n, edges, want := chaosGraph(t)
	cfg := core.Baseline()
	cfg.CheckpointDir = t.TempDir()

	reg := obsv.NewRegistry(0)
	var hung atomic.Bool
	l := &chaosLauncher{
		n: n, edges: edges, cfg: cfg, traced: true, reg: reg,
		inject: func(attempt, rank int, ev core.ProgressEvent) chaosAction {
			if attempt == 0 && rank == 2 && ev.Kind == core.ProgressPhaseStart && ev.Phase == 1 {
				hung.Store(true)
				return chaosHang
			}
			return chaosNone
		},
	}
	var logMu sync.Mutex
	var logs []string
	sup := supervisor.New(l, supervisor.Options{
		Policy: supervisor.Policy{
			MaxRestarts: 5,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  5 * time.Millisecond,
			MinRanks:    1,
		},
		// 60ms floor for the same false-positive margin as superviseChaos.
		Detector:      supervisor.DetectorConfig{MinWindow: 60 * time.Millisecond, MaxWindow: 200 * time.Millisecond},
		Poll:          5 * time.Millisecond,
		Retryable:     chaosRetryable,
		HasCheckpoint: func() bool { _, err := ckpt.ReadManifest(cfg.CheckpointDir); return err == nil },
		Logf: func(format string, args ...any) {
			logMu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			logMu.Unlock()
			t.Logf(format, args...)
		},
		PostMortem: l.postMortem,
		OnRestart:  func(restarts, ranks int, resume bool, cause error) { reg.BeginGeneration() },
	})
	if err := sup.Run(3, false); err != nil {
		t.Fatalf("supervised run failed: %v", err)
	}
	if !hung.Load() {
		t.Fatal("hang injection never fired")
	}
	l.mu.Lock()
	got := l.result
	l.mu.Unlock()
	identicalOutcome(t, "post-mortem trace", got, want)

	logMu.Lock()
	joined := strings.Join(logs, "\n")
	logMu.Unlock()
	// The rank hung inside phase 1's progress hook, so its open span chain
	// is "run/phase[1]" — the dump must name the death site, not just say
	// "rank 2 went silent".
	if !strings.Contains(joined, "post-mortem rank 2") {
		t.Fatalf("no post-mortem for the hung rank in supervisor logs:\n%s", joined)
	}
	if !strings.Contains(joined, "open: run/phase[1]") {
		t.Fatalf("post-mortem does not name the phase the rank died in:\n%s", joined)
	}
	// The hung rank's trace still holds completed phase-0 work in its tail.
	if !strings.Contains(joined, "recent: ") {
		t.Fatalf("post-mortem has no recent-span evidence:\n%s", joined)
	}

	// The report survives restart-with-resume: the surviving attempt's
	// rank-0 tracer covers resume-load plus the remaining phases.
	rep := obsv.BuildReport(l.rankTracer(0).Snapshot())
	if rep.Total <= 0 {
		t.Fatal("surviving attempt's run span did not complete")
	}
	if len(rep.Phases) == 0 {
		t.Fatal("report after resume has no phase rows")
	}
	for _, pb := range rep.Phases {
		if acc := pb.Accounted(); acc > pb.Total {
			t.Fatalf("phase %d after resume: accounted %v exceeds wall %v", pb.Phase, acc, pb.Total)
		}
	}
	if rep.Overall.Cat[obsv.CatCheckpoint] <= 0 {
		t.Fatal("resume-load left no checkpoint-category time in the report")
	}
	var buf strings.Builder
	rep.Format(&buf)
	if !strings.Contains(buf.String(), "all") {
		t.Fatalf("report missing the all row:\n%s", buf.String())
	}

	// Per-generation traffic: each generation froze its own (positive)
	// counter deltas — generation 1's figures must not include the killed
	// generation 0's traffic (they'd be impossibly large: generation 0 ran
	// phase 0 from scratch; generation 1 only resumed the cheap tail).
	var perGen []float64
	for _, rec := range reg.Records() {
		if rec.Kind == "counters" && rec.Name == "mpi.rank0" {
			perGen = append(perGen, rec.Fields["coll_bytes"])
		}
	}
	if len(perGen) != 2 {
		t.Fatalf("frozen counter records for %d generations, want 2", len(perGen))
	}
	for g, v := range perGen {
		if v <= 0 {
			t.Fatalf("generation %d recorded %.0f collective bytes, want > 0", g, v)
		}
	}
}

// TestChaosDegradedResume: a world that keeps dying at 3 ranks degrades to 2
// and must still produce the identical answer via elastic resume.
func TestChaosDegradedResume(t *testing.T) {
	n, edges, want := chaosGraph(t)
	cfg := core.Baseline()
	cfg.CheckpointDir = t.TempDir()

	got, specs := superviseChaos(t, 3, cfg, n, edges, func(attempt, rank int, ev core.ProgressEvent) chaosAction {
		// Kill every 3-rank attempt once it reaches phase 1 (the phase-0
		// checkpoint has committed by then); 2-rank attempts run clean.
		if rank == 2 && ev.Kind == core.ProgressIteration && ev.Phase == 1 && ev.Iteration == 1 {
			return chaosKill
		}
		return chaosNone
	})
	identicalOutcome(t, "degraded resume", got, want)
	last := specs[len(specs)-1]
	if last.Ranks != 2 || !last.Resume {
		t.Fatalf("final spec = %+v, want an elastic resume at 2 ranks", last)
	}
}
