// Package supervisor implements the self-healing supervision layer: it owns
// the lifetime of a world of Louvain ranks (in-process goroutine worlds and
// tcp-local child processes alike) and drives them to completion without
// operator intervention.
//
// Ranks emit lightweight progress beacons (phase, iteration, modularity,
// checkpoint committed) over a control channel. A phi-style accrual failure
// detector distinguishes crashed ranks (process exit / connection loss,
// observed by the launcher), hung ranks (beacon silence beyond an adaptive
// window derived from the observed iteration cadence) and slow-but-alive
// ranks. On a retryable failure the supervisor kills the remaining world,
// picks the latest committed checkpoint and relaunches via core.Resume with
// exponential backoff plus jitter under a configurable restart budget —
// degrading to a smaller rank count (elastic resume) when the world
// repeatedly fails to come back at its current size.
package supervisor

import (
	"os"

	"distlouvain/internal/core"
	"distlouvain/internal/obsv"
)

// Kind labels one beacon event.
type Kind string

// Beacon kinds, in the order a healthy rank emits them.
const (
	KindHello      Kind = "hello"       // control channel established; no progress yet
	KindPhaseStart Kind = "phase-start" // a phase's iteration loop is about to run
	KindIteration  Kind = "iteration"   // one Louvain iteration completed
	KindCheckpoint Kind = "checkpoint"  // a phase snapshot committed world-wide
	KindDone       Kind = "done"        // the rank's run finished cleanly
)

// Beacon is one lightweight progress report from a rank. Everything except
// Rank/PID mirrors core.ProgressEvent; the struct is kept flat and small
// because it crosses a process boundary as one JSON line per event.
type Beacon struct {
	Rank       int     `json:"rank"`
	PID        int     `json:"pid,omitempty"` // emitting process (0 for in-process ranks)
	Kind       Kind    `json:"kind"`
	Phase      int     `json:"phase"`
	Iteration  int     `json:"iter,omitempty"`
	Modularity float64 `json:"q"`
	// Span is the rank's open span path at emission time (e.g.
	// "run/phase[1]/iteration[3]/community-fetch"), present when the rank
	// runs with a tracer. It tells the supervisor WHERE the rank last was,
	// not just how far it got — the hang detector's diagnosis names it.
	Span string `json:"span,omitempty"`
}

// CoreProgress adapts a beacon sink to core's Progress hook: install the
// returned function as Config.Progress and every run milestone becomes a
// beacon. pid may be 0 for in-process ranks.
func CoreProgress(rank, pid int, emit func(Beacon)) func(core.ProgressEvent) {
	return CoreProgressTraced(rank, pid, nil, emit)
}

// CoreProgressTraced is CoreProgress with span context: when tr is non-nil,
// each beacon carries the rank's current open span path, so the supervisor
// can report what a later-condemned rank was doing at its last sign of
// life. tr should be the same tracer the rank runs with.
func CoreProgressTraced(rank, pid int, tr *obsv.Tracer, emit func(Beacon)) func(core.ProgressEvent) {
	return func(ev core.ProgressEvent) {
		var k Kind
		switch ev.Kind {
		case core.ProgressPhaseStart:
			k = KindPhaseStart
		case core.ProgressIteration:
			k = KindIteration
		case core.ProgressCheckpoint:
			k = KindCheckpoint
		case core.ProgressDone:
			k = KindDone
		default:
			return // unknown milestone from a newer core: not a liveness signal
		}
		b := Beacon{Rank: rank, PID: pid, Kind: k, Phase: ev.Phase, Iteration: ev.Iteration, Modularity: ev.Modularity}
		if tr != nil {
			b.Span = tr.Path()
		}
		emit(b)
	}
}

// EnvBeaconAddr names the environment variable through which a supervising
// parent hands child rank processes the control-channel address.
const EnvBeaconAddr = "DLOUVAIN_BEACON"

// BeaconAddrFromEnv returns the control-channel address a supervising parent
// installed, or "" when the process is unsupervised.
func BeaconAddrFromEnv() string { return os.Getenv(EnvBeaconAddr) }
