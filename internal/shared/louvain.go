package shared

import (
	"math"
	"time"

	"distlouvain/internal/graph"
	"distlouvain/internal/par"
	"distlouvain/internal/seq"
)

// Run executes the multi-phase shared-memory Louvain method.
func Run(g *graph.CSR, opt Options) *Result {
	start := time.Now()
	if opt.Threads <= 0 {
		opt.Threads = par.DefaultThreads()
	}
	if opt.Tau <= 0 {
		opt.Tau = DefaultTau
	}
	res := &Result{Comm: make([]int64, g.N)}
	for v := range res.Comm {
		res.Comm[v] = int64(v)
	}
	if g.N == 0 {
		res.Runtime = time.Since(start)
		return res
	}

	cur := g
	prevQ := math.Inf(-1)
	for phase := 0; opt.MaxPhases == 0 || phase < opt.MaxPhases; phase++ {
		init := singletons(cur.N)
		if phase == 0 && opt.VertexFollowing {
			init = FollowVertices(cur)
		}
		comm, stat := onePhase(cur, init, opt, uint64(phase))
		res.Phases = append(res.Phases, stat)
		res.TotalIterations += stat.Iterations
		if stat.Modularity-prevQ <= opt.Tau {
			break
		}
		prevQ = stat.Modularity
		coarse, renumber := seq.Coarsen(cur, comm)
		for v := range res.Comm {
			res.Comm[v] = renumber[comm[res.Comm[v]]]
		}
		if coarse.N == cur.N {
			break
		}
		cur = coarse
	}

	densify(res.Comm)
	res.Communities = seq.CommunityCount(res.Comm)
	res.Modularity = seq.Modularity(g, res.Comm)
	res.Runtime = time.Since(start)
	return res
}

func singletons(n int64) []int64 {
	comm := make([]int64, n)
	for v := range comm {
		comm[v] = int64(v)
	}
	return comm
}

func densify(comm []int64) {
	renumber := make(map[int64]int64)
	var next int64
	for _, c := range comm {
		if _, ok := renumber[c]; !ok {
			renumber[c] = next
			next++
		}
	}
	for v := range comm {
		comm[v] = renumber[comm[v]]
	}
}

// phaseState is the per-phase working set shared by the plain and colored
// sweeps.
type phaseState struct {
	g        *graph.CSR
	opt      Options
	n        int64
	m2       float64
	comm     []int64
	k        []float64
	aTot     []float64
	commSize []int64

	// ET bookkeeping.
	prob     []float64
	inactive []bool
	prevComm []int64 // community at iteration k-1 entry (for the ET test)
	seed     uint64
}

func newPhaseState(g *graph.CSR, init []int64, opt Options, seed uint64) *phaseState {
	n := g.N
	st := &phaseState{
		g: g, opt: opt, n: n, m2: g.TotalWeight(),
		comm:     make([]int64, n),
		k:        make([]float64, n),
		aTot:     make([]float64, n),
		commSize: make([]int64, n),
		prob:     make([]float64, n),
		inactive: make([]bool, n),
		prevComm: make([]int64, n),
		seed:     seed,
	}
	copy(st.comm, init)
	copy(st.prevComm, init)
	par.For(int(n), opt.Threads, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			st.k[v] = g.WeightedDegree(int64(v))
			st.prob[v] = 1
		}
	})
	for v := int64(0); v < n; v++ {
		st.aTot[st.comm[v]] += st.k[v]
		st.commSize[st.comm[v]]++
	}
	return st
}

// updateActivity applies the ET probability decay before iteration iter
// (1-based) and returns the number of inactive vertices. With Alpha == 0 it
// is a no-op: every probability stays 1.
func (st *phaseState) updateActivity(iter int) int64 {
	if st.opt.Alpha <= 0 {
		return 0
	}
	if iter >= 2 {
		par.For(int(st.n), st.opt.Threads, func(_, lo, hi int) {
			for v := lo; v < hi; v++ {
				if st.inactive[v] {
					continue
				}
				if st.comm[v] == st.prevComm[v] {
					st.prob[v] *= 1 - st.opt.Alpha
					if st.prob[v] < InactiveCutoff {
						st.inactive[v] = true
					}
				} else {
					st.prob[v] = 1
				}
			}
		})
	}
	copy(st.prevComm, st.comm)
	return par.ReduceInt64(int(st.n), st.opt.Threads, func(_, lo, hi int) int64 {
		var c int64
		for v := lo; v < hi; v++ {
			if st.inactive[v] {
				c++
			}
		}
		return c
	})
}

// isActive decides whether v participates in iteration iter, combining the
// permanent inactive label with the per-iteration coin flip at probability
// prob[v]. The flip is a pure hash of (seed, v, iter) so results are
// independent of scheduling.
func (st *phaseState) isActive(v int64, iter int) bool {
	if st.inactive[v] {
		return false
	}
	p := st.prob[v]
	if p >= 1 {
		return true
	}
	h := par.Mix64(st.seed ^ uint64(v)*0x9e3779b97f4a7c15 ^ uint64(iter)*0xd1b54a32d192ed03)
	return float64(h>>11)/(1<<53) < p
}

// bestMove evaluates v's neighbouring communities against the provided
// community/degree snapshot and returns the ΔQ-maximising target (or v's
// current community when no strictly positive gain exists). scratch is the
// caller's reusable accumulation map.
func (st *phaseState) bestMove(v int64, commSnap []int64, aTotSnap []float64, scratch *neighMap) int64 {
	cv := commSnap[v]
	scratch.reset()
	for _, e := range st.g.Neighbors(v) {
		if e.To == v {
			continue
		}
		scratch.add(commSnap[e.To], e.W)
	}
	eCur := scratch.get(cv)
	kv := st.k[v]
	aCur := aTotSnap[cv] - kv
	best := cv
	bestGain := 0.0
	for _, c := range scratch.keys {
		if c == cv {
			continue
		}
		gain := 2*(scratch.get(c)-eCur)/st.m2 - 2*kv*(aTotSnap[c]-aCur)/(st.m2*st.m2)
		if gain > bestGain || (gain == bestGain && gain > 0 && c < best) {
			bestGain = gain
			best = c
		}
	}
	if bestGain <= 0 {
		return cv
	}
	// Minimum-label rule (Lu et al.): when a singleton vertex wants to
	// join another singleton, only the higher label moves. This breaks the
	// two-cycle where synchronous sweeps endlessly swap a pair.
	if st.commSize[cv] == 1 && st.commSize[best] == 1 && best > cv {
		return cv
	}
	return best
}

// modularity computes Q from the current assignment and maintained A_c.
func (st *phaseState) modularity() float64 {
	eSum := par.ReduceFloat64(int(st.n), st.opt.Threads, func(_, lo, hi int) float64 {
		var s float64
		for v := lo; v < hi; v++ {
			cv := st.comm[v]
			for _, e := range st.g.Neighbors(int64(v)) {
				if st.comm[e.To] == cv {
					s += e.W
				}
			}
		}
		return s
	})
	aSq := par.ReduceFloat64(int(st.n), st.opt.Threads, func(_, lo, hi int) float64 {
		var s float64
		for c := lo; c < hi; c++ {
			s += st.aTot[c] * st.aTot[c]
		}
		return s
	})
	return eSum/st.m2 - aSq/(st.m2*st.m2)
}

// rebuildAggregates recomputes aTot and commSize from comm (parallel,
// race-free via per-worker partials).
func (st *phaseState) rebuildAggregates() {
	nw := st.opt.Threads
	partialA := make([][]float64, nw)
	partialS := make([][]int64, nw)
	par.For(int(st.n), nw, func(w, lo, hi int) {
		a := make([]float64, st.n)
		s := make([]int64, st.n)
		for v := lo; v < hi; v++ {
			a[st.comm[v]] += st.k[v]
			s[st.comm[v]]++
		}
		partialA[w] = a
		partialS[w] = s
	})
	par.For(int(st.n), nw, func(_, lo, hi int) {
		for c := lo; c < hi; c++ {
			var a float64
			var s int64
			for w := 0; w < nw; w++ {
				if partialA[w] != nil {
					a += partialA[w][c]
					s += partialS[w][c]
				}
			}
			st.aTot[c] = a
			st.commSize[c] = s
		}
	})
}

// onePhase runs Louvain iterations on g starting from the init assignment
// until the modularity gain drops to Tau (or the ET/iteration caps fire).
func onePhase(g *graph.CSR, init []int64, opt Options, phaseSeed uint64) ([]int64, PhaseStat) {
	st := newPhaseState(g, init, opt, opt.Seed^par.Mix64(phaseSeed))
	stat := PhaseStat{Vertices: g.N}
	if st.m2 == 0 {
		return st.comm, stat
	}

	var colors [][]int64
	if opt.UseColoring {
		var nc int
		colors, nc = ColorClasses(g, opt.Threads)
		stat.Colors = nc
	}

	newComm := make([]int64, st.n)
	commBefore := make([]int64, st.n)
	scratches := make([]*neighMap, opt.Threads)
	for i := range scratches {
		scratches[i] = newNeighMap(st.n)
	}

	prevQ := math.Inf(-1)
	for {
		if opt.MaxIterations > 0 && stat.Iterations >= opt.MaxIterations {
			break
		}
		stat.Iterations++
		stat.InactiveAtEnd = st.updateActivity(stat.Iterations)
		copy(commBefore, st.comm)

		if opt.UseColoring {
			st.sweepColored(colors, newComm, scratches, stat.Iterations)
		} else {
			st.sweepBuffered(newComm, scratches, stat.Iterations)
		}

		q := st.modularity()
		if q-prevQ <= opt.Tau {
			if !math.IsInf(prevQ, -1) && q < prevQ {
				// A synchronous sweep can jointly decrease Q ("negative
				// gain"); discard it and keep the pre-sweep assignment.
				copy(st.comm, commBefore)
				st.rebuildAggregates()
			} else {
				prevQ = q
			}
			break
		}
		prevQ = q
	}
	stat.Modularity = prevQ
	return st.comm, stat
}

// sweepBuffered is the double-buffered whole-graph sweep: all targets are
// computed against the iteration-start snapshot, then applied at once.
func (st *phaseState) sweepBuffered(newComm []int64, scratches []*neighMap, iter int) {
	par.For(int(st.n), st.opt.Threads, func(w, lo, hi int) {
		scratch := scratches[w]
		for v := lo; v < hi; v++ {
			if !st.isActive(int64(v), iter) {
				newComm[v] = st.comm[v]
				continue
			}
			newComm[v] = st.bestMove(int64(v), st.comm, st.aTot, scratch)
		}
	})
	copy(st.comm, newComm)
	st.rebuildAggregates()
}

// sweepColored processes one independent color class at a time; classes see
// the updates of all earlier classes within the same iteration, which is
// what accelerates convergence relative to whole-graph buffering.
func (st *phaseState) sweepColored(colors [][]int64, newComm []int64, scratches []*neighMap, iter int) {
	for _, class := range colors {
		par.For(len(class), st.opt.Threads, func(w, lo, hi int) {
			scratch := scratches[w]
			for i := lo; i < hi; i++ {
				v := class[i]
				if !st.isActive(v, iter) {
					newComm[v] = st.comm[v]
					continue
				}
				newComm[v] = st.bestMove(v, st.comm, st.aTot, scratch)
			}
		})
		// Apply the class's moves (members are mutually non-adjacent, so
		// their decisions did not depend on one another's comm values).
		for _, v := range class {
			if newComm[v] != st.comm[v] {
				old := st.comm[v]
				st.aTot[old] -= st.k[v]
				st.aTot[newComm[v]] += st.k[v]
				st.commSize[old]--
				st.commSize[newComm[v]]++
				st.comm[v] = newComm[v]
			}
		}
	}
}

// neighMap mirrors the serial implementation's flat accumulation map; each
// worker owns one.
type neighMap struct {
	weight []float64
	mark   []int64
	stamp  int64
	keys   []int64
}

func newNeighMap(n int64) *neighMap {
	return &neighMap{
		weight: make([]float64, n),
		mark:   make([]int64, n),
		keys:   make([]int64, 0, 64),
	}
}

func (m *neighMap) reset() {
	m.stamp++
	m.keys = m.keys[:0]
}

func (m *neighMap) add(c int64, w float64) {
	if m.mark[c] != m.stamp {
		m.mark[c] = m.stamp
		m.weight[c] = 0
		m.keys = append(m.keys, c)
	}
	m.weight[c] += w
}

func (m *neighMap) get(c int64) float64 {
	if m.mark[c] != m.stamp {
		return 0
	}
	return m.weight[c]
}
