package shared

import (
	"distlouvain/internal/graph"
)

// FollowVertices computes the vertex-following initial assignment of
// Grappolo: every degree-1 vertex starts in the community of its sole
// neighbour instead of its own singleton, which removes trivially decided
// vertices from the first (and most expensive) phase.
//
// For an isolated degree-1 pair {u,v} (each other's sole neighbour), both
// join min(u,v) so the pair agrees on one label. Vertices whose only slot
// is a self loop stay put.
func FollowVertices(g *graph.CSR) []int64 {
	n := g.N
	comm := make([]int64, n)
	for v := range comm {
		comm[v] = int64(v)
	}
	soleNeighbor := func(v int64) (int64, bool) {
		nbrs := g.Neighbors(v)
		if len(nbrs) != 1 || nbrs[0].To == v {
			return 0, false
		}
		return nbrs[0].To, true
	}
	for v := int64(0); v < n; v++ {
		u, ok := soleNeighbor(v)
		if !ok {
			continue
		}
		if w, ok := soleNeighbor(u); ok && w == v {
			// Isolated pair: anchor at the smaller ID for determinism.
			if u > v {
				u = v
			}
		}
		comm[v] = u
	}
	return comm
}

// CountFollowed reports how many vertices the assignment moved out of their
// own singleton.
func CountFollowed(comm []int64) int64 {
	var c int64
	for v, cv := range comm {
		if cv != int64(v) {
			c++
		}
	}
	return c
}
