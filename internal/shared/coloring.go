package shared

import (
	"distlouvain/internal/graph"
)

// GreedyColoring computes a distance-1 coloring of g: adjacent vertices
// receive different colors. It is the sequential greedy first-fit algorithm
// over the natural vertex order; the number of colors is at most
// maxDegree+1. Self loops are ignored (a vertex is trivially "adjacent to
// itself").
func GreedyColoring(g *graph.CSR) ([]int, int) {
	n := g.N
	color := make([]int, n)
	for v := range color {
		color[v] = -1
	}
	// forbidden[c] == v marks color c as used by a neighbour of v.
	forbidden := make([]int64, 0)
	maxColor := 0
	for v := int64(0); v < n; v++ {
		for _, e := range g.Neighbors(v) {
			if e.To == v {
				continue
			}
			if c := color[e.To]; c >= 0 {
				for len(forbidden) <= c {
					forbidden = append(forbidden, -1)
				}
				forbidden[c] = v
			}
		}
		c := 0
		for c < len(forbidden) && forbidden[c] == v {
			c++
		}
		color[v] = c
		if c+1 > maxColor {
			maxColor = c + 1
		}
	}
	return color, maxColor
}

// ColorClasses groups vertices by color: classes[c] lists the vertices of
// color c. threads is accepted for interface symmetry with a future
// parallel (Jones–Plassmann) coloring; the greedy pass itself is serial, as
// in Grappolo's default configuration.
func ColorClasses(g *graph.CSR, threads int) ([][]int64, int) {
	_ = threads
	color, nc := GreedyColoring(g)
	classes := make([][]int64, nc)
	for v := int64(0); v < g.N; v++ {
		classes[color[v]] = append(classes[color[v]], v)
	}
	return classes, nc
}

// ValidateColoring checks that no two adjacent distinct vertices share a
// color. Used by tests and exposed for diagnostics.
func ValidateColoring(g *graph.CSR, color []int) bool {
	for v := int64(0); v < g.N; v++ {
		for _, e := range g.Neighbors(v) {
			if e.To != v && color[e.To] == color[v] {
				return false
			}
		}
	}
	return true
}
