// Package shared implements a Grappolo-style shared-memory parallel Louvain
// method (Lu, Halappanavar, Kalyanaraman, ParCo 2015) — the comparator the
// paper benchmarks against in Tables I and III — including its published
// heuristics:
//
//   - parallel vertex sweeps with double-buffered community state and the
//     minimum-label rule that suppresses synchronous swap cycles;
//   - optional distance-1 coloring, processing one independent color class
//     at a time with immediate state updates;
//   - optional vertex following, which pre-merges degree-1 vertices into
//     their sole neighbour;
//   - the adaptive Early Termination (ET) heuristic of the paper's §IV-B,
//     with the activity probability P(v,k) = P(v,k−1)·(1−α) and the 2%
//     inactivity cutoff (used for the Table I α sweep).
//
// The OpenMP worker team of the original is a goroutine pool (internal/par).
package shared

import "time"

// InactiveCutoff is the probability below which a vertex is permanently
// labelled inactive for the remainder of the phase (the paper's 2%).
const InactiveCutoff = 0.02

// DefaultTau is the paper's default threshold τ = 10⁻⁶.
const DefaultTau = 1e-6

// Options configures a shared-memory Louvain run.
type Options struct {
	// Threads is the worker-team size (≤0 selects GOMAXPROCS).
	Threads int
	// Tau is the modularity-gain threshold (≤0 selects DefaultTau).
	Tau float64
	// MaxPhases caps phases (0 = unlimited).
	MaxPhases int
	// MaxIterations caps iterations per phase (0 = unlimited).
	MaxIterations int
	// Alpha is the ET decay rate in [0,1]; 0 disables early termination
	// (every vertex stays active, the paper's baseline row of Table I).
	Alpha float64
	// UseColoring processes vertices one distance-1 color class at a time
	// with immediate updates, instead of whole-graph double buffering.
	UseColoring bool
	// VertexFollowing pre-merges degree-1 vertices into their neighbour
	// before the first phase.
	VertexFollowing bool
	// Seed drives the ET coin flips.
	Seed uint64
}

// PhaseStat records one phase.
type PhaseStat struct {
	Vertices   int64
	Iterations int
	Modularity float64
	// InactiveAtEnd counts vertices labelled inactive when the phase
	// ended (always 0 when Alpha == 0).
	InactiveAtEnd int64
	// Colors is the number of color classes used (0 unless UseColoring).
	Colors int
}

// Result is the outcome of a shared-memory Louvain run.
type Result struct {
	Comm            []int64 // final community per original vertex, dense labels
	Modularity      float64
	Communities     int64
	Phases          []PhaseStat
	TotalIterations int
	Runtime         time.Duration
}
