package shared

import (
	"math"
	"testing"
	"testing/quick"

	"distlouvain/internal/gen"
	"distlouvain/internal/graph"
	"distlouvain/internal/seq"
)

func twoCliques() *graph.CSR {
	b := graph.NewBuilder(8)
	clique := func(vs []int64) {
		for i := range vs {
			for j := i + 1; j < len(vs); j++ {
				if err := b.AddEdge(vs[i], vs[j], 1); err != nil {
					panic(err)
				}
			}
		}
	}
	clique([]int64{0, 1, 2, 3})
	clique([]int64{4, 5, 6, 7})
	if err := b.AddEdge(3, 4, 1); err != nil {
		panic(err)
	}
	return b.Build()
}

func TestRunTwoCliques(t *testing.T) {
	for _, threads := range []int{1, 2, 4} {
		res := Run(twoCliques(), Options{Threads: threads})
		if res.Communities != 2 {
			t.Fatalf("threads=%d: %d communities (comm=%v)", threads, res.Communities, res.Comm)
		}
		want := 24.0/26.0 - 0.5
		if math.Abs(res.Modularity-want) > 1e-12 {
			t.Fatalf("threads=%d: Q=%g want %g", threads, res.Modularity, want)
		}
	}
}

func TestRunMatchesSerialQuality(t *testing.T) {
	n, edges, _ := gen.PlantedPartition(8, 25, 0.4, 0.005, 21)
	g := gen.Build(n, edges)
	serial := seq.Run(g, seq.Options{})
	parallel := Run(g, Options{Threads: 4})
	// Different local optima are legal; quality must be comparable
	// ("modularity difference under 1%" per the paper's Table III note).
	if parallel.Modularity < serial.Modularity*0.97 {
		t.Fatalf("parallel Q=%.4f far below serial Q=%.4f", parallel.Modularity, serial.Modularity)
	}
	// And the reported modularity must be exact for its own assignment.
	if math.Abs(seq.Modularity(g, parallel.Comm)-parallel.Modularity) > 1e-9 {
		t.Fatal("reported modularity does not match assignment")
	}
}

func TestRunEmptyGraph(t *testing.T) {
	res := Run(graph.NewBuilder(0).Build(), Options{})
	if len(res.Comm) != 0 || res.Modularity != 0 {
		t.Fatalf("%+v", res)
	}
}

func TestRunNoEdges(t *testing.T) {
	res := Run(graph.NewBuilder(5).Build(), Options{Threads: 2})
	if res.Communities != 5 {
		t.Fatalf("isolated vertices merged: %v", res.Comm)
	}
}

func TestRunMaxCaps(t *testing.T) {
	_, edges := gen.ErdosRenyi(150, 600, 4)
	g := gen.Build(150, edges)
	res := Run(g, Options{MaxPhases: 1, MaxIterations: 2, Threads: 2})
	if len(res.Phases) != 1 || res.Phases[0].Iterations > 2 {
		t.Fatalf("caps ignored: %+v", res.Phases)
	}
}

func TestETAlphaOneReducesIterations(t *testing.T) {
	// The core Table I claim: aggressive ET cuts iterations sharply with
	// small modularity loss.
	n, edges := gen.BandedMesh(3000, 6)
	g := gen.Build(n, edges)
	base := Run(g, Options{Threads: 2, Alpha: 0, Seed: 5})
	aggr := Run(g, Options{Threads: 2, Alpha: 1.0, Seed: 5})
	if aggr.TotalIterations >= base.TotalIterations {
		t.Fatalf("ET(1.0) iterations %d >= baseline %d", aggr.TotalIterations, base.TotalIterations)
	}
	if aggr.Modularity < base.Modularity-0.05 {
		t.Fatalf("ET(1.0) Q=%.4f, baseline Q=%.4f", aggr.Modularity, base.Modularity)
	}
}

func TestETMarksVerticesInactive(t *testing.T) {
	n, edges := gen.BandedMesh(2000, 4)
	g := gen.Build(n, edges)
	res := Run(g, Options{Threads: 2, Alpha: 0.75, Seed: 9, MaxPhases: 1})
	if res.Phases[0].InactiveAtEnd == 0 {
		t.Fatal("no vertices went inactive with alpha=0.75")
	}
	base := Run(g, Options{Threads: 2, Alpha: 0, MaxPhases: 1})
	if base.Phases[0].InactiveAtEnd != 0 {
		t.Fatal("baseline marked vertices inactive")
	}
}

func TestColoringValid(t *testing.T) {
	for _, mk := range []func() *graph.CSR{
		twoCliques,
		func() *graph.CSR { n, e := gen.BandedMesh(500, 5); return gen.Build(n, e) },
		func() *graph.CSR { n, e := gen.ErdosRenyi(300, 2000, 3); return gen.Build(n, e) },
	} {
		g := mk()
		color, nc := GreedyColoring(g)
		if !ValidateColoring(g, color) {
			t.Fatal("invalid coloring")
		}
		maxDeg := int64(0)
		for v := int64(0); v < g.N; v++ {
			if d := g.Degree(v); d > maxDeg {
				maxDeg = d
			}
		}
		if int64(nc) > maxDeg+1 {
			t.Fatalf("%d colors for max degree %d", nc, maxDeg)
		}
	}
}

func TestColorClassesPartition(t *testing.T) {
	n, e := gen.ErdosRenyi(200, 800, 8)
	g := gen.Build(n, e)
	classes, nc := ColorClasses(g, 2)
	if len(classes) != nc {
		t.Fatalf("classes=%d nc=%d", len(classes), nc)
	}
	seen := make([]bool, n)
	for _, class := range classes {
		for _, v := range class {
			if seen[v] {
				t.Fatalf("vertex %d in two classes", v)
			}
			seen[v] = true
		}
	}
	for v, s := range seen {
		if !s {
			t.Fatalf("vertex %d in no class", v)
		}
	}
}

func TestColoringModeQuality(t *testing.T) {
	n, edges, _ := gen.PlantedPartition(6, 30, 0.4, 0.005, 17)
	g := gen.Build(n, edges)
	plain := Run(g, Options{Threads: 2, Seed: 1})
	colored := Run(g, Options{Threads: 2, Seed: 1, UseColoring: true})
	if colored.Phases[0].Colors == 0 {
		t.Fatal("coloring stats missing")
	}
	if colored.Modularity < plain.Modularity-0.03 {
		t.Fatalf("colored Q=%.4f plain Q=%.4f", colored.Modularity, plain.Modularity)
	}
}

func TestVertexFollowing(t *testing.T) {
	// Star with pendant vertices: all leaves should follow the hub.
	b := graph.NewBuilder(6)
	for v := int64(1); v < 6; v++ {
		if err := b.AddEdge(0, v, 1); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	init := FollowVertices(g)
	for v := 1; v < 6; v++ {
		if init[v] != 0 {
			t.Fatalf("leaf %d followed to %d", v, init[v])
		}
	}
	if init[0] != 0 {
		t.Fatalf("hub moved to %d", init[0])
	}
	if CountFollowed(init) != 5 {
		t.Fatalf("followed = %d", CountFollowed(init))
	}
}

func TestVertexFollowingIsolatedPair(t *testing.T) {
	b := graph.NewBuilder(4)
	if err := b.AddEdge(2, 3, 1); err != nil {
		t.Fatal(err)
	}
	init := FollowVertices(b.Build())
	if init[2] != 2 || init[3] != 2 {
		t.Fatalf("pair should anchor at 2: %v", init)
	}
	if init[0] != 0 || init[1] != 1 {
		t.Fatalf("isolated vertices moved: %v", init)
	}
}

func TestVertexFollowingSelfLoopOnly(t *testing.T) {
	b := graph.NewBuilder(2)
	if err := b.AddEdge(0, 0, 2); err != nil {
		t.Fatal(err)
	}
	init := FollowVertices(b.Build())
	if init[0] != 0 {
		t.Fatalf("self-loop vertex moved: %v", init)
	}
}

func TestVertexFollowingEndToEnd(t *testing.T) {
	// A planted-partition core with pendants hanging off vertex 0.
	n, edges, _ := gen.PlantedPartition(4, 20, 0.5, 0.01, 33)
	total := n + 10
	b := graph.NewBuilder(total)
	if err := b.AddAll(edges); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		if err := b.AddEdge(n+i, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	withVF := Run(g, Options{Threads: 2, VertexFollowing: true})
	without := Run(g, Options{Threads: 2})
	if withVF.Modularity < without.Modularity-0.03 {
		t.Fatalf("VF hurt quality: %.4f vs %.4f", withVF.Modularity, without.Modularity)
	}
	// Pendants end in the same community as the hub.
	for i := int64(0); i < 10; i++ {
		if withVF.Comm[n+i] != withVF.Comm[0] {
			t.Fatalf("pendant %d not with hub", n+i)
		}
	}
}

func TestRuntimeRecorded(t *testing.T) {
	res := Run(twoCliques(), Options{})
	if res.Runtime <= 0 {
		t.Fatal("runtime not recorded")
	}
}

// Property: reported modularity is always exact for the returned assignment
// and labels are dense, across thread counts and heuristics.
func TestQuickRunConsistency(t *testing.T) {
	f := func(seed uint64, cfg uint8) bool {
		threads := int(cfg%4) + 1
		alpha := float64(cfg%3) * 0.4
		coloring := cfg&8 != 0
		vf := cfg&16 != 0
		n, edges, _ := gen.PlantedPartition(5, 15, 0.5, 0.02, seed)
		g := gen.Build(n, edges)
		res := Run(g, Options{Threads: threads, Alpha: alpha, UseColoring: coloring, VertexFollowing: vf, Seed: seed})
		if int64(len(res.Comm)) != n {
			return false
		}
		maxLabel := int64(-1)
		seen := map[int64]bool{}
		for _, c := range res.Comm {
			if c < 0 {
				return false
			}
			seen[c] = true
			if c > maxLabel {
				maxLabel = c
			}
		}
		if int64(len(seen)) != res.Communities || maxLabel != res.Communities-1 {
			return false
		}
		return math.Abs(seq.Modularity(g, res.Comm)-res.Modularity) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: modularity is near-monotone phase over phase. Synchronous
// parallel sweeps may jointly make a small negative step (the "negative
// gain" scenario of Lu et al. that the paper cites), so a small tolerance
// is allowed — but large regressions would indicate a bug.
func TestQuickPhasesMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		n, edges := gen.ErdosRenyi(120, 500, seed)
		g := gen.Build(n, edges)
		res := Run(g, Options{Threads: 2, Seed: seed})
		for i := 1; i < len(res.Phases); i++ {
			if res.Phases[i].Modularity < res.Phases[i-1].Modularity-0.05 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestSharedDeterministicSameSeed(t *testing.T) {
	n, edges, _ := gen.PlantedPartition(6, 20, 0.5, 0.02, 19)
	g := gen.Build(n, edges)
	a := Run(g, Options{Threads: 3, Alpha: 0.5, Seed: 4})
	b := Run(g, Options{Threads: 3, Alpha: 0.5, Seed: 4})
	if a.Modularity != b.Modularity || a.TotalIterations != b.TotalIterations {
		t.Fatalf("same-seed runs diverged: %g/%g, %d/%d",
			a.Modularity, b.Modularity, a.TotalIterations, b.TotalIterations)
	}
	for v := range a.Comm {
		if a.Comm[v] != b.Comm[v] {
			t.Fatalf("assignment differs at %d", v)
		}
	}
}

func TestSharedThreadCountInvariantQuality(t *testing.T) {
	// Thread count changes scheduling but the double-buffered sweep makes
	// decisions from snapshots, so results must be identical across teams.
	n, edges, _ := gen.PlantedPartition(5, 24, 0.5, 0.02, 23)
	g := gen.Build(n, edges)
	ref := Run(g, Options{Threads: 1, Seed: 2})
	for _, threads := range []int{2, 4, 8} {
		got := Run(g, Options{Threads: threads, Seed: 2})
		if got.Modularity != ref.Modularity || got.TotalIterations != ref.TotalIterations {
			t.Fatalf("threads=%d diverged from single-thread: Q %g vs %g",
				threads, got.Modularity, ref.Modularity)
		}
		for v := range ref.Comm {
			if got.Comm[v] != ref.Comm[v] {
				t.Fatalf("threads=%d: assignment differs at %d", threads, v)
			}
		}
	}
}
