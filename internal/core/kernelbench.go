package core

import (
	"fmt"
	"sort"

	"distlouvain/internal/dgraph"
	"distlouvain/internal/graph"
	"distlouvain/internal/mpi"
)

// KernelBench drives the two hot kernels — the ΔQ sweep and the Step-5
// coarse-arc aggregation — in isolation on a single-rank in-process world,
// so go-test benchmarks and the paperbench baseline can measure ns/op and
// allocs/op without collective noise. useRef selects the map reference
// kernels (kernels_ref.go); otherwise the flat-table kernels run.
//
// Construction warms the state up with two full sweep+apply iterations so
// the community structure is non-trivial (coarse arcs actually merge) and
// the phase-lived buffers have reached steady-state capacity. After that,
// Sweep and CoarseArcs are read-only with respect to the community state:
// repeated calls do identical work.
type KernelBench struct {
	world    *mpi.InprocWorld
	st       *phaseState
	oldToNew map[int64]int64
	steps    StepTimes
}

// NewKernelBench builds the bench state for an n-vertex edge list.
func NewKernelBench(n int64, edges []graph.RawEdge, threads int, useRef bool) (*KernelBench, error) {
	world, err := mpi.NewInprocWorld(1)
	if err != nil {
		return nil, err
	}
	kb := &KernelBench{world: world}
	c := mpi.NewComm(world.Endpoint(0))
	dg, err := dgraph.Build(c, n, edges, nil)
	if err != nil {
		world.Close()
		return nil, err
	}
	cfg := &Config{Threads: threads, refKernels: useRef}
	cfg.fill()
	st, err := newPhaseState(dg, cfg, 0, &kb.steps)
	if err != nil {
		world.Close()
		return nil, err
	}
	kb.st = st
	for it := 1; it <= 2; it++ {
		if err := st.fetchCommunityInfo(); err != nil {
			world.Close()
			return nil, fmt.Errorf("kernelbench warm-up: %w", err)
		}
		moves := st.sweep(it)
		if err := st.pushDeltas(st.stageMoves(moves), moves); err != nil {
			world.Close()
			return nil, fmt.Errorf("kernelbench warm-up: %w", err)
		}
		if err := st.exchangeGhostComm(); err != nil {
			world.Close()
			return nil, fmt.Errorf("kernelbench warm-up: %w", err)
		}
	}
	// Single-rank renumbering, exactly as rebuild Steps 1–3 produce it:
	// surviving communities in ascending ID order, renumbered from 0.
	survivors := make([]int64, 0, dg.LocalN)
	for lc := int64(0); lc < dg.LocalN; lc++ {
		if st.cSize[lc] > 0 {
			survivors = append(survivors, dg.Base+lc)
		}
	}
	sort.Slice(survivors, func(i, j int) bool { return survivors[i] < survivors[j] })
	kb.oldToNew = make(map[int64]int64, len(survivors))
	for i, cid := range survivors {
		kb.oldToNew[cid] = int64(i)
	}
	if err := st.fetchCommunityInfo(); err != nil {
		world.Close()
		return nil, fmt.Errorf("kernelbench warm-up: %w", err)
	}
	return kb, nil
}

// Sweep runs one full ΔQ sweep over every local vertex without applying the
// chosen moves, and returns how many moves were proposed.
func (kb *KernelBench) Sweep() int {
	return len(kb.st.sweep(1))
}

// CoarseArcs runs the Step-5 coarse-arc aggregation over the current
// community assignment and returns the number of distinct coarse arcs.
func (kb *KernelBench) CoarseArcs() int {
	if kb.st.cfg.refKernels {
		return len(kb.st.coarseArcsMap(kb.oldToNew))
	}
	return len(kb.st.coarseArcsFlat(kb.oldToNew))
}

// Close releases the in-process world.
func (kb *KernelBench) Close() { kb.world.Close() }
