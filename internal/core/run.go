package core

import (
	"fmt"
	"math"
	"time"

	"distlouvain/internal/dgraph"
	"distlouvain/internal/gio"
	"distlouvain/internal/graph"
	"distlouvain/internal/mpi"
)

// Run executes the multi-phase distributed Louvain method (Algorithm 2) on
// the rank's share of the distributed graph. Every rank of dg.Comm must
// call Run with an identical Config.
//
// The returned assignment labels are dense global community IDs in
// [0, Communities); Result.LocalComm indexes them by original local vertex.
func Run(dg *dgraph.DistGraph, cfg Config) (*Result, error) {
	start := time.Now()
	cfg.fill()
	c := dg.Comm
	trafficStart := c.Stats().Snapshot()

	res := &Result{
		LocalBase: dg.Base,
		LocalComm: make([]int64, dg.LocalN),
	}
	// origComm[i] is the current-space community of original vertex
	// Base+i; it starts as the identity and is remapped every rebuild.
	origComm := res.LocalComm
	for i := range origComm {
		origComm[i] = dg.Base + int64(i)
	}

	steps := &StepTimes{}
	cur := dg
	prevQ := math.Inf(-1)
	finalTau := cfg.Tau
	forcedFinal := false

	for phase := 0; phase < cfg.MaxPhases; phase++ {
		tau := finalTau
		if len(cfg.TauSchedule) > 0 && !forcedFinal {
			tau = cfg.TauSchedule[phase%len(cfg.TauSchedule)]
		}

		st, err := newPhaseState(cur, &cfg, phase, steps)
		if err != nil {
			return nil, fmt.Errorf("phase %d setup: %w", phase, err)
		}
		stat, err := st.iterate(tau)
		if err != nil {
			return nil, fmt.Errorf("phase %d: %w", phase, err)
		}
		res.Phases = append(res.Phases, stat)
		res.TotalIterations += stat.Iterations

		// Flatten: each original vertex currently tracks a meta-vertex of
		// this phase's graph; advance it to that meta-vertex's final
		// community (serial equivalent: comm[res.Comm[v]]).
		flat, err := st.resolveVertexComms(origComm)
		if err != nil {
			return nil, fmt.Errorf("phase %d assignment flattening: %w", phase, err)
		}
		for i, mv := range origComm {
			origComm[i] = flat[mv]
		}

		// Rebuild unconditionally: it densifies labels and yields the
		// exact final modularity even when this was the last phase.
		ndg, oldToNew, err := st.rebuild(origComm)
		if err != nil {
			return nil, fmt.Errorf("phase %d rebuild: %w", phase, err)
		}
		for i, cid := range origComm {
			origComm[i] = oldToNew[cid]
		}
		res.Communities = ndg.GlobalN
		noCompaction := ndg.GlobalN == cur.GlobalN
		cur = ndg

		gain := stat.Modularity - prevQ
		prevQ = stat.Modularity
		if gain <= finalTau {
			if len(cfg.TauSchedule) > 0 && tau > finalTau && !forcedFinal {
				// Converged under a cycled (coarser) threshold: force one
				// more pass at the lowest threshold to secure quality
				// (§V-C a).
				forcedFinal = true
				continue
			}
			break
		}
		if stat.Exit == ExitETC {
			// ETC terminated the phase by inactivity rather than τ;
			// continue to the next phase (the outer loop's τ test above
			// governs overall convergence).
			continue
		}
		if noCompaction {
			break
		}
	}

	// Exact final modularity from the final coarse graph: with the
	// identity partition, E_c is vertex c's self loop and A_c its degree.
	var eLocal, aSqLocal float64
	for lv := int64(0); lv < cur.LocalN; lv++ {
		eLocal += cur.SelfLoop[lv]
		aSqLocal += cur.K[lv] * cur.K[lv]
	}
	sums, err := c.AllreduceFloat64s([]float64{eLocal, aSqLocal}, mpi.OpSum)
	if err != nil {
		return nil, fmt.Errorf("final modularity allreduce: %w", err)
	}
	if cur.M2 > 0 {
		res.Modularity = sums[0]/cur.M2 - sums[1]/(cur.M2*cur.M2)
	}

	if cfg.GatherOutput {
		if err := gatherOutput(dg, res); err != nil {
			return nil, err
		}
	}

	res.Runtime = time.Since(start)
	steps.Total = res.Runtime
	res.Steps = *steps
	res.Traffic = c.Stats().Snapshot().Sub(trafficStart)
	return res, nil
}

// gatherOutput assembles the complete assignment at rank 0 (the paper's
// quality-assessment collectives).
func gatherOutput(dg *dgraph.DistGraph, res *Result) error {
	payload := mpi.AppendInt64(nil, res.LocalBase)
	payload = mpi.AppendInt64s(payload, res.LocalComm)
	blocks, err := dg.Comm.Gatherv(0, payload)
	if err != nil {
		return err
	}
	if dg.Comm.Rank() != 0 {
		return nil
	}
	global := make([]int64, dg.GlobalN)
	for _, b := range blocks {
		d := mpi.NewDecoder(b)
		base, err := d.Int64()
		if err != nil {
			return err
		}
		vals, err := d.Int64s(d.Remaining() / 8)
		if err != nil {
			return err
		}
		copy(global[base:], vals)
	}
	res.GlobalComm = global
	return nil
}

// RunOnEdges is a convenience harness: it splits the given edge list into p
// contiguous chunks, spins up p in-process ranks, builds the distributed
// graph and runs the configured Louvain variant. It returns rank 0's Result
// with GlobalComm populated (GatherOutput is forced on). Tests, examples
// and benchmarks use it as the single-binary analogue of an mpirun
// invocation.
func RunOnEdges(p int, n int64, edges []graph.RawEdge, cfg Config) (*Result, error) {
	cfg.GatherOutput = true
	var root *Result
	err := mpi.Run(p, func(c *mpi.Comm) error {
		lo, hi := gio.SegmentRange(int64(len(edges)), c.Rank(), p)
		dg, err := dgraph.Build(c, n, edges[lo:hi], nil)
		if err != nil {
			return err
		}
		res, err := Run(dg, cfg)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			root = res
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return root, nil
}
