package core

import (
	"fmt"
	"math"
	"time"

	"distlouvain/internal/dgraph"
	"distlouvain/internal/gio"
	"distlouvain/internal/graph"
	"distlouvain/internal/mpi"
	"distlouvain/internal/obsv"
)

// runState is the complete driver position of a multi-phase run between
// phases: exactly what a phase-boundary checkpoint captures and what Resume
// reconstructs. res.LocalComm doubles as the cumulative original-vertex →
// current-community mapping (origComm); it is remapped every rebuild.
type runState struct {
	comm *mpi.Comm
	cfg  *Config

	cur   *dgraph.DistGraph // current (coarsened) graph
	origN int64             // vertex count of the original input graph
	res   *Result           // accumulating result; LocalComm is origComm

	phase       int     // next phase index to execute
	prevQ       float64 // modularity after the last completed phase
	forcedFinal bool    // TC: the forced lowest-threshold pass has been entered

	steps *StepTimes
}

// Run executes the multi-phase distributed Louvain method (Algorithm 2) on
// the rank's share of the distributed graph. Every rank of dg.Comm must
// call Run with an identical Config.
//
// The returned assignment labels are dense global community IDs in
// [0, Communities); Result.LocalComm indexes them by original local vertex.
func Run(dg *dgraph.DistGraph, cfg Config) (*Result, error) {
	cfg.fill()
	res := &Result{
		LocalBase: dg.Base,
		LocalComm: make([]int64, dg.LocalN),
	}
	// origComm starts as the identity: every original vertex is its own
	// community in the phase-0 graph.
	for i := range res.LocalComm {
		res.LocalComm[i] = dg.Base + int64(i)
	}
	rs := &runState{
		comm:  dg.Comm,
		cfg:   &cfg,
		cur:   dg,
		origN: dg.GlobalN,
		res:   res,
		prevQ: math.Inf(-1),
		steps: &StepTimes{},
	}
	return rs.runLoop()
}

// runLoop drives phases from rs.phase until convergence. It is the shared
// tail of Run (which starts at phase 0 on the input graph) and Resume
// (which starts mid-run from checkpointed state).
func (rs *runState) runLoop() (*Result, error) {
	start := time.Now()
	cfg := rs.cfg
	c := rs.comm
	res := rs.res
	trafficStart := c.Stats().Snapshot()
	origComm := res.LocalComm
	finalTau := cfg.Tau

	// The run span closes only on success; on an error return it stays
	// open, so the tracer's Path/ring tail still names where the run died.
	tr := cfg.Tracer
	rsp := tr.Begin(obsv.KindRun, "run")

	// Wire-format negotiation: every rank proposes the newest frame layout
	// it accepts and the world settles on the minimum, so a rank capped at
	// v1 (rolling upgrade, debugging) drags its peers down to frames it can
	// decode. One scalar allreduce per run — Resume renegotiates through
	// this same path, so a run may change wire format across restarts.
	wire, err := c.AllreduceInt64(int64(cfg.proposeWire()), mpi.OpMin)
	if err != nil {
		return nil, fmt.Errorf("wire-format negotiation: %w", err)
	}
	if wire < mpi.WireV1 || wire > mpi.WireV2 {
		return nil, fmt.Errorf("wire-format negotiation settled on unsupported version %d", wire)
	}
	cfg.wire = int(wire)

	for ; rs.phase < cfg.MaxPhases; rs.phase++ {
		phase := rs.phase
		tau := finalTau
		if len(cfg.TauSchedule) > 0 && !rs.forcedFinal {
			tau = cfg.TauSchedule[phase%len(cfg.TauSchedule)]
		}
		tr.SetPos(phase, 0)
		psp := tr.Begin(obsv.KindPhase, "phase")
		cfg.progress(ProgressEvent{Kind: ProgressPhaseStart, Phase: phase, Modularity: rs.prevQ, Vertices: rs.cur.GlobalN})

		st, err := newPhaseState(rs.cur, cfg, phase, rs.steps)
		if err != nil {
			return nil, fmt.Errorf("phase %d setup: %w", phase, err)
		}
		stat, err := st.iterate(tau)
		if err != nil {
			return nil, fmt.Errorf("phase %d: %w", phase, err)
		}
		res.Phases = append(res.Phases, stat)
		res.TotalIterations += stat.Iterations

		// Flatten: each original vertex currently tracks a meta-vertex of
		// this phase's graph; advance it to that meta-vertex's final
		// community (serial equivalent: comm[res.Comm[v]]).
		fsp := tr.Begin(obsv.KindP2P, "flatten")
		flat, err := st.resolveVertexComms(origComm)
		if err != nil {
			return nil, fmt.Errorf("phase %d assignment flattening: %w", phase, err)
		}
		for i, mv := range origComm {
			origComm[i] = flat[mv]
		}
		fsp.End()

		// Rebuild unconditionally: it densifies labels and yields the
		// exact final modularity even when this was the last phase.
		ndg, oldToNew, err := st.rebuild(origComm)
		if err != nil {
			return nil, fmt.Errorf("phase %d rebuild: %w", phase, err)
		}
		for i, cid := range origComm {
			origComm[i] = oldToNew[cid]
		}
		res.Communities = ndg.GlobalN
		noCompaction := ndg.GlobalN == rs.cur.GlobalN
		rs.cur = ndg

		gain := stat.Modularity - rs.prevQ
		rs.prevQ = stat.Modularity
		stop := false
		if gain <= finalTau {
			if len(cfg.TauSchedule) > 0 && tau > finalTau && !rs.forcedFinal {
				// Converged under a cycled (coarser) threshold: force one
				// more pass at the lowest threshold to secure quality
				// (§V-C a).
				rs.forcedFinal = true
			} else {
				stop = true
			}
		} else if stat.Exit != ExitETC && noCompaction {
			// ETC terminated the phase by inactivity rather than τ; give
			// the next phase a chance even without compaction. Otherwise a
			// non-compacting phase means a fixed point.
			stop = true
		}
		if stop {
			psp.End()
			break
		}

		// Interrupt poll: a collective decision (allreduce max of the
		// per-rank hook verdicts), so every rank stops at the same phase
		// boundary. A stop forces a final checkpoint regardless of the
		// CheckpointEvery schedule — the whole point is resuming later.
		if cfg.Interrupted != nil {
			var local int64
			if cfg.Interrupted() {
				local = 1
			}
			flagged, err := c.AllreduceInt64(local, mpi.OpMax)
			if err != nil {
				return nil, fmt.Errorf("phase %d interrupt poll: %w", phase, err)
			}
			if flagged != 0 {
				if cfg.CheckpointDir != "" {
					if err := rs.writeCheckpoint(); err != nil {
						return nil, fmt.Errorf("phase %d final checkpoint: %w", phase, err)
					}
					return nil, fmt.Errorf("%w after phase %d (checkpoint committed)", ErrInterrupted, phase)
				}
				return nil, fmt.Errorf("%w after phase %d (no checkpoint directory configured)", ErrInterrupted, phase)
			}
		}

		// Phase-boundary snapshot: only while the run continues (a run
		// about to terminate delivers its result instead) and only when
		// another phase can actually execute.
		if cfg.CheckpointDir != "" && (phase+1)%cfg.CheckpointEvery == 0 && phase+1 < cfg.MaxPhases {
			if err := rs.writeCheckpoint(); err != nil {
				return nil, fmt.Errorf("phase %d checkpoint: %w", phase, err)
			}
		}
		psp.End()
	}

	// Exact final modularity from the final coarse graph: with the
	// identity partition, E_c is vertex c's self loop and A_c its degree.
	var eLocal, aSqLocal float64
	for lv := int64(0); lv < rs.cur.LocalN; lv++ {
		eLocal += rs.cur.SelfLoop[lv]
		aSqLocal += rs.cur.K[lv] * rs.cur.K[lv]
	}
	sums, err := c.AllreduceFloat64s([]float64{eLocal, aSqLocal}, mpi.OpSum)
	if err != nil {
		return nil, fmt.Errorf("final modularity allreduce: %w", err)
	}
	if rs.cur.M2 > 0 {
		res.Modularity = sums[0]/rs.cur.M2 - sums[1]/(rs.cur.M2*rs.cur.M2)
	}

	if cfg.GatherOutput {
		gsp := tr.Begin(obsv.KindP2P, "gather-output")
		err := gatherOutput(c, rs.origN, res)
		gsp.End()
		if err != nil {
			return nil, err
		}
	}

	rsp.End()
	res.Runtime = time.Since(start)
	rs.steps.Total = res.Runtime
	res.Steps = *rs.steps
	res.Traffic = c.Stats().Snapshot().Sub(trafficStart)
	cfg.progress(ProgressEvent{Kind: ProgressDone, Phase: rs.phase, Iteration: res.TotalIterations, Modularity: res.Modularity, Vertices: rs.cur.GlobalN, Communities: res.Communities})
	return res, nil
}

// gatherOutput assembles the complete assignment at rank 0 (the paper's
// quality-assessment collectives). globalN is the original graph's vertex
// count.
func gatherOutput(c *mpi.Comm, globalN int64, res *Result) error {
	payload := mpi.AppendInt64(nil, res.LocalBase)
	payload = mpi.AppendInt64s(payload, res.LocalComm)
	blocks, err := c.Gatherv(0, payload)
	if err != nil {
		return err
	}
	if c.Rank() != 0 {
		return nil
	}
	global := make([]int64, globalN)
	for _, b := range blocks {
		d := mpi.NewDecoder(b)
		base, err := d.Int64()
		if err != nil {
			return err
		}
		vals, err := d.Int64s(d.Remaining() / 8)
		if err != nil {
			return err
		}
		copy(global[base:], vals)
	}
	res.GlobalComm = global
	return nil
}

// RunOnEdges is a convenience harness: it splits the given edge list into p
// contiguous chunks, spins up p in-process ranks, builds the distributed
// graph and runs the configured Louvain variant. It returns rank 0's Result
// with GlobalComm populated (GatherOutput is forced on). Tests, examples
// and benchmarks use it as the single-binary analogue of an mpirun
// invocation.
func RunOnEdges(p int, n int64, edges []graph.RawEdge, cfg Config) (*Result, error) {
	cfg.GatherOutput = true
	var root *Result
	err := mpi.Run(p, func(c *mpi.Comm) error {
		lo, hi := gio.SegmentRange(int64(len(edges)), c.Rank(), p)
		dg, err := dgraph.Build(c, n, edges[lo:hi], nil)
		if err != nil {
			return err
		}
		res, err := Run(dg, cfg)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			root = res
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return root, nil
}
