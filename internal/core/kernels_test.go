package core

import (
	"math"
	"slices"
	"testing"

	"distlouvain/internal/gen"
	"distlouvain/internal/graph"
)

// floatWeights replaces the unit weights of an edge list with deterministic
// non-associative float weights, so any order-dependence in float
// accumulation shows up as a bitwise trajectory difference.
func floatWeights(edges []graph.RawEdge) []graph.RawEdge {
	out := make([]graph.RawEdge, len(edges))
	for i, e := range edges {
		w := 0.3 + float64((e.U*31+e.V*17+int64(i)*7)%97)*0.137
		out[i] = graph.RawEdge{U: e.U, V: e.V, W: w}
	}
	return out
}

// sameTrajectory asserts two runs are move-for-move and bit-for-bit equal:
// same phase count, same per-iteration modularity bits and move counts,
// same final modularity bits, same assignment.
func sameTrajectory(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if len(got.Phases) != len(want.Phases) {
		t.Fatalf("%s: %d phases vs %d", label, len(got.Phases), len(want.Phases))
	}
	for p := range want.Phases {
		g, w := got.Phases[p], want.Phases[p]
		if !slices.Equal(g.MovesTrajectory, w.MovesTrajectory) {
			t.Fatalf("%s: phase %d moves %v vs %v", label, p, g.MovesTrajectory, w.MovesTrajectory)
		}
		if len(g.QTrajectory) != len(w.QTrajectory) {
			t.Fatalf("%s: phase %d ran %d iterations vs %d", label, p, len(g.QTrajectory), len(w.QTrajectory))
		}
		for i := range w.QTrajectory {
			if math.Float64bits(g.QTrajectory[i]) != math.Float64bits(w.QTrajectory[i]) {
				t.Fatalf("%s: phase %d iter %d Q %.17g vs %.17g", label, p, i, g.QTrajectory[i], w.QTrajectory[i])
			}
		}
	}
	if math.Float64bits(got.Modularity) != math.Float64bits(want.Modularity) {
		t.Fatalf("%s: modularity %.17g vs %.17g", label, got.Modularity, want.Modularity)
	}
	if !slices.Equal(got.GlobalComm, want.GlobalComm) {
		t.Fatalf("%s: assignments differ", label)
	}
}

// TestFlatKernelsMatchMapReference runs full multi-phase distributed runs
// with the flat kernels and with the map reference kernels and demands
// move-for-move, bit-for-bit identical trajectories. Integer edge weights
// make every float sum order-independent, so the equivalence must hold at
// any thread count.
func TestFlatKernelsMatchMapReference(t *testing.T) {
	n, edges := gen.ErdosRenyi(400, 2400, 11)
	coloring := Baseline()
	coloring.UseColoring = true
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"baseline", Baseline()},
		{"et+tc", ETWithTC(0.25)},
		{"etc", ETC(0.25)},
		{"coloring", coloring},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, threads := range []int{1, 3} {
				flatCfg := tc.cfg
				flatCfg.Threads = threads
				refCfg := flatCfg
				refCfg.refKernels = true
				got, err := RunOnEdges(3, n, edges, flatCfg)
				if err != nil {
					t.Fatal(err)
				}
				want, err := RunOnEdges(3, n, edges, refCfg)
				if err != nil {
					t.Fatal(err)
				}
				label := "threads=" + string(rune('0'+threads))
				sameTrajectory(t, label, got, want)
			}
		})
	}
}

// TestFlatKernelsMatchMapReferenceFloat is the float-weighted differential:
// at Threads=1 both kernel sets accumulate every sum in the same order, so
// even non-associative weights must reproduce bit for bit.
func TestFlatKernelsMatchMapReferenceFloat(t *testing.T) {
	n, edges := gen.ErdosRenyi(350, 2100, 23)
	edges = floatWeights(edges)
	for _, p := range []int{1, 3} {
		cfg := Baseline()
		cfg.Threads = 1
		refCfg := cfg
		refCfg.refKernels = true
		got, err := RunOnEdges(p, n, edges, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := RunOnEdges(p, n, edges, refCfg)
		if err != nil {
			t.Fatal(err)
		}
		sameTrajectory(t, "p="+string(rune('0'+p)), got, want)
	}
}

// TestFloatWeightedRunReproducible is the regression for the coarsening
// nondeterminism this package shipped with: rebuild emitted coarse arcs in
// Go map range order, BuildFromArcs merged parallel arcs with an unstable
// sort, and the resulting float coarse weights differed bit-wise from run
// to run. With canonical sorted arc emission, the same float-weighted input
// must retrace the identical trajectory every time — including multi-thread
// sweeps and multi-rank coarsening.
func TestFloatWeightedRunReproducible(t *testing.T) {
	n, edges := gen.ErdosRenyi(400, 2800, 37)
	edges = floatWeights(edges)
	cfg := Baseline()
	cfg.Threads = 3
	want, err := RunOnEdges(3, n, edges, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Phases) < 2 {
		t.Fatalf("run converged in %d phase(s); coarsening path not exercised", len(want.Phases))
	}
	for run := 0; run < 3; run++ {
		got, err := RunOnEdges(3, n, edges, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sameTrajectory(t, "rerun", got, want)
	}
}

// TestFloatWeightedResumeBitIdentical extends the checkpoint equivalence
// guarantee to float-weighted graphs: resuming a committed snapshot at the
// same rank count retraces the uninterrupted trajectory bit for bit. (Rank
// counts may not vary here — float summation order legitimately depends on
// the vertex partition.)
func TestFloatWeightedResumeBitIdentical(t *testing.T) {
	n, edges := gen.ErdosRenyi(300, 1800, 41)
	edges = floatWeights(edges)
	cfg := Baseline()
	cfg.Threads = 2
	want, err := RunOnEdges(3, n, edges, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Phases) < 2 {
		t.Fatalf("run converged in %d phase(s); no phase boundary to checkpoint", len(want.Phases))
	}
	dir := t.TempDir()
	ckptCfg := cfg
	ckptCfg.CheckpointDir = dir
	got, err := RunOnEdges(3, n, edges, ckptCfg)
	if err != nil {
		t.Fatal(err)
	}
	sameOutcome(t, "checkpointing run", got, want)
	sameOutcome(t, "resume", resumeInproc(t, 3, dir, cfg), want)
}

// TestSweepSteadyStateAllocs pins the satellite claim that the hoisted
// per-worker tables and move buffers stop the sweep from allocating per
// vertex or per class: after warm-up, a single-threaded flat sweep performs
// at most one constant allocation (the par.For body closure, which escapes
// because the pool may hand it to goroutines) regardless of graph size.
func TestSweepSteadyStateAllocs(t *testing.T) {
	n, edges := gen.ErdosRenyi(500, 3000, 7)
	kb, err := NewKernelBench(n, edges, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	defer kb.Close()
	kb.Sweep() // settle buffer capacities
	allocs := testing.AllocsPerRun(20, func() { kb.Sweep() })
	if allocs > 1 {
		t.Fatalf("steady-state flat sweep allocates %.1f times per run, want <= 1", allocs)
	}
}

func benchKernel(b *testing.B, useRef bool, op func(*KernelBench) int) {
	n, edges := gen.ErdosRenyi(5000, 40000, 13)
	kb, err := NewKernelBench(n, edges, 1, useRef)
	if err != nil {
		b.Fatal(err)
	}
	defer kb.Close()
	op(kb) // warm up
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op(kb)
	}
}

func BenchmarkSweepFlat(b *testing.B) {
	benchKernel(b, false, func(kb *KernelBench) int { return kb.Sweep() })
}

func BenchmarkSweepMap(b *testing.B) {
	benchKernel(b, true, func(kb *KernelBench) int { return kb.Sweep() })
}

func BenchmarkCoarseArcsFlat(b *testing.B) {
	benchKernel(b, false, func(kb *KernelBench) int { return kb.CoarseArcs() })
}

func BenchmarkCoarseArcsMap(b *testing.B) {
	benchKernel(b, true, func(kb *KernelBench) int { return kb.CoarseArcs() })
}
