package core

import (
	"fmt"

	"distlouvain/internal/dgraph"
	"distlouvain/internal/mpi"
	"distlouvain/internal/par"
)

// DistColoring computes a distance-1 coloring of the distributed graph with
// the Jones–Plassmann algorithm: every vertex draws a random priority; in
// each round, an uncolored vertex whose priority beats all of its uncolored
// neighbours takes the smallest color absent from its colored
// neighbourhood. Ghost colors are refreshed between rounds, so adjacent
// vertices — including cross-rank pairs — never share a color.
//
// It returns this rank's local colors and the global color count. This
// implements the distributed half of the paper's §VI future work ("use of
// distance-1 coloring to ensure that the set of vertices that are processed
// in parallel ... are mutually non-adjacent").
func DistColoring(dg *dgraph.DistGraph, seed uint64) ([]int32, int, error) {
	c := dg.Comm
	n := dg.LocalN
	color := make([]int32, n)
	for i := range color {
		color[i] = -1
	}
	// Deterministic global priorities: every rank derives the same value
	// for the same global vertex, so no exchange is needed for weights.
	prio := func(g int64) uint64 { return par.Mix64(seed ^ uint64(g)*0x9e3779b97f4a7c15) }

	// Ghost color table, refreshed per round via the same push lists the
	// Louvain iteration uses (rebuilt locally here to keep the coloring
	// self-contained).
	p := c.Size()
	ghostSlots := make([][]int32, p)
	for i := range dg.Ghosts {
		o := dg.GhostOwner[i]
		ghostSlots[o] = append(ghostSlots[o], int32(i))
	}
	send := make([][]byte, p)
	for q := 0; q < p; q++ {
		ids := make([]int64, len(ghostSlots[q]))
		for i, slot := range ghostSlots[q] {
			ids[i] = dg.Ghosts[slot]
		}
		send[q] = mpi.EncodeInt64s(ids)
	}
	recv, err := c.Alltoall(send)
	if err != nil {
		return nil, 0, err
	}
	pushList := make([][]int64, p)
	for q := 0; q < p; q++ {
		ids, err := mpi.DecodeInt64s(recv[q])
		if err != nil {
			return nil, 0, err
		}
		pushList[q] = make([]int64, len(ids))
		for i, g := range ids {
			if !dg.IsLocal(g) {
				return nil, 0, fmt.Errorf("core: coloring: rank %d asked for non-owned vertex %d", q, g)
			}
			pushList[q][i] = g - dg.Base
		}
	}
	ghostColor := make([]int32, len(dg.Ghosts))
	for i := range ghostColor {
		ghostColor[i] = -1
	}
	exchangeColors := func() error {
		out := make([][]byte, p)
		for q := 0; q < p; q++ {
			buf := make([]byte, 0, 8*len(pushList[q]))
			for _, lv := range pushList[q] {
				buf = mpi.AppendInt64(buf, int64(color[lv]))
			}
			out[q] = buf
		}
		in, err := c.Alltoall(out)
		if err != nil {
			return err
		}
		for q := 0; q < p; q++ {
			vals, err := mpi.DecodeInt64s(in[q])
			if err != nil {
				return err
			}
			if len(vals) != len(ghostSlots[q]) {
				return fmt.Errorf("core: coloring: short color reply from rank %d", q)
			}
			for i, v := range vals {
				ghostColor[ghostSlots[q][i]] = int32(v)
			}
		}
		return nil
	}

	colorOf := func(g int64) int32 {
		if dg.IsLocal(g) {
			return color[g-dg.Base]
		}
		return ghostColor[dg.GhostIndex[g]]
	}

	maxColor := int32(0)
	for round := 0; ; round++ {
		if err := exchangeColors(); err != nil {
			return nil, 0, err
		}
		var coloredNow int64
		forbidden := make(map[int32]struct{}, 16)
		for lv := int64(0); lv < n; lv++ {
			if color[lv] >= 0 {
				continue
			}
			g := dg.Global(lv)
			pg := prio(g)
			dominant := true
			clear(forbidden)
			for _, e := range dg.Neighbors(lv) {
				if e.To == g {
					continue
				}
				nc := colorOf(e.To)
				if nc >= 0 {
					forbidden[nc] = struct{}{}
					continue
				}
				pu := prio(e.To)
				if pu > pg || (pu == pg && e.To > g) {
					dominant = false
					break
				}
			}
			if !dominant {
				continue
			}
			var pick int32
			for {
				if _, used := forbidden[pick]; !used {
					break
				}
				pick++
			}
			color[lv] = pick
			if pick+1 > maxColor {
				maxColor = pick + 1
			}
			coloredNow++
		}
		remaining, err := c.AllreduceInt64(countUncolored(color), mpi.OpSum)
		if err != nil {
			return nil, 0, err
		}
		if remaining == 0 {
			break
		}
		if coloredNow == 0 && round > int(dg.GlobalN)+1 {
			return nil, 0, fmt.Errorf("core: coloring failed to make progress")
		}
	}
	globalMax, err := c.AllreduceInt64(int64(maxColor), mpi.OpMax)
	if err != nil {
		return nil, 0, err
	}
	return color, int(globalMax), nil
}

func countUncolored(color []int32) int64 {
	var c int64
	for _, v := range color {
		if v < 0 {
			c++
		}
	}
	return c
}

// colorClasses groups local vertices by color.
func colorClasses(color []int32, numColors int) [][]int64 {
	classes := make([][]int64, numColors)
	for lv, c := range color {
		classes[c] = append(classes[c], int64(lv))
	}
	return classes
}

// ValidateDistColoring checks (collectively) that no edge connects two
// vertices of the same color. Exposed for tests and diagnostics.
func ValidateDistColoring(dg *dgraph.DistGraph, color []int32) (bool, error) {
	// Refresh ghost colors once, then check every local arc.
	c := dg.Comm
	p := c.Size()
	ghostSlots := make([][]int32, p)
	for i := range dg.Ghosts {
		ghostSlots[dg.GhostOwner[i]] = append(ghostSlots[dg.GhostOwner[i]], int32(i))
	}
	send := make([][]byte, p)
	for q := 0; q < p; q++ {
		ids := make([]int64, len(ghostSlots[q]))
		for i, slot := range ghostSlots[q] {
			ids[i] = dg.Ghosts[slot]
		}
		send[q] = mpi.EncodeInt64s(ids)
	}
	recv, err := c.Alltoall(send)
	if err != nil {
		return false, err
	}
	resp := make([][]byte, p)
	for q := 0; q < p; q++ {
		ids, err := mpi.DecodeInt64s(recv[q])
		if err != nil {
			return false, err
		}
		buf := make([]byte, 0, 8*len(ids))
		for _, g := range ids {
			buf = mpi.AppendInt64(buf, int64(color[g-dg.Base]))
		}
		resp[q] = buf
	}
	answers, err := c.Alltoall(resp)
	if err != nil {
		return false, err
	}
	ghostColor := make([]int32, len(dg.Ghosts))
	for q := 0; q < p; q++ {
		vals, err := mpi.DecodeInt64s(answers[q])
		if err != nil {
			return false, err
		}
		for i, v := range vals {
			ghostColor[ghostSlots[q][i]] = int32(v)
		}
	}
	ok := int64(1)
	for lv := int64(0); lv < dg.LocalN; lv++ {
		g := dg.Global(lv)
		for _, e := range dg.Neighbors(lv) {
			if e.To == g {
				continue
			}
			var nc int32
			if dg.IsLocal(e.To) {
				nc = color[e.To-dg.Base]
			} else {
				nc = ghostColor[dg.GhostIndex[e.To]]
			}
			if nc == color[lv] {
				ok = 0
			}
		}
	}
	allOK, err := c.AllreduceInt64(ok, mpi.OpMin)
	if err != nil {
		return false, err
	}
	return allOK == 1, nil
}
