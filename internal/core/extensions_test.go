package core

import (
	"fmt"
	"math"
	"testing"

	"distlouvain/internal/dgraph"
	"distlouvain/internal/gen"
	"distlouvain/internal/gio"
	"distlouvain/internal/graph"
	"distlouvain/internal/mpi"
	"distlouvain/internal/seq"
)

// withDistGraph builds the distributed graph over p ranks and runs body.
func withDistGraph(t *testing.T, p int, n int64, edges []graph.RawEdge, body func(dg *dgraph.DistGraph) error) {
	t.Helper()
	err := mpi.Run(p, func(c *mpi.Comm) error {
		lo, hi := gio.SegmentRange(int64(len(edges)), c.Rank(), p)
		dg, err := dgraph.Build(c, n, edges[lo:hi], nil)
		if err != nil {
			return err
		}
		return body(dg)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistColoringValid(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		for _, mk := range []func() (int64, []graph.RawEdge){
			func() (int64, []graph.RawEdge) { return gen.Grid2D(30, 30, true) },
			func() (int64, []graph.RawEdge) { n, e := gen.ErdosRenyi(300, 1500, 3); return n, e },
			func() (int64, []graph.RawEdge) { n, e, _, _ := gen.LFR(gen.DefaultLFR(1000, 0.3, 5)); return n, e },
		} {
			n, edges := mk()
			withDistGraph(t, p, n, edges, func(dg *dgraph.DistGraph) error {
				color, nc, err := DistColoring(dg, 7)
				if err != nil {
					return err
				}
				if nc <= 0 {
					return fmt.Errorf("no colors")
				}
				for lv, c := range color {
					if c < 0 || int(c) >= nc {
						return fmt.Errorf("vertex %d has color %d of %d", lv, c, nc)
					}
				}
				ok, err := ValidateDistColoring(dg, color)
				if err != nil {
					return err
				}
				if !ok {
					return fmt.Errorf("p=%d: adjacent vertices share a color", p)
				}
				return nil
			})
		}
	}
}

func TestDistColoringMatchesAcrossRankCounts(t *testing.T) {
	// The number of colors should stay small (max degree + 1 bound) no
	// matter how the graph is split.
	n, edges := gen.Grid2D(20, 20, true)
	maxDeg := int64(8)
	for _, p := range []int{1, 3} {
		withDistGraph(t, p, n, edges, func(dg *dgraph.DistGraph) error {
			_, nc, err := DistColoring(dg, 1)
			if err != nil {
				return err
			}
			if int64(nc) > maxDeg+1 {
				return fmt.Errorf("p=%d: %d colors for max degree %d", p, nc, maxDeg)
			}
			return nil
		})
	}
}

func TestColoredVariantConsistency(t *testing.T) {
	// UseColoring must keep all structural invariants: exact modularity,
	// dense labels, comparable quality.
	n, edges, _ := gen.PlantedPartition(6, 20, 0.5, 0.01, 61)
	g := gen.Build(n, edges)
	plain, err := RunOnEdges(3, n, edges, Baseline())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Baseline()
	cfg.UseColoring = true
	colored, err := RunOnEdges(3, n, edges, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(seq.Modularity(g, colored.GlobalComm)-colored.Modularity) > 1e-9 {
		t.Fatal("colored run reports wrong modularity")
	}
	if colored.Modularity < plain.Modularity-0.05 {
		t.Fatalf("coloring hurt quality badly: %.4f vs %.4f", colored.Modularity, plain.Modularity)
	}
	if colored.Phases[0].Colors == 0 {
		t.Fatal("colors not recorded in phase stats")
	}
}

func TestNeighborCollectivesSameResult(t *testing.T) {
	// Routing the ghost exchange through the sparse neighborhood
	// collective must be a pure optimization: identical results.
	n, edges, _ := gen.PlantedPartition(5, 24, 0.5, 0.02, 71)
	for _, base := range []Config{Baseline(), ET(0.5), ETC(0.25)} {
		nc := base
		nc.UseNeighborCollectives = true
		a, err := RunOnEdges(4, n, edges, base)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunOnEdges(4, n, edges, nc)
		if err != nil {
			t.Fatal(err)
		}
		if a.Modularity != b.Modularity || a.Communities != b.Communities || a.TotalIterations != b.TotalIterations {
			t.Fatalf("%s: neighbor-collective run diverged (Q %.6f/%.6f, comms %d/%d, iters %d/%d)",
				base.VariantName(), a.Modularity, b.Modularity, a.Communities, b.Communities,
				a.TotalIterations, b.TotalIterations)
		}
		for v := range a.GlobalComm {
			if a.GlobalComm[v] != b.GlobalComm[v] {
				t.Fatalf("%s: assignment differs at %d", base.VariantName(), v)
			}
		}
	}
}

func TestNeighborCollectivesReduceMessages(t *testing.T) {
	// On a banded graph split across many ranks, each rank shares ghosts
	// with O(1) neighbours, so the sparse exchange must send far fewer
	// messages than the dense all-to-all.
	n, edges := gen.BandedMesh(2000, 3)
	const p = 8
	run := func(neighbor bool) mpi.Snapshot {
		cfg := Baseline()
		cfg.UseNeighborCollectives = neighbor
		res, err := RunOnEdges(p, n, edges, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Traffic
	}
	dense := run(false)
	sparse := run(true)
	if sparse.CollMsgs >= dense.CollMsgs {
		t.Fatalf("sparse exchange sent %d collective messages, dense %d", sparse.CollMsgs, dense.CollMsgs)
	}
}

func TestEmptyRankColoring(t *testing.T) {
	// Ranks without vertices must still participate in coloring rounds.
	n, edges := gen.Grid2D(4, 4, false)
	withDistGraph(t, 7, n, edges, func(dg *dgraph.DistGraph) error {
		color, _, err := DistColoring(dg, 3)
		if err != nil {
			return err
		}
		ok, err := ValidateDistColoring(dg, color)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("invalid coloring with empty ranks")
		}
		return nil
	})
}
