// Package core implements the paper's primary contribution: the distributed
// memory parallel Louvain method (Algorithms 2–4) with its performance
// heuristics — Threshold Cycling (TC), adaptive Early Termination (ET) and
// ET with the global inactive-count exit (ETC) — plus the distributed graph
// reconstruction of Fig. 1.
//
// Every rank executes Run as an SPMD program over an mpi.Comm; all
// convergence decisions derive from allreduced quantities, so ranks always
// agree on control flow.
package core

import (
	"errors"
	"fmt"
	"time"

	"distlouvain/internal/mpi"
	"distlouvain/internal/obsv"
)

// DefaultTau is the paper's default threshold τ = 10⁻⁶.
const DefaultTau = 1e-6

// InactiveCutoff is the activity probability below which a vertex is
// permanently labelled inactive for the rest of the phase (the paper's 2%).
const InactiveCutoff = 0.02

// DefaultETCExit is the global inactive fraction at which ETC terminates a
// phase (the paper's 90%).
const DefaultETCExit = 0.90

// Config selects the algorithm variant and its parameters.
type Config struct {
	// Tau is the τ threshold for both iteration- and phase-level
	// convergence (≤0 selects DefaultTau).
	Tau float64

	// TauSchedule enables Threshold Cycling: phase k runs with
	// TauSchedule[k mod len]. When the run converges while the schedule
	// is above Tau, one extra phase is forced at Tau (the paper's "run
	// once more with the lowest threshold"). Empty disables cycling.
	TauSchedule []float64

	// Alpha is the ET decay rate in [0,1]; 0 disables early termination.
	Alpha float64

	// ETC adds the extra communication step that counts inactive vertices
	// globally and exits the phase when the fraction reaches ETCExit.
	ETC bool
	// ETCExit overrides DefaultETCExit when positive.
	ETCExit float64

	// Threads is the intra-rank worker team size (the OpenMP threads of
	// the paper's MPI+OpenMP runs); ≤0 selects 1.
	Threads int

	// MaxPhases caps phases (0 = 64, a safety net far above practical
	// convergence).
	MaxPhases int
	// MaxIterations caps iterations per phase (0 = unlimited).
	MaxIterations int

	// Seed drives the ET coin flips (identical results for identical
	// seeds regardless of rank count or scheduling).
	Seed uint64

	// SendChangedOnly prunes the per-iteration ghost-vertex update to
	// entries whose community actually changed — the "further
	// sophistication" of §IV-B: inactive vertices stop generating
	// traffic. Off in the paper's Baseline. Superseded by the GhostDelta
	// refresh mode (which adds a dense fallback and varint frames) but kept
	// as the original fixed-width wire path; an explicit GhostRefresh wins
	// over this flag.
	SendChangedOnly bool

	// WireFormat selects the frame layout of the per-iteration exchanges:
	// mpi.WireV1 (fixed-width), mpi.WireV2 (varint IDs/counts, delta-encoded
	// sorted ID streams), or 0 to propose the newest supported version. The
	// run negotiates the minimum proposal across ranks, so the setting is a
	// cap, not a demand. Performance-only: every version carries identical
	// values, so trajectories are bit-identical (excluded from Hash).
	WireFormat int

	// GhostRefresh selects how the per-iteration ghost community update is
	// packaged: GhostAuto defers to SendChangedOnly for compatibility and
	// otherwise uses GhostDelta; GhostDense always resends the full
	// snapshot; GhostDelta sends only entries that changed since the last
	// send, falling back to the dense snapshot for any peer whose changed
	// fraction exceeds GhostSparseThreshold (ligra-style direction switch).
	// Performance-only: the receiver reconstructs the same ghost table under
	// every mode (excluded from Hash).
	GhostRefresh int

	// GhostSparseThreshold is the changed fraction of a peer's push list
	// above which GhostDelta sends the dense snapshot instead of the sparse
	// changed-entry list (≤0 selects 0.25). Sparse entries cost position +
	// value rather than value alone, so past roughly this density the dense
	// frame is both smaller and cheaper to decode.
	GhostSparseThreshold float64

	// Frontier selects the active-set mode of the ΔQ sweep: FrontierAuto
	// (default) re-evaluates only vertices whose neighbourhood changed in
	// the previous iteration, switching ligra-style between a sorted id
	// list and a bitmap scan at FrontierSparseThreshold; FrontierDense and
	// FrontierSparse pin the representation; FrontierOff restores the full
	// scan over every local vertex — the differential oracle the frontier
	// modes are tested bit-identical against. Performance-only: the dirty
	// rules mark a superset of the vertices whose decision could change, so
	// every mode produces the identical trajectory (excluded from Hash).
	// UseColoring forces the full scan (classes move mid-iteration).
	Frontier int

	// FrontierSparseThreshold is the frontier fraction of the partition
	// above which FrontierAuto abandons the sorted id list for the bitmap
	// scan (≤0 selects 0.25). Mirrors GhostSparseThreshold on the wire side.
	FrontierSparseThreshold float64

	// UseNeighborCollectives routes the per-iteration ghost exchange
	// through sparse neighborhood collectives (the MPI-3 feature the
	// paper's §VI plans to adopt) instead of the dense all-to-all:
	// O(ghost-neighbours) messages per rank rather than O(p). Results are
	// identical.
	UseNeighborCollectives bool

	// UseColoring sweeps local vertices one distance-1 color class at a
	// time (computed by a distributed Jones–Plassmann coloring), so
	// vertices processed concurrently are mutually non-adjacent and later
	// classes observe earlier classes' local moves — the paper's §VI
	// faster-convergence extension.
	UseColoring bool

	// GatherOutput assembles the full community assignment at rank 0
	// (Result.GlobalComm), as the paper's quality-assessment mode does.
	GatherOutput bool

	// CheckpointDir enables phase-boundary snapshots: after coarsening,
	// every rank writes its state (coarse CSR + ghost tables, cumulative
	// original-vertex assignment, driver position, phase history) under
	// this directory and rank 0 commits a manifest once all ranks have
	// landed. Resume continues such a run — at the same or a different
	// rank count. Empty disables checkpointing.
	CheckpointDir string
	// CheckpointEvery snapshots after every k-th completed phase (≤0
	// selects 1, i.e. every phase). Later phases run on ever-smaller
	// coarse graphs, so frequent snapshots get cheaper as the run ages.
	CheckpointEvery int
	// CheckpointKeep retains the snapshots of the last K committed phases
	// (≤0 selects 2); older phase files are garbage-collected after each
	// commit so long supervised runs don't fill the disk. The
	// manifest-referenced phase is never deleted.
	CheckpointKeep int

	// Progress, when set, is invoked synchronously by this rank's driver
	// at run milestones: phase start, each completed iteration, each
	// committed checkpoint, and run completion. Supervisors use it to emit
	// liveness beacons; a hook that blocks stalls the rank (the chaos
	// tests exploit exactly that). It never affects the trajectory and is
	// excluded from Hash.
	Progress func(ProgressEvent)

	// Tracer, when set, records this rank's phase/iteration/step spans.
	// Attach the same tracer to the rank's communicator (mpi.WithTracer /
	// SetTracer) so collective spans nest under the driver's. nil disables
	// tracing at zero cost. Like Progress, it never affects the trajectory
	// and is excluded from Hash.
	Tracer *obsv.Tracer

	// Interrupted, when set, is polled at every phase boundary and its
	// verdict is combined world-wide (allreduce max): when any rank
	// reports true, every rank writes a final checkpoint (if CheckpointDir
	// is set) and returns an error wrapping ErrInterrupted. Either all
	// ranks of a world set this hook or none — the poll is a collective.
	Interrupted func() bool

	// refKernels routes the ΔQ sweep and coarse-arc accumulation through
	// the map-based reference kernels (kernels_ref.go) instead of the flat
	// tables. Unexported: only the in-package differential tests and
	// benchmarks set it. Excluded from Hash by construction (Hash lists
	// its fields explicitly) — and rightly so, since both kernel sets
	// produce identical trajectories.
	refKernels bool

	// wire is the negotiated wire format version (mpi.WireV1/WireV2), set
	// once per run by runLoop's world-wide agreement; 0 means "not yet
	// negotiated" and resolves to the local proposal (single-rank harnesses
	// like KernelBench never negotiate). Unexported and excluded from Hash
	// like refKernels.
	wire int
}

// Ghost refresh modes (Config.GhostRefresh).
const (
	// GhostAuto uses GhostDelta unless the legacy SendChangedOnly flag asks
	// for the original fixed-width changed-pairs wire.
	GhostAuto = iota
	// GhostDense resends the full ghost snapshot every iteration (the
	// paper's baseline wire behaviour).
	GhostDense
	// GhostDelta sends per-peer changed entries with a dense fallback past
	// GhostSparseThreshold.
	GhostDelta
)

// Frontier modes (Config.Frontier).
const (
	// FrontierAuto drives the sweep from the active set, switching between
	// the sparse id list and the dense bitmap at FrontierSparseThreshold.
	FrontierAuto = iota
	// FrontierDense always scans the bitmap.
	FrontierDense
	// FrontierSparse always iterates the sorted id list.
	FrontierSparse
	// FrontierOff scans every local vertex each iteration (the paper's
	// original sweep; the differential oracle).
	FrontierOff
)

// ParseFrontier maps the CLI/service spelling of a frontier mode to its
// Config.Frontier value. The empty string selects FrontierAuto.
func ParseFrontier(s string) (int, error) {
	switch s {
	case "", "auto":
		return FrontierAuto, nil
	case "dense":
		return FrontierDense, nil
	case "sparse":
		return FrontierSparse, nil
	case "off":
		return FrontierOff, nil
	}
	return 0, fmt.Errorf("unknown frontier mode %q (want auto, dense, sparse or off)", s)
}

// frontierOn reports whether the sweep runs frontier-driven. Coloring
// forces the full scan: sweepByClasses applies moves mid-iteration, which
// the dirty rules do not model.
func (c *Config) frontierOn() bool {
	return c.Frontier != FrontierOff && !c.UseColoring
}

func (c *Config) fill() {
	if c.Tau <= 0 {
		c.Tau = DefaultTau
	}
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.MaxPhases <= 0 {
		c.MaxPhases = 64
	}
	if c.ETCExit <= 0 {
		c.ETCExit = DefaultETCExit
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1
	}
	if c.CheckpointKeep <= 0 {
		c.CheckpointKeep = 2
	}
	if c.GhostSparseThreshold <= 0 {
		c.GhostSparseThreshold = 0.25
	}
	if c.FrontierSparseThreshold <= 0 {
		c.FrontierSparseThreshold = 0.25
	}
}

// proposeWire is the wire format version this rank offers in negotiation:
// the configured version, or the newest supported one when unset.
func (c *Config) proposeWire() int {
	if c.WireFormat == mpi.WireV1 {
		return mpi.WireV1
	}
	return mpi.WireV2
}

// ghostMode resolves GhostAuto against the legacy flag.
func (c *Config) ghostMode() int {
	if c.GhostRefresh != GhostAuto {
		return c.GhostRefresh
	}
	if c.SendChangedOnly {
		return ghostLegacy
	}
	return GhostDelta
}

// ghostLegacy is the internal resolution of GhostAuto+SendChangedOnly: the
// original fixed-width (position, community) changed-pairs frames.
const ghostLegacy = -1

// progress invokes the Progress hook when one is installed.
func (c *Config) progress(ev ProgressEvent) {
	if c.Progress != nil {
		c.Progress(ev)
	}
}

// PaperTauSchedule is the Fig. 2 cycling schedule: τ = 10⁻³ for 3 phases,
// 10⁻⁴ for 4, 10⁻⁵ for 3, 10⁻⁶ for 3, then repeat.
func PaperTauSchedule() []float64 {
	s := make([]float64, 0, 13)
	for i := 0; i < 3; i++ {
		s = append(s, 1e-3)
	}
	for i := 0; i < 4; i++ {
		s = append(s, 1e-4)
	}
	for i := 0; i < 3; i++ {
		s = append(s, 1e-5)
	}
	for i := 0; i < 3; i++ {
		s = append(s, 1e-6)
	}
	return s
}

// Variant constructors matching the paper's experiment legend.

// Baseline is Algorithm 2 without heuristics.
func Baseline() Config { return Config{} }

// ThresholdCycling enables the Fig. 2 τ schedule.
func ThresholdCycling() Config { return Config{TauSchedule: PaperTauSchedule()} }

// ET enables adaptive early termination with decay α.
func ET(alpha float64) Config { return Config{Alpha: alpha} }

// ETC enables early termination plus the global inactive-count exit.
func ETC(alpha float64) Config { return Config{Alpha: alpha, ETC: true} }

// ETWithTC combines ET(α) and Threshold Cycling (Table VI).
func ETWithTC(alpha float64) Config {
	return Config{Alpha: alpha, TauSchedule: PaperTauSchedule()}
}

// VariantName renders the configuration in the paper's legend style.
func (c Config) VariantName() string {
	switch {
	case c.Alpha > 0 && c.ETC:
		return fmt.Sprintf("ETC(%.2g)", c.Alpha)
	case c.Alpha > 0 && len(c.TauSchedule) > 0:
		return fmt.Sprintf("ET(%.2g)+TC", c.Alpha)
	case c.Alpha > 0:
		return fmt.Sprintf("ET(%.2g)", c.Alpha)
	case len(c.TauSchedule) > 0:
		return "Threshold Cycling"
	default:
		return "Baseline"
	}
}

// ErrInterrupted is wrapped by the error Run/Resume return when the
// Interrupted hook stopped the run at a phase boundary. The run state is
// intact on disk (a final checkpoint was committed when CheckpointDir is
// set), so callers classify it as retryable: `dlouvain -resume` or a
// supervisor continues exactly where the run stopped.
var ErrInterrupted = errors.New("core: run interrupted at phase boundary")

// ProgressKind labels one Progress hook invocation.
type ProgressKind string

// Progress milestones, in the order a run emits them.
const (
	ProgressPhaseStart ProgressKind = "phase-start" // a phase's iteration loop is about to run
	ProgressIteration  ProgressKind = "iteration"   // one Louvain iteration completed
	ProgressCheckpoint ProgressKind = "checkpoint"  // a phase snapshot committed world-wide
	ProgressDone       ProgressKind = "done"        // the run finished; Result is final
)

// ProgressEvent is one milestone report from a rank's driver. All fields are
// globally agreed quantities (every rank emits the same sequence), so a
// supervisor can correlate beacons across the world.
type ProgressEvent struct {
	Kind       ProgressKind
	Phase      int     // phase index the event belongs to
	Iteration  int     // 1-based within the phase; 0 for non-iteration events
	Modularity float64 // latest globally agreed modularity (NaN before the first)
	Vertices   int64   // global coarse-graph size at the phase start
	// Communities is the final global community count, populated only on
	// ProgressDone (0 on every other milestone) so streaming consumers can
	// report the headline result without waiting for a separate fetch.
	Communities int64
}

// ExitReason explains why a phase's iteration loop ended.
type ExitReason string

// Phase exit reasons.
const (
	ExitTau     ExitReason = "tau"     // modularity gain fell to τ
	ExitETC     ExitReason = "etc"     // ≥ETCExit of vertices inactive
	ExitMaxIter ExitReason = "maxiter" // MaxIterations reached
)

// PhaseStat records one phase of the distributed run; the QTrajectory and
// iteration counts regenerate the paper's Figs. 5–6.
type PhaseStat struct {
	Vertices    int64     // global graph size at phase start
	Iterations  int       // Louvain iterations executed
	Modularity  float64   // modularity at phase end
	Tau         float64   // threshold this phase ran with
	QTrajectory []float64 // modularity after each iteration
	// MovesTrajectory records the global number of vertices that changed
	// community in each iteration — the quantity whose rapid decay
	// motivates the ET heuristic (§IV-B).
	MovesTrajectory []int64
	// TouchedTrajectory records the global number of vertices the sweep
	// actually evaluated in each iteration; FrontierTrajectory the global
	// active-set size offered to the sweep (LocalN sums under FrontierOff).
	// Their ratio per iteration is the work the frontier machinery saved on
	// top of ET's probability gate.
	TouchedTrajectory  []int64
	FrontierTrajectory []int64
	InactiveFrac       float64    // global inactive fraction at phase end
	Exit               ExitReason // why the phase ended
	Colors             int        // distance-1 colors used (0 unless UseColoring)
}

// StepTimes aggregates where the run spent its time, mirroring the paper's
// §V-A HPCToolkit breakdown (ghost/community communication, the modularity
// allreduce, local compute, and graph rebuilding).
type StepTimes struct {
	GhostComm     time.Duration // ghost vertex exchange (iteration step i)
	CommunityComm time.Duration // community info fetch + update push (steps ii–iii)
	Compute       time.Duration // local ΔQ sweeps
	Allreduce     time.Duration // modularity / control reductions
	Rebuild       time.Duration // distributed coarsening
	Total         time.Duration
}

// Result is the per-rank outcome of a distributed Louvain run.
type Result struct {
	// LocalComm holds the final community label of each vertex this rank
	// owned in the ORIGINAL graph (index = global original ID − LocalBase).
	LocalComm []int64
	// LocalBase is the first original vertex this rank owns.
	LocalBase int64
	// GlobalComm is the complete assignment, present at rank 0 when
	// Config.GatherOutput is set (nil elsewhere).
	GlobalComm []int64

	Modularity      float64
	Communities     int64 // global community count
	Phases          []PhaseStat
	TotalIterations int
	Runtime         time.Duration
	Steps           StepTimes
	Traffic         mpi.Snapshot // this rank's traffic during the run
}
