package core

import (
	"errors"
	"fmt"
	"net"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"distlouvain/internal/dgraph"
	"distlouvain/internal/gen"
	"distlouvain/internal/gio"
	"distlouvain/internal/graph"
	"distlouvain/internal/mpi"
)

// chaosFreeAddrs reserves n loopback ports for a test-local TCP world.
func chaosFreeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return addrs
}

// runChaosTCP runs the full distributed Louvain pipeline (Build + Run) on p
// TCP ranks, wrapping the doomed rank's transport in a FaultTransport with
// the given plan. It returns each rank's error and, for the doomed rank,
// the send counts observed right after Build and at exit — the calibration
// data the kill schedule needs.
func runChaosTCP(t *testing.T, p, doomed int, plan mpi.FaultPlan, n int64, edges []graph.RawEdge, cfg Config) (errs []error, afterBuild, total int64) {
	t.Helper()
	addrs := chaosFreeAddrs(t, p)
	errs = make([]error, p)
	var ab, tot atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tp, err := mpi.DialTCPWorld(mpi.TCPWorldConfig{Rank: r, Addrs: addrs})
			if err != nil {
				errs[r] = err
				return
			}
			rankPlan := mpi.FaultPlan{}
			if r == doomed {
				rankPlan = plan
			}
			ft := mpi.NewFaultTransport(tp, rankPlan)
			defer ft.Close()
			c := mpi.NewComm(ft, mpi.WithCollectiveTimeout(10*time.Second))
			lo, hi := gio.SegmentRange(int64(len(edges)), r, p)
			dg, err := dgraph.Build(c, n, edges[lo:hi], nil)
			if err != nil {
				errs[r] = err
				return
			}
			if r == doomed {
				ab.Store(ft.Sends())
			}
			_, err = Run(dg, cfg)
			errs[r] = err
			if r == doomed {
				tot.Store(ft.Sends())
			}
		}(r)
	}
	wg.Wait()
	return errs, ab.Load(), tot.Load()
}

// TestChaosKillMidRunTCP is the acceptance scenario: one rank's transport
// dies abruptly mid-iteration; every surviving rank's Run must return an
// error naming the lost peer — promptly, with no goroutine left blocked in
// Recv.
func TestChaosKillMidRunTCP(t *testing.T) {
	const p, doomed = 3, 1
	n, edges := gen.ErdosRenyi(300, 1500, 5)
	cfg := Baseline()

	// Calibration pass: a healthy run measuring the doomed rank's send
	// counts after Build and at completion. The pipeline is deterministic
	// (fixed seeds, one thread), so the same schedule replays identically.
	errs, afterBuild, total := runChaosTCP(t, p, doomed, mpi.FaultPlan{}, n, edges, cfg)
	for r, err := range errs {
		if err != nil {
			t.Fatalf("calibration rank %d: %v", r, err)
		}
	}
	if total <= afterBuild {
		t.Fatalf("no sends during Run (afterBuild=%d total=%d); cannot schedule a mid-run kill", afterBuild, total)
	}

	// Chaos pass: kill the doomed rank halfway through Run's sends.
	killAt := afterBuild + (total-afterBuild)/2
	if killAt <= afterBuild {
		killAt = afterBuild + 1
	}
	start := time.Now()
	errs, _, _ = runChaosTCP(t, p, doomed, mpi.FaultPlan{KillAfterSends: killAt}, n, edges, cfg)
	elapsed := time.Since(start)
	if elapsed > 60*time.Second {
		t.Fatalf("world took %v to fail; fail-fast broken", elapsed)
	}
	for r, err := range errs {
		if r == doomed {
			if err == nil {
				t.Fatal("doomed rank completed Run despite kill schedule")
			}
			if !errors.Is(err, mpi.ErrKilled) {
				t.Fatalf("doomed rank error = %v, want ErrKilled", err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("survivor rank %d: Run returned nil after peer death", r)
		}
		var pl *mpi.ErrPeerLost
		if !errors.As(err, &pl) {
			t.Fatalf("survivor rank %d: error %v does not carry ErrPeerLost", r, err)
		}
		if pl.Peer != doomed {
			t.Fatalf("survivor rank %d: lost peer %d, want %d", r, pl.Peer, doomed)
		}
		if !strings.Contains(err.Error(), fmt.Sprintf("peer rank %d", doomed)) {
			t.Fatalf("survivor rank %d: error does not mention the lost peer: %v", r, err)
		}
	}

	// No goroutine may remain parked in a Recv (matchQueue.pop) — that was
	// the original hang.
	deadline := time.Now().Add(5 * time.Second)
	for {
		buf := make([]byte, 1<<20)
		stacks := string(buf[:runtime.Stack(buf, true)])
		if !strings.Contains(stacks, "matchQueue).pop") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine still blocked in Recv after chaos run:\n%s", stacks)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosInprocDeadlineMidRun covers the transport that cannot observe
// peer death at all: a rank silently stops participating after Build, and
// the collective deadline is what turns the survivors' hang into an error.
func TestChaosInprocDeadlineMidRun(t *testing.T) {
	const p, doomed = 3, 2
	n, edges := gen.ErdosRenyi(200, 800, 9)
	cfg := Baseline()

	world, err := mpi.NewInprocWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	defer world.Close()

	errs := make([]error, p)
	start := time.Now()
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := mpi.NewComm(world.Endpoint(r), mpi.WithCollectiveTimeout(500*time.Millisecond))
			lo, hi := gio.SegmentRange(int64(len(edges)), r, p)
			dg, err := dgraph.Build(c, n, edges[lo:hi], nil)
			if err != nil {
				errs[r] = err
				return
			}
			if r == doomed {
				return // vanishes without a trace: inproc has no EOF to see
			}
			_, errs[r] = Run(dg, cfg)
		}(r)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed > 30*time.Second {
		t.Fatalf("survivors took %v to notice the absent rank", elapsed)
	}
	if errs[doomed] != nil {
		t.Fatalf("doomed rank: %v", errs[doomed])
	}
	for r, err := range errs {
		if r == doomed {
			continue
		}
		if err == nil {
			t.Fatalf("survivor rank %d: Run returned nil despite absent peer", r)
		}
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("survivor rank %d: error = %v, want deadline expiry", r, err)
		}
	}
}
