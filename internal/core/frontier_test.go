package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"distlouvain/internal/gen"
	"distlouvain/internal/graph"
)

// The frontier differential harness: the full scan (FrontierOff) is the
// oracle, and every frontier mode must retrace it move-for-move and
// bit-for-bit — the same proof standard the flat kernels and the wire diet
// are held to. The matrix covers the paper variants whose activity
// machinery interacts with the frontier (baseline, TC, ETC), rank counts
// (ghost-delta marking across partitions), representation modes, thread
// counts, and kill→resume.

// frontierGraphs are the differential inputs: an Erdős–Rényi graph, a
// banded mesh (the workload class the frontier targets), and a
// float-weighted graph so order-dependence in any frontier path shows up
// bitwise.
func frontierGraphs() []struct {
	name  string
	n     int64
	edges []graph.RawEdge
} {
	ern, erEdges := gen.ErdosRenyi(300, 1500, 5)
	meshN, meshEdges := gen.Grid2D(18, 18, false)
	fn, fEdges := gen.ErdosRenyi(250, 1200, 17)
	return []struct {
		name  string
		n     int64
		edges []graph.RawEdge
	}{
		{"er", ern, erEdges},
		{"mesh", meshN, meshEdges},
		{"er-float", fn, floatWeights(fEdges)},
	}
}

func frontierVariants() []struct {
	name string
	cfg  Config
} {
	return []struct {
		name string
		cfg  Config
	}{
		{"baseline", Baseline()},
		{"tc", ThresholdCycling()},
		{"etc", ETC(0.25)},
	}
}

// TestFrontierMatchesFullScan is the core differential: 3 graphs × 3
// variants × {1,2,4} ranks × {dense, sparse, auto} against the full-scan
// oracle at the same rank count (float summation order legitimately depends
// on the partition, so oracles are per rank count).
func TestFrontierMatchesFullScan(t *testing.T) {
	modes := []struct {
		name string
		mode int
	}{
		{"dense", FrontierDense},
		{"sparse", FrontierSparse},
		{"auto", FrontierAuto},
	}
	for _, g := range frontierGraphs() {
		for _, v := range frontierVariants() {
			t.Run(g.name+"/"+v.name, func(t *testing.T) {
				for _, ranks := range []int{1, 2, 4} {
					ref := v.cfg
					ref.Threads = 2
					ref.Frontier = FrontierOff
					want, err := RunOnEdges(ranks, g.n, g.edges, ref)
					if err != nil {
						t.Fatal(err)
					}
					for _, m := range modes {
						cfg := v.cfg
						cfg.Threads = 2
						cfg.Frontier = m.mode
						got, err := RunOnEdges(ranks, g.n, g.edges, cfg)
						if err != nil {
							t.Fatal(err)
						}
						sameTrajectory(t, fmt.Sprintf("ranks=%d mode=%s", ranks, m.name), got, want)
					}
				}
			})
		}
	}
}

// TestFrontierThreadInvariance: with integer weights the trajectory is
// thread-count invariant, so every (mode, threads) pair must reproduce the
// single-threaded full scan exactly — the frontier's chunked id-list and
// bitmap scans preserve ascending evaluation order per worker.
func TestFrontierThreadInvariance(t *testing.T) {
	n, edges := gen.ErdosRenyi(300, 1500, 5)
	ref := ETC(0.25)
	ref.Threads = 1
	ref.Frontier = FrontierOff
	want, err := RunOnEdges(2, n, edges, ref)
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{1, 2, 4} {
		cfg := ETC(0.25)
		cfg.Threads = threads
		got, err := RunOnEdges(2, n, edges, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sameTrajectory(t, fmt.Sprintf("threads=%d", threads), got, want)
	}
}

// TestFrontierKillResume: an interrupted frontier run resumed from its
// forced checkpoint must land exactly where the uninterrupted FULL-SCAN run
// lands — resume reseeds the frontier from the full vertex set at the phase
// boundary, so no frontier state needs to live in the snapshot format.
func TestFrontierKillResume(t *testing.T) {
	n, edges := gen.ErdosRenyi(300, 1500, 5)
	ref := Baseline()
	ref.Frontier = FrontierOff
	want, err := RunOnEdges(3, n, edges, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Phases) < 2 {
		t.Fatalf("run converged in %d phase(s); nothing left to resume", len(want.Phases))
	}

	dir := t.TempDir()
	var stop atomic.Bool
	cfg := Baseline() // Frontier defaults to FrontierAuto
	cfg.CheckpointDir = dir
	cfg.Interrupted = stop.Load
	cfg.Progress = func(ev ProgressEvent) {
		if ev.Kind == ProgressIteration && ev.Phase == 0 {
			stop.Store(true)
		}
	}
	_, err = RunOnEdges(3, n, edges, cfg)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	got := resumeInproc(t, 3, dir, Baseline())
	sameOutcome(t, "frontier resume vs full-scan oracle", got, want)
}

// TestFrontierFloatResumeBitIdentical: the float-weighted variant of the
// resume guarantee with the frontier active — checkpoint, resume at the
// same rank count, and compare against the full-scan oracle bit for bit.
func TestFrontierFloatResumeBitIdentical(t *testing.T) {
	n, edges := gen.ErdosRenyi(300, 1800, 41)
	edges = floatWeights(edges)
	ref := Baseline()
	ref.Threads = 2
	ref.Frontier = FrontierOff
	want, err := RunOnEdges(3, n, edges, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Phases) < 2 {
		t.Fatalf("run converged in %d phase(s); no phase boundary to checkpoint", len(want.Phases))
	}
	dir := t.TempDir()
	cfg := Baseline()
	cfg.Threads = 2
	cfg.CheckpointDir = dir
	got, err := RunOnEdges(3, n, edges, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameOutcome(t, "checkpointing frontier run", got, want)
	resumeCfg := Baseline()
	resumeCfg.Threads = 2
	sameOutcome(t, "frontier resume", resumeInproc(t, 3, dir, resumeCfg), want)
}

// TestFrontierColoringForcesFullScan: coloring applies moves class-by-class
// mid-iteration, which the dirty rules do not model, so a frontier request
// combined with coloring silently degrades to the full scan — identical
// trajectory, and the recorded frontier size equals the whole graph every
// iteration.
func TestFrontierColoringForcesFullScan(t *testing.T) {
	n, edges := gen.ErdosRenyi(300, 1500, 5)
	off := Baseline()
	off.UseColoring = true
	off.Frontier = FrontierOff
	want, err := RunOnEdges(2, n, edges, off)
	if err != nil {
		t.Fatal(err)
	}
	on := Baseline()
	on.UseColoring = true // Frontier stays FrontierAuto
	got, err := RunOnEdges(2, n, edges, on)
	if err != nil {
		t.Fatal(err)
	}
	sameTrajectory(t, "coloring", got, want)
	for p, st := range got.Phases {
		for i, f := range st.FrontierTrajectory {
			if f != st.Vertices {
				t.Fatalf("phase %d iter %d: frontier %d != full graph %d under coloring", p, i, f, st.Vertices)
			}
		}
	}
}

// TestFrontierCountersAndSwitch pins the counter semantics on a mesh: the
// first iteration of a phase offers the whole graph (full seed), touched
// never exceeds the frontier, the frontier shrinks as the phase converges
// (so RepAuto's sparse direction gets exercised after the dense start), and
// the full-scan run reports frontier == graph everywhere.
func TestFrontierCountersAndSwitch(t *testing.T) {
	n, edges := gen.Grid2D(30, 30, false)
	cfg := Baseline()
	cfg.Threads = 2
	res, err := RunOnEdges(2, n, edges, cfg)
	if err != nil {
		t.Fatal(err)
	}
	shrank := false
	for p, st := range res.Phases {
		if len(st.FrontierTrajectory) != len(st.QTrajectory) || len(st.TouchedTrajectory) != len(st.QTrajectory) {
			t.Fatalf("phase %d: trajectory lengths diverge (%d Q, %d touched, %d frontier)",
				p, len(st.QTrajectory), len(st.TouchedTrajectory), len(st.FrontierTrajectory))
		}
		if len(st.FrontierTrajectory) == 0 {
			continue
		}
		if st.FrontierTrajectory[0] != st.Vertices {
			t.Fatalf("phase %d: first frontier %d != full seed %d", p, st.FrontierTrajectory[0], st.Vertices)
		}
		for i := range st.FrontierTrajectory {
			if st.TouchedTrajectory[i] > st.FrontierTrajectory[i] {
				t.Fatalf("phase %d iter %d: touched %d > frontier %d", p, i, st.TouchedTrajectory[i], st.FrontierTrajectory[i])
			}
		}
		last := len(st.FrontierTrajectory) - 1
		if st.FrontierTrajectory[last] < st.Vertices {
			shrank = true
		}
	}
	if !shrank {
		t.Fatal("frontier never shrank below the full graph on a mesh")
	}

	off := cfg
	off.Frontier = FrontierOff
	ores, err := RunOnEdges(2, n, edges, off)
	if err != nil {
		t.Fatal(err)
	}
	for p, st := range ores.Phases {
		for i, f := range st.FrontierTrajectory {
			if f != st.Vertices {
				t.Fatalf("phase %d iter %d: full scan reported frontier %d != %d", p, i, f, st.Vertices)
			}
		}
	}
}

// TestFrontierReducesSweepOnMesh is the in-package version of the
// bench-smoke gate: on the banded channel mesh under ET — the workload the
// paper's early-termination headline comes from — the frontier must visit
// at least 30% fewer vertices per run than the full scan (which walks every
// local vertex each iteration just to check the activity coin), while
// reproducing the identical trajectory. FrontierTrajectory records exactly
// that visited count: the active-set size under the frontier, the whole
// graph under the full scan.
func TestFrontierReducesSweepOnMesh(t *testing.T) {
	n, edges := gen.BandedMesh(2000, 6)
	off := ET(0.25)
	off.Threads = 2
	off.Frontier = FrontierOff
	want, err := RunOnEdges(2, n, edges, off)
	if err != nil {
		t.Fatal(err)
	}
	on := ET(0.25)
	on.Threads = 2
	got, err := RunOnEdges(2, n, edges, on)
	if err != nil {
		t.Fatal(err)
	}
	sameTrajectory(t, "et-mesh", got, want)
	sum := func(res *Result) (total int64) {
		for _, st := range res.Phases {
			for _, v := range st.FrontierTrajectory {
				total += v
			}
		}
		return
	}
	fullScan, frontier := sum(want), sum(got)
	if fullScan == 0 {
		t.Fatal("full scan visited nothing")
	}
	if frontier*10 > fullScan*7 {
		t.Fatalf("frontier visited %d of the full scan's %d (want ≤70%%)", frontier, fullScan)
	}
}
