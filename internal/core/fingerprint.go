package core

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"os"
)

// Fingerprint is a stable 64-bit FNV-1a digest rendered as 16 lowercase hex
// characters. Two artifacts — an algorithm configuration and a graph input —
// are fingerprinted with it, and the pair (graph, config) identifies a
// Louvain result completely: the run is deterministic given both, regardless
// of rank count, thread count or wire format.
//
// Fingerprints are persisted (checkpoint manifests, the service result
// cache, job records), so their derivation is a compatibility contract:
// changing what bytes feed the hash invalidates every stored digest. The
// cross-version stability tests in fingerprint_test.go pin known inputs to
// known digests; a change that trips them must bump the relevant on-disk
// schema version instead of silently re-keying old artifacts.
type Fingerprint string

// Fingerprint digests the trajectory-determining parameters of the
// configuration. A checkpoint is only valid for the exact move sequence its
// configuration produces, so the manifest records this digest and Resume
// refuses a mismatch; the service result cache uses it (with the graph
// fingerprint) as the cache key. Deliberately excluded: Threads,
// SendChangedOnly, UseNeighborCollectives, WireFormat, GhostRefresh,
// GhostSparseThreshold, Frontier, FrontierSparseThreshold, GatherOutput and
// the checkpoint settings — they change performance or output plumbing,
// never the result, so a resume (or a cache lookup) may alter them freely.
func (c Config) Fingerprint() Fingerprint {
	c.fill() // value receiver: canonicalize defaults without mutating the caller
	h := fnv.New64a()
	fmt.Fprintf(h, "tau=%v;sched=%v;alpha=%v;etc=%v;etcexit=%v;maxphases=%d;maxiter=%d;seed=%d;coloring=%v",
		c.Tau, c.TauSchedule, c.Alpha, c.ETC, c.ETCExit, c.MaxPhases, c.MaxIterations, c.Seed, c.UseColoring)
	return Fingerprint(fmt.Sprintf("%016x", h.Sum64()))
}

// Hash is the string form of Fingerprint, kept for existing callers (the
// checkpoint manifest schema stores it as a plain string).
func (c Config) Hash() string { return string(c.Fingerprint()) }

// GraphFingerprint digests a graph input file byte-for-byte (header and
// records alike), so any change to vertex count, edge set, weights or edge
// order re-keys it. Edge order matters on purpose: the segmented parallel
// read assigns records to ranks by file position, so two files with the same
// edge set in different orders are different inputs to the partitioner.
func GraphFingerprint(path string) (Fingerprint, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := fnv.New64a()
	if _, err := io.Copy(h, bufio.NewReaderSize(f, 1<<20)); err != nil {
		return "", fmt.Errorf("core: fingerprint %s: %w", path, err)
	}
	return Fingerprint(fmt.Sprintf("%016x", h.Sum64())), nil
}
