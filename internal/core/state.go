package core

import (
	"fmt"
	"sort"
	"time"

	"distlouvain/internal/dgraph"
	"distlouvain/internal/flat"
	"distlouvain/internal/mpi"
	"distlouvain/internal/obsv"
	"distlouvain/internal/par"
)

// cinfo is the per-community state a rank needs to evaluate ΔQ against a
// community: its total incident weight A_c and its member count.
type cinfo struct {
	a    float64
	size int64
}

// phaseState holds one rank's working set for a single Louvain phase. The
// community ID space coincides with the current graph's vertex ID space and
// shares its partition: rank owner(c) maintains the authoritative (A_c,
// size) entry for community c.
type phaseState struct {
	dg    *dgraph.DistGraph
	cfg   *Config
	phase int // phase index within the run (progress reporting)

	comm      []int64 // community of each local vertex (global IDs)
	ghostComm []int64 // community of each ghost vertex (parallel dg.Ghosts)

	// Owned-community table, indexed by cid − Base.
	cA    []float64
	cSize []int64

	// Ghost-exchange plumbing, built once per phase:
	// pushList[q] lists local vertex indices whose community rank q wants
	// every iteration; ghostSlots[q] lists the positions in dg.Ghosts that
	// rank q's reply fills (same order as the request this rank sent).
	pushList   [][]int64
	ghostSlots [][]int32
	lastSent   [][]int64 // per pushList entry, last transmitted community
	// ghostPeers lists the ranks this rank exchanges ghosts with (the
	// neighborhood of the sparse collective); symmetric across ranks by
	// graph symmetry.
	ghostPeers []int
	// ghostDenseFrames / ghostSparseFrames count the non-empty refresh
	// frames this rank encoded in each direction of the GhostDelta
	// dense/sparse switch (diagnostics and the switch tests).
	ghostDenseFrames  int64
	ghostSparseFrames int64

	// remoteInfo caches (A_c, size) of non-owned communities for the
	// current iteration.
	remoteInfo map[int64]cinfo

	// ET state per local vertex.
	prob     []float64
	inactive []bool
	prevComm []int64
	seed     uint64

	// Phase-lived kernel scratch, allocated once per phase and reused
	// every iteration (see DESIGN "kernel memory layout"):
	// sweepTabs[w] is worker w's flat neighbor-community accumulator;
	// moveBufs[w] is worker w's move buffer; allMoves is the gathered
	// per-iteration move list; deltaTab/deltaBuf accumulate and emit the
	// per-iteration community deltas; arena backs the encode buffers of
	// the per-iteration exchanges.
	sweepTabs []*flat.Table
	moveBufs  [][]move
	allMoves  []move
	deltaTab  *flat.Table
	deltaBuf  []commDelta
	arena     mpi.Arena

	// Frontier-driven sweep state; nil when Config selects FrontierOff or
	// coloring forces the full scan (see frontier.go).
	fr *frontierState

	// Per-iteration sweep instrumentation: touchedBufs[w] counts worker
	// w's ΔQ evaluations; iterTouched/iterFrontier are the rank-local sums
	// that ride the modularity allreduce; globalTouched/globalFrontier hold
	// the allreduced figures the phase trajectory records.
	touchedBufs               []int64
	iterTouched, iterFrontier int64
	globalTouched             int64
	globalFrontier            int64

	steps *StepTimes
}

// tr returns the run's tracer (nil when tracing is off; obsv methods
// no-op on nil).
func (st *phaseState) tr() *obsv.Tracer { return st.cfg.Tracer }

// wireV2 reports whether the run negotiated the varint wire format.
func (st *phaseState) wireV2() bool { return st.cfg.wire == mpi.WireV2 }

func newPhaseState(dg *dgraph.DistGraph, cfg *Config, phaseIdx int, steps *StepTimes) (*phaseState, error) {
	if cfg.wire == 0 {
		// Single-rank harnesses (KernelBench, direct tests) construct phase
		// state without runLoop's negotiation; the local proposal stands.
		cfg.wire = cfg.proposeWire()
	}
	n := dg.LocalN
	st := &phaseState{
		dg: dg, cfg: cfg, phase: phaseIdx,
		comm:       make([]int64, n),
		ghostComm:  make([]int64, len(dg.Ghosts)),
		cA:         make([]float64, n),
		cSize:      make([]int64, n),
		remoteInfo: make(map[int64]cinfo),
		prob:       make([]float64, n),
		inactive:   make([]bool, n),
		prevComm:   make([]int64, n),
		seed:       cfg.Seed ^ par.Mix64(uint64(phaseIdx)+0x5851f42d4c957f2d),
		steps:      steps,
	}
	st.sweepTabs = make([]*flat.Table, cfg.Threads)
	for w := range st.sweepTabs {
		st.sweepTabs[w] = flat.NewTable(64)
	}
	st.moveBufs = make([][]move, cfg.Threads)
	st.touchedBufs = make([]int64, cfg.Threads)
	st.deltaTab = flat.NewTable(256)
	for lv := int64(0); lv < n; lv++ {
		g := dg.Global(lv)
		st.comm[lv] = g
		st.prevComm[lv] = g
		st.cA[lv] = dg.K[lv]
		st.cSize[lv] = 1
		st.prob[lv] = 1
	}
	// Initially every vertex is its own community, so ghost communities
	// are derivable without communication (§IV-A).
	copy(st.ghostComm, dg.Ghosts)
	if cfg.frontierOn() {
		st.fr = newFrontierState(st)
	}
	if err := st.setupGhostLists(); err != nil {
		return nil, err
	}
	return st, nil
}

// setupGhostLists performs the one-time-per-phase exchange of Algorithm 4:
// each rank tells every owner which of its vertices it holds as ghosts.
func (st *phaseState) setupGhostLists() error {
	sp := st.tr().Begin(obsv.KindP2P, "ghost-setup")
	defer sp.End()
	c := st.dg.Comm
	p := c.Size()
	st.ghostSlots = make([][]int32, p)
	for i := range st.dg.Ghosts {
		o := st.dg.GhostOwner[i]
		st.ghostSlots[o] = append(st.ghostSlots[o], int32(i))
	}
	send := make([][]byte, p)
	for q := 0; q < p; q++ {
		ids := make([]int64, len(st.ghostSlots[q]))
		for i, slot := range st.ghostSlots[q] {
			ids[i] = st.dg.Ghosts[slot]
		}
		if st.wireV2() {
			// dg.Ghosts is sorted ascending, so these per-owner ID lists
			// are too: the delta stream is ~1 byte per entry.
			send[q] = mpi.EncodeDeltaInt64s(ids)
		} else {
			send[q] = mpi.EncodeInt64s(ids)
		}
	}
	recv, err := c.Alltoall(send)
	if err != nil {
		return fmt.Errorf("core: ghost-list setup: %w", err)
	}
	st.pushList = make([][]int64, p)
	st.lastSent = make([][]int64, p)
	for q := 0; q < p; q++ {
		var ids []int64
		var err error
		if st.wireV2() {
			ids, err = mpi.DecodeDeltaInt64s(recv[q])
		} else {
			ids, err = mpi.DecodeInt64s(recv[q])
		}
		if err != nil {
			return err
		}
		st.pushList[q] = make([]int64, len(ids))
		st.lastSent[q] = make([]int64, len(ids))
		for i, g := range ids {
			if !st.dg.IsLocal(g) {
				return fmt.Errorf("core: rank %d asked rank %d for non-owned vertex %d", q, c.Rank(), g)
			}
			st.pushList[q][i] = g - st.dg.Base
			st.lastSent[q][i] = -1 // force first send
		}
	}
	for q := 0; q < p; q++ {
		if q != c.Rank() && (len(st.pushList[q]) > 0 || len(st.ghostSlots[q]) > 0) {
			st.ghostPeers = append(st.ghostPeers, q)
		}
	}
	return nil
}

// Ghost refresh frame markers (first byte of a GhostDelta-mode frame).
const (
	ghostFrameDense  = 0 // full snapshot follows, one community per push-list entry
	ghostFrameSparse = 1 // changed subset follows: positions + communities
)

// exchangeGhostComm is step (i) of Algorithm 3: owners push the latest
// community assignment of every vertex some rank holds as a ghost.
//
// Under GhostDelta (the default), each peer frame carries only the entries
// whose community changed since the last send to that peer, switching
// ligra-style to the full snapshot when the changed fraction exceeds
// GhostSparseThreshold — early iterations (everything moves) pay dense
// prices once, converged tails pay per-change. The legacy SendChangedOnly
// flag selects the original fixed-width changed-pairs frames; GhostDense
// restores the paper's always-snapshot wire. With UseNeighborCollectives,
// the exchange runs over the sparse ghost-neighbour topology instead of the
// dense all-to-all. Every mode reconstructs the identical ghost table.
func (st *phaseState) exchangeGhostComm() error {
	sp := st.tr().Begin(obsv.KindP2P, "ghost-exchange")
	defer sp.End()
	t0 := time.Now()
	defer func() { st.steps.GhostComm += time.Since(t0) }()
	c := st.dg.Comm
	mode := st.cfg.ghostMode()

	// Encode buffers come from the per-phase arena: after the first
	// iteration their capacities stabilize and this fast path allocates
	// nothing. Handing them straight to the collective is safe because
	// Transport.Send copies (see mpi.Arena).
	st.arena.Reset()
	encodeFor := func(q int) []byte {
		bp := st.arena.Grab()
		buf := *bp
		switch mode {
		case ghostLegacy:
			for i, lv := range st.pushList[q] {
				if v := st.comm[lv]; v != st.lastSent[q][i] {
					buf = mpi.AppendInt64(buf, int64(i))
					buf = mpi.AppendInt64(buf, v)
					st.lastSent[q][i] = v
				}
			}
		case GhostDelta:
			buf = st.encodeGhostDelta(buf, q)
		default: // GhostDense
			if st.wireV2() {
				for _, lv := range st.pushList[q] {
					buf = mpi.AppendVarint(buf, st.comm[lv])
				}
			} else {
				for _, lv := range st.pushList[q] {
					buf = mpi.AppendInt64(buf, st.comm[lv])
				}
			}
		}
		*bp = buf
		return buf
	}
	decodeFrom := func(q int, data []byte) error {
		switch mode {
		case ghostLegacy:
			vals, err := mpi.DecodeInt64s(data)
			if err != nil {
				return err
			}
			if len(vals)%2 != 0 {
				return fmt.Errorf("core: odd changed-only payload from rank %d", q)
			}
			for i := 0; i < len(vals); i += 2 {
				pos := vals[i]
				if pos < 0 || pos >= int64(len(st.ghostSlots[q])) {
					return fmt.Errorf("core: ghost position %d out of range from rank %d", pos, q)
				}
				st.setGhost(st.ghostSlots[q][pos], vals[i+1])
			}
			return nil
		case GhostDelta:
			return st.decodeGhostDelta(q, data)
		}
		// GhostDense.
		if st.wireV2() {
			d := mpi.NewDecoder(data)
			for _, slot := range st.ghostSlots[q] {
				v, err := d.Varint()
				if err != nil {
					return fmt.Errorf("core: ghost reply from rank %d: %w", q, err)
				}
				st.setGhost(slot, v)
			}
			if d.Remaining() != 0 {
				return fmt.Errorf("core: ghost reply from rank %d has %d trailing bytes", q, d.Remaining())
			}
			return nil
		}
		vals, err := mpi.DecodeInt64s(data)
		if err != nil {
			return err
		}
		if len(vals) != len(st.ghostSlots[q]) {
			return fmt.Errorf("core: ghost reply from rank %d has %d entries, want %d", q, len(vals), len(st.ghostSlots[q]))
		}
		for i, v := range vals {
			st.setGhost(st.ghostSlots[q][i], v)
		}
		return nil
	}

	if st.cfg.UseNeighborCollectives {
		send := make([][]byte, len(st.ghostPeers))
		for i, q := range st.ghostPeers {
			send[i] = encodeFor(q)
		}
		recv, err := c.NeighborAlltoall(st.ghostPeers, send)
		if err != nil {
			return fmt.Errorf("core: ghost exchange: %w", err)
		}
		for i, q := range st.ghostPeers {
			if err := decodeFrom(q, recv[i]); err != nil {
				return err
			}
		}
		return nil
	}

	p := c.Size()
	send := make([][]byte, p)
	for q := 0; q < p; q++ {
		send[q] = encodeFor(q)
	}
	recv, err := c.Alltoall(send)
	if err != nil {
		return fmt.Errorf("core: ghost exchange: %w", err)
	}
	for q := 0; q < p; q++ {
		if err := decodeFrom(q, recv[q]); err != nil {
			return err
		}
	}
	return nil
}

// encodeGhostDelta appends one GhostDelta refresh frame for peer q: a mode
// byte, then either the full snapshot (dense fallback) or the changed subset
// as (position, community) entries. The changed fraction against
// GhostSparseThreshold picks the representation per peer per iteration, so a
// rank whose frontier collapsed ships tiny sparse frames while a still-hot
// peer frame stays dense. lastSent is updated under both representations —
// the sparse test of the next iteration is always against what the peer
// actually holds.
func (st *phaseState) encodeGhostDelta(buf []byte, q int) []byte {
	push := st.pushList[q]
	if len(push) == 0 {
		return buf // nothing this peer wants; frame stays empty
	}
	last := st.lastSent[q]
	changed := 0
	for i, lv := range push {
		if st.comm[lv] != last[i] {
			changed++
		}
	}
	if float64(changed) > st.cfg.GhostSparseThreshold*float64(len(push)) {
		st.ghostDenseFrames++
		buf = append(buf, ghostFrameDense)
		if st.wireV2() {
			for i, lv := range push {
				v := st.comm[lv]
				buf = mpi.AppendVarint(buf, v)
				last[i] = v
			}
		} else {
			for i, lv := range push {
				v := st.comm[lv]
				buf = mpi.AppendInt64(buf, v)
				last[i] = v
			}
		}
		return buf
	}
	st.ghostSparseFrames++
	buf = append(buf, ghostFrameSparse)
	if st.wireV2() {
		// Positions are strictly increasing, so they travel as uvarint gaps;
		// communities as zigzag varints.
		buf = mpi.AppendUvarint(buf, uint64(changed))
		prev := int64(0)
		for i, lv := range push {
			if v := st.comm[lv]; v != last[i] {
				buf = mpi.AppendUvarint(buf, uint64(int64(i)-prev))
				buf = mpi.AppendVarint(buf, v)
				prev = int64(i)
				last[i] = v
			}
		}
	} else {
		for i, lv := range push {
			if v := st.comm[lv]; v != last[i] {
				buf = mpi.AppendInt64(buf, int64(i))
				buf = mpi.AppendInt64(buf, v)
				last[i] = v
			}
		}
	}
	return buf
}

// decodeGhostDelta applies one GhostDelta refresh frame from peer q.
func (st *phaseState) decodeGhostDelta(q int, data []byte) error {
	slots := st.ghostSlots[q]
	if len(data) == 0 {
		if len(slots) != 0 {
			return fmt.Errorf("core: empty ghost frame from rank %d, want %d entries", q, len(slots))
		}
		return nil
	}
	d := mpi.NewDecoder(data[1:])
	switch data[0] {
	case ghostFrameDense:
		if st.wireV2() {
			for _, slot := range slots {
				v, err := d.Varint()
				if err != nil {
					return fmt.Errorf("core: dense ghost frame from rank %d: %w", q, err)
				}
				st.setGhost(slot, v)
			}
		} else {
			vals, err := d.Int64s(len(slots))
			if err != nil {
				return fmt.Errorf("core: dense ghost frame from rank %d: %w", q, err)
			}
			for i, v := range vals {
				st.setGhost(slots[i], v)
			}
		}
		if d.Remaining() != 0 {
			return fmt.Errorf("core: dense ghost frame from rank %d has %d trailing bytes", q, d.Remaining())
		}
		return nil
	case ghostFrameSparse:
		if st.wireV2() {
			n, err := d.Uvarint()
			if err != nil {
				return fmt.Errorf("core: sparse ghost frame from rank %d: %w", q, err)
			}
			pos := int64(0)
			for k := uint64(0); k < n; k++ {
				gap, err := d.Uvarint()
				if err != nil {
					return fmt.Errorf("core: sparse ghost frame from rank %d: %w", q, err)
				}
				pos += int64(gap)
				v, err := d.Varint()
				if err != nil {
					return fmt.Errorf("core: sparse ghost frame from rank %d: %w", q, err)
				}
				if pos < 0 || pos >= int64(len(slots)) {
					return fmt.Errorf("core: ghost position %d out of range from rank %d", pos, q)
				}
				st.setGhost(slots[pos], v)
			}
			if d.Remaining() != 0 {
				return fmt.Errorf("core: sparse ghost frame from rank %d has %d trailing bytes", q, d.Remaining())
			}
			return nil
		}
		if d.Remaining()%16 != 0 {
			return fmt.Errorf("core: odd sparse ghost payload from rank %d", q)
		}
		for d.Remaining() >= 16 {
			pos, _ := d.Int64()
			v, err := d.Int64()
			if err != nil {
				return err
			}
			if pos < 0 || pos >= int64(len(slots)) {
				return fmt.Errorf("core: ghost position %d out of range from rank %d", pos, q)
			}
			st.setGhost(slots[pos], v)
		}
		return nil
	}
	return fmt.Errorf("core: unknown ghost frame mode %d from rank %d", data[0], q)
}

// commOf resolves the community of a global vertex from local state (owned)
// or the ghost table.
func (st *phaseState) commOf(g int64) int64 {
	if st.dg.IsLocal(g) {
		return st.comm[g-st.dg.Base]
	}
	return st.ghostComm[st.dg.GhostIndex[g]]
}

// infoOf resolves (A_c, size) of a community from the owned table or the
// per-iteration remote cache.
func (st *phaseState) infoOf(cid int64) (cinfo, bool) {
	if st.dg.IsLocal(cid) {
		lc := cid - st.dg.Base
		return cinfo{a: st.cA[lc], size: st.cSize[lc]}, true
	}
	ci, ok := st.remoteInfo[cid]
	return ci, ok
}

// fetchCommunityInfo implements the pull half of step (ii)'s preparation:
// collect the communities referenced by local neighbourhoods, request the
// (A_c, size) entries of the non-owned ones from their owners, and cache
// the replies for this iteration.
func (st *phaseState) fetchCommunityInfo() error {
	sp := st.tr().Begin(obsv.KindP2P, "community-fetch")
	defer sp.End()
	t0 := time.Now()
	defer func() { st.steps.CommunityComm += time.Since(t0) }()
	c := st.dg.Comm
	p := c.Size()

	needed := make(map[int64]struct{})
	for lv := int64(0); lv < st.dg.LocalN; lv++ {
		if cv := st.comm[lv]; !st.dg.IsLocal(cv) {
			needed[cv] = struct{}{}
		}
	}
	for _, gc := range st.ghostComm {
		if !st.dg.IsLocal(gc) {
			needed[gc] = struct{}{}
		}
	}
	// Local vertices' communities referenced through local neighbours are
	// covered by the two loops above: a local neighbour's community is
	// either owned (table lookup) or appears in st.comm; a remote
	// neighbour's community appears in ghostComm.

	reqByOwner := make([][]int64, p)
	for cid := range needed {
		o := st.dg.Part.Owner(cid)
		reqByOwner[o] = append(reqByOwner[o], cid)
	}
	for q := range reqByOwner {
		sort.Slice(reqByOwner[q], func(i, j int) bool { return reqByOwner[q][i] < reqByOwner[q][j] })
	}
	// Both encode rounds draw from the per-phase arena; no Reset between
	// them — the request buffers stay claimed until the replies are built.
	st.arena.Reset()
	send := make([][]byte, p)
	for q := 0; q < p; q++ {
		bp := st.arena.Grab()
		if st.wireV2() {
			// reqByOwner[q] is sorted, so the request travels as ~1-byte
			// varint gaps instead of 8-byte IDs.
			*bp = mpi.AppendDeltaInt64s(*bp, reqByOwner[q])
		} else {
			*bp = mpi.AppendInt64s(*bp, reqByOwner[q])
		}
		send[q] = *bp
	}
	reqs, err := c.Alltoall(send)
	if err != nil {
		return fmt.Errorf("core: community-info request: %w", err)
	}
	// Answer requests: (A_c, size) per cid, in request order. A_c stays
	// fixed64 under both wire formats; member counts are small, so v2 packs
	// them as varints.
	resp := make([][]byte, p)
	for q := 0; q < p; q++ {
		var ids []int64
		var err error
		if st.wireV2() {
			ids, err = mpi.DecodeDeltaInt64s(reqs[q])
		} else {
			ids, err = mpi.DecodeInt64s(reqs[q])
		}
		if err != nil {
			return err
		}
		bp := st.arena.Grab()
		buf := *bp
		for _, cid := range ids {
			if !st.dg.IsLocal(cid) {
				return fmt.Errorf("core: rank %d asked rank %d for non-owned community %d", q, c.Rank(), cid)
			}
			lc := cid - st.dg.Base
			buf = mpi.AppendFloat64(buf, st.cA[lc])
			if st.wireV2() {
				buf = mpi.AppendVarint(buf, st.cSize[lc])
			} else {
				buf = mpi.AppendInt64(buf, st.cSize[lc])
			}
		}
		*bp = buf
		resp[q] = buf
	}
	answers, err := c.Alltoall(resp)
	if err != nil {
		return fmt.Errorf("core: community-info reply: %w", err)
	}
	clear(st.remoteInfo)
	for q := 0; q < p; q++ {
		d := mpi.NewDecoder(answers[q])
		for _, cid := range reqByOwner[q] {
			a, err := d.Float64()
			if err != nil {
				return err
			}
			var size int64
			if st.wireV2() {
				size, err = d.Varint()
			} else {
				size, err = d.Int64()
			}
			if err != nil {
				return err
			}
			st.remoteInfo[cid] = cinfo{a: a, size: size}
		}
	}
	return nil
}

// resolveVertexComms looks up the current community of arbitrary global
// vertices of the current graph, fetching remotely-owned entries from their
// owners. It is a collective: every rank must call it once per phase (the
// driver uses it to flatten the original-vertex assignment through this
// phase's meta-vertices). The result maps each queried ID to its community.
func (st *phaseState) resolveVertexComms(ids []int64) (map[int64]int64, error) {
	c := st.dg.Comm
	p := c.Size()
	out := make(map[int64]int64, len(ids))
	reqByOwner := make([][]int64, p)
	for _, g := range ids {
		if _, done := out[g]; done {
			continue
		}
		if st.dg.IsLocal(g) {
			out[g] = st.comm[g-st.dg.Base]
			continue
		}
		out[g] = -1 // placeholder marking "requested"
		o := st.dg.Part.Owner(g)
		reqByOwner[o] = append(reqByOwner[o], g)
	}
	// Replies are matched back through reqByOwner, so the request order is
	// free to choose: sort it so v2's delta streams stay compact.
	for q := range reqByOwner {
		sort.Slice(reqByOwner[q], func(i, j int) bool { return reqByOwner[q][i] < reqByOwner[q][j] })
	}
	send := make([][]byte, p)
	for q := 0; q < p; q++ {
		if st.wireV2() {
			send[q] = mpi.EncodeDeltaInt64s(reqByOwner[q])
		} else {
			send[q] = mpi.EncodeInt64s(reqByOwner[q])
		}
	}
	reqs, err := c.Alltoall(send)
	if err != nil {
		return nil, err
	}
	resp := make([][]byte, p)
	for q := 0; q < p; q++ {
		var vs []int64
		var err error
		if st.wireV2() {
			vs, err = mpi.DecodeDeltaInt64s(reqs[q])
		} else {
			vs, err = mpi.DecodeInt64s(reqs[q])
		}
		if err != nil {
			return nil, err
		}
		buf := make([]byte, 0, 8*len(vs))
		for _, g := range vs {
			if !st.dg.IsLocal(g) {
				return nil, fmt.Errorf("core: rank %d asked rank %d for comm of non-owned vertex %d", q, c.Rank(), g)
			}
			if st.wireV2() {
				buf = mpi.AppendVarint(buf, st.comm[g-st.dg.Base])
			} else {
				buf = mpi.AppendInt64(buf, st.comm[g-st.dg.Base])
			}
		}
		resp[q] = buf
	}
	answers, err := c.Alltoall(resp)
	if err != nil {
		return nil, err
	}
	for q := 0; q < p; q++ {
		d := mpi.NewDecoder(answers[q])
		for _, g := range reqByOwner[q] {
			var v int64
			var err error
			if st.wireV2() {
				v, err = d.Varint()
			} else {
				v, err = d.Int64()
			}
			if err != nil {
				return nil, fmt.Errorf("core: comm-lookup reply from rank %d: %w", q, err)
			}
			out[g] = v
		}
		if d.Remaining() != 0 {
			return nil, fmt.Errorf("core: comm-lookup reply from rank %d has %d trailing bytes", q, d.Remaining())
		}
	}
	return out, nil
}

// delta is the (ΔA, Δsize) a community accumulated this iteration.
type delta struct {
	a    float64
	size int64
}

// commDelta is one community's (ΔA, Δsize) of an iteration, tagged with its
// ID. stageMoves emits these sorted by cid, which fixes the apply and
// encode order — a Go map here would randomize the order deltas reach
// owners and the byte layout of every delta message run-to-run.
type commDelta struct {
	cid  int64
	a    float64
	size int64
}

// pushDeltas is step (iii) of Algorithm 3: updated information on ghost
// communities travels to their owners; owners fold in the deltas for their
// local communities. deltas must be sorted by community ID (stageMoves
// guarantees it), so both the local applies and every rank's wire payload
// are in canonical ascending-cid order: community-owner float accumulation
// happens in the same order every run, giving float-weighted graphs the
// same bit-identical trajectory guarantee integer weights get for free.
//
// The exchange is split-phase: the remote frames are encoded and launched
// first (IalltoallStart), then the iteration's tail work — writing the
// sweep's assignment updates and folding the locally-owned deltas — runs
// while peers' frames are in flight, and only then does the rank block on
// Wait. The arena buffers handed to the started exchange are pinned so the
// overlap window cannot recycle them. Accumulation order is unchanged from
// the blocking version (locals in ascending cid order, then remote folds in
// rank order), preserving the bit-identical trajectory guarantee.
func (st *phaseState) pushDeltas(deltas []commDelta, moves []move) error {
	sp := st.tr().Begin(obsv.KindP2P, "community-push")
	defer sp.End()
	t0 := time.Now()
	defer func() { st.steps.CommunityComm += time.Since(t0) }()
	c := st.dg.Comm
	p := c.Size()
	st.arena.Reset()
	send := make([][]byte, p)
	bufs := make([]*[]byte, p)
	// v2 entries: varint cid gap from the previous entry to the same owner
	// (ascending across the frame), fixed64 ΔA, varint Δsize.
	prevCid := make([]int64, p)
	for _, d := range deltas {
		if st.dg.IsLocal(d.cid) {
			continue // folded in the overlap window below
		}
		o := st.dg.Part.Owner(d.cid)
		if bufs[o] == nil {
			bufs[o] = st.arena.Grab()
		}
		if st.wireV2() {
			*bufs[o] = mpi.AppendVarint(*bufs[o], d.cid-prevCid[o])
			*bufs[o] = mpi.AppendFloat64(*bufs[o], d.a)
			*bufs[o] = mpi.AppendVarint(*bufs[o], d.size)
			prevCid[o] = d.cid
		} else {
			*bufs[o] = mpi.AppendInt64(*bufs[o], d.cid)
			*bufs[o] = mpi.AppendFloat64(*bufs[o], d.a)
			*bufs[o] = mpi.AppendInt64(*bufs[o], d.size)
		}
	}
	for o, bp := range bufs {
		if bp != nil {
			send[o] = *bp
		}
	}
	op, err := c.IalltoallStart(send)
	if err != nil {
		return fmt.Errorf("core: community delta push: %w", err)
	}
	st.arena.Pin()
	defer st.arena.Unpin()

	// Overlap window: peers' frames are in flight; do the iteration's local
	// tail work. (Under coloring, sweepByClasses already wrote st.comm; the
	// re-assignment is idempotent.)
	for _, mv := range moves {
		st.comm[mv.lv] = mv.to
	}
	if st.fr != nil {
		st.markMoves(moves)
	}
	for _, d := range deltas {
		if st.dg.IsLocal(d.cid) {
			st.applyDelta(d.cid, delta{a: d.a, size: d.size})
		}
	}

	recv, err := op.Wait()
	if err != nil {
		return fmt.Errorf("core: community delta push: %w", err)
	}
	for q := 0; q < p; q++ {
		d := mpi.NewDecoder(recv[q])
		if st.wireV2() {
			prev := int64(0)
			for d.Remaining() > 0 {
				gap, err := d.Varint()
				if err != nil {
					return fmt.Errorf("core: delta frame from rank %d: %w", q, err)
				}
				cid := prev + gap
				prev = cid
				da, err := d.Float64()
				if err != nil {
					return fmt.Errorf("core: delta frame from rank %d: %w", q, err)
				}
				dsize, err := d.Varint()
				if err != nil {
					return fmt.Errorf("core: delta frame from rank %d: %w", q, err)
				}
				if !st.dg.IsLocal(cid) {
					return fmt.Errorf("core: delta for non-owned community %d from rank %d", cid, q)
				}
				st.applyDelta(cid, delta{a: da, size: dsize})
			}
			continue
		}
		for d.Remaining() >= 24 {
			cid, _ := d.Int64()
			da, _ := d.Float64()
			dsize, err := d.Int64()
			if err != nil {
				return err
			}
			if !st.dg.IsLocal(cid) {
				return fmt.Errorf("core: delta for non-owned community %d from rank %d", cid, q)
			}
			st.applyDelta(cid, delta{a: da, size: dsize})
		}
	}
	return nil
}

func (st *phaseState) applyDelta(cid int64, d delta) {
	lc := cid - st.dg.Base
	a0, s0 := st.cA[lc], st.cSize[lc]
	st.cA[lc] += d.a
	st.cSize[lc] += d.size
	if st.cSize[lc] <= 0 {
		// An emptied community's incident weight is exactly zero; clear
		// float residue so modularity and rebuild see a clean table.
		st.cSize[lc] = 0
		st.cA[lc] = 0
	}
	if st.fr != nil && (st.cA[lc] != a0 || st.cSize[lc] != s0) {
		// Frontier dirty rule (d), owned side: the values evaluators read
		// changed, so everything referencing this community re-evaluates.
		st.fr.noteOwnedChanged(lc)
	}
}

// modularity is step (iv): every rank contributes the intra-community
// weight of its local arcs (using current local and once-per-iteration
// ghost information — the paper's "lag of community update") plus the
// squared incident weights of its owned communities; one allreduce yields
// the global Q. The local move count rides along in the same reduction so
// the per-iteration migration rate costs no extra collective, and so do the
// sweep's touched-vertex and frontier-size counters (stale outside the
// iteration loop, where the results are simply unread).
func (st *phaseState) modularityAndMoves(localMoves int64) (float64, int64, error) {
	msp := st.tr().Begin(obsv.KindStep, "modularity-compute")
	tc := time.Now()
	var eSum float64
	for lv := int64(0); lv < st.dg.LocalN; lv++ {
		cv := st.comm[lv]
		for _, e := range st.dg.Neighbors(lv) {
			if st.commOf(e.To) == cv {
				eSum += e.W
			}
		}
	}
	var aSq float64
	for lc := int64(0); lc < st.dg.LocalN; lc++ {
		aSq += st.cA[lc] * st.cA[lc]
	}
	st.steps.Compute += time.Since(tc)
	msp.End()

	ta := time.Now()
	out, err := st.dg.Comm.AllreduceFloat64s([]float64{eSum, aSq, float64(localMoves), float64(st.iterTouched), float64(st.iterFrontier)}, mpi.OpSum)
	st.steps.Allreduce += time.Since(ta)
	if err != nil {
		return 0, 0, fmt.Errorf("core: modularity allreduce: %w", err)
	}
	moves := int64(out[2])
	st.globalTouched = int64(out[3])
	st.globalFrontier = int64(out[4])
	m2 := st.dg.M2
	if m2 == 0 {
		return 0, moves, nil
	}
	return out[0]/m2 - out[1]/(m2*m2), moves, nil
}

// modularity is modularityAndMoves without a move count (used outside the
// iteration loop).
func (st *phaseState) modularity() (float64, error) {
	q, _, err := st.modularityAndMoves(0)
	return q, err
}
