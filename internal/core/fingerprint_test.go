package core

import (
	"os"
	"path/filepath"
	"testing"

	"distlouvain/internal/gen"
	"distlouvain/internal/gio"
	"distlouvain/internal/graph"
)

// TestFingerprintStability pins known inputs to known digests. These values
// are persisted in checkpoint manifests, service result caches and job
// records, so they must stay identical across releases: a failure here means
// every stored artifact would silently stop matching. If a fingerprint
// change is truly intended, bump the relevant on-disk schema version and
// update the pins in the same commit.
func TestFingerprintStability(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want Fingerprint
	}{
		{"baseline defaults", Baseline(), "c9c770952769d5e3"},
		{"etc 0.25", ETC(0.25), "f54eedebcbd45f1d"},
		{"custom trajectory knobs", Config{
			Tau: 1e-4, TauSchedule: []float64{1e-3, 1e-4}, Alpha: 0.5,
			Seed: 42, UseColoring: true, MaxIterations: 7,
		}, "fd5547d33148c1e6"},
	}
	for _, c := range cases {
		if got := c.cfg.Fingerprint(); got != c.want {
			t.Errorf("%s: Fingerprint = %s, want %s (cross-version stability broken)", c.name, got, c.want)
		}
		if got := c.cfg.Hash(); got != string(c.want) {
			t.Errorf("%s: Hash = %s, want the Fingerprint string %s", c.name, got, c.want)
		}
	}
}

// TestFingerprintIgnoresPerformanceKnobs verifies the documented exclusion
// list: plumbing that never changes the trajectory must not re-key caches or
// invalidate checkpoints.
func TestFingerprintIgnoresPerformanceKnobs(t *testing.T) {
	base := ETC(0.25)
	perturbed := base
	perturbed.Threads = 8
	perturbed.SendChangedOnly = true
	perturbed.UseNeighborCollectives = true
	perturbed.WireFormat = 1
	perturbed.GhostRefresh = GhostDense
	perturbed.GhostSparseThreshold = 0.9
	perturbed.GatherOutput = true
	perturbed.CheckpointDir = "somewhere"
	perturbed.CheckpointEvery = 3
	perturbed.CheckpointKeep = 7
	if base.Fingerprint() != perturbed.Fingerprint() {
		t.Fatal("performance-only knobs changed the config fingerprint")
	}
	traj := base
	traj.Seed = 99
	if base.Fingerprint() == traj.Fingerprint() {
		t.Fatal("a trajectory knob (Seed) did not change the config fingerprint")
	}
}

// TestGraphFingerprintStability pins the digest of a deterministic generator
// output, and checks sensitivity to content changes.
func TestGraphFingerprintStability(t *testing.T) {
	dir := t.TempDir()
	n, edges := gen.ErdosRenyi(40, 120, 9)
	p := filepath.Join(dir, "g.bin")
	if err := gio.WriteBinary(p, n, edges); err != nil {
		t.Fatal(err)
	}
	fp, err := GraphFingerprint(p)
	if err != nil {
		t.Fatal(err)
	}
	if want := Fingerprint("861f1fa7eb8e9422"); fp != want {
		t.Fatalf("GraphFingerprint = %s, want %s (cross-version stability broken)", fp, want)
	}

	// Same edges, one weight changed: a different input.
	edges2 := append([]graph.RawEdge(nil), edges...)
	edges2[0].W += 1
	p2 := filepath.Join(dir, "g2.bin")
	if err := gio.WriteBinary(p2, n, edges2); err != nil {
		t.Fatal(err)
	}
	fp2, err := GraphFingerprint(p2)
	if err != nil {
		t.Fatal(err)
	}
	if fp2 == fp {
		t.Fatal("weight change did not change the graph fingerprint")
	}

	if _, err := GraphFingerprint(filepath.Join(dir, "missing.bin")); err == nil {
		t.Fatal("missing file must error")
	}
}

// TestGraphFingerprintMatchesBytes confirms the digest is over raw file
// bytes: an identical copy fingerprints identically regardless of path.
func TestGraphFingerprintMatchesBytes(t *testing.T) {
	dir := t.TempDir()
	n, edges := gen.ErdosRenyi(20, 40, 3)
	a := filepath.Join(dir, "a.bin")
	if err := gio.WriteBinary(a, n, edges); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	b := filepath.Join(dir, "b.bin")
	if err := os.WriteFile(b, data, 0o644); err != nil {
		t.Fatal(err)
	}
	fa, err := GraphFingerprint(a)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := GraphFingerprint(b)
	if err != nil {
		t.Fatal(err)
	}
	if fa != fb {
		t.Fatalf("identical bytes fingerprint differently: %s vs %s", fa, fb)
	}
}
