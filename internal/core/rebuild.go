package core

import (
	"fmt"
	"sort"
	"time"

	"distlouvain/internal/dgraph"
	"distlouvain/internal/flat"
	"distlouvain/internal/mpi"
	"distlouvain/internal/obsv"
	"distlouvain/internal/par"
	"distlouvain/internal/partition"
)

// rebuild performs the distributed graph reconstruction of Fig. 1 at the
// end of a phase. extraIDs lists additional old community IDs this rank
// needs translated (the labels held in its slice of the original-vertex
// assignment); the returned map covers every old community referenced by
// local vertices, local neighbourhoods and extraIDs.
//
// Steps (numbering as in the paper):
//  1. count surviving local communities and renumber them from 0;
//  2. drop owned community IDs no longer associated with any vertex;
//  3. renumber globally via an exclusive prefix sum;
//  4. resolve new IDs for old communities referenced remotely;
//  5. build partial new edge lists from local adjacencies;
//  6. redistribute so every rank owns an equal share of new vertices;
//  7. rebuild CSR index/edge arrays.
func (st *phaseState) rebuild(extraIDs []int64) (*dgraph.DistGraph, map[int64]int64, error) {
	sp := st.tr().Begin(obsv.KindStep, "rebuild")
	defer sp.End()
	t0 := time.Now()
	defer func() { st.steps.Rebuild += time.Since(t0) }()
	c := st.dg.Comm
	p := c.Size()

	// Steps 1–2: surviving owned communities, renumbered locally. The
	// community table is authoritative: size > 0 means some vertex
	// (anywhere) is assigned to it.
	survivors := make([]int64, 0, 64)
	for lc := int64(0); lc < st.dg.LocalN; lc++ {
		if st.cSize[lc] > 0 {
			survivors = append(survivors, st.dg.Base+lc)
		}
	}
	localNew := make(map[int64]int64, len(survivors)) // old cid -> local index
	for i, cid := range survivors {
		localNew[cid] = int64(i)
	}

	// Step 3: global renumbering by exclusive prefix sum.
	ta := time.Now()
	myBase, err := c.ExscanInt64(int64(len(survivors)))
	if err != nil {
		return nil, nil, err
	}
	totalNew, err := c.AllreduceInt64(int64(len(survivors)), mpi.OpSum)
	st.steps.Allreduce += time.Since(ta)
	if err != nil {
		return nil, nil, err
	}

	// Step 4: resolve old→new IDs for every referenced community.
	needed := make(map[int64]struct{})
	for _, cid := range st.comm {
		needed[cid] = struct{}{}
	}
	for _, cid := range st.ghostComm {
		needed[cid] = struct{}{}
	}
	for _, cid := range extraIDs {
		needed[cid] = struct{}{}
	}
	oldToNew := make(map[int64]int64, len(needed))
	reqByOwner := make([][]int64, p)
	for cid := range needed {
		if n, ok := localNew[cid]; ok {
			oldToNew[cid] = myBase + n
			continue
		}
		if st.dg.IsLocal(cid) {
			return nil, nil, fmt.Errorf("core: referenced community %d is owned locally but empty", cid)
		}
		o := st.dg.Part.Owner(cid)
		reqByOwner[o] = append(reqByOwner[o], cid)
	}
	for q := range reqByOwner {
		sort.Slice(reqByOwner[q], func(i, j int) bool { return reqByOwner[q][i] < reqByOwner[q][j] })
	}
	// Both directions are ascending ID streams (requests are sorted above;
	// survivor renumbering is order-preserving, so replies to a sorted
	// request are ascending too): under wire v2 they ship as delta varints.
	send := make([][]byte, p)
	for q := 0; q < p; q++ {
		if st.wireV2() {
			send[q] = mpi.EncodeDeltaInt64s(reqByOwner[q])
		} else {
			send[q] = mpi.EncodeInt64s(reqByOwner[q])
		}
	}
	reqs, err := c.Alltoall(send)
	if err != nil {
		return nil, nil, err
	}
	resp := make([][]byte, p)
	for q := 0; q < p; q++ {
		var ids []int64
		var err error
		if st.wireV2() {
			ids, err = mpi.DecodeDeltaInt64s(reqs[q])
		} else {
			ids, err = mpi.DecodeInt64s(reqs[q])
		}
		if err != nil {
			return nil, nil, err
		}
		out := make([]int64, len(ids))
		for i, cid := range ids {
			n, ok := localNew[cid]
			if !ok {
				return nil, nil, fmt.Errorf("core: rank %d asked for empty community %d", q, cid)
			}
			out[i] = myBase + n
		}
		if st.wireV2() {
			resp[q] = mpi.EncodeDeltaInt64s(out)
		} else {
			resp[q] = mpi.EncodeInt64s(out)
		}
	}
	answers, err := c.Alltoall(resp)
	if err != nil {
		return nil, nil, err
	}
	for q := 0; q < p; q++ {
		var vals []int64
		var err error
		if st.wireV2() {
			vals, err = mpi.DecodeDeltaInt64s(answers[q])
		} else {
			vals, err = mpi.DecodeInt64s(answers[q])
		}
		if err != nil {
			return nil, nil, err
		}
		if len(vals) != len(reqByOwner[q]) {
			return nil, nil, fmt.Errorf("core: renumber reply from rank %d has %d entries, want %d", q, len(vals), len(reqByOwner[q]))
		}
		for i, cid := range reqByOwner[q] {
			oldToNew[cid] = vals[i]
		}
	}

	// Step 5: partial coarse edge lists. Every local fine arc v→u maps to
	// the coarse arc new(comm(v))→new(comm(u)); parallel arcs merge.
	//
	// Arcs MUST leave this step sorted by (From, To): BuildFromArcs merges
	// parallel arcs with an unstable sort, so equal keys from different
	// ranks sum in input order — emitting in hash-map range order here made
	// float-weighted coarse graphs differ bit-wise run to run. Both kernels
	// (flat and map reference) emit in canonical sorted order.
	var arcs []dgraph.Arc
	if st.cfg.refKernels {
		arcs = st.coarseArcsMap(oldToNew)
	} else {
		arcs = st.coarseArcsFlat(oldToNew)
	}

	// Steps 6–7: redistribute to an even vertex partition and rebuild the
	// CSR (BuildFromArcs routes each arc to the owner of its source).
	newPart := partition.ByVertexCount(totalNew, p)
	ndg, err := dgraph.BuildFromArcs(c, totalNew, newPart, arcs)
	if err != nil {
		return nil, nil, err
	}
	return ndg, oldToNew, nil
}

// coarseArcsFlat accumulates the partial coarse arcs of Step 5 in per-worker
// flat (src,dst) tables, sorts each worker's partial independently (pairs
// are unique within a table, so the unstable sort is deterministic), and
// k-way merges the sorted partials, summing duplicate pairs in ascending
// worker order. Within a worker, each pair's weight accumulates in CSR visit
// order, so the final per-pair sums depend only on the graph and the thread
// count — never on hash layout. At Threads=1 the sums are bit-identical to
// the sequential map reference.
func (st *phaseState) coarseArcsFlat(oldToNew map[int64]int64) []dgraph.Arc {
	nw := st.cfg.Threads
	parts := make([][]dgraph.Arc, nw)
	par.For(int(st.dg.LocalN), nw, func(w, lo, hi int) {
		tab := flat.NewPairTable(256)
		for lvi := lo; lvi < hi; lvi++ {
			lv := int64(lvi)
			a := oldToNew[st.comm[lv]]
			for _, e := range st.dg.Neighbors(lv) {
				tab.Add(a, oldToNew[st.commOf(e.To)], e.W)
			}
		}
		arcs := make([]dgraph.Arc, tab.Len())
		for i := range arcs {
			a, b, wt := tab.At(i)
			arcs[i] = dgraph.Arc{From: a, To: b, W: wt}
		}
		sort.Slice(arcs, func(i, j int) bool {
			if arcs[i].From != arcs[j].From {
				return arcs[i].From < arcs[j].From
			}
			return arcs[i].To < arcs[j].To
		})
		parts[w] = arcs
	})
	if nw == 1 {
		return parts[0]
	}
	var total int
	for _, p := range parts { // parts[w] is nil for unspawned empty ranges
		total += len(p)
	}
	out := make([]dgraph.Arc, 0, total)
	heads := make([]int, nw)
	for {
		best := -1
		for w := 0; w < nw; w++ {
			if heads[w] >= len(parts[w]) {
				continue
			}
			if best < 0 {
				best = w
				continue
			}
			a, b := parts[w][heads[w]], parts[best][heads[best]]
			// Strict less: on equal pairs the lowest worker wins, so
			// duplicates drain — and sum — in worker order.
			if a.From < b.From || (a.From == b.From && a.To < b.To) {
				best = w
			}
		}
		if best < 0 {
			break
		}
		arc := parts[best][heads[best]]
		heads[best]++
		if n := len(out); n > 0 && out[n-1].From == arc.From && out[n-1].To == arc.To {
			out[n-1].W += arc.W
			continue
		}
		out = append(out, arc)
	}
	return out
}
