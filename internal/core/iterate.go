package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"distlouvain/internal/flat"
	"distlouvain/internal/mpi"
	"distlouvain/internal/obsv"
	"distlouvain/internal/par"
)

// move is one vertex's decision within an iteration.
type move struct {
	lv       int64 // local vertex index
	from, to int64 // community IDs
}

// updateActivity applies the ET probability decay of Equation 3 before
// iteration iter (1-based) and returns the local inactive count. With
// Alpha == 0 every vertex stays active.
func (st *phaseState) updateActivity(iter int) int64 {
	if st.cfg.Alpha <= 0 {
		return 0
	}
	if iter >= 2 {
		par.For(int(st.dg.LocalN), st.cfg.Threads, func(_, lo, hi int) {
			for lv := lo; lv < hi; lv++ {
				if st.inactive[lv] {
					continue
				}
				if st.comm[lv] == st.prevComm[lv] {
					st.prob[lv] *= 1 - st.cfg.Alpha
					if st.prob[lv] < InactiveCutoff {
						st.inactive[lv] = true
					}
				} else {
					st.prob[lv] = 1
				}
			}
		})
	}
	copy(st.prevComm, st.comm)
	return par.ReduceInt64(int(st.dg.LocalN), st.cfg.Threads, func(_, lo, hi int) int64 {
		var c int64
		for lv := lo; lv < hi; lv++ {
			if st.inactive[lv] {
				c++
			}
		}
		return c
	})
}

// isActive combines the permanent inactive label with the per-iteration
// coin flip at probability prob[lv]. The flip hashes (seed, global vertex,
// iteration) so the outcome is identical however vertices are distributed.
func (st *phaseState) isActive(lv int64, iter int) bool {
	if st.inactive[lv] {
		return false
	}
	p := st.prob[lv]
	if p >= 1 {
		return true
	}
	h := par.Mix64(st.seed ^ uint64(st.dg.Global(lv))*0x9e3779b97f4a7c15 ^ uint64(iter)*0xd1b54a32d192ed03)
	return float64(h>>11)/(1<<53) < p
}

// evaluateVertex computes lv's ΔQ-maximising move against the current
// local state plus this iteration's ghost/remote snapshots (lines 7–8 of
// Algorithm 3). Returns false when lv should stay put.
//
// tab is the worker's flat neighbor-community accumulator (phase-lived,
// epoch-reset per vertex). Neighbor weights accumulate per community in CSR
// order — the same order the map reference kernel uses — so every e(v→C)
// sum is bit-identical to the reference, and the best-move selection below
// is iteration-order independent (strict > on gains, smallest-cid
// tie-break), so the chosen moves are identical too. evaluateVertexRef in
// kernels_ref.go is the map oracle the differential tests compare against.
func (st *phaseState) evaluateVertex(lv int64, tab *flat.Table) (move, bool) {
	m2 := st.dg.M2
	cv := st.comm[lv]
	tab.Reset()
	g := st.dg.Global(lv)
	for _, e := range st.dg.Neighbors(lv) {
		if e.To == g {
			continue // self loop moves with the vertex
		}
		tab.Add(st.commOf(e.To), e.W)
	}
	if tab.Len() == 0 {
		return move{}, false
	}
	eCur, _ := tab.Get(cv)
	kv := st.dg.K[lv]
	curInfo, ok := st.infoOf(cv)
	if !ok {
		return move{}, false // stale reference; skip this vertex for now
	}
	aCur := curInfo.a - kv
	best := cv
	bestGain := 0.0
	var bestInfo cinfo
	for i := 0; i < tab.Len(); i++ {
		cid, evc := tab.At(i)
		if cid == cv {
			continue
		}
		ci, ok := st.infoOf(cid)
		if !ok {
			continue
		}
		gain := 2*(evc-eCur)/m2 - 2*kv*(ci.a-aCur)/(m2*m2)
		if gain > bestGain || (gain == bestGain && gain > 0 && cid < best) {
			bestGain = gain
			best = cid
			bestInfo = ci
		}
	}
	if best == cv || bestGain <= 0 {
		return move{}, false
	}
	// Minimum-label rule: a singleton only joins another singleton with a
	// smaller label, killing synchronous swap cycles (same rule as the
	// shared-memory comparator).
	if curInfo.size == 1 && bestInfo.size == 1 && best > cv {
		return move{}, false
	}
	return move{lv: lv, from: cv, to: best}, true
}

// sweep is step (ii) of Algorithm 3: every active local vertex evaluates
// its best move, double-buffered across the whole sweep. It returns the
// chosen moves without applying them.
//
// With a frontier (st.fr non-nil), only the active set is offered to the
// workers: under the sparse direction the chunks walk cur.Sorted()
// directly; under the dense direction the full range is chunked and
// filtered by the bitmap. Both directions visit surviving vertices in
// ascending local order — the same order as the full scan — so the
// gathered move list, and with it every float accumulation downstream, is
// bit-identical across all frontier modes.
//
// Each worker reuses its phase-lived flat table and move buffer. Every
// moveBuf is truncated BEFORE the parallel region: par.For does not spawn
// workers whose chunk is empty, so a worker that ran last iteration but not
// this one would otherwise leak stale moves into the gather below. (Carry
// buffers avoid the same hazard by being drained after every merge.)
func (st *phaseState) sweep(iter int) []move {
	sp := st.tr().Begin(obsv.KindStep, "sweep")
	defer sp.End()
	t0 := time.Now()
	defer func() { st.steps.Compute += time.Since(t0) }()
	nw := st.cfg.Threads
	for w := range st.moveBufs {
		st.moveBufs[w] = st.moveBufs[w][:0]
	}
	clear(st.touchedBufs)
	fr := st.fr
	if fr != nil && !fr.scanDense {
		ids := fr.cur.Sorted()
		par.For(len(ids), nw, func(w, lo, hi int) {
			st.sweepRange(w, lo, hi, func(i int64) int64 { return ids[i] }, iter)
		})
	} else {
		par.For(int(st.dg.LocalN), nw, func(w, lo, hi int) {
			st.sweepRange(w, lo, hi, func(lv int64) int64 { return lv }, iter)
		})
	}
	all := st.allMoves[:0]
	for _, ms := range st.moveBufs {
		all = append(all, ms...)
	}
	st.allMoves = all
	st.iterTouched = 0
	for _, c := range st.touchedBufs {
		st.iterTouched += c
	}
	if fr != nil {
		// Merge the coin-skipped carry-overs (dirty rule e) into the next
		// frontier single-threaded, draining each buffer so a worker idle
		// next iteration cannot replay stale entries.
		for w := range fr.carryBufs {
			for _, lv := range fr.carryBufs[w] {
				fr.next.Mark(lv)
			}
			fr.carryBufs[w] = fr.carryBufs[w][:0]
		}
		st.iterFrontier = fr.cur.Len()
	} else {
		st.iterFrontier = st.dg.LocalN
	}
	sp.SetCount(st.iterTouched)
	return all
}

// sweepRange evaluates vertices vertexAt(lo..hi) on worker w, appending
// chosen moves to the worker's buffer and counting evaluations into the
// worker's touched counter (+=: sweepByClasses calls once per class). The
// refKernels branch routes through the map-based reference kernel for
// differential testing. Frontier members the ET coin skips are carried into
// the next frontier — a stale vertex stays dirty until actually evaluated —
// while permanently inactive vertices drop out, matching the full scan
// (which never evaluates those again either).
func (st *phaseState) sweepRange(w, lo, hi int, vertexAt func(int64) int64, iter int) {
	moves := st.moveBufs[w]
	fr := st.fr
	var carry []int64
	if fr != nil {
		carry = fr.carryBufs[w]
	}
	var touched int64
	var scratch map[int64]float64
	var tab *flat.Table
	if st.cfg.refKernels {
		scratch = make(map[int64]float64, 64)
	} else {
		tab = st.sweepTabs[w]
	}
	for i := lo; i < hi; i++ {
		lv := vertexAt(int64(i))
		if fr != nil && fr.scanDense && !fr.cur.Has(lv) {
			continue
		}
		if !st.isActive(lv, iter) {
			if fr != nil && !st.inactive[lv] {
				carry = append(carry, lv)
			}
			continue
		}
		touched++
		var mv move
		var ok bool
		if st.cfg.refKernels {
			mv, ok = st.evaluateVertexRef(lv, scratch)
		} else {
			mv, ok = st.evaluateVertex(lv, tab)
		}
		if ok {
			moves = append(moves, mv)
		}
	}
	st.moveBufs[w] = moves
	st.touchedBufs[w] += touched
	if fr != nil {
		fr.carryBufs[w] = carry
	}
}

// sweepByClasses processes local vertices one distance-1 color class at a
// time (§VI extension): members of a class are mutually non-adjacent, so
// their decisions are independent, and each class observes the local moves
// of all earlier classes within the same iteration. Community (A_c, size)
// values stay at their iteration-start snapshot — updating them mid-
// iteration would be inconsistent with the remote communities that cannot
// be refreshed until the delta push.
func (st *phaseState) sweepByClasses(classes [][]int64, iter int) []move {
	sp := st.tr().Begin(obsv.KindStep, "sweep")
	defer sp.End()
	t0 := time.Now()
	defer func() { st.steps.Compute += time.Since(t0) }()
	nw := st.cfg.Threads
	clear(st.touchedBufs)
	all := st.allMoves[:0]
	for _, class := range classes {
		for w := range st.moveBufs {
			st.moveBufs[w] = st.moveBufs[w][:0]
		}
		par.For(len(class), nw, func(w, lo, hi int) {
			st.sweepRange(w, lo, hi, func(i int64) int64 { return class[i] }, iter)
		})
		for _, ms := range st.moveBufs {
			// Apply class moves immediately so later classes see them.
			for _, mv := range ms {
				st.comm[mv.lv] = mv.to
			}
			all = append(all, ms...)
		}
	}
	st.allMoves = all
	st.iterTouched = 0
	for _, c := range st.touchedBufs {
		st.iterTouched += c
	}
	st.iterFrontier = st.dg.LocalN
	sp.SetCount(st.iterTouched)
	return all
}

// stageMoves is step (iii)'s local preparation: accumulate the (ΔA, Δsize)
// each source/destination community incurred (line 9 of Algorithm 3). It
// deliberately does NOT touch st.comm — assignment updates happen inside
// pushDeltas's compute/comm overlap window, after the delta frames are in
// flight (sweepByClasses has already written st.comm for its classes; the
// overlap window's re-assignment is idempotent there).
//
// Accumulation runs in move order (so each community's ΔA float sum is
// bit-identical to the old map implementation), but the deltas are emitted
// sorted by community ID: pushDeltas then applies and encodes them in an
// order independent of hash layout, which keeps owner-side float
// accumulation reproducible run-to-run (see commDelta).
func (st *phaseState) stageMoves(moves []move) []commDelta {
	tab := st.deltaTab
	tab.Reset()
	for _, mv := range moves {
		kv := st.dg.K[mv.lv]
		tab.AddDelta(mv.from, -kv, -1)
		tab.AddDelta(mv.to, kv, 1)
	}
	out := st.deltaBuf[:0]
	for i := 0; i < tab.Len(); i++ {
		cid, a, size := tab.AtDelta(i)
		out = append(out, commDelta{cid: cid, a: a, size: size})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].cid < out[j].cid })
	st.deltaBuf = out
	return out
}

// snapshot captures the state an iteration may need to roll back: local
// assignments and the owned community table. Ghost tables are not included
// — they reflect prior iterations' (kept) moves.
type snapshot struct {
	comm  []int64
	cA    []float64
	cSize []int64
}

func (st *phaseState) snapshot(s *snapshot) {
	if s.comm == nil {
		s.comm = make([]int64, len(st.comm))
		s.cA = make([]float64, len(st.cA))
		s.cSize = make([]int64, len(st.cSize))
	}
	copy(s.comm, st.comm)
	copy(s.cA, st.cA)
	copy(s.cSize, st.cSize)
}

func (st *phaseState) restore(s *snapshot) {
	copy(st.comm, s.comm)
	copy(st.cA, s.cA)
	copy(st.cSize, s.cSize)
}

// iterate runs the Louvain iterations of one phase (the while-loop of
// Algorithm 3) with threshold tau, and returns the phase statistics. On
// return st.comm holds the phase's final assignment.
func (st *phaseState) iterate(tau float64) (PhaseStat, error) {
	stat := PhaseStat{Vertices: st.dg.GlobalN, Tau: tau}
	prevQ := math.Inf(-1)
	var snap snapshot
	globalN := st.dg.GlobalN

	var classes [][]int64
	if st.cfg.UseColoring {
		csp := st.tr().Begin(obsv.KindStep, "coloring")
		color, numColors, err := DistColoring(st.dg, st.cfg.Seed)
		csp.End()
		if err != nil {
			return stat, err
		}
		classes = colorClasses(color, numColors)
		stat.Colors = numColors
	}

	for {
		if st.cfg.MaxIterations > 0 && stat.Iterations >= st.cfg.MaxIterations {
			stat.Exit = ExitMaxIter
			break
		}
		stat.Iterations++

		// The iteration span is closed explicitly on every break path; a
		// mid-iteration error leaves it open so the tracer's Path still
		// names the iteration a failed collective belonged to.
		st.tr().SetPos(st.phase, stat.Iterations)
		isp := st.tr().Begin(obsv.KindIteration, "iteration")

		localInactive := st.updateActivity(stat.Iterations)
		if st.cfg.ETC {
			// The ETC variant's extra communication: a global count of
			// inactive vertices; ≥ETCExit ends the phase.
			ta := time.Now()
			globalInactive, err := st.dg.Comm.AllreduceInt64(localInactive, mpi.OpSum)
			st.steps.Allreduce += time.Since(ta)
			if err != nil {
				return stat, fmt.Errorf("core: ETC inactivity allreduce: %w", err)
			}
			if globalN > 0 {
				// Guard the empty-graph case: 0/0 is NaN, and NaN >= ETCExit
				// is false, which would silently disable the ETC exit and
				// poison the reported fraction.
				stat.InactiveFrac = float64(globalInactive) / float64(globalN)
			}
			if stat.InactiveFrac >= st.cfg.ETCExit {
				stat.Iterations-- // this iteration did not run
				stat.Exit = ExitETC
				isp.End()
				break
			}
		}

		// (ii-prep) pull (A_c, size) for referenced remote communities.
		// Ghost communities already reflect the previous iteration's moves:
		// the identity assignment needs no exchange (§IV-A) and every
		// completed iteration ends with one.
		if err := st.fetchCommunityInfo(); err != nil {
			return stat, err
		}

		// Finalise the active set for this iteration's sweep: rule (d)
		// against the fresh community info, then swap in the set rules
		// (a)–(c) and (e) accumulated during the previous iteration.
		st.buildFrontier(stat.Iterations)

		st.snapshot(&snap)

		// (ii) local ΔQ sweep; (iii) apply + push community updates.
		var moves []move
		if st.cfg.UseColoring {
			moves = st.sweepByClasses(classes, stat.Iterations)
		} else {
			moves = st.sweep(stat.Iterations)
		}
		if err := st.pushDeltas(st.stageMoves(moves), moves); err != nil {
			return stat, err
		}
		// (i') refresh ghost vertex communities with this iteration's moves.
		// Exchanging here instead of at the loop top gives the next sweep
		// the same post-previous-iteration view it always had, but lets the
		// modularity below see consistent (post-move) assignments on BOTH
		// endpoints of cross-rank edges. That makes Q exact — and, for
		// integer edge weights, independent of the vertex partition, which
		// is what lets a checkpoint resumed on a different rank count
		// retrace the original trajectory bit for bit.
		if err := st.exchangeGhostComm(); err != nil {
			return stat, err
		}

		// (iv) global modularity (+ the iteration's migration count).
		q, globalMoves, err := st.modularityAndMoves(int64(len(moves)))
		if err != nil {
			return stat, err
		}
		stat.QTrajectory = append(stat.QTrajectory, q)
		stat.MovesTrajectory = append(stat.MovesTrajectory, globalMoves)
		stat.TouchedTrajectory = append(stat.TouchedTrajectory, st.globalTouched)
		stat.FrontierTrajectory = append(stat.FrontierTrajectory, st.globalFrontier)
		st.cfg.progress(ProgressEvent{Kind: ProgressIteration, Phase: st.phase, Iteration: stat.Iterations, Modularity: q, Vertices: globalN})

		// (v) threshold check.
		if q-prevQ <= tau {
			if !math.IsInf(prevQ, -1) && q < prevQ {
				// Joint moves decreased Q; every rank reverts this
				// iteration (the decision derives from the allreduced q,
				// so all ranks agree).
				st.restore(&snap)
			} else {
				prevQ = q
			}
			stat.Exit = ExitTau
			isp.End()
			break
		}
		prevQ = q
		isp.End()
	}

	if math.IsInf(prevQ, -1) {
		// Zero completed iterations (e.g. immediate ETC exit): measure
		// the current assignment.
		q, err := st.modularity()
		if err != nil {
			return stat, err
		}
		prevQ = q
	}
	stat.Modularity = prevQ

	if st.cfg.Alpha > 0 && !st.cfg.ETC {
		// Plain ET never counts inactives during the run (that is ETC's
		// extra communication step); gather the figure once per phase for
		// reporting, outside the algorithm's decision path.
		var localInactive int64
		for _, in := range st.inactive {
			if in {
				localInactive++
			}
		}
		globalInactive, err := st.dg.Comm.AllreduceInt64(localInactive, mpi.OpSum)
		if err != nil {
			return stat, fmt.Errorf("core: inactivity allreduce: %w", err)
		}
		if globalN > 0 {
			stat.InactiveFrac = float64(globalInactive) / float64(globalN)
		}
	}

	// Rebuild needs current ghost communities for edge relabeling.
	if err := st.exchangeGhostComm(); err != nil {
		return stat, err
	}
	return stat, nil
}
