package core

import (
	"distlouvain/internal/frontier"
	"distlouvain/internal/obsv"
	"time"
)

// frontierState drives the ligra-style active-set sweep of a phase. The
// invariant the differential tests pin: before iteration i's sweep, cur
// contains every local vertex whose ΔQ decision could differ from the
// decision the previous iteration's sweep computed (or would have computed)
// for it. A vertex's decision depends on its own community, its neighbours'
// communities (local and ghost), and the (A_c, size) of every community in
// that neighbourhood — so a vertex is dirtied when any of those changed
// during iteration i−1:
//
//	(a) it moved (pushDeltas overlap window);
//	(b) a local neighbour moved (same window, via the CSR row);
//	(c) a ghost neighbour's community value changed during the iteration-end
//	    exchange (setGhost compare-before-write → reverse ghost adjacency);
//	(d) a community in its neighbourhood changed (A_c, size) bitwise — owned
//	    entries are watched by applyDelta, remote entries by diffing
//	    consecutive fetchCommunityInfo results — where "its neighbourhood
//	    references c" is resolved by scanning comm/ghostComm for members of
//	    c and marking them plus their local/reverse-ghost adjacency;
//	(e) the ET coin skipped it while it was in the frontier (the sweep
//	    carries it over so a stale vertex is re-checked until actually
//	    evaluated; permanently inactive vertices drop out — the full scan
//	    never evaluates those again either).
//
// Marking a superset is always safe: re-evaluating an unchanged vertex
// reproduces its previous "stay put" decision. The rules never mark less
// than the set whose decision can change, which is the bit-identity proof.
type frontierState struct {
	cur, next *frontier.Set

	// scanDense mirrors cur.Dense() for the duration of one sweep: workers
	// filter by Has under the bitmap scan, and iterate cur.Sorted() directly
	// under the list scan.
	scanDense bool

	// carryBufs[w] collects rule-(e) carry-overs per sweep worker; merged
	// into next single-threaded after the parallel region.
	carryBufs [][]int64

	// Reverse ghost adjacency, built once per phase: the local vertices
	// adjacent to each ghost slot (revAdj[revOff[slot]:revOff[slot+1]]).
	revOff []int64
	revAdj []int64

	// Rule-(d) watchers. changedOwned lists owned communities (local index)
	// whose (A_c, size) changed since the last frontier build, deduplicated
	// by an epoch stamp so applyDelta stays O(1). prevRemote holds the
	// previous iteration's remote (A_c, size) cache for bitwise diffing.
	changedOwned []int64
	ownedStamp   []int32
	ownedEpoch   int32
	prevRemote   map[int64]cinfo

	// changedComms is the per-build scratch set of community IDs whose
	// (A_c, size) changed.
	changedComms map[int64]struct{}
}

func newFrontierState(st *phaseState) *frontierState {
	n := st.dg.LocalN
	var rep frontier.Rep
	switch st.cfg.Frontier {
	case FrontierDense:
		rep = frontier.RepDense
	case FrontierSparse:
		rep = frontier.RepSparse
	default:
		rep = frontier.RepAuto
	}
	fr := &frontierState{
		cur:          frontier.New(n, rep, st.cfg.FrontierSparseThreshold),
		next:         frontier.New(n, rep, st.cfg.FrontierSparseThreshold),
		carryBufs:    make([][]int64, st.cfg.Threads),
		ownedStamp:   make([]int32, n),
		prevRemote:   make(map[int64]cinfo),
		changedComms: make(map[int64]struct{}),
	}

	// Reverse ghost adjacency by counting sort over the CSR rows.
	counts := make([]int64, len(st.dg.Ghosts)+1)
	for lv := int64(0); lv < n; lv++ {
		for _, e := range st.dg.Neighbors(lv) {
			if !st.dg.IsLocal(e.To) {
				counts[st.dg.GhostIndex[e.To]+1]++
			}
		}
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	fr.revOff = counts
	fr.revAdj = make([]int64, counts[len(counts)-1])
	fill := make([]int64, len(st.dg.Ghosts))
	for lv := int64(0); lv < n; lv++ {
		for _, e := range st.dg.Neighbors(lv) {
			if !st.dg.IsLocal(e.To) {
				slot := st.dg.GhostIndex[e.To]
				fr.revAdj[fr.revOff[slot]+fill[slot]] = lv
				fill[slot]++
			}
		}
	}
	return fr
}

// markGhostAdj dirties the locals adjacent to a ghost slot (rules c and d).
func (fr *frontierState) markGhostAdj(slot int32) {
	for _, lv := range fr.revAdj[fr.revOff[slot]:fr.revOff[slot+1]] {
		fr.next.Mark(lv)
	}
}

// noteOwnedChanged records that owned community lc's (A_c, size) changed
// bitwise since the last frontier build (rule d, owned side).
func (fr *frontierState) noteOwnedChanged(lc int64) {
	if fr.ownedStamp[lc] == fr.ownedEpoch {
		return
	}
	fr.ownedStamp[lc] = fr.ownedEpoch
	fr.changedOwned = append(fr.changedOwned, lc)
}

// markMoves dirties this iteration's movers and their local neighbours
// (rules a and b). Ghost neighbours of a mover are other ranks' locals;
// those ranks observe the move through their ghost table (rule c on their
// side).
func (st *phaseState) markMoves(moves []move) {
	fr := st.fr
	for _, mv := range moves {
		fr.next.Mark(mv.lv)
		for _, e := range st.dg.Neighbors(mv.lv) {
			if st.dg.IsLocal(e.To) {
				fr.next.Mark(e.To - st.dg.Base)
			}
		}
	}
}

// setGhost writes one ghost-table entry, dirtying the slot's local
// adjacency when the value actually changed (rule c). Every ghost-table
// write after phase setup routes through here.
func (st *phaseState) setGhost(slot int32, v int64) {
	if st.ghostComm[slot] == v {
		return
	}
	st.ghostComm[slot] = v
	if st.fr != nil {
		st.fr.markGhostAdj(slot)
	}
}

// buildFrontier finalises the active set for iteration iter (1-based). It
// runs after fetchCommunityInfo — the remote (A_c, size) cache is fresh —
// and before the sweep. Iteration 1 seeds the full vertex set; later
// iterations fold in rule (d) and swap in the set rules a–c and e built
// during iteration iter−1.
func (st *phaseState) buildFrontier(iter int) {
	fr := st.fr
	if fr == nil {
		return
	}
	sp := st.tr().Begin(obsv.KindStep, "frontier-build")
	t0 := time.Now()

	if iter == 1 {
		fr.cur.Fill()
	} else {
		// Rule (d): communities whose (A_c, size) changed during iter−1.
		changed := fr.changedComms
		clear(changed)
		for _, lc := range fr.changedOwned {
			changed[st.dg.Base+lc] = struct{}{}
		}
		for cid, ci := range st.remoteInfo {
			if prev, ok := fr.prevRemote[cid]; !ok || prev != ci {
				changed[cid] = struct{}{}
			}
		}
		if len(changed) > 0 {
			// Resolve "references a changed community" by membership: the
			// referencing vertices are the members plus everything adjacent
			// to a member (through the CSR rows for local members, through
			// the reverse ghost adjacency for ghost members).
			for lv := int64(0); lv < st.dg.LocalN; lv++ {
				if _, ok := changed[st.comm[lv]]; !ok {
					continue
				}
				fr.next.Mark(lv)
				for _, e := range st.dg.Neighbors(lv) {
					if st.dg.IsLocal(e.To) {
						fr.next.Mark(e.To - st.dg.Base)
					}
				}
			}
			for slot, gc := range st.ghostComm {
				if _, ok := changed[gc]; ok {
					fr.markGhostAdj(int32(slot))
				}
			}
		}
		fr.cur, fr.next = fr.next, fr.cur
		fr.next.Clear()
	}

	// Reset the rule-(d) watchers for the iteration about to run.
	fr.changedOwned = fr.changedOwned[:0]
	fr.ownedEpoch++
	if fr.ownedEpoch == 0 { // int32 wrap: restamp
		clear(fr.ownedStamp)
		fr.ownedEpoch = 1
	}
	clear(fr.prevRemote)
	for cid, ci := range st.remoteInfo {
		fr.prevRemote[cid] = ci
	}

	fr.scanDense = fr.cur.Dense()
	st.steps.Compute += time.Since(t0)
	sp.SetCount(fr.cur.Len())
	sp.End()
}
