package core

import (
	"sort"

	"distlouvain/internal/dgraph"
)

// Reference kernels: the original map-based implementations of the ΔQ sweep
// accumulator and the coarse-arc aggregator, kept as oracles for the
// differential tests and benchmarks (Config.refKernels routes a run through
// them). They must match the flat kernels move for move and — where the
// flat kernel promises it — bit for bit; kernels_test.go enforces both.

// evaluateVertexRef is evaluateVertex with a map scratch accumulator. The
// accumulation order over neighbors is identical (CSR order), and the
// best-move scan is iteration-order independent, so the chosen move is
// always identical to the flat kernel's.
func (st *phaseState) evaluateVertexRef(lv int64, scratch map[int64]float64) (move, bool) {
	m2 := st.dg.M2
	cv := st.comm[lv]
	clear(scratch)
	g := st.dg.Global(lv)
	for _, e := range st.dg.Neighbors(lv) {
		if e.To == g {
			continue // self loop moves with the vertex
		}
		scratch[st.commOf(e.To)] += e.W
	}
	if len(scratch) == 0 {
		return move{}, false
	}
	eCur := scratch[cv]
	kv := st.dg.K[lv]
	curInfo, ok := st.infoOf(cv)
	if !ok {
		return move{}, false // stale reference; skip this vertex for now
	}
	aCur := curInfo.a - kv
	best := cv
	bestGain := 0.0
	var bestInfo cinfo
	for cid, evc := range scratch {
		if cid == cv {
			continue
		}
		ci, ok := st.infoOf(cid)
		if !ok {
			continue
		}
		gain := 2*(evc-eCur)/m2 - 2*kv*(ci.a-aCur)/(m2*m2)
		if gain > bestGain || (gain == bestGain && gain > 0 && cid < best) {
			bestGain = gain
			best = cid
			bestInfo = ci
		}
	}
	if best == cv || bestGain <= 0 {
		return move{}, false
	}
	if curInfo.size == 1 && bestInfo.size == 1 && best > cv {
		return move{}, false
	}
	return move{lv: lv, from: cv, to: best}, true
}

// coarseArcsMap is the sequential map-based Step 5 aggregator. Emission is
// sorted by (From, To) — same canonical order as the flat kernel — because
// downstream BuildFromArcs merges parallel arcs with an unstable sort whose
// float accumulation order follows input order. Per-pair sums accumulate in
// CSR visit order, bit-identical to the single-threaded flat kernel.
func (st *phaseState) coarseArcsMap(oldToNew map[int64]int64) []dgraph.Arc {
	type pair struct{ a, b int64 }
	acc := make(map[pair]float64)
	for lv := int64(0); lv < st.dg.LocalN; lv++ {
		a := oldToNew[st.comm[lv]]
		for _, e := range st.dg.Neighbors(lv) {
			acc[pair{a, oldToNew[st.commOf(e.To)]}] += e.W
		}
	}
	arcs := make([]dgraph.Arc, 0, len(acc))
	for pr, w := range acc {
		arcs = append(arcs, dgraph.Arc{From: pr.a, To: pr.b, W: w})
	}
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].From != arcs[j].From {
			return arcs[i].From < arcs[j].From
		}
		return arcs[i].To < arcs[j].To
	})
	return arcs
}
