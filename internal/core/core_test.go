package core

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"distlouvain/internal/dgraph"
	"distlouvain/internal/gen"
	"distlouvain/internal/gio"
	"distlouvain/internal/graph"
	"distlouvain/internal/mpi"
	"distlouvain/internal/seq"
)

func twoCliquesEdges() (int64, []graph.RawEdge) {
	var edges []graph.RawEdge
	clique := func(vs []int64) {
		for i := range vs {
			for j := i + 1; j < len(vs); j++ {
				edges = append(edges, graph.RawEdge{U: vs[i], V: vs[j], W: 1})
			}
		}
	}
	clique([]int64{0, 1, 2, 3})
	clique([]int64{4, 5, 6, 7})
	edges = append(edges, graph.RawEdge{U: 3, V: 4, W: 1})
	return 8, edges
}

func TestDistributedTwoCliques(t *testing.T) {
	n, edges := twoCliquesEdges()
	for _, p := range []int{1, 2, 3, 4} {
		res, err := RunOnEdges(p, n, edges, Baseline())
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if res.Communities != 2 {
			t.Fatalf("p=%d: %d communities (%v)", p, res.Communities, res.GlobalComm)
		}
		want := 24.0/26.0 - 0.5
		if math.Abs(res.Modularity-want) > 1e-9 {
			t.Fatalf("p=%d: Q=%g want %g", p, res.Modularity, want)
		}
		for v := 1; v < 4; v++ {
			if res.GlobalComm[v] != res.GlobalComm[0] {
				t.Fatalf("p=%d: clique 1 split: %v", p, res.GlobalComm)
			}
		}
		for v := 5; v < 8; v++ {
			if res.GlobalComm[v] != res.GlobalComm[4] {
				t.Fatalf("p=%d: clique 2 split: %v", p, res.GlobalComm)
			}
		}
	}
}

func TestDistributedModularityExact(t *testing.T) {
	// The reported modularity must match the serial recomputation of the
	// returned assignment, for every rank count and variant.
	n, edges, _ := gen.PlantedPartition(6, 20, 0.5, 0.01, 41)
	g := gen.Build(n, edges)
	for _, p := range []int{1, 2, 4} {
		for _, cfg := range []Config{Baseline(), ThresholdCycling(), ET(0.25), ETC(0.75)} {
			res, err := RunOnEdges(p, n, edges, cfg)
			if err != nil {
				t.Fatalf("p=%d %s: %v", p, cfg.VariantName(), err)
			}
			exact := seq.Modularity(g, res.GlobalComm)
			if math.Abs(exact-res.Modularity) > 1e-9 {
				t.Fatalf("p=%d %s: reported Q=%.6f, exact %.6f", p, cfg.VariantName(), res.Modularity, exact)
			}
		}
	}
}

func TestDistributedMatchesSerialQuality(t *testing.T) {
	n, edges, _ := gen.PlantedPartition(8, 25, 0.4, 0.005, 77)
	g := gen.Build(n, edges)
	serial := seq.Run(g, seq.Options{})
	for _, p := range []int{2, 4} {
		res, err := RunOnEdges(p, n, edges, Baseline())
		if err != nil {
			t.Fatal(err)
		}
		// "without compromising output quality": within a few percent of
		// serial Louvain.
		if res.Modularity < serial.Modularity*0.95 {
			t.Fatalf("p=%d: distributed Q=%.4f far below serial %.4f", p, res.Modularity, serial.Modularity)
		}
	}
}

func TestDistributedSingleRankNearSerial(t *testing.T) {
	// On one rank there are no ghosts and no lag: quality should be very
	// close to the serial heuristic on a well-structured graph.
	n, edges, _ := gen.PlantedPartition(10, 20, 0.5, 0.005, 3)
	g := gen.Build(n, edges)
	serial := seq.Run(g, seq.Options{})
	res, err := RunOnEdges(1, n, edges, Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Modularity-serial.Modularity) > 0.05 {
		t.Fatalf("1-rank Q=%.4f vs serial %.4f", res.Modularity, serial.Modularity)
	}
}

func TestDistributedLabelsDense(t *testing.T) {
	n, edges, _ := gen.PlantedPartition(5, 16, 0.5, 0.02, 9)
	res, err := RunOnEdges(3, n, edges, Baseline())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for _, c := range res.GlobalComm {
		if c < 0 || c >= res.Communities {
			t.Fatalf("label %d outside [0,%d)", c, res.Communities)
		}
		seen[c] = true
	}
	if int64(len(seen)) != res.Communities {
		t.Fatalf("%d distinct labels, Communities=%d", len(seen), res.Communities)
	}
}

func TestDistributedEmptyRanks(t *testing.T) {
	// More ranks than vertices.
	n, edges := twoCliquesEdges()
	res, err := RunOnEdges(12, n, edges, Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if res.Communities != 2 {
		t.Fatalf("%d communities", res.Communities)
	}
}

func TestDistributedNoEdges(t *testing.T) {
	res, err := RunOnEdges(3, 7, nil, Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if res.Communities != 7 || res.Modularity != 0 {
		t.Fatalf("comms=%d Q=%g", res.Communities, res.Modularity)
	}
}

func TestDistributedSelfLoopsOnly(t *testing.T) {
	edges := []graph.RawEdge{{U: 0, V: 0, W: 2}, {U: 1, V: 1, W: 3}}
	res, err := RunOnEdges(2, 2, edges, Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if res.Communities != 2 {
		t.Fatalf("self-loop vertices merged: %v", res.GlobalComm)
	}
}

func TestDistributedWeightedGraph(t *testing.T) {
	// Two triangles bridged by a *heavy* edge: with enough weight the
	// bridge dominates and the optimum merges across it. Verify the
	// distributed version agrees with serial Louvain on this weighted case.
	edges := []graph.RawEdge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 0, V: 2, W: 1},
		{U: 3, V: 4, W: 1}, {U: 4, V: 5, W: 1}, {U: 3, V: 5, W: 1},
		{U: 2, V: 3, W: 10},
	}
	g := gen.Build(6, edges)
	serial := seq.Run(g, seq.Options{})
	res, err := RunOnEdges(2, 6, edges, Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Modularity-serial.Modularity) > 0.05 {
		t.Fatalf("weighted: distributed Q=%.4f serial %.4f", res.Modularity, serial.Modularity)
	}
}

func TestVariantNames(t *testing.T) {
	cases := map[string]Config{
		"Baseline":          Baseline(),
		"Threshold Cycling": ThresholdCycling(),
		"ET(0.25)":          ET(0.25),
		"ETC(0.75)":         ETC(0.75),
		"ET(0.25)+TC":       ETWithTC(0.25),
	}
	for want, cfg := range cases {
		if got := cfg.VariantName(); got != want {
			t.Fatalf("VariantName = %q, want %q", got, want)
		}
	}
}

func TestPaperTauSchedule(t *testing.T) {
	s := PaperTauSchedule()
	if len(s) != 13 {
		t.Fatalf("schedule length %d", len(s))
	}
	want := []struct {
		idx int
		tau float64
	}{{0, 1e-3}, {2, 1e-3}, {3, 1e-4}, {6, 1e-4}, {7, 1e-5}, {9, 1e-5}, {10, 1e-6}, {12, 1e-6}}
	for _, w := range want {
		if s[w.idx] != w.tau {
			t.Fatalf("schedule[%d] = %g, want %g", w.idx, s[w.idx], w.tau)
		}
	}
}

func TestETReducesIterationsDistributed(t *testing.T) {
	n, edges := gen.BandedMesh(2000, 5)
	base, err := RunOnEdges(2, n, edges, Baseline())
	if err != nil {
		t.Fatal(err)
	}
	et, err := RunOnEdges(2, n, edges, ET(1.0))
	if err != nil {
		t.Fatal(err)
	}
	if et.TotalIterations >= base.TotalIterations {
		t.Fatalf("ET(1.0) iterations %d >= baseline %d", et.TotalIterations, base.TotalIterations)
	}
	if et.Modularity < base.Modularity-0.05 {
		t.Fatalf("ET(1.0) Q=%.4f baseline %.4f", et.Modularity, base.Modularity)
	}
}

func TestETCExitsPhases(t *testing.T) {
	n, edges := gen.BandedMesh(2000, 5)
	res, err := RunOnEdges(2, n, edges, ETC(0.75))
	if err != nil {
		t.Fatal(err)
	}
	foundETCExit := false
	for _, ph := range res.Phases {
		if ph.Exit == ExitETC {
			foundETCExit = true
			if ph.InactiveFrac < DefaultETCExit {
				t.Fatalf("ETC exit with inactive frac %.2f", ph.InactiveFrac)
			}
		}
	}
	if !foundETCExit {
		t.Log("note: no phase ended via ETC on this input (allowed, but unexpected)")
	}
}

func TestQTrajectoryRecorded(t *testing.T) {
	n, edges, _ := gen.PlantedPartition(6, 20, 0.5, 0.01, 13)
	res, err := RunOnEdges(2, n, edges, Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) == 0 {
		t.Fatal("no phases recorded")
	}
	for _, ph := range res.Phases {
		if len(ph.QTrajectory) != ph.Iterations {
			t.Fatalf("trajectory length %d != iterations %d", len(ph.QTrajectory), ph.Iterations)
		}
	}
	if res.Runtime <= 0 || res.Steps.Total <= 0 {
		t.Fatal("timing not recorded")
	}
	if res.Traffic.CollectiveOps == 0 {
		t.Fatal("traffic not recorded")
	}
}

func TestSendChangedOnlySameResult(t *testing.T) {
	// The pruned ghost protocol must be an exact optimization: identical
	// assignment and modularity to the full push, variant by variant. Both
	// sides pin GhostRefresh and wire v1 explicitly — the run defaults
	// (GhostDelta, varint wire) undercut even the legacy pruned frames,
	// which would invert the traffic assertion.
	n, edges, _ := gen.PlantedPartition(6, 20, 0.5, 0.01, 55)
	for _, base := range []Config{Baseline(), ET(0.5)} {
		base.WireFormat = mpi.WireV1
		base.GhostRefresh = GhostDense
		pruned := base
		pruned.GhostRefresh = GhostAuto
		pruned.SendChangedOnly = true
		a, err := RunOnEdges(3, n, edges, base)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunOnEdges(3, n, edges, pruned)
		if err != nil {
			t.Fatal(err)
		}
		if a.Modularity != b.Modularity || a.Communities != b.Communities {
			t.Fatalf("%s: pruned run diverged: Q %.6f vs %.6f, comms %d vs %d",
				base.VariantName(), a.Modularity, b.Modularity, a.Communities, b.Communities)
		}
		for v := range a.GlobalComm {
			if a.GlobalComm[v] != b.GlobalComm[v] {
				t.Fatalf("%s: assignment differs at %d", base.VariantName(), v)
			}
		}
		if b.Traffic.SentBytes+b.Traffic.CollBytes > a.Traffic.SentBytes+a.Traffic.CollBytes {
			t.Fatalf("%s: pruning did not reduce traffic (%d vs %d bytes)",
				base.VariantName(), b.Traffic.TotalBytes(), a.Traffic.TotalBytes())
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	n, edges, _ := gen.PlantedPartition(5, 18, 0.5, 0.02, 31)
	cfg := ET(0.5)
	cfg.Seed = 99
	a, err := RunOnEdges(3, n, edges, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOnEdges(3, n, edges, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Modularity != b.Modularity || a.TotalIterations != b.TotalIterations {
		t.Fatalf("same-seed runs diverged: Q %.6f/%.6f iters %d/%d",
			a.Modularity, b.Modularity, a.TotalIterations, b.TotalIterations)
	}
	for v := range a.GlobalComm {
		if a.GlobalComm[v] != b.GlobalComm[v] {
			t.Fatalf("assignment differs at %d", v)
		}
	}
}

func TestIntraRankThreads(t *testing.T) {
	// MPI+OpenMP: multiple worker goroutines per rank must not change
	// correctness invariants.
	n, edges, _ := gen.PlantedPartition(6, 20, 0.4, 0.01, 8)
	g := gen.Build(n, edges)
	for _, threads := range []int{1, 2, 4} {
		cfg := Baseline()
		cfg.Threads = threads
		res, err := RunOnEdges(2, n, edges, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(seq.Modularity(g, res.GlobalComm)-res.Modularity) > 1e-9 {
			t.Fatalf("threads=%d: inconsistent modularity", threads)
		}
	}
}

func TestMaxPhasesAndIterationsRespected(t *testing.T) {
	_, edges := gen.ErdosRenyi(300, 1500, 2)
	cfg := Baseline()
	cfg.MaxPhases = 2
	cfg.MaxIterations = 3
	res, err := RunOnEdges(2, 300, edges, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) > 2 {
		t.Fatalf("%d phases", len(res.Phases))
	}
	for _, ph := range res.Phases {
		if ph.Iterations > 3 {
			t.Fatalf("%d iterations", ph.Iterations)
		}
	}
}

func TestRebuildPreservesM2(t *testing.T) {
	// Across phases the coarse graph must preserve the doubled total
	// weight exactly (up to float associativity).
	n, edges, _ := gen.PlantedPartition(6, 25, 0.4, 0.01, 19)
	err := mpi.Run(3, func(c *mpi.Comm) error {
		lo, hi := gio.SegmentRange(int64(len(edges)), c.Rank(), 3)
		dg, err := dgraph.Build(c, n, edges[lo:hi], nil)
		if err != nil {
			return err
		}
		m2 := dg.M2
		cfg := Baseline()
		cfg.fill()
		steps := &StepTimes{}
		st, err := newPhaseState(dg, &cfg, 0, steps)
		if err != nil {
			return err
		}
		if _, err := st.iterate(cfg.Tau); err != nil {
			return err
		}
		ndg, _, err := st.rebuild(nil)
		if err != nil {
			return err
		}
		if err := ndg.Validate(); err != nil {
			return err
		}
		if math.Abs(ndg.M2-m2) > 1e-6*math.Max(1, m2) {
			return fmt.Errorf("M2 %g -> %g across rebuild", m2, ndg.M2)
		}
		if ndg.GlobalN >= dg.GlobalN {
			return fmt.Errorf("no compaction: %d -> %d", dg.GlobalN, ndg.GlobalN)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommunitySizesConsistentAtOwners(t *testing.T) {
	// After a phase, the summed community sizes at owners must equal the
	// global vertex count (every vertex is in exactly one community).
	n, edges, _ := gen.PlantedPartition(5, 20, 0.5, 0.02, 23)
	err := mpi.Run(4, func(c *mpi.Comm) error {
		lo, hi := gio.SegmentRange(int64(len(edges)), c.Rank(), 4)
		dg, err := dgraph.Build(c, n, edges[lo:hi], nil)
		if err != nil {
			return err
		}
		cfg := Baseline()
		cfg.fill()
		st, err := newPhaseState(dg, &cfg, 0, &StepTimes{})
		if err != nil {
			return err
		}
		if _, err := st.iterate(cfg.Tau); err != nil {
			return err
		}
		var localSize int64
		var localA float64
		for lc := int64(0); lc < dg.LocalN; lc++ {
			localSize += st.cSize[lc]
			localA += st.cA[lc]
		}
		totalSize, err := c.AllreduceInt64(localSize, mpi.OpSum)
		if err != nil {
			return err
		}
		if totalSize != n {
			return fmt.Errorf("community sizes sum to %d, want %d", totalSize, n)
		}
		totalA, err := c.AllreduceFloat64(localA, mpi.OpSum)
		if err != nil {
			return err
		}
		if math.Abs(totalA-dg.M2) > 1e-6 {
			return fmt.Errorf("sum A_c = %g, want m2 = %g", totalA, dg.M2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: for random planted graphs, any rank count and any variant, the
// distributed result is internally consistent (exact modularity, dense
// labels, every vertex labelled).
func TestQuickDistributedConsistency(t *testing.T) {
	variants := []Config{Baseline(), ThresholdCycling(), ET(0.25), ET(0.75), ETC(0.25), ETWithTC(0.25)}
	f := func(seed uint64, pRaw, vRaw uint8) bool {
		p := int(pRaw%4) + 1
		cfg := variants[int(vRaw)%len(variants)]
		cfg.Seed = seed
		n, edges, _ := gen.PlantedPartition(4, 15, 0.5, 0.02, seed)
		g := gen.Build(n, edges)
		res, err := RunOnEdges(p, n, edges, cfg)
		if err != nil {
			return false
		}
		if int64(len(res.GlobalComm)) != n {
			return false
		}
		seen := map[int64]bool{}
		for _, c := range res.GlobalComm {
			if c < 0 || c >= res.Communities {
				return false
			}
			seen[c] = true
		}
		if int64(len(seen)) != res.Communities {
			return false
		}
		return math.Abs(seq.Modularity(g, res.GlobalComm)-res.Modularity) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: rank count does not change the *reported* modularity much —
// different partitions may reach different local optima, but on graphs with
// clear structure every p must land near the planted optimum.
func TestQuickRankCountQualityStable(t *testing.T) {
	f := func(seed uint64) bool {
		n, edges, truth := gen.PlantedPartition(6, 18, 0.55, 0.01, seed)
		g := gen.Build(n, edges)
		planted := seq.Modularity(g, truth)
		for _, p := range []int{1, 3} {
			res, err := RunOnEdges(p, n, edges, Baseline())
			if err != nil {
				return false
			}
			if res.Modularity < planted-0.05 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestStarAcrossRanks(t *testing.T) {
	// A star whose hub lives on rank 0 and whose leaves are spread across
	// all other ranks: every leaf must converge into the hub's community,
	// exercising heavy cross-rank community migration toward one owner.
	n := int64(64)
	var edges []graph.RawEdge
	for v := int64(1); v < n; v++ {
		edges = append(edges, graph.RawEdge{U: 0, V: v, W: 1})
	}
	res, err := RunOnEdges(8, n, edges, Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if res.Communities != 1 {
		t.Fatalf("star split into %d communities", res.Communities)
	}
	for v := int64(1); v < n; v++ {
		if res.GlobalComm[v] != res.GlobalComm[0] {
			t.Fatalf("leaf %d not with hub", v)
		}
	}
	// A star has zero modularity under one community (Q = E/m2 - 1).
	if res.Modularity > 1e-9 || res.Modularity < -0.6 {
		t.Fatalf("star modularity %g out of range", res.Modularity)
	}
}

func TestHeavyWeightsAcrossRanks(t *testing.T) {
	// Extreme weight skew: a chain with alternating huge/small weights.
	// Heavy pairs must merge; the distributed result must agree with the
	// serial reference exactly in community structure.
	n := int64(40)
	var edges []graph.RawEdge
	for v := int64(0); v+1 < n; v++ {
		w := 1e-3
		if v%2 == 0 {
			w = 1e6
		}
		edges = append(edges, graph.RawEdge{U: v, V: v + 1, W: w})
	}
	res, err := RunOnEdges(4, n, edges, Baseline())
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v+1 < n; v += 2 {
		if res.GlobalComm[v] != res.GlobalComm[v+1] {
			t.Fatalf("heavy pair (%d,%d) split", v, v+1)
		}
	}
	g := gen.Build(n, edges)
	if math.Abs(seq.Modularity(g, res.GlobalComm)-res.Modularity) > 1e-9 {
		t.Fatal("modularity mismatch on weighted input")
	}
}

func TestDisconnectedComponents(t *testing.T) {
	// Several disconnected cliques spread over ranks: each must form its
	// own community and Q must be positive and exact.
	var edges []graph.RawEdge
	const k, size = 6, 5
	n := int64(k * size)
	for c := int64(0); c < k; c++ {
		base := c * size
		for i := int64(0); i < size; i++ {
			for j := i + 1; j < size; j++ {
				edges = append(edges, graph.RawEdge{U: base + i, V: base + j, W: 1})
			}
		}
	}
	res, err := RunOnEdges(5, n, edges, Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if res.Communities != k {
		t.Fatalf("%d communities for %d disconnected cliques", res.Communities, k)
	}
	// Q for k equal disconnected cliques merged per component: 1 - 1/k.
	want := 1 - 1.0/float64(k)
	if math.Abs(res.Modularity-want) > 1e-9 {
		t.Fatalf("Q = %g, want %g", res.Modularity, want)
	}
}

func TestETCWeightedConsistency(t *testing.T) {
	// ETC on a weighted LFR graph keeps the exactness invariant.
	n, edges, _, err := gen.LFR(gen.DefaultLFR(1500, 0.3, 77))
	if err != nil {
		t.Fatal(err)
	}
	// Scale some weights to exercise float paths.
	for i := range edges {
		if i%3 == 0 {
			edges[i].W = 2.5
		}
	}
	res, err := RunOnEdges(3, n, edges, ETC(0.25))
	if err != nil {
		t.Fatal(err)
	}
	g := gen.Build(n, edges)
	if math.Abs(seq.Modularity(g, res.GlobalComm)-res.Modularity) > 1e-9 {
		t.Fatal("weighted ETC modularity mismatch")
	}
}

func TestMovesTrajectoryDecays(t *testing.T) {
	// The §IV-B observation motivating ET: the per-iteration migration
	// count collapses as a phase progresses.
	n, edges, _ := gen.PlantedPartition(8, 30, 0.4, 0.01, 91)
	res, err := RunOnEdges(2, n, edges, Baseline())
	if err != nil {
		t.Fatal(err)
	}
	ph := res.Phases[0]
	if len(ph.MovesTrajectory) != ph.Iterations {
		t.Fatalf("moves trajectory length %d != iterations %d", len(ph.MovesTrajectory), ph.Iterations)
	}
	if ph.Iterations >= 3 {
		first := ph.MovesTrajectory[0]
		last := ph.MovesTrajectory[len(ph.MovesTrajectory)-1]
		if first == 0 {
			t.Fatal("no moves in the first iteration")
		}
		if last >= first {
			t.Fatalf("migration did not decay: first=%d last=%d (%v)", first, last, ph.MovesTrajectory)
		}
	}
}
