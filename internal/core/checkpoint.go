package core

import (
	"fmt"
	"os"
	"path/filepath"

	"distlouvain/internal/ckpt"
	"distlouvain/internal/mpi"
	"distlouvain/internal/obsv"
)

// ckptStateVersion versions the *contents* of the Louvain sections inside a
// snapshot (the container format has its own version in internal/ckpt).
const ckptStateVersion = 1

// Snapshot section names. A rank snapshot carries the coarse graph in
// routable form (CSR re-expanded to arcs on resume), the cumulative
// original-vertex assignment, and the driver position.
const (
	secMeta     = "meta"     // driver position + shape/consistency fields
	secCSR      = "csr"      // coarse local CSR: index then (to, w) pairs
	secGhosts   = "ghosts"   // sorted ghost vertex IDs (cross-check only)
	secOrigComm = "origcomm" // original-vertex → community, this rank's range
	secHistory  = "history"  // []PhaseStat accumulated so far
)

// writeCheckpoint snapshots the run after the just-completed phase rs.phase
// and commits it world-wide. The protocol tolerates a crash at any point
// without ever shadowing the previous valid checkpoint:
//
//  1. every rank writes its own snapshot atomically under a per-phase name,
//  2. AllOK fences: all ranks agree every snapshot landed (or all abort),
//  3. rank 0 atomically renames the new manifest into place,
//  4. AllOK fences again, then old phase files are pruned best-effort.
//
// A failure before step 3 leaves the previous manifest (and its files)
// intact; a failure after step 3 leaves the new checkpoint complete.
func (rs *runState) writeCheckpoint() error {
	sp := rs.cfg.Tracer.Begin(obsv.KindCheckpoint, "checkpoint")
	defer sp.End()
	c := rs.comm
	dir := rs.cfg.CheckpointDir
	completed := rs.phase + 1 // phases finished so far

	wsp := rs.cfg.Tracer.Begin(obsv.KindStep, "ckpt-write")
	err := func() error {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		secs, err := rs.encodeSections(completed)
		if err != nil {
			return err
		}
		return ckpt.WriteSnapshot(filepath.Join(dir, ckpt.RankFileName(completed, c.Rank())), secs)
	}()
	wsp.End()
	if err = c.AllOK(err); err != nil {
		return err
	}

	if c.Rank() == 0 {
		m := &ckpt.Manifest{
			Version:    ckpt.ManifestVersion,
			WorldSize:  c.Size(),
			ConfigHash: string(rs.cfg.Fingerprint()),
			Phase:      completed,
			OrigN:      rs.origN,
			CoarseN:    rs.cur.GlobalN,
			Files:      make([]string, c.Size()),
		}
		for r := range m.Files {
			m.Files[r] = ckpt.RankFileName(completed, r)
		}
		err = ckpt.WriteManifest(dir, m)
	}
	if err = c.AllOK(err); err != nil {
		return err
	}

	// The manifest is committed; retain the trailing CheckpointKeep phases
	// (older snapshots give a supervisor a fallback if the newest file is
	// later found damaged) and GC everything before them.
	ckpt.PruneRank(dir, c.Rank(), completed, rs.cfg.CheckpointKeep)
	rs.cfg.progress(ProgressEvent{Kind: ProgressCheckpoint, Phase: completed, Modularity: rs.prevQ, Vertices: rs.cur.GlobalN})
	return nil
}

// encodeSections serializes this rank's share of the run state.
func (rs *runState) encodeSections(completed int) ([]ckpt.Section, error) {
	dg := rs.cur
	c := rs.comm

	meta := mpi.AppendInt64(nil, ckptStateVersion)
	meta = mpi.AppendInt64(meta, int64(c.Size()))
	meta = mpi.AppendInt64(meta, int64(c.Rank()))
	meta = mpi.AppendInt64(meta, int64(completed))
	meta = mpi.AppendInt64(meta, int64(rs.res.TotalIterations))
	var ff int64
	if rs.forcedFinal {
		ff = 1
	}
	meta = mpi.AppendInt64(meta, ff)
	meta = mpi.AppendFloat64(meta, rs.prevQ)
	meta = mpi.AppendInt64(meta, rs.origN)
	meta = mpi.AppendInt64(meta, rs.res.LocalBase)
	meta = mpi.AppendInt64(meta, int64(len(rs.res.LocalComm)))
	meta = mpi.AppendInt64(meta, dg.GlobalN)
	meta = mpi.AppendInt64(meta, dg.Base)
	meta = mpi.AppendInt64(meta, dg.LocalN)
	meta = mpi.AppendFloat64(meta, dg.M2)

	csr := make([]byte, 0, 8*(len(dg.Index)+2*len(dg.Edges)))
	csr = mpi.AppendInt64s(csr, dg.Index)
	for _, e := range dg.Edges {
		csr = mpi.AppendInt64(csr, e.To)
		csr = mpi.AppendFloat64(csr, e.W)
	}

	hist, err := encodeHistory(rs.res.Phases)
	if err != nil {
		return nil, err
	}

	return []ckpt.Section{
		{Name: secMeta, Data: meta},
		{Name: secCSR, Data: csr},
		{Name: secGhosts, Data: mpi.EncodeInt64s(dg.Ghosts)},
		{Name: secOrigComm, Data: mpi.EncodeInt64s(rs.res.LocalComm)},
		{Name: secHistory, Data: hist},
	}, nil
}

// ckptMeta is the decoded secMeta section.
type ckptMeta struct {
	worldSize, rank int
	completed       int
	totalIterations int
	forcedFinal     bool
	prevQ           float64
	origN           int64
	origBase        int64
	origLocalN      int64
	coarseN         int64
	coarseBase      int64
	coarseLocalN    int64
	m2              float64
}

func decodeMeta(data []byte) (*ckptMeta, error) {
	d := mpi.NewDecoder(data)
	ver, err := d.Int64()
	if err != nil {
		return nil, err
	}
	if ver != ckptStateVersion {
		return nil, fmt.Errorf("state version %d, this build reads %d", ver, ckptStateVersion)
	}
	var m ckptMeta
	ws, err := d.Int64()
	if err != nil {
		return nil, err
	}
	rk, err := d.Int64()
	if err != nil {
		return nil, err
	}
	cp, err := d.Int64()
	if err != nil {
		return nil, err
	}
	ti, err := d.Int64()
	if err != nil {
		return nil, err
	}
	ff, err := d.Int64()
	if err != nil {
		return nil, err
	}
	m.prevQ, err = d.Float64()
	if err != nil {
		return nil, err
	}
	m.origN, err = d.Int64()
	if err != nil {
		return nil, err
	}
	m.origBase, err = d.Int64()
	if err != nil {
		return nil, err
	}
	m.origLocalN, err = d.Int64()
	if err != nil {
		return nil, err
	}
	m.coarseN, err = d.Int64()
	if err != nil {
		return nil, err
	}
	m.coarseBase, err = d.Int64()
	if err != nil {
		return nil, err
	}
	m.coarseLocalN, err = d.Int64()
	if err != nil {
		return nil, err
	}
	m.m2, err = d.Float64()
	if err != nil {
		return nil, err
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%d trailing bytes", d.Remaining())
	}
	m.worldSize, m.rank = int(ws), int(rk)
	m.completed, m.totalIterations = int(cp), int(ti)
	m.forcedFinal = ff != 0
	if m.worldSize <= 0 || m.rank < 0 || m.rank >= m.worldSize {
		return nil, fmt.Errorf("rank %d of world %d out of range", m.rank, m.worldSize)
	}
	if m.completed <= 0 || m.origN <= 0 || m.coarseN <= 0 ||
		m.origLocalN < 0 || m.coarseLocalN < 0 || m.origBase < 0 || m.coarseBase < 0 {
		return nil, fmt.Errorf("nonsensical shape (completed=%d origN=%d coarseN=%d)", m.completed, m.origN, m.coarseN)
	}
	return &m, nil
}

// exit-reason wire codes for the history section.
var exitCodes = map[ExitReason]int64{"": 0, ExitTau: 1, ExitETC: 2, ExitMaxIter: 3}
var exitNames = map[int64]ExitReason{0: "", 1: ExitTau, 2: ExitETC, 3: ExitMaxIter}

func encodeHistory(phases []PhaseStat) ([]byte, error) {
	buf := mpi.AppendInt64(nil, int64(len(phases)))
	for _, ps := range phases {
		code, ok := exitCodes[ps.Exit]
		if !ok {
			return nil, fmt.Errorf("unknown exit reason %q", ps.Exit)
		}
		buf = mpi.AppendInt64(buf, ps.Vertices)
		buf = mpi.AppendInt64(buf, int64(ps.Iterations))
		buf = mpi.AppendFloat64(buf, ps.Modularity)
		buf = mpi.AppendFloat64(buf, ps.Tau)
		buf = mpi.AppendInt64(buf, int64(len(ps.QTrajectory)))
		buf = mpi.AppendFloat64s(buf, ps.QTrajectory)
		buf = mpi.AppendInt64(buf, int64(len(ps.MovesTrajectory)))
		buf = mpi.AppendInt64s(buf, ps.MovesTrajectory)
		buf = mpi.AppendFloat64(buf, ps.InactiveFrac)
		buf = mpi.AppendInt64(buf, code)
		buf = mpi.AppendInt64(buf, int64(ps.Colors))
	}
	return buf, nil
}

func decodeHistory(data []byte) ([]PhaseStat, error) {
	d := mpi.NewDecoder(data)
	n, err := d.Int64()
	if err != nil {
		return nil, err
	}
	if n < 0 || n > int64(d.Remaining()) {
		return nil, fmt.Errorf("implausible phase count %d", n)
	}
	out := make([]PhaseStat, n)
	for i := range out {
		ps := &out[i]
		if ps.Vertices, err = d.Int64(); err != nil {
			return nil, err
		}
		it, err := d.Int64()
		if err != nil {
			return nil, err
		}
		ps.Iterations = int(it)
		if ps.Modularity, err = d.Float64(); err != nil {
			return nil, err
		}
		if ps.Tau, err = d.Float64(); err != nil {
			return nil, err
		}
		qn, err := d.Int64()
		if err != nil {
			return nil, err
		}
		if qn < 0 || qn*8 > int64(d.Remaining()) {
			return nil, fmt.Errorf("implausible trajectory length %d", qn)
		}
		if ps.QTrajectory, err = d.Float64s(int(qn)); err != nil {
			return nil, err
		}
		mn, err := d.Int64()
		if err != nil {
			return nil, err
		}
		if mn < 0 || mn*8 > int64(d.Remaining()) {
			return nil, fmt.Errorf("implausible trajectory length %d", mn)
		}
		if ps.MovesTrajectory, err = d.Int64s(int(mn)); err != nil {
			return nil, err
		}
		if ps.InactiveFrac, err = d.Float64(); err != nil {
			return nil, err
		}
		code, err := d.Int64()
		if err != nil {
			return nil, err
		}
		name, ok := exitNames[code]
		if !ok {
			return nil, fmt.Errorf("unknown exit code %d", code)
		}
		ps.Exit = name
		co, err := d.Int64()
		if err != nil {
			return nil, err
		}
		ps.Colors = int(co)
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%d trailing bytes", d.Remaining())
	}
	return out, nil
}
