package core

import (
	"fmt"
	"testing"

	"distlouvain/internal/dgraph"
	"distlouvain/internal/gen"
	"distlouvain/internal/gio"
	"distlouvain/internal/graph"
	"distlouvain/internal/mpi"
)

// bipartiteBoundary builds a 2-rank-friendly graph where every vertex of the
// low half is adjacent to vertices of the high half: with an even split each
// rank holds the whole opposite half as ghosts, giving the ghost-refresh
// switch a push list wide enough that a single changed entry sits well under
// any reasonable sparse threshold.
func bipartiteBoundary(half int64) (int64, []graph.RawEdge) {
	n := 2 * half
	var edges []graph.RawEdge
	for i := int64(0); i < half; i++ {
		edges = append(edges, graph.RawEdge{U: i, V: half + i, W: 1})
		edges = append(edges, graph.RawEdge{U: i, V: half + (i+1)%half, W: 1})
	}
	return n, edges
}

// TestGhostDeltaSwitchBothDirections drives the GhostDelta dense/sparse
// switch across the threshold in both directions within one phase state and
// checks the reconstructed ghost table is bit-identical to an always-dense
// state at every step:
//
//	round 1: every boundary vertex changes  -> dense snapshot frame
//	round 2: exactly one vertex changes     -> sparse delta frame
//	round 3: every boundary vertex changes  -> dense again
func TestGhostDeltaSwitchBothDirections(t *testing.T) {
	for _, wire := range []int{mpi.WireV1, mpi.WireV2} {
		t.Run(fmt.Sprintf("wire%d", wire), func(t *testing.T) {
			const half = 16
			n, edges := bipartiteBoundary(half)
			err := mpi.Run(2, func(c *mpi.Comm) error {
				lo, hi := gio.SegmentRange(int64(len(edges)), c.Rank(), 2)
				dg, err := dgraph.Build(c, n, edges[lo:hi], nil)
				if err != nil {
					return err
				}
				mkState := func(refresh int) (*phaseState, error) {
					cfg := Baseline()
					cfg.WireFormat = wire
					cfg.GhostRefresh = refresh
					cfg.fill()
					return newPhaseState(dg, &cfg, 0, &StepTimes{})
				}
				// stD is the state under test; stX is the always-dense oracle.
				stD, err := mkState(GhostDelta)
				if err != nil {
					return err
				}
				stX, err := mkState(GhostDense)
				if err != nil {
					return err
				}

				mutate := func(f func(comm []int64, base int64)) {
					f(stD.comm, dg.Base)
					f(stX.comm, dg.Base)
				}
				exchangeAndCompare := func(round string) error {
					if err := stD.exchangeGhostComm(); err != nil {
						return fmt.Errorf("%s delta exchange: %w", round, err)
					}
					if err := stX.exchangeGhostComm(); err != nil {
						return fmt.Errorf("%s dense exchange: %w", round, err)
					}
					for i := range stD.ghostComm {
						if stD.ghostComm[i] != stX.ghostComm[i] {
							return fmt.Errorf("%s: ghost %d diverged: delta %d vs dense %d",
								round, i, stD.ghostComm[i], stX.ghostComm[i])
						}
					}
					return nil
				}

				// Round 1: every local vertex moves -> changed fraction 1.0,
				// above any threshold, so the frame must fall back to dense.
				mutate(func(comm []int64, base int64) {
					for lv := range comm {
						comm[lv] = base + int64(lv) + n
					}
				})
				if err := exchangeAndCompare("round 1"); err != nil {
					return err
				}
				if stD.ghostDenseFrames != 1 || stD.ghostSparseFrames != 0 {
					return fmt.Errorf("round 1: frames dense=%d sparse=%d, want 1/0",
						stD.ghostDenseFrames, stD.ghostSparseFrames)
				}

				// Round 2: one vertex changes -> 1/16 of the push list, well
				// under the default 0.25 threshold -> sparse frame.
				mutate(func(comm []int64, base int64) {
					comm[3] = base + 3 + 2*n
				})
				if err := exchangeAndCompare("round 2"); err != nil {
					return err
				}
				if stD.ghostSparseFrames != 1 {
					return fmt.Errorf("round 2: frames dense=%d sparse=%d, want a sparse frame",
						stD.ghostDenseFrames, stD.ghostSparseFrames)
				}

				// Round 3: everything changes again -> back across the
				// threshold to dense (the switch is per exchange, not sticky).
				mutate(func(comm []int64, base int64) {
					for lv := range comm {
						comm[lv] = base + int64(lv) + 3*n
					}
				})
				if err := exchangeAndCompare("round 3"); err != nil {
					return err
				}
				if stD.ghostDenseFrames != 2 || stD.ghostSparseFrames != 1 {
					return fmt.Errorf("round 3: frames dense=%d sparse=%d, want 2/1",
						stD.ghostDenseFrames, stD.ghostSparseFrames)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestGhostRefreshModesBitIdentical: the full algorithm must produce the
// bit-identical trajectory and assignment whichever ghost-refresh mode and
// wire format carries the updates — the diet changes bytes, never values.
func TestGhostRefreshModesBitIdentical(t *testing.T) {
	n, edges, _ := gen.PlantedPartition(6, 22, 0.5, 0.02, 77)
	type variant struct {
		name string
		cfg  Config
	}
	mk := func(name string, wire, refresh int, legacy bool) variant {
		cfg := Baseline()
		cfg.WireFormat = wire
		cfg.GhostRefresh = refresh
		cfg.SendChangedOnly = legacy
		return variant{name: name, cfg: cfg}
	}
	variants := []variant{
		mk("delta-v2", 0, GhostAuto, false), // the run default
		mk("dense-v2", 0, GhostDense, false),
		mk("delta-v1", mpi.WireV1, GhostDelta, false),
		mk("dense-v1", mpi.WireV1, GhostDense, false),
		mk("legacy-v1", mpi.WireV1, GhostAuto, true),
		mk("legacy-v2", 0, GhostAuto, true),
	}
	var ref *Result
	for _, v := range variants {
		res, err := RunOnEdges(3, n, edges, v.cfg)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.Modularity != ref.Modularity || res.Communities != ref.Communities {
			t.Fatalf("%s diverged: Q %v vs %v, comms %d vs %d",
				v.name, res.Modularity, ref.Modularity, res.Communities, ref.Communities)
		}
		if len(res.Phases) != len(ref.Phases) {
			t.Fatalf("%s: %d phases vs %d", v.name, len(res.Phases), len(ref.Phases))
		}
		for p := range res.Phases {
			got, want := res.Phases[p].QTrajectory, ref.Phases[p].QTrajectory
			if len(got) != len(want) {
				t.Fatalf("%s phase %d: %d iterations vs %d", v.name, p, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s phase %d iter %d: Q %v vs %v (not bit-identical)",
						v.name, p, i, got[i], want[i])
				}
			}
		}
		for i := range ref.GlobalComm {
			if res.GlobalComm[i] != ref.GlobalComm[i] {
				t.Fatalf("%s: assignment differs at vertex %d", v.name, i)
			}
		}
	}
}
