package core

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"distlouvain/internal/ckpt"
	"distlouvain/internal/gen"
)

// TestInterruptCheckpointsAndResumes: raising the Interrupted flag mid-run
// makes every rank stop at the next phase boundary with a forced committed
// checkpoint and ErrInterrupted; resuming retraces the undisturbed run
// bit-for-bit.
func TestInterruptCheckpointsAndResumes(t *testing.T) {
	n, edges := gen.ErdosRenyi(300, 1500, 5)
	want, err := RunOnEdges(3, n, edges, Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Phases) < 2 {
		t.Fatalf("run converged in %d phase(s); nothing left to resume", len(want.Phases))
	}

	dir := t.TempDir()
	var stop atomic.Bool
	cfg := Baseline()
	cfg.CheckpointDir = dir
	cfg.Interrupted = stop.Load
	cfg.Progress = func(ev ProgressEvent) {
		// Simulates SIGTERM arriving while phase 0 iterates.
		if ev.Kind == ProgressIteration && ev.Phase == 0 {
			stop.Store(true)
		}
	}
	_, err = RunOnEdges(3, n, edges, cfg)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}

	man, err := ckpt.ReadManifest(dir)
	if err != nil {
		t.Fatalf("interrupt left no committed checkpoint: %v", err)
	}
	if man.Phase < 1 {
		t.Fatalf("manifest phase = %d, want >= 1", man.Phase)
	}

	got := resumeInproc(t, 3, dir, Baseline())
	sameOutcome(t, "resume after interrupt", got, want)
}

// TestInterruptWithoutCheckpointDir: with no checkpoint directory the run
// still stops collectively at the phase boundary, but says plainly that
// nothing was saved.
func TestInterruptWithoutCheckpointDir(t *testing.T) {
	n, edges := gen.ErdosRenyi(200, 900, 3)
	cfg := Baseline()
	cfg.Interrupted = func() bool { return true }
	_, err := RunOnEdges(2, n, edges, cfg)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if !strings.Contains(err.Error(), "no checkpoint directory") {
		t.Fatalf("err %q does not mention the missing checkpoint directory", err)
	}
}

// TestProgressEventsCoverRunMilestones: a run reports phase starts,
// iterations, checkpoint commits and completion through Config.Progress,
// with modularity echoing the phase trajectory.
func TestProgressEventsCoverRunMilestones(t *testing.T) {
	n, edges := gen.ErdosRenyi(300, 1500, 5)
	dir := t.TempDir()
	cfg := Baseline()
	cfg.CheckpointDir = dir

	var phaseStarts, iters, ckpts, dones atomic.Int64
	cfg.Progress = func(ev ProgressEvent) {
		switch ev.Kind {
		case ProgressPhaseStart:
			phaseStarts.Add(1)
		case ProgressIteration:
			iters.Add(1)
			if ev.Iteration <= 0 {
				t.Errorf("iteration event without a counter: %+v", ev)
			}
		case ProgressCheckpoint:
			ckpts.Add(1)
			if ev.Phase < 1 {
				t.Errorf("checkpoint event for phase %d", ev.Phase)
			}
		case ProgressDone:
			dones.Add(1)
		}
	}
	res, err := RunOnEdges(3, n, edges, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := int64(3)
	if got := phaseStarts.Load(); got != p*int64(len(res.Phases)) {
		t.Errorf("phase-start events = %d, want %d", got, p*int64(len(res.Phases)))
	}
	if got := iters.Load(); got != p*int64(res.TotalIterations) {
		t.Errorf("iteration events = %d, want %d", got, p*int64(res.TotalIterations))
	}
	if ckpts.Load() == 0 {
		t.Error("no checkpoint events despite a checkpoint directory")
	}
	if got := dones.Load(); got != p {
		t.Errorf("done events = %d, want one per rank (%d)", got, p)
	}
}
