package core

import (
	"fmt"
	"math"
	"path/filepath"

	"distlouvain/internal/ckpt"
	"distlouvain/internal/dgraph"
	"distlouvain/internal/gio"
	"distlouvain/internal/mpi"
	"distlouvain/internal/obsv"
	"distlouvain/internal/partition"
)

// Resume continues a checkpointed run from the latest committed phase
// boundary. Every rank of c calls Resume with the same directory and a
// Config whose trajectory hash (Config.Hash) matches the one the checkpoint
// was taken under; performance knobs (Threads, SendChangedOnly, …) may
// differ freely.
//
// The world size may differ from the checkpointing run's ("elastic"
// resume): snapshot files are split across the new ranks, the coarse graph
// is rebuilt by replaying each file's CSR through the arc shuffle, and the
// original-vertex assignment is redistributed to the new ownership ranges.
// Because every phase-boundary quantity is an exact (order-independent for
// integer weights) global value and the per-phase randomness hashes global
// vertex IDs, the resumed run retraces the uninterrupted run's trajectory
// regardless of the new rank count.
func Resume(c *mpi.Comm, dir string, cfg Config) (*Result, error) {
	cfg.fill()
	p := c.Size()
	rank := c.Rank()

	// The load span closes just before control enters the shared run loop;
	// an error while loading leaves it open (visible via Tracer.Path).
	lsp := cfg.Tracer.Begin(obsv.KindCheckpoint, "resume-load")

	// Rank 0 reads and validates the manifest; a status byte leads the
	// broadcast so a root-side failure aborts every rank instead of
	// deadlocking the world.
	var payload []byte
	var rootErr error
	if rank == 0 {
		var man *ckpt.Manifest
		man, rootErr = ckpt.ReadManifest(dir)
		if rootErr == nil && man.ConfigHash != string(cfg.Fingerprint()) {
			rootErr = fmt.Errorf("ckpt: config fingerprint %s does not match checkpoint's %s: the snapshot encodes a trajectory this configuration would not produce", cfg.Fingerprint(), man.ConfigHash)
		}
		if rootErr == nil {
			for r, f := range man.Files {
				if f != ckpt.RankFileName(man.Phase, r) {
					rootErr = fmt.Errorf("ckpt: manifest file %q is not the canonical name for phase %d rank %d", f, man.Phase, r)
					break
				}
			}
		}
		if rootErr == nil {
			payload = []byte{0}
			payload = mpi.AppendInt64(payload, int64(man.WorldSize))
			payload = mpi.AppendInt64(payload, int64(man.Phase))
			payload = mpi.AppendInt64(payload, man.OrigN)
			payload = mpi.AppendInt64(payload, man.CoarseN)
		} else {
			payload = []byte{1}
		}
	}
	got, err := c.Bcast(0, payload)
	if err != nil {
		return nil, err
	}
	if len(got) < 1 || got[0] != 0 {
		if rootErr != nil {
			return nil, rootErr
		}
		return nil, fmt.Errorf("ckpt: rank 0 failed to load the manifest in %s", dir)
	}
	d := mpi.NewDecoder(got[1:])
	ws, _ := d.Int64()
	ph, _ := d.Int64()
	origN, _ := d.Int64()
	coarseN, err := d.Int64()
	if err != nil {
		return nil, err
	}
	oldWorld, completed := int(ws), int(ph)

	// Each new rank loads a contiguous run of the old ranks' files. The
	// per-file AllOK fence turns any rank's decode failure into a
	// world-wide abort, so the fence schedule must be identical everywhere:
	// SegmentRange is a pure function, so every rank derives the maximum
	// load count locally and file-less iterations fence with a nil error.
	lo, hi := gio.SegmentRange(int64(oldWorld), rank, p)
	maxLoads := int64(0)
	for r := 0; r < p; r++ {
		rlo, rhi := gio.SegmentRange(int64(oldWorld), r, p)
		maxLoads = max(maxLoads, rhi-rlo)
	}
	var arcs []dgraph.Arc
	var segs []origSeg
	var meta0 *ckptMeta // first file's meta (driver position is global state)
	var savedGhosts []int64
	for i := int64(0); i < maxLoads; i++ {
		old := lo + i
		if old >= hi {
			if err := c.AllOK(nil); err != nil {
				return nil, err
			}
			continue
		}
		path := filepath.Join(dir, ckpt.RankFileName(completed, int(old)))
		m, fileArcs, seg, ghosts, err := loadRankSnapshot(path, int(old), oldWorld, completed, origN, coarseN)
		if err == nil && meta0 != nil && m.m2 != meta0.m2 {
			err = fmt.Errorf("ckpt: %s: M2 %g disagrees with sibling snapshot's %g", path, m.m2, meta0.m2)
		}
		if err2 := c.AllOK(err); err2 != nil {
			return nil, err2
		}
		if meta0 == nil {
			meta0 = m
		}
		arcs = append(arcs, fileArcs...)
		segs = append(segs, seg)
		savedGhosts = ghosts
	}

	// Driver position and history are global state; take rank 0's copy so
	// file-less ranks get them too. Rank 0 always holds old rank 0's file.
	var drv []byte
	if rank == 0 {
		var ff int64
		if meta0.forcedFinal {
			ff = 1
		}
		drv = mpi.AppendFloat64(nil, meta0.prevQ)
		drv = mpi.AppendInt64(drv, ff)
		drv = mpi.AppendInt64(drv, int64(meta0.totalIterations))
		hist, err := readHistorySection(filepath.Join(dir, ckpt.RankFileName(completed, 0)))
		if err = c.AllOK(err); err != nil {
			return nil, err
		}
		drv = append(drv, hist...)
	} else if err := c.AllOK(nil); err != nil {
		return nil, err
	}
	drv, err = c.Bcast(0, drv)
	if err != nil {
		return nil, err
	}
	dd := mpi.NewDecoder(drv)
	prevQ, _ := dd.Float64()
	ff, _ := dd.Int64()
	ti, err := dd.Int64()
	if err != nil {
		return nil, err
	}
	history, err := decodeHistory(drv[24:])
	if err != nil {
		return nil, fmt.Errorf("ckpt: history section: %w", err)
	}

	// Replay the coarse graph through the arc shuffle onto the new world.
	// The rebuilt partition is exactly what a fresh p-rank run's rebuild
	// would have produced at this phase boundary.
	part := partition.ByVertexCount(coarseN, p)
	ndg, err := dgraph.BuildFromArcs(c, coarseN, part, arcs)
	if err != nil {
		return nil, fmt.Errorf("ckpt: rebuilding coarse graph: %w", err)
	}
	var savedM2 float64
	if meta0 != nil {
		savedM2 = meta0.m2
	}
	savedM2, err = c.AllreduceFloat64(savedM2, mpi.OpMax)
	if err != nil {
		return nil, err
	}
	if diff := math.Abs(ndg.M2 - savedM2); diff > 1e-9*math.Max(1, savedM2) {
		return nil, fmt.Errorf("ckpt: rebuilt graph weight 2m=%g disagrees with snapshot's %g", ndg.M2, savedM2)
	}
	if p == oldWorld && savedGhosts != nil {
		// Same world: the rebuilt ghost table must reproduce the snapshot's.
		err = nil
		if len(ndg.Ghosts) != len(savedGhosts) {
			err = fmt.Errorf("ckpt: rank %d rebuilt %d ghosts, snapshot had %d", rank, len(ndg.Ghosts), len(savedGhosts))
		} else {
			for i, g := range ndg.Ghosts {
				if g != savedGhosts[i] {
					err = fmt.Errorf("ckpt: rank %d ghost %d is %d, snapshot had %d", rank, i, g, savedGhosts[i])
					break
				}
			}
		}
		if err = c.AllOK(err); err != nil {
			return nil, err
		}
	}

	// Redistribute the cumulative original-vertex assignment to the new
	// ownership ranges.
	newBase, localComm, err := redistributeOrigComm(c, origN, segs)
	if err != nil {
		return nil, err
	}

	res := &Result{
		LocalBase:       newBase,
		LocalComm:       localComm,
		Communities:     coarseN,
		Phases:          history,
		TotalIterations: int(ti),
	}
	rs := &runState{
		comm:        c,
		cfg:         &cfg,
		cur:         ndg,
		origN:       origN,
		res:         res,
		phase:       completed,
		prevQ:       prevQ,
		forcedFinal: ff != 0,
		steps:       &StepTimes{},
	}
	lsp.End()
	return rs.runLoop()
}

// origSeg is one contiguous run of the original-vertex assignment recovered
// from a snapshot file.
type origSeg struct {
	base int64
	vals []int64
}

// loadRankSnapshot reads and fully validates one old rank's snapshot,
// returning its decoded meta, its coarse adjacency re-expanded to routable
// arcs, its original-assignment segment and its saved ghost table.
func loadRankSnapshot(path string, oldRank, oldWorld, completed int, origN, coarseN int64) (*ckptMeta, []dgraph.Arc, origSeg, []int64, error) {
	fail := func(err error) (*ckptMeta, []dgraph.Arc, origSeg, []int64, error) {
		return nil, nil, origSeg{}, nil, err
	}
	snap, err := ckpt.ReadSnapshot(path)
	if err != nil {
		return fail(err)
	}
	sec := func(name string) ([]byte, error) { return snap.Section(name) }

	mb, err := sec(secMeta)
	if err != nil {
		return fail(err)
	}
	m, err := decodeMeta(mb)
	if err != nil {
		return fail(fmt.Errorf("ckpt: %s: section %q: %w", path, secMeta, err))
	}
	switch {
	case m.rank != oldRank || m.worldSize != oldWorld:
		return fail(fmt.Errorf("ckpt: %s: holds rank %d/%d, manifest expects rank %d/%d", path, m.rank, m.worldSize, oldRank, oldWorld))
	case m.completed != completed:
		return fail(fmt.Errorf("ckpt: %s: holds phase %d, manifest expects %d", path, m.completed, completed))
	case m.origN != origN || m.coarseN != coarseN:
		return fail(fmt.Errorf("ckpt: %s: graph shape (%d→%d) disagrees with manifest (%d→%d)", path, m.origN, m.coarseN, origN, coarseN))
	case m.coarseBase+m.coarseLocalN > coarseN || m.origBase+m.origLocalN > origN:
		return fail(fmt.Errorf("ckpt: %s: owned range exceeds graph size", path))
	}

	cb, err := sec(secCSR)
	if err != nil {
		return fail(err)
	}
	d := mpi.NewDecoder(cb)
	index, err := d.Int64s(int(m.coarseLocalN) + 1)
	if err != nil {
		return fail(fmt.Errorf("ckpt: %s: section %q: %w", path, secCSR, err))
	}
	nArcs := index[m.coarseLocalN]
	if index[0] != 0 || nArcs < 0 || d.Remaining() != int(16*nArcs) {
		return fail(fmt.Errorf("ckpt: %s: section %q: index/payload mismatch (%d arcs, %d bytes left)", path, secCSR, nArcs, d.Remaining()))
	}
	arcs := make([]dgraph.Arc, 0, nArcs)
	for lv := int64(0); lv < m.coarseLocalN; lv++ {
		if index[lv+1] < index[lv] {
			return fail(fmt.Errorf("ckpt: %s: section %q: index not monotone at %d", path, secCSR, lv))
		}
		from := m.coarseBase + lv
		for k := index[lv]; k < index[lv+1]; k++ {
			to, _ := d.Int64()
			w, err := d.Float64()
			if err != nil {
				return fail(fmt.Errorf("ckpt: %s: section %q: %w", path, secCSR, err))
			}
			if to < 0 || to >= coarseN {
				return fail(fmt.Errorf("ckpt: %s: section %q: arc target %d out of range [0,%d)", path, secCSR, to, coarseN))
			}
			arcs = append(arcs, dgraph.Arc{From: from, To: to, W: w})
		}
	}

	ob, err := sec(secOrigComm)
	if err != nil {
		return fail(err)
	}
	vals, err := mpi.DecodeInt64s(ob)
	if err != nil {
		return fail(fmt.Errorf("ckpt: %s: section %q: %w", path, secOrigComm, err))
	}
	if int64(len(vals)) != m.origLocalN {
		return fail(fmt.Errorf("ckpt: %s: section %q: %d labels, meta says %d", path, secOrigComm, len(vals), m.origLocalN))
	}
	for i, v := range vals {
		if v < 0 || v >= coarseN {
			return fail(fmt.Errorf("ckpt: %s: section %q: label %d of vertex %d out of range [0,%d)", path, secOrigComm, v, m.origBase+int64(i), coarseN))
		}
	}

	gb, err := sec(secGhosts)
	if err != nil {
		return fail(err)
	}
	ghosts, err := mpi.DecodeInt64s(gb)
	if err != nil {
		return fail(fmt.Errorf("ckpt: %s: section %q: %w", path, secGhosts, err))
	}

	return m, arcs, origSeg{base: m.origBase, vals: vals}, ghosts, nil
}

// readHistorySection pulls just the raw history bytes out of a snapshot.
func readHistorySection(path string) ([]byte, error) {
	snap, err := ckpt.ReadSnapshot(path)
	if err != nil {
		return nil, err
	}
	return snap.Section(secHistory)
}

// redistributeOrigComm routes contiguous assignment segments (in old-world
// ownership ranges) to the new even vertex partition via one all-to-all.
// Every new rank verifies its range is covered exactly once.
func redistributeOrigComm(c *mpi.Comm, origN int64, segs []origSeg) (int64, []int64, error) {
	p := c.Size()
	part := partition.ByVertexCount(origN, p)
	send := make([][]byte, p)
	for _, s := range segs {
		v := s.base
		end := s.base + int64(len(s.vals))
		for v < end {
			q := part.Owner(v)
			_, qhi := part.Range(q)
			stop := min(end, qhi)
			chunk := s.vals[v-s.base : stop-s.base]
			send[q] = mpi.AppendInt64(send[q], v)
			send[q] = mpi.AppendInt64(send[q], int64(len(chunk)))
			send[q] = mpi.AppendInt64s(send[q], chunk)
			v = stop
		}
	}
	recv, err := c.Alltoall(send)
	if err != nil {
		return 0, nil, err
	}
	base, hiB := part.Range(c.Rank())
	out := make([]int64, hiB-base)
	filled := make([]bool, len(out))
	nFilled := 0
	err = func() error {
		for _, buf := range recv {
			d := mpi.NewDecoder(buf)
			for d.Remaining() > 0 {
				start, err := d.Int64()
				if err != nil {
					return err
				}
				cnt, err := d.Int64()
				if err != nil {
					return err
				}
				if start < base || cnt < 0 || start+cnt > base+int64(len(out)) {
					return fmt.Errorf("ckpt: assignment segment [%d,%d) outside owned range [%d,%d)", start, start+cnt, base, base+int64(len(out)))
				}
				vals, err := d.Int64s(int(cnt))
				if err != nil {
					return err
				}
				for i, v := range vals {
					at := start - base + int64(i)
					if filled[at] {
						return fmt.Errorf("ckpt: original vertex %d assigned twice during redistribution", start+int64(i))
					}
					filled[at] = true
					out[at] = v
					nFilled++
				}
			}
		}
		if nFilled != len(out) {
			return fmt.Errorf("ckpt: %d of %d owned original vertices unassigned after redistribution", len(out)-nFilled, len(out))
		}
		return nil
	}()
	if err = c.AllOK(err); err != nil {
		return 0, nil, err
	}
	return base, out, nil
}
