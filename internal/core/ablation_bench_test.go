package core

import (
	"testing"

	"distlouvain/internal/dgraph"
	"distlouvain/internal/gen"
	"distlouvain/internal/gio"
	"distlouvain/internal/graph"
	"distlouvain/internal/mpi"
	"distlouvain/internal/partition"
)

// Ablation: full ghost push vs changed-only push (DESIGN.md §6 — the
// §IV-B "further sophistication"). Results are bit-identical; the
// difference is traffic and time.
func BenchmarkAblation_GhostProtocol(b *testing.B) {
	n, edges, _, err := gen.LFR(gen.DefaultLFR(4000, 0.3, 9))
	if err != nil {
		b.Fatal(err)
	}
	for _, pruned := range []bool{false, true} {
		name := "full-push"
		if pruned {
			name = "changed-only"
		}
		b.Run(name, func(b *testing.B) {
			var mb float64
			for i := 0; i < b.N; i++ {
				cfg := Baseline()
				cfg.SendChangedOnly = pruned
				res, err := RunOnEdges(4, n, edges, cfg)
				if err != nil {
					b.Fatal(err)
				}
				mb = float64(res.Traffic.TotalBytes()) / 1e6
			}
			b.ReportMetric(mb, "MB-sent")
		})
	}
}

// Ablation: coarsening redistribution under vertex-balanced vs
// edge-balanced input partitions (DESIGN.md §6). Edge balancing costs a
// global degree census up front but evens the sweep work on skewed inputs.
func BenchmarkAblation_Rebalance(b *testing.B) {
	n, edges, err := gen.RMAT(11, 12, 0.57, 0.19, 0.19, 0.05, 31)
	if err != nil {
		b.Fatal(err)
	}
	g := graph.FromRawEdges(n, edges)
	degrees := make([]int64, n)
	for v := int64(0); v < n; v++ {
		degrees[v] = g.Degree(v)
	}
	const p = 4
	parts := map[string]*partition.Partition{
		"vertex-balanced": partition.ByVertexCount(n, p),
		"edge-balanced":   partition.ByEdgeCount(degrees, p),
	}
	for name, part := range parts {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				err := mpi.Run(p, func(c *mpi.Comm) error {
					lo, hi := gio.SegmentRange(int64(len(edges)), c.Rank(), p)
					dg, err := dgraph.Build(c, n, edges[lo:hi], part)
					if err != nil {
						return err
					}
					_, err = Run(dg, Baseline())
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDistributedVariants tracks each variant end to end on a common
// input.
func BenchmarkDistributedVariants(b *testing.B) {
	n, edges, _, err := gen.LFR(gen.DefaultLFR(4000, 0.3, 9))
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []Config{Baseline(), ThresholdCycling(), ET(0.25), ETC(0.25)} {
		b.Run(cfg.VariantName(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunOnEdges(2, n, edges, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRebuild isolates the distributed coarsening step.
func BenchmarkRebuild(b *testing.B) {
	n, edges, _, err := gen.LFR(gen.DefaultLFR(4000, 0.3, 9))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := mpi.Run(2, func(c *mpi.Comm) error {
			lo, hi := gio.SegmentRange(int64(len(edges)), c.Rank(), 2)
			dg, err := dgraph.Build(c, n, edges[lo:hi], nil)
			if err != nil {
				return err
			}
			cfg := Baseline()
			cfg.fill()
			st, err := newPhaseState(dg, &cfg, 0, &StepTimes{})
			if err != nil {
				return err
			}
			if _, err := st.iterate(cfg.Tau); err != nil {
				return err
			}
			_, _, err = st.rebuild(nil)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: dense all-to-all vs sparse neighborhood-collective ghost
// exchange (DESIGN.md §6 / the paper's §VI MPI-3 plan). Identical results;
// the metric of interest is messages per run.
func BenchmarkAblation_NeighborCollectives(b *testing.B) {
	n, edges := gen.BandedMesh(3000, 3)
	const p = 8
	for _, neighbor := range []bool{false, true} {
		name := "dense-alltoall"
		if neighbor {
			name = "neighborhood"
		}
		b.Run(name, func(b *testing.B) {
			var msgs int64
			for i := 0; i < b.N; i++ {
				cfg := Baseline()
				cfg.UseNeighborCollectives = neighbor
				res, err := RunOnEdges(p, n, edges, cfg)
				if err != nil {
					b.Fatal(err)
				}
				msgs = res.Traffic.CollMsgs
			}
			b.ReportMetric(float64(msgs), "coll-msgs")
		})
	}
}

// BenchmarkDistColoring isolates the distributed Jones–Plassmann coloring.
func BenchmarkDistColoring(b *testing.B) {
	n, edges := gen.Grid2D(60, 60, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := mpi.Run(4, func(c *mpi.Comm) error {
			lo, hi := gio.SegmentRange(int64(len(edges)), c.Rank(), 4)
			dg, err := dgraph.Build(c, n, edges[lo:hi], nil)
			if err != nil {
				return err
			}
			_, _, err = DistColoring(dg, 7)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
