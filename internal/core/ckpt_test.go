package core

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"distlouvain/internal/ckpt"
	"distlouvain/internal/gen"
	"distlouvain/internal/graph"
	"distlouvain/internal/mpi"
)

// resumeInproc resumes a checkpoint directory on p in-process ranks and
// returns rank 0's Result (GatherOutput forced on).
func resumeInproc(t *testing.T, p int, dir string, cfg Config) *Result {
	t.Helper()
	cfg.GatherOutput = true
	var root *Result
	err := mpi.Run(p, func(c *mpi.Comm) error {
		res, err := Resume(c, dir, cfg)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			root = res
		}
		return nil
	})
	if err != nil {
		t.Fatalf("resume (p=%d): %v", p, err)
	}
	return root
}

// sameOutcome asserts a resumed run reproduced the uninterrupted run
// bit-for-bit: identical assignment, identical modularity bits, identical
// community count.
func sameOutcome(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if !slices.Equal(got.GlobalComm, want.GlobalComm) {
		t.Fatalf("%s: assignment differs from uninterrupted run", label)
	}
	if math.Float64bits(got.Modularity) != math.Float64bits(want.Modularity) {
		t.Fatalf("%s: modularity %v != uninterrupted %v", label, got.Modularity, want.Modularity)
	}
	if got.Communities != want.Communities {
		t.Fatalf("%s: %d communities, uninterrupted found %d", label, got.Communities, want.Communities)
	}
	if len(got.Phases) != len(want.Phases) {
		t.Fatalf("%s: %d phases, uninterrupted ran %d", label, len(got.Phases), len(want.Phases))
	}
	if got.TotalIterations != want.TotalIterations {
		t.Fatalf("%s: %d iterations, uninterrupted ran %d", label, got.TotalIterations, want.TotalIterations)
	}
}

// TestCheckpointResumeMatchesUninterrupted is the no-failure equivalence
// check: a checkpointing run leaves a committed snapshot, and resuming it —
// at the original AND at different rank counts — retraces the uninterrupted
// run's trajectory exactly.
func TestCheckpointResumeMatchesUninterrupted(t *testing.T) {
	n, edges := gen.ErdosRenyi(300, 1500, 5)
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"baseline", Baseline()},
		{"et+tc", ETWithTC(0.25)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want, err := RunOnEdges(3, n, edges, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(want.Phases) < 2 {
				t.Fatalf("run converged in %d phase(s); no phase boundary to checkpoint", len(want.Phases))
			}

			dir := t.TempDir()
			ckptCfg := tc.cfg
			ckptCfg.CheckpointDir = dir
			got, err := RunOnEdges(3, n, edges, ckptCfg)
			if err != nil {
				t.Fatal(err)
			}
			sameOutcome(t, "checkpointing run", got, want)

			man, err := ckpt.ReadManifest(dir)
			if err != nil {
				t.Fatalf("no committed checkpoint after multi-phase run: %v", err)
			}
			if man.Phase < 1 || man.WorldSize != 3 {
				t.Fatalf("manifest phase=%d world=%d", man.Phase, man.WorldSize)
			}

			for _, p := range []int{3, 2, 5} {
				sameOutcome(t, "resume p="+string(rune('0'+p)), resumeInproc(t, p, dir, tc.cfg), want)
			}
		})
	}
}

// runCkptChaosTCP is runChaosTCP's sibling for resumed runs: p TCP ranks
// call Resume on dir, with the doomed rank's transport on the given fault
// plan. Returns per-rank errors, rank 0's Result and the doomed rank's
// total send count (the calibration datum for scheduling a mid-resume kill).
func runCkptChaosTCP(t *testing.T, p, doomed int, plan mpi.FaultPlan, dir string, cfg Config) (errs []error, root *Result, total int64) {
	t.Helper()
	cfg.GatherOutput = true
	addrs := chaosFreeAddrs(t, p)
	errs = make([]error, p)
	var tot atomic.Int64
	var res atomic.Pointer[Result]
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tp, err := mpi.DialTCPWorld(mpi.TCPWorldConfig{Rank: r, Addrs: addrs})
			if err != nil {
				errs[r] = err
				return
			}
			rankPlan := mpi.FaultPlan{}
			if r == doomed {
				rankPlan = plan
			}
			ft := mpi.NewFaultTransport(tp, rankPlan)
			defer ft.Close()
			c := mpi.NewComm(ft, mpi.WithCollectiveTimeout(10*time.Second))
			out, err := Resume(c, dir, cfg)
			errs[r] = err
			if r == 0 && err == nil {
				res.Store(out)
			}
			if r == doomed {
				tot.Store(ft.Sends())
			}
		}(r)
	}
	wg.Wait()
	return errs, res.Load(), tot.Load()
}

// copyDir clones a flat checkpoint directory, so a chaos pass can consume a
// copy while the original stays replayable.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// killCheckpointingRun runs the full TCP pipeline with checkpointing into
// dir and kills the doomed rank after killAt sends, asserting the expected
// failure shape (ErrKilled on the doomed rank, ErrPeerLost on survivors).
func killCheckpointingRun(t *testing.T, p, doomed int, killAt int64, n int64, edges []graph.RawEdge, cfg Config, dir string) {
	t.Helper()
	cfg.CheckpointDir = dir
	errs, _, _ := runChaosTCP(t, p, doomed, mpi.FaultPlan{KillAfterSends: killAt}, n, edges, cfg)
	assertKilledWorld(t, errs, doomed)
}

func assertKilledWorld(t *testing.T, errs []error, doomed int) {
	t.Helper()
	for r, err := range errs {
		if r == doomed {
			if !errors.Is(err, mpi.ErrKilled) {
				t.Fatalf("doomed rank error = %v, want ErrKilled", err)
			}
			continue
		}
		var pl *mpi.ErrPeerLost
		if err == nil || !errors.As(err, &pl) {
			t.Fatalf("survivor rank %d: error = %v, want ErrPeerLost", r, err)
		}
	}
}

// TestCheckpointResumeAfterKill is the acceptance scenario: kill one rank
// mid-phase, resume from the surviving checkpoint, and land on the exact
// final membership and modularity of the uninterrupted run — at the same
// and at different rank counts.
func TestCheckpointResumeAfterKill(t *testing.T) {
	const p, doomed = 3, 1
	n, edges := gen.ErdosRenyi(300, 1500, 5)
	cfg := Baseline()

	want, err := RunOnEdges(p, n, edges, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Phases) < 2 {
		t.Fatal("run converged in one phase; no boundary to checkpoint")
	}

	// Calibration: a healthy checkpointing run measures the doomed rank's
	// send counts (checkpoint fences add sends, so calibration must
	// checkpoint too). The pipeline is deterministic, so the schedule
	// replays identically in the chaos pass.
	calCfg := cfg
	calCfg.CheckpointDir = t.TempDir()
	errs, afterBuild, total := runChaosTCP(t, p, doomed, mpi.FaultPlan{}, n, edges, calCfg)
	for r, err := range errs {
		if err != nil {
			t.Fatalf("calibration rank %d: %v", r, err)
		}
	}

	// Chaos pass: kill late in the run, past the last phase boundary.
	dir := t.TempDir()
	killAt := afterBuild + 9*(total-afterBuild)/10
	killCheckpointingRun(t, p, doomed, killAt, n, edges, cfg, dir)

	man, err := ckpt.ReadManifest(dir)
	if err != nil {
		t.Fatalf("no committed checkpoint survived the kill: %v", err)
	}
	if man.Phase < 1 {
		t.Fatalf("manifest phase = %d, want ≥ 1", man.Phase)
	}

	// Elastic resume: same world, shrunk world, grown world — all must
	// reproduce the uninterrupted result bit-for-bit.
	for _, np := range []int{3, 2, 5} {
		sameOutcome(t, "resume after kill p="+string(rune('0'+np)), resumeInproc(t, np, dir, cfg), want)
	}
}

// TestCheckpointRepeatedFailureResume kills the initial run, then kills the
// resumed run too, then resumes once more: the twice-interrupted run must
// still converge to the uninterrupted result. Run under -race in make
// test-race (this package is covered).
func TestCheckpointRepeatedFailureResume(t *testing.T) {
	const p, doomed = 3, 1
	n, edges := gen.ErdosRenyi(300, 1500, 5)
	cfg := Baseline()

	want, err := RunOnEdges(p, n, edges, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Calibrate the initial run's sends, then kill it mid-run (dirA holds
	// the surviving checkpoint).
	calCfg := cfg
	calCfg.CheckpointDir = t.TempDir()
	errs, afterBuild, total := runChaosTCP(t, p, doomed, mpi.FaultPlan{}, n, edges, calCfg)
	for r, err := range errs {
		if err != nil {
			t.Fatalf("run calibration rank %d: %v", r, err)
		}
	}
	dirA := t.TempDir()
	killCheckpointingRun(t, p, doomed, afterBuild+4*(total-afterBuild)/5, n, edges, cfg, dirA)
	if _, err := ckpt.ReadManifest(dirA); err != nil {
		t.Fatalf("no checkpoint after first kill: %v", err)
	}

	// Calibrate a full checkpointing resume on a copy of dirA (the resume
	// advances its directory, so each pass needs a fresh copy).
	resumeCfg := cfg
	resumeCfg.CheckpointDir = copyDir(t, dirA)
	rerrs, rres, rtotal := runCkptChaosTCP(t, p, doomed, mpi.FaultPlan{}, resumeCfg.CheckpointDir, resumeCfg)
	for r, err := range rerrs {
		if err != nil {
			t.Fatalf("resume calibration rank %d: %v", r, err)
		}
	}
	sameOutcome(t, "uninterrupted resume", rres, want)
	if rtotal < 2 {
		t.Fatalf("resume made only %d sends; cannot schedule a mid-resume kill", rtotal)
	}

	// Second failure: kill the resumed run halfway through.
	dirC := copyDir(t, dirA)
	resumeCfg.CheckpointDir = dirC
	rerrs, _, _ = runCkptChaosTCP(t, p, doomed, mpi.FaultPlan{KillAfterSends: rtotal / 2}, dirC, resumeCfg)
	assertKilledWorld(t, rerrs, doomed)

	// Final resume — after two failures, at the original and a shrunk
	// world — still lands exactly on the uninterrupted result.
	sameOutcome(t, "resume after two kills p=3", resumeInproc(t, 3, dirC, cfg), want)
	sameOutcome(t, "resume after two kills p=2", resumeInproc(t, 2, dirC, cfg), want)
}

// makeCheckpoint produces a committed 3-rank checkpoint directory.
func makeCheckpoint(t *testing.T, n int64, edges []graph.RawEdge, cfg Config) string {
	t.Helper()
	dir := t.TempDir()
	cfg.CheckpointDir = dir
	if _, err := RunOnEdges(3, n, edges, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := ckpt.ReadManifest(dir); err != nil {
		t.Fatalf("no manifest: %v", err)
	}
	return dir
}

func TestResumeRejectsMissingCheckpoint(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		_, err := Resume(c, t.TempDir(), Baseline())
		return err
	})
	if !errors.Is(err, ckpt.ErrNoCheckpoint) {
		t.Fatalf("error = %v, want ErrNoCheckpoint", err)
	}
}

func TestResumeRejectsConfigMismatch(t *testing.T) {
	n, edges := gen.ErdosRenyi(300, 1500, 5)
	dir := makeCheckpoint(t, n, edges, Baseline())
	other := Baseline()
	other.Seed = 42 // different trajectory
	err := mpi.Run(3, func(c *mpi.Comm) error {
		_, err := Resume(c, dir, other)
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "config fingerprint") {
		t.Fatalf("error = %v, want config fingerprint mismatch", err)
	}
}

func TestResumeNamesCorruptFile(t *testing.T) {
	n, edges := gen.ErdosRenyi(300, 1500, 5)
	dir := makeCheckpoint(t, n, edges, Baseline())
	man, err := ckpt.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	victim := man.Files[1]
	data, err := os.ReadFile(filepath.Join(dir, victim))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x40 // inside the last section's payload
	if err := os.WriteFile(filepath.Join(dir, victim), data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Capture each rank's own error: rank 1 reads the corrupt file and its
	// message must name both the file and the failing section.
	msgs, err := mpi.RunCollect(3, func(c *mpi.Comm) (string, error) {
		_, rerr := Resume(c, dir, Baseline())
		if rerr == nil {
			return "", nil
		}
		return rerr.Error(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if msgs[1] == "" {
		t.Fatal("rank 1 accepted a corrupted snapshot")
	}
	if !strings.Contains(msgs[1], victim) || !strings.Contains(msgs[1], "section") {
		t.Fatalf("rank 1 error lacks file/section context: %s", msgs[1])
	}
	for r, m := range msgs {
		if m == "" {
			t.Fatalf("rank %d resumed despite corrupt world state", r)
		}
	}
}
