package graph

import (
	"fmt"
	"math"
	"sort"
)

// Stats summarizes a graph's shape; graphinfo and the experiment harness
// print these for every workload so runs are self-describing.
type Stats struct {
	Vertices      int64
	Arcs          int64   // stored directed slots
	UndirEdges    int64   // undirected edge estimate: (arcs - selfLoops)/2 + selfLoops
	SelfLoops     int64   // number of self-loop slots
	TotalWeight   float64 // m2
	MinDegree     int64
	MaxDegree     int64
	MeanDegree    float64
	MedianDegree  int64
	Isolated      int64 // vertices with no slots
	WeightedM     float64
	DegreeStdDev  float64
	MaxEdgeWeight float64
}

// ComputeStats scans g once and returns its summary.
func ComputeStats(g *CSR) Stats {
	s := Stats{Vertices: g.N, Arcs: g.NumArcs(), MinDegree: math.MaxInt64}
	if g.N == 0 {
		s.MinDegree = 0
		return s
	}
	degrees := make([]int64, g.N)
	var sumDeg, sumDegSq float64
	for v := int64(0); v < g.N; v++ {
		d := g.Degree(v)
		degrees[v] = d
		sumDeg += float64(d)
		sumDegSq += float64(d) * float64(d)
		if d == 0 {
			s.Isolated++
		}
		if d < s.MinDegree {
			s.MinDegree = d
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	for v := int64(0); v < g.N; v++ {
		for _, e := range g.Neighbors(v) {
			s.TotalWeight += e.W
			if e.To == v {
				s.SelfLoops++
			}
			if e.W > s.MaxEdgeWeight {
				s.MaxEdgeWeight = e.W
			}
		}
	}
	s.UndirEdges = (s.Arcs-s.SelfLoops)/2 + s.SelfLoops
	s.MeanDegree = sumDeg / float64(g.N)
	s.WeightedM = s.TotalWeight / 2
	variance := sumDegSq/float64(g.N) - s.MeanDegree*s.MeanDegree
	if variance > 0 {
		s.DegreeStdDev = math.Sqrt(variance)
	}
	sort.Slice(degrees, func(i, j int) bool { return degrees[i] < degrees[j] })
	s.MedianDegree = degrees[g.N/2]
	return s
}

// String renders the stats in the one-line form used by the CLI tools.
func (s Stats) String() string {
	return fmt.Sprintf("|V|=%d |E|=%d arcs=%d m=%.1f deg[min/med/mean/max]=%d/%d/%.2f/%d isolated=%d selfloops=%d",
		s.Vertices, s.UndirEdges, s.Arcs, s.WeightedM,
		s.MinDegree, s.MedianDegree, s.MeanDegree, s.MaxDegree, s.Isolated, s.SelfLoops)
}

// DegreeHistogram returns log2-bucketed degree counts: bucket i counts
// vertices with degree in [2^i, 2^(i+1)), bucket 0 also counting degree 0
// and 1 split as two leading buckets [0] and [1].
func DegreeHistogram(g *CSR) []int64 {
	var buckets []int64
	bump := func(i int) {
		for len(buckets) <= i {
			buckets = append(buckets, 0)
		}
		buckets[i]++
	}
	for v := int64(0); v < g.N; v++ {
		d := g.Degree(v)
		switch {
		case d == 0:
			bump(0)
		case d == 1:
			bump(1)
		default:
			b := 2
			for x := d; x > 1; x >>= 1 {
				b++
			}
			bump(b - 1)
		}
	}
	return buckets
}
