package graph

import (
	"math"
	"testing"
	"testing/quick"
)

// triangle returns the weighted triangle 0-1-2 with an extra self loop at 2.
func triangle() *CSR {
	b := NewBuilder(3)
	must(b.AddEdge(0, 1, 1))
	must(b.AddEdge(1, 2, 2))
	must(b.AddEdge(0, 2, 3))
	must(b.AddEdge(2, 2, 5))
	return b.Build()
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

func TestBuilderBasicCSR(t *testing.T) {
	g := triangle()
	if g.N != 3 {
		t.Fatalf("N = %d", g.N)
	}
	if got := g.NumArcs(); got != 7 { // 3 undirected edges ×2 + 1 self loop
		t.Fatalf("arcs = %d, want 7", got)
	}
	if err := g.Validate(true); err != nil {
		t.Fatal(err)
	}
	if d := g.Degree(2); d != 3 {
		t.Fatalf("degree(2) = %d, want 3", d)
	}
	if k := g.WeightedDegree(2); k != 2+3+5 {
		t.Fatalf("k(2) = %g, want 10", k)
	}
	if sl := g.SelfLoopWeight(2); sl != 5 {
		t.Fatalf("selfloop(2) = %g, want 5", sl)
	}
	if sl := g.SelfLoopWeight(0); sl != 0 {
		t.Fatalf("selfloop(0) = %g, want 0", sl)
	}
	// m2 = sum of k(v) = (1+3) + (1+2) + (2+3+5) = 17
	if m2 := g.TotalWeight(); m2 != 17 {
		t.Fatalf("m2 = %g, want 17", m2)
	}
}

func TestBuilderMergesParallelEdges(t *testing.T) {
	b := NewBuilder(2)
	must(b.AddEdge(0, 1, 1))
	must(b.AddEdge(1, 0, 2.5))
	must(b.AddEdge(0, 1, 0.5))
	g := b.Build()
	if g.NumArcs() != 2 {
		t.Fatalf("arcs = %d, want 2 (merged)", g.NumArcs())
	}
	if w := g.Neighbors(0)[0].W; w != 4 {
		t.Fatalf("merged weight = %g, want 4", w)
	}
	if err := g.Validate(true); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderRejectsBadEdges(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddEdge(0, 2, 1); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if err := b.AddEdge(-1, 0, 1); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if err := b.AddEdge(0, 1, -1); err == nil {
		t.Fatal("expected negative-weight error")
	}
}

func TestBuilderAddAll(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddAll([]RawEdge{{0, 1, 1}, {1, 2, 1}}); err != nil {
		t.Fatal(err)
	}
	if b.NumPending() != 2 {
		t.Fatalf("pending = %d", b.NumPending())
	}
	if err := b.AddAll([]RawEdge{{0, 9, 1}}); err == nil {
		t.Fatal("expected error")
	}
}

func TestAdjacencySorted(t *testing.T) {
	b := NewBuilder(5)
	must(b.AddEdge(0, 4, 1))
	must(b.AddEdge(0, 2, 1))
	must(b.AddEdge(0, 3, 1))
	must(b.AddEdge(0, 1, 1))
	g := b.Build()
	nbrs := g.Neighbors(0)
	for i := 1; i < len(nbrs); i++ {
		if nbrs[i-1].To >= nbrs[i].To {
			t.Fatalf("adjacency not sorted: %v", nbrs)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if err := g.Validate(true); err != nil {
		t.Fatal(err)
	}
	if g.TotalWeight() != 0 || g.NumArcs() != 0 {
		t.Fatal("empty graph not empty")
	}
	s := ComputeStats(g)
	if s.Vertices != 0 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestIsolatedVertices(t *testing.T) {
	b := NewBuilder(10)
	must(b.AddEdge(0, 1, 1))
	g := b.Build()
	if err := g.Validate(true); err != nil {
		t.Fatal(err)
	}
	if d := g.Degree(5); d != 0 {
		t.Fatalf("degree(5) = %d", d)
	}
	s := ComputeStats(g)
	if s.Isolated != 8 {
		t.Fatalf("isolated = %d, want 8", s.Isolated)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := triangle()
	bad := g.Clone()
	bad.Edges[0].To = 99
	if err := bad.Validate(false); err == nil {
		t.Fatal("expected out-of-range target error")
	}
	bad = g.Clone()
	bad.Index[1], bad.Index[2] = bad.Index[2], bad.Index[1]
	if err := bad.Validate(false); err == nil {
		t.Fatal("expected monotonicity error")
	}
	bad = g.Clone()
	bad.Edges[0].W = -3
	if err := bad.Validate(false); err == nil {
		t.Fatal("expected negative-weight error")
	}
	// Break symmetry: find the arc 0→1 and change its weight.
	bad = g.Clone()
	for i := range bad.Edges {
		if bad.Edges[i].To == 1 && i < int(bad.Index[1]) {
			bad.Edges[i].W += 1
			break
		}
	}
	if err := bad.Validate(true); err == nil {
		t.Fatal("expected symmetry error")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := triangle()
	c := g.Clone()
	c.Edges[0].W = 1000
	c.Index[0] = 42
	if g.Edges[0].W == 1000 || g.Index[0] == 42 {
		t.Fatal("clone aliases original")
	}
}

func TestUndirectedEdgesRoundTrip(t *testing.T) {
	g := triangle()
	rebuilt := FromRawEdges(g.N, g.UndirectedEdges())
	if rebuilt.NumArcs() != g.NumArcs() {
		t.Fatalf("arcs %d != %d", rebuilt.NumArcs(), g.NumArcs())
	}
	if math.Abs(rebuilt.TotalWeight()-g.TotalWeight()) > 1e-12 {
		t.Fatalf("m2 %g != %g", rebuilt.TotalWeight(), g.TotalWeight())
	}
	for v := int64(0); v < g.N; v++ {
		if rebuilt.Degree(v) != g.Degree(v) {
			t.Fatalf("degree mismatch at %d", v)
		}
	}
}

func TestFromAdjacency(t *testing.T) {
	g := FromAdjacency([][]Edge{
		{{To: 1, W: 2}},
		{{To: 0, W: 2}},
	})
	if err := g.Validate(true); err != nil {
		t.Fatal(err)
	}
	if g.TotalWeight() != 4 {
		t.Fatalf("m2 = %g", g.TotalWeight())
	}
}

func TestStats(t *testing.T) {
	g := triangle()
	s := ComputeStats(g)
	if s.Vertices != 3 || s.Arcs != 7 || s.SelfLoops != 1 {
		t.Fatalf("stats: %+v", s)
	}
	if s.UndirEdges != 4 { // 3 proper edges + 1 self loop
		t.Fatalf("undirected edges = %d", s.UndirEdges)
	}
	if s.TotalWeight != 17 {
		t.Fatalf("m2 = %g", s.TotalWeight)
	}
	if s.MaxDegree != 3 || s.MinDegree != 2 {
		t.Fatalf("degrees: %+v", s)
	}
	if s.MaxEdgeWeight != 5 {
		t.Fatalf("max weight = %g", s.MaxEdgeWeight)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestDegreeHistogram(t *testing.T) {
	b := NewBuilder(6)
	// degrees: v0: 4, v1..v4: 1, v5: 0
	for v := int64(1); v <= 4; v++ {
		must(b.AddEdge(0, v, 1))
	}
	g := b.Build()
	h := DegreeHistogram(g)
	if h[0] != 1 { // one isolated
		t.Fatalf("bucket0 = %d", h[0])
	}
	if h[1] != 4 { // four degree-1
		t.Fatalf("bucket1 = %d", h[1])
	}
	// degree 4 lands in bucket [4,8) = index 3
	if h[3] != 1 {
		t.Fatalf("histogram: %v", h)
	}
}

// Property: for any random edge list, the built CSR validates, is symmetric,
// and preserves total weight (m2 = 2·Σw for non-loops + Σw for loops).
func TestQuickBuilderInvariants(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int64(nRaw%20) + 1
		rng := seed
		next := func() int64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			v := rng >> 33
			if v < 0 {
				v = -v
			}
			return v
		}
		var raw []RawEdge
		var wantM2 float64
		for i := 0; i < int(nRaw); i++ {
			u, v := next()%n, next()%n
			w := float64(next()%100) / 10
			raw = append(raw, RawEdge{U: u, V: v, W: w})
			if u == v {
				wantM2 += w
			} else {
				wantM2 += 2 * w
			}
		}
		g := FromRawEdges(n, raw)
		if err := g.Validate(true); err != nil {
			return false
		}
		return math.Abs(g.TotalWeight()-wantM2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: WeightedDegree sums to TotalWeight.
func TestQuickDegreeSumEqualsM2(t *testing.T) {
	f := func(seed int64) bool {
		n := int64(seed%13+13) % 13
		if n < 2 {
			n = 2
		}
		b := NewBuilder(n)
		s := seed
		for i := int64(0); i < 3*n; i++ {
			s = s*2862933555777941757 + 3037000493
			u := ((s >> 32) & 0x7fffffff) % n
			v := ((s >> 12) & 0x7fffffff) % n
			_ = b.AddEdge(u, v, 1)
		}
		g := b.Build()
		var sum float64
		for v := int64(0); v < n; v++ {
			sum += g.WeightedDegree(v)
		}
		return math.Abs(sum-g.TotalWeight()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
