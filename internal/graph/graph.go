// Package graph provides the in-memory graph representations used across
// the repository: weighted edge lists and the compressed sparse row (CSR)
// structure the Louvain sweeps iterate over, together with builders,
// validators and summary statistics.
//
// Conventions (shared with the distributed code):
//
//   - Graphs are undirected but stored symmetrically: an undirected edge
//     {u,v} with weight w appears as two directed slots u→v and v→u, each
//     with weight w. A self loop {v,v} is stored once with its full weight.
//   - The weighted degree k(v) is the sum of the weights of v's stored
//     slots (a self loop therefore contributes its weight once to k(v)).
//   - m2 = Σ_v k(v) is the doubled total edge weight ("2m" of the paper's
//     Equation 1); all modularity arithmetic uses m2.
//
// These conventions make modularity exactly invariant under the coarsening
// step: a coarse self loop accumulates the doubled intra-community weight
// and coarse degrees sum the member degrees.
package graph

import (
	"fmt"
	"math"
)

// Edge is one CSR adjacency slot: a target vertex and the edge weight.
type Edge struct {
	To int64
	W  float64
}

// RawEdge is one undirected input edge.
type RawEdge struct {
	U, V int64
	W    float64
}

// CSR is a compressed-sparse-row adjacency structure over vertices
// [0, N). Index has length N+1; the neighbours of v occupy
// Edges[Index[v]:Index[v+1]].
type CSR struct {
	N     int64
	Index []int64
	Edges []Edge
}

// NumVertices returns the vertex count.
func (g *CSR) NumVertices() int64 { return g.N }

// NumArcs returns the number of stored directed slots (≈ 2× undirected
// edges plus self loops).
func (g *CSR) NumArcs() int64 { return int64(len(g.Edges)) }

// Neighbors returns the adjacency slice of v. The slice aliases the CSR and
// must not be modified.
func (g *CSR) Neighbors(v int64) []Edge {
	return g.Edges[g.Index[v]:g.Index[v+1]]
}

// Degree returns the number of adjacency slots of v.
func (g *CSR) Degree(v int64) int64 {
	return g.Index[v+1] - g.Index[v]
}

// WeightedDegree returns k(v): the sum of the weights of v's slots.
func (g *CSR) WeightedDegree(v int64) float64 {
	var k float64
	for _, e := range g.Neighbors(v) {
		k += e.W
	}
	return k
}

// SelfLoopWeight returns the weight of v's self loop (0 when absent).
func (g *CSR) SelfLoopWeight(v int64) float64 {
	var w float64
	for _, e := range g.Neighbors(v) {
		if e.To == v {
			w += e.W
		}
	}
	return w
}

// TotalWeight returns m2 = Σ_v k(v), the doubled total edge weight.
func (g *CSR) TotalWeight() float64 {
	var m2 float64
	for _, e := range g.Edges {
		m2 += e.W
	}
	return m2
}

// Validate checks structural invariants: monotone index, in-range targets,
// non-negative weights, and (optionally expensive) symmetry of the stored
// arcs. It returns the first violation found.
func (g *CSR) Validate(checkSymmetry bool) error {
	if int64(len(g.Index)) != g.N+1 {
		return fmt.Errorf("graph: index length %d, want N+1=%d", len(g.Index), g.N+1)
	}
	if g.Index[0] != 0 {
		return fmt.Errorf("graph: index[0] = %d, want 0", g.Index[0])
	}
	for v := int64(0); v < g.N; v++ {
		if g.Index[v+1] < g.Index[v] {
			return fmt.Errorf("graph: index not monotone at vertex %d", v)
		}
	}
	if g.Index[g.N] != int64(len(g.Edges)) {
		return fmt.Errorf("graph: index[N] = %d, want %d", g.Index[g.N], len(g.Edges))
	}
	for i, e := range g.Edges {
		if e.To < 0 || e.To >= g.N {
			return fmt.Errorf("graph: edge slot %d targets out-of-range vertex %d", i, e.To)
		}
		if e.W < 0 {
			return fmt.Errorf("graph: edge slot %d has negative weight %g", i, e.W)
		}
	}
	if checkSymmetry {
		return g.validateSymmetry()
	}
	return nil
}

func (g *CSR) validateSymmetry() error {
	// Sum of weights u→v must equal v→u for every pair. Aggregate per
	// unordered pair through a map keyed on (min,max). The comparison is
	// tolerant: merged parallel edges may have been summed in different
	// orders for the two directions.
	type pair struct{ a, b int64 }
	acc := make(map[pair][2]float64)
	for u := int64(0); u < g.N; u++ {
		for _, e := range g.Neighbors(u) {
			if e.To == u {
				continue // self loops are stored once
			}
			if u < e.To {
				k := pair{u, e.To}
				v := acc[k]
				v[0] += e.W
				acc[k] = v
			} else {
				k := pair{e.To, u}
				v := acc[k]
				v[1] += e.W
				acc[k] = v
			}
		}
	}
	for p, w := range acc {
		diff := math.Abs(w[0] - w[1])
		scale := math.Max(1, math.Max(math.Abs(w[0]), math.Abs(w[1])))
		if diff > 1e-9*scale {
			return fmt.Errorf("graph: asymmetric weight between %d and %d (%g vs %g)", p.a, p.b, w[0], w[1])
		}
	}
	return nil
}

// Clone returns a deep copy of g.
func (g *CSR) Clone() *CSR {
	idx := make([]int64, len(g.Index))
	copy(idx, g.Index)
	edges := make([]Edge, len(g.Edges))
	copy(edges, g.Edges)
	return &CSR{N: g.N, Index: idx, Edges: edges}
}

// UndirectedEdges converts the CSR back to a deduplicated undirected edge
// list (u <= v), halving no weights: the weight reported for {u,v} is the
// stored weight of the u→v arc. Useful for round-trip tests and I/O.
func (g *CSR) UndirectedEdges() []RawEdge {
	var out []RawEdge
	for u := int64(0); u < g.N; u++ {
		for _, e := range g.Neighbors(u) {
			if u <= e.To {
				out = append(out, RawEdge{U: u, V: e.To, W: e.W})
			}
		}
	}
	return out
}
