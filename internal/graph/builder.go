package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates undirected edges and produces a CSR. Parallel edges
// are merged by summing weights; each non-loop edge is symmetrized into two
// arcs. The builder is not safe for concurrent use.
type Builder struct {
	n     int64
	edges []RawEdge
}

// NewBuilder creates a builder for a graph on n vertices.
func NewBuilder(n int64) *Builder {
	return &Builder{n: n}
}

// AddEdge records the undirected edge {u,v} with weight w. Self loops are
// allowed. Weight must be non-negative.
func (b *Builder) AddEdge(u, v int64, w float64) error {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
	}
	if w < 0 {
		return fmt.Errorf("graph: edge (%d,%d) has negative weight %g", u, v, w)
	}
	b.edges = append(b.edges, RawEdge{U: u, V: v, W: w})
	return nil
}

// AddAll records a batch of edges.
func (b *Builder) AddAll(edges []RawEdge) error {
	for _, e := range edges {
		if err := b.AddEdge(e.U, e.V, e.W); err != nil {
			return err
		}
	}
	return nil
}

// NumPending returns the number of raw edges recorded so far.
func (b *Builder) NumPending() int { return len(b.edges) }

// Build produces the CSR: arcs are symmetrized, parallel arcs merged, and
// each adjacency list sorted by target. The builder may be reused afterwards
// (it keeps its edges).
func (b *Builder) Build() *CSR {
	return FromRawEdges(b.n, b.edges)
}

// FromRawEdges builds a CSR directly from an undirected edge list,
// symmetrizing and merging parallel edges. Inputs are not modified.
func FromRawEdges(n int64, raw []RawEdge) *CSR {
	// Expand to directed arcs.
	type arc struct {
		from, to int64
		w        float64
	}
	arcs := make([]arc, 0, 2*len(raw))
	for _, e := range raw {
		if e.U == e.V {
			arcs = append(arcs, arc{e.U, e.V, e.W})
		} else {
			arcs = append(arcs, arc{e.U, e.V, e.W}, arc{e.V, e.U, e.W})
		}
	}
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].from != arcs[j].from {
			return arcs[i].from < arcs[j].from
		}
		return arcs[i].to < arcs[j].to
	})
	// Merge parallel arcs and count per-vertex degrees.
	index := make([]int64, n+1)
	edges := make([]Edge, 0, len(arcs))
	for i := 0; i < len(arcs); {
		j := i + 1
		w := arcs[i].w
		for j < len(arcs) && arcs[j].from == arcs[i].from && arcs[j].to == arcs[i].to {
			w += arcs[j].w
			j++
		}
		edges = append(edges, Edge{To: arcs[i].to, W: w})
		index[arcs[i].from+1]++
		i = j
	}
	for v := int64(0); v < n; v++ {
		index[v+1] += index[v]
	}
	return &CSR{N: n, Index: index, Edges: edges}
}

// FromAdjacency builds a CSR from explicit adjacency lists. adj[v] lists
// v's slots exactly as they should be stored (the caller is responsible for
// symmetry). Mainly used by tests and generators that already produce
// symmetric structures.
func FromAdjacency(adj [][]Edge) *CSR {
	n := int64(len(adj))
	index := make([]int64, n+1)
	total := 0
	for v, list := range adj {
		index[v+1] = index[v] + int64(len(list))
		total += len(list)
	}
	edges := make([]Edge, 0, total)
	for _, list := range adj {
		edges = append(edges, list...)
	}
	return &CSR{N: n, Index: index, Edges: edges}
}
