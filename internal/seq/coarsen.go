package seq

import (
	"sort"

	"distlouvain/internal/graph"
)

// Coarsen collapses each community of comm into one meta-vertex and returns
// the coarse graph plus the dense relabeling: renumber[oldLabel] = coarse
// vertex ID. Coarse vertex IDs are assigned in increasing order of the old
// community labels (0..C-1), which keeps the operation deterministic.
//
// Weights follow the conventions of package graph: a fine arc u→v with
// comm[u]=a, comm[v]=b contributes its weight to the coarse arc a→b, so
// inter-community weights stay symmetric and the coarse self loop a→a
// accumulates the doubled intra-community weight. Modularity of the
// identity partition of the coarse graph equals the modularity of comm on
// the fine graph.
func Coarsen(g *graph.CSR, comm []int64) (*graph.CSR, map[int64]int64) {
	// Dense renumbering of surviving labels.
	labels := make([]int64, 0, 64)
	seen := make(map[int64]struct{})
	for _, c := range comm {
		if _, ok := seen[c]; !ok {
			seen[c] = struct{}{}
			labels = append(labels, c)
		}
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	renumber := make(map[int64]int64, len(labels))
	for i, c := range labels {
		renumber[c] = int64(i)
	}

	// Accumulate coarse arcs.
	type pair struct{ a, b int64 }
	acc := make(map[pair]float64)
	for v := int64(0); v < g.N; v++ {
		a := renumber[comm[v]]
		for _, e := range g.Neighbors(v) {
			b := renumber[comm[e.To]]
			acc[pair{a, b}] += e.W
		}
	}

	// Sort the coarse arcs into CSR order.
	arcs := make([]pair, 0, len(acc))
	for p := range acc {
		arcs = append(arcs, p)
	}
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].a != arcs[j].a {
			return arcs[i].a < arcs[j].a
		}
		return arcs[i].b < arcs[j].b
	})
	nc := int64(len(labels))
	index := make([]int64, nc+1)
	edges := make([]graph.Edge, 0, len(arcs))
	for _, p := range arcs {
		edges = append(edges, graph.Edge{To: p.b, W: acc[p]})
		index[p.a+1]++
	}
	for v := int64(0); v < nc; v++ {
		index[v+1] += index[v]
	}
	return &graph.CSR{N: nc, Index: index, Edges: edges}, renumber
}
