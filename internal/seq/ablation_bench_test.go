package seq

import (
	"testing"

	"distlouvain/internal/gen"
	"distlouvain/internal/graph"
)

// Ablation: flat-array vs hash-map accumulation of neighbour-community
// weights in the ΔQ scan (DESIGN.md §6). The flat array with timestamp
// invalidation is the production choice; the map is the naive alternative.

// mapMoveVertex is the map-based variant of moveVertex, kept only for this
// ablation.
func mapMoveVertex(g *graph.CSR, v int64, comm []int64, k, aTot []float64, m2 float64, scratch map[int64]float64) bool {
	cv := comm[v]
	clear(scratch)
	for _, e := range g.Neighbors(v) {
		if e.To == v {
			continue
		}
		scratch[comm[e.To]] += e.W
	}
	eCur := scratch[cv]
	best := cv
	bestGain := 0.0
	kv := k[v]
	aCur := aTot[cv] - kv
	for c, evc := range scratch {
		if c == cv {
			continue
		}
		gain := 2*(evc-eCur)/m2 - 2*kv*(aTot[c]-aCur)/(m2*m2)
		if gain > bestGain || (gain == bestGain && gain > 0 && c < best) {
			bestGain = gain
			best = c
		}
	}
	if best != cv && bestGain > 0 {
		aTot[cv] -= kv
		aTot[best] += kv
		comm[v] = best
		return true
	}
	return false
}

func benchSweepInput() (*graph.CSR, []int64, []float64, []float64, float64) {
	n, edges, _, err := gen.LFR(gen.DefaultLFR(5000, 0.3, 5))
	if err != nil {
		panic(err)
	}
	g := gen.Build(n, edges)
	comm := make([]int64, n)
	k := make([]float64, n)
	aTot := make([]float64, n)
	for v := int64(0); v < n; v++ {
		comm[v] = v
		k[v] = g.WeightedDegree(v)
		aTot[v] = k[v]
	}
	return g, comm, k, aTot, g.TotalWeight()
}

func BenchmarkAblation_ScanFlatArray(b *testing.B) {
	g, comm, k, aTot, m2 := benchSweepInput()
	selfLoop := make([]float64, g.N)
	scratch := newNeighMap(g.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v := int64(0); v < g.N; v++ {
			moveVertex(g, v, comm, k, aTot, selfLoop, m2, scratch)
		}
	}
}

func BenchmarkAblation_ScanHashMap(b *testing.B) {
	g, comm, k, aTot, m2 := benchSweepInput()
	scratch := make(map[int64]float64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v := int64(0); v < g.N; v++ {
			mapMoveVertex(g, v, comm, k, aTot, m2, scratch)
		}
	}
}

// BenchmarkSerialLouvain tracks the reference implementation end to end.
func BenchmarkSerialLouvain(b *testing.B) {
	n, edges, _, err := gen.LFR(gen.DefaultLFR(5000, 0.3, 5))
	if err != nil {
		b.Fatal(err)
	}
	g := gen.Build(n, edges)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(g, Options{})
	}
}

// BenchmarkModularity tracks the exact-modularity audit.
func BenchmarkModularity(b *testing.B) {
	n, edges, truth := gen.PlantedPartition(20, 100, 0.3, 0.005, 7)
	g := gen.Build(n, edges)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Modularity(g, truth)
	}
}

// BenchmarkCoarsen tracks the serial coarsening step.
func BenchmarkCoarsen(b *testing.B) {
	n, edges, truth := gen.PlantedPartition(20, 100, 0.3, 0.005, 7)
	g := gen.Build(n, edges)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Coarsen(g, truth)
	}
}
