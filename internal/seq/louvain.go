package seq

import (
	"math"

	"distlouvain/internal/graph"
)

// Options configures the serial Louvain run.
type Options struct {
	// Tau is the modularity-gain threshold used both between iterations of
	// a phase and between phases (the paper's τ, default 1e-6).
	Tau float64
	// MaxPhases caps the number of phases (0 = unlimited).
	MaxPhases int
	// MaxIterations caps iterations within one phase (0 = unlimited).
	MaxIterations int
}

// DefaultTau is the paper's default threshold τ = 10⁻⁶.
const DefaultTau = 1e-6

func (o *Options) fill() {
	if o.Tau <= 0 {
		o.Tau = DefaultTau
	}
}

// PhaseStat records one phase of the multi-phase heuristic.
type PhaseStat struct {
	Vertices   int64   // size of the (coarsened) graph this phase ran on
	Iterations int     // Louvain iterations executed
	Modularity float64 // modularity at phase end
}

// Result is the outcome of a Louvain run.
type Result struct {
	// Comm maps each original vertex to its final community label
	// (labels are final-graph vertex IDs, dense in [0, Communities)).
	Comm []int64
	// Modularity is the final modularity on the original graph.
	Modularity float64
	// Communities is the number of final communities.
	Communities int64
	// Phases describes each executed phase.
	Phases []PhaseStat
	// TotalIterations sums iterations across phases.
	TotalIterations int
}

// Run executes the serial Louvain method (Algorithm 1 per phase, coarsening
// between phases) and returns the flattened community assignment of the
// original vertices.
func Run(g *graph.CSR, opt Options) *Result {
	opt.fill()
	res := &Result{Comm: make([]int64, g.N)}
	for v := range res.Comm {
		res.Comm[v] = int64(v)
	}
	if g.N == 0 {
		return res
	}

	cur := g
	prevQ := math.Inf(-1)
	for phase := 0; opt.MaxPhases == 0 || phase < opt.MaxPhases; phase++ {
		comm, q, iters := onePhase(cur, opt)
		res.Phases = append(res.Phases, PhaseStat{Vertices: cur.N, Iterations: iters, Modularity: q})
		res.TotalIterations += iters
		if q-prevQ <= opt.Tau {
			break
		}
		prevQ = q
		coarse, renumber := Coarsen(cur, comm)
		// Flatten: original vertex → current community → coarse vertex.
		for v := range res.Comm {
			res.Comm[v] = renumber[comm[res.Comm[v]]]
		}
		if coarse.N == cur.N {
			// No compaction happened; a further phase would repeat the
			// same computation.
			cur = coarse
			break
		}
		cur = coarse
	}

	// Final labels are vertices of the last coarse graph; make them dense.
	_, renumber := densify(res.Comm)
	for v := range res.Comm {
		res.Comm[v] = renumber[res.Comm[v]]
	}
	res.Communities = CommunityCount(res.Comm)
	res.Modularity = Modularity(g, res.Comm)
	return res
}

func densify(comm []int64) (int64, map[int64]int64) {
	renumber := make(map[int64]int64)
	var next int64
	for _, c := range comm {
		if _, ok := renumber[c]; !ok {
			renumber[c] = next
			next++
		}
	}
	return next, renumber
}

// onePhase runs Louvain iterations on g until the per-iteration modularity
// gain drops to opt.Tau, returning the assignment, final modularity, and the
// iteration count.
func onePhase(g *graph.CSR, opt Options) ([]int64, float64, int) {
	n := g.N
	m2 := g.TotalWeight()
	comm := make([]int64, n)
	k := make([]float64, n)        // weighted degrees
	aTot := make([]float64, n)     // A_c per community label (labels are vertex IDs)
	selfLoop := make([]float64, n) // self-loop weight per vertex
	for v := int64(0); v < n; v++ {
		comm[v] = v
		k[v] = g.WeightedDegree(v)
		aTot[v] = k[v]
		selfLoop[v] = g.SelfLoopWeight(v)
	}
	if m2 == 0 {
		return comm, 0, 0
	}

	scratch := newNeighMap(n)
	prevQ := math.Inf(-1)
	iters := 0
	for {
		if opt.MaxIterations > 0 && iters >= opt.MaxIterations {
			break
		}
		iters++
		for v := int64(0); v < n; v++ {
			moveVertex(g, v, comm, k, aTot, selfLoop, m2, scratch)
		}
		q := modularityFromState(g, comm, aTot, m2)
		if q-prevQ <= opt.Tau {
			prevQ = q
			break
		}
		prevQ = q
	}
	return comm, prevQ, iters
}

// moveVertex evaluates all neighbouring communities of v and applies the
// ΔQ-maximising move (lines 4–8 of Algorithm 1). Returns true if v moved.
func moveVertex(g *graph.CSR, v int64, comm []int64, k, aTot, selfLoop []float64, m2 float64, scratch *neighMap) bool {
	cv := comm[v]
	scratch.reset()
	// e_{v,c}: weight from v to each neighbouring community, excluding the
	// self loop (it moves with v and cancels in ΔQ).
	for _, e := range g.Neighbors(v) {
		if e.To == v {
			continue
		}
		scratch.add(comm[e.To], e.W)
	}
	eCur := scratch.get(cv) // e_{v, a−v}

	best := cv
	bestGain := 0.0
	kv := k[v]
	aCur := aTot[cv] - kv // A_a excluding v
	for _, c := range scratch.keys {
		if c == cv {
			continue
		}
		// ΔQ(v: a→b) = 2(e_vb − e_va')/m2 − 2·k_v·(A_b − A_a')/m2²
		// with A_b excluding v (v ∉ b) and A_a' = A_a − k_v.
		gain := 2*(scratch.get(c)-eCur)/m2 - 2*kv*(aTot[c]-aCur)/(m2*m2)
		if gain > bestGain || (gain == bestGain && gain > 0 && c < best) {
			bestGain = gain
			best = c
		}
	}
	if best != cv && bestGain > 0 {
		aTot[cv] -= kv
		aTot[best] += kv
		comm[v] = best
		return true
	}
	return false
}

// modularityFromState computes Q using the maintained A_c array and a fresh
// scan for E_c. This matches the Modularity function but avoids rebuilding
// the A_c map every iteration.
func modularityFromState(g *graph.CSR, comm []int64, aTot []float64, m2 float64) float64 {
	var eSum float64
	for v := int64(0); v < g.N; v++ {
		cv := comm[v]
		for _, e := range g.Neighbors(v) {
			if comm[e.To] == cv {
				eSum += e.W
			}
		}
	}
	var aSq float64
	for _, a := range aTot {
		aSq += a * a
	}
	return eSum/m2 - aSq/(m2*m2)
}

// neighMap is a flat-array "hash map" from community label (a vertex ID of
// the current graph) to accumulated edge weight, reusable across vertices
// without clearing the whole array. This is the classic Louvain scratch
// structure; the map-based alternative is benchmarked in the ablation suite.
type neighMap struct {
	weight []float64
	mark   []int64
	stamp  int64
	keys   []int64
}

func newNeighMap(n int64) *neighMap {
	return &neighMap{
		weight: make([]float64, n),
		mark:   make([]int64, n),
		stamp:  0,
		keys:   make([]int64, 0, 64),
	}
}

func (m *neighMap) reset() {
	m.stamp++
	m.keys = m.keys[:0]
}

func (m *neighMap) add(c int64, w float64) {
	if m.mark[c] != m.stamp {
		m.mark[c] = m.stamp
		m.weight[c] = 0
		m.keys = append(m.keys, c)
	}
	m.weight[c] += w
}

func (m *neighMap) get(c int64) float64 {
	if m.mark[c] != m.stamp {
		return 0
	}
	return m.weight[c]
}
