package seq

import (
	"math"
	"testing"
	"testing/quick"

	"distlouvain/internal/gen"
	"distlouvain/internal/graph"
)

// twoCliques builds two 4-cliques joined by one bridge edge — the canonical
// community-detection smoke test.
func twoCliques() *graph.CSR {
	b := graph.NewBuilder(8)
	clique := func(vs []int64) {
		for i := range vs {
			for j := i + 1; j < len(vs); j++ {
				if err := b.AddEdge(vs[i], vs[j], 1); err != nil {
					panic(err)
				}
			}
		}
	}
	clique([]int64{0, 1, 2, 3})
	clique([]int64{4, 5, 6, 7})
	if err := b.AddEdge(3, 4, 1); err != nil {
		panic(err)
	}
	return b.Build()
}

func TestModularitySingletons(t *testing.T) {
	g := twoCliques()
	comm := make([]int64, g.N)
	for v := range comm {
		comm[v] = int64(v)
	}
	// Singleton partition: Q = -Σ (k_v/m2)², since no internal edges.
	m2 := g.TotalWeight()
	var want float64
	for v := int64(0); v < g.N; v++ {
		k := g.WeightedDegree(v)
		want -= (k / m2) * (k / m2)
	}
	got := Modularity(g, comm)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Q = %g, want %g", got, want)
	}
}

func TestModularityAllInOne(t *testing.T) {
	g := twoCliques()
	comm := make([]int64, g.N) // all zero
	// One community: Q = E/m2 - (A/m2)² = 1 - 1 = 0.
	if q := Modularity(g, comm); math.Abs(q) > 1e-12 {
		t.Fatalf("Q = %g, want 0", q)
	}
}

func TestModularityPlantedOptimum(t *testing.T) {
	g := twoCliques()
	comm := []int64{0, 0, 0, 0, 1, 1, 1, 1}
	// m = 13 edges, m2 = 26. Each clique: E_c = 12 (6 edges ×2),
	// A_c = 13. Q = 2*(12/26 - (13/26)²) = 24/26 - 0.5.
	want := 24.0/26.0 - 0.5
	if q := Modularity(g, comm); math.Abs(q-want) > 1e-12 {
		t.Fatalf("Q = %g, want %g", q, want)
	}
}

func TestModularityEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(3).Build()
	if q := Modularity(g, []int64{0, 1, 2}); q != 0 {
		t.Fatalf("Q = %g for empty graph", q)
	}
}

func TestModularityPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Modularity(twoCliques(), []int64{0})
}

func TestRunRecoversTwoCliques(t *testing.T) {
	g := twoCliques()
	res := Run(g, Options{})
	if res.Communities != 2 {
		t.Fatalf("found %d communities, want 2 (comm=%v)", res.Communities, res.Comm)
	}
	// Vertices 0-3 together, 4-7 together.
	for v := 1; v < 4; v++ {
		if res.Comm[v] != res.Comm[0] {
			t.Fatalf("vertex %d split from first clique: %v", v, res.Comm)
		}
	}
	for v := 5; v < 8; v++ {
		if res.Comm[v] != res.Comm[4] {
			t.Fatalf("vertex %d split from second clique: %v", v, res.Comm)
		}
	}
	want := 24.0/26.0 - 0.5
	if math.Abs(res.Modularity-want) > 1e-12 {
		t.Fatalf("Q = %g, want %g", res.Modularity, want)
	}
	if res.TotalIterations == 0 || len(res.Phases) == 0 {
		t.Fatalf("missing stats: %+v", res)
	}
}

func TestRunEmptyAndTinyGraphs(t *testing.T) {
	res := Run(graph.NewBuilder(0).Build(), Options{})
	if len(res.Comm) != 0 {
		t.Fatal("empty graph result not empty")
	}
	// Single vertex.
	res = Run(graph.NewBuilder(1).Build(), Options{})
	if len(res.Comm) != 1 {
		t.Fatal("singleton graph")
	}
	// Two isolated vertices: no edges, Q stays 0, one community each.
	res = Run(graph.NewBuilder(2).Build(), Options{})
	if res.Comm[0] == res.Comm[1] {
		t.Fatal("isolated vertices merged")
	}
}

func TestRunSingleEdge(t *testing.T) {
	b := graph.NewBuilder(2)
	if err := b.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	res := Run(b.Build(), Options{})
	if res.Comm[0] != res.Comm[1] {
		t.Fatalf("endpoints of the only edge should merge: %v", res.Comm)
	}
	// One community holding everything: Q = 0 for a single edge.
	if math.Abs(res.Modularity) > 1e-12 {
		t.Fatalf("Q = %g", res.Modularity)
	}
}

func TestRunRespectsMaxPhases(t *testing.T) {
	_, edges := gen.ErdosRenyi(200, 800, 3)
	g := gen.Build(200, edges)
	res := Run(g, Options{MaxPhases: 1})
	if len(res.Phases) != 1 {
		t.Fatalf("phases = %d", len(res.Phases))
	}
}

func TestRunRespectsMaxIterations(t *testing.T) {
	_, edges := gen.ErdosRenyi(200, 800, 3)
	g := gen.Build(200, edges)
	res := Run(g, Options{MaxIterations: 1})
	for _, ph := range res.Phases {
		if ph.Iterations > 1 {
			t.Fatalf("phase ran %d iterations", ph.Iterations)
		}
	}
}

func TestRunPlantedPartitionQuality(t *testing.T) {
	n, edges, truth := gen.PlantedPartition(8, 30, 0.4, 0.002, 7)
	g := gen.Build(n, edges)
	res := Run(g, Options{})
	// Louvain should score at least as well as the planted partition.
	planted := Modularity(g, truth)
	if res.Modularity < planted-0.02 {
		t.Fatalf("Louvain Q=%.4f well below planted Q=%.4f", res.Modularity, planted)
	}
	if res.Communities < 4 || res.Communities > 16 {
		t.Fatalf("found %d communities for 8 planted", res.Communities)
	}
}

func TestRunModularityIncreasesAcrossPhases(t *testing.T) {
	n, edges, _ := gen.PlantedPartition(10, 20, 0.5, 0.01, 5)
	g := gen.Build(n, edges)
	res := Run(g, Options{})
	for i := 1; i < len(res.Phases); i++ {
		if res.Phases[i].Modularity < res.Phases[i-1].Modularity-1e-9 {
			t.Fatalf("modularity decreased across phases: %+v", res.Phases)
		}
	}
}

func TestCoarsenPreservesWeightAndModularity(t *testing.T) {
	n, edges, truth := gen.PlantedPartition(5, 20, 0.5, 0.02, 11)
	g := gen.Build(n, edges)
	coarse, renumber := Coarsen(g, truth)
	if coarse.N != 5 {
		t.Fatalf("coarse N = %d", coarse.N)
	}
	if err := coarse.Validate(true); err != nil {
		t.Fatal(err)
	}
	if math.Abs(coarse.TotalWeight()-g.TotalWeight()) > 1e-9 {
		t.Fatalf("m2 changed: %g -> %g", g.TotalWeight(), coarse.TotalWeight())
	}
	// Modularity of the assignment equals modularity of the identity
	// partition on the coarse graph.
	fine := Modularity(g, truth)
	identity := make([]int64, coarse.N)
	for v := range identity {
		identity[v] = int64(v)
	}
	if cq := Modularity(coarse, identity); math.Abs(cq-fine) > 1e-9 {
		t.Fatalf("coarse Q=%g fine Q=%g", cq, fine)
	}
	// Renumber covers all labels densely.
	seen := map[int64]bool{}
	for _, nw := range renumber {
		if nw < 0 || nw >= coarse.N || seen[nw] {
			t.Fatalf("renumber not a dense bijection: %v", renumber)
		}
		seen[nw] = true
	}
}

func TestCoarsenIdentityPartition(t *testing.T) {
	g := twoCliques()
	comm := make([]int64, g.N)
	for v := range comm {
		comm[v] = int64(v)
	}
	coarse, _ := Coarsen(g, comm)
	if coarse.N != g.N || coarse.NumArcs() != g.NumArcs() {
		t.Fatalf("identity coarsening changed the graph: N %d->%d arcs %d->%d",
			g.N, coarse.N, g.NumArcs(), coarse.NumArcs())
	}
}

func TestCoarsenSelfLoopAccumulation(t *testing.T) {
	// Coarsening both endpoints of a weight-3 edge into one community must
	// yield a self loop of weight 6 (both stored arcs).
	b := graph.NewBuilder(2)
	if err := b.AddEdge(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	coarse, _ := Coarsen(b.Build(), []int64{0, 0})
	if coarse.N != 1 {
		t.Fatalf("N = %d", coarse.N)
	}
	if w := coarse.SelfLoopWeight(0); w != 6 {
		t.Fatalf("self loop = %g, want 6", w)
	}
}

func TestCommunityHelpers(t *testing.T) {
	comm := []int64{3, 3, 9, 9, 9, 7}
	if c := CommunityCount(comm); c != 3 {
		t.Fatalf("count = %d", c)
	}
	sizes := CommunitySizes(comm)
	if sizes[3] != 2 || sizes[9] != 3 || sizes[7] != 1 {
		t.Fatalf("sizes = %v", sizes)
	}
}

// Property: Run's final labels are dense in [0, Communities) and the
// reported modularity matches an independent recomputation.
func TestQuickRunConsistency(t *testing.T) {
	f := func(seed uint64, nComm uint8) bool {
		k := int(nComm%5) + 2
		n, edges, _ := gen.PlantedPartition(k, 12, 0.5, 0.02, seed)
		g := gen.Build(n, edges)
		res := Run(g, Options{})
		if int64(len(res.Comm)) != n {
			return false
		}
		maxLabel := int64(-1)
		seen := map[int64]bool{}
		for _, c := range res.Comm {
			if c < 0 {
				return false
			}
			if c > maxLabel {
				maxLabel = c
			}
			seen[c] = true
		}
		if int64(len(seen)) != res.Communities || maxLabel != res.Communities-1 {
			return false
		}
		return math.Abs(Modularity(g, res.Comm)-res.Modularity) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: coarsening any assignment preserves total weight exactly and
// modularity up to float error.
func TestQuickCoarsenInvariants(t *testing.T) {
	f := func(seed uint64, labels []uint8) bool {
		n, edges := gen.ErdosRenyi(40, 120, seed)
		g := gen.Build(n, edges)
		comm := make([]int64, n)
		for v := range comm {
			if len(labels) > 0 {
				comm[v] = int64(labels[v%len(labels)] % 10)
			}
		}
		coarse, renumber := Coarsen(g, comm)
		if math.Abs(coarse.TotalWeight()-g.TotalWeight()) > 1e-9 {
			return false
		}
		identity := make([]int64, coarse.N)
		for v := range identity {
			identity[v] = int64(v)
		}
		if math.Abs(Modularity(coarse, identity)-Modularity(g, comm)) > 1e-9 {
			return false
		}
		// Mapping comm through renumber gives the same modularity.
		mapped := make([]int64, n)
		for v := range mapped {
			mapped[v] = renumber[comm[v]]
		}
		return math.Abs(Modularity(g, mapped)-Modularity(g, comm)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: every move taken inside onePhase increases modularity — checked
// indirectly: a phase's final Q must be >= the initial singleton Q.
func TestQuickPhaseNeverDecreasesModularity(t *testing.T) {
	f := func(seed uint64) bool {
		n, edges := gen.ErdosRenyi(60, 200, seed)
		g := gen.Build(n, edges)
		singletons := make([]int64, n)
		for v := range singletons {
			singletons[v] = int64(v)
		}
		q0 := Modularity(g, singletons)
		comm, q, _ := onePhase(g, Options{Tau: DefaultTau})
		if q < q0-1e-9 {
			return false
		}
		return math.Abs(Modularity(g, comm)-q) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRecoversLFRCommunities(t *testing.T) {
	// On a well-separated LFR benchmark the serial heuristic should score
	// close to (or above) the planted partition and place most vertex
	// pairs correctly.
	n, edges, truth, err := gen.LFR(gen.DefaultLFR(3000, 0.15, 41))
	if err != nil {
		t.Fatal(err)
	}
	g := gen.Build(n, edges)
	res := Run(g, Options{})
	planted := Modularity(g, truth)
	if res.Modularity < planted-0.03 {
		t.Fatalf("Q=%.4f well below planted %.4f", res.Modularity, planted)
	}
	// Sample pairs within planted communities: most should co-reside.
	byComm := map[int64][]int64{}
	for v, c := range truth {
		byComm[c] = append(byComm[c], int64(v))
	}
	together, total := 0, 0
	for _, members := range byComm {
		for i := 1; i < len(members) && i < 10; i++ {
			total++
			if res.Comm[members[0]] == res.Comm[members[i]] {
				together++
			}
		}
	}
	if float64(together) < 0.8*float64(total) {
		t.Fatalf("only %d/%d planted pairs co-detected", together, total)
	}
}
