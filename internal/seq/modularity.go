// Package seq implements the serial Louvain method (Algorithm 1 of the
// paper) together with exact modularity evaluation and serial graph
// coarsening. It is the correctness reference for the shared-memory and
// distributed implementations: they may legally converge to different local
// optima, but every intermediate quantity they report (modularity of a given
// assignment, coarsened graph weights) must agree with this package.
package seq

import (
	"fmt"
	"sort"

	"distlouvain/internal/graph"
)

// Modularity computes Newman's modularity (Equation 2 of the paper) of the
// community assignment comm over g: Q = Σ_c [E_c/m2 − (A_c/m2)²], where E_c
// is the total weight of stored arcs internal to c (self loops counted
// once), A_c the summed weighted degree of c's members, and m2 the doubled
// total edge weight.
func Modularity(g *graph.CSR, comm []int64) float64 {
	if int64(len(comm)) != g.N {
		panic(fmt.Sprintf("seq: comm length %d != N %d", len(comm), g.N))
	}
	m2 := g.TotalWeight()
	if m2 == 0 {
		return 0
	}
	eIn := make(map[int64]float64)  // E_c
	aTot := make(map[int64]float64) // A_c
	for v := int64(0); v < g.N; v++ {
		cv := comm[v]
		for _, e := range g.Neighbors(v) {
			aTot[cv] += e.W
			if comm[e.To] == cv {
				eIn[cv] += e.W
			}
		}
	}
	// Sum in sorted label order so the result is bit-deterministic (map
	// iteration order would otherwise vary the float rounding run to run).
	labels := make([]int64, 0, len(aTot))
	for c := range aTot {
		labels = append(labels, c)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	var q float64
	for _, c := range labels {
		a := aTot[c]
		q += eIn[c]/m2 - (a/m2)*(a/m2)
	}
	return q
}

// CommunityCount returns the number of distinct community labels in comm.
func CommunityCount(comm []int64) int64 {
	seen := make(map[int64]struct{}, len(comm))
	for _, c := range comm {
		seen[c] = struct{}{}
	}
	return int64(len(seen))
}

// CommunitySizes returns a label → member-count map.
func CommunitySizes(comm []int64) map[int64]int64 {
	sizes := make(map[int64]int64)
	for _, c := range comm {
		sizes[c]++
	}
	return sizes
}
