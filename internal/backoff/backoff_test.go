package backoff

import (
	"testing"
	"time"
)

func TestDelayGrowthAndJitterBounds(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: time.Second, Seed: 7}
	ceil := p.Base
	for attempt := 1; attempt <= 10; attempt++ {
		d := p.Delay(attempt)
		if d < ceil/2 || d >= ceil {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, d, ceil/2, ceil)
		}
		if ceil < p.Max {
			ceil *= 2
			if ceil > p.Max {
				ceil = p.Max
			}
		}
	}
}

func TestDelayDeterministicInSeed(t *testing.T) {
	a := Policy{Base: 50 * time.Millisecond, Seed: 3}
	b := Policy{Base: 50 * time.Millisecond, Seed: 3}
	c := Policy{Base: 50 * time.Millisecond, Seed: 4}
	var diverged bool
	for k := 1; k <= 16; k++ {
		if a.Delay(k) != b.Delay(k) {
			t.Fatalf("attempt %d: same seed, different delay", k)
		}
		if a.Delay(k) != c.Delay(k) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("seeds 3 and 4 produced identical 16-delay schedules")
	}
}

func TestDelayClampsBadAttempts(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Seed: 1}
	if p.Delay(0) != p.Delay(1) || p.Delay(-5) != p.Delay(1) {
		t.Fatal("attempts below 1 must be treated as attempt 1")
	}
}

func TestZeroPolicyDefaults(t *testing.T) {
	var p Policy
	d := p.Delay(1)
	if d < 50*time.Millisecond || d >= 100*time.Millisecond {
		t.Fatalf("zero policy first delay %v, want within [50ms, 100ms)", d)
	}
	// Max below Base is lifted to Base: the schedule must stay within
	// [Base/2, Base) forever instead of inverting.
	q := Policy{Base: time.Second, Max: time.Millisecond, Seed: 2}
	for k := 1; k < 6; k++ {
		if d := q.Delay(k); d < 500*time.Millisecond || d >= time.Second {
			t.Fatalf("attempt %d: delay %v escaped [500ms, 1s)", k, d)
		}
	}
}

func TestSleeperDeadlineTruncation(t *testing.T) {
	s := NewSleeper(Policy{Base: time.Hour, Seed: 1})
	start := time.Now()
	if s.Sleep(time.Now().Add(10 * time.Millisecond)) {
		t.Fatal("an hour-long delay reported as fitting a 10ms deadline")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("refusing Sleep still blocked for %v", elapsed)
	}
	if s.Attempt() != 1 {
		t.Fatalf("attempt = %d after one Sleep, want 1", s.Attempt())
	}
}

func TestSleeperZeroDeadlineSleeps(t *testing.T) {
	s := NewSleeper(Policy{Base: time.Millisecond, Max: time.Millisecond, Seed: 9})
	start := time.Now()
	if !s.Sleep(time.Time{}) {
		t.Fatal("zero deadline must always sleep")
	}
	if time.Since(start) > time.Second {
		t.Fatal("1ms-capped sleep took over a second")
	}
}
