// Package backoff is the repository's single implementation of jittered
// exponential backoff. Every retry loop that used to carry its own copy —
// the tcp rendezvous dial, the supervisor's restart policy, the coordinator
// client's re-registration — delegates here, so the growth curve, the jitter
// distribution and the determinism contract are stated exactly once.
//
// The delay before attempt k (1-based) doubles from Base up to Max and is
// then jittered uniformly into [d/2, d). Jitter is drawn from a splitmix64
// stream over (Seed, attempt), which makes Delay a pure function: two
// policies with equal fields produce identical schedules, so tests can pin a
// schedule down, while distinct seeds decorrelate the retry storms of a
// whole world relaunching at once.
package backoff

import "time"

// Policy describes one jittered exponential backoff schedule. The zero
// value is usable: fill-in defaults are Base 100ms, Max 10s, Seed 1.
type Policy struct {
	// Base is the first delay; each further attempt doubles it.
	Base time.Duration
	// Max caps the doubling (it does not cap the jittered value below it).
	Max time.Duration
	// Seed selects the jitter stream; equal seeds replay equal schedules.
	Seed uint64
}

// filled returns the policy with defaults applied, leaving p unchanged.
func (p Policy) filled() Policy {
	if p.Base <= 0 {
		p.Base = 100 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 10 * time.Second
	}
	if p.Max < p.Base {
		p.Max = p.Base
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// Delay returns the jittered delay before attempt number `attempt`
// (1-based; values below 1 are treated as 1): Base doubling per attempt,
// capped at Max, jittered uniformly into [d/2, d). It is deterministic in
// (Seed, attempt) and safe for concurrent use.
func (p Policy) Delay(attempt int) time.Duration {
	p = p.filled()
	if attempt < 1 {
		attempt = 1
	}
	d := p.Base
	for i := 1; i < attempt && d < p.Max; i++ {
		d *= 2
	}
	if d > p.Max {
		d = p.Max
	}
	return d/2 + time.Duration(mix(p.Seed, uint64(attempt))%uint64(d/2))
}

// mix is one splitmix64 output over (seed, n).
func mix(seed, n uint64) uint64 {
	z := seed + n*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Sleeper walks one policy's schedule statefully: each Sleep() call sleeps
// the next attempt's delay. It exists for retry loops that also need to
// respect an overall deadline without sleeping past it.
type Sleeper struct {
	policy  Policy
	attempt int
}

// NewSleeper starts a schedule at attempt 1.
func NewSleeper(p Policy) *Sleeper { return &Sleeper{policy: p.filled()} }

// Attempt reports how many delays have been consumed so far.
func (s *Sleeper) Attempt() int { return s.attempt }

// Next returns the next attempt's delay without sleeping.
func (s *Sleeper) Next() time.Duration {
	s.attempt++
	return s.policy.Delay(s.attempt)
}

// Sleep sleeps the next attempt's delay, truncated so it never crosses
// `deadline` (a zero deadline means none). It reports false — without
// sleeping — when the full delay would land past the deadline, which is the
// retry loop's signal to give up.
func (s *Sleeper) Sleep(deadline time.Time) bool {
	d := s.Next()
	if !deadline.IsZero() && d >= time.Until(deadline) {
		return false
	}
	time.Sleep(d)
	return true
}
