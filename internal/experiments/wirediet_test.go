package experiments

import (
	"testing"

	"distlouvain/internal/core"
	"distlouvain/internal/mpi"
	"distlouvain/internal/obsv"
)

// TestWireDietByteReduction pins the communication-diet headline: on a mesh
// workload the default protocol stack (varint wire v2 + delta ghost refresh)
// must move at least 40% fewer p2p payload bytes than the original protocol
// (fixed-width wire v1, full ghost snapshots every iteration) — while
// producing the bit-identical result. The reduction figure is deterministic:
// both runs follow the same trajectory, so the byte counts depend only on
// the protocol, never on timing.
func TestWireDietByteReduction(t *testing.T) {
	ws := TestGraphs(Small)
	for _, name := range []string{"mesh-channel", "mesh-nlpkkt"} {
		w, err := FindGraph(ws, name)
		if err != nil {
			t.Fatal(err)
		}
		legacy := core.Baseline()
		legacy.WireFormat = mpi.WireV1
		legacy.GhostRefresh = core.GhostDense
		resOld, repOld, _, err := benchTracedRun(4, 1, w, legacy)
		if err != nil {
			t.Fatalf("%s legacy run: %v", name, err)
		}
		resNew, repNew, _, err := benchTracedRun(4, 1, w, core.Baseline())
		if err != nil {
			t.Fatalf("%s default run: %v", name, err)
		}

		// The diet must not touch the answer.
		if resNew.Modularity != resOld.Modularity {
			t.Fatalf("%s: modularity %v vs %v (diet changed the trajectory)",
				name, resNew.Modularity, resOld.Modularity)
		}
		if len(resNew.LocalComm) != len(resOld.LocalComm) {
			t.Fatalf("%s: assignment length diverged", name)
		}
		for i := range resNew.LocalComm {
			if resNew.LocalComm[i] != resOld.LocalComm[i] {
				t.Fatalf("%s: assignment differs at local vertex %d", name, i)
			}
		}

		oldP2P := repOld.Overall.Bytes[obsv.CatP2P]
		newP2P := repNew.Overall.Bytes[obsv.CatP2P]
		if oldP2P <= 0 || newP2P <= 0 {
			t.Fatalf("%s: degenerate byte accounting: old %d, new %d", name, oldP2P, newP2P)
		}
		reduction := 1 - float64(newP2P)/float64(oldP2P)
		t.Logf("%s: p2p payload %d -> %d bytes (%.1f%% reduction)", name, oldP2P, newP2P, 100*reduction)
		if reduction < 0.40 {
			t.Fatalf("%s: p2p payload reduction %.1f%% below the 40%% target (%d -> %d bytes)",
				name, 100*reduction, oldP2P, newP2P)
		}
	}
}
