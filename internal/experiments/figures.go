package experiments

import (
	"fmt"
	"strings"

	"distlouvain/internal/core"
	"distlouvain/internal/gen"
	"distlouvain/internal/quality"
)

func compareQuality(detected, truth []int64) (quality.Score, error) {
	return quality.Compare(detected, truth)
}

// Fig2 renders the threshold-cycling schedule (the paper's Fig. 2
// illustration): phase index → τ, for two full cycles.
func Fig2() *Table {
	t := &Table{
		ID:     "Fig. 2",
		Title:  "Threshold cycling schedule",
		Header: []string{"phase", "tau"},
	}
	sched := core.PaperTauSchedule()
	for i := 0; i < 2*len(sched); i++ {
		t.AddRow(fmt.Sprintf("%d", i), fmt.Sprintf("%.0e", sched[i%len(sched)]))
	}
	t.Notes = append(t.Notes, "phases 0–2: 1e-3, 3–6: 1e-4, 7–9: 1e-5, 10–12: 1e-6, repeating (Fig. 2)")
	return t
}

// Fig3Variants is the strong-scaling variant set of the paper's Fig. 3.
func Fig3Variants() []core.Config {
	return []core.Config{
		core.Baseline(),
		core.ThresholdCycling(),
		core.ET(0.25), core.ET(0.75),
		core.ETC(0.25), core.ETC(0.75),
	}
}

// Fig3 reproduces the strong-scaling study: execution time per graph, per
// variant, per rank count.
//
// Expected shape (paper): ET/ETC curves sit below Baseline for most graphs;
// moderate/large inputs scale to 1K–2K procs before communication
// dominates. On this single-core host the rank axis exercises the
// communication structure (bytes, messages) rather than wall-clock speedup,
// so the table also reports communicated bytes.
func Fig3(s Scale, graphs []Workload, ranks []int) (*Table, error) {
	t := &Table{
		ID:     "Fig. 3",
		Title:  "Strong scaling: execution time by variant and rank count",
		Header: []string{"graph", "variant", "ranks", "time (s)", "iters", "phases", "Q", "MB sent"},
	}
	for _, w := range graphs {
		for _, cfg := range Fig3Variants() {
			for _, p := range ranks {
				res, dur, err := distRun(p, w.N, w.Edges, cfg)
				if err != nil {
					return nil, err
				}
				t.AddRow(w.Name, cfg.VariantName(), fmt.Sprintf("%d", p),
					fmt.Sprintf("%.3f", dur.Seconds()),
					fmt.Sprintf("%d", res.TotalIterations),
					fmt.Sprintf("%d", len(res.Phases)),
					fmt.Sprintf("%.4f", res.Modularity),
					fmt.Sprintf("%.2f", float64(res.Traffic.TotalBytes())/1e6))
			}
		}
	}
	t.Notes = append(t.Notes,
		"paper: 16–4096 processes of NERSC Cori; ET/ETC fastest for most inputs (Table IV summarizes the winners)",
		"single-core host: compare variants at fixed rank count; rank axis shows communication growth",
	)
	return t, nil
}

// Fig4 renders the weak-scaling series measured by Table5.
//
// Expected shape (paper): near-constant execution time as graph size and
// rank count grow together (on a real multi-node machine).
func Fig4(points []WeakScalePoint) *Table {
	t := &Table{
		ID:     "Fig. 4",
		Title:  "Weak scaling on SSCA#2 (Baseline)",
		Header: []string{"ranks", "|V|", "|E|", "time (s)", "time/rank-normalized", "iters"},
	}
	if len(points) == 0 {
		return t
	}
	base := points[0].Seconds
	for _, pt := range points {
		norm := pt.Seconds / (base * float64(pt.Ranks))
		t.AddRow(fmt.Sprintf("%d", pt.Ranks), fmt.Sprintf("%d", pt.Vertices), fmt.Sprintf("%d", pt.Edges),
			fmt.Sprintf("%.3f", pt.Seconds), fmt.Sprintf("%.2f", norm), fmt.Sprintf("%d", pt.Iterations))
	}
	t.Notes = append(t.Notes,
		"paper: flat curves on 1–512 processes (time constant as work/process is fixed)",
		"on one core, total work grows with ranks; the rank-normalized column recovers the flat weak-scaling shape",
	)
	return t
}

// ConvergenceVariants is the Figs. 5–6 variant set.
func ConvergenceVariants() []core.Config {
	return []core.Config{
		core.Baseline(),
		core.ET(0.25), core.ET(0.75),
		core.ETC(0.25), core.ETC(0.75),
	}
}

// Fig5and6 reproduces the convergence-characteristics figures: per-phase
// modularity growth and iterations per phase for the ET/ETC variants, on a
// banded mesh (Fig. 5: nlpkkt240) and a power-law web graph (Fig. 6:
// web-cc12-PayLevelDomain).
//
// Expected shape (paper): on the banded input ET(0.25) converges in fewer
// phases than ET(0.75) (aggressive deactivation starves moves and stretches
// convergence); on the power-law web input the ordering reverses; the two
// ETC variants behave almost identically because the 90%-inactive exit
// dominates the τ test.
func Fig5and6(s Scale, p int) (*Table, *Table, error) {
	mn, me := gen.Grid2D(100*s.factor(), 100, true)
	mesh := Workload{Name: "mesh-nlpkkt", PaperGraph: "nlpkkt240 (401.2M edges)", N: mn, Edges: me}

	wn, we, err := gen.RMAT(rmScale(12, s.factor()), 8, 0.65, 0.15, 0.15, 0.05, 105)
	if err != nil {
		return nil, nil, err
	}
	web := Workload{Name: "rmat-webcc12", PaperGraph: "web-cc12-PayLevelDomain (1.2B edges)", N: wn, Edges: we}

	mk := func(id string, w Workload) (*Table, error) {
		t := &Table{
			ID:     id,
			Title:  fmt.Sprintf("Convergence characteristics of %s (as %s) on %d ranks", w.Name, w.PaperGraph, p),
			Header: []string{"variant", "phase", "iterations", "modularity", "inactive", "exit", "Q trajectory", "moves/iter"},
		}
		for _, cfg := range ConvergenceVariants() {
			res, _, err := distRun(p, w.N, w.Edges, cfg)
			if err != nil {
				return nil, err
			}
			for i, ph := range res.Phases {
				t.AddRow(cfg.VariantName(), fmt.Sprintf("%d", i),
					fmt.Sprintf("%d", ph.Iterations), fmt.Sprintf("%.4f", ph.Modularity),
					fmt.Sprintf("%.0f%%", ph.InactiveFrac*100), string(ph.Exit),
					sparkline(ph.QTrajectory), movesSummary(ph.MovesTrajectory))
			}
		}
		return t, nil
	}
	t5, err := mk("Fig. 5", mesh)
	if err != nil {
		return nil, nil, err
	}
	t5.Notes = append(t5.Notes,
		"paper: ET(0.25) beats ET(0.75) here — ET(0.75) needs 2.6x the phases; ETC(0.25) ≈ ETC(0.75)")
	t6, err := mk("Fig. 6", web)
	if err != nil {
		return nil, nil, err
	}
	t6.Notes = append(t6.Notes,
		"paper: converse ordering — ET(0.75) is 16% faster than ET(0.25) at a 4% modularity cost")
	return t5, t6, nil
}

// movesSummary compresses a per-iteration migration series to
// first→mid→last, the §IV-B decay at a glance.
func movesSummary(ms []int64) string {
	switch len(ms) {
	case 0:
		return "-"
	case 1:
		return fmt.Sprintf("%d", ms[0])
	case 2:
		return fmt.Sprintf("%d→%d", ms[0], ms[1])
	default:
		return fmt.Sprintf("%d→%d→%d", ms[0], ms[len(ms)/2], ms[len(ms)-1])
	}
}

// sparkline renders a modularity trajectory compactly.
func sparkline(qs []float64) string {
	if len(qs) == 0 {
		return "-"
	}
	parts := make([]string, 0, len(qs))
	for _, q := range qs {
		parts = append(parts, fmt.Sprintf("%.3f", q))
	}
	if len(parts) > 8 {
		head := strings.Join(parts[:4], "→")
		tail := strings.Join(parts[len(parts)-2:], "→")
		return head + "→…→" + tail
	}
	return strings.Join(parts, "→")
}

// Profile reproduces the §V-A breakdown: where the Baseline run spends its
// time on the friendster analogue.
//
// Expected shape (paper, 256 procs): 98% in the Louvain iterations — ~34%
// communicating community information, ~40% in the modularity allreduce,
// ~22% local compute — 1% rebuild, 1% input I/O.
func Profile(s Scale, p int) (*Table, error) {
	w := FriendsterLike(s)
	res, dur, err := distRun(p, w.N, w.Edges, core.Baseline())
	if err != nil {
		return nil, err
	}
	steps := res.Steps
	t := &Table{
		ID:     "Profile (§V-A)",
		Title:  fmt.Sprintf("Baseline time breakdown on %s, p=%d", w.Name, p),
		Header: []string{"step", "time (s)", "share"},
	}
	total := dur.Seconds()
	add := func(name string, sec float64) {
		t.AddRow(name, fmt.Sprintf("%.3f", sec), fmt.Sprintf("%.0f%%", 100*sec/total))
	}
	add("ghost vertex exchange", steps.GhostComm.Seconds())
	add("community info + updates", steps.CommunityComm.Seconds())
	add("modularity/control allreduce", steps.Allreduce.Seconds())
	add("local compute (ΔQ sweeps)", steps.Compute.Seconds())
	add("graph rebuild", steps.Rebuild.Seconds())
	other := total - steps.GhostComm.Seconds() - steps.CommunityComm.Seconds() -
		steps.Allreduce.Seconds() - steps.Compute.Seconds() - steps.Rebuild.Seconds()
	add("other (setup, gather)", other)
	t.Notes = append(t.Notes,
		"paper (256 procs, HPCToolkit): 34% community communication, 40% allreduce, 22% compute, 1% rebuild, 1% I/O",
		fmt.Sprintf("traffic: %.2f MB point-to-point + %.2f MB collective payload at rank 0",
			float64(res.Traffic.SentBytes)/1e6, float64(res.Traffic.CollBytes)/1e6),
	)
	return t, nil
}
