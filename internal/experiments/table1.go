package experiments

import (
	"fmt"
	"time"

	"distlouvain/internal/gen"
	"distlouvain/internal/graph"
	"distlouvain/internal/shared"
)

// Table1 reproduces the paper's Table I: the adaptive early-termination α
// sweep on the shared-memory multithreaded implementation, over a
// small-world (CNR-like) and a banded (Channel-like) input. Columns per
// input: modularity, wall time, total iterations.
//
// Expected shape (paper): as α rises 0→1 iterations and time fall sharply —
// mildly on the small-world input (paper: 5.42s→2.25s, ~2.4x) and
// dramatically on the banded input (paper: 100.82s→1.73s, ~58x) — while
// modularity stays flat to the second decimal.
func Table1(s Scale, threads int) *Table {
	cnr := CNRLike(s)
	channel := ChannelLike(s)
	gCNR := gen.Build(cnr.N, cnr.Edges)
	gChan := gen.Build(channel.N, channel.Edges)

	t := &Table{
		ID:     "Table I",
		Title:  "Early-termination α sweep (shared-memory implementation)",
		Header: []string{"alpha", "CNR Q", "CNR time", "CNR iters", "Channel Q", "Channel time", "Channel iters"},
	}
	alphas := []float64{1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0.0}
	type row struct {
		q     float64
		dur   time.Duration
		iters int
	}
	runOne := func(g *graph.CSR, alpha float64) row {
		start := time.Now()
		res := shared.Run(g, shared.Options{Threads: threads, Alpha: alpha, Seed: 42})
		return row{q: res.Modularity, dur: time.Since(start), iters: res.TotalIterations}
	}
	var base0, base1 row
	var top0, top1 row
	for _, a := range alphas {
		r0 := runOne(gCNR, a)
		r1 := runOne(gChan, a)
		if a == 0 {
			base0, base1 = r0, r1
		}
		if a == 1 {
			top0, top1 = r0, r1
		}
		t.AddRow(
			fmt.Sprintf("%.1f", a),
			fmt.Sprintf("%.5f", r0.q), fmtDur(r0.dur), fmt.Sprintf("%d", r0.iters),
			fmt.Sprintf("%.5f", r1.q), fmtDur(r1.dur), fmt.Sprintf("%d", r1.iters),
		)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("inputs: %s as CNR, %s as Channel (scaled-down analogues)", cnr.Name, channel.Name),
		fmt.Sprintf("measured speedup α=0→1: CNR %.2fx (paper 2.41x), Channel %.2fx (paper 58.27x)",
			safeRatio(base0.dur, top0.dur), safeRatio(base1.dur, top1.dur)),
		fmt.Sprintf("measured ΔQ α=0→1: CNR %+.5f (paper -0.00021), Channel %+.5f (paper -0.00055)",
			top0.q-base0.q, top1.q-base1.q),
		"paper ran 8 Xeon cores on 3.2M/42.7M-edge inputs; this run uses synthetic analogues on one host",
		"expected shape: the banded input gains far more from ET than the small-world input; "+
			"at laptop scale the CNR analogue converges in ~30 baseline iterations (paper: 63), "+
			"leaving little for ET to save, so its measured speedup compresses toward 1x",
	)
	return t
}

func safeRatio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}
