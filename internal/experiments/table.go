package experiments

import (
	"fmt"
	"strings"
)

// Table is the rendered form of one experiment, printable as aligned text
// or GitHub markdown.
type Table struct {
	ID     string // e.g. "Table I", "Fig. 3"
	Title  string
	Header []string
	Rows   [][]string
	// Notes carry the paper-vs-measured commentary (expected shape,
	// scale substitutions, caveats).
	Notes []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row formatting each value with %v (floats pre-formatted
// by the caller).
func (t *Table) AddRowf(values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.4f", x)
		default:
			cells[i] = fmt.Sprintf("%v", x)
		}
	}
	t.Rows = append(t.Rows, cells)
}

// Text renders the table with aligned columns.
func (t *Table) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	b.WriteByte('\n')
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "> %s\n", n)
	}
	b.WriteByte('\n')
	return b.String()
}
