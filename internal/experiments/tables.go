package experiments

import (
	"fmt"
	"sort"
	"time"

	"distlouvain/internal/core"
	"distlouvain/internal/gen"
	"distlouvain/internal/graph"
	"distlouvain/internal/seq"
	"distlouvain/internal/shared"
)

// distRun runs one distributed configuration over in-process ranks and
// returns rank 0's result plus wall time.
func distRun(p int, n int64, edges []graph.RawEdge, cfg core.Config) (*core.Result, time.Duration, error) {
	start := time.Now()
	res, err := core.RunOnEdges(p, n, edges, cfg)
	return res, time.Since(start), err
}

// distRunMedian repeats distRun reps times and returns the run with the
// median wall time, damping scheduler noise in the sub-second timing
// comparisons (Tables IV and VI).
func distRunMedian(reps, p int, n int64, edges []graph.RawEdge, cfg core.Config) (*core.Result, time.Duration, error) {
	type sample struct {
		res *core.Result
		dur time.Duration
	}
	samples := make([]sample, 0, reps)
	for i := 0; i < reps; i++ {
		res, dur, err := distRun(p, n, edges, cfg)
		if err != nil {
			return nil, 0, err
		}
		samples = append(samples, sample{res, dur})
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].dur < samples[j].dur })
	mid := samples[len(samples)/2]
	return mid.res, mid.dur, nil
}

// Table2 reproduces Table II: the evaluation graph set with vertex/edge
// counts and the serial (1-thread) modularity, in ascending edge order.
//
// Expected shape (paper): banded/mesh graphs score very high (0.94–0.99),
// webs high (0.67–0.99), social networks moderate (0.47–0.62).
func Table2(s Scale) (*Table, error) {
	t := &Table{
		ID:     "Table II",
		Title:  "Test graphs (synthetic analogues) with serial modularity",
		Header: []string{"graph", "stands for", "character", "|V|", "|E|", "Modularity"},
	}
	for _, w := range TestGraphs(s) {
		g := gen.Build(w.N, w.Edges)
		st := graph.ComputeStats(g)
		res := seq.Run(g, seq.Options{})
		t.AddRow(w.Name, w.PaperGraph, w.Character,
			fmt.Sprintf("%d", st.Vertices), fmt.Sprintf("%d", st.UndirEdges),
			fmt.Sprintf("%.3f", res.Modularity))
	}
	t.Notes = append(t.Notes,
		"paper graphs span 42.7M–3.3B edges; analogues are scaled to one host",
		"expected shape: banded/mesh ≥ small-world/web > power-law social (holds per the Modularity column)",
	)
	return t, nil
}

// Table3 reproduces Table III: distributed vs shared memory on one node as
// concurrency grows, on the friendster analogue.
//
// Expected shape (paper): the distributed version pays a constant-factor
// overhead versus pure shared memory at equal concurrency (paper: ~2.3x at
// 32 cores) but scales further with rank count.
func Table3(s Scale) (*Table, error) {
	w := FriendsterLike(s)
	g := gen.Build(w.N, w.Edges)
	t := &Table{
		ID:     "Table III",
		Title:  "Distributed vs shared memory runtime on one host (friendster analogue)",
		Header: []string{"concurrency", "distributed (s)", "distributed Q", "shared (s)", "shared Q"},
	}
	for _, c := range []int{1, 2, 4, 8} {
		cfg := core.Baseline()
		dres, ddur, err := distRun(c, w.N, w.Edges, cfg)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		sres := sharedRun(g, c)
		sdur := time.Since(start)
		t.AddRow(fmt.Sprintf("%d", c),
			fmt.Sprintf("%.3f", ddur.Seconds()), fmt.Sprintf("%.4f", dres.Modularity),
			fmt.Sprintf("%.3f", sdur.Seconds()), fmt.Sprintf("%.4f", sres))
	}
	t.Notes = append(t.Notes,
		"paper: 4–64 threads of one Cori node, distributed ~2.3x slower than shared at full node; modularity difference under 1%",
		"single-core host: concurrency columns measure overhead shape, not parallel speedup",
	)
	return t, nil
}

// Table4 reproduces Table IV: for each test graph, the variant yielding the
// best runtime over the Baseline and its speedup.
//
// Expected shape (paper): ET/ETC win on most graphs (speedups 1.8x–46x);
// Threshold Cycling wins on inputs that run few phases.
func Table4(s Scale, p int) (*Table, error) {
	t := &Table{
		ID:     "Table IV",
		Title:  fmt.Sprintf("Best variant vs Baseline (p=%d ranks)", p),
		Header: []string{"graph", "baseline (s)", "best (s)", "speedup", "version", "ΔQ vs baseline"},
	}
	variants := []core.Config{
		core.ThresholdCycling(),
		core.ET(0.25), core.ET(0.75),
		core.ETC(0.25), core.ETC(0.75),
	}
	for _, w := range TestGraphs(s) {
		base, bdur, err := distRunMedian(3, p, w.N, w.Edges, core.Baseline())
		if err != nil {
			return nil, err
		}
		bestDur := bdur
		bestName := "Baseline"
		bestQ := base.Modularity
		for _, cfg := range variants {
			res, dur, err := distRunMedian(3, p, w.N, w.Edges, cfg)
			if err != nil {
				return nil, err
			}
			if dur < bestDur {
				bestDur = dur
				bestName = cfg.VariantName()
				bestQ = res.Modularity
			}
		}
		t.AddRow(w.Name,
			fmt.Sprintf("%.3f", bdur.Seconds()), fmt.Sprintf("%.3f", bestDur.Seconds()),
			fmt.Sprintf("%.2fx", safeRatio(bdur, bestDur)), bestName,
			fmt.Sprintf("%+.4f", bestQ-base.Modularity))
	}
	t.Notes = append(t.Notes,
		"paper (16–128 procs): best speedups 1.8x–46.18x, ET/ETC best for 10 of 12 graphs, TC for 2",
	)
	return t, nil
}

func sharedRun(g *graph.CSR, threads int) float64 {
	return shared.Run(g, shared.Options{Threads: threads}).Modularity
}

// Table5 reproduces Table V: the SSCA#2 weak-scaling configurations with
// their modularities.
//
// Expected shape (paper): modularity ≈ 0.9999 at every size — the clique
// structure is recovered regardless of scale — and identical convergence
// behaviour across sizes.
func Table5(s Scale) (*Table, []WeakScalePoint, error) {
	t := &Table{
		ID:     "Table V",
		Title:  "SSCA#2 weak-scaling graphs (GTgraph model)",
		Header: []string{"name", "|V|", "|E|", "Modularity", "ranks", "phases", "iters", "time (s)"},
	}
	verticesPerRank := int64(4000) * s.factor()
	var points []WeakScalePoint
	for i, p := range []int{1, 2, 4, 8} {
		opt := gen.SSCA2ForScale(int64(p), verticesPerRank, 500+uint64(i))
		n, edges, _, err := gen.SSCA2(opt)
		if err != nil {
			return nil, nil, err
		}
		res, dur, err := distRun(p, n, edges, core.Baseline())
		if err != nil {
			return nil, nil, err
		}
		g := gen.Build(n, edges)
		st := graph.ComputeStats(g)
		t.AddRow(fmt.Sprintf("Graph#%d", i+1),
			fmt.Sprintf("%d", st.Vertices), fmt.Sprintf("%d", st.UndirEdges),
			fmt.Sprintf("%.6f", res.Modularity), fmt.Sprintf("%d", p),
			fmt.Sprintf("%d", len(res.Phases)), fmt.Sprintf("%d", res.TotalIterations),
			fmt.Sprintf("%.3f", dur.Seconds()))
		points = append(points, WeakScalePoint{Ranks: p, Vertices: st.Vertices, Edges: st.UndirEdges, Seconds: dur.Seconds(), Iterations: res.TotalIterations})
	}
	t.Notes = append(t.Notes,
		"paper: 5M–150M vertices on 1–512 processes, modularity 0.99998+ everywhere, identical convergence criteria",
		"work per rank is fixed; a multi-core host would show the paper's flat weak-scaling curve (Fig. 4)",
	)
	return t, points, nil
}

// WeakScalePoint is one Fig. 4 sample.
type WeakScalePoint struct {
	Ranks      int
	Vertices   int64
	Edges      int64
	Seconds    float64
	Iterations int
}

// Table6 reproduces Table VI: ET(0.25) alone vs ET(0.25)+Threshold Cycling
// on the friendster analogue across rank counts.
//
// Expected shape (paper): adding TC buys ~10–12% at every scale.
func Table6(s Scale) (*Table, error) {
	// Use the next scale up: Table VI compares end-to-end runtimes, which
	// need enough phases at the cycled thresholds for TC to matter (the
	// paper ran its largest input here).
	w := FriendsterLike(s + 1)
	t := &Table{
		ID:     "Table VI",
		Title:  "ET(0.25) vs ET(0.25)+Threshold Cycling (friendster analogue)",
		Header: []string{"ranks", "ET(0.25) (s)", "ET(0.25)+TC (s)", "gain", "ΔQ"},
	}
	for _, p := range []int{1, 2, 4, 8} {
		et, etd, err := distRunMedian(3, p, w.N, w.Edges, core.ET(0.25))
		if err != nil {
			return nil, err
		}
		tc, tcd, err := distRunMedian(3, p, w.N, w.Edges, core.ETWithTC(0.25))
		if err != nil {
			return nil, err
		}
		gain := (1 - tcd.Seconds()/etd.Seconds()) * 100
		t.AddRow(fmt.Sprintf("%d", p),
			fmt.Sprintf("%.3f", etd.Seconds()), fmt.Sprintf("%.3f", tcd.Seconds()),
			fmt.Sprintf("%+.0f%%", gain), fmt.Sprintf("%+.4f", tc.Modularity-et.Modularity))
	}
	t.Notes = append(t.Notes, "paper (256–4096 procs): TC adds 10–12% at every scale")
	return t, nil
}

// Table7 reproduces Table VII: ground-truth quality on LFR benchmarks of
// growing size.
//
// Expected shape (paper): precision 0.90–0.98 and F-score 0.94–0.99,
// decreasing slowly with size; recall 1.0 in every case.
func Table7(s Scale, p int) (*Table, error) {
	t := &Table{
		ID:     "Table VII",
		Title:  fmt.Sprintf("LFR ground-truth quality (p=%d ranks)", p),
		Header: []string{"|V|", "|E|", "Precision", "Recall", "F-score", "NMI"},
	}
	sizes := []int64{5000, 10000, 20000, 40000, 80000}
	for i, n := range sizes {
		n = n * s.factor()
		gn, edges, truth, err := gen.LFR(gen.DefaultLFR(n, 0.2, 700+uint64(i)))
		if err != nil {
			return nil, err
		}
		res, _, err := distRun(p, gn, edges, core.Baseline())
		if err != nil {
			return nil, err
		}
		score, err := compareQuality(res.GlobalComm, truth)
		if err != nil {
			return nil, err
		}
		g := gen.Build(gn, edges)
		st := graph.ComputeStats(g)
		t.AddRow(fmt.Sprintf("%d", st.Vertices), fmt.Sprintf("%d", st.UndirEdges),
			fmt.Sprintf("%.4f", score.Precision), fmt.Sprintf("%.4f", score.Recall),
			fmt.Sprintf("%.4f", score.FScore), fmt.Sprintf("%.4f", score.NMI))
	}
	t.Notes = append(t.Notes,
		"paper (350K–2M vertices): precision 0.896–0.982, F-score 0.945–0.990, recall 1.0 everywhere",
		"quality gathering uses the same root-gather collectives as the paper's assessment mode",
	)
	return t, nil
}
