package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"distlouvain/internal/core"
	"distlouvain/internal/dgraph"
	"distlouvain/internal/gen"
	"distlouvain/internal/gio"
	"distlouvain/internal/mpi"
	"distlouvain/internal/obsv"
)

// BenchSchemaVersion identifies the BENCH_paperbench.json layout. Bump it
// when a field changes meaning; CompareBench refuses mismatched versions so
// a stale baseline fails loudly instead of comparing wrong columns.
const BenchSchemaVersion = 3

// BenchPhase is one phase row of a workload's rank-0 timing breakdown
// (obsv.BuildReport categories, §V-A). The byte columns (schema v2) are the
// per-category payload volumes of the same report: unlike the millisecond
// columns they are deterministic, so CompareBench gates on them — a protocol
// change that regrows the wire shows up as a byte regression in CI. The
// per-iteration vertex columns (schema v3) are the globally-allreduced
// frontier trajectories of the run: touched is how many vertices the sweeps
// actually evaluated, frontier how many the active set offered them (equal
// to the phase's vertex count every iteration when the frontier is off).
type BenchPhase struct {
	Phase           int     `json:"phase"`
	Iterations      int     `json:"iterations"`
	TotalMS         float64 `json:"total_ms"`
	ComputeMS       float64 `json:"compute_ms"`
	P2PMS           float64 `json:"p2p_ms"`
	CollectiveMS    float64 `json:"collective_ms"`
	CoarsenMS       float64 `json:"coarsen_ms"`
	P2PBytes        int64   `json:"p2p_bytes"`
	CollBytes       int64   `json:"coll_bytes"`
	TouchedPerIter  []int64 `json:"touched_per_iter,omitempty"`
	FrontierPerIter []int64 `json:"frontier_per_iter,omitempty"`
}

// BenchWorkload records one full distributed run of a testbed graph.
type BenchWorkload struct {
	Graph      string       `json:"graph"`
	Vertices   int64        `json:"vertices"`
	Edges      int          `json:"edges"`
	Ranks      int          `json:"ranks"`
	Threads    int          `json:"threads"`
	Modularity float64      `json:"modularity"`
	Phases     int          `json:"phases"`
	Iterations int          `json:"iterations"`
	WallMS     float64      `json:"wall_ms"`
	Breakdown  []BenchPhase `json:"breakdown"`
}

// BenchKernel records one isolated hot-kernel measurement
// (core.KernelBench via testing.Benchmark).
type BenchKernel struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
}

// BenchFrontier records one frontier-gate measurement (schema v3): an
// ET(0.25) run with the frontier on against the same run with the full
// scan, on a mesh workload. SweepVisited sums the per-iteration active-set
// sizes the frontier-driven sweeps walked; FullScanVisited is the same sum
// for the full scan, which walks every local vertex each iteration just to
// check the activity coin. Touched counts actual ΔQ evaluations on each
// side. The two runs are required to be bit-identical in modularity, so the
// columns measure pure sweep-loop savings.
type BenchFrontier struct {
	Graph           string  `json:"graph"`
	Ranks           int     `json:"ranks"`
	Threads         int     `json:"threads"`
	Modularity      float64 `json:"modularity"`
	SweepVisited    int64   `json:"sweep_visited"`
	FullScanVisited int64   `json:"full_scan_visited"`
	Touched         int64   `json:"touched"`
	FullScanTouched int64   `json:"full_scan_touched"`
}

// BenchReport is the JSON document `paperbench -exp bench -json` emits and
// `make bench-record` commits as BENCH_paperbench.json. Timing fields are
// machine-dependent context; the modularity column is the deterministic
// quantity the CI smoke gate compares.
type BenchReport struct {
	SchemaVersion int             `json:"schema_version"`
	Scale         string          `json:"scale"`
	GoVersion     string          `json:"go_version"`
	MaxProcs      int             `json:"gomaxprocs"`
	Workloads     []BenchWorkload `json:"workloads"`
	FrontierGate  []BenchFrontier `json:"frontier_gate,omitempty"`
	Kernels       []BenchKernel   `json:"kernels,omitempty"`
}

// benchTracedRun is distRun with a tracer per rank; it returns rank 0's
// result, rank 0's timing report and the wall time. cfg selects the variant
// (Bench uses the baseline; the wire-diet tests pass pinned configs).
func benchTracedRun(p, threads int, w Workload, cfg core.Config) (*core.Result, *obsv.Report, time.Duration, error) {
	tracers := make([]*obsv.Tracer, p)
	for r := range tracers {
		tracers[r] = obsv.NewTracer(r, obsv.DefaultCapacity)
	}
	cfg.Threads = threads
	var root *core.Result
	start := time.Now()
	err := mpi.Run(p, func(c *mpi.Comm) error {
		tr := tracers[c.Rank()]
		c.SetTracer(tr)
		rcfg := cfg
		rcfg.Tracer = tr
		lo, hi := gio.SegmentRange(int64(len(w.Edges)), c.Rank(), p)
		dg, err := dgraph.Build(c, w.N, w.Edges[lo:hi], nil)
		if err != nil {
			return err
		}
		res, err := core.Run(dg, rcfg)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			root = res
		}
		return nil
	})
	if err != nil {
		return nil, nil, 0, err
	}
	return root, obsv.BuildReport(tracers[0].Snapshot()), time.Since(start), nil
}

// Bench runs the benchmark baseline: one traced distributed run per
// workload, plus (when kernels is true) the four isolated hot-kernel
// measurements — flat and map-reference variants of the ΔQ sweep and the
// coarse-arc aggregation.
func Bench(s Scale, p, threads int, ws []Workload, kernels bool) (*BenchReport, error) {
	rep := &BenchReport{
		SchemaVersion: BenchSchemaVersion,
		Scale:         scaleName(s),
		GoVersion:     runtime.Version(),
		MaxProcs:      runtime.GOMAXPROCS(0),
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	for _, w := range ws {
		res, timing, wall, err := benchTracedRun(p, threads, w, core.Baseline())
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", w.Name, err)
		}
		bw := BenchWorkload{
			Graph:      w.Name,
			Vertices:   w.N,
			Edges:      len(w.Edges),
			Ranks:      p,
			Threads:    threads,
			Modularity: res.Modularity,
			Phases:     len(res.Phases),
			Iterations: res.TotalIterations,
			WallMS:     ms(wall),
		}
		for _, pb := range timing.Phases {
			bp := BenchPhase{
				Phase:        pb.Phase,
				Iterations:   pb.Iterations,
				TotalMS:      ms(pb.Total),
				ComputeMS:    ms(pb.Cat[obsv.CatCompute]),
				P2PMS:        ms(pb.Cat[obsv.CatP2P]),
				CollectiveMS: ms(pb.Cat[obsv.CatCollective]),
				CoarsenMS:    ms(pb.Cat[obsv.CatCoarsen]),
				P2PBytes:     pb.Bytes[obsv.CatP2P],
				CollBytes:    pb.Bytes[obsv.CatCollective],
			}
			if pb.Phase >= 0 && pb.Phase < len(res.Phases) {
				bp.TouchedPerIter = res.Phases[pb.Phase].TouchedTrajectory
				bp.FrontierPerIter = res.Phases[pb.Phase].FrontierTrajectory
			}
			bw.Breakdown = append(bw.Breakdown, bp)
		}
		rep.Workloads = append(rep.Workloads, bw)
	}
	fg, err := benchFrontierGate(s, p, threads)
	if err != nil {
		return nil, err
	}
	rep.FrontierGate = fg
	if kernels {
		ks, err := benchKernels(threads)
		if err != nil {
			return nil, err
		}
		rep.Kernels = ks
	}
	return rep, nil
}

// frontierGateWorkloads are the recorded mesh workloads of the frontier
// gate: the banded channel analogues whose boundary-crawl convergence the
// ET heuristic (and on top of it, the frontier) targets. Two sizes, so the
// gate covers both a short and a long crawl.
func frontierGateWorkloads(s Scale) []Workload {
	f := s.factor()
	n, e := gen.BandedMesh(2000*f, 6)
	small := Workload{Name: "channel-like-sm", PaperGraph: "Channel (4.8M vertices, 42.7M edges)", Character: "banded", N: n, Edges: e}
	return []Workload{small, ChannelLike(s)}
}

// benchFrontierGate runs the schema-v3 frontier measurement: for each mesh
// workload, one ET(0.25) run with the default frontier and one with the
// full scan. The two must agree bitwise on modularity (the differential
// suite's invariant, re-proven on the recorded inputs); CompareBench then
// gates that the frontier's visited count stays ≥30% below the full scan's.
func benchFrontierGate(s Scale, p, threads int) ([]BenchFrontier, error) {
	sums := func(res *core.Result) (visited, touched int64) {
		for _, st := range res.Phases {
			for i := range st.TouchedTrajectory {
				touched += st.TouchedTrajectory[i]
				visited += st.FrontierTrajectory[i]
			}
		}
		return
	}
	var out []BenchFrontier
	for _, w := range frontierGateWorkloads(s) {
		on := core.ET(0.25)
		fres, _, _, err := benchTracedRun(p, threads, w, on)
		if err != nil {
			return nil, fmt.Errorf("bench frontier %s: %w", w.Name, err)
		}
		off := core.ET(0.25)
		off.Frontier = core.FrontierOff
		sres, _, _, err := benchTracedRun(p, threads, w, off)
		if err != nil {
			return nil, fmt.Errorf("bench frontier %s (full scan): %w", w.Name, err)
		}
		if fres.Modularity != sres.Modularity {
			return nil, fmt.Errorf("bench frontier %s: frontier run modularity %v != full scan %v (bit-identity broken)",
				w.Name, fres.Modularity, sres.Modularity)
		}
		fv, ft := sums(fres)
		sv, st := sums(sres)
		out = append(out, BenchFrontier{
			Graph: w.Name, Ranks: p, Threads: threads,
			Modularity:   fres.Modularity,
			SweepVisited: fv, FullScanVisited: sv,
			Touched: ft, FullScanTouched: st,
		})
	}
	return out, nil
}

// benchKernels measures the hot kernels in isolation on a fixed synthetic
// input (independent of Scale so kernel numbers stay comparable across
// baselines recorded at different scales).
func benchKernels(threads int) ([]BenchKernel, error) {
	n, edges := gen.ErdosRenyi(5000, 40000, 13)
	specs := []struct {
		name   string
		ref    bool
		coarse bool
	}{
		{"sweep/flat", false, false},
		{"sweep/map", true, false},
		{"coarse-arcs/flat", false, true},
		{"coarse-arcs/map", true, true},
	}
	out := make([]BenchKernel, 0, len(specs))
	for _, spec := range specs {
		kb, err := core.NewKernelBench(n, edges, threads, spec.ref)
		if err != nil {
			return nil, fmt.Errorf("bench kernel %s: %w", spec.name, err)
		}
		op := kb.Sweep
		if spec.coarse {
			op = kb.CoarseArcs
		}
		op() // settle steady-state capacities before timing
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				op()
			}
		})
		out = append(out, BenchKernel{
			Name:        spec.name,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		kb.Close()
	}
	return out, nil
}

func scaleName(s Scale) string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	}
	return fmt.Sprintf("scale(%d)", int(s))
}

// LoadBenchReport reads and strictly decodes a recorded baseline; unknown
// fields are an error, so the file doubles as a schema check.
func LoadBenchReport(path string) (*BenchReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var rep BenchReport
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("bench baseline %s: %w", path, err)
	}
	return &rep, nil
}

// CompareBench gates a fresh report against a recorded baseline: same
// schema, every baseline workload present with matching shape (ranks,
// threads, input size), modularity within tol, and per-workload p2p /
// collective payload bytes within byteTol (relative growth) of the
// baseline. Byte counts are deterministic for a fixed protocol, so byteTol
// needs only enough slack for benign drift (an extra iteration's worth on
// a borderline workload); a workload whose baseline recorded zero bytes in
// a direction is not gated in that direction. Timing fields are
// deliberately not compared — they describe the recording machine.
func CompareBench(cur, base *BenchReport, tol, byteTol float64) error {
	if cur.SchemaVersion != base.SchemaVersion {
		return fmt.Errorf("bench schema version %d, baseline has %d (re-record the baseline)", cur.SchemaVersion, base.SchemaVersion)
	}
	if cur.Scale != base.Scale {
		return fmt.Errorf("bench scale %q, baseline recorded at %q", cur.Scale, base.Scale)
	}
	curBy := make(map[string]BenchWorkload, len(cur.Workloads))
	for _, w := range cur.Workloads {
		curBy[w.Graph] = w
	}
	for _, want := range base.Workloads {
		got, ok := curBy[want.Graph]
		if !ok {
			return fmt.Errorf("bench workload %s missing from current run", want.Graph)
		}
		if got.Ranks != want.Ranks || got.Threads != want.Threads {
			return fmt.Errorf("bench %s ran at p=%d t=%d, baseline at p=%d t=%d",
				want.Graph, got.Ranks, got.Threads, want.Ranks, want.Threads)
		}
		if got.Vertices != want.Vertices || got.Edges != want.Edges {
			return fmt.Errorf("bench %s input is %dv/%de, baseline recorded %dv/%de (generator drift)",
				want.Graph, got.Vertices, got.Edges, want.Vertices, want.Edges)
		}
		if got.Phases == 0 || got.Iterations == 0 {
			return fmt.Errorf("bench %s did no work (%d phases, %d iterations)", want.Graph, got.Phases, got.Iterations)
		}
		if d := math.Abs(got.Modularity - want.Modularity); d > tol {
			return fmt.Errorf("bench %s modularity %.6f deviates from baseline %.6f by %.6f (tol %.6f)",
				want.Graph, got.Modularity, want.Modularity, d, tol)
		}
		gotP2P, gotColl := sumBytes(got.Breakdown)
		wantP2P, wantColl := sumBytes(want.Breakdown)
		if wantP2P > 0 && float64(gotP2P) > float64(wantP2P)*(1+byteTol) {
			return fmt.Errorf("bench %s p2p payload %dB exceeds baseline %dB by more than %.1f%% (wire regression)",
				want.Graph, gotP2P, wantP2P, 100*byteTol)
		}
		if wantColl > 0 && float64(gotColl) > float64(wantColl)*(1+byteTol) {
			return fmt.Errorf("bench %s collective payload %dB exceeds baseline %dB by more than %.1f%% (wire regression)",
				want.Graph, gotColl, wantColl, 100*byteTol)
		}
	}
	// Frontier gate (schema v3): on every recorded mesh workload the
	// frontier must not regress modularity and its sweeps must visit ≥30%
	// fewer vertices than the full scan. Both sides are deterministic, so
	// the 30% floor is a property re-proven on each run, not a drift check.
	curFG := make(map[string]BenchFrontier, len(cur.FrontierGate))
	for _, g := range cur.FrontierGate {
		curFG[g.Graph] = g
	}
	for _, want := range base.FrontierGate {
		got, ok := curFG[want.Graph]
		if !ok {
			return fmt.Errorf("bench frontier gate workload %s missing from current run", want.Graph)
		}
		if d := math.Abs(got.Modularity - want.Modularity); d > tol {
			return fmt.Errorf("bench frontier %s modularity %.6f deviates from baseline %.6f by %.6f (tol %.6f)",
				want.Graph, got.Modularity, want.Modularity, d, tol)
		}
		if got.FullScanVisited == 0 {
			return fmt.Errorf("bench frontier %s full scan visited no vertices", want.Graph)
		}
		if got.SweepVisited*10 > got.FullScanVisited*7 {
			return fmt.Errorf("bench frontier %s visited %d of the full scan's %d vertices (>70%%; frontier regression)",
				want.Graph, got.SweepVisited, got.FullScanVisited)
		}
	}
	return nil
}

// sumBytes totals a workload's per-phase payload columns.
func sumBytes(phases []BenchPhase) (p2p, coll int64) {
	for _, pb := range phases {
		p2p += pb.P2PBytes
		coll += pb.CollBytes
	}
	return
}

// SumWorkloadBytes totals one workload's p2p and collective payload columns
// (the quantities CompareBench gates on).
func SumWorkloadBytes(w BenchWorkload) (p2p, coll int64) {
	return sumBytes(w.Breakdown)
}

// BenchTable renders the report for human consumption (the non-JSON mode of
// paperbench -exp bench).
func BenchTable(rep *BenchReport) *Table {
	t := &Table{
		ID:     "Bench",
		Title:  fmt.Sprintf("Benchmark baseline (scale %s, %s, GOMAXPROCS=%d)", rep.Scale, rep.GoVersion, rep.MaxProcs),
		Header: []string{"graph", "p", "threads", "Modularity", "phases", "iters", "wall"},
	}
	for _, w := range rep.Workloads {
		t.Rows = append(t.Rows, []string{
			w.Graph,
			fmt.Sprintf("%d", w.Ranks),
			fmt.Sprintf("%d", w.Threads),
			fmt.Sprintf("%.4f", w.Modularity),
			fmt.Sprintf("%d", w.Phases),
			fmt.Sprintf("%d", w.Iterations),
			fmt.Sprintf("%.0fms", w.WallMS),
		})
	}
	for _, g := range rep.FrontierGate {
		t.Rows = append(t.Rows, []string{
			"frontier:" + g.Graph,
			fmt.Sprintf("%d", g.Ranks),
			fmt.Sprintf("%d", g.Threads),
			fmt.Sprintf("%.4f", g.Modularity),
			"-", "-",
			fmt.Sprintf("visited %.0f%% of full scan", 100*float64(g.SweepVisited)/float64(g.FullScanVisited)),
		})
	}
	for _, k := range rep.Kernels {
		t.Rows = append(t.Rows, []string{
			"kernel:" + k.Name, "-", "-",
			fmt.Sprintf("%dns/op", k.NsPerOp),
			"-", "-",
			fmt.Sprintf("%dallocs", k.AllocsPerOp),
		})
	}
	return t
}
