package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"distlouvain/internal/core"
	"distlouvain/internal/dgraph"
	"distlouvain/internal/gen"
	"distlouvain/internal/gio"
	"distlouvain/internal/mpi"
	"distlouvain/internal/obsv"
)

// BenchSchemaVersion identifies the BENCH_paperbench.json layout. Bump it
// when a field changes meaning; CompareBench refuses mismatched versions so
// a stale baseline fails loudly instead of comparing wrong columns.
const BenchSchemaVersion = 2

// BenchPhase is one phase row of a workload's rank-0 timing breakdown
// (obsv.BuildReport categories, §V-A). The byte columns (schema v2) are the
// per-category payload volumes of the same report: unlike the millisecond
// columns they are deterministic, so CompareBench gates on them — a protocol
// change that regrows the wire shows up as a byte regression in CI.
type BenchPhase struct {
	Phase        int     `json:"phase"`
	Iterations   int     `json:"iterations"`
	TotalMS      float64 `json:"total_ms"`
	ComputeMS    float64 `json:"compute_ms"`
	P2PMS        float64 `json:"p2p_ms"`
	CollectiveMS float64 `json:"collective_ms"`
	CoarsenMS    float64 `json:"coarsen_ms"`
	P2PBytes     int64   `json:"p2p_bytes"`
	CollBytes    int64   `json:"coll_bytes"`
}

// BenchWorkload records one full distributed run of a testbed graph.
type BenchWorkload struct {
	Graph      string       `json:"graph"`
	Vertices   int64        `json:"vertices"`
	Edges      int          `json:"edges"`
	Ranks      int          `json:"ranks"`
	Threads    int          `json:"threads"`
	Modularity float64      `json:"modularity"`
	Phases     int          `json:"phases"`
	Iterations int          `json:"iterations"`
	WallMS     float64      `json:"wall_ms"`
	Breakdown  []BenchPhase `json:"breakdown"`
}

// BenchKernel records one isolated hot-kernel measurement
// (core.KernelBench via testing.Benchmark).
type BenchKernel struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
}

// BenchReport is the JSON document `paperbench -exp bench -json` emits and
// `make bench-record` commits as BENCH_paperbench.json. Timing fields are
// machine-dependent context; the modularity column is the deterministic
// quantity the CI smoke gate compares.
type BenchReport struct {
	SchemaVersion int             `json:"schema_version"`
	Scale         string          `json:"scale"`
	GoVersion     string          `json:"go_version"`
	MaxProcs      int             `json:"gomaxprocs"`
	Workloads     []BenchWorkload `json:"workloads"`
	Kernels       []BenchKernel   `json:"kernels,omitempty"`
}

// benchTracedRun is distRun with a tracer per rank; it returns rank 0's
// result, rank 0's timing report and the wall time. cfg selects the variant
// (Bench uses the baseline; the wire-diet tests pass pinned configs).
func benchTracedRun(p, threads int, w Workload, cfg core.Config) (*core.Result, *obsv.Report, time.Duration, error) {
	tracers := make([]*obsv.Tracer, p)
	for r := range tracers {
		tracers[r] = obsv.NewTracer(r, obsv.DefaultCapacity)
	}
	cfg.Threads = threads
	var root *core.Result
	start := time.Now()
	err := mpi.Run(p, func(c *mpi.Comm) error {
		tr := tracers[c.Rank()]
		c.SetTracer(tr)
		rcfg := cfg
		rcfg.Tracer = tr
		lo, hi := gio.SegmentRange(int64(len(w.Edges)), c.Rank(), p)
		dg, err := dgraph.Build(c, w.N, w.Edges[lo:hi], nil)
		if err != nil {
			return err
		}
		res, err := core.Run(dg, rcfg)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			root = res
		}
		return nil
	})
	if err != nil {
		return nil, nil, 0, err
	}
	return root, obsv.BuildReport(tracers[0].Snapshot()), time.Since(start), nil
}

// Bench runs the benchmark baseline: one traced distributed run per
// workload, plus (when kernels is true) the four isolated hot-kernel
// measurements — flat and map-reference variants of the ΔQ sweep and the
// coarse-arc aggregation.
func Bench(s Scale, p, threads int, ws []Workload, kernels bool) (*BenchReport, error) {
	rep := &BenchReport{
		SchemaVersion: BenchSchemaVersion,
		Scale:         scaleName(s),
		GoVersion:     runtime.Version(),
		MaxProcs:      runtime.GOMAXPROCS(0),
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	for _, w := range ws {
		res, timing, wall, err := benchTracedRun(p, threads, w, core.Baseline())
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", w.Name, err)
		}
		bw := BenchWorkload{
			Graph:      w.Name,
			Vertices:   w.N,
			Edges:      len(w.Edges),
			Ranks:      p,
			Threads:    threads,
			Modularity: res.Modularity,
			Phases:     len(res.Phases),
			Iterations: res.TotalIterations,
			WallMS:     ms(wall),
		}
		for _, pb := range timing.Phases {
			bw.Breakdown = append(bw.Breakdown, BenchPhase{
				Phase:        pb.Phase,
				Iterations:   pb.Iterations,
				TotalMS:      ms(pb.Total),
				ComputeMS:    ms(pb.Cat[obsv.CatCompute]),
				P2PMS:        ms(pb.Cat[obsv.CatP2P]),
				CollectiveMS: ms(pb.Cat[obsv.CatCollective]),
				CoarsenMS:    ms(pb.Cat[obsv.CatCoarsen]),
				P2PBytes:     pb.Bytes[obsv.CatP2P],
				CollBytes:    pb.Bytes[obsv.CatCollective],
			})
		}
		rep.Workloads = append(rep.Workloads, bw)
	}
	if kernels {
		ks, err := benchKernels(threads)
		if err != nil {
			return nil, err
		}
		rep.Kernels = ks
	}
	return rep, nil
}

// benchKernels measures the hot kernels in isolation on a fixed synthetic
// input (independent of Scale so kernel numbers stay comparable across
// baselines recorded at different scales).
func benchKernels(threads int) ([]BenchKernel, error) {
	n, edges := gen.ErdosRenyi(5000, 40000, 13)
	specs := []struct {
		name   string
		ref    bool
		coarse bool
	}{
		{"sweep/flat", false, false},
		{"sweep/map", true, false},
		{"coarse-arcs/flat", false, true},
		{"coarse-arcs/map", true, true},
	}
	out := make([]BenchKernel, 0, len(specs))
	for _, spec := range specs {
		kb, err := core.NewKernelBench(n, edges, threads, spec.ref)
		if err != nil {
			return nil, fmt.Errorf("bench kernel %s: %w", spec.name, err)
		}
		op := kb.Sweep
		if spec.coarse {
			op = kb.CoarseArcs
		}
		op() // settle steady-state capacities before timing
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				op()
			}
		})
		out = append(out, BenchKernel{
			Name:        spec.name,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		kb.Close()
	}
	return out, nil
}

func scaleName(s Scale) string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	}
	return fmt.Sprintf("scale(%d)", int(s))
}

// LoadBenchReport reads and strictly decodes a recorded baseline; unknown
// fields are an error, so the file doubles as a schema check.
func LoadBenchReport(path string) (*BenchReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var rep BenchReport
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("bench baseline %s: %w", path, err)
	}
	return &rep, nil
}

// CompareBench gates a fresh report against a recorded baseline: same
// schema, every baseline workload present with matching shape (ranks,
// threads, input size), modularity within tol, and per-workload p2p /
// collective payload bytes within byteTol (relative growth) of the
// baseline. Byte counts are deterministic for a fixed protocol, so byteTol
// needs only enough slack for benign drift (an extra iteration's worth on
// a borderline workload); a workload whose baseline recorded zero bytes in
// a direction is not gated in that direction. Timing fields are
// deliberately not compared — they describe the recording machine.
func CompareBench(cur, base *BenchReport, tol, byteTol float64) error {
	if cur.SchemaVersion != base.SchemaVersion {
		return fmt.Errorf("bench schema version %d, baseline has %d (re-record the baseline)", cur.SchemaVersion, base.SchemaVersion)
	}
	if cur.Scale != base.Scale {
		return fmt.Errorf("bench scale %q, baseline recorded at %q", cur.Scale, base.Scale)
	}
	curBy := make(map[string]BenchWorkload, len(cur.Workloads))
	for _, w := range cur.Workloads {
		curBy[w.Graph] = w
	}
	for _, want := range base.Workloads {
		got, ok := curBy[want.Graph]
		if !ok {
			return fmt.Errorf("bench workload %s missing from current run", want.Graph)
		}
		if got.Ranks != want.Ranks || got.Threads != want.Threads {
			return fmt.Errorf("bench %s ran at p=%d t=%d, baseline at p=%d t=%d",
				want.Graph, got.Ranks, got.Threads, want.Ranks, want.Threads)
		}
		if got.Vertices != want.Vertices || got.Edges != want.Edges {
			return fmt.Errorf("bench %s input is %dv/%de, baseline recorded %dv/%de (generator drift)",
				want.Graph, got.Vertices, got.Edges, want.Vertices, want.Edges)
		}
		if got.Phases == 0 || got.Iterations == 0 {
			return fmt.Errorf("bench %s did no work (%d phases, %d iterations)", want.Graph, got.Phases, got.Iterations)
		}
		if d := math.Abs(got.Modularity - want.Modularity); d > tol {
			return fmt.Errorf("bench %s modularity %.6f deviates from baseline %.6f by %.6f (tol %.6f)",
				want.Graph, got.Modularity, want.Modularity, d, tol)
		}
		gotP2P, gotColl := sumBytes(got.Breakdown)
		wantP2P, wantColl := sumBytes(want.Breakdown)
		if wantP2P > 0 && float64(gotP2P) > float64(wantP2P)*(1+byteTol) {
			return fmt.Errorf("bench %s p2p payload %dB exceeds baseline %dB by more than %.1f%% (wire regression)",
				want.Graph, gotP2P, wantP2P, 100*byteTol)
		}
		if wantColl > 0 && float64(gotColl) > float64(wantColl)*(1+byteTol) {
			return fmt.Errorf("bench %s collective payload %dB exceeds baseline %dB by more than %.1f%% (wire regression)",
				want.Graph, gotColl, wantColl, 100*byteTol)
		}
	}
	return nil
}

// sumBytes totals a workload's per-phase payload columns.
func sumBytes(phases []BenchPhase) (p2p, coll int64) {
	for _, pb := range phases {
		p2p += pb.P2PBytes
		coll += pb.CollBytes
	}
	return
}

// SumWorkloadBytes totals one workload's p2p and collective payload columns
// (the quantities CompareBench gates on).
func SumWorkloadBytes(w BenchWorkload) (p2p, coll int64) {
	return sumBytes(w.Breakdown)
}

// BenchTable renders the report for human consumption (the non-JSON mode of
// paperbench -exp bench).
func BenchTable(rep *BenchReport) *Table {
	t := &Table{
		ID:     "Bench",
		Title:  fmt.Sprintf("Benchmark baseline (scale %s, %s, GOMAXPROCS=%d)", rep.Scale, rep.GoVersion, rep.MaxProcs),
		Header: []string{"graph", "p", "threads", "Modularity", "phases", "iters", "wall"},
	}
	for _, w := range rep.Workloads {
		t.Rows = append(t.Rows, []string{
			w.Graph,
			fmt.Sprintf("%d", w.Ranks),
			fmt.Sprintf("%d", w.Threads),
			fmt.Sprintf("%.4f", w.Modularity),
			fmt.Sprintf("%d", w.Phases),
			fmt.Sprintf("%d", w.Iterations),
			fmt.Sprintf("%.0fms", w.WallMS),
		})
	}
	for _, k := range rep.Kernels {
		t.Rows = append(t.Rows, []string{
			"kernel:" + k.Name, "-", "-",
			fmt.Sprintf("%dns/op", k.NsPerOp),
			"-", "-",
			fmt.Sprintf("%dallocs", k.AllocsPerOp),
		})
	}
	return t
}
