// Package experiments implements the paper's evaluation section: one runner
// per table and figure, over laptop-scale synthetic analogues of the
// paper's datasets. cmd/paperbench drives the runners and renders their
// tables; the repository-root benchmarks wrap them in testing.B targets.
package experiments

import (
	"fmt"
	"math"

	"distlouvain/internal/gen"
	"distlouvain/internal/graph"
)

// Workload is one input graph of the evaluation testbed.
type Workload struct {
	// Name of the synthetic workload and the paper dataset it stands for.
	Name       string
	PaperGraph string
	// Character is the structural family driving expected behaviour.
	Character string // "banded", "power-law", "small-world", "lfr", "cliques"
	N         int64
	Edges     []graph.RawEdge
}

// Scale selects experiment sizes. Small keeps the full suite in CI-scale
// time; Medium approaches the largest sizes a single core handles
// comfortably.
type Scale int

// Experiment scales.
const (
	Small Scale = iota
	Medium
)

func (s Scale) factor() int64 {
	if s < 0 {
		return 1
	}
	// 1 at Small, 4 at Medium, 16 one step beyond (used by experiments
	// that deliberately upscale one workload, e.g. Table VI).
	return 1 << (2 * int64(s))
}

// TestGraphs builds the Table II analogue set: eight graphs spanning the
// paper's structural families — banded PDE meshes, small-world webs,
// power-law social networks with moderate community structure, web crawls
// with strong structure — in ascending-modularity-family order matching the
// roles of the paper's twelve datasets. LFR mixing parameters are
// calibrated so the serial modularity of each analogue lands near its paper
// counterpart (orkut 0.47, friendster 0.62, wiki 0.67, uk-2007 0.97).
func TestGraphs(s Scale) []Workload {
	f := s.factor()
	var ws []Workload
	add := func(name, paper, character string, n int64, edges []graph.RawEdge) {
		ws = append(ws, Workload{Name: name, PaperGraph: paper, Character: character, N: n, Edges: edges})
	}

	// Banded meshes (channel, nlpkkt240): 2-D grids with diagonals.
	side := int64(math.Sqrt(float64(6400 * f)))
	n, e := gen.Grid2D(side, side, true)
	add("mesh-channel", "channel", "banded", n, e)
	n, e = gen.Grid2D(100*f, 60, true)
	add("mesh-nlpkkt", "nlpkkt240", "banded", n, e)

	// Small-world web (CNR).
	n, e, err := gen.WattsStrogatz(5000*f, 8, 0.1, 101)
	must(err)
	add("smallworld-cnr", "CNR", "small-world", n, e)

	// LFR analogues with calibrated mixing.
	n, e, _, err = gen.LFR(gen.DefaultLFR(5000*f, 0.25, 102))
	must(err)
	add("lfr-wiki", "web-wiki-en-2013", "lfr", n, e)
	n, e, _, err = gen.LFR(gen.DefaultLFR(4000*f, 0.45, 103))
	must(err)
	add("lfr-orkut", "com-orkut", "lfr", n, e)
	n, e, _, err = gen.LFR(gen.DefaultLFR(5000*f, 0.35, 104))
	must(err)
	add("lfr-friendster", "soc-friendster", "lfr", n, e)

	// Power-law R-MAT (twitter-like): kept for its extreme degree skew,
	// which stresses load balance; its modularity undershoots the paper's
	// twitter value because R-MAT plants no community structure.
	n, e, err = gen.RMAT(rmScale(12, f), 8, 0.57, 0.19, 0.19, 0.05, 105)
	must(err)
	add("rmat-twitter", "twitter-2010", "power-law", n, e)

	// Strong-structure web crawl (uk-2007).
	n, e, _, err = gen.LFR(gen.DefaultLFR(6000*f, 0.10, 106))
	must(err)
	add("lfr-uk2007", "uk-2007", "lfr", n, e)

	return ws
}

// rmScale bumps the R-MAT scale by log2(f).
func rmScale(base int, f int64) int {
	s := base
	for f > 1 {
		s++
		f >>= 1
	}
	return s
}

// FindGraph returns the named workload from the testbed.
func FindGraph(ws []Workload, name string) (Workload, error) {
	for _, w := range ws {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("experiments: no workload %q", name)
}

// CNRLike is the small-world Table I input ("CNR has small world
// characteristics").
func CNRLike(s Scale) Workload {
	n, e, err := gen.WattsStrogatz(4000*s.factor(), 8, 0.1, 201)
	must(err)
	return Workload{Name: "cnr-like", PaperGraph: "CNR (325K vertices, 3.2M edges)", Character: "small-world", N: n, Edges: e}
}

// ChannelLike is the banded Table I input ("Channel has a banded
// structure"). A 1-D band is used deliberately: like the real channel mesh,
// its baseline Louvain convergence is dominated by a long community-boundary
// crawl (hundreds of iterations in one phase), which is precisely the
// behaviour the ET heuristic collapses — the paper's 58x Channel win.
func ChannelLike(s Scale) Workload {
	n, e := gen.BandedMesh(8000*s.factor(), 6)
	return Workload{Name: "channel-like", PaperGraph: "Channel (4.8M vertices, 42.7M edges)", Character: "banded", N: n, Edges: e}
}

// FriendsterLike is the soc-friendster analogue used by Tables III and VI;
// R-MAT is kept here (rather than LFR) because these experiments measure
// runtime and communication under heavy degree skew, not output quality.
func FriendsterLike(s Scale) Workload {
	n, e, err := gen.RMAT(rmScale(12, s.factor()), 12, 0.57, 0.19, 0.19, 0.05, 301)
	must(err)
	return Workload{Name: "friendster-like", PaperGraph: "soc-friendster (1.8B edges)", Character: "power-law", N: n, Edges: e}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
