package experiments

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "T", Title: "demo", Header: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.AddRowf(3.14159, "x")
	tb.Notes = append(tb.Notes, "a note")
	txt := tb.Text()
	if !strings.Contains(txt, "demo") || !strings.Contains(txt, "3.1416") || !strings.Contains(txt, "note: a note") {
		t.Fatalf("text rendering:\n%s", txt)
	}
	md := tb.Markdown()
	if !strings.Contains(md, "| a | bb |") || !strings.Contains(md, "> a note") {
		t.Fatalf("markdown rendering:\n%s", md)
	}
}

func TestWorkloadRegistry(t *testing.T) {
	ws := TestGraphs(Small)
	if len(ws) != 8 {
		t.Fatalf("%d workloads", len(ws))
	}
	names := map[string]bool{}
	for _, w := range ws {
		if w.N <= 0 || len(w.Edges) == 0 || w.Name == "" || w.PaperGraph == "" {
			t.Fatalf("bad workload %+v", w.Name)
		}
		if names[w.Name] {
			t.Fatalf("duplicate workload name %s", w.Name)
		}
		names[w.Name] = true
	}
	if _, err := FindGraph(ws, "mesh-channel"); err != nil {
		t.Fatal(err)
	}
	if _, err := FindGraph(ws, "no-such"); err == nil {
		t.Fatal("expected error")
	}
	// Medium is larger than Small.
	wm := TestGraphs(Medium)
	if wm[0].N <= ws[0].N {
		t.Fatal("Medium not larger than Small")
	}
}

func TestNamedWorkloads(t *testing.T) {
	for _, w := range []Workload{CNRLike(Small), ChannelLike(Small), FriendsterLike(Small)} {
		if w.N == 0 || len(w.Edges) == 0 {
			t.Fatalf("empty workload %s", w.Name)
		}
	}
}

func TestFig2Schedule(t *testing.T) {
	tb := Fig2()
	if len(tb.Rows) != 26 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	if tb.Rows[0][1] != "1e-03" || tb.Rows[12][1] != "1e-06" || tb.Rows[13][1] != "1e-03" {
		t.Fatalf("schedule rows: %v %v %v", tb.Rows[0], tb.Rows[12], tb.Rows[13])
	}
}

func TestSparkline(t *testing.T) {
	if s := sparkline(nil); s != "-" {
		t.Fatalf("%q", s)
	}
	if s := sparkline([]float64{0.1, 0.2}); s != "0.100→0.200" {
		t.Fatalf("%q", s)
	}
	long := sparkline([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if !strings.Contains(long, "…") {
		t.Fatalf("%q", long)
	}
}

// The experiment runners below are exercised on tiny custom inputs (not the
// full Small scale) so the test suite stays fast; cmd/paperbench runs them
// at full scale.

func TestProfileRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runner")
	}
	tb, err := Profile(Small, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 5 {
		t.Fatalf("profile rows: %d", len(tb.Rows))
	}
}

func TestFig3SingleCell(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runner")
	}
	ws := TestGraphs(Small)
	w, err := FindGraph(ws, "smallworld-cnr")
	if err != nil {
		t.Fatal(err)
	}
	tb, err := Fig3(Small, []Workload{w}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// 6 variants × 2 rank counts.
	if len(tb.Rows) != 12 {
		t.Fatalf("fig3 rows: %d", len(tb.Rows))
	}
}

func TestTable5AndFig4(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runner")
	}
	tb, points, err := Table5(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 || len(points) != 4 {
		t.Fatalf("rows=%d points=%d", len(tb.Rows), len(points))
	}
	f4 := Fig4(points)
	if len(f4.Rows) != 4 {
		t.Fatalf("fig4 rows: %d", len(f4.Rows))
	}
	// SSCA#2 modularity must be very high at every scale (paper: 0.9999+).
	for _, row := range tb.Rows {
		if row[3] < "0.9" {
			t.Fatalf("SSCA2 modularity row: %v", row)
		}
	}
}
