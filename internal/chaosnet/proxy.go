// Package chaosnet provides a real-socket chaos proxy for the mpi TCP
// transport: a frame-aware TCP man-in-the-middle that sits in front of one
// rank's mesh listener and injects network faults — drop, delay, duplicate,
// asymmetric partition, abrupt kill, slow link — at message-frame
// granularity.
//
// Frame awareness is what separates this from a byte-level toxiproxy: the
// proxy speaks the mpi wire protocol (rank/fence handshake, then
// [tag int32][len uint32][payload] frames), so every injected fault lands on
// a whole-message boundary and the surviving byte stream stays parseable.
// A partition therefore looks to the victim exactly like silence (frames
// vanish in flight), not like a corrupted stream — the same semantics
// FaultTransport fakes in-process, now reproduced over real kernel sockets
// so the chaos suite exercises genuine TCP failure modes (half-open
// connections, buffered writes racing a close, reset-versus-FIN).
//
// Deployment: the proxied rank listens on a private address and advertises
// the proxy's address (CoordWorldConfig.Advertise / the -advertise flag);
// peers dial the proxy, the proxy dials the rank. Since rank i accepts from
// every rank j > i, one proxy per rank covers every mesh link. The dialing
// peer's identity is learned from the handshake it sends, so faults target
// (peer rank, direction) pairs.
package chaosnet

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Direction selects which half of a link a rule applies to, named from the
// proxied rank's point of view.
type Direction int

const (
	// DirIn is peer → proxied rank (what the rank hears).
	DirIn Direction = iota
	// DirOut is proxied rank → peer (what the rank says).
	DirOut
)

func (d Direction) String() string {
	if d == DirIn {
		return "in"
	}
	return "out"
}

// AnyPeer applies a partition to every peer of the proxied rank.
const AnyPeer = -1

const (
	frameHeaderSize = 8
	maxFrame        = 1 << 30
	hsTimeout       = 10 * time.Second
)

// rule is the fault state of one (peer, direction) link half. Counters are
// consumed per frame, so every injection is deterministic — no probabilities.
type rule struct {
	block   bool          // partition: discard frames while set
	drop    int           // discard the next N frames
	dup     int           // deliver the next N frames twice
	delayN  int           // delay the next N frames by delay
	delay   time.Duration
	latency time.Duration // persistent per-frame delay (WAN RTT)
	bps     int           // slow link: pace frames at this many bytes/second
}

type linkKey struct {
	peer int
	dir  Direction
}

// Options configures a Proxy.
type Options struct {
	// Fenced selects the 12-byte [rank][fence] handshake with the 1-byte
	// accept ack (coordinator worlds); false selects the legacy 4-byte
	// handshake (-hosts worlds).
	Fenced bool
	// Logf, when non-nil, traces injected faults.
	Logf func(format string, args ...any)
}

// Proxy is one chaos MITM instance fronting a single rank's listener.
// All fault-injection methods are safe to call concurrently with traffic.
type Proxy struct {
	ln      net.Listener
	backend string
	opts    Options

	mu     sync.Mutex
	rules  map[linkKey]*rule
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// New starts a proxy listening on listen ("host:port", port may be 0) and
// forwarding to backend (the proxied rank's private listen address).
func New(listen, backend string, opts Options) (*Proxy, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("chaosnet: listen %s: %w", listen, err)
	}
	p := &Proxy{
		ln:      ln,
		backend: backend,
		opts:    opts,
		rules:   make(map[linkKey]*rule),
		conns:   make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the address peers should dial (what the proxied rank advertises).
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

func (p *Proxy) logf(format string, args ...any) {
	if p.opts.Logf != nil {
		p.opts.Logf(format, args...)
	}
}

func (p *Proxy) rule(peer int, dir Direction) *rule {
	k := linkKey{peer, dir}
	r := p.rules[k]
	if r == nil {
		r = &rule{}
		p.rules[k] = r
	}
	return r
}

// Partition sets or clears a one-way partition: while set, every frame
// flowing in dir for the given peer (or AnyPeer) is silently discarded.
// Blocking exactly one direction produces the asymmetric partition — A can
// hear B but B cannot hear A — that breaks naive failure detectors.
func (p *Proxy) Partition(peer int, dir Direction, on bool) {
	p.mu.Lock()
	p.rule(peer, dir).block = on
	p.mu.Unlock()
	p.logf("chaosnet: partition peer=%d dir=%s on=%v", peer, dir, on)
}

// Drop discards the next n frames on the link half.
func (p *Proxy) Drop(peer int, dir Direction, n int) {
	p.mu.Lock()
	p.rule(peer, dir).drop += n
	p.mu.Unlock()
	p.logf("chaosnet: drop peer=%d dir=%s n=%d", peer, dir, n)
}

// Dup delivers the next n frames on the link half twice.
func (p *Proxy) Dup(peer int, dir Direction, n int) {
	p.mu.Lock()
	p.rule(peer, dir).dup += n
	p.mu.Unlock()
	p.logf("chaosnet: dup peer=%d dir=%s n=%d", peer, dir, n)
}

// Delay holds each of the next n frames on the link half for d before
// forwarding. Delivery order is preserved (later frames queue behind the
// held one, as they would behind a congested router).
func (p *Proxy) Delay(peer int, dir Direction, d time.Duration, n int) {
	p.mu.Lock()
	r := p.rule(peer, dir)
	r.delay = d
	r.delayN += n
	p.mu.Unlock()
	p.logf("chaosnet: delay peer=%d dir=%s d=%v n=%d", peer, dir, d, n)
}

// Latency adds a persistent per-frame delay on the link half (zero clears).
func (p *Proxy) Latency(peer int, dir Direction, d time.Duration) {
	p.mu.Lock()
	p.rule(peer, dir).latency = d
	p.mu.Unlock()
	p.logf("chaosnet: latency peer=%d dir=%s d=%v", peer, dir, d)
}

// SlowLink paces the link half at bytesPerSec (zero clears): each frame is
// held for len/rate before forwarding, modelling a thin WAN pipe.
func (p *Proxy) SlowLink(peer int, dir Direction, bytesPerSec int) {
	p.mu.Lock()
	p.rule(peer, dir).bps = bytesPerSec
	p.mu.Unlock()
	p.logf("chaosnet: slow-link peer=%d dir=%s bps=%d", peer, dir, bytesPerSec)
}

// Kill abruptly closes every connection through the proxy — no goodbye
// frames, no FIN ordering guarantees — so peers observe the proxied rank as
// crashed (ErrPeerLost). The listener keeps accepting: a relaunched world
// can rendezvous through the same proxy address.
func (p *Proxy) Kill() {
	p.mu.Lock()
	for c := range p.conns {
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetLinger(0) // RST, not graceful FIN: crash semantics
		}
		c.Close()
	}
	p.conns = make(map[net.Conn]struct{})
	p.mu.Unlock()
	p.logf("chaosnet: killed all connections")
}

// Close shuts the proxy down, severing every connection.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.ln.Close()
	p.wg.Wait()
}

func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.handleConn(conn)
		}()
	}
}

// handleConn splices one dialer connection to the backend: forward the
// handshake verbatim (learning the dialer's rank), then run one frame pump
// per direction.
func (p *Proxy) handleConn(dialer net.Conn) {
	if !p.track(dialer) {
		dialer.Close()
		return
	}
	defer p.untrack(dialer)
	defer dialer.Close()

	// Retry the backend dial until the handshake deadline: the proxy may be
	// up before its rank has bound the private listener (it usually is — the
	// rank advertises the proxy, so the proxy exists first). Giving up on
	// the first refused connection would silently strand the dialer, whose
	// legacy handshake is fire-and-forget.
	deadline := time.Now().Add(hsTimeout)
	var backend net.Conn
	for {
		var err error
		backend, err = net.DialTimeout("tcp", p.backend, time.Until(deadline))
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			p.logf("chaosnet: backend dial %s: %v", p.backend, err)
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !p.track(backend) {
		backend.Close()
		return
	}
	defer p.untrack(backend)
	defer backend.Close()

	hsLen := 4
	if p.opts.Fenced {
		hsLen = 12
	}
	hs := make([]byte, hsLen)
	dialer.SetReadDeadline(time.Now().Add(hsTimeout))
	if _, err := io.ReadFull(dialer, hs); err != nil {
		return
	}
	dialer.SetReadDeadline(time.Time{})
	peer := int(int32(binary.LittleEndian.Uint32(hs[:4])))
	if _, err := backend.Write(hs); err != nil {
		return
	}
	if p.opts.Fenced {
		var ack [1]byte
		backend.SetReadDeadline(time.Now().Add(hsTimeout))
		if _, err := io.ReadFull(backend, ack[:]); err != nil {
			return
		}
		backend.SetReadDeadline(time.Time{})
		if _, err := dialer.Write(ack[:]); err != nil {
			return
		}
		if ack[0] != 1 {
			return // backend fenced the dialer; both sides are done
		}
	}
	p.logf("chaosnet: link up: peer %d <-> %s", peer, p.backend)

	done := make(chan struct{}, 2)
	go func() {
		p.pump(dialer, backend, peer, DirIn)
		done <- struct{}{}
	}()
	go func() {
		p.pump(backend, dialer, peer, DirOut)
		done <- struct{}{}
	}()
	// Either pump ending (EOF, reset, Kill) tears the whole link down, so a
	// half-dead connection cannot linger as a phantom peer.
	<-done
}

// decide consumes fault state for one frame and returns what to do with it.
func (p *Proxy) decide(peer int, dir Direction, frameLen int) (drop bool, wait time.Duration, dup bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	r := p.rules[linkKey{peer, dir}]
	any := p.rules[linkKey{AnyPeer, dir}]
	if (r != nil && r.block) || (any != nil && any.block) {
		return true, 0, false
	}
	if r == nil {
		return false, 0, false
	}
	if r.drop > 0 {
		r.drop--
		return true, 0, false
	}
	if r.delayN > 0 {
		r.delayN--
		wait += r.delay
	}
	wait += r.latency
	if r.bps > 0 {
		wait += time.Duration(float64(frameLen) / float64(r.bps) * float64(time.Second))
	}
	if r.dup > 0 {
		r.dup--
		dup = true
	}
	return false, wait, dup
}

// pump forwards whole frames src → dst, applying the link's fault rules.
func (p *Proxy) pump(src, dst net.Conn, peer int, dir Direction) {
	br := bufio.NewReaderSize(src, 1<<16)
	var hdr [frameHeaderSize]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(hdr[4:8])
		if n > maxFrame {
			return // corrupt upstream; sever the link
		}
		frame := make([]byte, frameHeaderSize+int(n))
		copy(frame, hdr[:])
		if n > 0 {
			if _, err := io.ReadFull(br, frame[frameHeaderSize:]); err != nil {
				return
			}
		}
		drop, wait, dup := p.decide(peer, dir, len(frame))
		if drop {
			p.logf("chaosnet: dropped frame peer=%d dir=%s tag=%d len=%d", peer, dir, int32(binary.LittleEndian.Uint32(hdr[:4])), n)
			continue
		}
		if wait > 0 {
			time.Sleep(wait)
		}
		if _, err := dst.Write(frame); err != nil {
			return
		}
		if dup {
			if _, err := dst.Write(frame); err != nil {
				return
			}
		}
	}
}
