package chaosnet

import (
	"errors"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"distlouvain/internal/mpi"
)

// proxiedPair builds a 2-rank TCP world where rank 0's listener sits behind
// a chaos proxy: rank 1 (the dialer, being the higher rank) reaches rank 0
// only through the proxy, so both directions of the (0,1) link are subject
// to fault injection. Returns the transports and the proxy.
func proxiedPair(t *testing.T, fence uint64) (tp0, tp1 mpi.Transport, px *Proxy) {
	t.Helper()
	backendLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	backend := backendLn.Addr().String()
	backendLn.Close()

	px, err = New("127.0.0.1:0", backend, Options{Fenced: fence != 0})
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	t.Cleanup(px.Close)

	// Rank 0 listens privately; rank 1 is told the proxy's address for it.
	addrsFor0 := []string{backend, "unused-rank1"}
	addrsFor1 := []string{px.Addr(), freeAddr(t)}

	var wg sync.WaitGroup
	var err0 error
	wg.Add(1)
	go func() {
		defer wg.Done()
		tp0, err0 = mpi.DialTCPWorld(mpi.TCPWorldConfig{Rank: 0, Addrs: addrsFor0, Fence: fence, ConnectDeadline: 10 * time.Second})
	}()
	tp1, err = mpi.DialTCPWorld(mpi.TCPWorldConfig{Rank: 1, Addrs: addrsFor1, Fence: fence, ConnectDeadline: 10 * time.Second})
	wg.Wait()
	if err0 != nil || err != nil {
		t.Fatalf("rendezvous through proxy: rank0 %v, rank1 %v", err0, err)
	}
	t.Cleanup(func() { tp0.Close(); tp1.Close() })
	return tp0, tp1, px
}

func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestProxyIsTransparent(t *testing.T) {
	tp0, tp1, _ := proxiedPair(t, 0)
	for i := 0; i < 50; i++ {
		if err := tp1.Send(0, i, []byte{byte(i)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	for i := 0; i < 50; i++ {
		msg, err := tp0.Recv(1, i)
		if err != nil || len(msg.Data) != 1 || msg.Data[0] != byte(i) {
			t.Fatalf("recv %d: %v %v", i, err, msg.Data)
		}
	}
	// And the reverse direction.
	if err := tp0.Send(1, 99, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	if msg, err := tp1.Recv(0, 99); err != nil || string(msg.Data) != "pong" {
		t.Fatalf("reverse recv: %v %q", err, msg.Data)
	}
}

func TestProxyFencedHandshakePassesThrough(t *testing.T) {
	tp0, tp1, _ := proxiedPair(t, 42)
	if err := tp1.Send(0, 1, []byte("fenced world")); err != nil {
		t.Fatal(err)
	}
	if msg, err := tp0.Recv(1, 1); err != nil || string(msg.Data) != "fenced world" {
		t.Fatalf("recv: %v %q", err, msg.Data)
	}
}

func TestAsymmetricPartitionAndHeal(t *testing.T) {
	tp0, tp1, px := proxiedPair(t, 0)

	// Partition only DirIn: rank 0 goes deaf to rank 1 but can still talk.
	px.Partition(1, DirIn, true)
	if err := tp1.Send(0, 5, []byte("lost")); err != nil {
		t.Fatal(err)
	}
	if _, err := tp0.RecvTimeout(1, 5, 300*time.Millisecond); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("recv during partition = %v, want deadline exceeded", err)
	}
	// The healthy direction still flows — the asymmetry is real.
	if err := tp0.Send(1, 6, []byte("still talking")); err != nil {
		t.Fatal(err)
	}
	if msg, err := tp1.Recv(0, 6); err != nil || string(msg.Data) != "still talking" {
		t.Fatalf("healthy direction: %v %q", err, msg.Data)
	}

	// Heal: frames dropped during the partition are gone (silence, not a
	// queue), but new traffic flows again on the same connection.
	px.Partition(1, DirIn, false)
	if _, err := tp0.RecvTimeout(1, 5, 200*time.Millisecond); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("partition buffered instead of dropping: %v", err)
	}
	if err := tp1.Send(0, 7, []byte("healed")); err != nil {
		t.Fatal(err)
	}
	if msg, err := tp0.Recv(1, 7); err != nil || string(msg.Data) != "healed" {
		t.Fatalf("post-heal recv: %v %q", err, msg.Data)
	}
}

func TestDropDelayDupCounters(t *testing.T) {
	tp0, tp1, px := proxiedPair(t, 0)

	// Drop exactly one frame: the first send vanishes, the second arrives.
	px.Drop(1, DirIn, 1)
	tp1.Send(0, 1, []byte("a"))
	tp1.Send(0, 1, []byte("b"))
	msg, err := tp0.Recv(1, 1)
	if err != nil || string(msg.Data) != "b" {
		t.Fatalf("after drop: %v %q, want \"b\"", err, msg.Data)
	}

	// Delay one frame: it arrives intact but late, and a frame behind it
	// queues in order rather than overtaking.
	px.Delay(1, DirIn, 250*time.Millisecond, 1)
	start := time.Now()
	tp1.Send(0, 2, []byte("slow"))
	tp1.Send(0, 2, []byte("after"))
	msg, err = tp0.Recv(1, 2)
	if err != nil || string(msg.Data) != "slow" {
		t.Fatalf("delayed frame: %v %q", err, msg.Data)
	}
	if elapsed := time.Since(start); elapsed < 200*time.Millisecond {
		t.Fatalf("delayed frame arrived after only %v", elapsed)
	}
	if msg, err = tp0.Recv(1, 2); err != nil || string(msg.Data) != "after" {
		t.Fatalf("frame ordering across delay: %v %q", err, msg.Data)
	}

	// Duplicate one frame: the receiver sees it twice (network duplication
	// happens below the transport's exactly-once assumption).
	px.Dup(1, DirIn, 1)
	tp1.Send(0, 3, []byte("twin"))
	for i := 0; i < 2; i++ {
		if msg, err := tp0.Recv(1, 3); err != nil || string(msg.Data) != "twin" {
			t.Fatalf("dup copy %d: %v %q", i, err, msg.Data)
		}
	}
}

func TestSlowLinkPacesFrames(t *testing.T) {
	tp0, tp1, px := proxiedPair(t, 0)
	// 10 KiB/s: a ~2 KiB frame should take ~200ms.
	px.SlowLink(1, DirIn, 10*1024)
	payload := make([]byte, 2048)
	start := time.Now()
	tp1.Send(0, 1, payload)
	if msg, err := tp0.Recv(1, 1); err != nil || len(msg.Data) != len(payload) {
		t.Fatalf("slow-link recv: %v len=%d", err, len(msg.Data))
	}
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("slow link delivered a 2KiB frame in %v", elapsed)
	}
	px.SlowLink(1, DirIn, 0)
	start = time.Now()
	tp1.Send(0, 2, payload)
	if _, err := tp0.Recv(1, 2); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("clearing slow link left pacing in place (%v)", elapsed)
	}
}

func TestKillLooksLikeCrash(t *testing.T) {
	tp0, tp1, px := proxiedPair(t, 0)
	// Confirm the link is live, then kill it mid-flight.
	tp1.Send(0, 1, []byte("pre"))
	if _, err := tp0.Recv(1, 1); err != nil {
		t.Fatal(err)
	}
	px.Kill()
	// Both sides must observe a peer loss — no goodbye, crash semantics —
	// rather than blocking forever.
	_, err := tp0.RecvTimeout(1, 2, 5*time.Second)
	var lost *mpi.ErrPeerLost
	if !errors.As(err, &lost) || lost.Peer != 1 {
		t.Fatalf("rank 0 after kill: %v, want ErrPeerLost{Peer:1}", err)
	}
	_, err = tp1.RecvTimeout(0, 2, 5*time.Second)
	if !errors.As(err, &lost) || lost.Peer != 0 {
		t.Fatalf("rank 1 after kill: %v, want ErrPeerLost{Peer:0}", err)
	}
}
