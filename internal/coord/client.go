package coord

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"distlouvain/internal/backoff"
)

// JoinConfig describes one rank's registration.
type JoinConfig struct {
	Coord string // coordinator address
	Job   string // job id; every rank of one world uses the same id
	Epoch int    // incarnation number; the supervisor bumps it per relaunch
	Rank  int
	Size  int
	Addr  string // this rank's advertised mesh address
	// DialTimeout bounds each connection attempt; Deadline bounds the whole
	// rendezvous including retries. Zero values select 2s and 30s.
	DialTimeout time.Duration
	Deadline    time.Duration
	// Seed drives the retry jitter (0 derives one from rank).
	Seed uint64
}

// Join registers with the coordinator and blocks until the world seals,
// returning the full membership and the fencing generation. Connection
// failures and retryable coordinator errors (barrier timeout, coordinator
// restart mid-registration) are retried with jittered exponential backoff
// until Deadline; fencing and registration conflicts are terminal and
// returned typed (*FencedError) or wrapped immediately.
func Join(cfg JoinConfig) (World, error) {
	dialTimeout := cfg.DialTimeout
	if dialTimeout <= 0 {
		dialTimeout = 2 * time.Second
	}
	deadline := cfg.Deadline
	if deadline <= 0 {
		deadline = 30 * time.Second
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = (uint64(cfg.Rank)+1)*0x9e3779b97f4a7c15 | 1
	}
	end := time.Now().Add(deadline)
	sl := backoff.NewSleeper(backoff.Policy{Base: 25 * time.Millisecond, Max: 2 * time.Second, Seed: seed})
	var lastErr error
	for {
		w, err := joinOnce(cfg, dialTimeout, end)
		if err == nil {
			return w, nil
		}
		var retry *retryableError
		if !errors.As(err, &retry) {
			return World{}, err
		}
		lastErr = retry.cause
		if !sl.Sleep(end) {
			break
		}
	}
	return World{}, fmt.Errorf("coord: rank %d join job %q at %s: %w", cfg.Rank, cfg.Job, cfg.Coord, lastErr)
}

// retryableError wraps transient join failures so the retry loop can tell
// them from terminal ones.
type retryableError struct{ cause error }

func (e *retryableError) Error() string { return e.cause.Error() }
func (e *retryableError) Unwrap() error { return e.cause }

func joinOnce(cfg JoinConfig, dialTimeout time.Duration, end time.Time) (World, error) {
	conn, err := net.DialTimeout("tcp", cfg.Coord, dialTimeout)
	if err != nil {
		return World{}, &retryableError{err}
	}
	defer conn.Close()
	conn.SetDeadline(end)
	req := request{Op: "join", Job: cfg.Job, Epoch: cfg.Epoch, Rank: cfg.Rank, Size: cfg.Size, Addr: cfg.Addr}
	if err := json.NewEncoder(conn).Encode(req); err != nil {
		return World{}, &retryableError{err}
	}
	var resp response
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&resp); err != nil {
		return World{}, &retryableError{err}
	}
	return checkResponse(cfg, resp)
}

func checkResponse(cfg JoinConfig, resp response) (World, error) {
	switch {
	case resp.OK:
		if len(resp.Addrs) != cfg.Size {
			return World{}, fmt.Errorf("coord: sealed world has %d addresses, expected %d", len(resp.Addrs), cfg.Size)
		}
		return World{Gen: resp.Gen, Addrs: resp.Addrs, LeaseTTL: time.Duration(resp.LeaseMS) * time.Millisecond}, nil
	case resp.Code == codeFenced:
		// A joiner holds no generation yet — its epoch was superseded before
		// it could seal — so the stale-token field stays zero.
		return World{}, &FencedError{Job: cfg.Job, Current: resp.Gen}
	case resp.Code == codeRetry:
		return World{}, &retryableError{errors.New(resp.Error)}
	default:
		return World{}, fmt.Errorf("coord: join rejected: %s", resp.Error)
	}
}

// SessionConfig describes a heartbeat session holding one rank's lease.
type SessionConfig struct {
	Coord string
	Job   string
	Gen   uint64 // the fencing token the world was sealed with
	Rank  int
	// Interval between heartbeats; pick comfortably inside the lease TTL
	// Join returned (TTL/3 is conventional). Zero selects 1s.
	Interval time.Duration
	// OnFenced runs exactly once, from the session goroutine, when the
	// coordinator reports the generation superseded. The argument is a
	// *FencedError. Use it to poison the rank's transport so blocked
	// collectives fail typed instead of hanging.
	OnFenced    func(error)
	DialTimeout time.Duration
	Seed        uint64
}

// Session is a background heartbeat loop. It survives coordinator outages by
// redialing with jittered backoff (the lease may lapse meanwhile — that is
// the coordinator's signal, not the session's problem) and terminates itself
// on fencing.
type Session struct {
	cfg  SessionConfig
	stop chan struct{}
	done chan struct{}

	mu  sync.Mutex
	err error // terminal fencing error, set before done closes
}

// StartSession launches the heartbeat loop.
func StartSession(cfg SessionConfig) *Session {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = (uint64(cfg.Rank)+0x9e37)*0x9e3779b97f4a7c15 | 1
	}
	s := &Session{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	go s.run()
	return s
}

// Err returns the terminal fencing error, or nil while the session is live
// or after an orderly Close.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close stops the heartbeat loop and waits for it to exit. The lease then
// lapses naturally on the coordinator.
func (s *Session) Close() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	<-s.done
}

func (s *Session) run() {
	defer close(s.done)
	sl := backoff.NewSleeper(backoff.Policy{Base: 50 * time.Millisecond, Max: 2 * time.Second, Seed: s.cfg.Seed})
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		fenced, connected := s.serve()
		if fenced != nil {
			s.mu.Lock()
			s.err = fenced
			s.mu.Unlock()
			if s.cfg.OnFenced != nil {
				s.cfg.OnFenced(fenced)
			}
			return
		}
		if connected {
			// The outage is fresh: restart the backoff schedule.
			sl = backoff.NewSleeper(backoff.Policy{Base: 50 * time.Millisecond, Max: 2 * time.Second, Seed: s.cfg.Seed})
		}
		d := sl.Next()
		select {
		case <-s.stop:
			return
		case <-time.After(d):
		}
	}
}

// serve runs one connection worth of heartbeats. It returns a non-nil
// *FencedError when the coordinator fences the generation, and whether a
// connection was established at all (to reset the redial backoff).
func (s *Session) serve() (error, bool) {
	conn, err := net.DialTimeout("tcp", s.cfg.Coord, s.cfg.DialTimeout)
	if err != nil {
		return nil, false
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(bufio.NewReader(conn))
	req := request{Op: "heartbeat", Job: s.cfg.Job, Gen: s.cfg.Gen, Rank: s.cfg.Rank}
	tick := time.NewTicker(s.cfg.Interval)
	defer tick.Stop()
	for {
		conn.SetWriteDeadline(time.Now().Add(s.cfg.Interval * 3))
		if err := enc.Encode(req); err != nil {
			return nil, true
		}
		conn.SetReadDeadline(time.Now().Add(s.cfg.Interval * 3))
		var resp response
		if err := dec.Decode(&resp); err != nil {
			return nil, true
		}
		if resp.Code == codeFenced {
			return &FencedError{Job: s.cfg.Job, Gen: s.cfg.Gen, Current: resp.Gen}, true
		}
		select {
		case <-s.stop:
			return nil, true
		case <-tick.C:
		}
	}
}
