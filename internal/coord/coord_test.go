package coord

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

func serve(t *testing.T, cfg ServerConfig) *Server {
	t.Helper()
	s, err := Serve("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// joinAll runs size concurrent joins for one epoch and returns the worlds.
func joinAll(t *testing.T, coordAddr, job string, epoch, size int) []World {
	t.Helper()
	worlds := make([]World, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			worlds[r], errs[r] = Join(JoinConfig{
				Coord: coordAddr, Job: job, Epoch: epoch, Rank: r, Size: size,
				Addr: fmt.Sprintf("10.0.0.%d:700%d", r, r), Deadline: 10 * time.Second,
			})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d join: %v", r, err)
		}
	}
	return worlds
}

func TestJoinBarrierSealsMembershipAndGeneration(t *testing.T) {
	s := serve(t, ServerConfig{GenBase: 100})
	worlds := joinAll(t, s.Addr(), "j", 1, 4)
	for r, w := range worlds {
		if w.Gen != 101 {
			t.Fatalf("rank %d generation = %d, want 101 (GenBase+1)", r, w.Gen)
		}
		if len(w.Addrs) != 4 {
			t.Fatalf("rank %d got %d addrs", r, len(w.Addrs))
		}
		for i, addr := range w.Addrs {
			if want := fmt.Sprintf("10.0.0.%d:700%d", i, i); addr != want {
				t.Fatalf("rank %d addrs[%d] = %q, want %q", r, i, addr, want)
			}
		}
		if w.LeaseTTL <= 0 {
			t.Fatalf("rank %d lease TTL = %v", r, w.LeaseTTL)
		}
	}

	// Re-joining the sealed epoch replays the world idempotently (a rank
	// whose response was lost must be able to ask again).
	w, err := Join(JoinConfig{Coord: s.Addr(), Job: "j", Epoch: 1, Rank: 2, Size: 4, Addr: "x", Deadline: 2 * time.Second})
	if err != nil || w.Gen != 101 {
		t.Fatalf("sealed-epoch replay: world %+v err %v", w, err)
	}
}

func TestRelaunchBumpsGenerationAndFencesStaleEpoch(t *testing.T) {
	s := serve(t, ServerConfig{})
	w1 := joinAll(t, s.Addr(), "j", 1, 2)
	w2 := joinAll(t, s.Addr(), "j", 2, 2)
	if w2[0].Gen <= w1[0].Gen {
		t.Fatalf("relaunch generation %d not above %d", w2[0].Gen, w1[0].Gen)
	}

	// A stale rank re-joining the superseded epoch is fenced, typed.
	_, err := Join(JoinConfig{Coord: s.Addr(), Job: "j", Epoch: 1, Rank: 0, Size: 2, Addr: "x", Deadline: 2 * time.Second})
	var fe *FencedError
	if !errors.As(err, &fe) {
		t.Fatalf("stale-epoch join error = %v, want *FencedError", err)
	}
	if fe.Current != w2[0].Gen {
		t.Fatalf("fenced error current = %d, want %d", fe.Current, w2[0].Gen)
	}
}

func TestHeartbeatFencingPoisonsStaleSession(t *testing.T) {
	s := serve(t, ServerConfig{})
	w1 := joinAll(t, s.Addr(), "j", 1, 2)

	fenced := make(chan error, 1)
	sess := StartSession(SessionConfig{
		Coord: s.Addr(), Job: "j", Gen: w1[0].Gen, Rank: 0,
		Interval: 20 * time.Millisecond,
		OnFenced: func(err error) { fenced <- err },
	})
	defer sess.Close()

	// The live generation heartbeats cleanly for a while.
	select {
	case err := <-fenced:
		t.Fatalf("live session fenced prematurely: %v", err)
	case <-time.After(100 * time.Millisecond):
	}

	// The supervisor relaunches the world: generation bumps, the old
	// session's next heartbeat is fenced with a typed error.
	w2 := joinAll(t, s.Addr(), "j", 2, 2)
	select {
	case err := <-fenced:
		var fe *FencedError
		if !errors.As(err, &fe) {
			t.Fatalf("fencing callback error = %v, want *FencedError", err)
		}
		if fe.Gen != w1[0].Gen || fe.Current != w2[0].Gen {
			t.Fatalf("fenced %d by %d, want %d by %d", fe.Gen, fe.Current, w1[0].Gen, w2[0].Gen)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stale session never fenced")
	}
	if sess.Err() == nil {
		t.Fatal("session Err() nil after fencing")
	}
}

func TestJoinRetriesThroughCoordinatorRestart(t *testing.T) {
	// Satellite: mid-registration ranks must survive the coordinator dying
	// and returning — they retry with backoff and converge once it is back.
	// Reserve a port so the reborn coordinator reuses the address the ranks
	// were given.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("reserve port: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()

	const size = 3
	worlds := make([]World, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			worlds[r], errs[r] = Join(JoinConfig{
				Coord: addr, Job: "j", Epoch: 1, Rank: r, Size: size,
				Addr: fmt.Sprintf("a%d", r), Deadline: 15 * time.Second,
				DialTimeout: 200 * time.Millisecond,
			})
		}(r)
	}

	// Let the ranks accumulate dial failures, then bring the coordinator up.
	time.Sleep(300 * time.Millisecond)
	s, err := Serve(addr, ServerConfig{GenBase: 7})
	if err != nil {
		t.Fatalf("late serve: %v", err)
	}
	defer s.Close()

	wg.Wait()
	for r := 0; r < size; r++ {
		if errs[r] != nil {
			t.Fatalf("rank %d join after restart: %v", r, errs[r])
		}
		if worlds[r].Gen != 8 {
			t.Fatalf("rank %d generation = %d, want 8", r, worlds[r].Gen)
		}
	}
}

func TestJoinBarrierTimeoutIsRetryable(t *testing.T) {
	s := serve(t, ServerConfig{JoinTimeout: 100 * time.Millisecond})
	// One rank of a 2-world joins; the barrier expires; the rank's retry
	// loop keeps going until its own deadline.
	start := time.Now()
	_, err := Join(JoinConfig{Coord: s.Addr(), Job: "j", Epoch: 1, Rank: 0, Size: 2, Addr: "a", Deadline: 500 * time.Millisecond})
	if err == nil {
		t.Fatal("lone join of a 2-world succeeded")
	}
	var fe *FencedError
	if errors.As(err, &fe) {
		t.Fatalf("barrier timeout surfaced as fencing: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 400*time.Millisecond {
		t.Fatalf("join gave up after %v without exhausting its deadline", elapsed)
	}
}

func TestJoinConflictsAreTerminal(t *testing.T) {
	s := serve(t, ServerConfig{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		Join(JoinConfig{Coord: s.Addr(), Job: "j", Epoch: 1, Rank: 0, Size: 3, Addr: "a0", Deadline: 5 * time.Second})
	}()
	time.Sleep(50 * time.Millisecond)

	// Size disagreement is a configuration bug, not a transient: it must
	// fail fast instead of burning the retry budget.
	start := time.Now()
	_, err := Join(JoinConfig{Coord: s.Addr(), Job: "j", Epoch: 1, Rank: 1, Size: 4, Addr: "a1", Deadline: 10 * time.Second})
	if err == nil || time.Since(start) > 2*time.Second {
		t.Fatalf("size conflict: err %v after %v, want fast terminal error", err, time.Since(start))
	}

	// So is a duplicate rank claim from a different address.
	_, err = Join(JoinConfig{Coord: s.Addr(), Job: "j", Epoch: 1, Rank: 0, Size: 3, Addr: "imposter", Deadline: 10 * time.Second})
	if err == nil {
		t.Fatal("duplicate rank from a different address joined")
	}

	// Rank out of range is rejected before touching the barrier.
	if _, err := Join(JoinConfig{Coord: s.Addr(), Job: "j2", Epoch: 1, Rank: 5, Size: 3, Addr: "x", Deadline: 2 * time.Second}); err == nil {
		t.Fatal("out-of-range rank joined")
	}

	s.Close() // fails the waiting barrier; the goroutine's Join returns
	<-done
}

func TestAgentLeaseExpiryCondemnsHost(t *testing.T) {
	s := serve(t, ServerConfig{LeaseTTL: 150 * time.Millisecond})

	// A healthy agent pinging inside the TTL stays registered.
	healthy, err := DialAgent(AgentConfig{Coord: s.Addr(), Job: "j", Host: "h-healthy", Slots: 2, PingInterval: 30 * time.Millisecond})
	if err != nil {
		t.Fatalf("dial healthy agent: %v", err)
	}
	defer healthy.Close()

	// A silent agent: pings far apart, so its lease lapses.
	silent, err := DialAgent(AgentConfig{Coord: s.Addr(), Job: "j", Host: "h-silent", Slots: 2, PingInterval: time.Hour})
	if err != nil {
		t.Fatalf("dial silent agent: %v", err)
	}
	defer silent.Close()

	ctrl, err := DialController(s.Addr(), "j", 0)
	if err != nil {
		t.Fatalf("dial controller: %v", err)
	}
	defer ctrl.Close()

	// Drain the registration snapshot first.
	hosts := map[string]bool{}
	deadline := time.After(5 * time.Second)
	for {
		ev := nextEvent(t, ctrl, deadline)
		if ev.Kind == EventSync {
			break
		}
		if ev.Kind == EventHost {
			hosts[ev.Host] = true
		}
	}
	if !hosts["h-healthy"] || !hosts["h-silent"] {
		t.Fatalf("snapshot hosts = %v, want both", hosts)
	}

	// The coordinator condemns the silent host; the healthy one survives.
	for {
		ev := nextEvent(t, ctrl, deadline)
		if ev.Kind == EventHostLost {
			if ev.Host != "h-silent" {
				t.Fatalf("condemned host %q, want h-silent", ev.Host)
			}
			break
		}
	}
	select {
	case ev, ok := <-ctrl.Events:
		if ok && ev.Kind == EventHostLost {
			t.Fatalf("healthy host condemned too: %+v", ev)
		}
	case <-time.After(400 * time.Millisecond):
	}
}

func nextEvent(t *testing.T, c *Controller, deadline <-chan time.Time) Event {
	t.Helper()
	select {
	case ev, ok := <-c.Events:
		if !ok {
			t.Fatal("controller event stream closed")
		}
		return ev
	case <-deadline:
		t.Fatal("timed out waiting for controller event")
	}
	return Event{}
}

func TestSpawnRoutingAndExitEvents(t *testing.T) {
	s := serve(t, ServerConfig{LeaseTTL: 2 * time.Second})
	agent, err := DialAgent(AgentConfig{Coord: s.Addr(), Job: "j", Host: "h1", Slots: 4})
	if err != nil {
		t.Fatalf("dial agent: %v", err)
	}
	defer agent.Close()

	ctrl, err := DialController(s.Addr(), "j", 0)
	if err != nil {
		t.Fatalf("dial controller: %v", err)
	}
	defer ctrl.Close()
	deadline := time.After(5 * time.Second)
	for nextEvent(t, ctrl, deadline).Kind != EventSync {
	}

	// Spawn routes to the agent with argv/env intact.
	if err := ctrl.Spawn("h1", "rank-0", []string{"/bin/prog", "-rank", "0"}, "/tmp", []string{"K=V"}); err != nil {
		t.Fatalf("spawn: %v", err)
	}
	select {
	case cmd := <-agent.Commands:
		if cmd.Kind != CmdSpawn || cmd.ID != "rank-0" || len(cmd.Argv) != 3 || cmd.Argv[0] != "/bin/prog" || len(cmd.Env) != 1 {
			t.Fatalf("agent got %+v", cmd)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("spawn never reached the agent")
	}

	// Signal routes by spawn id.
	if err := ctrl.Signal("rank-0", 15); err != nil {
		t.Fatalf("signal: %v", err)
	}
	select {
	case cmd := <-agent.Commands:
		if cmd.Kind != CmdSignal || cmd.ID != "rank-0" || cmd.Sig != 15 {
			t.Fatalf("agent got %+v", cmd)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("signal never reached the agent")
	}

	// Exit reports flow back with host attribution.
	if err := agent.ReportExit("rank-0", 3, "boom"); err != nil {
		t.Fatalf("report exit: %v", err)
	}
	ev := nextEvent(t, ctrl, deadline)
	if ev.Kind != EventExit || ev.ID != "rank-0" || ev.Code != 3 || ev.Err != "boom" || ev.Host != "h1" {
		t.Fatalf("exit event = %+v", ev)
	}

	// Spawning on an unknown host yields a synthetic exit, not silence.
	if err := ctrl.Spawn("nope", "rank-9", []string{"/bin/prog"}, "", nil); err != nil {
		t.Fatalf("spawn unknown host: %v", err)
	}
	ev = nextEvent(t, ctrl, deadline)
	if ev.Kind != EventExit || ev.ID != "rank-9" || ev.Code != -1 {
		t.Fatalf("unknown-host spawn event = %+v", ev)
	}
}

func TestAgentDeathOrphansSpawnsToController(t *testing.T) {
	s := serve(t, ServerConfig{LeaseTTL: 5 * time.Second})
	agent, err := DialAgent(AgentConfig{Coord: s.Addr(), Job: "j", Host: "h1", Slots: 4})
	if err != nil {
		t.Fatalf("dial agent: %v", err)
	}
	ctrl, err := DialController(s.Addr(), "j", 0)
	if err != nil {
		t.Fatalf("dial controller: %v", err)
	}
	defer ctrl.Close()
	deadline := time.After(5 * time.Second)
	for nextEvent(t, ctrl, deadline).Kind != EventSync {
	}

	if err := ctrl.Spawn("h1", "rank-0", []string{"/bin/prog"}, "", nil); err != nil {
		t.Fatalf("spawn: %v", err)
	}
	<-agent.Commands

	// The agent dies (host crash): its live spawns synthesize exits and the
	// controller learns the host is gone — in that order, so the driver sees
	// every spawn resolve before re-placing.
	agent.Close()
	sawExit := false
	for {
		ev := nextEvent(t, ctrl, deadline)
		if ev.Kind == EventExit && ev.ID == "rank-0" {
			sawExit = true
		}
		if ev.Kind == EventHostLost {
			if ev.Host != "h1" {
				t.Fatalf("lost host %q, want h1", ev.Host)
			}
			break
		}
	}
	if !sawExit {
		t.Fatal("orphaned spawn produced no exit event before host-lost")
	}
}
