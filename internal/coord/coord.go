// Package coord implements the rendezvous coordinator that replaces
// hand-written -hosts lists for multi-host deployments. Ranks register under
// a job id and block on a join barrier; when the expected world size has
// registered, the coordinator seals the membership and hands every rank the
// full address map plus a monotonically increasing generation token.
//
// The generation is a fencing token: every seal — including the relaunch of
// the same job at a higher epoch after a failure — bumps it, and the
// coordinator rejects heartbeats carrying a superseded generation with a
// typed *FencedError. A stale rank returning from a healed network partition
// therefore learns it has been fenced instead of silently re-entering (and
// corrupting) a live world; the mpi layer additionally embeds the token in
// its mesh handshake so the data plane rejects stale dialers even when the
// control plane has not yet noticed them.
//
// The same server doubles as the WAN supervision rendezvous: host agents
// register under a job with a slot capacity and hold a lease by pinging
// within the configured TTL; a controller (the supervising driver) attaches
// to the job, learns the host set, and routes spawn/signal commands to
// agents through the coordinator. A host whose lease lapses is condemned
// server-side — its registration is dropped and the controller is told, so
// the driver can re-place the dead host's ranks on the survivors.
//
// All protocol traffic is newline-delimited JSON, mirroring the beacon wire
// format in internal/supervisor: one request or event per line, human
// readable, and trivially inspectable with nc.
package coord

import (
	"fmt"
	"time"
)

// FencedError reports that a presented generation token has been superseded:
// the world the caller belongs to was replaced (relaunch, partition heal on
// the losing side) and the caller must not touch the live world.
type FencedError struct {
	Job     string
	Gen     uint64 // the stale token the caller presented
	Current uint64 // the generation that superseded it
}

func (e *FencedError) Error() string {
	return fmt.Sprintf("coord: job %q generation %d fenced by generation %d", e.Job, e.Gen, e.Current)
}

// World is the sealed membership a successful Join returns.
type World struct {
	// Gen is the fencing token for this incarnation of the job. It is
	// strictly greater than the token of any world the coordinator sealed
	// before it (for any epoch of the same job).
	Gen uint64
	// Addrs[i] is the advertised mesh address of rank i.
	Addrs []string
	// LeaseTTL is the coordinator's lease length: a heartbeat or agent ping
	// cadence comfortably inside it keeps the registration alive.
	LeaseTTL time.Duration
}

// Response codes. Fenced and conflict are terminal for the caller's current
// incarnation; retry marks conditions that a fresh attempt may resolve
// (barrier timed out, coordinator restarted and lost the job).
const (
	codeFenced   = "fenced"
	codeConflict = "conflict"
	codeRetry    = "retry"
)

// request is the first line of every client connection; Op selects the
// session kind ("join", "heartbeat", "agent", "control"). Heartbeat sessions
// repeat the same shape on every subsequent line.
type request struct {
	Op    string `json:"op"`
	Job   string `json:"job"`
	Epoch int    `json:"epoch,omitempty"`
	Rank  int    `json:"rank,omitempty"`
	Size  int    `json:"size,omitempty"`
	Addr  string `json:"addr,omitempty"`
	Gen   uint64 `json:"gen,omitempty"`
	Host  string `json:"host,omitempty"`
	Slots int    `json:"slots,omitempty"`
}

// response answers a join or heartbeat line.
type response struct {
	OK      bool     `json:"ok"`
	Code    string   `json:"code,omitempty"`
	Error   string   `json:"error,omitempty"`
	Gen     uint64   `json:"gen,omitempty"`
	Addrs   []string `json:"addrs,omitempty"`
	LeaseMS int64    `json:"lease_ms,omitempty"`
}

// command flows controller → coordinator → agent.
type command struct {
	Cmd  string   `json:"cmd"` // "spawn" or "signal"
	ID   string   `json:"id,omitempty"`
	Host string   `json:"host,omitempty"` // spawn target (controller side only)
	Argv []string `json:"argv,omitempty"`
	Dir  string   `json:"dir,omitempty"`
	Env  []string `json:"env,omitempty"`
	Sig  int      `json:"sig,omitempty"`
}

// Command kinds an Agent receives.
const (
	CmdSpawn  = "spawn"
	CmdSignal = "signal"
)

// event flows agent → coordinator → controller (and coordinator → controller
// for membership changes).
type event struct {
	Event string `json:"event"`
	Host  string `json:"host,omitempty"`
	Slots int    `json:"slots,omitempty"`
	ID    string `json:"id,omitempty"`
	Code  int    `json:"code,omitempty"`
	Err   string `json:"err,omitempty"`
}

// Event kinds a Controller observes.
const (
	EventHost     = "host"      // a host agent is registered (snapshot + live)
	EventHostLost = "host-lost" // a host's lease lapsed or its agent hung up
	EventSync     = "sync"      // end of the registration snapshot on attach
	EventExit     = "exit"      // a spawned process exited (Code, Err)
	EventPing     = "ping"      // agent lease renewal (not forwarded)
)
