package coord

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"
)

// ServerConfig tunes the coordinator. The zero value selects production
// defaults; tests shrink the lease and barrier timeouts.
type ServerConfig struct {
	// LeaseTTL is how long a host agent may stay silent before the
	// coordinator condemns it and tells the controller. Default 5s.
	LeaseTTL time.Duration
	// JoinTimeout bounds an incomplete join barrier: if the world does not
	// fill within it, every waiting rank gets a retryable error and the
	// barrier resets. Default 30s.
	JoinTimeout time.Duration
	// GenBase seeds the generation counter. A coordinator that restarts
	// loses its in-memory counter; operators who need fencing to survive a
	// coordinator restart derive GenBase from a clock so a reborn
	// coordinator never re-issues an old token (cmd/dcoord does this).
	GenBase uint64
	// Logf, when non-nil, receives one line per membership change and
	// condemnation for operator visibility.
	Logf func(format string, args ...any)
}

func (c *ServerConfig) fill() {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 5 * time.Second
	}
	if c.JoinTimeout <= 0 {
		c.JoinTimeout = 30 * time.Second
	}
}

// Server is the rendezvous coordinator. One server hosts any number of
// independent jobs.
type Server struct {
	cfg ServerConfig
	ln  net.Listener

	mu     sync.Mutex
	gen    uint64 // last issued generation, monotonic across every job
	jobs   map[string]*job
	conns  map[net.Conn]struct{}
	closed bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// job is one named world: at most one sealed membership, at most one barrier
// in progress, plus the host-agent registry for WAN supervision.
type job struct {
	name    string
	world   *worldState
	barrier *barrier
	hosts   map[string]*agentConn
	spawns  map[string]string // live spawn id -> host
	ctrl    *ctrlConn
}

type worldState struct {
	gen   uint64
	epoch int
	addrs []string
	beat  []time.Time // last heartbeat per rank (diagnostics)
}

// barrier collects joiners for one (job, epoch) until size of them have
// registered. done closes on seal or failure; gen/err are valid after.
type barrier struct {
	epoch  int
	size   int
	addrs  []string
	joined int
	done   chan struct{}
	gen    uint64
	err    *response // terminal failure to report to every waiter
	timer  *time.Timer
}

// agentConn is one registered host agent. writes are serialized by wmu so
// the controller router and the reaper never interleave JSON lines.
type agentConn struct {
	host     string
	slots    int
	conn     net.Conn
	enc      *json.Encoder
	wmu      sync.Mutex
	lastPing time.Time
}

func (a *agentConn) send(v any) error {
	a.wmu.Lock()
	defer a.wmu.Unlock()
	a.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	return a.enc.Encode(v)
}

// ctrlConn is the attached controller for a job.
type ctrlConn struct {
	conn net.Conn
	enc  *json.Encoder
	wmu  sync.Mutex
}

func (c *ctrlConn) send(v any) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	return c.enc.Encode(v)
}

// Serve starts a coordinator listening on addr ("host:port", port may be 0).
func Serve(addr string, cfg ServerConfig) (*Server, error) {
	cfg.fill()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("coord: listen %s: %w", addr, err)
	}
	s := &Server{
		cfg:   cfg,
		ln:    ln,
		jobs:  make(map[string]*job),
		conns: make(map[net.Conn]struct{}),
		stop:  make(chan struct{}),
		gen:   cfg.GenBase,
	}
	s.wg.Add(2)
	go s.acceptLoop()
	go s.reapLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Close shuts the coordinator down: the listener and every live session
// close, and in-progress barriers fail with a retryable error so waiting
// ranks fall back to their dial-retry loops.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.stop)
	for conn := range s.conns {
		conn.Close()
	}
	for _, j := range s.jobs {
		if j.barrier != nil {
			j.barrier.failLocked(&response{Code: codeRetry, Error: "coordinator shut down"})
			j.barrier = nil
		}
	}
	s.mu.Unlock()
	s.ln.Close()
	s.wg.Wait()
	return nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
			conn.Close()
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	dec := json.NewDecoder(bufio.NewReader(conn))
	var req request
	if err := dec.Decode(&req); err != nil {
		return
	}
	switch req.Op {
	case "join":
		s.handleJoin(conn, req)
	case "heartbeat":
		s.handleBeats(conn, dec, req)
	case "agent":
		s.handleAgent(conn, dec, req)
	case "control":
		s.handleControl(conn, dec, req)
	default:
		writeLine(conn, response{Code: codeConflict, Error: fmt.Sprintf("unknown op %q", req.Op)})
	}
}

func writeLine(conn net.Conn, v any) error {
	conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	return json.NewEncoder(conn).Encode(v)
}

func (s *Server) job(name string) *job {
	j := s.jobs[name]
	if j == nil {
		j = &job{name: name, hosts: make(map[string]*agentConn), spawns: make(map[string]string)}
		s.jobs[name] = j
	}
	return j
}

// failLocked terminates a barrier with resp; callers hold s.mu.
func (b *barrier) failLocked(resp *response) {
	if b.err == nil {
		b.err = resp
	}
	if b.timer != nil {
		b.timer.Stop()
	}
	select {
	case <-b.done:
	default:
		close(b.done)
	}
}

// --- join barrier -----------------------------------------------------------

func (s *Server) handleJoin(conn net.Conn, req request) {
	b, resp := s.joinBarrier(req)
	if b == nil {
		writeLine(conn, resp)
		return
	}
	<-b.done
	s.mu.Lock()
	if b.err != nil {
		resp = *b.err
		s.mu.Unlock()
		writeLine(conn, resp)
		return
	}
	resp = response{OK: true, Gen: b.gen, Addrs: append([]string(nil), b.addrs...), LeaseMS: s.cfg.LeaseTTL.Milliseconds()}
	s.mu.Unlock()
	writeLine(conn, resp)
}

// joinBarrier registers one joiner. It returns either a barrier to wait on
// or an immediate response (sealed world replay, fencing, or a hard error).
func (s *Server) joinBarrier(req request) (*barrier, response) {
	if req.Size <= 0 || req.Rank < 0 || req.Rank >= req.Size {
		return nil, response{Code: codeConflict, Error: fmt.Sprintf("rank %d out of range for size %d", req.Rank, req.Size)}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, response{Code: codeRetry, Error: "coordinator shut down"}
	}
	j := s.job(req.Job)

	if j.world != nil {
		if req.Epoch < j.world.epoch {
			return nil, response{Code: codeFenced, Gen: j.world.gen, Error: fmt.Sprintf("epoch %d superseded by epoch %d", req.Epoch, j.world.epoch)}
		}
		if req.Epoch == j.world.epoch {
			// Idempotent replay: the rank joined this epoch but lost the
			// response (or is retrying after a coordinator hiccup).
			if req.Size != len(j.world.addrs) {
				return nil, response{Code: codeConflict, Error: fmt.Sprintf("size %d conflicts with sealed size %d", req.Size, len(j.world.addrs))}
			}
			return nil, response{OK: true, Gen: j.world.gen, Addrs: append([]string(nil), j.world.addrs...), LeaseMS: s.cfg.LeaseTTL.Milliseconds()}
		}
	}

	if j.barrier != nil {
		switch {
		case req.Epoch < j.barrier.epoch:
			return nil, response{Code: codeFenced, Error: fmt.Sprintf("epoch %d superseded by forming epoch %d", req.Epoch, j.barrier.epoch)}
		case req.Epoch > j.barrier.epoch:
			// A newer incarnation started forming: the old barrier can never
			// complete (its epoch is doomed), so fail its waiters fenced.
			j.barrier.failLocked(&response{Code: codeFenced, Error: fmt.Sprintf("epoch %d superseded by forming epoch %d", j.barrier.epoch, req.Epoch)})
			j.barrier = nil
		default:
			if req.Size != j.barrier.size {
				return nil, response{Code: codeConflict, Error: fmt.Sprintf("size %d conflicts with barrier size %d", req.Size, j.barrier.size)}
			}
		}
	}
	if j.barrier == nil {
		b := &barrier{epoch: req.Epoch, size: req.Size, addrs: make([]string, req.Size), done: make(chan struct{})}
		b.timer = time.AfterFunc(s.cfg.JoinTimeout, func() { s.expireBarrier(j.name, b) })
		j.barrier = b
	}
	b := j.barrier
	if prev := b.addrs[req.Rank]; prev != "" && prev != req.Addr {
		return nil, response{Code: codeConflict, Error: fmt.Sprintf("rank %d already joined from %s", req.Rank, prev)}
	}
	if b.addrs[req.Rank] == "" {
		b.addrs[req.Rank] = req.Addr
		b.joined++
	}
	if b.joined == b.size {
		s.gen++
		b.gen = s.gen
		now := time.Now()
		beat := make([]time.Time, b.size)
		for i := range beat {
			beat[i] = now
		}
		j.world = &worldState{gen: b.gen, epoch: b.epoch, addrs: append([]string(nil), b.addrs...), beat: beat}
		j.barrier = nil
		b.timer.Stop()
		close(b.done)
		s.logf("coord: job %q epoch %d sealed: generation %d, %d ranks", j.name, b.epoch, b.gen, b.size)
	}
	return b, response{}
}

// expireBarrier fails a barrier that never filled, unless it sealed (or was
// replaced) in the meantime.
func (s *Server) expireBarrier(jobName string, b *barrier) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[jobName]
	if j == nil || j.barrier != b {
		return
	}
	b.failLocked(&response{Code: codeRetry, Error: fmt.Sprintf("join barrier epoch %d timed out with %d/%d ranks", b.epoch, b.joined, b.size)})
	j.barrier = nil
	s.logf("coord: job %q epoch %d barrier expired with %d/%d ranks", jobName, b.epoch, b.joined, b.size)
}

// --- heartbeats -------------------------------------------------------------

func (s *Server) handleBeats(conn net.Conn, dec *json.Decoder, req request) {
	for {
		resp := s.beat(req)
		if writeLine(conn, resp) != nil {
			return
		}
		if resp.Code == codeFenced {
			return // terminal: the session is dead, hang up after telling it
		}
		if err := dec.Decode(&req); err != nil {
			return
		}
	}
}

func (s *Server) beat(req request) response {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[req.Job]
	if j == nil || j.world == nil {
		// Coordinator restarted (or the job never sealed): the token cannot
		// be validated. Retryable — the supervisor will rebuild the world.
		return response{Code: codeRetry, Error: fmt.Sprintf("job %q has no sealed world", req.Job)}
	}
	w := j.world
	if req.Gen < w.gen {
		return response{Code: codeFenced, Gen: w.gen, Error: (&FencedError{Job: req.Job, Gen: req.Gen, Current: w.gen}).Error()}
	}
	if req.Gen > w.gen {
		return response{Code: codeConflict, Error: fmt.Sprintf("generation %d from the future (current %d)", req.Gen, w.gen)}
	}
	if req.Rank >= 0 && req.Rank < len(w.beat) {
		w.beat[req.Rank] = time.Now()
	}
	return response{OK: true, Gen: w.gen}
}

// --- host agents ------------------------------------------------------------

func (s *Server) handleAgent(conn net.Conn, dec *json.Decoder, req request) {
	if req.Host == "" || req.Slots <= 0 {
		writeLine(conn, response{Code: codeConflict, Error: "agent registration needs host name and positive slots"})
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	j := s.job(req.Job)
	if j.hosts[req.Host] != nil {
		s.mu.Unlock()
		writeLine(conn, response{Code: codeConflict, Error: fmt.Sprintf("host %q already registered", req.Host)})
		return
	}
	a := &agentConn{host: req.Host, slots: req.Slots, conn: conn, enc: json.NewEncoder(conn), lastPing: time.Now()}
	j.hosts[req.Host] = a
	ctrl := j.ctrl
	s.mu.Unlock()
	s.logf("coord: job %q host %q registered (%d slots)", req.Job, req.Host, req.Slots)
	if a.send(response{OK: true, LeaseMS: s.cfg.LeaseTTL.Milliseconds()}) != nil {
		s.dropHost(req.Job, req.Host, "registration write failed")
		return
	}
	if ctrl != nil {
		ctrl.send(event{Event: EventHost, Host: req.Host, Slots: req.Slots})
	}

	for {
		var ev event
		if err := dec.Decode(&ev); err != nil {
			s.dropHost(req.Job, req.Host, "agent connection lost")
			return
		}
		switch ev.Event {
		case EventPing:
			s.mu.Lock()
			a.lastPing = time.Now()
			s.mu.Unlock()
		case EventExit:
			s.mu.Lock()
			delete(j.spawns, ev.ID)
			ctrl := j.ctrl
			s.mu.Unlock()
			if ctrl != nil {
				ctrl.send(event{Event: EventExit, Host: req.Host, ID: ev.ID, Code: ev.Code, Err: ev.Err})
			}
		}
	}
}

// dropHost condemns one host: its registration disappears, its live spawns
// synthesize exit events (so the controller's wait loop stays uniform), and
// the controller learns the host is gone. Idempotent.
func (s *Server) dropHost(jobName, host, why string) {
	s.mu.Lock()
	j := s.jobs[jobName]
	if j == nil {
		s.mu.Unlock()
		return
	}
	a := j.hosts[host]
	if a == nil {
		s.mu.Unlock()
		return
	}
	delete(j.hosts, host)
	var orphans []string
	for id, h := range j.spawns {
		if h == host {
			orphans = append(orphans, id)
			delete(j.spawns, id)
		}
	}
	ctrl := j.ctrl
	s.mu.Unlock()
	a.conn.Close()
	s.logf("coord: job %q host %q condemned: %s (%d orphaned spawns)", jobName, host, why, len(orphans))
	if ctrl != nil {
		for _, id := range orphans {
			ctrl.send(event{Event: EventExit, Host: host, ID: id, Code: -1, Err: "host lost: " + why})
		}
		ctrl.send(event{Event: EventHostLost, Host: host, Err: why})
	}
}

// reapLoop condemns hosts whose lease lapsed — the coordinator-side failure
// detector for silent hosts whose TCP connections are still nominally open
// (asymmetric partition, frozen machine).
func (s *Server) reapLoop() {
	defer s.wg.Done()
	tick := time.NewTicker(s.cfg.LeaseTTL / 4)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			type victim struct{ job, host string }
			var victims []victim
			s.mu.Lock()
			now := time.Now()
			for name, j := range s.jobs {
				for host, a := range j.hosts {
					if now.Sub(a.lastPing) > s.cfg.LeaseTTL {
						victims = append(victims, victim{name, host})
					}
				}
			}
			s.mu.Unlock()
			for _, v := range victims {
				s.dropHost(v.job, v.host, "lease expired")
			}
		}
	}
}

// --- controller -------------------------------------------------------------

func (s *Server) handleControl(conn net.Conn, dec *json.Decoder, req request) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	j := s.job(req.Job)
	if old := j.ctrl; old != nil {
		// A supervisor restart re-attaches; the stale controller is dead
		// weight and its conn is closed in its read loop's error path.
		old.conn.Close()
	}
	c := &ctrlConn{conn: conn, enc: json.NewEncoder(conn)}
	j.ctrl = c
	hosts := make([]*agentConn, 0, len(j.hosts))
	for _, a := range j.hosts {
		hosts = append(hosts, a)
	}
	s.mu.Unlock()

	if c.send(response{OK: true, LeaseMS: s.cfg.LeaseTTL.Milliseconds()}) != nil {
		s.detachControl(req.Job, c)
		return
	}
	for _, a := range hosts {
		c.send(event{Event: EventHost, Host: a.host, Slots: a.slots})
	}
	c.send(event{Event: EventSync})

	for {
		var cmd command
		if err := dec.Decode(&cmd); err != nil {
			s.detachControl(req.Job, c)
			return
		}
		switch cmd.Cmd {
		case CmdSpawn:
			s.mu.Lock()
			a := j.hosts[cmd.Host]
			if a != nil {
				j.spawns[cmd.ID] = cmd.Host
			}
			s.mu.Unlock()
			if a == nil {
				c.send(event{Event: EventExit, Host: cmd.Host, ID: cmd.ID, Code: -1, Err: fmt.Sprintf("no such host %q", cmd.Host)})
				continue
			}
			if a.send(command{Cmd: CmdSpawn, ID: cmd.ID, Argv: cmd.Argv, Dir: cmd.Dir, Env: cmd.Env}) != nil {
				s.dropHost(req.Job, cmd.Host, "spawn write failed")
			}
		case CmdSignal:
			s.mu.Lock()
			host := j.spawns[cmd.ID]
			a := j.hosts[host]
			s.mu.Unlock()
			if a == nil {
				continue // already exited or host condemned: signal is moot
			}
			if a.send(command{Cmd: CmdSignal, ID: cmd.ID, Sig: cmd.Sig}) != nil {
				s.dropHost(req.Job, host, "signal write failed")
			}
		}
	}
}

func (s *Server) detachControl(jobName string, c *ctrlConn) {
	s.mu.Lock()
	if j := s.jobs[jobName]; j != nil && j.ctrl == c {
		j.ctrl = nil
	}
	s.mu.Unlock()
}
