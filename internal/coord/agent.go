package coord

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"
)

// AgentConfig describes a host agent registration.
type AgentConfig struct {
	Coord string
	Job   string
	Host  string // unique host name within the job
	Slots int    // how many ranks this host is willing to run
	// PingInterval renews the lease; zero selects a third of the TTL the
	// coordinator returned.
	PingInterval time.Duration
	DialTimeout  time.Duration
}

// Agent is one registered host. The process-execution side lives in the
// caller (cmd/dlouvain's host-agent mode): the agent surfaces coordinator
// commands on Commands and the caller reports outcomes via ReportExit. The
// agent pings the coordinator in the background to hold its lease; when the
// connection dies, Commands closes and the caller re-registers (the
// coordinator has already condemned the old registration by then).
type Agent struct {
	Commands <-chan Command

	conn net.Conn
	enc  *json.Encoder
	wmu  sync.Mutex
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// Command is one instruction from the controller.
type Command struct {
	Kind string // CmdSpawn or CmdSignal
	ID   string
	Argv []string
	Dir  string
	Env  []string
	Sig  int
}

// DialAgent registers a host agent with the coordinator.
func DialAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	conn, err := net.DialTimeout("tcp", cfg.Coord, cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("coord: agent dial %s: %w", cfg.Coord, err)
	}
	dec := json.NewDecoder(bufio.NewReader(conn))
	a := &Agent{conn: conn, enc: json.NewEncoder(conn), stop: make(chan struct{}), done: make(chan struct{})}
	conn.SetDeadline(time.Now().Add(cfg.DialTimeout * 2))
	if err := a.send(request{Op: "agent", Job: cfg.Job, Host: cfg.Host, Slots: cfg.Slots}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("coord: agent register: %w", err)
	}
	var resp response
	if err := dec.Decode(&resp); err != nil {
		conn.Close()
		return nil, fmt.Errorf("coord: agent register: %w", err)
	}
	if !resp.OK {
		conn.Close()
		return nil, fmt.Errorf("coord: agent register: %s", resp.Error)
	}
	conn.SetDeadline(time.Time{})

	ping := cfg.PingInterval
	if ping <= 0 {
		if ttl := time.Duration(resp.LeaseMS) * time.Millisecond; ttl > 0 {
			ping = ttl / 3
		} else {
			ping = time.Second
		}
	}
	cmds := make(chan Command, 16)
	a.Commands = cmds

	go func() { // lease renewal
		tick := time.NewTicker(ping)
		defer tick.Stop()
		for {
			select {
			case <-a.stop:
				return
			case <-tick.C:
				if a.send(event{Event: EventPing}) != nil {
					return // read loop notices the dead conn and closes Commands
				}
			}
		}
	}()
	go func() { // command reader
		defer close(a.done)
		defer close(cmds)
		for {
			var cmd command
			if err := dec.Decode(&cmd); err != nil {
				return
			}
			select {
			case cmds <- Command{Kind: cmd.Cmd, ID: cmd.ID, Argv: cmd.Argv, Dir: cmd.Dir, Env: cmd.Env, Sig: cmd.Sig}:
			case <-a.stop:
				return
			}
		}
	}()
	return a, nil
}

func (a *Agent) send(v any) error {
	a.wmu.Lock()
	defer a.wmu.Unlock()
	a.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	return a.enc.Encode(v)
}

// ReportExit tells the controller a spawned process finished.
func (a *Agent) ReportExit(id string, code int, errMsg string) error {
	return a.send(event{Event: EventExit, ID: id, Code: code, Err: errMsg})
}

// Close deregisters the agent (the coordinator condemns the host when the
// connection drops).
func (a *Agent) Close() {
	a.once.Do(func() { close(a.stop) })
	a.conn.Close()
	<-a.done
}

// --- controller -------------------------------------------------------------

// Event is one notification the coordinator pushes to a controller.
type Event struct {
	Kind  string // EventHost, EventHostLost, EventSync, EventExit
	Host  string
	Slots int
	ID    string
	Code  int
	Err   string
}

// Controller is the supervising driver's attachment to a job: it observes
// host membership and spawn exits on Events and routes spawn/signal commands
// through the coordinator. Events closes when the coordinator connection
// dies; the driver treats that like any other retryable world failure.
type Controller struct {
	Events   <-chan Event
	LeaseTTL time.Duration

	conn net.Conn
	enc  *json.Encoder
	wmu  sync.Mutex
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// DialController attaches to a job as its (sole) controller.
func DialController(coordAddr, jobName string, dialTimeout time.Duration) (*Controller, error) {
	if dialTimeout <= 0 {
		dialTimeout = 2 * time.Second
	}
	conn, err := net.DialTimeout("tcp", coordAddr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("coord: controller dial %s: %w", coordAddr, err)
	}
	dec := json.NewDecoder(bufio.NewReader(conn))
	c := &Controller{conn: conn, enc: json.NewEncoder(conn), stop: make(chan struct{}), done: make(chan struct{})}
	conn.SetDeadline(time.Now().Add(dialTimeout * 2))
	if err := c.send(request{Op: "control", Job: jobName}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("coord: controller attach: %w", err)
	}
	var resp response
	if err := dec.Decode(&resp); err != nil {
		conn.Close()
		return nil, fmt.Errorf("coord: controller attach: %w", err)
	}
	if !resp.OK {
		conn.Close()
		return nil, fmt.Errorf("coord: controller attach: %s", resp.Error)
	}
	conn.SetDeadline(time.Time{})
	c.LeaseTTL = time.Duration(resp.LeaseMS) * time.Millisecond

	events := make(chan Event, 64)
	c.Events = events
	go func() {
		defer close(c.done)
		defer close(events)
		for {
			var ev event
			if err := dec.Decode(&ev); err != nil {
				return
			}
			select {
			case events <- Event{Kind: ev.Event, Host: ev.Host, Slots: ev.Slots, ID: ev.ID, Code: ev.Code, Err: ev.Err}:
			case <-c.stop:
				return
			}
		}
	}()
	return c, nil
}

func (c *Controller) send(v any) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	return c.enc.Encode(v)
}

// Spawn asks host to exec argv (argv[0] is the binary) with extra
// environment env, identified by id in later Signal calls and EventExit.
// Outcomes — including "no such host" — arrive as EventExit events.
func (c *Controller) Spawn(host, id string, argv []string, dir string, env []string) error {
	return c.send(command{Cmd: CmdSpawn, Host: host, ID: id, Argv: argv, Dir: dir, Env: env})
}

// Signal delivers a signal number to a spawned process by id. Signalling an
// already-exited id is a silent no-op.
func (c *Controller) Signal(id string, sig int) error {
	return c.send(command{Cmd: CmdSignal, ID: id, Sig: sig})
}

// Close detaches the controller.
func (c *Controller) Close() {
	c.once.Do(func() { close(c.stop) })
	c.conn.Close()
	<-c.done
}
