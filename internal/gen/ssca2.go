package gen

import (
	"fmt"

	"distlouvain/internal/graph"
	"distlouvain/internal/par"
)

// SSCA2Options configures the SSCA#2 generator (the DARPA HPCS graph
// analysis benchmark model implemented by GTgraph, which the paper uses for
// weak scaling). The graph is a union of random-sized cliques with sparse
// inter-clique edges.
type SSCA2Options struct {
	N             int64   // total vertices
	MaxCliqueSize int64   // cliques are uniform in [1, MaxCliqueSize]
	InterProb     float64 // probability scale of inter-clique edges per vertex
	Seed          uint64
}

// SSCA2 generates the graph and returns its edges plus the clique membership
// (a natural ground truth: with low InterProb, Louvain should recover the
// cliques almost exactly, which is why the paper's Table V modularities are
// ≈0.9999).
func SSCA2(opt SSCA2Options) (int64, []graph.RawEdge, []int64, error) {
	if opt.N <= 0 {
		return 0, nil, nil, fmt.Errorf("gen: SSCA2 N=%d must be positive", opt.N)
	}
	if opt.MaxCliqueSize <= 0 {
		return 0, nil, nil, fmt.Errorf("gen: SSCA2 MaxCliqueSize=%d must be positive", opt.MaxCliqueSize)
	}
	if opt.InterProb < 0 || opt.InterProb > 1 {
		return 0, nil, nil, fmt.Errorf("gen: SSCA2 InterProb=%g out of [0,1]", opt.InterProb)
	}
	rng := par.NewXoshiro256(opt.Seed)
	truth := make([]int64, opt.N)
	var edges []graph.RawEdge

	// Carve [0, N) into consecutive cliques of random size.
	var cliqueID int64
	var starts []int64
	for base := int64(0); base < opt.N; {
		size := rng.Int63n(opt.MaxCliqueSize) + 1
		if base+size > opt.N {
			size = opt.N - base
		}
		starts = append(starts, base)
		for i := int64(0); i < size; i++ {
			truth[base+i] = cliqueID
		}
		// Fully connect the clique.
		for i := int64(0); i < size; i++ {
			for j := i + 1; j < size; j++ {
				edges = append(edges, graph.RawEdge{U: base + i, V: base + j, W: 1})
			}
		}
		base += size
		cliqueID++
	}
	starts = append(starts, opt.N)

	// Sparse inter-clique edges: each vertex links to a vertex of another
	// clique with probability InterProb.
	if cliqueID > 1 {
		for v := int64(0); v < opt.N; v++ {
			if rng.Float64() >= opt.InterProb {
				continue
			}
			u := rng.Int63n(opt.N)
			for truth[u] == truth[v] {
				u = rng.Int63n(opt.N)
			}
			edges = append(edges, graph.RawEdge{U: v, V: u, W: 1})
		}
	}
	return opt.N, edges, truth, nil
}

// SSCA2ForScale returns an SSCA#2 configuration whose expected work is
// proportional to units, used by the weak-scaling harness: vertices scale
// linearly with units while clique size and inter-clique probability stay
// fixed, matching the paper's Table V setup (max clique 100 at full scale,
// "deliberately low" inter-clique probability).
func SSCA2ForScale(units int64, verticesPerUnit int64, seed uint64) SSCA2Options {
	return SSCA2Options{
		N:             units * verticesPerUnit,
		MaxCliqueSize: 24,
		InterProb:     0.02,
		Seed:          seed,
	}
}
