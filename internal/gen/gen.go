// Package gen provides the synthetic workload generators used to reproduce
// the paper's experiments at laptop scale:
//
//   - RMAT: power-law Kronecker graphs standing in for the social/web
//     datasets (com-orkut, soc-friendster, twitter-2010, web-cc12, …).
//   - BandedMesh: a banded, locally connected structure standing in for the
//     "channel" and nlpkkt240 PDE meshes (high modularity, regular degree).
//   - WattsStrogatz: small-world graphs standing in for CNR-like webs.
//   - SSCA2: the DARPA HPCS SSCA#2 clique-based generator (GTgraph's model)
//     used by the paper's weak-scaling study (Table V, Fig. 4).
//   - LFR: Lancichinetti–Fortunato–Radicchi-style benchmark graphs with
//     ground-truth communities for the quality study (Table VII).
//   - PlantedPartition and ErdosRenyi as auxiliary test workloads.
//
// All generators are deterministic in their seed.
package gen

import (
	"fmt"

	"distlouvain/internal/graph"
	"distlouvain/internal/par"
)

// ErdosRenyi generates G(n, m): m undirected edges drawn uniformly with
// replacement over distinct endpoint pairs (duplicates merge at build time).
func ErdosRenyi(n, m int64, seed uint64) (int64, []graph.RawEdge) {
	rng := par.NewXoshiro256(seed)
	edges := make([]graph.RawEdge, 0, m)
	if n < 2 {
		return n, nil
	}
	for i := int64(0); i < m; i++ {
		u := rng.Int63n(n)
		v := rng.Int63n(n)
		for v == u {
			v = rng.Int63n(n)
		}
		edges = append(edges, graph.RawEdge{U: u, V: v, W: 1})
	}
	return n, edges
}

// PlantedPartition generates k communities of the given size. Each
// intra-community pair is connected with probability pIn and each
// inter-community pair with pOut (sampled sparsely, so pOut must be small).
// It returns the graph and the planted ground truth.
func PlantedPartition(k int, size int64, pIn, pOut float64, seed uint64) (int64, []graph.RawEdge, []int64) {
	n := int64(k) * size
	rng := par.NewXoshiro256(seed)
	truth := make([]int64, n)
	var edges []graph.RawEdge
	for c := 0; c < k; c++ {
		base := int64(c) * size
		for i := int64(0); i < size; i++ {
			truth[base+i] = int64(c)
		}
		// Dense sampling within the community.
		for i := int64(0); i < size; i++ {
			for j := i + 1; j < size; j++ {
				if rng.Float64() < pIn {
					edges = append(edges, graph.RawEdge{U: base + i, V: base + j, W: 1})
				}
			}
		}
	}
	// Sparse sampling between communities: expected count =
	// pOut * (#inter pairs); draw that many random inter pairs.
	interPairs := float64(n)*float64(n-1)/2 - float64(k)*float64(size)*float64(size-1)/2
	want := int64(pOut * interPairs)
	for i := int64(0); i < want; i++ {
		u := rng.Int63n(n)
		v := rng.Int63n(n)
		for v == u || truth[v] == truth[u] {
			v = rng.Int63n(n)
		}
		edges = append(edges, graph.RawEdge{U: u, V: v, W: 1})
	}
	return n, edges, truth
}

// RMAT generates a recursive-matrix (R-MAT) graph with 2^scale vertices and
// edgeFactor·2^scale edges using quadrant probabilities (a, b, c, d),
// a+b+c+d = 1. The classic social-network setting is (0.57, 0.19, 0.19,
// 0.05); web-like graphs skew a higher.
func RMAT(scale int, edgeFactor int64, a, b, c, d float64, seed uint64) (int64, []graph.RawEdge, error) {
	if scale <= 0 || scale > 40 {
		return 0, nil, fmt.Errorf("gen: RMAT scale %d out of range (0,40]", scale)
	}
	sum := a + b + c + d
	if sum < 0.999 || sum > 1.001 {
		return 0, nil, fmt.Errorf("gen: RMAT probabilities sum to %g, want 1", sum)
	}
	n := int64(1) << scale
	m := edgeFactor * n
	rng := par.NewXoshiro256(seed)
	edges := make([]graph.RawEdge, 0, m)
	for i := int64(0); i < m; i++ {
		var u, v int64
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			// Add a little noise per level, as the GTgraph generator does,
			// to avoid strict self-similarity artifacts.
			switch {
			case r < a:
				// upper-left: nothing set
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u == v {
			continue // skip self loops; RMAT produces few
		}
		edges = append(edges, graph.RawEdge{U: u, V: v, W: 1})
	}
	return n, edges, nil
}

// BandedMesh generates a banded graph: vertex v connects to v+1 … v+band
// (clipped at n). This mimics the locally connected, high-modularity
// structure of the channel and nlpkkt240 meshes.
func BandedMesh(n int64, band int64) (int64, []graph.RawEdge) {
	var edges []graph.RawEdge
	for v := int64(0); v < n; v++ {
		for d := int64(1); d <= band && v+d < n; d++ {
			edges = append(edges, graph.RawEdge{U: v, V: v + d, W: 1})
		}
	}
	return n, edges
}

// Grid2D generates a rows×cols mesh where every vertex connects to its
// 4-neighbourhood, plus diagonals when diag is set (8-neighbourhood).
// Vertex (r, c) has ID r*cols + c. This is the analogue of the paper's
// "banded" PDE meshes (channel, nlpkkt240): unlike a 1-D band, a 2-D mesh
// makes a growing community's frontier cost grow with its perimeter, which
// is what gives those graphs their very high modularity under Louvain.
func Grid2D(rows, cols int64, diag bool) (int64, []graph.RawEdge) {
	n := rows * cols
	var edges []graph.RawEdge
	id := func(r, c int64) int64 { return r*cols + c }
	for r := int64(0); r < rows; r++ {
		for c := int64(0); c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, graph.RawEdge{U: id(r, c), V: id(r, c+1), W: 1})
			}
			if r+1 < rows {
				edges = append(edges, graph.RawEdge{U: id(r, c), V: id(r+1, c), W: 1})
			}
			if diag && r+1 < rows {
				if c+1 < cols {
					edges = append(edges, graph.RawEdge{U: id(r, c), V: id(r+1, c+1), W: 1})
				}
				if c > 0 {
					edges = append(edges, graph.RawEdge{U: id(r, c), V: id(r+1, c-1), W: 1})
				}
			}
		}
	}
	return n, edges
}

// WattsStrogatz generates a small-world graph: a ring lattice where each
// vertex connects to its k nearest neighbours (k even), with each edge
// rewired to a random endpoint with probability beta.
func WattsStrogatz(n int64, k int64, beta float64, seed uint64) (int64, []graph.RawEdge, error) {
	if k%2 != 0 || k <= 0 || k >= n {
		return 0, nil, fmt.Errorf("gen: WattsStrogatz k=%d must be even and in (0,n)", k)
	}
	rng := par.NewXoshiro256(seed)
	var edges []graph.RawEdge
	for v := int64(0); v < n; v++ {
		for d := int64(1); d <= k/2; d++ {
			u := (v + d) % n
			if rng.Float64() < beta {
				// Rewire the far endpoint.
				u = rng.Int63n(n)
				for u == v {
					u = rng.Int63n(n)
				}
			}
			edges = append(edges, graph.RawEdge{U: v, V: u, W: 1})
		}
	}
	return n, edges, nil
}

// Build is a convenience wrapper producing a CSR from generator output.
func Build(n int64, edges []graph.RawEdge) *graph.CSR {
	return graph.FromRawEdges(n, edges)
}
