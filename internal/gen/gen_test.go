package gen

import (
	"testing"
	"testing/quick"

	"distlouvain/internal/graph"
	"distlouvain/internal/par"
)

func TestErdosRenyiShape(t *testing.T) {
	n, edges := ErdosRenyi(100, 500, 1)
	if n != 100 {
		t.Fatalf("n = %d", n)
	}
	if len(edges) != 500 {
		t.Fatalf("edges = %d", len(edges))
	}
	g := Build(n, edges)
	if err := g.Validate(true); err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if e.U == e.V {
			t.Fatal("ER generated a self loop")
		}
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	_, a := ErdosRenyi(50, 100, 7)
	_, b := ErdosRenyi(50, 100, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
	_, c := ErdosRenyi(50, 100, 8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestPlantedPartition(t *testing.T) {
	n, edges, truth := PlantedPartition(4, 25, 0.5, 0.01, 3)
	if n != 100 || len(truth) != 100 {
		t.Fatalf("n=%d truth=%d", n, len(truth))
	}
	g := Build(n, edges)
	if err := g.Validate(true); err != nil {
		t.Fatal(err)
	}
	// Most edges must be intra-community.
	intra := 0
	for _, e := range edges {
		if truth[e.U] == truth[e.V] {
			intra++
		}
	}
	if float64(intra)/float64(len(edges)) < 0.8 {
		t.Fatalf("only %d/%d edges intra-community", intra, len(edges))
	}
	// Each community has the right size.
	counts := map[int64]int{}
	for _, c := range truth {
		counts[c]++
	}
	if len(counts) != 4 {
		t.Fatalf("%d communities", len(counts))
	}
	for c, cnt := range counts {
		if cnt != 25 {
			t.Fatalf("community %d has %d members", c, cnt)
		}
	}
}

func TestRMATShape(t *testing.T) {
	n, edges, err := RMAT(10, 8, 0.57, 0.19, 0.19, 0.05, 11)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1024 {
		t.Fatalf("n = %d", n)
	}
	// Self loops are skipped, so expect close to but not exactly 8n.
	if int64(len(edges)) > 8*n || int64(len(edges)) < 7*n {
		t.Fatalf("edges = %d", len(edges))
	}
	g := Build(n, edges)
	if err := g.Validate(true); err != nil {
		t.Fatal(err)
	}
	// Power-law skew: the max degree should far exceed the mean.
	s := graph.ComputeStats(g)
	if float64(s.MaxDegree) < 4*s.MeanDegree {
		t.Fatalf("RMAT not skewed: max=%d mean=%g", s.MaxDegree, s.MeanDegree)
	}
}

func TestRMATValidation(t *testing.T) {
	if _, _, err := RMAT(0, 8, 0.25, 0.25, 0.25, 0.25, 1); err == nil {
		t.Fatal("expected scale error")
	}
	if _, _, err := RMAT(5, 8, 0.9, 0.3, 0.2, 0.1, 1); err == nil {
		t.Fatal("expected probability-sum error")
	}
}

func TestBandedMesh(t *testing.T) {
	n, edges := BandedMesh(50, 3)
	g := Build(n, edges)
	if err := g.Validate(true); err != nil {
		t.Fatal(err)
	}
	// Interior vertices have degree 2*band.
	if d := g.Degree(25); d != 6 {
		t.Fatalf("interior degree = %d", d)
	}
	// Boundary vertices have lower degree.
	if d := g.Degree(0); d != 3 {
		t.Fatalf("boundary degree = %d", d)
	}
	// All edges are short-range.
	for _, e := range edges {
		if e.V-e.U > 3 || e.V-e.U < 1 {
			t.Fatalf("band violated: %+v", e)
		}
	}
}

func TestWattsStrogatz(t *testing.T) {
	n, edges, err := WattsStrogatz(200, 6, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	g := Build(n, edges)
	if err := g.Validate(true); err != nil {
		t.Fatal(err)
	}
	// Total edge count is exactly n*k/2 before dedup.
	if int64(len(edges)) != 200*3 {
		t.Fatalf("edges = %d", len(edges))
	}
	if _, _, err := WattsStrogatz(10, 3, 0.1, 1); err == nil {
		t.Fatal("expected odd-k error")
	}
	if _, _, err := WattsStrogatz(10, 10, 0.1, 1); err == nil {
		t.Fatal("expected k>=n error")
	}
}

func TestSSCA2(t *testing.T) {
	n, edges, truth, err := SSCA2(SSCA2Options{N: 500, MaxCliqueSize: 10, InterProb: 0.05, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if n != 500 || len(truth) != 500 {
		t.Fatalf("n=%d", n)
	}
	g := Build(n, edges)
	if err := g.Validate(true); err != nil {
		t.Fatal(err)
	}
	// Cliques are contiguous ID ranges: member of clique c are consecutive.
	for v := int64(1); v < n; v++ {
		if truth[v] < truth[v-1] {
			t.Fatal("clique IDs not monotone over vertex range")
		}
		if truth[v]-truth[v-1] > 1 {
			t.Fatal("clique IDs skip")
		}
	}
	// Intra-clique pairs are fully connected: check one mid-size clique.
	var lo, hi int64
	for v := int64(1); v < n; v++ {
		if truth[v] == 3 && truth[v-1] == 2 {
			lo = v
		}
		if truth[v] == 4 && truth[v-1] == 3 {
			hi = v
		}
	}
	if hi > lo+1 {
		adj := map[int64]bool{}
		for _, e := range g.Neighbors(lo) {
			adj[e.To] = true
		}
		for u := lo + 1; u < hi; u++ {
			if !adj[u] {
				t.Fatalf("clique member %d not adjacent to %d", u, lo)
			}
		}
	}
}

func TestSSCA2Validation(t *testing.T) {
	if _, _, _, err := SSCA2(SSCA2Options{N: 0, MaxCliqueSize: 5}); err == nil {
		t.Fatal("expected N error")
	}
	if _, _, _, err := SSCA2(SSCA2Options{N: 10, MaxCliqueSize: 0}); err == nil {
		t.Fatal("expected clique-size error")
	}
	if _, _, _, err := SSCA2(SSCA2Options{N: 10, MaxCliqueSize: 3, InterProb: 2}); err == nil {
		t.Fatal("expected probability error")
	}
}

func TestSSCA2ForScale(t *testing.T) {
	opt := SSCA2ForScale(4, 1000, 9)
	if opt.N != 4000 {
		t.Fatalf("N = %d", opt.N)
	}
	n, edges, _, err := SSCA2(opt)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4000 || len(edges) == 0 {
		t.Fatalf("n=%d edges=%d", n, len(edges))
	}
}

func TestLFRBasic(t *testing.T) {
	opt := DefaultLFR(2000, 0.2, 13)
	n, edges, truth, err := LFR(opt)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2000 || len(truth) != 2000 {
		t.Fatalf("n = %d", n)
	}
	g := Build(n, edges)
	if err := g.Validate(true); err != nil {
		t.Fatal(err)
	}
	// Mixing: the realized inter-community edge fraction should be near μ.
	inter := 0
	for _, e := range edges {
		if truth[e.U] != truth[e.V] {
			inter++
		}
	}
	frac := float64(inter) / float64(len(edges))
	if frac < 0.08 || frac > 0.35 {
		t.Fatalf("inter fraction %.3f too far from mu=0.2", frac)
	}
	// Community sizes within bounds (the last may absorb a remainder).
	sizes := map[int64]int64{}
	for _, c := range truth {
		sizes[c]++
	}
	for c, s := range sizes {
		if s < opt.MinComm || s > opt.MaxComm+opt.MinComm {
			t.Fatalf("community %d size %d outside [%d,%d]", c, s, opt.MinComm, opt.MaxComm)
		}
	}
	// Degrees bounded above.
	st := graph.ComputeStats(g)
	if st.MaxDegree > 2*opt.MaxDegree {
		t.Fatalf("max degree %d exceeds cap", st.MaxDegree)
	}
}

func TestLFRValidation(t *testing.T) {
	bad := DefaultLFR(100, 0.1, 1)
	bad.MaxComm = 1000
	if _, _, _, err := LFR(bad); err == nil {
		t.Fatal("expected MaxComm > N error")
	}
	bad = DefaultLFR(100, -0.5, 1)
	bad.MaxComm = 50
	if _, _, _, err := LFR(bad); err == nil {
		t.Fatal("expected Mu error")
	}
	bad = DefaultLFR(0, 0.1, 1)
	if _, _, _, err := LFR(bad); err == nil {
		t.Fatal("expected N error")
	}
}

func TestLFRDeterministic(t *testing.T) {
	opt := DefaultLFR(500, 0.3, 99)
	opt.MaxComm = 100
	_, e1, t1, err := LFR(opt)
	if err != nil {
		t.Fatal(err)
	}
	_, e2, t2, err := LFR(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(e1) != len(e2) {
		t.Fatal("edge counts differ")
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("edges differ")
		}
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatal("truth differs")
		}
	}
}

func TestPowerLawBounds(t *testing.T) {
	f := func(seed uint64, loRaw, hiRaw uint8, exp float64) bool {
		lo := int64(loRaw%20) + 1
		hi := lo + int64(hiRaw%50)
		e := 1 + (exp-float64(int(exp)))*2 // keep exponent in a sane band
		if e < 0.5 || e != e {
			e = 2
		}
		rng := newTestRng(seed)
		for i := 0; i < 50; i++ {
			v := powerLaw(rng, lo, hi, e)
			if v < lo || v > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPowerLawSkew(t *testing.T) {
	// With exponent 2.5 the mass should concentrate near the lower cutoff.
	rng := newTestRng(5)
	low := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if powerLaw(rng, 1, 100, 2.5) <= 3 {
			low++
		}
	}
	if float64(low)/n < 0.6 {
		t.Fatalf("only %d/%d draws in [1,3] for exponent 2.5", low, n)
	}
}

// newTestRng gives tests access to the same RNG type the generators use.
func newTestRng(seed uint64) *par.Xoshiro256 { return par.NewXoshiro256(seed) }

func TestGrid2D(t *testing.T) {
	n, edges := Grid2D(10, 8, false)
	if n != 80 {
		t.Fatalf("n = %d", n)
	}
	g := Build(n, edges)
	if err := g.Validate(true); err != nil {
		t.Fatal(err)
	}
	// 4-neighbourhood: interior degree 4, corner degree 2.
	if d := g.Degree(0); d != 2 {
		t.Fatalf("corner degree = %d", d)
	}
	if d := g.Degree(int64(3*8 + 4)); d != 4 {
		t.Fatalf("interior degree = %d", d)
	}
	// Edge count: horizontal 10*7 + vertical 9*8 = 142.
	if len(edges) != 142 {
		t.Fatalf("edges = %d", len(edges))
	}
	// With diagonals: interior degree 8.
	n, edges = Grid2D(10, 8, true)
	g = Build(n, edges)
	if err := g.Validate(true); err != nil {
		t.Fatal(err)
	}
	if d := g.Degree(int64(3*8 + 4)); d != 8 {
		t.Fatalf("diag interior degree = %d", d)
	}
}
