package gen

import (
	"fmt"
	"math"

	"distlouvain/internal/graph"
	"distlouvain/internal/par"
)

// LFROptions configures the LFR-style benchmark generator (Lancichinetti,
// Fortunato, Radicchi 2008), the benchmark family the paper's Table VII
// quality study uses. Degrees and community sizes follow truncated power
// laws; the mixing parameter Mu sets the fraction of each vertex's edges
// that leave its community.
type LFROptions struct {
	N         int64   // number of vertices
	MinDegree int64   // minimum degree (power-law lower cutoff)
	MaxDegree int64   // maximum degree (power-law upper cutoff)
	DegreeExp float64 // degree power-law exponent τ1 (typically 2–3)
	CommExp   float64 // community-size exponent τ2 (typically 1–2)
	MinComm   int64   // smallest community size
	MaxComm   int64   // largest community size
	Mu        float64 // mixing parameter: fraction of inter-community stubs
	Seed      uint64
}

// DefaultLFR returns the parameterization used by the quality experiments:
// τ1=2, τ2=1, μ as given, degree range scaled to yield the paper's density
// (≈100 edges/vertex at Table VII scale is reduced proportionally here).
func DefaultLFR(n int64, mu float64, seed uint64) LFROptions {
	return LFROptions{
		N:         n,
		MinDegree: 8,
		MaxDegree: 60,
		DegreeExp: 2.0,
		CommExp:   1.0,
		MinComm:   20,
		MaxComm:   200,
		Mu:        mu,
		Seed:      seed,
	}
}

func (o LFROptions) validate() error {
	if o.N <= 0 {
		return fmt.Errorf("gen: LFR N=%d must be positive", o.N)
	}
	if o.MinDegree <= 0 || o.MaxDegree < o.MinDegree {
		return fmt.Errorf("gen: LFR degree range [%d,%d] invalid", o.MinDegree, o.MaxDegree)
	}
	if o.MinComm <= 1 || o.MaxComm < o.MinComm {
		return fmt.Errorf("gen: LFR community range [%d,%d] invalid", o.MinComm, o.MaxComm)
	}
	if o.MaxComm > o.N {
		return fmt.Errorf("gen: LFR MaxComm=%d exceeds N=%d", o.MaxComm, o.N)
	}
	if o.Mu < 0 || o.Mu > 1 {
		return fmt.Errorf("gen: LFR Mu=%g out of [0,1]", o.Mu)
	}
	return nil
}

// powerLaw draws an integer in [lo, hi] from a power law with the given
// exponent via inverse-CDF sampling of the continuous relaxation.
func powerLaw(rng *par.Xoshiro256, lo, hi int64, exp float64) int64 {
	if lo >= hi {
		return lo
	}
	u := rng.Float64()
	if math.Abs(exp-1) < 1e-9 {
		// x ∝ 1/x: inverse CDF is exponential interpolation.
		v := float64(lo) * math.Pow(float64(hi)/float64(lo), u)
		return clamp64(int64(v), lo, hi)
	}
	a := 1 - exp
	xa := math.Pow(float64(lo), a)
	xb := math.Pow(float64(hi)+1, a)
	v := math.Pow(xa+u*(xb-xa), 1/a)
	return clamp64(int64(v), lo, hi)
}

func clamp64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// LFR generates the benchmark graph and returns (n, edges, groundTruth).
// The construction follows the LFR recipe: power-law community sizes
// covering all vertices, power-law degrees, a (1−μ) fraction of each
// vertex's stubs matched inside its community via a configuration-model
// pairing and the remaining μ fraction matched globally across communities.
// Unmatched leftover stubs (odd counts, rejected self/duplicate pairs) are
// dropped, which perturbs realized degrees by a vanishing fraction.
func LFR(opt LFROptions) (int64, []graph.RawEdge, []int64, error) {
	if err := opt.validate(); err != nil {
		return 0, nil, nil, err
	}
	rng := par.NewXoshiro256(opt.Seed)

	// 1. Community sizes covering exactly N vertices.
	var sizes []int64
	var covered int64
	for covered < opt.N {
		s := powerLaw(rng, opt.MinComm, opt.MaxComm, opt.CommExp)
		if covered+s > opt.N {
			s = opt.N - covered
			// A tiny trailing community is merged into the previous one
			// to respect MinComm when possible.
			if s < opt.MinComm && len(sizes) > 0 {
				sizes[len(sizes)-1] += s
				covered = opt.N
				break
			}
		}
		sizes = append(sizes, s)
		covered += s
	}

	// 2. Assign vertices to communities through a random permutation so
	// that community membership is uncorrelated with vertex ID — matching
	// the paper's "arbitrarily partitioned" input assumption.
	perm := make([]int64, opt.N)
	for i := range perm {
		perm[i] = int64(i)
	}
	for i := opt.N - 1; i > 0; i-- {
		j := rng.Int63n(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	truth := make([]int64, opt.N)
	members := make([][]int64, len(sizes))
	idx := int64(0)
	for c, s := range sizes {
		members[c] = perm[idx : idx+s]
		for _, v := range members[c] {
			truth[v] = int64(c)
		}
		idx += s
	}

	// 3. Degrees and the intra/inter split.
	intraDeg := make([]int64, opt.N)
	interDeg := make([]int64, opt.N)
	for v := int64(0); v < opt.N; v++ {
		d := powerLaw(rng, opt.MinDegree, opt.MaxDegree, opt.DegreeExp)
		din := int64(math.Round((1 - opt.Mu) * float64(d)))
		commSize := sizes[truth[v]]
		if din > commSize-1 {
			din = commSize - 1
		}
		if din < 0 {
			din = 0
		}
		intraDeg[v] = din
		interDeg[v] = d - din
		if interDeg[v] < 0 {
			interDeg[v] = 0
		}
	}

	var edges []graph.RawEdge
	type pair struct{ a, b int64 }
	seen := make(map[pair]struct{})
	addEdge := func(u, v int64) bool {
		if u == v {
			return false
		}
		if u > v {
			u, v = v, u
		}
		if _, dup := seen[pair{u, v}]; dup {
			return false
		}
		seen[pair{u, v}] = struct{}{}
		edges = append(edges, graph.RawEdge{U: u, V: v, W: 1})
		return true
	}

	// 4. Intra-community configuration-model pairing.
	var stubs []int64
	for c := range members {
		stubs = stubs[:0]
		for _, v := range members[c] {
			for i := int64(0); i < intraDeg[v]; i++ {
				stubs = append(stubs, v)
			}
		}
		shuffle(rng, stubs)
		for i := 0; i+1 < len(stubs); i += 2 {
			addEdge(stubs[i], stubs[i+1])
		}
	}

	// 5. Inter-community pairing from the global stub pool; pairs landing
	// in the same community are retried against a rotating partner.
	var pool []int64
	for v := int64(0); v < opt.N; v++ {
		for i := int64(0); i < interDeg[v]; i++ {
			pool = append(pool, v)
		}
	}
	shuffle(rng, pool)
	for i := 0; i+1 < len(pool); i += 2 {
		u, v := pool[i], pool[i+1]
		if truth[u] == truth[v] {
			// Swap v with a stub further down whose community differs.
			for j := i + 2; j < len(pool); j++ {
				if truth[pool[j]] != truth[u] {
					pool[i+1], pool[j] = pool[j], pool[i+1]
					v = pool[i+1]
					break
				}
			}
			if truth[u] == truth[v] {
				continue // tail of the pool is single-community; drop
			}
		}
		addEdge(u, v)
	}
	return opt.N, edges, truth, nil
}

func shuffle(rng *par.Xoshiro256, s []int64) {
	for i := len(s) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}
