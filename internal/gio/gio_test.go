package gio

import (
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"distlouvain/internal/graph"
)

func tempPath(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join(t.TempDir(), name)
}

func sampleEdges() []graph.RawEdge {
	return []graph.RawEdge{
		{U: 0, V: 1, W: 1},
		{U: 1, V: 2, W: 2.5},
		{U: 2, V: 0, W: 0.25},
		{U: 3, V: 3, W: 7},
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	path := tempPath(t, "g.bin")
	if err := WriteBinary(path, 4, sampleEdges()); err != nil {
		t.Fatal(err)
	}
	h, err := ReadHeader(path)
	if err != nil {
		t.Fatal(err)
	}
	if h.Vertices != 4 || h.Edges != 4 {
		t.Fatalf("header %+v", h)
	}
	n, edges, err := ReadBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 || len(edges) != 4 {
		t.Fatalf("n=%d len=%d", n, len(edges))
	}
	for i, e := range sampleEdges() {
		if edges[i] != e {
			t.Fatalf("edge %d: %+v != %+v", i, edges[i], e)
		}
	}
}

func TestSegmentRangesPartitionRecords(t *testing.T) {
	for _, edges := range []int64{0, 1, 7, 16, 100} {
		for _, p := range []int{1, 2, 3, 7, 16} {
			var prevHi int64
			var total int64
			for r := 0; r < p; r++ {
				lo, hi := SegmentRange(edges, r, p)
				if lo != prevHi {
					t.Fatalf("edges=%d p=%d rank=%d: gap/overlap (lo=%d prevHi=%d)", edges, p, r, lo, prevHi)
				}
				if hi < lo {
					t.Fatalf("hi < lo")
				}
				total += hi - lo
				prevHi = hi
			}
			if total != edges || prevHi != edges {
				t.Fatalf("edges=%d p=%d: covered %d", edges, p, total)
			}
		}
	}
}

func TestReadSegmentsReassemble(t *testing.T) {
	path := tempPath(t, "g.bin")
	var all []graph.RawEdge
	for i := int64(0); i < 37; i++ {
		all = append(all, graph.RawEdge{U: i % 10, V: (i * 3) % 10, W: float64(i)})
	}
	if err := WriteBinary(path, 10, all); err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 3, 5, 8, 37, 50} {
		var got []graph.RawEdge
		for r := 0; r < p; r++ {
			seg, err := ReadSegment(path, r, p)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, seg...)
		}
		if len(got) != len(all) {
			t.Fatalf("p=%d: got %d edges, want %d", p, len(got), len(all))
		}
		for i := range all {
			if got[i] != all[i] {
				t.Fatalf("p=%d edge %d: %+v != %+v", p, i, got[i], all[i])
			}
		}
	}
}

func TestReadSegmentValidation(t *testing.T) {
	path := tempPath(t, "g.bin")
	if err := WriteBinary(path, 2, []graph.RawEdge{{U: 0, V: 1, W: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSegment(path, -1, 2); err == nil {
		t.Fatal("expected error for negative rank")
	}
	if _, err := ReadSegment(path, 2, 2); err == nil {
		t.Fatal("expected error for rank >= size")
	}
}

func TestBinaryRejectsCorruptFiles(t *testing.T) {
	// Bad magic.
	path := tempPath(t, "bad.bin")
	if err := os.WriteFile(path, []byte("XXXX0000000000000000000000"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadHeader(path); err == nil {
		t.Fatal("expected bad-magic error")
	}
	// Truncated body.
	good := tempPath(t, "good.bin")
	if err := WriteBinary(good, 4, sampleEdges()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	trunc := tempPath(t, "trunc.bin")
	if err := os.WriteFile(trunc, data[:len(data)-8], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadHeader(trunc); err == nil {
		t.Fatal("expected size-mismatch error")
	}
	// Edge referencing vertex out of range.
	badVertex := tempPath(t, "badv.bin")
	if err := WriteBinary(badVertex, 2, []graph.RawEdge{{U: 0, V: 5, W: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSegment(badVertex, 0, 1); err == nil {
		t.Fatal("expected out-of-range vertex error")
	}
}

func TestTextEdgeListRoundTrip(t *testing.T) {
	path := tempPath(t, "g.txt")
	if err := WriteEdgeListText(path, sampleEdges()); err != nil {
		t.Fatal(err)
	}
	n, edges, err := ReadEdgeListText(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("n = %d", n)
	}
	for i, e := range sampleEdges() {
		if edges[i] != e {
			t.Fatalf("edge %d: %+v != %+v", i, edges[i], e)
		}
	}
}

func TestTextEdgeListParsing(t *testing.T) {
	path := tempPath(t, "g.txt")
	content := "# comment\n% another\n\n0 1\n1 2 3.5\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	n, edges, err := ReadEdgeListText(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || len(edges) != 2 {
		t.Fatalf("n=%d edges=%v", n, edges)
	}
	if edges[0].W != 1 { // default weight
		t.Fatalf("default weight = %g", edges[0].W)
	}
	if edges[1].W != 3.5 {
		t.Fatalf("weight = %g", edges[1].W)
	}
}

func TestTextEdgeListErrors(t *testing.T) {
	for _, bad := range []string{"0\n", "a b\n", "0 b\n", "-1 2\n", "0 1 x\n"} {
		path := tempPath(t, "bad.txt")
		if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := ReadEdgeListText(path); err == nil {
			t.Fatalf("expected parse error for %q", bad)
		}
	}
}

func TestGroundTruthSingleColumn(t *testing.T) {
	path := tempPath(t, "gt.txt")
	if err := WriteGroundTruth(path, []int64{5, 5, 7, 7}); err != nil {
		t.Fatal(err)
	}
	comm, err := ReadGroundTruth(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{5, 5, 7, 7}
	for i := range want {
		if comm[i] != want[i] {
			t.Fatalf("comm = %v", comm)
		}
	}
}

func TestGroundTruthPairForm(t *testing.T) {
	path := tempPath(t, "gt.txt")
	content := "# vertex community\n3 9\n2 8\n1 8\n0 9\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	comm, err := ReadGroundTruth(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{9, 8, 8, 9}
	for i := range want {
		if comm[i] != want[i] {
			t.Fatalf("comm = %v", comm)
		}
	}
}

func TestGroundTruthMissingVertex(t *testing.T) {
	path := tempPath(t, "gt.txt")
	if err := os.WriteFile(path, []byte("0 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadGroundTruth(path, 2); err == nil {
		t.Fatal("expected missing-assignment error")
	}
}

// Property: binary round trip is exact for arbitrary edges.
func TestQuickBinaryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	i := 0
	f := func(us, vs []uint16, ws []float64) bool {
		n := len(us)
		if len(vs) < n {
			n = len(vs)
		}
		if len(ws) < n {
			n = len(ws)
		}
		edges := make([]graph.RawEdge, n)
		var maxV int64 = 1
		for j := 0; j < n; j++ {
			edges[j] = graph.RawEdge{U: int64(us[j]), V: int64(vs[j]), W: ws[j]}
			if int64(us[j]) >= maxV {
				maxV = int64(us[j]) + 1
			}
			if int64(vs[j]) >= maxV {
				maxV = int64(vs[j]) + 1
			}
		}
		i++
		path := filepath.Join(dir, "q", "..", "q.bin")
		if err := WriteBinary(path, maxV, edges); err != nil {
			return false
		}
		nGot, got, err := ReadBinary(path)
		if err != nil || nGot != maxV || len(got) != n {
			return false
		}
		for j := range edges {
			// NaN weights compare unequal; compare bit patterns via !=
			// only for non-NaN.
			if got[j].U != edges[j].U || got[j].V != edges[j].V {
				return false
			}
			if got[j].W != edges[j].W && !(got[j].W != got[j].W && edges[j].W != edges[j].W) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
