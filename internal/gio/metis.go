package gio

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"distlouvain/internal/graph"
)

// ReadMETIS parses a graph in the METIS/Chaco format used by much of the
// partitioning literature (several of the paper's source graphs circulate
// in it):
//
//	header:  <n> <m> [fmt [ncon]]
//	line i (1-based): the neighbours of vertex i, 1-based, optionally
//	                  preceded by ncon vertex weights (fmt 1x) and each
//	                  followed by an edge weight (fmt x1).
//
// '%' lines are comments. Each undirected edge appears in both endpoint
// lines; the reader keeps one copy (u < v) and verifies the declared edge
// count. Vertex weights are parsed and discarded (Louvain weighs edges).
func ReadMETIS(path string) (int64, []graph.RawEdge, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	nextLine := func() ([]string, bool) {
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || line[0] == '%' {
				continue
			}
			return strings.Fields(line), true
		}
		return nil, false
	}

	header, ok := nextLine()
	if !ok {
		return 0, nil, fmt.Errorf("gio: %s: missing METIS header", path)
	}
	if len(header) < 2 {
		return 0, nil, fmt.Errorf("gio: %s: METIS header needs '<n> <m>', got %v", path, header)
	}
	n, err := strconv.ParseInt(header[0], 10, 64)
	if err != nil || n < 0 {
		return 0, nil, fmt.Errorf("gio: %s: bad vertex count %q", path, header[0])
	}
	m, err := strconv.ParseInt(header[1], 10, 64)
	if err != nil || m < 0 {
		return 0, nil, fmt.Errorf("gio: %s: bad edge count %q", path, header[1])
	}
	// The fmt field is three binary digits: [vertex sizes][vertex
	// weights][edge weights]. Vertex sizes (the leading digit) belong to
	// the mesh-partitioning use of the format and are not supported here.
	hasVWeights, hasEWeights := false, false
	ncon := int64(0)
	if len(header) >= 3 {
		fmtField := header[2]
		if len(fmtField) > 3 {
			return 0, nil, fmt.Errorf("gio: %s: unsupported METIS fmt %q", path, fmtField)
		}
		for len(fmtField) < 3 {
			fmtField = "0" + fmtField
		}
		for _, ch := range fmtField {
			if ch != '0' && ch != '1' {
				return 0, nil, fmt.Errorf("gio: %s: unsupported METIS fmt %q", path, header[2])
			}
		}
		if fmtField[0] == '1' {
			return 0, nil, fmt.Errorf("gio: %s: METIS vertex sizes (fmt 1xx) not supported", path)
		}
		hasVWeights = fmtField[1] == '1'
		hasEWeights = fmtField[2] == '1'
		ncon = 1
		if len(header) >= 4 {
			ncon, err = strconv.ParseInt(header[3], 10, 64)
			if err != nil || ncon < 0 {
				return 0, nil, fmt.Errorf("gio: %s: bad ncon %q", path, header[3])
			}
		}
	}

	edges := make([]graph.RawEdge, 0, m)
	for v := int64(1); v <= n; v++ {
		fields, ok := nextLine()
		if !ok {
			return 0, nil, fmt.Errorf("gio: %s: missing adjacency line for vertex %d", path, v)
		}
		i := 0
		if hasVWeights {
			if int64(len(fields)) < ncon {
				return 0, nil, fmt.Errorf("gio: %s: vertex %d: missing vertex weights", path, v)
			}
			i = int(ncon) // weights parsed positionally and discarded
		}
		for i < len(fields) {
			u, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				return 0, nil, fmt.Errorf("gio: %s: vertex %d: bad neighbour %q", path, v, fields[i])
			}
			if u < 1 || u > n {
				return 0, nil, fmt.Errorf("gio: %s: vertex %d: neighbour %d out of [1,%d]", path, v, u, n)
			}
			i++
			w := 1.0
			if hasEWeights {
				if i >= len(fields) {
					return 0, nil, fmt.Errorf("gio: %s: vertex %d: missing weight after neighbour %d", path, v, u)
				}
				w, err = strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return 0, nil, fmt.Errorf("gio: %s: vertex %d: bad edge weight %q", path, v, fields[i])
				}
				i++
			}
			// Keep one copy per undirected edge; self loops kept as-is.
			if v <= u {
				edges = append(edges, graph.RawEdge{U: v - 1, V: u - 1, W: w})
			}
		}
	}
	if int64(len(edges)) != m {
		return 0, nil, fmt.Errorf("gio: %s: header declares %d edges, adjacency lists yield %d", path, m, len(edges))
	}
	return n, edges, nil
}

// WriteMETIS writes the graph in METIS format (fmt 001 — edge weights).
func WriteMETIS(path string, n int64, edges []graph.RawEdge) error {
	adj := make([][]graph.Edge, n)
	var m int64
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return fmt.Errorf("gio: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
		adj[e.U] = append(adj[e.U], graph.Edge{To: e.V, W: e.W})
		if e.U != e.V {
			adj[e.V] = append(adj[e.V], graph.Edge{To: e.U, W: e.W})
		}
		m++
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)
	if _, err := fmt.Fprintf(w, "%d %d 001\n", n, m); err != nil {
		return err
	}
	for v := int64(0); v < n; v++ {
		for i, e := range adj[v] {
			if i > 0 {
				if err := w.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%d %g", e.To+1, e.W); err != nil {
				return err
			}
		}
		if err := w.WriteByte('\n'); err != nil {
			return err
		}
	}
	return w.Flush()
}
