package gio

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzReadEdgeListText feeds arbitrary bytes through the text parser: it
// must either return a valid graph or an error — never panic, never emit
// negative vertices.
func FuzzReadEdgeListText(f *testing.F) {
	f.Add([]byte("0 1\n1 2 3.5\n# comment\n"))
	f.Add([]byte(""))
	f.Add([]byte("0 0 0\n"))
	f.Add([]byte("9223372036854775807 1\n"))
	f.Add([]byte("a b c\n"))
	f.Add([]byte("1\n2\n"))
	f.Add([]byte("% matrix market\n3 3 2\n"))
	dir := f.TempDir()
	i := 0
	f.Fuzz(func(t *testing.T, data []byte) {
		i++
		path := filepath.Join(dir, "fuzz.txt")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		n, edges, err := ReadEdgeListText(path)
		if err != nil {
			return
		}
		if n < 0 {
			t.Fatalf("negative vertex count %d", n)
		}
		for _, e := range edges {
			if e.U < 0 || e.V < 0 || e.U >= n || e.V >= n {
				t.Fatalf("edge %+v outside [0,%d)", e, n)
			}
		}
	})
}

// FuzzReadHeader feeds arbitrary bytes through the binary header parser.
func FuzzReadHeader(f *testing.F) {
	good := append([]byte(Magic), 1, 0, 0, 0)
	good = append(good, make([]byte, 16)...)
	f.Add(good)
	f.Add([]byte("DLVB"))
	f.Add([]byte(""))
	f.Add(make([]byte, 64))
	dir := f.TempDir()
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(dir, "fuzz.bin")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		h, err := ReadHeader(path)
		if err != nil {
			return
		}
		if h.Vertices < 0 || h.Edges < 0 {
			t.Fatalf("negative header fields: %+v", h)
		}
		// A valid header implies the advertised size matched; reading the
		// whole file must then succeed or fail cleanly.
		if _, _, err := ReadBinary(path); err != nil {
			// Out-of-range vertex references are legal failures.
			return
		}
	})
}

// FuzzGroundTruth feeds arbitrary bytes through the membership parser.
func FuzzGroundTruth(f *testing.F) {
	f.Add([]byte("1\n2\n3\n"), int64(3))
	f.Add([]byte("0 5\n1 5\n2 7\n"), int64(3))
	f.Add([]byte(""), int64(0))
	f.Add([]byte("x\n"), int64(1))
	dir := f.TempDir()
	f.Fuzz(func(t *testing.T, data []byte, n int64) {
		if n < 0 || n > 1000 {
			t.Skip()
		}
		path := filepath.Join(dir, "fuzz.gt")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		comm, err := ReadGroundTruth(path, n)
		if err != nil {
			return
		}
		if int64(len(comm)) != n {
			t.Fatalf("length %d, want %d", len(comm), n)
		}
	})
}
