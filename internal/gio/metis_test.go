package gio

import (
	"os"
	"path/filepath"
	"testing"

	"distlouvain/internal/graph"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.metis")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadMETISTriangle(t *testing.T) {
	// Unweighted triangle in canonical METIS form.
	path := writeTemp(t, "% a comment\n3 3\n2 3\n1 3\n1 2\n")
	n, edges, err := ReadMETIS(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || len(edges) != 3 {
		t.Fatalf("n=%d edges=%v", n, edges)
	}
	g := graph.FromRawEdges(n, edges)
	if err := g.Validate(true); err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < 3; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("degree(%d) = %d", v, g.Degree(v))
		}
	}
}

func TestReadMETISEdgeWeights(t *testing.T) {
	// fmt=001: neighbours carry weights.
	path := writeTemp(t, "2 1 001\n2 7.5\n1 7.5\n")
	n, edges, err := ReadMETIS(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || len(edges) != 1 || edges[0].W != 7.5 {
		t.Fatalf("edges = %v", edges)
	}
}

func TestReadMETISVertexWeights(t *testing.T) {
	// fmt=011 with ncon=2: two vertex weights per line, then weighted
	// neighbours. Vertex weights are discarded.
	path := writeTemp(t, "2 1 011 2\n5 9 2 1.5\n4 8 1 1.5\n")
	n, edges, err := ReadMETIS(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || len(edges) != 1 || edges[0].W != 1.5 {
		t.Fatalf("edges = %v", edges)
	}
}

func TestReadMETISErrors(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"short header":     "5\n",
		"bad n":            "x 3\n",
		"bad m":            "3 y\n",
		"missing line":     "2 1\n2\n",
		"neighbour range":  "2 1\n3\n1\n",
		"bad neighbour":    "2 1\nzz\n1\n",
		"edge count wrong": "3 5\n2 3\n1 3\n1 2\n",
		"missing weight":   "2 1 001\n2\n1 1\n",
		"bad fmt":          "2 1 abc\n2\n1\n",
	}
	for name, content := range cases {
		path := writeTemp(t, content)
		if _, _, err := ReadMETIS(path); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestMETISRoundTrip(t *testing.T) {
	n := int64(5)
	edges := []graph.RawEdge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 2, V: 3, W: 0.5},
		{U: 3, V: 4, W: 1}, {U: 0, V: 4, W: 3},
	}
	path := filepath.Join(t.TempDir(), "rt.metis")
	if err := WriteMETIS(path, n, edges); err != nil {
		t.Fatal(err)
	}
	n2, edges2, err := ReadMETIS(path)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != n || len(edges2) != len(edges) {
		t.Fatalf("round trip: n=%d edges=%d", n2, len(edges2))
	}
	a := graph.FromRawEdges(n, edges)
	b := graph.FromRawEdges(n2, edges2)
	if a.TotalWeight() != b.TotalWeight() {
		t.Fatalf("m2 %g != %g", a.TotalWeight(), b.TotalWeight())
	}
	for v := int64(0); v < n; v++ {
		an, bn := a.Neighbors(v), b.Neighbors(v)
		if len(an) != len(bn) {
			t.Fatalf("degree mismatch at %d", v)
		}
		for i := range an {
			if an[i] != bn[i] {
				t.Fatalf("neighbour mismatch at %d", v)
			}
		}
	}
}

func TestWriteMETISRejectsBadEdges(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.metis")
	if err := WriteMETIS(path, 2, []graph.RawEdge{{U: 0, V: 5, W: 1}}); err == nil {
		t.Fatal("expected range error")
	}
}

// FuzzReadMETIS hardens the parser against arbitrary input.
func FuzzReadMETIS(f *testing.F) {
	f.Add([]byte("3 3\n2 3\n1 3\n1 2\n"))
	f.Add([]byte("2 1 001\n2 7.5\n1 7.5\n"))
	f.Add([]byte("% c\n1 0\n\n"))
	f.Add([]byte("0 0\n"))
	dir := f.TempDir()
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(dir, "fuzz.metis")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		n, edges, err := ReadMETIS(path)
		if err != nil {
			return
		}
		if n < 0 {
			t.Fatal("negative n")
		}
		for _, e := range edges {
			if e.U < 0 || e.V < 0 || e.U >= n || e.V >= n {
				t.Fatalf("edge %+v outside [0,%d)", e, n)
			}
		}
	})
}
