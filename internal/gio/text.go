package gio

import (
	"bufio"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"distlouvain/internal/graph"
)

// ReadEdgeListText parses a whitespace-separated edge list: one "u v [w]"
// per line, '#' and '%' starting comment lines (SNAP and Matrix-Market
// conventions). Vertex IDs may be arbitrary non-negative integers; the
// returned vertex count is max ID + 1. Missing weights default to 1.
func ReadEdgeListText(path string) (int64, []graph.RawEdge, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []graph.RawEdge
	var maxID int64 = -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0, nil, fmt.Errorf("gio: %s:%d: want 'u v [w]', got %q", path, lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return 0, nil, fmt.Errorf("gio: %s:%d: bad source vertex: %w", path, lineNo, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0, nil, fmt.Errorf("gio: %s:%d: bad target vertex: %w", path, lineNo, err)
		}
		if u < 0 || v < 0 {
			return 0, nil, fmt.Errorf("gio: %s:%d: negative vertex id", path, lineNo)
		}
		if u == math.MaxInt64 || v == math.MaxInt64 {
			// The vertex count is maxID+1; MaxInt64 would overflow it.
			return 0, nil, fmt.Errorf("gio: %s:%d: vertex id too large", path, lineNo)
		}
		w := 1.0
		if len(fields) >= 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return 0, nil, fmt.Errorf("gio: %s:%d: bad weight: %w", path, lineNo, err)
			}
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		edges = append(edges, graph.RawEdge{U: u, V: v, W: w})
	}
	if err := sc.Err(); err != nil {
		return 0, nil, err
	}
	return maxID + 1, edges, nil
}

// WriteEdgeListText writes "u v w" lines.
func WriteEdgeListText(path string, edges []graph.RawEdge) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)
	for _, e := range edges {
		if _, err := fmt.Fprintf(w, "%d %d %g\n", e.U, e.V, e.W); err != nil {
			return err
		}
	}
	return w.Flush()
}

// ReadGroundTruth parses a community-membership file: line i (0-based,
// comments skipped) holds the community ID of vertex i, or lines may be
// "vertex community" pairs. The single-column and two-column forms are
// auto-detected from the first data line.
func ReadGroundTruth(path string, n int64) ([]int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	comm := make([]int64, n)
	for i := range comm {
		comm[i] = -1
	}
	next := int64(0)
	pairForm := false
	first := true
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if first {
			pairForm = len(fields) >= 2
			first = false
		}
		if pairForm {
			if len(fields) < 2 {
				return nil, fmt.Errorf("gio: %s:%d: want 'vertex community'", path, lineNo)
			}
			v, err := strconv.ParseInt(fields[0], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("gio: %s:%d: %w", path, lineNo, err)
			}
			c, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("gio: %s:%d: %w", path, lineNo, err)
			}
			if v < 0 || v >= n {
				return nil, fmt.Errorf("gio: %s:%d: vertex %d out of range", path, lineNo, v)
			}
			comm[v] = c
		} else {
			if next >= n {
				return nil, fmt.Errorf("gio: %s: more lines than vertices (%d)", path, n)
			}
			c, err := strconv.ParseInt(fields[0], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("gio: %s:%d: %w", path, lineNo, err)
			}
			comm[next] = c
			next++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for v, c := range comm {
		if c < 0 {
			return nil, fmt.Errorf("gio: %s: vertex %d has no community assignment", path, v)
		}
	}
	return comm, nil
}

// WriteGroundTruth writes one community ID per line, vertex order.
func WriteGroundTruth(path string, comm []int64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)
	for _, c := range comm {
		if _, err := fmt.Fprintf(w, "%d\n", c); err != nil {
			return err
		}
	}
	return w.Flush()
}
