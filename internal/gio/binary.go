// Package gio implements graph I/O: the binary edge-list format the paper's
// implementation feeds through MPI I/O, plus plain-text edge lists and
// ground-truth community files for the LFR quality experiments.
//
// Binary format (little endian):
//
//	offset 0:  magic "DLVB" (4 bytes)
//	offset 4:  format version (uint32, currently 1)
//	offset 8:  vertex count (int64)
//	offset 16: edge count   (int64)
//	offset 24: edges, each 24 bytes: u int64, v int64, w float64
//
// Each undirected edge is stored once. The fixed record size is what makes
// the segmented parallel read trivial: rank r of p seeks straight to its
// record range, exactly like the MPI_File_read_at_all decomposition in the
// paper (whose I/O takes 1–2% of total time).
package gio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"distlouvain/internal/graph"
)

// Magic identifies the binary edge-list format.
const Magic = "DLVB"

// Version is the current format version.
const Version = 1

const headerSize = 24
const recordSize = 24

// Header describes a binary edge-list file.
type Header struct {
	Vertices int64
	Edges    int64
}

// WriteBinary writes the graph's undirected edges to path.
func WriteBinary(path string, n int64, edges []graph.RawEdge) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)
	var hdr [headerSize]byte
	copy(hdr[0:4], Magic)
	binary.LittleEndian.PutUint32(hdr[4:8], Version)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(n))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(edges)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var rec [recordSize]byte
	for _, e := range edges {
		binary.LittleEndian.PutUint64(rec[0:8], uint64(e.U))
		binary.LittleEndian.PutUint64(rec[8:16], uint64(e.V))
		binary.LittleEndian.PutUint64(rec[16:24], math.Float64bits(e.W))
		if _, err := w.Write(rec[:]); err != nil {
			return err
		}
	}
	return w.Flush()
}

// ReadHeader reads and validates the file header.
func ReadHeader(path string) (Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, err
	}
	defer f.Close()
	return readHeader(f, path)
}

func readHeader(f *os.File, path string) (Header, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return Header{}, fmt.Errorf("gio: %s: short header: %w", path, err)
	}
	if string(hdr[0:4]) != Magic {
		return Header{}, fmt.Errorf("gio: %s: bad magic %q", path, hdr[0:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != Version {
		return Header{}, fmt.Errorf("gio: %s: unsupported version %d", path, v)
	}
	h := Header{
		Vertices: int64(binary.LittleEndian.Uint64(hdr[8:16])),
		Edges:    int64(binary.LittleEndian.Uint64(hdr[16:24])),
	}
	if h.Vertices < 0 || h.Edges < 0 {
		return Header{}, fmt.Errorf("gio: %s: negative counts in header", path)
	}
	if h.Edges > (math.MaxInt64-headerSize)/recordSize {
		// Guard the size arithmetic below against overflow from a forged
		// or corrupt header.
		return Header{}, fmt.Errorf("gio: %s: implausible edge count %d", path, h.Edges)
	}
	st, err := f.Stat()
	if err != nil {
		return Header{}, err
	}
	if want := int64(headerSize) + h.Edges*recordSize; st.Size() != want {
		return Header{}, fmt.Errorf("gio: %s: size %d, want %d for %d edges", path, st.Size(), want, h.Edges)
	}
	return h, nil
}

// ReadBinary reads the whole file.
func ReadBinary(path string) (int64, []graph.RawEdge, error) {
	h, err := ReadHeader(path)
	if err != nil {
		return 0, nil, err
	}
	edges, err := ReadSegment(path, 0, 1)
	if err != nil {
		return 0, nil, err
	}
	return h.Vertices, edges, nil
}

// SegmentRange returns the half-open record range [lo, hi) that rank r of p
// reads: records are split as evenly as possible, the first (edges % p)
// ranks receiving one extra.
func SegmentRange(edges int64, rank, size int) (lo, hi int64) {
	per := edges / int64(size)
	rem := edges % int64(size)
	lo = int64(rank)*per + min(int64(rank), rem)
	hi = lo + per
	if int64(rank) < rem {
		hi++
	}
	return lo, hi
}

// ReadSegment reads rank's record range of the file. Every rank opens the
// file independently and seeks to its range, mirroring the collective MPI
// I/O read in the paper.
func ReadSegment(path string, rank, size int) ([]graph.RawEdge, error) {
	if rank < 0 || size <= 0 || rank >= size {
		return nil, fmt.Errorf("gio: invalid segment rank %d of %d", rank, size)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	h, err := readHeader(f, path)
	if err != nil {
		return nil, err
	}
	lo, hi := SegmentRange(h.Edges, rank, size)
	if lo == hi {
		return nil, nil
	}
	if _, err := f.Seek(int64(headerSize)+lo*recordSize, io.SeekStart); err != nil {
		return nil, err
	}
	r := bufio.NewReaderSize(f, 1<<20)
	out := make([]graph.RawEdge, 0, hi-lo)
	var rec [recordSize]byte
	for i := lo; i < hi; i++ {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			return nil, fmt.Errorf("gio: %s: record %d: %w", path, i, err)
		}
		e := graph.RawEdge{
			U: int64(binary.LittleEndian.Uint64(rec[0:8])),
			V: int64(binary.LittleEndian.Uint64(rec[8:16])),
			W: math.Float64frombits(binary.LittleEndian.Uint64(rec[16:24])),
		}
		if e.U < 0 || e.U >= h.Vertices || e.V < 0 || e.V >= h.Vertices {
			return nil, fmt.Errorf("gio: %s: record %d references vertex out of range", path, i)
		}
		out = append(out, e)
	}
	return out, nil
}
