package obsv

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNestingAndPath(t *testing.T) {
	tr := NewTracer(2, 16)
	run := tr.Begin(KindRun, "run")
	tr.SetPos(1, 0)
	ph := tr.Begin(KindPhase, "phase")
	tr.SetPos(1, 3)
	it := tr.Begin(KindIteration, "iteration")
	st := tr.Begin(KindP2P, "community-fetch")
	if got, want := tr.Path(), "run/phase[1]/iteration[3]/community-fetch"; got != want {
		t.Fatalf("Path = %q, want %q", got, want)
	}
	st.End()
	it.End()
	ph.End()
	run.End()
	if p := tr.Path(); p != "" {
		t.Fatalf("Path after all ends = %q, want empty", p)
	}

	lines := StructureLines(tr.Snapshot())
	want := []string{
		"run",
		"  phase[1]",
		"    iteration[3]",
		"      community-fetch",
	}
	if len(lines) != len(want) {
		t.Fatalf("structure %v, want %v", lines, want)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
	for _, s := range tr.Snapshot() {
		if s.Rank != 2 {
			t.Fatalf("span rank %d, want 2", s.Rank)
		}
	}
}

func TestOutOfOrderEnd(t *testing.T) {
	tr := NewTracer(0, 16)
	a := tr.Begin(KindStep, "a")
	b := tr.Begin(KindStep, "b")
	a.End() // out of order: a removed from mid-stack, b stays open
	if got, want := tr.Path(), "b"; got != want {
		t.Fatalf("Path = %q, want %q", got, want)
	}
	b.End()
	b.End() // double End is a no-op
	if n := len(tr.Snapshot()); n != 2 {
		t.Fatalf("%d spans recorded, want 2", n)
	}
}

func TestRingOverwriteAndTail(t *testing.T) {
	tr := NewTracer(0, 4)
	for i := 0; i < 10; i++ {
		tr.Event(KindEvent, "e")
	}
	snap := tr.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot holds %d spans, want 4", len(snap))
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	// Oldest-first: the survivors are the last 4 events (IDs 7..10).
	for i, s := range snap {
		if want := uint64(7 + i); s.ID != want {
			t.Fatalf("snap[%d].ID = %d, want %d", i, s.ID, want)
		}
	}
	tail := tr.Tail(2)
	if len(tail) != 2 || tail[1].ID != 10 {
		t.Fatalf("Tail(2) = %v", tail)
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.SetPos(1, 2)
	sp := tr.Begin(KindStep, "x")
	sp.SetBytes(100)
	sp.End()
	dp := tr.BeginDetached(KindCollective, "y")
	dp.End()
	tr.Event(KindEvent, "z")
	if tr.Path() != "" || tr.Snapshot() != nil || tr.Dropped() != 0 || tr.Rank() != 0 {
		t.Fatal("nil tracer leaked state")
	}
	var reg *Registry
	reg.AttachCounters("s", func() map[string]int64 { return nil })
	reg.BeginGeneration()
	reg.RecordEvent("k", "n", nil)
	reg.RecordGenerationCounters()
	if reg.Records() != nil || reg.GenerationDelta("s") != nil || reg.Generation() != 0 {
		t.Fatal("nil registry leaked state")
	}
}

// TestDisabledTracerZeroAlloc pins the overhead budget of disabled tracing:
// the nil-receiver fast path must not allocate at all, so unconditional
// instrumentation is free when observability is off.
func TestDisabledTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Begin(KindCollective, "allreduce")
		sp.SetBytes(8)
		sp.End()
		tr.SetPos(1, 2)
		tr.Event(KindEvent, "marker")
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocates %.1f per op, want 0", allocs)
	}
}

func BenchmarkDisabledSpan(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Begin(KindCollective, "allreduce")
		sp.End()
	}
}

func BenchmarkEnabledSpan(b *testing.B) {
	tr := NewTracer(0, 1<<12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Begin(KindCollective, "allreduce")
		sp.End()
	}
}

// TestConcurrentDetachedSpans exercises worker goroutines emitting spans
// while the driver runs its scope stack — the -race lock-discipline check.
func TestConcurrentDetachedSpans(t *testing.T) {
	tr := NewTracer(0, 1<<12)
	run := tr.Begin(KindRun, "run")
	const workers, each = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				sp := tr.BeginDetached(KindStep, "worker")
				sp.SetBytes(1)
				sp.End()
				_ = tr.Path()
			}
		}()
	}
	// The driver keeps tracing concurrently.
	for i := 0; i < each; i++ {
		sp := tr.Begin(KindStep, "driver")
		sp.End()
	}
	wg.Wait()
	run.End()
	snap := tr.Snapshot()
	var detached, driver int
	runID := uint64(1)
	for _, s := range snap {
		switch s.Name {
		case "worker":
			detached++
			if s.Parent != runID {
				t.Fatalf("detached span parent %d, want run %d", s.Parent, runID)
			}
		case "driver":
			driver++
		}
	}
	if detached != workers*each || driver != each {
		t.Fatalf("recorded %d worker + %d driver spans, want %d + %d", detached, driver, workers*each, each)
	}
}

// TestRegistryGenerationDelta is the regression test for per-generation
// traffic accounting: cumulative counters from a previous supervisor
// generation must not bleed into the next generation's figures.
func TestRegistryGenerationDelta(t *testing.T) {
	counters := map[string]int64{"coll_bytes": 0}
	var mu sync.Mutex
	read := func() map[string]int64 {
		mu.Lock()
		defer mu.Unlock()
		return map[string]int64{"coll_bytes": counters["coll_bytes"]}
	}
	bump := func(n int64) {
		mu.Lock()
		counters["coll_bytes"] += n
		mu.Unlock()
	}

	reg := NewRegistry(0)
	reg.AttachCounters("mpi", read)
	bump(100) // generation-0 traffic
	if d := reg.GenerationDelta("mpi")["coll_bytes"]; d != 100 {
		t.Fatalf("gen-0 delta %d, want 100", d)
	}
	reg.RecordGenerationCounters()

	if gen := reg.BeginGeneration(); gen != 1 {
		t.Fatalf("generation %d, want 1", gen)
	}
	// Without the snapshot-and-delta the killed generation's 100 bytes
	// would reappear here.
	if d := reg.GenerationDelta("mpi")["coll_bytes"]; d != 0 {
		t.Fatalf("fresh generation delta %d, want 0", d)
	}
	bump(40)
	if d := reg.GenerationDelta("mpi")["coll_bytes"]; d != 40 {
		t.Fatalf("gen-1 delta %d, want 40", d)
	}
	reg.RecordGenerationCounters()

	var frozen []float64
	for _, rec := range reg.Records() {
		if rec.Kind == "counters" && rec.Name == "mpi" {
			frozen = append(frozen, rec.Fields["coll_bytes"])
		}
	}
	if len(frozen) != 2 || frozen[0] != 100 || frozen[1] != 40 {
		t.Fatalf("frozen per-generation counters %v, want [100 40]", frozen)
	}
	if reg.GenerationDelta("nosuch") != nil {
		t.Fatal("unknown source returned a delta")
	}
}

func TestRegistryExpvarSnapshot(t *testing.T) {
	reg := NewRegistry(3)
	reg.AttachCounters("mpi", func() map[string]int64 { return map[string]int64{"x": 7} })
	reg.RecordEvent("phase", "phase[0]", map[string]float64{"q": 0.5})
	snap, ok := reg.ExpvarSnapshot().(map[string]any)
	if !ok {
		t.Fatalf("snapshot type %T", reg.ExpvarSnapshot())
	}
	if snap["rank"] != 3 {
		t.Fatalf("rank = %v", snap["rank"])
	}
	if snap["records_total"].(int) != 1 {
		t.Fatalf("records_total = %v", snap["records_total"])
	}
	if c := snap["counters"].(map[string]map[string]int64); c["mpi"]["x"] != 7 {
		t.Fatalf("counters = %v", c)
	}
}

// TestReportCategorization pins the double-counting rules: a collective
// nested inside a categorized step is absorbed by the step, a sibling
// collective counts as collective, and rebuild absorbs its collectives.
func TestReportCategorization(t *testing.T) {
	tr := NewTracer(0, 1<<10)
	run := tr.Begin(KindRun, "run")
	tr.SetPos(0, 0)
	ph := tr.Begin(KindPhase, "phase")

	tr.SetPos(0, 1)
	it := tr.Begin(KindIteration, "iteration")
	fetch := tr.Begin(KindP2P, "community-fetch")
	a2a := tr.Begin(KindCollective, "alltoall") // absorbed by community-fetch
	a2a.End()
	fetch.End()
	sweep := tr.Begin(KindStep, "sweep")
	sweep.End()
	ar := tr.Begin(KindCollective, "allreduce") // sibling: counts as collective
	ar.End()
	it.End()

	rb := tr.Begin(KindStep, "rebuild")
	ex := tr.Begin(KindCollective, "exscan") // absorbed by rebuild
	ex.End()
	rb.End()
	ph.End()
	run.End()

	rep := BuildReport(tr.Snapshot())
	if len(rep.Phases) != 1 {
		t.Fatalf("%d phase rows, want 1", len(rep.Phases))
	}
	pb := rep.Phases[0]
	if pb.Iterations != 1 {
		t.Fatalf("iterations = %d, want 1", pb.Iterations)
	}
	fs := func(s string) Span {
		for _, sp := range tr.Snapshot() {
			if sp.Name == s {
				return sp
			}
		}
		t.Fatalf("span %q not recorded", s)
		return Span{}
	}
	if got, want := pb.Cat[CatP2P], time.Duration(fs("community-fetch").Dur); got != want {
		t.Fatalf("p2p = %v, want the community-fetch duration %v", got, want)
	}
	if got, want := pb.Cat[CatCollective], time.Duration(fs("allreduce").Dur); got != want {
		t.Fatalf("collective = %v, want only the sibling allreduce %v (alltoall must be absorbed)", got, want)
	}
	if got, want := pb.Cat[CatCoarsen], time.Duration(fs("rebuild").Dur); got != want {
		t.Fatalf("coarsen = %v, want the rebuild duration %v", got, want)
	}
	if pb.Accounted() > pb.Total {
		t.Fatalf("accounted %v exceeds phase total %v (double counting)", pb.Accounted(), pb.Total)
	}
	if rep.Total <= 0 || rep.Total < pb.Total {
		t.Fatalf("run total %v vs phase total %v", rep.Total, pb.Total)
	}

	var buf strings.Builder
	rep.Format(&buf)
	out := buf.String()
	if !strings.Contains(out, "%p2p") || !strings.Contains(out, "%coarsen") {
		t.Fatalf("missing header columns:\n%s", out)
	}
	if !strings.Contains(out, "\n    all") && !strings.Contains(out, " all ") {
		t.Fatalf("missing all row:\n%s", out)
	}
}
