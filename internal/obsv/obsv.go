// Package obsv is the rank-level observability layer: a low-overhead span
// tracer plus a metrics registry that unify where a rank spent its time
// (phases, iterations, collectives, checkpoints) with what it accomplished
// (modularity, moves, traffic counters, restarts).
//
// The tracer is designed around two constraints:
//
//   - Disabled tracing must cost nothing. Every method is safe on a nil
//     *Tracer and returns immediately without allocating, so call sites
//     instrument unconditionally (`sp := tr.Begin(...); defer sp.End()`)
//     and the nil receiver is the off switch.
//
//   - Enabled tracing must be cheap enough to leave on in production runs.
//     Completed spans land in a preallocated ring buffer (oldest entries
//     are overwritten, never reallocated), timestamps come from Go's
//     monotonic clock, and the hot path takes one short mutex section.
//
// Span structure — parent links, names, phase/iteration positions — is
// deterministic for a fixed seed on the in-process transport, which is what
// the golden-trace tests assert. Durations and byte counts are not.
package obsv

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Kind classifies a span for reporting. The category decides which column
// of the §V-A breakdown a span's duration lands in (see report.go).
type Kind uint8

const (
	// KindRun covers one whole Run/Resume invocation on a rank.
	KindRun Kind = iota
	// KindPhase covers one Louvain phase (iterate + flatten + rebuild).
	KindPhase
	// KindIteration covers one label-propagation iteration inside a phase.
	KindIteration
	// KindStep is a named local-compute step (sweep, modularity-compute...).
	KindStep
	// KindP2P is a named point-to-point exchange step (ghost/community
	// traffic); collectives issued inside it are attributed to it.
	KindP2P
	// KindCollective is one collective operation on the communicator.
	KindCollective
	// KindCheckpoint covers checkpoint writes and resume loads.
	KindCheckpoint
	// KindEvent is an instantaneous marker (no duration).
	KindEvent
)

var kindNames = [...]string{
	KindRun:        "run",
	KindPhase:      "phase",
	KindIteration:  "iteration",
	KindStep:       "step",
	KindP2P:        "p2p",
	KindCollective: "collective",
	KindCheckpoint: "checkpoint",
	KindEvent:      "event",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Span is one completed (or instantaneous) interval on a rank's timeline.
// IDs are assigned in Begin order and start at 1; Parent is 0 for roots.
// Start and Dur are nanoseconds on the tracer's monotonic clock.
type Span struct {
	ID     uint64
	Parent uint64
	Rank   int
	Kind   Kind
	Name   string
	Phase  int
	Iter   int
	Start  int64
	Dur    int64
	Bytes  int64
	// Count is a span-defined item tally (vertices the sweep evaluated,
	// frontier size at build). Like Bytes it is informational only and
	// excluded from golden structure comparison.
	Count int64
}

// Title renders the span's display name, folding in the phase or iteration
// index for the structural kinds so traces read "phase[2]/iteration[5]".
func (s Span) Title() string { return spanTitle(s.Kind, s.Name, s.Phase, s.Iter) }

func spanTitle(kind Kind, name string, phase, iter int) string {
	switch kind {
	case KindPhase:
		return fmt.Sprintf("%s[%d]", name, phase)
	case KindIteration:
		return fmt.Sprintf("%s[%d]", name, iter)
	}
	return name
}

// Label is the one-line human form used in post-mortem dumps.
func (s Span) Label() string {
	return fmt.Sprintf("%s %s (phase %d, iter %d, %v)",
		s.Kind, s.Title(), s.Phase, s.Iter, time.Duration(s.Dur).Round(time.Microsecond))
}

// openRef tracks a currently-open scoped span on the driver stack.
type openRef struct {
	id          uint64
	kind        Kind
	name        string
	phase, iter int
}

// Tracer records spans for one rank. All methods are safe on a nil
// receiver (no-ops) and safe for concurrent use. The scope stack that
// determines parentage is intended to be driven by the rank's driver
// goroutine via Begin/End; worker goroutines use BeginDetached, which
// parents under the current scope without touching the stack.
type Tracer struct {
	rank  int
	epoch time.Time

	mu      sync.Mutex
	nextID  uint64
	open    []openRef
	ring    []Span
	head    int // next write position
	n       int // live entries in ring
	dropped uint64
	phase   int
	iter    int
}

// DefaultCapacity is the ring size used when NewTracer is given a
// non-positive capacity: 64Ki spans ≈ 5 MB, enough for hundreds of
// iterations of full collective detail.
const DefaultCapacity = 1 << 16

// NewTracer returns an enabled tracer for the given rank. capacity bounds
// the completed-span ring; once full, the oldest spans are overwritten and
// counted in Dropped.
func NewTracer(rank, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{
		rank:  rank,
		epoch: time.Now(),
		ring:  make([]Span, capacity),
		open:  make([]openRef, 0, 64),
	}
}

// Enabled reports whether spans are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Rank returns the rank this tracer records for (0 when disabled).
func (t *Tracer) Rank() int {
	if t == nil {
		return 0
	}
	return t.rank
}

func (t *Tracer) now() int64 { return int64(time.Since(t.epoch)) }

// SetPos records the driver's current phase/iteration position; subsequent
// spans are stamped with it.
func (t *Tracer) SetPos(phase, iter int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.phase, t.iter = phase, iter
	t.mu.Unlock()
}

// SpanScope is the handle returned by Begin/BeginDetached. It is a plain
// value: keep it on the stack and call End exactly once (deferred Ends run
// during error unwinding, which is what makes the ring tail useful as
// post-mortem evidence). End on a zero or already-ended scope is a no-op.
type SpanScope struct {
	t           *Tracer
	id          uint64
	parent      uint64
	kind        Kind
	name        string
	phase, iter int
	start       int64
	bytes       int64
	count       int64
	scoped      bool
}

// Begin opens a scoped span: it is parented under the innermost open span
// and becomes the parent of spans begun before its End. Driver-goroutine
// use only.
func (t *Tracer) Begin(kind Kind, name string) SpanScope {
	return t.begin(kind, name, true)
}

// BeginDetached opens a span parented under the current scope without
// entering the scope stack, so concurrent worker goroutines can emit spans
// without corrupting driver nesting.
func (t *Tracer) BeginDetached(kind Kind, name string) SpanScope {
	return t.begin(kind, name, false)
}

func (t *Tracer) begin(kind Kind, name string, scoped bool) SpanScope {
	if t == nil {
		return SpanScope{}
	}
	start := t.now()
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	var parent uint64
	if len(t.open) > 0 {
		parent = t.open[len(t.open)-1].id
	}
	phase, iter := t.phase, t.iter
	if scoped {
		t.open = append(t.open, openRef{id: id, kind: kind, name: name, phase: phase, iter: iter})
	}
	t.mu.Unlock()
	return SpanScope{
		t: t, id: id, parent: parent, kind: kind, name: name,
		phase: phase, iter: iter, start: start, scoped: scoped,
	}
}

// SetBytes accumulates a payload size onto the span (informational only;
// excluded from golden structure comparison).
func (s *SpanScope) SetBytes(n int64) {
	if s.t == nil {
		return
	}
	s.bytes += n
}

// SetCount accumulates an item tally onto the span (informational only;
// excluded from golden structure comparison).
func (s *SpanScope) SetCount(n int64) {
	if s.t == nil {
		return
	}
	s.count += n
}

// End closes the span and records it in the ring. Out-of-order Ends are
// tolerated: the span is removed from wherever it sits on the scope stack.
func (s *SpanScope) End() {
	t := s.t
	if t == nil {
		return
	}
	end := t.now()
	t.mu.Lock()
	if s.scoped {
		for i := len(t.open) - 1; i >= 0; i-- {
			if t.open[i].id == s.id {
				t.open = append(t.open[:i], t.open[i+1:]...)
				break
			}
		}
	}
	t.record(Span{
		ID: s.id, Parent: s.parent, Rank: t.rank, Kind: s.kind, Name: s.name,
		Phase: s.phase, Iter: s.iter, Start: s.start, Dur: end - s.start, Bytes: s.bytes, Count: s.count,
	})
	t.mu.Unlock()
	s.t = nil
}

// Event records an instantaneous marker under the current scope.
func (t *Tracer) Event(kind Kind, name string) {
	if t == nil {
		return
	}
	now := t.now()
	t.mu.Lock()
	t.nextID++
	var parent uint64
	if len(t.open) > 0 {
		parent = t.open[len(t.open)-1].id
	}
	t.record(Span{
		ID: t.nextID, Parent: parent, Rank: t.rank, Kind: kind, Name: name,
		Phase: t.phase, Iter: t.iter, Start: now,
	})
	t.mu.Unlock()
}

// record appends a completed span; caller holds t.mu.
func (t *Tracer) record(sp Span) {
	if t.n == len(t.ring) {
		t.dropped++
	} else {
		t.n++
	}
	t.ring[t.head] = sp
	t.head = (t.head + 1) % len(t.ring)
}

// Path renders the currently-open scope chain, e.g.
// "run/phase[1]/iteration[3]/community-fetch/alltoall". Empty when nothing
// is open. This is what beacons carry and what the hang detector reports.
func (t *Tracer) Path() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.open) == 0 {
		return ""
	}
	var b strings.Builder
	for i, o := range t.open {
		if i > 0 {
			b.WriteByte('/')
		}
		b.WriteString(spanTitle(o.kind, o.name, o.phase, o.iter))
	}
	return b.String()
}

// Snapshot returns the completed spans currently in the ring, oldest first.
// Note the ring orders by End time while IDs order by Begin time; consumers
// that need begin order (StructureLines, BuildReport) sort by ID.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, t.n)
	start := (t.head - t.n + len(t.ring)) % len(t.ring)
	for i := 0; i < t.n; i++ {
		out[i] = t.ring[(start+i)%len(t.ring)]
	}
	return out
}

// Tail returns the k most recently completed spans, oldest first — the
// post-mortem view of what a rank was doing when it died.
func (t *Tracer) Tail(k int) []Span {
	s := t.Snapshot()
	if len(s) > k {
		s = s[len(s)-k:]
	}
	return s
}

// Dropped counts completed spans overwritten because the ring was full.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}
