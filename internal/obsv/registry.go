package obsv

import (
	"sort"
	"sync"
	"time"
)

// Record is one entry on the registry's event timeline: a phase result, a
// checkpoint, a beacon, a restart, a per-generation traffic summary.
type Record struct {
	T      time.Duration // since registry creation
	Gen    int           // supervisor generation (0 before any restart)
	Kind   string
	Name   string
	Fields map[string]float64
}

// counterSource is a live cumulative counter set (e.g. mpi.Stats) plus the
// snapshot taken at the current generation's start.
type counterSource struct {
	read func() map[string]int64
	base map[string]int64
}

// Registry unifies the process's observability state into one timeline:
// counter sources that only ever grow (traffic stats), and discrete records
// (phase stats, checkpoints, beacons, restarts).
//
// Counter sources are cumulative over the life of the process, which is
// exactly why per-generation figures under a supervisor must be computed by
// snapshot-and-delta: BeginGeneration snapshots every source, and
// GenerationDelta reports only what accrued since. Without that, traffic
// from a killed generation bleeds into the next one's numbers.
//
// All methods are nil-receiver safe and concurrency safe.
type Registry struct {
	rank  int
	epoch time.Time

	mu      sync.Mutex
	gen     int
	sources map[string]*counterSource
	records []Record
	maxRec  int
}

// NewRegistry returns an empty registry for the given rank.
func NewRegistry(rank int) *Registry {
	return &Registry{
		rank:    rank,
		epoch:   time.Now(),
		sources: make(map[string]*counterSource),
		maxRec:  4096,
	}
}

// Rank returns the rank the registry reports for.
func (r *Registry) Rank() int {
	if r == nil {
		return 0
	}
	return r.rank
}

// AttachCounters registers (or replaces) a live cumulative counter source.
// The source's generation baseline is snapshotted immediately, so a source
// attached mid-generation deltas from its attach point.
func (r *Registry) AttachCounters(name string, read func() map[string]int64) {
	if r == nil || read == nil {
		return
	}
	r.mu.Lock()
	r.sources[name] = &counterSource{read: read, base: read()}
	r.mu.Unlock()
}

// BeginGeneration starts a new supervisor generation: every counter source
// is re-snapshotted so subsequent GenerationDelta calls report only this
// generation's increments. Returns the new generation number.
func (r *Registry) BeginGeneration() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gen++
	for _, s := range r.sources {
		s.base = s.read()
	}
	r.addRecordLocked("generation", "begin", nil)
	return r.gen
}

// Generation returns the current generation number (0 before the first
// BeginGeneration).
func (r *Registry) Generation() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gen
}

// GenerationDelta returns the named source's counters minus the snapshot
// taken at the current generation's start. Unknown names return nil.
func (r *Registry) GenerationDelta(name string) map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	src, ok := r.sources[name]
	var base map[string]int64
	if ok {
		base = src.base
	}
	r.mu.Unlock()
	if !ok {
		return nil
	}
	cur := src.read()
	out := make(map[string]int64, len(cur))
	for k, v := range cur {
		out[k] = v - base[k]
	}
	return out
}

// RecordEvent appends a discrete record to the timeline, stamped with the
// current time and generation. fields may be nil.
func (r *Registry) RecordEvent(kind, name string, fields map[string]float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.addRecordLocked(kind, name, fields)
	r.mu.Unlock()
}

// RecordGenerationCounters appends one record per counter source holding
// that source's per-generation deltas — call at the end of a generation to
// freeze its traffic figures into the timeline.
func (r *Registry) RecordGenerationCounters() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.sources))
	for name := range r.sources {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		src := r.sources[name]
		cur := src.read()
		fields := make(map[string]float64, len(cur))
		for k, v := range cur {
			fields[k] = float64(v - src.base[k])
		}
		r.addRecordLocked("counters", name, fields)
	}
}

// addRecordLocked appends under r.mu, halving the buffer when full so the
// timeline is bounded but keeps its most recent history.
func (r *Registry) addRecordLocked(kind, name string, fields map[string]float64) {
	if len(r.records) >= r.maxRec {
		keep := r.maxRec / 2
		r.records = append(r.records[:0], r.records[len(r.records)-keep:]...)
	}
	r.records = append(r.records, Record{
		T: time.Since(r.epoch), Gen: r.gen, Kind: kind, Name: name, Fields: fields,
	})
}

// Records returns a copy of the event timeline, oldest first.
func (r *Registry) Records() []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Record, len(r.records))
	copy(out, r.records)
	return out
}

// ExpvarSnapshot returns a JSON-friendly view of the registry, shaped for
// publication via expvar.Func (served on -pprof-addr at /debug/vars).
func (r *Registry) ExpvarSnapshot() any {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	gen := r.gen
	names := make([]string, 0, len(r.sources))
	for name := range r.sources {
		names = append(names, name)
	}
	nrec := len(r.records)
	var last []Record
	const tail = 16
	if nrec > 0 {
		k := min(tail, nrec)
		last = make([]Record, k)
		copy(last, r.records[nrec-k:])
	}
	r.mu.Unlock()

	sort.Strings(names)
	counters := make(map[string]map[string]int64, len(names))
	deltas := make(map[string]map[string]int64, len(names))
	for _, name := range names {
		r.mu.Lock()
		src := r.sources[name]
		base := src.base
		r.mu.Unlock()
		cur := src.read()
		counters[name] = cur
		d := make(map[string]int64, len(cur))
		for k, v := range cur {
			d[k] = v - base[k]
		}
		deltas[name] = d
	}
	return map[string]any{
		"rank":             r.rank,
		"generation":       gen,
		"counters":         counters,
		"generation_delta": deltas,
		"records_total":    nrec,
		"records_tail":     last,
	}
}
