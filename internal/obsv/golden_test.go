// Golden-trace tests: with the in-process transport, one driver thread per
// rank and a fixed seed, the *structure* of a rank's trace — span titles,
// nesting, ordering, counts — is a deterministic function of the algorithm,
// even though durations are not. The golden files pin that structure for
// three example graphs across the Baseline, TC and ETC variants, so any
// change to the phase/iteration control flow or to the instrumentation
// points shows up as a reviewable diff. Regenerate with `make golden`.
package obsv_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"distlouvain/internal/core"
	"distlouvain/internal/dgraph"
	"distlouvain/internal/gen"
	"distlouvain/internal/gio"
	"distlouvain/internal/graph"
	"distlouvain/internal/mpi"
	"distlouvain/internal/obsv"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden trace files from the current run")

const goldenRanks = 2

// goldenGraphs are small, fully deterministic example inputs.
func goldenGraphs() map[string]struct {
	n     int64
	edges []graph.RawEdge
} {
	twoCliques := func() (int64, []graph.RawEdge) {
		var edges []graph.RawEdge
		clique := func(vs []int64) {
			for i := range vs {
				for j := i + 1; j < len(vs); j++ {
					edges = append(edges, graph.RawEdge{U: vs[i], V: vs[j], W: 1})
				}
			}
		}
		clique([]int64{0, 1, 2, 3})
		clique([]int64{4, 5, 6, 7})
		edges = append(edges, graph.RawEdge{U: 3, V: 4, W: 1})
		return 8, edges
	}
	out := make(map[string]struct {
		n     int64
		edges []graph.RawEdge
	})
	n1, e1 := twoCliques()
	out["twocliques"] = struct {
		n     int64
		edges []graph.RawEdge
	}{n1, e1}
	n2, e2, _ := gen.PlantedPartition(4, 12, 0.6, 0.05, 7)
	out["planted"] = struct {
		n     int64
		edges []graph.RawEdge
	}{n2, e2}
	n3, e3 := gen.Grid2D(6, 6, false)
	out["grid"] = struct {
		n     int64
		edges []graph.RawEdge
	}{n3, e3}
	return out
}

func goldenVariants() map[string]core.Config {
	return map[string]core.Config{
		"baseline": core.Baseline(),
		"tc":       core.ThresholdCycling(),
		"etc":      core.ETC(0.25),
	}
}

// traceStructure runs the graph on the in-process transport with a tracer
// per rank and returns each rank's structural trace skeleton.
func traceStructure(t *testing.T, p int, n int64, edges []graph.RawEdge, cfg core.Config) [][]string {
	t.Helper()
	tracers := make([]*obsv.Tracer, p)
	for r := range tracers {
		tracers[r] = obsv.NewTracer(r, obsv.DefaultCapacity)
	}
	err := mpi.Run(p, func(c *mpi.Comm) error {
		tr := tracers[c.Rank()]
		c.SetTracer(tr)
		rcfg := cfg
		rcfg.Tracer = tr
		rcfg.GatherOutput = true
		rcfg.Threads = 1
		rcfg.Seed = 1
		lo, hi := gio.SegmentRange(int64(len(edges)), c.Rank(), p)
		dg, err := dgraph.Build(c, n, edges[lo:hi], nil)
		if err != nil {
			return err
		}
		_, err = core.Run(dg, rcfg)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]string, p)
	for r, tr := range tracers {
		if d := tr.Dropped(); d != 0 {
			t.Fatalf("rank %d dropped %d spans; golden graphs must fit the ring", r, d)
		}
		if p := tr.Path(); p != "" {
			t.Fatalf("rank %d finished with open spans: %s", r, p)
		}
		out[r] = obsv.StructureLines(tr.Snapshot())
	}
	return out
}

func goldenPath(graphName, variant string, rank int) string {
	return filepath.Join("testdata", "golden", fmt.Sprintf("%s-%s-rank%d.golden", graphName, variant, rank))
}

func TestGoldenTraces(t *testing.T) {
	for gname, g := range goldenGraphs() {
		for vname, cfg := range goldenVariants() {
			t.Run(gname+"/"+vname, func(t *testing.T) {
				got := traceStructure(t, goldenRanks, g.n, g.edges, cfg)
				for r := 0; r < goldenRanks; r++ {
					path := goldenPath(gname, vname, r)
					text := strings.Join(got[r], "\n") + "\n"
					if *updateGolden {
						if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
							t.Fatal(err)
						}
						if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
							t.Fatal(err)
						}
						continue
					}
					want, err := os.ReadFile(path)
					if err != nil {
						t.Fatalf("missing golden file (run `make golden`): %v", err)
					}
					if text != string(want) {
						t.Errorf("rank %d trace structure diverged from %s\n%s", r, path, structureDiff(string(want), text))
					}
				}
			})
		}
	}
}

// structureDiff renders the first divergence with context — a full dump of
// both traces would drown the signal.
func structureDiff(want, got string) string {
	w := strings.Split(strings.TrimRight(want, "\n"), "\n")
	g := strings.Split(strings.TrimRight(got, "\n"), "\n")
	limit := len(w)
	if len(g) < limit {
		limit = len(g)
	}
	for i := 0; i < limit; i++ {
		if w[i] != g[i] {
			return fmt.Sprintf("first divergence at line %d:\n  golden: %q\n  got:    %q\n(golden %d lines, got %d lines)",
				i+1, w[i], g[i], len(w), len(g))
		}
	}
	return fmt.Sprintf("traces agree on the first %d lines but differ in length: golden %d lines, got %d lines", limit, len(w), len(g))
}

// TestTraceStructureDeterministic asserts the headline property directly:
// two identical runs produce identical span structure on every rank.
func TestTraceStructureDeterministic(t *testing.T) {
	g := goldenGraphs()["planted"]
	for vname, cfg := range goldenVariants() {
		t.Run(vname, func(t *testing.T) {
			a := traceStructure(t, goldenRanks, g.n, g.edges, cfg)
			b := traceStructure(t, goldenRanks, g.n, g.edges, cfg)
			for r := 0; r < goldenRanks; r++ {
				if strings.Join(a[r], "\n") != strings.Join(b[r], "\n") {
					t.Fatalf("rank %d structure not reproducible:\n%s", r,
						structureDiff(strings.Join(a[r], "\n"), strings.Join(b[r], "\n")))
				}
			}
		})
	}
}

// TestGoldenReportSane builds the §V-A report from a traced run and checks
// the category percentages cover the accounted time and never exceed 100%.
func TestGoldenReportSane(t *testing.T) {
	g := goldenGraphs()["planted"]
	tracers := make([]*obsv.Tracer, goldenRanks)
	for r := range tracers {
		tracers[r] = obsv.NewTracer(r, obsv.DefaultCapacity)
	}
	err := mpi.Run(goldenRanks, func(c *mpi.Comm) error {
		tr := tracers[c.Rank()]
		c.SetTracer(tr)
		cfg := core.Baseline()
		cfg.Tracer = tr
		cfg.GatherOutput = true
		lo, hi := gio.SegmentRange(int64(len(g.edges)), c.Rank(), goldenRanks)
		dg, err := dgraph.Build(c, g.n, g.edges[lo:hi], nil)
		if err != nil {
			return err
		}
		_, err = core.Run(dg, cfg)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := obsv.BuildReport(tracers[0].Snapshot())
	if len(rep.Phases) == 0 {
		t.Fatal("report has no phase rows")
	}
	if rep.Total <= 0 {
		t.Fatal("run span did not complete")
	}
	for _, pb := range rep.Phases {
		if pb.Total <= 0 || pb.Iterations <= 0 {
			t.Fatalf("phase %d: total=%v iters=%d", pb.Phase, pb.Total, pb.Iterations)
		}
		if acc := pb.Accounted(); acc > pb.Total {
			t.Fatalf("phase %d: accounted %v exceeds wall %v (double counting)", pb.Phase, acc, pb.Total)
		}
	}
	var buf strings.Builder
	rep.Format(&buf)
	if !strings.Contains(buf.String(), "all") {
		t.Fatalf("report missing the all row:\n%s", buf.String())
	}
}
