package obsv

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// Category is a column of the paper's §V-A time breakdown (Fig. 4): where
// did a phase's wall time go.
type Category int

const (
	// CatCompute: local work — neighbor sweeps, modularity accumulation,
	// coloring.
	CatCompute Category = iota
	// CatP2P: point-to-point style exchanges — ghost and community-info
	// traffic (the paper's "communication within a phase", ~34%).
	CatP2P
	// CatCollective: collectives issued directly by the driver, dominated
	// by the per-iteration modularity allreduce (~40% in the paper).
	CatCollective
	// CatCoarsen: graph rebuild between phases, including its internal
	// collectives.
	CatCoarsen
	// CatCheckpoint: checkpoint writes and resume loads, including fences.
	CatCheckpoint
	numCategories
)

var categoryNames = [numCategories]string{"compute", "p2p", "collective", "coarsen", "checkpoint"}

func (c Category) String() string {
	if c >= 0 && int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return "category(" + strconv.Itoa(int(c)) + ")"
}

// stepCategory assigns a category to the named driver steps. A span with a
// direct category absorbs the time of everything nested under it, so the
// alltoalls inside "community-fetch" count as p2p (not collective) and the
// collectives inside "rebuild" count as coarsening — matching how the
// paper buckets its breakdown.
var stepCategory = map[string]Category{
	"ghost-setup":        CatP2P,
	"ghost-exchange":     CatP2P,
	"community-fetch":    CatP2P,
	"community-push":     CatP2P,
	"flatten":            CatP2P,
	"gather-output":      CatP2P,
	"sweep":              CatCompute,
	"frontier-build":     CatCompute,
	"modularity-compute": CatCompute,
	"coloring":           CatCompute,
	"rebuild":            CatCoarsen,
	"checkpoint":         CatCheckpoint,
	"resume-load":        CatCheckpoint,
}

// directCategory returns the category a span claims for itself, if any.
func directCategory(s Span) (Category, bool) {
	if c, ok := stepCategory[s.Name]; ok {
		return c, true
	}
	switch s.Kind {
	case KindCollective:
		return CatCollective, true
	case KindCheckpoint:
		return CatCheckpoint, true
	}
	return 0, false
}

// PhaseBreakdown is one row of the report.
type PhaseBreakdown struct {
	Phase      int
	Iterations int
	Total      time.Duration // wall time of the phase span
	Cat        [numCategories]time.Duration
	// Bytes is the payload volume the row's spans reported via SetBytes,
	// bucketed like the time columns: traffic of a collective nested inside
	// a composite step (the alltoalls of "community-fetch", the collectives
	// of "rebuild") counts toward the composite's category, so the p2p
	// column is the §V-A "communication within a phase" payload and the
	// collective column the driver's own reductions.
	Bytes [numCategories]int64
	// Touched sums the vertices this rank's sweeps evaluated across the
	// phase (the Count of "sweep" spans); Frontier sums the active-set sizes
	// offered to them (the Count of "frontier-build" spans; under
	// FrontierOff no such spans exist and the column stays 0). Rank-local
	// figures — the globally allreduced trajectory lives in
	// core.PhaseStat.TouchedTrajectory.
	Touched  int64
	Frontier int64
}

// Accounted sums the categorized time; the gap to Total is the row's
// "%other" (uninstrumented driver work between steps).
func (p *PhaseBreakdown) Accounted() time.Duration {
	var sum time.Duration
	for _, d := range p.Cat {
		sum += d
	}
	return sum
}

// Report is the per-rank §V-A-style timing breakdown.
type Report struct {
	Rank    int
	Total   time.Duration // run-span wall time (0 if no run span completed)
	Phases  []PhaseBreakdown
	Overall PhaseBreakdown // Phase == -1; sums across phases + out-of-phase work
}

// BuildReport aggregates a rank's spans into per-phase category totals.
// Each span's full duration is charged to its own direct category unless
// an ancestor already claimed one — so nested collectives are not double
// counted, and composite steps absorb their internals.
//
// A span is charged to a phase row only when it is structurally nested in a
// phase span; run-level work outside any phase (resume-load, gather-output)
// lands in the overall row only, and spans outside the run span entirely
// (graph distribution before Run starts) are excluded — the report describes
// the run, and a phase row must never account more time than its own wall
// clock. When the snapshot holds no run span at all (a truncated post-mortem
// trace), the run-nesting requirement is waived so partial traces still
// report.
func BuildReport(spans []Span) *Report {
	byID := make(map[uint64]Span, len(spans))
	hasRun := false
	for _, s := range spans {
		byID[s.ID] = s
		if s.Kind == KindRun {
			hasRun = true
		}
	}
	// classify walks the ancestor chain; coverCat is the OUTERMOST ancestor
	// with a direct category (the composite step that absorbs this span's
	// time — and receives its bytes).
	classify := func(s Span) (covered, inRun, inPhase bool, coverCat Category) {
		for pid := s.Parent; pid != 0; {
			p, ok := byID[pid]
			if !ok {
				break
			}
			if c, direct := directCategory(p); direct {
				covered = true
				coverCat = c
			}
			switch p.Kind {
			case KindRun:
				inRun = true
			case KindPhase:
				inPhase = true
			}
			pid = p.Parent
		}
		return
	}

	rep := &Report{Overall: PhaseBreakdown{Phase: -1}}
	rows := make(map[int]*PhaseBreakdown)
	row := func(phase int) *PhaseBreakdown {
		pb, ok := rows[phase]
		if !ok {
			pb = &PhaseBreakdown{Phase: phase}
			rows[phase] = pb
		}
		return pb
	}

	for _, s := range spans {
		rep.Rank = s.Rank
		switch s.Kind {
		case KindRun:
			if d := time.Duration(s.Dur); d > rep.Total {
				rep.Total = d
			}
			continue
		case KindPhase:
			row(s.Phase).Total += time.Duration(s.Dur)
		case KindIteration:
			row(s.Phase).Iterations++
		}
		c, direct := directCategory(s)
		if !direct {
			continue
		}
		covered, inRun, inPhase, coverCat := classify(s)
		if hasRun && !inRun {
			continue
		}
		// Bytes roll up into the covering composite's category (time does
		// not — it would double count); an uncovered span keeps its own.
		if s.Bytes != 0 {
			bc := c
			if covered {
				bc = coverCat
			}
			rep.Overall.Bytes[bc] += s.Bytes
			if inPhase {
				row(s.Phase).Bytes[bc] += s.Bytes
			}
		}
		// Counts accumulate by span name, never through composites: only the
		// sweep and frontier-build steps define them.
		if s.Count != 0 && (s.Name == "sweep" || s.Name == "frontier-build") {
			touched, front := s.Count, int64(0)
			if s.Name == "frontier-build" {
				touched, front = 0, s.Count
			}
			rep.Overall.Touched += touched
			rep.Overall.Frontier += front
			if inPhase {
				row(s.Phase).Touched += touched
				row(s.Phase).Frontier += front
			}
		}
		if covered {
			continue
		}
		d := time.Duration(s.Dur)
		rep.Overall.Cat[c] += d
		if inPhase {
			row(s.Phase).Cat[c] += d
		}
	}

	phases := make([]int, 0, len(rows))
	for p := range rows {
		phases = append(phases, p)
	}
	sort.Ints(phases)
	for _, p := range phases {
		pb := rows[p]
		rep.Phases = append(rep.Phases, *pb)
		rep.Overall.Iterations += pb.Iterations
		rep.Overall.Total += pb.Total
	}
	return rep
}

// Format writes the breakdown as a table. Percentages are of the row's
// phase wall time; the "all" row uses the run span's wall time when one
// completed, so %other there includes inter-phase overheads.
func (r *Report) Format(w io.Writer) {
	fmt.Fprintf(w, "per-phase time breakdown (rank %d):\n", r.Rank)
	fmt.Fprintf(w, "%7s %6s %12s %7s %7s %9s %9s %6s %7s %9s %9s %9s %9s\n",
		"phase", "iters", "total", "%p2p", "%coll", "%coarsen", "%compute", "%ckpt", "%other", "p2pB", "collB", "touched", "frontier")
	writeRow := func(label string, pb PhaseBreakdown) {
		total := pb.Total
		if total <= 0 {
			total = pb.Accounted()
		}
		if total <= 0 {
			return
		}
		pct := func(d time.Duration) float64 { return 100 * float64(d) / float64(total) }
		other := total - pb.Accounted()
		if other < 0 {
			other = 0
		}
		fmt.Fprintf(w, "%7s %6d %12s %7.1f %7.1f %9.1f %9.1f %6.1f %7.1f %9s %9s %9d %9d\n",
			label, pb.Iterations, total.Round(time.Microsecond),
			pct(pb.Cat[CatP2P]), pct(pb.Cat[CatCollective]), pct(pb.Cat[CatCoarsen]),
			pct(pb.Cat[CatCompute]), pct(pb.Cat[CatCheckpoint]), pct(other),
			formatBytes(pb.Bytes[CatP2P]), formatBytes(pb.Bytes[CatCollective]),
			pb.Touched, pb.Frontier)
	}
	for _, pb := range r.Phases {
		writeRow(strconv.Itoa(pb.Phase), pb)
	}
	overall := r.Overall
	if r.Total > 0 {
		overall.Total = r.Total
	}
	writeRow("all", overall)
}

// formatBytes renders a byte count compactly (12.3KB, 4.5MB).
func formatBytes(n int64) string {
	switch {
	case n >= 10*1000*1000:
		return fmt.Sprintf("%.1fMB", float64(n)/1e6)
	case n >= 10*1000:
		return fmt.Sprintf("%.1fKB", float64(n)/1e3)
	default:
		return strconv.FormatInt(n, 10) + "B"
	}
}
