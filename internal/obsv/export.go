package obsv

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// wireSpan is the NDJSON form of a Span: one JSON object per line, stable
// field names, durations in nanoseconds.
type wireSpan struct {
	ID      uint64 `json:"id"`
	Parent  uint64 `json:"parent,omitempty"`
	Rank    int    `json:"rank"`
	Kind    string `json:"kind"`
	Name    string `json:"name"`
	Phase   int    `json:"phase"`
	Iter    int    `json:"iter,omitempty"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
	Bytes   int64  `json:"bytes,omitempty"`
	Count   int64  `json:"count,omitempty"`
}

// WriteNDJSON writes spans one-per-line in begin (ID) order.
func WriteNDJSON(w io.Writer, spans []Span) error {
	sorted := sortedByID(spans)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range sorted {
		ws := wireSpan{
			ID: s.ID, Parent: s.Parent, Rank: s.Rank, Kind: s.Kind.String(),
			Name: s.Name, Phase: s.Phase, Iter: s.Iter,
			StartNS: s.Start, DurNS: s.Dur, Bytes: s.Bytes, Count: s.Count,
		}
		if err := enc.Encode(&ws); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// TraceFileName is the per-rank trace file naming convention under
// -trace-dir.
func TraceFileName(rank int) string {
	return fmt.Sprintf("trace-rank%04d.ndjson", rank)
}

// WriteTraceFile dumps a tracer's completed spans to
// dir/trace-rank%04d.ndjson, creating dir if needed. A nil tracer is a
// no-op.
func WriteTraceFile(dir string, t *Tracer) error {
	if t == nil {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, TraceFileName(t.Rank())))
	if err != nil {
		return err
	}
	if err := WriteNDJSON(f, t.Snapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// StructureLines renders the deterministic skeleton of a trace: one line
// per span in begin order, indented by nesting depth, titles only — no
// durations, byte counts or timestamps. This is exactly what the golden
// trace files pin down.
//
// Spans whose parent is absent from the snapshot (still open, or rotated
// out of the ring) are rendered as roots.
func StructureLines(spans []Span) []string {
	sorted := sortedByID(spans)
	present := make(map[uint64]bool, len(sorted))
	for _, s := range sorted {
		present[s.ID] = true
	}
	children := make(map[uint64][]int, len(sorted))
	var roots []int
	for i, s := range sorted {
		if s.Parent != 0 && present[s.Parent] {
			children[s.Parent] = append(children[s.Parent], i)
		} else {
			roots = append(roots, i)
		}
	}
	out := make([]string, 0, len(sorted))
	var walk func(i, depth int)
	walk = func(i, depth int) {
		s := sorted[i]
		out = append(out, strings.Repeat("  ", depth)+s.Title())
		for _, c := range children[s.ID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return out
}

func sortedByID(spans []Span) []Span {
	sorted := make([]Span, len(spans))
	copy(sorted, spans)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	return sorted
}
