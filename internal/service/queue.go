package service

// jobQueue is the FIFO-with-priorities admission queue: higher Priority
// first, submission order within a class. Admission is strictly in order —
// the head blocks until the rank budget can hold it, and no later job may
// jump past it even if it would fit (head-of-line blocking is the price of
// a predictable admission order; priorities exist to express urgency).
type jobQueue struct {
	items []*Job // invariant: sorted by (Priority desc, Seq asc)
}

// push inserts the job at its ordered position.
func (q *jobQueue) push(j *Job) {
	at := len(q.items)
	for i, it := range q.items {
		if j.Spec.Priority > it.Spec.Priority {
			at = i
			break
		}
	}
	q.items = append(q.items, nil)
	copy(q.items[at+1:], q.items[at:])
	q.items[at] = j
}

// head returns the next job to admit, or nil when the queue is empty.
func (q *jobQueue) head() *Job {
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}

// pop removes and returns the head.
func (q *jobQueue) pop() *Job {
	j := q.items[0]
	copy(q.items, q.items[1:])
	q.items[len(q.items)-1] = nil
	q.items = q.items[:len(q.items)-1]
	return j
}

// remove deletes the job with the given ID, reporting whether it was queued.
func (q *jobQueue) remove(id string) bool {
	for i, it := range q.items {
		if it.ID == id {
			copy(q.items[i:], q.items[i+1:])
			q.items[len(q.items)-1] = nil
			q.items = q.items[:len(q.items)-1]
			return true
		}
	}
	return false
}

// len reports the queued-job count.
func (q *jobQueue) len() int { return len(q.items) }

// position returns the 1-based queue position of the job, or 0 if absent.
func (q *jobQueue) position(id string) int {
	for i, it := range q.items {
		if it.ID == id {
			return i + 1
		}
	}
	return 0
}
