package service

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"distlouvain/internal/core"
	"distlouvain/internal/gen"
	"distlouvain/internal/gio"
	"distlouvain/internal/mpi"
)

// writeGraph materializes a deterministic Erdős–Rényi graph for tests.
func writeGraph(t *testing.T, n, m int64, seed uint64) (string, int64) {
	t.Helper()
	nv, edges := gen.ErdosRenyi(n, m, seed)
	path := filepath.Join(t.TempDir(), "graph.bin")
	if err := gio.WriteBinary(path, nv, edges); err != nil {
		t.Fatalf("write graph: %v", err)
	}
	return path, nv
}

// refRun computes the reference result with a direct 1-rank world — the
// service must reproduce it bit-identically at any world size.
func refRun(t *testing.T, path string, n int64, cfg core.Config) *core.Result {
	t.Helper()
	cfg.GatherOutput = true
	world, err := mpi.NewInprocWorld(1)
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	defer world.Close()
	res, err := runFresh(mpi.NewComm(world.Endpoint(0)), path, n, cfg)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	return res
}

// logCapture collects service log lines for ordering assertions.
type logCapture struct {
	mu    sync.Mutex
	lines []string
}

func (lc *logCapture) logf(format string, args ...any) {
	lc.mu.Lock()
	lc.lines = append(lc.lines, fmt.Sprintf(format, args...))
	lc.mu.Unlock()
}

// admittedOrder extracts job IDs from "job <id>: admitted" lines, in order.
func (lc *logCapture) admittedOrder() []string {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	var ids []string
	for _, l := range lc.lines {
		if strings.Contains(l, ": admitted (") {
			ids = append(ids, strings.TrimSuffix(strings.Fields(l)[1], ":"))
		}
	}
	return ids
}

func newTestService(t *testing.T, budget int, lc *logCapture) *Service {
	t.Helper()
	opt := Options{
		DataDir:    t.TempDir(),
		RankBudget: budget,
		HangMin:    30 * time.Second, // hang detection off the critical path
		HangMax:    5 * time.Minute,
	}
	if lc != nil {
		opt.Logf = lc.logf
	}
	s, err := New(opt)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

// waitState polls until the job reaches the wanted state (or any terminal
// state, which then fails the test if it isn't the wanted one).
func waitState(t *testing.T, s *Service, id string, want State) View {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		v, err := s.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if v.State == want {
			return v
		}
		if v.State.Terminal() {
			t.Fatalf("job %s settled %s (error %q), want %s", id, v.State, v.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s waiting for %s", id, v.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func equalAssignments(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The daemon's answer must be the CLI's answer: a submitted job reproduces
// the direct single-rank reference run bit-identically, at a different world
// size.
func TestServiceJobMatchesReference(t *testing.T) {
	path, n := writeGraph(t, 300, 1500, 5)
	ref := refRun(t, path, n, core.Baseline())

	s := newTestService(t, 4, nil)
	v, err := s.Submit(JobSpec{GraphPath: path, Ranks: 3})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	done := waitState(t, s, v.ID, StateDone)
	res, err := s.Result(v.ID, true)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if res.Modularity != ref.Modularity {
		t.Errorf("modularity %v, want reference %v", res.Modularity, ref.Modularity)
	}
	if res.Communities != ref.Communities {
		t.Errorf("communities %d, want %d", res.Communities, ref.Communities)
	}
	if !equalAssignments(res.Assignment, ref.GlobalComm) {
		t.Errorf("assignment differs from the 1-rank reference run")
	}
	if done.GraphFP == "" || done.ConfigFP == "" {
		t.Errorf("fingerprints missing from view: %+v", done)
	}
}

// Submissions beyond the rank budget queue and are admitted strictly in
// order; higher priority jumps the queue (but never preempts a running job).
func TestServiceAdmissionOrderUnderBudget(t *testing.T) {
	path, _ := writeGraph(t, 300, 1500, 6)
	lc := &logCapture{}
	s := newTestService(t, 2, lc)

	// Distinct seeds so results don't collapse into one cache entry.
	submit := func(seed uint64, prio int) string {
		t.Helper()
		v, err := s.Submit(JobSpec{GraphPath: path, Ranks: 2, Seed: seed, Priority: prio, Variant: "etc", Alpha: 0.25})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		return v.ID
	}
	j1 := submit(1, 0) // admitted immediately (fills the budget)
	j2 := submit(2, 0) // queued
	j3 := submit(3, 5) // queued, but jumps ahead of j2 on priority

	for _, id := range []string{j1, j2, j3} {
		waitState(t, s, id, StateDone)
	}
	got := lc.admittedOrder()
	want := []string{j1, j3, j2}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("admission order %v, want %v", got, want)
	}

	// Serialized admission implies ordered completion.
	var prev int64
	for _, id := range []string{j1, j3, j2} {
		v, _ := s.Get(id)
		if v.FinishedMS < prev {
			t.Fatalf("completion order does not follow admission order")
		}
		prev = v.FinishedMS
	}
}

// A duplicate submission is served from the result cache: instantly done,
// flagged as a hit, identical assignment, and no world launched for it.
func TestServiceCacheHitSkipsWorld(t *testing.T) {
	path, _ := writeGraph(t, 200, 900, 7)
	s := newTestService(t, 4, nil)

	v1, err := s.Submit(JobSpec{GraphPath: path, Ranks: 2, Variant: "etc", Alpha: 0.25, Seed: 9})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, s, v1.ID, StateDone)
	launched := s.Stats().WorldsLaunched

	// Different world size, same trajectory: must hit.
	v2, err := s.Submit(JobSpec{GraphPath: path, Ranks: 4, Variant: "etc", Alpha: 0.25, Seed: 9})
	if err != nil {
		t.Fatalf("Submit dup: %v", err)
	}
	if v2.State != StateDone || !v2.CacheHit {
		t.Fatalf("duplicate not served from cache: state=%s hit=%v", v2.State, v2.CacheHit)
	}
	if got := s.Stats().WorldsLaunched; got != launched {
		t.Errorf("duplicate launched a world: %d → %d", launched, got)
	}
	r1, _ := s.Result(v1.ID, true)
	r2, err := s.Result(v2.ID, true)
	if err != nil {
		t.Fatalf("Result dup: %v", err)
	}
	if !equalAssignments(r1.Assignment, r2.Assignment) {
		t.Errorf("cached assignment differs from the original")
	}
	if st := s.Stats(); st.CacheHits != 1 {
		t.Errorf("cache hit counter = %d, want 1", st.CacheHits)
	}

	// A different trajectory must NOT hit.
	v3, err := s.Submit(JobSpec{GraphPath: path, Ranks: 2, Variant: "etc", Alpha: 0.25, Seed: 10})
	if err != nil {
		t.Fatalf("Submit different: %v", err)
	}
	if v3.State == StateDone && v3.CacheHit {
		t.Fatalf("different seed served from cache")
	}
	waitState(t, s, v3.ID, StateDone)
}

// Aborting a running job frees its ranks for the queued one, leaves a
// committed checkpoint behind, and a resubmitted identical job adopts that
// checkpoint: it resumes past the aborted phase and still finishes
// bit-identical to an uninterrupted reference run.
func TestServiceAbortFreesBudgetAndResumesBitIdentically(t *testing.T) {
	path, n := writeGraph(t, 1200, 6000, 11)
	ref := refRun(t, path, n, core.Baseline())
	lc := &logCapture{}
	s := newTestService(t, 2, lc)

	spec := JobSpec{GraphPath: path, Ranks: 2}
	v1, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// A queued bystander that can only run once the abort frees the budget.
	other, err := s.Submit(JobSpec{GraphPath: path, Ranks: 2, Seed: 99, Variant: "et", Alpha: 0.25})
	if err != nil {
		t.Fatalf("Submit bystander: %v", err)
	}

	// Abort as soon as the first iteration lands: the interrupt flag is then
	// guaranteed to be observed at a phase boundary with work still left.
	h, err := s.Events(v1.ID)
	if err != nil {
		t.Fatalf("Events: %v", err)
	}
	sub, cancel := h.subscribe()
	defer cancel()
	var from int64
waitIter:
	for {
		events, closed := h.since(from)
		for _, e := range events {
			from = e.Seq
			if e.Kind == "iteration" {
				break waitIter
			}
		}
		if closed {
			t.Fatalf("job finished before its first iteration event")
		}
		select {
		case <-sub.wake:
		case <-time.After(30 * time.Second):
			t.Fatalf("no iteration event within 30s")
		}
	}
	if _, err := s.Abort(v1.ID); err != nil {
		t.Fatalf("Abort: %v", err)
	}

	av := waitState(t, s, v1.ID, StateAborted)
	if av.State != StateAborted {
		t.Fatalf("state %s after abort", av.State)
	}
	// The freed budget must admit the bystander.
	waitState(t, s, other.ID, StateDone)

	// The aborted job's directory must hold a committed checkpoint.
	s.mu.Lock()
	aborted := s.jobs[v1.ID]
	s.mu.Unlock()
	if !hasCheckpoint(aborted.ckptDir()) {
		t.Fatalf("abort left no committed checkpoint in %s", aborted.ckptDir())
	}

	// Resubmit the identical job: it must adopt the checkpoint and resume.
	v2, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	done := waitState(t, s, v2.ID, StateDone)
	if !done.Resumed {
		t.Errorf("resubmitted job did not resume from the adopted checkpoint")
	}
	// Resume must continue past the checkpointed phase, not restart it: the
	// job's stream must contain no phase-start for phase 0 (phase indices
	// are 0-based in progress events).
	h2, _ := s.Events(v2.ID)
	events, _ := h2.since(0)
	for _, e := range events {
		if e.Kind == "phase-start" && e.Phase == 0 {
			t.Errorf("resumed job re-ran phase 0 from scratch")
		}
	}
	res, err := s.Result(v2.ID, true)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if res.Modularity != ref.Modularity || !equalAssignments(res.Assignment, ref.GlobalComm) {
		t.Errorf("resumed result differs from the uninterrupted reference (Q %v vs %v)",
			res.Modularity, ref.Modularity)
	}
}

// Aborting a queued job settles it immediately without it ever running.
func TestServiceAbortQueuedJob(t *testing.T) {
	path, _ := writeGraph(t, 300, 1500, 13)
	s := newTestService(t, 2, nil)
	v1, err := s.Submit(JobSpec{GraphPath: path, Ranks: 2})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	v2, err := s.Submit(JobSpec{GraphPath: path, Ranks: 2, Seed: 2, Variant: "tc"})
	if err != nil {
		t.Fatalf("Submit queued: %v", err)
	}
	av, err := s.Abort(v2.ID)
	if err != nil {
		t.Fatalf("Abort queued: %v", err)
	}
	if av.State != StateAborted {
		t.Fatalf("queued abort state %s", av.State)
	}
	if _, err := s.Abort(v2.ID); err == nil {
		t.Errorf("second abort of a terminal job should fail")
	}
	waitState(t, s, v1.ID, StateDone)
	if st := s.Stats(); st.Aborted != 1 {
		t.Errorf("aborted counter = %d, want 1", st.Aborted)
	}
}

// The event stream covers the whole lifecycle: queued, admitted, a
// phase-start for EVERY phase of the final result, iterations, and done.
func TestServiceEventStreamCoversEveryPhase(t *testing.T) {
	path, _ := writeGraph(t, 300, 1500, 17)
	s := newTestService(t, 2, nil)
	v, err := s.Submit(JobSpec{GraphPath: path, Ranks: 2})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, s, v.ID, StateDone)
	res, _ := s.Result(v.ID, false)

	h, _ := s.Events(v.ID)
	events, closed := h.since(0)
	if !closed {
		t.Fatalf("stream not closed after a terminal event")
	}
	kinds := map[string]int{}
	phases := map[int]bool{}
	iters := 0
	for i, e := range events {
		kinds[e.Kind]++
		if e.Seq != int64(i)+1 {
			t.Fatalf("event %d has seq %d: ids must be dense for Last-Event-ID resume", i, e.Seq)
		}
		if e.Kind == "phase-start" {
			phases[e.Phase] = true
		}
		if e.Kind == "iteration" {
			iters++
		}
	}
	for _, k := range []string{"queued", "admitted", "done"} {
		if kinds[k] != 1 {
			t.Errorf("event kind %q seen %d times, want 1", k, kinds[k])
		}
	}
	if res.Phases < 1 {
		t.Fatalf("result reports %d phases", res.Phases)
	}
	for p := 0; p < res.Phases; p++ { // phase indices are 0-based
		if !phases[p] {
			t.Errorf("no phase-start event for phase %d of %d", p, res.Phases)
		}
	}
	if iters < res.Iterations {
		t.Errorf("%d iteration events for %d iterations", iters, res.Iterations)
	}
}

// Jobs survive a daemon restart: done jobs keep serving results and re-warm
// the cache; a job still queued at shutdown runs to completion on reopen.
func TestServiceRecoveryAfterRestart(t *testing.T) {
	path, n := writeGraph(t, 300, 1500, 19)
	ref := refRun(t, path, n, core.Baseline())
	dir := t.TempDir()
	opt := Options{DataDir: dir, RankBudget: 2, HangMin: 30 * time.Second, HangMax: 5 * time.Minute}

	s1, err := New(opt)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	v1, err := s1.Submit(JobSpec{GraphPath: path, Ranks: 2})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, s1, v1.ID, StateDone)
	// Occupies the whole budget is gone now, so this one queues only if
	// submitted while something runs; here it simply gets admitted — so
	// close the service right away to catch it as early as possible. Either
	// way its record (queued or drained-back-to-queued) must recover.
	v2, err := s1.Submit(JobSpec{GraphPath: path, Ranks: 2, Seed: 3, Variant: "tc"})
	if err != nil {
		t.Fatalf("Submit second: %v", err)
	}
	s1.Close()

	s2, err := New(opt)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()

	// The done job is still there, result intact (assignment reloaded from
	// its persisted labels file).
	gv, err := s2.Get(v1.ID)
	if err != nil || gv.State != StateDone {
		t.Fatalf("done job lost across restart: %+v, %v", gv, err)
	}
	res, err := s2.Result(v1.ID, true)
	if err != nil {
		t.Fatalf("Result after restart: %v", err)
	}
	if !equalAssignments(res.Assignment, ref.GlobalComm) {
		t.Errorf("persisted assignment differs from reference")
	}

	// The interrupted/queued job completes after recovery.
	waitState(t, s2, v2.ID, StateDone)

	// The cache re-warmed: an identical resubmission hits without a world.
	launched := s2.Stats().WorldsLaunched
	v3, err := s2.Submit(JobSpec{GraphPath: path, Ranks: 2})
	if err != nil {
		t.Fatalf("Submit dup after restart: %v", err)
	}
	if v3.State != StateDone || !v3.CacheHit {
		t.Fatalf("restart lost the cache: state=%s hit=%v", v3.State, v3.CacheHit)
	}
	if got := s2.Stats().WorldsLaunched; got != launched {
		t.Errorf("cache hit launched a world after restart")
	}
}

// Bad specs are rejected with ErrBadSpec before anything is created.
func TestServiceSubmitValidation(t *testing.T) {
	s := newTestService(t, 4, nil)
	cases := []struct {
		name string
		spec JobSpec
	}{
		{"no graph", JobSpec{Ranks: 2}},
		{"both graphs", JobSpec{GraphPath: "/x", Vertices: 3, Edges: [][3]float64{{0, 1, 0}}, Ranks: 1}},
		{"fractional endpoint", JobSpec{Vertices: 3, Edges: [][3]float64{{0.5, 1, 0}}, Ranks: 1}},
		{"endpoint out of range", JobSpec{Vertices: 3, Edges: [][3]float64{{0, 3, 0}}, Ranks: 1}},
		{"negative weight", JobSpec{Vertices: 3, Edges: [][3]float64{{0, 1, -2}}, Ranks: 1}},
		{"ranks beyond budget", JobSpec{Vertices: 3, Edges: [][3]float64{{0, 1, 0}}, Ranks: 99}},
		{"min-ranks above ranks", JobSpec{Vertices: 3, Edges: [][3]float64{{0, 1, 0}}, Ranks: 2, MinRanks: 3}},
		{"unknown variant", JobSpec{Vertices: 3, Edges: [][3]float64{{0, 1, 0}}, Ranks: 1, Variant: "quantum"}},
		{"unknown frontier mode", JobSpec{Vertices: 3, Edges: [][3]float64{{0, 1, 0}}, Ranks: 1, Frontier: "bitmapish"}},
		{"frontier threshold above one", JobSpec{Vertices: 3, Edges: [][3]float64{{0, 1, 0}}, Ranks: 1, FrontierSparseThreshold: 1.5}},
		{"missing graph file", JobSpec{GraphPath: filepath.Join(t.TempDir(), "nope.bin"), Ranks: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := s.Submit(tc.spec); err == nil {
				t.Fatalf("spec accepted: %+v", tc.spec)
			}
		})
	}
	if st := s.Stats(); st.Jobs != 0 {
		t.Errorf("%d jobs registered from rejected specs", st.Jobs)
	}
}

// A frontier-off job reproduces the default frontier-driven job bit-for-bit:
// the active set is an execution detail, not part of the answer (or of the
// config fingerprint — the second submission would cache-hit without NoCache).
func TestServiceFrontierModeDoesNotChangeResult(t *testing.T) {
	path, _ := writeGraph(t, 250, 1200, 11)
	s := newTestService(t, 4, nil)

	v1, err := s.Submit(JobSpec{GraphPath: path, Ranks: 3, Variant: "etc", Alpha: 0.25, Seed: 5})
	if err != nil {
		t.Fatalf("Submit frontier-default: %v", err)
	}
	waitState(t, s, v1.ID, StateDone)
	r1, err := s.Result(v1.ID, true)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}

	v2, err := s.Submit(JobSpec{GraphPath: path, Ranks: 3, Variant: "etc", Alpha: 0.25, Seed: 5, Frontier: "off", NoCache: true})
	if err != nil {
		t.Fatalf("Submit frontier-off: %v", err)
	}
	waitState(t, s, v2.ID, StateDone)
	r2, err := s.Result(v2.ID, true)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if r2.CacheHit {
		t.Fatalf("NoCache submission served from cache")
	}
	if r1.Modularity != r2.Modularity || r1.Communities != r2.Communities {
		t.Errorf("frontier off diverged: Q %v vs %v, communities %d vs %d",
			r1.Modularity, r2.Modularity, r1.Communities, r2.Communities)
	}
	if !equalAssignments(r1.Assignment, r2.Assignment) {
		t.Errorf("assignment differs between frontier modes")
	}
}

// An inline-edge submission materializes the graph and runs like any other.
func TestServiceInlineGraph(t *testing.T) {
	s := newTestService(t, 2, nil)
	// Two triangles joined by one edge: two communities.
	v, err := s.Submit(JobSpec{
		Vertices: 6,
		Edges: [][3]float64{
			{0, 1, 0}, {1, 2, 0}, {0, 2, 0},
			{3, 4, 0}, {4, 5, 0}, {3, 5, 0},
			{2, 3, 0},
		},
		Ranks: 2,
	})
	if err != nil {
		t.Fatalf("Submit inline: %v", err)
	}
	waitState(t, s, v.ID, StateDone)
	res, err := s.Result(v.ID, true)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if res.Communities != 2 {
		t.Errorf("two joined triangles → %d communities, want 2", res.Communities)
	}
	if res.Assignment[0] != res.Assignment[1] || res.Assignment[0] != res.Assignment[2] ||
		res.Assignment[3] != res.Assignment[4] || res.Assignment[3] != res.Assignment[5] ||
		res.Assignment[0] == res.Assignment[3] {
		t.Errorf("assignment does not split the triangles: %v", res.Assignment)
	}
}

// Terminal job directories beyond KeepJobs are garbage-collected.
func TestServiceRetentionGC(t *testing.T) {
	path, _ := writeGraph(t, 100, 400, 23)
	opt := Options{DataDir: t.TempDir(), RankBudget: 2, KeepJobs: 2,
		HangMin: 30 * time.Second, HangMax: 5 * time.Minute}
	s, err := New(opt)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	var ids []string
	for i := 0; i < 5; i++ {
		v, err := s.Submit(JobSpec{GraphPath: path, Ranks: 1, Seed: uint64(i + 1), NoCache: true})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		waitState(t, s, v.ID, StateDone)
		ids = append(ids, v.ID)
	}
	if st := s.Stats(); st.Jobs != 2 {
		t.Errorf("%d jobs retained, want KeepJobs=2", st.Jobs)
	}
	if _, err := s.Get(ids[0]); err == nil {
		t.Errorf("oldest job survived GC")
	}
	if _, err := s.Get(ids[4]); err != nil {
		t.Errorf("newest job collected: %v", err)
	}
}
