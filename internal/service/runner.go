package service

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"distlouvain/internal/ckpt"
	"distlouvain/internal/core"
	"distlouvain/internal/dgraph"
	"distlouvain/internal/gio"
	"distlouvain/internal/mpi"
	"distlouvain/internal/supervisor"
)

// worldLauncher launches one job's attempts as in-process goroutine worlds,
// the service analogue of dlouvain's inproc launcher: every rank reads its
// graph segment (or its checkpoint slice on resume), runs the distributed
// Louvain method, and reports progress beacons to the supervisor.
type worldLauncher struct {
	graphPath string
	vertices  int64
	cfg       core.Config // per-rank base config; CheckpointDir already set

	mu     sync.Mutex
	result *core.Result // rank-0 result of the completed attempt
	ranks  int          // world size of the completed attempt
}

type worldAttempt struct {
	world     *mpi.InprocWorld
	interrupt atomic.Bool
	done      chan struct{}
	err       error
}

func (a *worldAttempt) Wait() error { <-a.done; return a.err }
func (a *worldAttempt) Kill()       { a.world.Close() }
func (a *worldAttempt) Interrupt()  { a.interrupt.Store(true) }

func (l *worldLauncher) Launch(spec supervisor.LaunchSpec, beacons func(supervisor.Beacon)) (supervisor.Attempt, error) {
	world, err := mpi.NewInprocWorld(spec.Ranks)
	if err != nil {
		return nil, err
	}
	a := &worldAttempt{world: world, done: make(chan struct{})}
	go l.run(a, spec, beacons)
	return a, nil
}

func (l *worldLauncher) run(a *worldAttempt, spec supervisor.LaunchSpec, beacons func(supervisor.Beacon)) {
	defer close(a.done)
	defer a.world.Close()
	errs := make([]error, spec.Ranks)
	var wg sync.WaitGroup
	for r := 0; r < spec.Ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[r] = fmt.Errorf("rank %d panicked: %v", r, p)
					a.world.Close()
				}
			}()
			cfg := l.cfg
			cfg.Progress = supervisor.CoreProgress(r, 0, beacons)
			cfg.Interrupted = a.interrupt.Load
			beacons(supervisor.Beacon{Rank: r, Kind: supervisor.KindHello})
			c := mpi.NewComm(a.world.Endpoint(r))
			var res *core.Result
			var err error
			if spec.Resume {
				res, err = core.Resume(c, cfg.CheckpointDir, cfg)
			} else {
				res, err = runFresh(c, l.graphPath, l.vertices, cfg)
			}
			if err != nil {
				errs[r] = err
				a.world.Close()
				return
			}
			if r == 0 {
				l.mu.Lock()
				l.result, l.ranks = res, spec.Ranks
				l.mu.Unlock()
			}
		}(r)
	}
	wg.Wait()
	a.err = pickWorldError(errs)
}

// runFresh is one rank's cold-start body: segmented read, distributed build,
// run.
func runFresh(c *mpi.Comm, path string, n int64, cfg core.Config) (*core.Result, error) {
	chunk, err := gio.ReadSegment(path, c.Rank(), c.Size())
	if err != nil {
		return nil, err
	}
	dg, err := dgraph.Build(c, n, chunk, nil)
	if err != nil {
		return nil, err
	}
	return core.Run(dg, cfg)
}

// lastResult returns the completed attempt's rank-0 result.
func (l *worldLauncher) lastResult() (*core.Result, int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.result, l.ranks
}

// retryableWorldErr classifies a world failure: transient failures (lost
// peer, expired deadline, kill, hang diagnosis, graceful interrupt) warrant
// a relaunch from the latest checkpoint; anything else is a deterministic
// bug and fails the job.
func retryableWorldErr(err error) bool {
	var pl *mpi.ErrPeerLost
	var he *supervisor.HangError
	return errors.As(err, &pl) ||
		errors.As(err, &he) ||
		errors.Is(err, mpi.ErrKilled) ||
		errors.Is(err, os.ErrDeadlineExceeded) ||
		errors.Is(err, core.ErrInterrupted)
}

// pickWorldError selects the most meaningful failure from a world's per-rank
// errors: a fatal error wins over a retryable one, which wins over the
// ErrClosed collateral peers report after teardown.
func pickWorldError(errs []error) error {
	var retry, collateral error
	for r, e := range errs {
		if e == nil {
			continue
		}
		wrapped := fmt.Errorf("rank %d: %w", r, e)
		switch {
		case retryableWorldErr(e):
			if retry == nil {
				retry = wrapped
			}
		case errors.Is(e, mpi.ErrClosed):
			if collateral == nil {
				collateral = wrapped
			}
		default:
			return wrapped
		}
	}
	if retry != nil {
		return retry
	}
	return collateral
}

// hasCheckpoint reports whether dir holds a committed checkpoint manifest.
func hasCheckpoint(dir string) bool {
	_, err := ckpt.ReadManifest(dir)
	return err == nil
}

// runJob executes one admitted job under supervision and settles its
// terminal state. It runs on its own goroutine; budget bookkeeping happens
// through the scheduler callbacks.
func (s *Service) runJob(j *Job) {
	defer s.wg.Done()
	cfg, err := j.Spec.config()
	if err != nil { // validated at submit; defensive
		s.finishJob(j, nil, err)
		return
	}
	cfg.CheckpointDir = j.ckptDir()
	launcher := &worldLauncher{graphPath: j.graphPath, vertices: j.vertices, cfg: cfg}

	sopts := supervisor.Options{
		Policy: supervisor.Policy{
			MaxRestarts: s.opt.MaxRestarts,
			BaseBackoff: s.opt.Backoff,
			MinRanks:    j.Spec.MinRanks,
			Seed:        cfg.Seed,
		},
		Detector:      supervisor.DetectorConfig{MinWindow: s.opt.HangMin, MaxWindow: s.opt.HangMax},
		Poll:          s.opt.Poll,
		Retryable:     retryableWorldErr,
		HasCheckpoint: func() bool { return hasCheckpoint(cfg.CheckpointDir) },
		Logf: func(format string, args ...any) {
			s.logf("job %s: "+format, append([]any{j.ID}, args...)...)
		},
		OnBeacon: func(b supervisor.Beacon) { s.onBeacon(j, b) },
		OnRestart: func(restarts, ranks int, resume bool, cause error) {
			j.mu.Lock()
			j.restarts = restarts
			if resume {
				j.resumed = true
			}
			j.mu.Unlock()
			s.counters.restarts.Add(1)
			j.events.publish(Event{Kind: "restart", Ranks: ranks, Restarts: restarts, Msg: fmt.Sprint(cause)})
		},
		// Degradation shrinks the world below the admitted size; the freed
		// ranks go back to the shared budget so a queued job can take them.
		OnAttempt: func(spec supervisor.LaunchSpec) { s.resizeJob(j, spec.Ranks) },
	}
	sup := supervisor.New(launcher, sopts)

	resume := hasCheckpoint(cfg.CheckpointDir)
	j.mu.Lock()
	j.interrupt = sup.Interrupt
	j.started = time.Now()
	if resume {
		j.resumed = true
	}
	j.mu.Unlock()

	runErr := sup.Run(j.Spec.Ranks, resume)
	j.mu.Lock()
	j.interrupt = nil
	j.mu.Unlock()
	if runErr != nil {
		s.finishJob(j, nil, runErr)
		return
	}
	res, ranks := launcher.lastResult()
	if res == nil {
		s.finishJob(j, nil, fmt.Errorf("world completed without a rank-0 result (%d ranks)", ranks))
		return
	}
	s.finishJob(j, res, nil)
}

// onBeacon turns rank 0's supervisor beacons into job progress events; other
// ranks' beacons carry the same globally agreed milestones and would only
// duplicate the stream.
func (s *Service) onBeacon(j *Job, b supervisor.Beacon) {
	if b.Rank != 0 {
		return
	}
	switch b.Kind {
	case supervisor.KindPhaseStart:
		j.setProgress(b.Phase, 0, b.Modularity)
		j.events.publish(Event{Kind: "phase-start", Phase: b.Phase, Modularity: b.Modularity})
	case supervisor.KindIteration:
		j.setProgress(b.Phase, b.Iteration, b.Modularity)
		j.events.publish(Event{Kind: "iteration", Phase: b.Phase, Iteration: b.Iteration, Modularity: b.Modularity})
	case supervisor.KindCheckpoint:
		j.events.publish(Event{Kind: "checkpoint", Phase: b.Phase, Modularity: b.Modularity})
	}
}

func (j *Job) setProgress(phase, iter int, q float64) {
	j.mu.Lock()
	j.progress = Progress{Phase: phase, Iteration: iter, Modularity: sanitizeFloat(q)}
	j.mu.Unlock()
}
