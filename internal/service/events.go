package service

import (
	"math"
	"sync"
)

// Event is one entry of a job's progress stream. The sequence number is the
// SSE event ID, so clients reconnect with Last-Event-ID and miss nothing:
// the per-job log is append-only and retained for the job's lifetime (it is
// small — a handful of entries per Louvain iteration at worst).
type Event struct {
	Seq         int64   `json:"seq"`
	Kind        string  `json:"kind"` // queued|admitted|phase-start|iteration|checkpoint|restart|cache-hit|done|failed|aborted
	Phase       int     `json:"phase,omitempty"`
	Iteration   int     `json:"iter,omitempty"`
	Modularity  float64 `json:"q,omitempty"`
	Ranks       int     `json:"ranks,omitempty"`
	Restarts    int     `json:"restarts,omitempty"`
	Communities int64   `json:"communities,omitempty"`
	Msg         string  `json:"msg,omitempty"`
}

// Terminal event kinds close the stream.
func (e Event) terminal() bool {
	return e.Kind == "done" || e.Kind == "failed" || e.Kind == "aborted"
}

// hub is a job's event log plus subscriber wakeups. Publishers never block:
// subscribers are woken by a non-blocking signal and read the log at their
// own pace, so a slow SSE client can neither stall the beacon path nor lose
// events.
type hub struct {
	mu     sync.Mutex
	events []Event
	subs   map[*hubSub]struct{}
	closed bool // a terminal event has been published
}

type hubSub struct {
	wake chan struct{}
}

func newHub() *hub {
	return &hub{subs: make(map[*hubSub]struct{})}
}

// publish appends the event (assigning its sequence number) and wakes every
// subscriber. Publishing a terminal event closes the stream for followers.
func (h *hub) publish(e Event) Event {
	e.Modularity = sanitizeFloat(e.Modularity)
	h.mu.Lock()
	e.Seq = int64(len(h.events)) + 1
	h.events = append(h.events, e)
	if e.terminal() {
		h.closed = true
	}
	for s := range h.subs {
		select {
		case s.wake <- struct{}{}:
		default: // already signalled; it will observe this event on its next read
		}
	}
	h.mu.Unlock()
	return e
}

// since returns a copy of every event with Seq > from, plus whether the
// stream has terminated (no further events will ever be published).
func (h *hub) since(from int64) ([]Event, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if from < 0 {
		from = 0
	}
	var out []Event
	if from < int64(len(h.events)) {
		out = append(out, h.events[from:]...)
	}
	return out, h.closed
}

// subscribe registers a wakeup channel; cancel must be called when the
// subscriber goes away.
func (h *hub) subscribe() (s *hubSub, cancel func()) {
	s = &hubSub{wake: make(chan struct{}, 1)}
	h.mu.Lock()
	h.subs[s] = struct{}{}
	h.mu.Unlock()
	return s, func() {
		h.mu.Lock()
		delete(h.subs, s)
		h.mu.Unlock()
	}
}

// sanitizeFloat maps NaN/Inf (core reports NaN modularity before the first
// iteration) to 0 so every event and view is valid JSON.
func sanitizeFloat(f float64) float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return f
}

func sanitizeProgress(p Progress) Progress {
	p.Modularity = sanitizeFloat(p.Modularity)
	return p
}
