package service

import (
	"container/list"
	"sync"

	"distlouvain/internal/core"
)

// resultKey identifies a Louvain result completely: the distributed run is
// deterministic given the graph bytes and the trajectory-determining
// configuration, independent of rank count, thread count and wire format
// (the elastic-resume bit-identity tests pin exactly that). Two submissions
// with the same key therefore MUST produce the same assignment — which is
// what makes serving the second one from cache sound, even when it asks for
// a different world size.
type resultKey struct {
	Graph  core.Fingerprint
	Config core.Fingerprint
}

// cachedResult is one completed assignment retained for duplicate
// submissions.
type cachedResult struct {
	Assignment  []int64
	Modularity  float64
	Communities int64
	Phases      int
	Iterations  int
	SourceJob   string // job that computed it (reported on cache hits)
}

// resultCache is a bounded LRU of completed results. Entries hold full
// assignments, so the bound is entry-count, sized by the operator for the
// expected graph sizes. In-memory only: after a daemon restart the cache is
// re-warmed from the persisted results of retained job directories.
type resultCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recent
	m   map[resultKey]*list.Element
}

type cacheItem struct {
	key resultKey
	val *cachedResult
}

func newResultCache(capacity int) *resultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &resultCache{cap: capacity, ll: list.New(), m: make(map[resultKey]*list.Element)}
}

// get returns the cached result for the key, refreshing its recency.
func (c *resultCache) get(key resultKey) (*cachedResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheItem).val, true
}

// put inserts (or refreshes) a result, evicting the least recently used
// entry past capacity.
func (c *resultCache) put(key resultKey, val *cachedResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*cacheItem).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&cacheItem{key: key, val: val})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(*cacheItem).key)
	}
}

// len reports the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
