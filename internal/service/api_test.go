package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// apiClient wraps an httptest server over a service handler.
type apiClient struct {
	t   *testing.T
	svc *Service
	srv *httptest.Server
}

func newAPIClient(t *testing.T, budget int) *apiClient {
	t.Helper()
	s := newTestService(t, budget, nil)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return &apiClient{t: t, svc: s, srv: srv}
}

// holdBudget occupies n ranks of the scheduler budget directly, so jobs
// submitted afterwards are deterministically stuck in the queue until
// release is called. Tests only.
func (c *apiClient) holdBudget(n int) (release func()) {
	c.svc.mu.Lock()
	c.svc.running["test-hold"] = n
	c.svc.used += n
	c.svc.mu.Unlock()
	return func() {
		c.svc.mu.Lock()
		if held, ok := c.svc.running["test-hold"]; ok {
			c.svc.used -= held
			delete(c.svc.running, "test-hold")
			c.svc.admitLocked()
		}
		c.svc.mu.Unlock()
	}
}

func (c *apiClient) do(method, path string, body any) (int, []byte) {
	c.t.Helper()
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			c.t.Fatalf("marshal: %v", err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, c.srv.URL+path, rd)
	if err != nil {
		c.t.Fatalf("request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	return resp.StatusCode, buf.Bytes()
}

// triangles is a small two-community graph for inline submission.
func trianglesSpec() map[string]any {
	return map[string]any{
		"vertices": 6,
		"edges": [][3]float64{
			{0, 1, 0}, {1, 2, 0}, {0, 2, 0},
			{3, 4, 0}, {4, 5, 0}, {3, 5, 0},
			{2, 3, 0},
		},
		"ranks": 2,
	}
}

func TestAPIJobLifecycle(t *testing.T) {
	c := newAPIClient(t, 4)

	status, body := c.do("POST", "/v1/jobs", trianglesSpec())
	if status != http.StatusCreated {
		t.Fatalf("submit: %d %s", status, body)
	}
	var v View
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("submit body: %v", err)
	}
	if v.ID == "" || v.GraphFP == "" || v.ConfigFP == "" {
		t.Fatalf("incomplete view: %s", body)
	}

	// Poll status until done.
	deadline := time.Now().Add(30 * time.Second)
	for {
		status, body = c.do("GET", "/v1/jobs/"+v.ID, nil)
		if status != http.StatusOK {
			t.Fatalf("get: %d %s", status, body)
		}
		var cur View
		json.Unmarshal(body, &cur) //nolint:errcheck
		if cur.State == StateDone {
			break
		}
		if cur.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job settled %s: %s", cur.State, body)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Result, with and without the assignment.
	status, body = c.do("GET", "/v1/jobs/"+v.ID+"/result", nil)
	if status != http.StatusOK {
		t.Fatalf("result: %d %s", status, body)
	}
	var res Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("result body: %v", err)
	}
	if len(res.Assignment) != 6 || res.Communities != 2 {
		t.Fatalf("unexpected result: %s", body)
	}
	status, body = c.do("GET", "/v1/jobs/"+v.ID+"/result?assignment=0", nil)
	if status != http.StatusOK || strings.Contains(string(body), "assignment") {
		t.Fatalf("assignment=0 still carries labels: %d %s", status, body)
	}

	// Duplicate → served from cache over the API too.
	status, body = c.do("POST", "/v1/jobs", trianglesSpec())
	if status != http.StatusCreated {
		t.Fatalf("dup submit: %d %s", status, body)
	}
	var dup View
	json.Unmarshal(body, &dup) //nolint:errcheck
	if dup.State != StateDone || !dup.CacheHit {
		t.Fatalf("duplicate not a cache hit: %s", body)
	}

	// List shows both, stats add up.
	status, body = c.do("GET", "/v1/jobs", nil)
	var list []View
	if status != http.StatusOK || json.Unmarshal(body, &list) != nil || len(list) != 2 {
		t.Fatalf("list: %d %s", status, body)
	}
	status, body = c.do("GET", "/v1/stats", nil)
	var st Stats
	if status != http.StatusOK || json.Unmarshal(body, &st) != nil {
		t.Fatalf("stats: %d %s", status, body)
	}
	// The duplicate counts as a cache hit, not a completed run.
	if st.Submitted != 2 || st.Completed != 1 || st.CacheHits != 1 || st.WorldsLaunched != 1 {
		t.Fatalf("stats mismatch: %s", body)
	}
}

func TestAPIErrors(t *testing.T) {
	c := newAPIClient(t, 2)
	cases := []struct {
		method, path string
		body         any
		want         int
	}{
		{"POST", "/v1/jobs", map[string]any{"ranks": 1}, http.StatusBadRequest},           // no graph
		{"POST", "/v1/jobs", map[string]any{"bogus_field": 1}, http.StatusBadRequest},     // unknown field
		{"GET", "/v1/jobs/j-missing", nil, http.StatusNotFound},                           // unknown job
		{"GET", "/v1/jobs/j-missing/result", nil, http.StatusNotFound},                    //
		{"DELETE", "/v1/jobs/j-missing", nil, http.StatusNotFound},                        //
		{"GET", "/v1/jobs/j-missing/events", nil, http.StatusNotFound},                    //
		{"POST", "/v1/jobs", map[string]any{"graph_path": "/nope"}, http.StatusBadRequest}, // unreadable graph
	}
	for _, tc := range cases {
		status, body := c.do(tc.method, tc.path, tc.body)
		if status != tc.want {
			t.Errorf("%s %s: status %d (want %d): %s", tc.method, tc.path, status, tc.want, body)
		}
		if !json.Valid(body) {
			t.Errorf("%s %s: non-JSON error body %q", tc.method, tc.path, body)
		}
	}

	// Result of an unfinished job → 409; abort of a live job → 202. Checked
	// on a job that is deterministically still queued: it sits behind a
	// long-running one that holds the whole budget.
	path, _ := writeGraph(t, 300, 1500, 29)
	// Occupy the whole budget so the job below is deterministically queued
	// for the duration of the checks.
	release := c.holdBudget(2)
	defer release()
	status, body := c.do("POST", "/v1/jobs", map[string]any{"graph_path": path, "ranks": 2, "seed": 2, "variant": "tc"})
	if status != http.StatusCreated {
		t.Fatalf("submit queued: %d %s", status, body)
	}
	var v View
	json.Unmarshal(body, &v) //nolint:errcheck
	if status, body = c.do("GET", "/v1/jobs/"+v.ID+"/result", nil); status != http.StatusConflict {
		t.Errorf("result of unfinished job: %d %s (want 409)", status, body)
	}
	if status, body = c.do("DELETE", "/v1/jobs/"+v.ID, nil); status != http.StatusAccepted {
		t.Errorf("abort: %d %s (want 202)", status, body)
	}
	// A second abort of the now-terminal job conflicts.
	if status, body = c.do("DELETE", "/v1/jobs/"+v.ID, nil); status != http.StatusConflict {
		t.Errorf("double abort: %d %s (want 409)", status, body)
	}
}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	id, kind string
	data     Event
}

// readSSE consumes frames until a terminal event or EOF.
func readSSE(t *testing.T, r *bufio.Reader, max int) []sseEvent {
	t.Helper()
	var out []sseEvent
	cur := sseEvent{}
	for len(out) < max {
		line, err := r.ReadString('\n')
		if err != nil {
			break
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.kind = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.data); err != nil {
				t.Fatalf("bad SSE data %q: %v", line, err)
			}
		case line == "" && cur.kind != "":
			out = append(out, cur)
			if cur.data.terminal() {
				return out
			}
			cur = sseEvent{}
		}
	}
	return out
}

// The SSE stream delivers the full lifecycle and supports Last-Event-ID
// resumption: a client reconnecting mid-stream sees exactly the events it
// missed, no duplicates, no gaps.
func TestAPIEventStreamAndResume(t *testing.T) {
	c := newAPIClient(t, 2)
	path, _ := writeGraph(t, 300, 1500, 31)
	status, body := c.do("POST", "/v1/jobs", map[string]any{"graph_path": path, "ranks": 2})
	if status != http.StatusCreated {
		t.Fatalf("submit: %d %s", status, body)
	}
	var v View
	json.Unmarshal(body, &v) //nolint:errcheck

	resp, err := http.Get(c.srv.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	events := readSSE(t, bufio.NewReader(resp.Body), 10000)
	if len(events) < 3 {
		t.Fatalf("only %d events streamed", len(events))
	}
	last := events[len(events)-1]
	if last.kind != "done" {
		t.Fatalf("stream ended on %q, want done", last.kind)
	}
	for i, e := range events {
		if e.id != fmt.Sprint(i+1) {
			t.Fatalf("event %d carries SSE id %s: ids must be dense", i, e.id)
		}
		if e.kind != e.data.Kind {
			t.Fatalf("event name %q != data kind %q", e.kind, e.data.Kind)
		}
	}

	// Reconnect with Last-Event-ID halfway: the replay starts right after.
	mid := len(events) / 2
	req, _ := http.NewRequest("GET", c.srv.URL+"/v1/jobs/"+v.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", events[mid-1].id)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("resume events: %v", err)
	}
	defer resp2.Body.Close()
	replay := readSSE(t, bufio.NewReader(resp2.Body), 10000)
	if len(replay) != len(events)-mid {
		t.Fatalf("replay delivered %d events, want %d", len(replay), len(events)-mid)
	}
	if replay[0].id != events[mid].id {
		t.Fatalf("replay starts at id %s, want %s", replay[0].id, events[mid].id)
	}
}
